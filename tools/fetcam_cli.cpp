// fetcam command-line driver: run any reproduction experiment by name.
//
//   fetcam_cli table4 [n_bits]        Table IV FoM comparison
//   fetcam_cli fig1                   FeFET I-V curves + memory windows
//   fetcam_cli fig4                   two-step search waveform summary
//   fetcam_cli fig7 [n1 n2 ...]       word-length sweep
//   fetcam_cli ops <design>           operation-table verification
//   fetcam_cli divider                1.5T1Fe divider corners (SG + DG)
//   fetcam_cli variability [sigma]    Monte-Carlo divider yield
//   fetcam_cli disturb                read-disturb comparison
//   fetcam_cli halfselect             write half-select disturb study
//   fetcam_cli search <design> <stored> <query>
//                                     one circuit-level search
//   fetcam_cli datasheet [rows cols]  array-level macro comparison
//   fetcam_cli export <design> <stored> <query> <file.cir>
//                                     ngspice deck of one search netlist
//   fetcam_cli engine [opts]          trace-driven TCAM service engine run
//                                     (JSON report on stdout); options:
//                                       --trace FILE     load a saved trace
//                                       --kind ip|classifier|embedding
//                                         (--workload is an alias) generate
//                                         one; "embedding" switches the run
//                                         to the approximate-match kNN path
//                                         (kSearchNearest) and the JSON
//                                         report gains recall_at_k plus a
//                                         winner-distance histogram
//                                       --cols/--rules/--queries/--seed N
//                                       --match-rate R  --update-rate R
//                                       --k N            neighbors per query
//                                       --threshold T    max mismatching
//                                                        digits (kNN mode)
//                                       --digit-bits D   bits per CAM digit
//                                                        (1-3, multi-level)
//                                       --mats N --rows-per-mat N
//                                       --design D --batch N
//                                       --save-trace FILE
//                                       --stats-interval MS  sample the
//                                         service stats every MS ms
//                                       --stats-out FILE  write the sampled
//                                         window documents plus one final
//                                         "fetcam.stats.v1" snapshot (a
//                                         concatenated JSON stream; stderr
//                                         when only --stats-interval is
//                                         given).  Implies at least
//                                         --obs-level metrics.
//   fetcam_cli compile [file] [opts]  rule compiler + update planner report
//                                     (JSON on stdout): expansion factor,
//                                     planned vs naive writes, projected
//                                     write energy, per-mat wear histogram.
//                                     [file] is a rule-set file (see
//                                     src/compiler/rules.hpp); without one
//                                     a workload is generated.  Options:
//                                       --kind ip|classifier --cols N
//                                       --rules N --seed N
//                                       --churn-steps N  planner churn loop
//                                       --mats N --rows-per-mat N --design D
//                                       --no-endurance   disable wear-aware
//                                                        placement
// Designs: 16t, 2sg, 2dg, 1.5sg, 1.5dg.
//
// Global flags (before the command):
//   --threads N    pool size for the parallel evaluators (overrides the
//                  FETCAM_THREADS environment variable; results are
//                  bit-identical for any value — only wall clock changes).
//                  The engine subcommand's batch-match workers draw from
//                  this same pool: --threads/FETCAM_THREADS sets how many
//                  threads each batch's parallel match phase uses, while
//                  batch APPLICATION stays single-dispatcher and in order —
//                  which is why engine results are bit-identical at any
//                  thread count too.
//   --obs-level L  off | metrics | trace (default off, or the FETCAM_OBS
//                  environment variable).  "metrics" collects solver-health
//                  counters/histograms; "trace" additionally records
//                  Chrome-trace spans.  Simulation RESULTS are identical at
//                  every level — only telemetry output changes.
//   --metrics-out F  write the metrics registry as JSON (implies at least
//                  --obs-level metrics unless off was given explicitly)
//   --trace-out F  write a chrome://tracing / Perfetto-loadable timeline
//                  (implies --obs-level trace unless set explicitly)
//   --manifest-out F  write the run manifest JSON here (default
//                  run_manifest.json whenever obs-level != off)
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "compiler/applier.hpp"
#include "compiler/compile.hpp"
#include "compiler/planner.hpp"
#include "compiler/rules.hpp"
#include "engine/engine.hpp"
#include "engine/stats.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "dse/design_space.hpp"
#include "dse/driver.hpp"
#include "dse/report.hpp"
#include "eval/calibration.hpp"
#include "eval/disturb.hpp"
#include "eval/half_select.hpp"
#include "eval/array_eval.hpp"
#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "eval/variability.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/spice_export.hpp"
#include "tcam/sim_harness.hpp"
#include "util/parallel.hpp"

using namespace fetcam;

namespace {

/// Run manifest for the current invocation; command handlers add their
/// seeds / sweep parameters through this.
obs::RunManifest* g_manifest = nullptr;

struct SubcommandInfo {
  const char* name;
  const char* oneline;
};

constexpr SubcommandInfo kSubcommands[] = {
    {"table4", "figure-of-merit comparison of the five designs (Table IV)"},
    {"fig1", "SG FG-read vs DG BG-read device characteristics (Fig. 1)"},
    {"fig4", "search waveform match/miss demonstration (Fig. 4)"},
    {"fig7", "latency/energy vs word-length sweep (Fig. 7)"},
    {"ops", "per-design search/write operation verification table"},
    {"divider", "1.5T1Fe divider operating points across corners"},
    {"variability", "Monte-Carlo divider yield analysis"},
    {"disturb", "read-disturb polarization accumulation study"},
    {"halfselect", "write half-select disturb study"},
    {"search", "one search operation on a full simulated array"},
    {"datasheet", "array-level area/energy/latency datasheet"},
    {"export", "SPICE netlist export of a cell/array testbench"},
    {"engine", "software match engine: bench, serve, client modes"},
    {"compile", "rule-set compiler onto the TCAM array model"},
    {"dse", "design-space exploration: surrogate-pruned sweep with "
            "Pareto-frontier output"},
};

int usage() {
  std::fprintf(stderr,
               "usage: fetcam_cli [--threads N] [--obs-level off|metrics|"
               "trace]\n"
               "                  [--metrics-out F] [--trace-out F] "
               "[--manifest-out F]\n"
               "                  <subcommand> [args]\n\n"
               "subcommands:\n");
  for (const auto& sc : kSubcommands) {
    std::fprintf(stderr, "  %-12s %s\n", sc.name, sc.oneline);
  }
  std::fprintf(stderr,
               "\n  see the header comment of tools/fetcam_cli.cpp\n"
               "  engine: --threads/FETCAM_THREADS also sets the engine's\n"
               "  batch-match worker pool (results are bit-identical at any\n"
               "  thread count; batches always apply in submission order)\n");
  return 2;
}

bool parse_design(const std::string& s, arch::TcamDesign& out) {
  if (s == "16t") out = arch::TcamDesign::kCmos16T;
  else if (s == "2sg") out = arch::TcamDesign::k2SgFefet;
  else if (s == "2dg") out = arch::TcamDesign::k2DgFefet;
  else if (s == "1.5sg") out = arch::TcamDesign::k1p5SgFe;
  else if (s == "1.5dg") out = arch::TcamDesign::k1p5DgFe;
  else return false;
  return true;
}

int cmd_table4(int argc, char** argv) {
  eval::FomOptions opts;
  if (argc > 0) opts.n_bits = std::atoi(argv[0]);
  const auto foms = eval::table4(opts);
  std::printf("%s", eval::render_table4(foms).c_str());
  return 0;
}

int cmd_fig1() {
  for (const auto& c : {eval::fig1_sg_fg_read(), eval::fig1_dg_bg_read()}) {
    std::printf("%s: MW=%.2f V, on/off=%.3g %s\n", c.label.c_str(),
                c.memory_window, c.on_off_ratio, c.ok ? "" : "(FAILED)");
  }
  return 0;
}

int cmd_fig4() {
  for (const auto& c : eval::fig4_waveforms(tcam::Flavor::kDg)) {
    std::printf("%-12s -> SA %s %s\n", c.label.c_str(),
                c.matched ? "match" : "miss", c.ok ? "" : "(FAILED)");
  }
  return 0;
}

int cmd_fig7(int argc, char** argv) {
  std::vector<int> lengths;
  for (int i = 0; i < argc; ++i) lengths.push_back(std::atoi(argv[i]));
  if (lengths.empty()) lengths = {16, 32, 64};
  for (const auto d :
       {arch::TcamDesign::k2SgFefet, arch::TcamDesign::k2DgFefet,
        arch::TcamDesign::k1p5SgFe, arch::TcamDesign::k1p5DgFe}) {
    std::printf("%s:\n", arch::design_name(d).c_str());
    for (const auto& p : eval::fig7_sweep(d, lengths)) {
      std::printf("  N=%-4d latency %.0f ps, E_avg %.3f fJ/cell %s\n",
                  p.n_bits, p.latency_full_ps, p.energy_avg_fj,
                  p.ok ? "" : "(FAILED)");
    }
  }
  return 0;
}

int cmd_ops(int argc, char** argv) {
  arch::TcamDesign d;
  if (argc < 1 || !parse_design(argv[0], d)) return usage();
  int failures = 0;
  for (const auto& c : eval::verify_operation_table(d)) {
    std::printf("%-26s %-40s %s\n", c.operation.c_str(), c.detail.c_str(),
                c.passed ? "OK" : "FAIL");
    if (!c.passed) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int cmd_divider() {
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    std::printf("1.5T1%s-Fe:\n", flavor == tcam::Flavor::kSg ? "SG" : "DG");
    for (const auto& p : eval::characterize_divider(flavor)) {
      std::printf("  stored %c query %d: slb=%.3f ml=%.3f %s\n",
                  arch::to_char(p.stored), p.query, p.v_slb, p.v_ml,
                  p.correct ? "OK" : "WRONG");
    }
  }
  return 0;
}

int cmd_variability(int argc, char** argv) {
  eval::VariabilityParams p;
  if (argc > 0) {
    const double scale = std::atof(argv[0]);
    p.sigma_fefet_vth *= scale;
    p.sigma_ps_rel *= scale;
    p.sigma_mos_vth *= scale;
    p.sigma_vc_rel *= scale;
    if (g_manifest != nullptr) g_manifest->add_info("sigma_scale", argv[0]);
  }
  if (g_manifest != nullptr) {
    g_manifest->add_info("rng_seed", static_cast<long long>(p.seed));
    g_manifest->add_info("samples", static_cast<long long>(p.samples));
  }
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    const auto rep = eval::analyze_variability(flavor, p);
    const std::string label =
        flavor == tcam::Flavor::kSg ? "1.5T1SG-Fe" : "1.5T1DG-Fe";
    std::printf("%s", eval::render_variability(label, rep).c_str());
  }
  return 0;
}

int cmd_halfselect() {
  for (const bool dg : {true, false}) {
    std::printf("%s flavour:\n", dg ? "DG" : "SG");
    for (const auto& pt : eval::half_select_study(dg)) {
      std::printf("  %-32s v_FE=%.2f V, writes to fail: %lld%s\n",
                  eval::inhibit_scheme_name(pt.scheme).c_str(),
                  pt.v_fe_program, pt.writes_to_fail,
                  pt.survives_budget ? "+ (survives budget)" : "");
    }
  }
  return 0;
}

int cmd_disturb() {
  const auto res = eval::read_disturb_comparison();
  for (const auto& pt : res.sg_fg_read) {
    std::printf("SG FG read %.2f V: |dP|/Ps = %.3g\n", pt.v_read,
                pt.p_drift_norm);
  }
  std::printf("DG BG read %.2f V: |dP|/Ps = %.3g (disturb-free)\n",
              res.dg_bg_read.v_read, res.dg_bg_read.p_drift_norm);
  return 0;
}

int cmd_datasheet(int argc, char** argv) {
  eval::DatasheetOptions opts;
  if (argc >= 2) {
    opts.rows = std::atoi(argv[0]);
    opts.cols = std::atoi(argv[1]);
  }
  std::vector<eval::ArrayDatasheet> sheets;
  for (const auto d :
       {arch::TcamDesign::kCmos16T, arch::TcamDesign::k2SgFefet,
        arch::TcamDesign::k2DgFefet, arch::TcamDesign::k1p5SgFe,
        arch::TcamDesign::k1p5DgFe}) {
    sheets.push_back(eval::array_datasheet(d, opts));
  }
  std::printf("%s", eval::render_datasheets(sheets).c_str());
  return 0;
}

int cmd_export(int argc, char** argv) {
  arch::TcamDesign d;
  if (argc < 4 || !parse_design(argv[0], d)) return usage();
  tcam::SearchConfig cfg;
  cfg.stored = arch::word_from_string(argv[1]);
  cfg.query = arch::bits_from_string(argv[2]);
  tcam::WordOptions opts;
  opts.n_bits = static_cast<int>(cfg.stored.size());
  auto h = tcam::make_word_harness(d, opts);
  h->build_search(cfg);
  spice::SpiceExportOptions eopts;
  eopts.title = arch::design_name(d) + " search: stored " +
                std::string(argv[1]) + " query " + argv[2];
  eopts.tran_step = 2e-12;
  eopts.tran_stop = h->t_stop();
  if (!spice::export_ngspice_file(argv[3], h->circuit(), eopts)) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  std::printf("wrote %s (%d devices)\n", argv[3],
              static_cast<int>(h->circuit().devices().size()));
  return 0;
}

int cmd_search(int argc, char** argv) {
  arch::TcamDesign d;
  if (argc < 3 || !parse_design(argv[0], d)) return usage();
  tcam::SearchConfig cfg;
  cfg.stored = arch::word_from_string(argv[1]);
  cfg.query = arch::bits_from_string(argv[2]);
  tcam::WordOptions opts;
  opts.n_bits = static_cast<int>(cfg.stored.size());
  const auto m = tcam::measure_search(d, opts, cfg);
  if (!m.ok) {
    std::printf("simulation failed: %s\n", m.error.c_str());
    return 1;
  }
  std::printf("%s: stored %s vs query %s -> %s (expected %s)\n",
              arch::design_name(d).c_str(), argv[1], argv[2],
              m.measured_match ? "MATCH" : "miss",
              m.expected_match ? "MATCH" : "miss");
  if (m.latency) std::printf("latency: %.0f ps\n", *m.latency * 1e12);
  std::printf("energy/cell: %.3f fJ\n", m.energy_per_cell * 1e15);
  return m.measured_match == m.expected_match ? 0 : 1;
}

int cmd_engine(int argc, char** argv) {
  engine::TraceSpec spec;
  spec.cols = 64;
  spec.rules = 1024;
  spec.queries = 20000;
  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  engine::RunOptions ropts;
  engine::NearestRunOptions nopts;
  bool nearest = false;  ///< kNN mode: embedding workload or explicit --k
  std::string trace_path, save_path;
  std::string stats_out;
  int stats_interval_ms = 0;

  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--trace" && (v = value())) {
      trace_path = v;
    } else if (flag == "--save-trace" && (v = value())) {
      save_path = v;
    } else if ((flag == "--kind" || flag == "--workload") && (v = value())) {
      const std::string kind = v;
      if (kind == "ip") {
        spec.kind = engine::TraceKind::kIpPrefix;
      } else if (kind == "classifier") {
        spec.kind = engine::TraceKind::kClassifier;
      } else if (kind == "embedding") {
        spec.kind = engine::TraceKind::kEmbedding;
        nearest = true;
      } else {
        return usage();
      }
    } else if (flag == "--k" && (v = value())) {
      nopts.k = std::atoi(v);
      nearest = true;
    } else if (flag == "--threshold" && (v = value())) {
      nopts.threshold = std::atoi(v);
      nearest = true;
    } else if (flag == "--digit-bits" && (v = value())) {
      cfg.digit_bits = std::atoi(v);
      spec.digit_bits = cfg.digit_bits;
    } else if (flag == "--cols" && (v = value())) {
      spec.cols = std::atoi(v);
    } else if (flag == "--rules" && (v = value())) {
      spec.rules = std::atoi(v);
    } else if (flag == "--queries" && (v = value())) {
      spec.queries = std::atoi(v);
    } else if (flag == "--match-rate" && (v = value())) {
      spec.match_rate = std::atof(v);
    } else if (flag == "--update-rate" && (v = value())) {
      ropts.update_rate = std::atof(v);
    } else if (flag == "--seed" && (v = value())) {
      spec.seed = static_cast<std::uint64_t>(std::atoll(v));
      ropts.seed = spec.seed;
    } else if (flag == "--mats" && (v = value())) {
      cfg.mats = std::atoi(v);
    } else if (flag == "--rows-per-mat" && (v = value())) {
      cfg.rows_per_mat = std::atoi(v);
    } else if (flag == "--batch" && (v = value())) {
      ropts.batch_size = std::atoi(v);
      nopts.batch_size = ropts.batch_size;
    } else if (flag == "--design" && (v = value())) {
      if (!parse_design(v, cfg.design)) return usage();
    } else if (flag == "--stats-interval" && (v = value())) {
      stats_interval_ms = std::atoi(v);
    } else if (flag == "--stats-out" && (v = value())) {
      stats_out = v;
    } else {
      return usage();
    }
  }
  // Periodic service-stats sampling needs the recorders populated, so the
  // stats flags imply at least metrics level (same contract as
  // --metrics-out).
  if ((stats_interval_ms > 0 || !stats_out.empty()) &&
      !obs::metrics_on()) {
    obs::set_level(obs::Level::kMetrics);
  }

  engine::Trace trace;
  if (!trace_path.empty()) {
    const auto loaded = engine::load_trace(trace_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load trace %s\n", trace_path.c_str());
      return 1;
    }
    trace = *loaded;
  } else {
    trace = engine::generate_trace(spec);
  }
  if (!save_path.empty() && !engine::save_trace(trace, save_path)) {
    std::fprintf(stderr, "cannot save trace to %s\n", save_path.c_str());
    return 1;
  }
  cfg.cols = trace.cols;

  if (g_manifest != nullptr) {
    g_manifest->add_info("engine_trace",
                         trace_path.empty()
                             ? engine::trace_kind_name(spec.kind)
                             : trace_path);
    g_manifest->add_info("engine_rules",
                         static_cast<long long>(trace.rules.size()));
    g_manifest->add_info("engine_queries",
                         static_cast<long long>(trace.queries.size()));
    g_manifest->add_info("rng_seed", static_cast<long long>(spec.seed));
  }

  try {
    engine::TcamTable table(cfg);
    const auto ids = engine::load_rules(table, trace);
    engine::SearchEngine eng(table);

    // Service-stats sampling: a sampler thread appends one deterministic
    // WindowedSnapshot JSON document (delta counters / rates / stage
    // percentiles) to --stats-out every --stats-interval ms, and the run
    // finishes with one final "fetcam.stats.v1" snapshot.  The file is a
    // concatenated stream of JSON documents.  Without --stats-out the
    // samples go to stderr (stdout stays a single report document).
    std::FILE* stats_file = nullptr;
    if (stats_interval_ms > 0 || !stats_out.empty()) {
      stats_file = stats_out.empty() ? stderr
                                     : std::fopen(stats_out.c_str(), "w");
      if (stats_file == nullptr) {
        std::fprintf(stderr, "cannot open stats output %s\n",
                     stats_out.c_str());
        return 1;
      }
    }
    std::mutex stats_mu;
    std::condition_variable stats_cv;
    bool stats_stop = false;
    std::thread sampler;
    if (stats_file != nullptr && stats_interval_ms > 0) {
      sampler = std::thread([&] {
        obs::WindowedSnapshot window;
        std::unique_lock<std::mutex> lock(stats_mu);
        while (!stats_cv.wait_for(
            lock, std::chrono::milliseconds(stats_interval_ms),
            [&] { return stats_stop; })) {
          const std::string doc = window.capture_json();
          std::fwrite(doc.data(), 1, doc.size(), stats_file);
          std::fflush(stats_file);
        }
      });
    }

    engine::RunSummary s;
    engine::NearestRunSummary ns;
    if (nearest) {
      ns = engine::run_nearest_trace(eng, table, trace, ids, nopts);
    } else {
      s = engine::run_trace(eng, table, trace, ids, ropts);
    }

    if (sampler.joinable()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        stats_stop = true;
      }
      stats_cv.notify_all();
      sampler.join();
    }
    if (stats_file != nullptr) {
      const std::string final_doc = engine::stats_snapshot_json(eng);
      std::fwrite(final_doc.data(), 1, final_doc.size(), stats_file);
      std::fflush(stats_file);
      if (stats_file != stderr) std::fclose(stats_file);
    }
    if (nearest) {
      std::printf(
          "{\n"
          "  \"design\": \"%s\",\n"
          "  \"mode\": \"nearest\",\n"
          "  \"mats\": %d,\n"
          "  \"rows_per_mat\": %d,\n"
          "  \"cols\": %d,\n"
          "  \"digit_bits\": %d,\n"
          "  \"threads\": %d,\n"
          "  \"rules\": %zu,\n"
          "  \"k\": %d,\n"
          "  \"threshold\": %d,\n"
          "  \"requests\": %llu,\n"
          "  \"searches\": %llu,\n"
          "  \"batches\": %llu,\n"
          "  \"hit_rate\": %.6f,\n"
          "  \"recall_at_k\": %.6f,\n"
          "  \"recall_queries\": %llu,\n"
          "  \"distance_histogram\": [",
          arch::design_name(cfg.design).c_str(), cfg.mats, cfg.rows_per_mat,
          cfg.cols, cfg.digit_bits, util::thread_count(), trace.rules.size(),
          ns.k, ns.threshold, static_cast<unsigned long long>(ns.requests),
          static_cast<unsigned long long>(ns.searches),
          static_cast<unsigned long long>(ns.batches), ns.hit_rate,
          ns.recall_at_k,
          static_cast<unsigned long long>(ns.recall_queries));
      for (std::size_t i = 0; i < ns.distance_histogram.size(); ++i) {
        std::printf("%s%llu", i ? ", " : "",
                    static_cast<unsigned long long>(ns.distance_histogram[i]));
      }
      std::printf(
          "],\n"
          "  \"energy_j\": %.6g,\n"
          "  \"energy_per_search_j\": %.6g,\n"
          "  \"model_time_s\": %.6g,\n"
          "  \"wall_s\": %.6f,\n"
          "  \"qps\": %.1f,\n"
          "  \"p50_batch_us\": %.1f,\n"
          "  \"p99_batch_us\": %.1f\n"
          "}\n",
          ns.energy_j, ns.energy_per_search_j, ns.model_time_s, ns.wall_s,
          ns.qps, ns.p50_batch_us, ns.p99_batch_us);
      return 0;
    }
    std::printf(
        "{\n"
        "  \"design\": \"%s\",\n"
        "  \"mats\": %d,\n"
        "  \"rows_per_mat\": %d,\n"
        "  \"cols\": %d,\n"
        "  \"threads\": %d,\n"
        "  \"rules\": %zu,\n"
        "  \"requests\": %llu,\n"
        "  \"searches\": %llu,\n"
        "  \"writes\": %llu,\n"
        "  \"batches\": %llu,\n"
        "  \"hit_rate\": %.6f,\n"
        "  \"step1_miss_rate\": %.6f,\n"
        "  \"energy_j\": %.6g,\n"
        "  \"energy_per_search_j\": %.6g,\n"
        "  \"driver_stalls\": %lld,\n"
        "  \"write_cycles\": %lld,\n"
        "  \"model_time_s\": %.6g,\n"
        "  \"wall_s\": %.6f,\n"
        "  \"qps\": %.1f,\n"
        "  \"p50_batch_us\": %.1f,\n"
        "  \"p99_batch_us\": %.1f\n"
        "}\n",
        arch::design_name(cfg.design).c_str(), cfg.mats, cfg.rows_per_mat,
        cfg.cols, util::thread_count(), trace.rules.size(),
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.searches),
        static_cast<unsigned long long>(s.writes),
        static_cast<unsigned long long>(s.batches), s.hit_rate,
        s.step1_miss_rate, s.energy_j, s.energy_per_search_j, s.driver_stalls,
        s.write_cycles, s.model_time_s, s.wall_s, s.qps, s.p50_batch_us,
        s.p99_batch_us);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "engine run failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_compile(int argc, char** argv) {
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kClassifier;
  spec.cols = 32;
  spec.rules = 256;
  spec.queries = 0;
  engine::TableConfig cfg;
  cfg.mats = 4;
  cfg.rows_per_mat = 128;
  std::string rules_path;
  int churn_steps = 8;
  compiler::PlannerOptions popts;

  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag.rfind("--", 0) != 0) {
      rules_path = flag;
    } else if (flag == "--kind" && (v = value())) {
      const std::string kind = v;
      if (kind == "ip") spec.kind = engine::TraceKind::kIpPrefix;
      else if (kind == "classifier") spec.kind = engine::TraceKind::kClassifier;
      else return usage();
    } else if (flag == "--cols" && (v = value())) {
      spec.cols = std::atoi(v);
    } else if (flag == "--rules" && (v = value())) {
      spec.rules = std::atoi(v);
    } else if (flag == "--seed" && (v = value())) {
      spec.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--churn-steps" && (v = value())) {
      churn_steps = std::atoi(v);
    } else if (flag == "--mats" && (v = value())) {
      cfg.mats = std::atoi(v);
    } else if (flag == "--rows-per-mat" && (v = value())) {
      cfg.rows_per_mat = std::atoi(v);
    } else if (flag == "--design" && (v = value())) {
      if (!parse_design(v, cfg.design)) return usage();
    } else if (flag == "--no-endurance") {
      popts.placement.endurance_aware = false;
    } else {
      return usage();
    }
  }

  compiler::RuleSet rules;
  if (!rules_path.empty()) {
    const auto loaded = compiler::load_rule_set(rules_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot load rule set %s\n", rules_path.c_str());
      return 1;
    }
    rules = *loaded;
  } else {
    rules = compiler::rule_set_from_trace(engine::generate_trace(spec));
  }
  cfg.cols = rules.cols;

  if (g_manifest != nullptr) {
    g_manifest->add_info("compile_rules",
                         rules_path.empty() ? engine::trace_kind_name(spec.kind)
                                            : rules_path);
    g_manifest->add_info("compile_source_rules",
                         static_cast<long long>(rules.rules.size()));
    g_manifest->add_info("compile_churn_steps",
                         static_cast<long long>(churn_steps));
    g_manifest->add_info("rng_seed", static_cast<long long>(spec.seed));
  }

  try {
    const auto compiled = compiler::compile_rules(rules);
    engine::TcamTable table(cfg);
    engine::SearchEngine eng(table);

    // Initial install (this IS the naive cost: nothing to reuse yet).
    const auto install_plan = compiler::plan_update({}, compiled, table, popts);
    auto installed = compiler::apply_plan(eng, install_plan, compiled).installed;

    // Churn loop: each step edits the rule set, recompiles, and applies
    // the delta plan; totals accumulate the planner's savings.
    engine::ChurnSpec churn;
    churn.seed = spec.seed;
    compiler::PlanCost churn_cost;
    compiler::UpdatePlan last_plan;
    long long keeps = 0, flips = 0, rewrites = 0, inserts = 0, erases = 0,
              relocations = 0;
    std::vector<engine::TraceRule> current_rules;
    for (const auto& r : rules.rules) {
      if (r.has_range) continue;  // churn edits plain words only
      current_rules.push_back({r.match, r.priority});
    }
    const bool can_churn =
        current_rules.size() == rules.rules.size() && churn_steps > 0;
    for (int step = 1; can_churn && step <= churn_steps; ++step) {
      current_rules = engine::churn_rules(current_rules, spec.kind, rules.cols,
                                          churn, step);
      const auto next = compiler::compile_rules(
          compiler::rule_set_from_rules(rules.cols, current_rules));
      last_plan = compiler::plan_update(installed, next, table, popts);
      installed = compiler::apply_plan(eng, last_plan, next).installed;
      churn_cost.write_phases += last_plan.cost.write_phases;
      churn_cost.switched_cells += last_plan.cost.switched_cells;
      churn_cost.energy_j += last_plan.cost.energy_j;
      churn_cost.naive_write_phases += last_plan.cost.naive_write_phases;
      churn_cost.naive_switched_cells += last_plan.cost.naive_switched_cells;
      churn_cost.naive_energy_j += last_plan.cost.naive_energy_j;
      keeps += last_plan.keeps;
      flips += last_plan.priority_flips;
      rewrites += last_plan.rewrites;
      inserts += last_plan.inserts;
      erases += last_plan.erases;
      relocations += last_plan.relocations;
    }
    eng.drain();

    // Wear histogram: per-mat write totals + row extremes.
    std::string per_mat;
    std::uint64_t max_row = 0;
    std::uint64_t min_row = ~std::uint64_t{0};
    std::uint64_t max_mat = 0;
    std::uint64_t min_mat = ~std::uint64_t{0};
    for (int m = 0; m < table.mats(); ++m) {
      const auto& e = table.endurance(m);
      if (!per_mat.empty()) per_mat += ", ";
      per_mat += std::to_string(e.total_writes());
      max_row = std::max(max_row, e.max_row_writes());
      min_row = std::min(min_row, e.min_row_writes());
      max_mat = std::max(max_mat, e.total_writes());
      min_mat = std::min(min_mat, e.total_writes());
    }

    const auto& st = compiled.stats;
    std::printf(
        "{\n"
        "  \"design\": \"%s\",\n"
        "  \"mats\": %d,\n"
        "  \"rows_per_mat\": %d,\n"
        "  \"cols\": %d,\n"
        "  \"endurance_aware\": %s,\n"
        "  \"source_rules\": %d,\n"
        "  \"empty_rules\": %d,\n"
        "  \"expanded_entries\": %lld,\n"
        "  \"shadowed_removed\": %lld,\n"
        "  \"redundant_removed\": %lld,\n"
        "  \"compiled_entries\": %zu,\n"
        "  \"priority_levels\": %d,\n"
        "  \"expansion_factor\": %.4f,\n"
        "  \"install\": {\n"
        "    \"write_phases\": %lld,\n"
        "    \"switched_cells\": %lld,\n"
        "    \"write_energy_j\": %.6g\n"
        "  },\n"
        "  \"churn\": {\n"
        "    \"steps\": %d,\n"
        "    \"write_phases\": %lld,\n"
        "    \"switched_cells\": %lld,\n"
        "    \"write_energy_j\": %.6g,\n"
        "    \"naive_write_phases\": %lld,\n"
        "    \"naive_write_energy_j\": %.6g,\n"
        "    \"writes_vs_naive\": %.4f,\n"
        "    \"keeps\": %lld,\n"
        "    \"priority_flips\": %lld,\n"
        "    \"rewrites\": %lld,\n"
        "    \"inserts\": %lld,\n"
        "    \"erases\": %lld,\n"
        "    \"relocations\": %lld\n"
        "  },\n"
        "  \"wear\": {\n"
        "    \"per_mat_writes\": [%s],\n"
        "    \"mat_spread\": %llu,\n"
        "    \"max_row_writes\": %llu,\n"
        "    \"min_row_writes\": %llu\n"
        "  }\n"
        "}\n",
        arch::design_name(cfg.design).c_str(), cfg.mats, cfg.rows_per_mat,
        cfg.cols, popts.placement.endurance_aware ? "true" : "false",
        st.source_rules, st.empty_rules, st.expanded_entries,
        st.shadowed_removed, st.redundant_removed, compiled.entries.size(),
        st.priority_levels, st.expansion_factor,
        install_plan.cost.write_phases, install_plan.cost.switched_cells,
        install_plan.cost.energy_j, can_churn ? churn_steps : 0,
        churn_cost.write_phases, churn_cost.switched_cells,
        churn_cost.energy_j, churn_cost.naive_write_phases,
        churn_cost.naive_energy_j,
        churn_cost.naive_write_phases > 0
            ? static_cast<double>(churn_cost.write_phases) /
                  static_cast<double>(churn_cost.naive_write_phases)
            : 0.0,
        keeps, flips, rewrites, inserts, erases, relocations, per_mat.c_str(),
        static_cast<unsigned long long>(max_mat - min_mat),
        static_cast<unsigned long long>(max_row),
        static_cast<unsigned long long>(min_row));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compile run failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

// fetcam_cli dse [--space=FILE] [--budget=N] [--surrogate=on|off]
//                [--mc=N] [--seed=N] [--json=FILE]
//
// Sweeps the design space (default: dse::default_space(); --space loads
// the `key = v1 v2 ...` format of docs/DSE.md), prints the Pareto
// frontier, and writes the fetcam.dse.v1 JSON document (default
// BENCH_dse.json; --json= with an empty value disables the file).  With
// the surrogate on (default) the exact arm runs once and the pruned arm
// replays against it, so the JSON carries both plus the frontier-recall
// figure the CI gate checks.  Parallelism comes from the global --threads
// flag; the table is bit-identical at any thread count.
int cmd_dse(int argc, char** argv) {
  dse::DseOptions opts;
  opts.space = dse::default_space();
  std::string json_out = "BENCH_dse.json";
  bool surrogate = true;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value_of = [&a](const char* prefix) {
      return a.substr(std::strlen(prefix));
    };
    // Whole-string numeric parse: "--budget=abc" is an error, not 0.
    const auto parse_u64 = [](const std::string& flag,
                              const std::string& v) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0') {
        throw std::invalid_argument(flag + " wants a non-negative integer, got '" +
                                    v + "'");
      }
      return n;
    };
    try {
      if (a.rfind("--space=", 0) == 0) {
        opts.space = dse::load_space_file(value_of("--space="));
      } else if (a.rfind("--budget=", 0) == 0) {
        opts.budget = static_cast<std::size_t>(
            parse_u64("--budget", value_of("--budget=")));
      } else if (a.rfind("--surrogate=", 0) == 0) {
        const std::string v = value_of("--surrogate=");
        if (v == "on") surrogate = true;
        else if (v == "off") surrogate = false;
        else {
          std::fprintf(stderr, "--surrogate wants on|off\n");
          return usage();
        }
      } else if (a.rfind("--mc=", 0) == 0) {
        const unsigned long long mc = parse_u64("--mc", value_of("--mc="));
        if (mc == 0) throw std::invalid_argument("--mc wants >= 1 trials");
        opts.eval.mc_samples = static_cast<int>(mc);
      } else if (a.rfind("--seed=", 0) == 0) {
        opts.seed = parse_u64("--seed", value_of("--seed="));
        opts.eval.seed = opts.seed;
      } else if (a.rfind("--json=", 0) == 0) {
        json_out = value_of("--json=");
      } else {
        std::fprintf(stderr, "dse: unknown flag '%s'\n", a.c_str());
        return usage();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dse: %s\n", e.what());
      return 2;
    }
  }

  if (g_manifest != nullptr) {
    g_manifest->add_info("rng_seed", static_cast<long long>(opts.seed));
    g_manifest->add_info("dse_budget", static_cast<long long>(opts.budget));
    g_manifest->add_info("dse_surrogate", surrogate ? "on" : "off");
  }

  try {
    std::string json, text;
    if (surrogate) {
      const dse::DseComparison cmp = dse::run_dse_comparison(opts);
      const auto paper = dse::check_paper_points(opts, cmp.exact);
      json = dse::render_json(opts, cmp.exact, &cmp.pruned,
                              cmp.frontier_recall, paper,
                              util::thread_count());
      text = dse::render_text(opts, cmp.exact, &cmp.pruned,
                              cmp.frontier_recall, paper);
    } else {
      dse::DseOptions exact_opts = opts;
      exact_opts.use_surrogate = false;
      const dse::DseResult res = dse::run_dse(exact_opts);
      const auto paper = dse::check_paper_points(opts, res);
      json = dse::render_json(opts, res, nullptr, 0.0, paper,
                              util::thread_count());
      text = dse::render_text(opts, res, nullptr, 0.0, paper);
    }
    std::printf("%s", text.c_str());
    if (!json_out.empty()) {
      std::FILE* f = std::fopen(json_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dse: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& cmd, int argc, char** argv) {
  if (cmd == "table4") return cmd_table4(argc - 2, argv + 2);
  if (cmd == "fig1") return cmd_fig1();
  if (cmd == "fig4") return cmd_fig4();
  if (cmd == "fig7") return cmd_fig7(argc - 2, argv + 2);
  if (cmd == "ops") return cmd_ops(argc - 2, argv + 2);
  if (cmd == "divider") return cmd_divider();
  if (cmd == "variability") return cmd_variability(argc - 2, argv + 2);
  if (cmd == "disturb") return cmd_disturb();
  if (cmd == "halfselect") return cmd_halfselect();
  if (cmd == "search") return cmd_search(argc - 2, argv + 2);
  if (cmd == "datasheet") return cmd_datasheet(argc - 2, argv + 2);
  if (cmd == "export") return cmd_export(argc - 2, argv + 2);
  if (cmd == "engine") return cmd_engine(argc - 2, argv + 2);
  if (cmd == "compile") return cmd_compile(argc - 2, argv + 2);
  if (cmd == "dse") return cmd_dse(argc - 2, argv + 2);
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::string command_line;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command_line += ' ';
    command_line += argv[i];
  }

  // Global flags precede the command.
  std::string metrics_out, trace_out, manifest_out;
  bool level_given = false;
  int argi = 1;
  while (argi < argc && std::strncmp(argv[argi], "--", 2) == 0) {
    const std::string flag = argv[argi];
    const auto take_value = [&](std::string& out) {
      if (argi + 1 >= argc) return false;
      out = argv[argi + 1];
      argi += 2;
      return true;
    };
    if (flag == "--threads" && argi + 1 < argc) {
      const int n = std::atoi(argv[argi + 1]);
      if (n <= 0) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return 2;
      }
      util::set_thread_count(n);
      argi += 2;
    } else if (flag == "--obs-level") {
      std::string value;
      obs::Level level;
      if (!take_value(value) || !obs::parse_level(value, level)) {
        std::fprintf(stderr, "--obs-level wants off|metrics|trace\n");
        return 2;
      }
      obs::set_level(level);
      level_given = true;
    } else if (flag == "--metrics-out") {
      if (!take_value(metrics_out)) return usage();
    } else if (flag == "--trace-out") {
      if (!take_value(trace_out)) return usage();
    } else if (flag == "--manifest-out") {
      if (!take_value(manifest_out)) return usage();
    } else {
      return usage();
    }
  }
  // Output flags imply a collection level unless one was set explicitly.
  if (!level_given) {
    if (!trace_out.empty()) {
      obs::set_level(obs::Level::kTrace);
    } else if (!metrics_out.empty() && obs::level() < obs::Level::kMetrics) {
      obs::set_level(obs::Level::kMetrics);
    }
  }

  argc -= argi - 1;
  argv += argi - 1;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  obs::RunManifest manifest("fetcam_cli", command_line);
  manifest.set_threads(util::thread_count());
  manifest.set_level(obs::level());
  g_manifest = &manifest;

  int rc;
  {
    const obs::PhaseTimer phase(manifest, cmd);
    rc = dispatch(cmd, argc, argv);
  }
  g_manifest = nullptr;

  // Telemetry output.  With observability off and no explicit output paths
  // this writes nothing — the baseline run is byte-for-byte untouched.
  if (!metrics_out.empty() &&
      !obs::MetricsRegistry::instance().write_json(metrics_out)) {
    std::fprintf(stderr, "failed to write metrics to %s\n",
                 metrics_out.c_str());
  }
  if (!trace_out.empty() &&
      !obs::TraceCollector::instance().write_chrome_trace(trace_out)) {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
  }
  if (manifest_out.empty() && obs::level() != obs::Level::kOff) {
    manifest_out = "run_manifest.json";
  }
  if (!manifest_out.empty() && !manifest.write(manifest_out)) {
    std::fprintf(stderr, "failed to write manifest to %s\n",
                 manifest_out.c_str());
  }
  return rc;
}
