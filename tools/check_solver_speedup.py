#!/usr/bin/env python3
"""CI guard: the KLU-style refactor path must stay fast.

Reads the machine-readable report emitted by

    bench_solver_scaling --solver-json=BENCH_solver.json

and fails when, at the LARGEST kernel size:

  * the steady-state per-iteration path (stamp-slot replay + numeric-only
    refactor) is not at least MIN_PATH_SPEEDUP x faster than the from-scratch
    path (triplet CSC build + full symbolic+numeric factor) -- this is the
    cost a Newton iteration actually pays, and the headline the reuse
    machinery must earn; and
  * the refactor kernel alone is not at least MIN_FACTOR_SPEEDUP x faster
    than the full factor kernel -- a floor that catches regressions hidden
    by assembly wins.

When the report carries end-to-end transient sections it also checks the
refactor hit rate (>= MIN_HIT_RATE): a cold cache means the pattern keying
broke and every "refactor" silently full-factors.

Usage: check_solver_speedup.py BENCH_solver.json
"""

import json
import sys

MIN_PATH_SPEEDUP = 2.0
MIN_FACTOR_SPEEDUP = 1.5
MIN_HIT_RATE = 0.9


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)

    kernels = report.get("kernels", [])
    if not kernels:
        print("FAIL: no kernel rows in report")
        return 1
    largest = max(kernels, key=lambda r: r["n"])
    scratch = largest["triplet_build_us"] + largest["full_factor_us"]
    steady = largest["replay_fill_us"] + largest["refactor_us"]
    path_speedup = scratch / steady if steady > 0 else 0.0
    factor_speedup = (
        largest["full_factor_us"] / largest["refactor_us"]
        if largest["refactor_us"] > 0
        else 0.0
    )
    print(
        f"n={largest['n']}: scratch path {scratch:.1f}us, "
        f"steady path {steady:.1f}us -> {path_speedup:.2f}x "
        f"(factor kernel alone {factor_speedup:.2f}x)"
    )
    ok = True
    if path_speedup < MIN_PATH_SPEEDUP:
        print(
            f"FAIL: steady-state path speedup {path_speedup:.2f}x "
            f"< {MIN_PATH_SPEEDUP}x at n={largest['n']}"
        )
        ok = False
    if factor_speedup < MIN_FACTOR_SPEEDUP:
        print(
            f"FAIL: refactor kernel speedup {factor_speedup:.2f}x "
            f"< {MIN_FACTOR_SPEEDUP}x at n={largest['n']}"
        )
        ok = False

    # Acceptance target: >= 2x on the per-iteration Newton solver path at
    # the paper-scale (256-bit) match-line slice.
    for np_row in report.get("newton_path", []):
        speedup = np_row.get("speedup", 0.0)
        print(
            f"newton_path n_bits={np_row['n_bits']} "
            f"(n={np_row['system_size']}): scratch {np_row['scratch_us']:.1f}us, "
            f"steady {np_row['steady_us']:.1f}us -> {speedup:.2f}x"
        )
        if np_row["n_bits"] >= 256 and speedup < MIN_PATH_SPEEDUP:
            print(
                f"FAIL: newton path speedup {speedup:.2f}x < {MIN_PATH_SPEEDUP}x "
                f"at n_bits={np_row['n_bits']}"
            )
            ok = False

    for ab in report.get("transient", []):
        hit = ab.get("refactor_hit_rate", 0.0)
        print(
            f"transient n_bits={ab['n_bits']}: hit_rate={hit:.3f} "
            f"reuse_on={ab['reuse_on_s']:.3f}s reuse_off={ab['reuse_off_s']:.3f}s"
        )
        if hit < MIN_HIT_RATE:
            print(
                f"FAIL: refactor hit rate {hit:.3f} < {MIN_HIT_RATE} "
                f"at n_bits={ab['n_bits']}"
            )
            ok = False

    print("OK" if ok else "solver perf guard failed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
