#!/usr/bin/env python3
"""CI guard: instrumentation left OFF must be free.

Runs bench_solver_scaling from two build trees --

  * the default build (FETCAM_OBS=ON) with the runtime level forced off, and
  * a reference build compiled with -DFETCAM_OBS=OFF (every guarded block
    optimized away)

-- interleaved several times, takes the per-benchmark minimum of each (the
most noise-robust point estimate for a throughput bench), and fails when the
runtime-off build is more than THRESHOLD slower than the compiled-out build.

Usage: check_obs_overhead.py <obs-on-bench> <obs-off-bench> [threshold-%]
"""

import json
import os
import subprocess
import sys
import tempfile

FILTER = "BM_DenseLu/256$|BM_SparseLu/2048$|BM_WordSearchTransient/32$"
# Interleaved rounds x in-pass repetitions, min over all samples: wall-clock
# benches on shared CI runners are noisy in one direction only (slower), so
# the minimum is the stable point estimate and more samples tighten it.
ROUNDS = 8
REPETITIONS = 2


def run_bench(binary):
    """Run one benchmark pass; returns {bench_name: cpu_time_us}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        env = dict(os.environ, FETCAM_OBS="off")
        subprocess.run(
            [
                binary,
                f"--benchmark_filter={FILTER}",
                f"--benchmark_repetitions={REPETITIONS}",
                f"--benchmark_out={out_path}",
                "--benchmark_out_format=json",
            ],
            env=env,
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(out_path) as f:
            report = json.load(f)
    finally:
        os.unlink(out_path)
    times = {}
    for b in report["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[b["time_unit"]]
        t = b["cpu_time"] * scale
        times[b["name"]] = min(times.get(b["name"], float("inf")), t)
    return times


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    on_bin, off_bin = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    best_on, best_off = {}, {}
    for i in range(ROUNDS):
        # Interleave so machine-load drift hits both builds equally.
        for binary, best in ((on_bin, best_on), (off_bin, best_off)):
            for name, t in run_bench(binary).items():
                best[name] = min(best.get(name, float("inf")), t)
        print(f"round {i + 1}/{ROUNDS} done", flush=True)

    failed = False
    print(f"{'benchmark':<32} {'runtime-off':>12} {'compiled-out':>12} "
          f"{'overhead':>9}")
    for name in sorted(best_off):
        on_t, off_t = best_on[name], best_off[name]
        overhead = 100.0 * (on_t - off_t) / off_t
        flag = ""
        if overhead > threshold:
            failed = True
            flag = f"  FAIL (> {threshold:.1f}%)"
        print(f"{name:<32} {on_t:>10.1f}us {off_t:>10.1f}us "
              f"{overhead:>+8.2f}%{flag}")
    if failed:
        print("\nruntime-off instrumentation overhead exceeds threshold")
        return 1
    print("\nOK: --obs-level off is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
