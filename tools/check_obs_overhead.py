#!/usr/bin/env python3
"""CI guard: instrumentation left OFF must be free.

Bench mode -- runs bench_solver_scaling from two build trees:

  * the default build (FETCAM_OBS=ON) with the runtime level forced off, and
  * a reference build compiled with -DFETCAM_OBS=OFF (every guarded block
    optimized away)

-- interleaved several times, takes the per-benchmark minimum of each (the
most noise-robust point estimate for a throughput bench), and fails when the
runtime-off build is more than THRESHOLD slower than the compiled-out build.

Engine mode (--engine) -- same two trees, but the gated quantity is
`fetcam_cli engine` queries-per-second on a fixed search trace, with THREE
arms: compiled-out, runtime-off (<= off-threshold slower), and metrics-on
(per-stage latency recorders live; <= metrics-threshold slower).  The
metrics arm bounds the cost of the service telemetry itself, not just the
off-switch.

Usage:
  check_obs_overhead.py <obs-on-bench> <obs-off-bench> [threshold-%]
  check_obs_overhead.py --engine <obs-on-cli> <obs-off-cli> \\
                        [off-threshold-%] [metrics-threshold-%]
"""

import json
import os
import subprocess
import sys
import tempfile

FILTER = "BM_DenseLu/256$|BM_SparseLu/2048$|BM_WordSearchTransient/32$"
# Interleaved rounds x in-pass repetitions, min over all samples: wall-clock
# benches on shared CI runners are noisy in one direction only (slower), so
# the minimum is the stable point estimate and more samples tighten it.
ROUNDS = 8
REPETITIONS = 2


def run_bench(binary):
    """Run one benchmark pass; returns {bench_name: cpu_time_us}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        env = dict(os.environ, FETCAM_OBS="off")
        subprocess.run(
            [
                binary,
                f"--benchmark_filter={FILTER}",
                f"--benchmark_repetitions={REPETITIONS}",
                f"--benchmark_out={out_path}",
                "--benchmark_out_format=json",
            ],
            env=env,
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(out_path) as f:
            report = json.load(f)
    finally:
        os.unlink(out_path)
    times = {}
    for b in report["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[b["time_unit"]]
        t = b["cpu_time"] * scale
        times[b["name"]] = min(times.get(b["name"], float("inf")), t)
    return times


# Engine-gate workload: search-only trace, large enough that qps is stable
# but one arm stays under ~a second on a loaded runner.
ENGINE_ARGS = [
    "engine", "--queries", "60000", "--rules", "1024",
    "--seed", "3", "--batch", "256",
]
ENGINE_ROUNDS = 8


def run_engine(binary, obs_level):
    """One fetcam_cli engine run; returns the reported qps."""
    cmd = [binary]
    if obs_level is not None:
        cmd += ["--obs-level", obs_level]
    cmd += ENGINE_ARGS
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return float(json.loads(out.stdout)["qps"])


def engine_main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    on_bin, off_bin = argv[0], argv[1]
    off_threshold = float(argv[2]) if len(argv) > 2 else 2.0
    metrics_threshold = float(argv[3]) if len(argv) > 3 else 5.0

    # qps is a rate: the MAX over rounds is the noise-robust point estimate
    # (CI noise only ever slows a run down).
    arms = [
        ("compiled-out", off_bin, None, None),
        ("runtime-off", on_bin, "off", off_threshold),
        ("metrics-on", on_bin, "metrics", metrics_threshold),
    ]
    best = {name: 0.0 for name, _, _, _ in arms}
    for i in range(ENGINE_ROUNDS):
        # Interleave, alternating direction each round, so machine-load
        # drift hits every arm equally from both sides.
        ordered = arms if i % 2 == 0 else arms[::-1]
        for name, binary, level, _ in ordered:
            best[name] = max(best[name], run_engine(binary, level))
        print(f"round {i + 1}/{ENGINE_ROUNDS} done", flush=True)

    base = best["compiled-out"]
    if base <= 0.0:
        print("compiled-out engine run reported zero qps")
        return 1
    failed = False
    print(f"{'arm':<14} {'qps':>12} {'overhead':>9}  budget")
    for name, _, _, threshold in arms:
        qps = best[name]
        overhead = 100.0 * (base - qps) / base
        if threshold is None:
            print(f"{name:<14} {qps:>12.0f} {'-':>9}  (baseline)")
            continue
        flag = ""
        if overhead > threshold:
            failed = True
            flag = "  FAIL"
        print(f"{name:<14} {qps:>12.0f} {overhead:>+8.2f}%  "
              f"<= {threshold:.1f}%{flag}")
    if failed:
        print("\nengine observability overhead exceeds budget")
        return 1
    print("\nOK: engine telemetry is within the overhead budget")
    return 0


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    if sys.argv[1] == "--engine":
        return engine_main(sys.argv[2:])
    on_bin, off_bin = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    best_on, best_off = {}, {}
    for i in range(ROUNDS):
        # Interleave so machine-load drift hits both builds equally.
        for binary, best in ((on_bin, best_on), (off_bin, best_off)):
            for name, t in run_bench(binary).items():
                best[name] = min(best.get(name, float("inf")), t)
        print(f"round {i + 1}/{ROUNDS} done", flush=True)

    failed = False
    print(f"{'benchmark':<32} {'runtime-off':>12} {'compiled-out':>12} "
          f"{'overhead':>9}")
    for name in sorted(best_off):
        on_t, off_t = best_on[name], best_off[name]
        overhead = 100.0 * (on_t - off_t) / off_t
        flag = ""
        if overhead > threshold:
            failed = True
            flag = f"  FAIL (> {threshold:.1f}%)"
        print(f"{name:<32} {on_t:>10.1f}us {off_t:>10.1f}us "
              f"{overhead:>+8.2f}%{flag}")
    if failed:
        print("\nruntime-off instrumentation overhead exceeds threshold")
        return 1
    print("\nOK: --obs-level off is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
