// Calibration scout: prints the Table IV figures of merit for all designs.
#include <cstdio>

#include "eval/fom.hpp"
#include "eval/report.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
  eval::FomOptions opts;
  if (argc > 1) opts.n_bits = std::atoi(argv[1]);

  eval::TextTable t({"design", "Vw", "tFE", "area", "writeE", "lat1", "lat",
                     "E1", "E2", "Eavg", "Epre", "Esa", "Esig"});
  for (const auto d :
       {arch::TcamDesign::kCmos16T, arch::TcamDesign::k2SgFefet,
        arch::TcamDesign::k2DgFefet, arch::TcamDesign::k1p5SgFe,
        arch::TcamDesign::k1p5DgFe}) {
    const auto fom = eval::evaluate_fom(d, opts);
    if (!fom.ok) {
      std::printf("%s FAILED: %s\n", fom.name.c_str(), fom.error.c_str());
      continue;
    }
    const double n = opts.n_bits;
    t.add_row({fom.name, eval::format_eng(fom.write_voltage, "V"),
               eval::format_eng(fom.t_fe_nm, "nm"),
               eval::format_eng(fom.cell_area_um2, "um2"),
               eval::format_eng(fom.write_energy_fj, "fJ"),
               eval::format_eng(fom.latency_1step_ps, "ps"),
               eval::format_eng(fom.latency_ps, "ps"),
               eval::format_eng(fom.energy_1step_fj, "fJ"),
               eval::format_eng(fom.energy_2step_fj, "fJ"),
               eval::format_eng(fom.energy_avg_fj, "fJ"),
               eval::format_eng(fom.energy_breakdown.precharge * 1e15 / n, "fJ"),
               eval::format_eng(fom.energy_breakdown.sense_amp * 1e15 / n, "fJ"),
               eval::format_eng(fom.energy_breakdown.signals * 1e15 / n, "fJ")});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
