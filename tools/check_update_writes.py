#!/usr/bin/env python3
"""CI guard: rule churn must stay cheap and wear-leveled.

Reads the machine-readable report emitted by

    bench_update_churn --update-json=BENCH_update.json

and fails when:

  * the delta planner's write phases over the churn run exceed
    MAX_DELTA_FRACTION of the naive erase-everything/rewrite-everything
    baseline (the figure of merit incremental updates must earn); or
  * the endurance-aware placement's wear spread (max - min per-mat
    writes) or hottest-row write count is WORSE than capacity-only
    placement's -- wear leveling that does not level is a regression; or
  * either arm is degenerate (no steps, no writes, no keeps -- meaning
    the harness silently stopped exercising the planner).

Every gated number is deterministic (fixed seeds, fixed scenario); only
the search latency figures are machine-dependent and they are not gated.

Usage: check_update_writes.py BENCH_update.json
"""

import json
import sys

MAX_DELTA_FRACTION = 0.5


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)

    ok = True

    aware = report.get("endurance_aware")
    cap = report.get("capacity_only")
    if not aware or not cap:
        print("FAIL: report missing endurance_aware / capacity_only arms")
        return 1

    for name, arm in (("endurance_aware", aware), ("capacity_only", cap)):
        if arm.get("steps", 0) <= 0 or arm.get("naive_write_phases", 0) <= 0:
            print(f"FAIL: {name} arm ran no churn steps")
            ok = False
        if arm.get("keeps", 0) <= 0:
            print(f"FAIL: {name} arm kept no rows (planner found no reuse)")
            ok = False
        if arm.get("delta_write_phases", 0) <= 0:
            print(f"FAIL: {name} arm reported zero delta write phases")
            ok = False

    naive = aware.get("naive_write_phases", 0)
    delta = aware.get("delta_write_phases", 0)
    frac = delta / naive if naive else 1.0
    print(
        f"update cost: delta {delta} phases vs naive {naive} "
        f"({frac:.1%} of naive) over {aware.get('steps', 0)} churn steps"
    )
    if frac > MAX_DELTA_FRACTION:
        print(
            f"FAIL: delta write phases are {frac:.1%} of naive, "
            f"gate is {MAX_DELTA_FRACTION:.0%}"
        )
        ok = False

    a_spread = aware.get("mat_spread", -1)
    c_spread = cap.get("mat_spread", -1)
    a_row = aware.get("max_row_writes", -1)
    c_row = cap.get("max_row_writes", -1)
    print(
        f"wear: aware mat_spread={a_spread} max_row={a_row}  "
        f"capacity-only mat_spread={c_spread} max_row={c_row}"
    )
    if a_spread < 0 or c_spread < 0:
        print("FAIL: wear histogram missing")
        ok = False
    elif a_spread > c_spread:
        print(
            f"FAIL: endurance-aware wear spread {a_spread} exceeds "
            f"capacity-only spread {c_spread}"
        )
        ok = False
    if a_row > c_row:
        print(
            f"FAIL: endurance-aware hottest row {a_row} exceeds "
            f"capacity-only hottest row {c_row}"
        )
        ok = False

    print("OK" if ok else "update write guard failed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
