#!/usr/bin/env python3
"""CI guard: the DSE surrogate must save simulations without losing the frontier.

Reads the machine-readable report emitted by

    bench_dse --dse-json=BENCH_dse.json

(or `fetcam_cli dse --json=...`) and fails when:

  * the schema is not fetcam.dse.v1, or either sweep arm is degenerate
    (no candidates, no evaluations, empty frontier);
  * the exact frontier does not contain BOTH cell families (a 2FeFET
    design and a 1.5T1Fe design) -- the whole point of the sweep is
    that neither family dominates the other everywhere;
  * a paper nominal point is dominated by more than DOMINATION_MARGIN
    relative depth -- the sweep disagreeing with the paper's operating
    points by that much means the models drifted;
  * the surrogate-pruned arm simulated more than MAX_EVAL_FRACTION of
    the grid (pruning that does not prune is dead weight), or recovered
    less than MIN_FRONTIER_RECALL of the exact frontier (pruning that
    loses designs is worse than none), or ran without a validation arm.

Every gated number is deterministic (fixed seeds, counter-based RNG
streams, ordered reductions); the report is bit-identical at any thread
count, so there is no tolerance for machine-to-machine jitter.

Usage: check_dse_frontier.py BENCH_dse.json
"""

import json
import sys

MAX_EVAL_FRACTION = 0.60
MIN_FRONTIER_RECALL = 0.95
DOMINATION_MARGIN = 0.05

TWO_FEFET = {"2sg", "2dg"}
ONE_P5 = {"1p5sg", "1p5dg"}


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)

    ok = True

    if report.get("schema") != "fetcam.dse.v1":
        print(f"FAIL: schema is {report.get('schema')!r}, want fetcam.dse.v1")
        return 1

    exact = report.get("exact")
    if not exact:
        print("FAIL: report missing exact arm")
        return 1
    if exact.get("candidates", 0) <= 0 or exact.get("evaluated", 0) <= 0:
        print("FAIL: exact arm evaluated nothing")
        ok = False

    frontier = exact.get("frontier", [])
    if not frontier:
        print("FAIL: exact frontier is empty")
        ok = False
    families = {p.get("design") for p in frontier}
    if not families & TWO_FEFET:
        print(f"FAIL: exact frontier has no 2FeFET design (got {sorted(families)})")
        ok = False
    if not families & ONE_P5:
        print(f"FAIL: exact frontier has no 1.5T1Fe design (got {sorted(families)})")
        ok = False
    for p in frontier:
        if any(v is None for v in p.get("objectives", [None])):
            print(f"FAIL: frontier point {p.get('design')} has non-finite objectives")
            ok = False
            break

    paper = report.get("paper_points", [])
    if not paper:
        print("FAIL: report has no paper_points")
        ok = False
    for p in paper:
        if not p.get("ok"):
            print(f"FAIL: paper point {p.get('design')} failed to evaluate")
            ok = False
            continue
        depth = p.get("domination_depth", 1.0)
        if depth > DOMINATION_MARGIN:
            print(
                f"FAIL: paper point {p.get('design')} dominated by depth "
                f"{depth:.3f} > {DOMINATION_MARGIN}"
            )
            ok = False

    sur = report.get("surrogate", {})
    if not sur.get("enabled"):
        print("FAIL: surrogate arm disabled; nothing gated the pruning")
        ok = False
    else:
        frac = sur.get("eval_fraction", 1.0)
        if frac > MAX_EVAL_FRACTION:
            print(
                f"FAIL: surrogate arm simulated {frac:.1%} of the grid "
                f"(> {MAX_EVAL_FRACTION:.0%})"
            )
            ok = False
        recall = report.get("surrogate_frontier_recall", 0.0)
        if recall < MIN_FRONTIER_RECALL:
            print(
                f"FAIL: surrogate frontier recall {recall:.1%} "
                f"(< {MIN_FRONTIER_RECALL:.0%})"
            )
            ok = False
        if sur.get("skipped", 0) > 0 and sur.get("validated", 0) <= 0:
            print("FAIL: surrogate skipped points but validated none of them")
            ok = False

    if ok:
        n_eval = sur.get("evaluated", 0) + sur.get("validated", 0)
        print(
            f"OK: frontier {len(frontier)} points across {sorted(families)}; "
            f"surrogate simulated {n_eval}/{exact.get('candidates')} "
            f"({sur.get('eval_fraction', 0):.1%}), recall "
            f"{report.get('surrogate_frontier_recall', 0):.1%}; "
            f"paper depths "
            + ", ".join(
                f"{p['design']}={p.get('domination_depth', 0):.3f}" for p in paper
            )
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
