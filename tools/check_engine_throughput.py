#!/usr/bin/env python3
"""CI guard: the bit-packed TCAM shard kernel must stay fast.

Reads the machine-readable report emitted by

    bench_engine_throughput --engine-json=BENCH_engine.json

and fails when:

  * the packed full-match kernel is not at least MIN_KERNEL_SPEEDUP x
    faster than the unpacked TcamArray::search at the gate shape
    (4096 rows x 128 cols, single thread) -- the headline the packed
    representation must earn; or
  * the engine section is missing or degenerate (zero throughput, rates
    outside [0, 1], zero search energy) -- which would mean the harness
    silently stopped exercising the engine.

The engine QPS itself is NOT gated on an absolute number: CI machines
vary too much.  The kernel ratio is machine-relative and stable.

Usage: check_engine_throughput.py BENCH_engine.json
"""

import json
import sys

MIN_KERNEL_SPEEDUP = 4.0
GATE_ROWS = 4096
GATE_COLS = 128


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)

    ok = True

    kernel = report.get("kernel")
    if not kernel:
        print("FAIL: no kernel section in report")
        return 1
    if kernel.get("rows") != GATE_ROWS or kernel.get("cols") != GATE_COLS:
        print(
            f"FAIL: kernel gate shape is {kernel.get('rows')}x"
            f"{kernel.get('cols')}, expected {GATE_ROWS}x{GATE_COLS}"
        )
        ok = False
    speedup = kernel.get("speedup", 0.0)
    print(
        f"kernel {kernel.get('rows')}x{kernel.get('cols')}: "
        f"unpacked {kernel.get('unpacked_us', 0.0):.1f}us, "
        f"packed {kernel.get('packed_us', 0.0):.1f}us -> {speedup:.2f}x "
        f"(two-step {kernel.get('two_step_speedup', 0.0):.2f}x)"
    )
    if speedup < MIN_KERNEL_SPEEDUP:
        print(
            f"FAIL: packed kernel speedup {speedup:.2f}x "
            f"< {MIN_KERNEL_SPEEDUP}x at {GATE_ROWS}x{GATE_COLS}"
        )
        ok = False
    if kernel.get("two_step_speedup", 0.0) <= 0.0:
        print("FAIL: two-step kernel comparison missing or degenerate")
        ok = False

    engine = report.get("engine")
    if not engine:
        print("FAIL: no engine section in report")
        return 1
    qps = engine.get("qps", 0.0)
    print(
        f"engine: {engine.get('searches', 0)} searches, {qps:.0f} qps, "
        f"hit_rate={engine.get('hit_rate', 0.0):.3f} "
        f"step1_miss_rate={engine.get('step1_miss_rate', 0.0):.3f} "
        f"p50={engine.get('p50_batch_us', 0.0):.0f}us "
        f"p99={engine.get('p99_batch_us', 0.0):.0f}us"
    )
    if engine.get("searches", 0) <= 0 or qps <= 0.0:
        print("FAIL: engine ran no searches (or measured zero throughput)")
        ok = False
    for rate_key in ("hit_rate", "step1_miss_rate"):
        rate = engine.get(rate_key, -1.0)
        if not 0.0 <= rate <= 1.0:
            print(f"FAIL: {rate_key}={rate} outside [0, 1]")
            ok = False
    if engine.get("energy_per_search_j", 0.0) <= 0.0:
        print("FAIL: energy accounting reported zero search energy")
        ok = False
    if engine.get("p99_batch_us", 0.0) < engine.get("p50_batch_us", 0.0):
        print("FAIL: p99 batch latency below p50 (percentile bug)")
        ok = False

    print("OK" if ok else "engine perf guard failed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
