#!/usr/bin/env python3
"""CI guard: the TCAM search path must stay fast.

Reads the machine-readable report emitted by

    bench_engine_throughput --engine-json=BENCH_engine.json

and fails when:

  * the packed full-match kernel is not at least MIN_KERNEL_SPEEDUP x
    faster than the unpacked TcamArray::search at the gate shape
    (4096 rows x 128 cols, single thread) -- the headline the packed
    representation must earn;
  * the AVX2 tier, when available, is not at least MIN_SIMD_SPEEDUP x
    faster than the scalar kernel on the SAME packed representation
    (this isolates the vector win from the packing win);
  * --require-simd was passed (the AVX2 CI job) but the report says the
    SIMD tier was unavailable -- a silent fallback to scalar would
    otherwise make the SIMD gate vacuous;
  * --min-qps N was passed and the best multicore configuration (or the
    over-the-wire run) fell below N queries/second;
  * the engine section is missing or degenerate (zero throughput, rates
    outside [0, 1], zero search energy) -- which would mean the harness
    silently stopped exercising the engine;
  * the engine section lacks the query-blocking / mat-skip pruning
    fields (query_block, baseline_qps, block_speedup, mats_considered,
    mats_skipped, mat_skip_rate) or reports them inconsistently;
  * --min-block-speedup X was passed and the blocked+pruned trace arm is
    not at least X times the single-query baseline arm measured in the
    same run;
  * --min-engine-qps N was passed and the blocked trace arm fell below
    N queries/second (the ROADMAP's 2x-over-PR-7 floor in CI);
  * --approx was passed and the approximate-match section is missing,
    degenerate, or its recall@k against the brute-force reference fell
    below MIN_APPROX_RECALL (0.95) -- or fewer than MIN_RECALL_QUERIES
    sampled queries actually had a non-empty reference, which would make
    the recall gate vacuous;
  * --min-approx-qps N was passed (with --approx) and the kNN trace arm
    fell below N queries/second.

Absolute qps is only gated when the caller opts in with --min-qps: CI
machines vary too much for a hardcoded number, but a caller that knows
its hardware can pin a floor.  The kernel ratios are machine-relative
and always enforced.

With --stats PATH the live kStats scrape written by --stats-json is
schema-checked too (fetcam.stats.v1: engine totals + queue gauges, stage
percentiles, slow-query log, server counters).

Usage: check_engine_throughput.py [--require-simd] [--min-qps N]
                                  [--min-block-speedup X]
                                  [--min-engine-qps N]
                                  [--approx] [--min-approx-qps N]
                                  [--stats STATS.json] BENCH_engine.json
"""

import argparse
import json
import sys

MIN_KERNEL_SPEEDUP = 4.0
MIN_SIMD_SPEEDUP = 2.0
GATE_ROWS = 4096
GATE_COLS = 128
MIN_APPROX_RECALL = 0.95
MIN_RECALL_QUERIES = 100


def check_kernel(report: dict) -> bool:
    ok = True
    kernel = report.get("kernel")
    if not kernel:
        print("FAIL: no kernel section in report")
        return False
    if kernel.get("rows") != GATE_ROWS or kernel.get("cols") != GATE_COLS:
        print(
            f"FAIL: kernel gate shape is {kernel.get('rows')}x"
            f"{kernel.get('cols')}, expected {GATE_ROWS}x{GATE_COLS}"
        )
        ok = False
    speedup = kernel.get("speedup", 0.0)
    print(
        f"kernel {kernel.get('rows')}x{kernel.get('cols')}: "
        f"unpacked {kernel.get('unpacked_us', 0.0):.1f}us, "
        f"packed {kernel.get('packed_us', 0.0):.1f}us -> {speedup:.2f}x "
        f"(two-step {kernel.get('two_step_speedup', 0.0):.2f}x)"
    )
    if speedup < MIN_KERNEL_SPEEDUP:
        print(
            f"FAIL: packed kernel speedup {speedup:.2f}x "
            f"< {MIN_KERNEL_SPEEDUP}x at {GATE_ROWS}x{GATE_COLS}"
        )
        ok = False
    if kernel.get("two_step_speedup", 0.0) <= 0.0:
        print("FAIL: two-step kernel comparison missing or degenerate")
        ok = False
    return ok


def check_simd(report: dict, require_simd: bool) -> bool:
    ok = True
    simd = report.get("simd")
    if not simd:
        print("FAIL: no simd section in report")
        return False
    available = simd.get("available", False)
    if not available:
        print(f"simd: unavailable (active tier {simd.get('active_tier')})")
        if require_simd:
            print("FAIL: --require-simd but the SIMD tier is unavailable")
            ok = False
        return ok
    speedup = simd.get("speedup", 0.0)
    print(
        f"simd ({simd.get('active_tier')}): "
        f"scalar {simd.get('scalar_us', 0.0):.1f}us, "
        f"simd {simd.get('simd_us', 0.0):.1f}us -> {speedup:.2f}x "
        f"(two-step {simd.get('two_step_speedup', 0.0):.2f}x)"
    )
    if speedup < MIN_SIMD_SPEEDUP:
        print(
            f"FAIL: SIMD kernel speedup {speedup:.2f}x "
            f"< {MIN_SIMD_SPEEDUP}x over the scalar-packed kernel"
        )
        ok = False
    if simd.get("two_step_speedup", 0.0) < MIN_SIMD_SPEEDUP:
        print(
            f"FAIL: SIMD two-step speedup "
            f"{simd.get('two_step_speedup', 0.0):.2f}x < {MIN_SIMD_SPEEDUP}x"
        )
        ok = False
    return ok


def check_scale(report: dict, min_qps: float) -> bool:
    ok = True
    multicore = report.get("multicore")
    if not multicore or not multicore.get("configs"):
        print("FAIL: no multicore section in report")
        return False
    for cfg in multicore["configs"]:
        print(
            f"multicore dispatch={cfg.get('dispatch_threads')} "
            f"groups={cfg.get('mat_groups')} "
            f"coalesce={cfg.get('coalesce_batches')}: "
            f"{cfg.get('qps', 0.0):.0f} qps"
        )
        if cfg.get("qps", 0.0) <= 0.0:
            print("FAIL: multicore configuration measured zero throughput")
            ok = False
    best = multicore.get("best_qps", 0.0)
    wire = report.get("wire")
    if not wire:
        print("FAIL: no wire section in report")
        return False
    expected_frames = wire.get("clients", 0) * wire.get("frames_per_client", 0)
    print(
        f"wire: {wire.get('clients')} clients, "
        f"{wire.get('frames_served')}/{expected_frames} frames -> "
        f"{wire.get('qps', 0.0):.0f} qps, "
        f"rtt p50={wire.get('rtt_p50_us', 0.0):.0f}us "
        f"p99={wire.get('rtt_p99_us', 0.0):.0f}us"
    )
    if wire.get("frames_served", 0) != expected_frames:
        print("FAIL: wire run dropped frames (served != sent)")
        ok = False
    if wire.get("qps", 0.0) <= 0.0:
        print("FAIL: wire run measured zero throughput")
        ok = False
    if wire.get("rtt_p50_us", 0.0) <= 0.0:
        print("FAIL: wire RTT percentiles missing or zero")
        ok = False
    if wire.get("rtt_p99_us", 0.0) < wire.get("rtt_p50_us", 0.0):
        print("FAIL: wire RTT p99 below p50 (percentile bug)")
        ok = False
    if min_qps > 0.0:
        if best < min_qps:
            print(f"FAIL: best multicore qps {best:.0f} < floor {min_qps:.0f}")
            ok = False
        if wire.get("qps", 0.0) < min_qps:
            print(
                f"FAIL: wire qps {wire.get('qps', 0.0):.0f} "
                f"< floor {min_qps:.0f}"
            )
            ok = False
    return ok


def check_engine(report: dict, min_block_speedup: float,
                 min_engine_qps: float) -> bool:
    ok = True
    engine = report.get("engine")
    if not engine:
        print("FAIL: no engine section in report")
        return False
    qps = engine.get("qps", 0.0)
    print(
        f"engine: {engine.get('searches', 0)} searches, {qps:.0f} qps, "
        f"hit_rate={engine.get('hit_rate', 0.0):.3f} "
        f"step1_miss_rate={engine.get('step1_miss_rate', 0.0):.3f} "
        f"p50={engine.get('p50_batch_us', 0.0):.0f}us "
        f"p99={engine.get('p99_batch_us', 0.0):.0f}us"
    )
    if engine.get("searches", 0) <= 0 or qps <= 0.0:
        print("FAIL: engine ran no searches (or measured zero throughput)")
        ok = False
    for rate_key in ("hit_rate", "step1_miss_rate"):
        rate = engine.get(rate_key, -1.0)
        if not 0.0 <= rate <= 1.0:
            print(f"FAIL: {rate_key}={rate} outside [0, 1]")
            ok = False
    if engine.get("energy_per_search_j", 0.0) <= 0.0:
        print("FAIL: energy accounting reported zero search energy")
        ok = False
    if engine.get("p99_batch_us", 0.0) < engine.get("p50_batch_us", 0.0):
        print("FAIL: p99 batch latency below p50 (percentile bug)")
        ok = False

    # Query-blocking / pruning schema: the A/B arms and skip counters must
    # be present and self-consistent, or the pruning win is unobservable.
    for key in ("query_block", "baseline_qps", "block_speedup",
                "mats_considered", "mats_skipped", "mat_skip_rate"):
        if key not in engine:
            print(f"FAIL: engine section missing pruning field {key!r}")
            ok = False
    block_speedup = engine.get("block_speedup", 0.0)
    skip_rate = engine.get("mat_skip_rate", -1.0)
    print(
        f"engine pruning: query_block={engine.get('query_block', 0)}, "
        f"baseline {engine.get('baseline_qps', 0.0):.0f} qps -> blocked "
        f"{qps:.0f} qps ({block_speedup:.2f}x), "
        f"mat_skip_rate={skip_rate:.3f} "
        f"({engine.get('mats_skipped', 0)}/{engine.get('mats_considered', 0)})"
    )
    if engine.get("query_block", 0) < 1:
        print("FAIL: engine query_block < 1")
        ok = False
    if not 0.0 <= skip_rate <= 1.0:
        print(f"FAIL: mat_skip_rate={skip_rate} outside [0, 1]")
        ok = False
    if engine.get("mats_skipped", 0) > engine.get("mats_considered", 0):
        print("FAIL: mats_skipped exceeds mats_considered")
        ok = False
    if engine.get("baseline_qps", 0.0) <= 0.0:
        print("FAIL: baseline arm measured zero throughput")
        ok = False
    if min_block_speedup > 0.0 and block_speedup < min_block_speedup:
        print(
            f"FAIL: blocked/pruned arm speedup {block_speedup:.2f}x "
            f"< floor {min_block_speedup:.2f}x over the single-query arm"
        )
        ok = False
    if min_engine_qps > 0.0 and qps < min_engine_qps:
        print(
            f"FAIL: engine trace qps {qps:.0f} < floor {min_engine_qps:.0f}"
        )
        ok = False
    return ok


def check_approx(report: dict, min_approx_qps: float) -> bool:
    ok = True
    approx = report.get("approx")
    if not approx:
        print("FAIL: no approx section in report")
        return False
    for key in ("digit_bits", "k", "threshold", "rules", "searches",
                "hit_rate", "recall_at_k", "recall_queries", "qps",
                "energy_per_search_j", "exact_energy_per_search_j",
                "energy_ratio", "distance_histogram"):
        if key not in approx:
            print(f"FAIL: approx section missing field {key!r}")
            ok = False
    qps = approx.get("qps", 0.0)
    recall = approx.get("recall_at_k", 0.0)
    recall_queries = approx.get("recall_queries", 0)
    print(
        f"approx (d={approx.get('digit_bits')}, k={approx.get('k')}, "
        f"t={approx.get('threshold')}): {approx.get('searches', 0)} "
        f"searches, {qps:.0f} qps, recall@k={recall:.4f} "
        f"({recall_queries} scored), "
        f"hit_rate={approx.get('hit_rate', 0.0):.3f}, "
        f"energy_ratio={approx.get('energy_ratio', 0.0):.2f}x"
    )
    if approx.get("searches", 0) <= 0 or qps <= 0.0:
        print("FAIL: approx arm ran no searches (or zero throughput)")
        ok = False
    if not 0.0 <= approx.get("hit_rate", -1.0) <= 1.0:
        print(f"FAIL: approx hit_rate={approx.get('hit_rate')} "
              "outside [0, 1]")
        ok = False
    if recall_queries < MIN_RECALL_QUERIES:
        print(
            f"FAIL: only {recall_queries} queries scored for recall "
            f"(need >= {MIN_RECALL_QUERIES} for a non-vacuous gate)"
        )
        ok = False
    if not 0.0 <= recall <= 1.0:
        print(f"FAIL: recall_at_k={recall} outside [0, 1]")
        ok = False
    elif recall < MIN_APPROX_RECALL:
        print(
            f"FAIL: recall@k {recall:.4f} < floor {MIN_APPROX_RECALL} "
            "against the brute-force reference"
        )
        ok = False
    hist = approx.get("distance_histogram")
    if not isinstance(hist, list) or \
            len(hist) != approx.get("threshold", -1) + 1:
        print("FAIL: distance_histogram is not a list of threshold+1 "
              "buckets")
        ok = False
    elif sum(hist) > approx.get("searches", 0):
        print("FAIL: distance_histogram counts exceed searches")
        ok = False
    if approx.get("energy_per_search_j", 0.0) <= 0.0:
        print("FAIL: approx arm reported zero search energy")
        ok = False
    if approx.get("exact_energy_per_search_j", 0.0) <= 0.0:
        print("FAIL: exact A/B arm reported zero search energy")
        ok = False
    # Threshold search cannot early-terminate at step 1, so it must pay
    # at least the exact path's per-search energy; a ratio below 1 means
    # the A/B arms diverged (different table or accounting bug).
    if approx.get("energy_ratio", 0.0) < 1.0:
        print(
            f"FAIL: approx/exact energy ratio "
            f"{approx.get('energy_ratio', 0.0):.3f} < 1 (single-step "
            "threshold search cannot undercut two-step exact search)"
        )
        ok = False
    if min_approx_qps > 0.0 and qps < min_approx_qps:
        print(f"FAIL: approx qps {qps:.0f} < floor {min_approx_qps:.0f}")
        ok = False
    return ok


def check_stats_snapshot(path: str) -> bool:
    """Schema check for the live kStats scrape archived next to the report
    (bench_engine_throughput --stats-json).  Shape only, no thresholds:
    the scrape must parse, carry the right schema tag, and contain the
    sections a dashboard would key on."""
    ok = True
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    if snap.get("schema") != "fetcam.stats.v1":
        print(f"FAIL: stats snapshot schema is {snap.get('schema')!r}, "
              "expected 'fetcam.stats.v1'")
        ok = False
    engine = snap.get("engine")
    if not isinstance(engine, dict):
        print("FAIL: stats snapshot has no engine section")
        return False
    for key in ("batches", "requests", "searches", "queue_depth",
                "queue_capacity", "queue_high_watermark", "in_flight",
                "query_block", "mats_considered", "mats_skipped",
                "mat_skip_rate"):
        if key not in engine:
            print(f"FAIL: stats snapshot engine section missing {key!r}")
            ok = False
    stages = snap.get("stages")
    if not isinstance(stages, dict) or not stages:
        print("FAIL: stats snapshot has no stage percentiles")
        ok = False
    else:
        for name, stage in stages.items():
            for key in ("count", "p50_us", "p99_us", "p999_us", "max_us"):
                if key not in stage:
                    print(f"FAIL: stage {name!r} missing {key!r}")
                    ok = False
                    break
    if not isinstance(snap.get("slow_queries"), list):
        print("FAIL: stats snapshot has no slow_queries list")
        ok = False
    server = snap.get("server")
    if not isinstance(server, dict):
        print("FAIL: stats snapshot from the wire run must carry a server "
              "section")
        ok = False
    else:
        for key in ("connections_accepted", "frames_served",
                    "frames_rejected", "backpressure_stalls", "force_closes"):
            if key not in server:
                print(f"FAIL: stats snapshot server section missing {key!r}")
                ok = False
    if ok:
        served = server.get("frames_served", 0) if isinstance(server, dict) \
            else 0
        print(f"stats snapshot: {len(stages)} stages, "
              f"{len(snap['slow_queries'])} slow queries, "
              f"server frames_served={served}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("report", help="path to BENCH_engine.json")
    parser.add_argument(
        "--require-simd",
        action="store_true",
        help="fail when the SIMD tier is unavailable (AVX2 CI job)",
    )
    parser.add_argument(
        "--min-qps",
        type=float,
        default=0.0,
        help="absolute qps floor for multicore and wire runs (0 = off)",
    )
    parser.add_argument(
        "--min-block-speedup",
        type=float,
        default=0.0,
        help="floor on the blocked+pruned trace arm's qps over the "
        "single-query baseline arm measured in the same run (0 = off)",
    )
    parser.add_argument(
        "--min-engine-qps",
        type=float,
        default=0.0,
        help="absolute qps floor for the blocked engine trace arm (0 = off)",
    )
    parser.add_argument(
        "--approx",
        action="store_true",
        help="require and schema-check the approximate-match (kNN) "
        "section, gating recall@k >= %.2f" % MIN_APPROX_RECALL,
    )
    parser.add_argument(
        "--min-approx-qps",
        type=float,
        default=0.0,
        help="absolute qps floor for the kNN trace arm "
        "(0 = off; implies nothing without --approx)",
    )
    parser.add_argument(
        "--stats",
        default="",
        help="path to the live kStats scrape (fetcam.stats.v1 JSON) to "
        "schema-check alongside the report",
    )
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as f:
        report = json.load(f)

    ok = check_kernel(report)
    ok = check_simd(report, args.require_simd) and ok
    ok = check_scale(report, args.min_qps) and ok
    ok = check_engine(report, args.min_block_speedup,
                      args.min_engine_qps) and ok
    if args.approx:
        ok = check_approx(report, args.min_approx_qps) and ok
    if args.stats:
        ok = check_stats_snapshot(args.stats) and ok

    print("OK" if ok else "engine perf guard failed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
