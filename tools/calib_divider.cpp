// Calibration scout: prints the 1.5T1Fe divider voltages (SL_bar) for every
// stored-state x query combination and the device resistances of Eq. 1, for
// both flavours.  Used to tune TN/TP/TML sizing and the MVT target; the
// conclusions are locked in by tests/tcam/divider_test.cpp.
#include <cstdio>

#include "spice/measure.hpp"
#include "spice/op.hpp"
#include "tcam/cell_1p5t1fe.hpp"
#include "tcam/sim_harness.hpp"

using namespace fetcam;

namespace {

void divider_report(tcam::Flavor flavor) {
  std::printf("==== 1.5T1Fe %s divider ====\n",
              flavor == tcam::Flavor::kSg ? "SG" : "DG");
  std::printf("%-8s %-6s | %-10s %-10s %-12s\n", "stored", "query", "V(slb)",
              "match?", "note");
  for (const char s : {'0', '1', 'X'}) {
    for (const char q : {'0', '1'}) {
      // 2-bit word: cell under test + a matching don't-care partner.
      tcam::WordOptions opts;
      opts.n_bits = 2;
      tcam::SearchConfig cfg;
      cfg.stored = arch::word_from_string(std::string(1, s) + "X");
      cfg.query = arch::bits_from_string(std::string(1, q) + "0");
      cfg.steps = 1;
      tcam::OnePointFiveWord w(flavor, opts);
      w.build_search(cfg);
      // Solve the static divider at mid-step-1 via transient to that point.
      spice::TransientOptions topts;
      topts.t_stop = cfg.timing.search_start() + 0.9 * cfg.timing.t_step;
      topts.dt = w.suggested_dt();
      const auto res = run_transient(w.circuit(), topts);
      if (!res.ok) {
        std::printf("  %c vs %c: SIM FAIL: %s\n", s, q, res.error.c_str());
        continue;
      }
      const auto& ckt = w.circuit();
      const double v_slb = res.trace.voltage_at_time(
          ckt.node_name(w.slb_node(0)), topts.t_stop);
      const double v_ml = res.trace.voltage_at_time(
          ckt.node_name(w.ml_sense_node()), topts.t_stop);
      const bool expect_match = arch::ternary_matches(
          arch::ternary_from_char(s), q == '1');
      std::printf("%-8c %-6c | %-10.4f ml=%-7.3f expect %s\n", s, q, v_slb,
                  v_ml, expect_match ? "MATCH" : "miss ");
    }
  }
}

}  // namespace

int main() {
  divider_report(tcam::Flavor::kDg);
  divider_report(tcam::Flavor::kSg);
  return 0;
}
