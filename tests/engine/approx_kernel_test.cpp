// Differential suite for the packed approximate-match kernels: scalar and
// AVX2 tiers (and their query-blocked variants) must reproduce the
// behavioral arch::approx_search reference bit-exactly — within flags,
// distances of within-threshold rows, and single-step SearchStats — across
// digit widths d in {1, 2, 3}, word lengths that straddle the 64-bit word
// boundary (63/64/65 digits), all-X rows, and every threshold regime
// (0, 1, whole-row).  Rows past the threshold must report
// kDistanceOverflow regardless of where the early exit fired.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "arch/approx_search.hpp"
#include "arch/behavioral_array.hpp"
#include "engine/approx_kernel.hpp"
#include "engine/packed_kernel.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

arch::TernaryWord random_word(std::mt19937& rng, int cols,
                              double x_fraction) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  arch::TernaryWord w;
  w.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    if (u(rng) < x_fraction) {
      w.push_back(arch::Ternary::kX);
    } else {
      w.push_back(bit(rng) != 0 ? arch::Ternary::kOne : arch::Ternary::kZero);
    }
  }
  return w;
}

arch::BitWord random_query(std::mt19937& rng, int cols) {
  std::uniform_int_distribution<int> bit(0, 1);
  arch::BitWord q(static_cast<std::size_t>(cols));
  for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
  return q;
}

void build_pair(std::mt19937& rng, int rows, int cols, arch::TcamArray& a,
                PackedShard& p) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int r = 0; r < rows; ++r) {
    const double style = u(rng);
    if (style < 0.12) continue;  // never written (invalid)
    const double xf = style < 0.25 ? 1.0 : 0.25;  // some rows all-X
    const auto w = random_word(rng, cols, xf);
    a.write(r, w);
    p.write(r, w);
    if (style >= 0.9) {
      a.erase(r);
      p.erase(r);
    }
  }
}

/// Compare one tier's output against the behavioral reference.
void expect_matches_reference(const arch::TcamArray& a, const PackedShard& p,
                              const arch::BitWord& query, int digit_bits,
                              int threshold, KernelTier tier,
                              const char* what) {
  const arch::ApproxSearchResult ref =
      arch::approx_search(a, query, digit_bits, threshold);
  const PackedQuery packed = PackedQuery::pack(query);
  std::vector<std::uint64_t> within;
  std::vector<std::uint16_t> distances;
  const arch::SearchStats stats =
      approx_match(p, packed, digit_bits, threshold, within, distances, tier);
  for (int r = 0; r < p.rows(); ++r) {
    const bool got =
        (within[static_cast<std::size_t>(r) / 64] >> (r % 64) & 1) != 0;
    ASSERT_EQ(got, ref.within[static_cast<std::size_t>(r)])
        << what << ": row " << r << " d=" << digit_bits
        << " t=" << threshold;
    if (got) {
      ASSERT_EQ(distances[static_cast<std::size_t>(r)],
                ref.distances[static_cast<std::size_t>(r)])
          << what << ": row " << r << " within but distance differs";
    } else {
      // Past-threshold / invalid / padded rows all report the overflow
      // sentinel — the early exit may not know the true distance.
      ASSERT_EQ(distances[static_cast<std::size_t>(r)], kDistanceOverflow)
          << what << ": row " << r << " not within but not overflow";
    }
  }
  // Single-step accounting: every valid row fires once, no step-1 saving.
  EXPECT_EQ(stats.rows, ref.stats.rows) << what;
  EXPECT_EQ(stats.step1_misses, 0) << what;
  EXPECT_EQ(stats.step2_evaluated, ref.stats.step2_evaluated) << what;
  EXPECT_EQ(stats.matches, ref.stats.matches) << what;
}

TEST(ApproxKernel, ScalarMatchesBehavioralAcrossShapes) {
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    auto rng = util::trial_rng(31, trial, 0);
    for (const int d : {1, 2, 3}) {
      // Digit counts that straddle the word boundary: 63, 64, 65 digits
      // plus a trial-varied count, all times d columns.
      for (const int digits : {63, 64, 65, 5 + static_cast<int>(trial)}) {
        const int cols = digits * d;
        const int rows = std::uniform_int_distribution<int>(0, 90)(rng);
        arch::TcamArray a(rows, cols);
        PackedShard p(rows, cols);
        build_pair(rng, rows, cols, a, p);
        const auto query = random_query(rng, cols);
        for (const int threshold : {0, 1, digits}) {
          expect_matches_reference(a, p, query, d, threshold,
                                   KernelTier::kScalar, "scalar");
        }
      }
    }
  }
}

TEST(ApproxKernel, Avx2MatchesScalarBitExactly) {
  if (!kernel_tier_available(KernelTier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier unavailable in this build/host";
  }
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    auto rng = util::trial_rng(32, trial, 0);
    for (const int d : {1, 2, 3}) {
      const int digits = 40 + static_cast<int>(trial % 30);
      const int cols = digits * d;
      // Row counts around the 4-row AVX2 group size, plus bigger shards.
      const int rows = std::uniform_int_distribution<int>(0, 260)(rng);
      arch::TcamArray a(rows, cols);
      PackedShard p(rows, cols);
      build_pair(rng, rows, cols, a, p);
      const auto query = random_query(rng, cols);
      for (const int threshold : {0, 1, 3, digits}) {
        expect_matches_reference(a, p, query, d, threshold,
                                 KernelTier::kAvx2, "avx2");
      }
    }
  }
}

TEST(ApproxKernel, ExactDegenerationAtDigitOneThresholdZero) {
  // d = 1, threshold = 0: the within mask must equal the exact full-match
  // mask bit for bit — the anchor that ties the approx tier to the
  // validated exact kernels.
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    auto rng = util::trial_rng(33, trial, 0);
    const int cols = 1 + static_cast<int>(trial * 11 % 150);
    const int rows = std::uniform_int_distribution<int>(0, 120)(rng);
    arch::TcamArray a(rows, cols);
    PackedShard p(rows, cols);
    build_pair(rng, rows, cols, a, p);
    const auto query = random_query(rng, cols);
    const auto exact = a.search(query);
    const PackedQuery packed = PackedQuery::pack(query);
    std::vector<std::uint64_t> within;
    std::vector<std::uint16_t> distances;
    approx_match(p, packed, 1, 0, within, distances);
    for (int r = 0; r < rows; ++r) {
      const bool got =
          (within[static_cast<std::size_t>(r) / 64] >> (r % 64) & 1) != 0;
      ASSERT_EQ(got, exact[static_cast<std::size_t>(r)])
          << "trial " << trial << " row " << r;
      if (got) {
        ASSERT_EQ(distances[static_cast<std::size_t>(r)], 0);
      }
    }
  }
}

TEST(ApproxKernel, BlockedVariantsMatchSingleQueryKernels) {
  const bool simd = kernel_tier_available(KernelTier::kAvx2);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    auto rng = util::trial_rng(34, trial, 0);
    for (const int d : {1, 2, 3}) {
      const int digits = 30 + static_cast<int>(trial);
      const int cols = digits * d;
      const int rows = std::uniform_int_distribution<int>(1, 150)(rng);
      arch::TcamArray a(rows, cols);
      PackedShard p(rows, cols);
      build_pair(rng, rows, cols, a, p);
      const detail::ShardView view = p.view();
      const int threshold = static_cast<int>(trial % 4);
      for (int nq = 1; nq <= 8; ++nq) {
        std::vector<PackedQuery> queries;
        queries.reserve(static_cast<std::size_t>(nq));
        for (int q = 0; q < nq; ++q) {
          queries.push_back(PackedQuery::pack(random_query(rng, cols)));
        }
        std::vector<const std::uint64_t*> qptrs;
        std::vector<std::vector<std::uint64_t>> masks(
            static_cast<std::size_t>(nq),
            std::vector<std::uint64_t>(p.mask_words()));
        std::vector<std::vector<std::uint16_t>> dists(
            static_cast<std::size_t>(nq),
            std::vector<std::uint16_t>(
                static_cast<std::size_t>(p.mask_words()) * 64));
        std::vector<std::uint64_t*> mptrs;
        std::vector<std::uint16_t*> dptrs;
        std::vector<arch::SearchStats> stats(static_cast<std::size_t>(nq));
        for (int q = 0; q < nq; ++q) {
          qptrs.push_back(queries[static_cast<std::size_t>(q)].bits.data());
          mptrs.push_back(masks[static_cast<std::size_t>(q)].data());
          dptrs.push_back(dists[static_cast<std::size_t>(q)].data());
        }
        detail::approx_match_block_scalar(view, qptrs.data(), nq, d,
                                          threshold, mptrs.data(),
                                          dptrs.data(), stats.data());
        for (int q = 0; q < nq; ++q) {
          std::vector<std::uint64_t> single_mask;
          std::vector<std::uint16_t> single_dist;
          const arch::SearchStats single = approx_match(
              p, queries[static_cast<std::size_t>(q)], d, threshold,
              single_mask, single_dist, KernelTier::kScalar);
          ASSERT_EQ(masks[static_cast<std::size_t>(q)], single_mask)
              << "scalar block nq=" << nq << " q=" << q << " d=" << d;
          ASSERT_EQ(dists[static_cast<std::size_t>(q)], single_dist);
          ASSERT_EQ(stats[static_cast<std::size_t>(q)].matches,
                    single.matches);
        }
        if (simd) {
          std::vector<arch::SearchStats> vstats(
              static_cast<std::size_t>(nq));
          detail::approx_match_block_avx2(view, qptrs.data(), nq, d,
                                          threshold, mptrs.data(),
                                          dptrs.data(), vstats.data());
          for (int q = 0; q < nq; ++q) {
            std::vector<std::uint64_t> single_mask;
            std::vector<std::uint16_t> single_dist;
            approx_match(p, queries[static_cast<std::size_t>(q)], d,
                         threshold, single_mask, single_dist,
                         KernelTier::kScalar);
            ASSERT_EQ(masks[static_cast<std::size_t>(q)], single_mask)
                << "avx2 block nq=" << nq << " q=" << q << " d=" << d;
            ASSERT_EQ(dists[static_cast<std::size_t>(q)], single_dist);
          }
        }
      }
    }
  }
}

TEST(ApproxKernel, CollapseDigitsFoldsStraddlingGroups) {
  // d = 1: identity.
  EXPECT_EQ(detail::collapse_digits(0xDEADBEEFULL, 0, 0, 1), 0xDEADBEEFULL);

  // d = 2: any mismatch inside a 2-bit group folds onto the even bit.
  //   bits 0..1 -> bit 0, bits 2..3 -> bit 2, ...
  EXPECT_EQ(detail::collapse_digits(0b10ULL, 0, 0, 2), 0b01ULL);
  EXPECT_EQ(detail::collapse_digits(0b1100ULL, 0, 0, 2), 0b0100ULL);
  EXPECT_EQ(detail::collapse_digits(0b1010ULL, 0, 0, 2), 0b0101ULL);

  // d = 3, word 0 (phase 0): group starts at bits 0, 3, 6, ...  A word-63
  // mismatch belongs to the group starting at bit 63 — together with the
  // NEXT word's bits 0..1.
  EXPECT_EQ(detail::collapse_digits(1ULL << 1, 0, 0, 3), 1ULL << 0);
  EXPECT_EQ(detail::collapse_digits(1ULL << 5, 0, 0, 3), 1ULL << 3);
  EXPECT_EQ(detail::collapse_digits(1ULL << 63, 0, 0, 3), 1ULL << 63);
  // The straddling group's tail lives in `next`: a mismatch in next's bit
  // 0 or 1 must fold back onto THIS word's bit 63 start.
  EXPECT_EQ(detail::collapse_digits(0, 1ULL << 0, 0, 3), 1ULL << 63);
  EXPECT_EQ(detail::collapse_digits(0, 1ULL << 1, 0, 3), 1ULL << 63);
  // ...and a mismatch in next's bit 2 belongs to the NEXT word's first
  // full group, not to this word.
  EXPECT_EQ(detail::collapse_digits(0, 1ULL << 2, 0, 3), 0ULL);

  // d = 3, word 1 (phase 64 mod 3 = 1): the first two bits finish word
  // 0's straddling group (already counted there), so the first start here
  // is bit 2.
  EXPECT_EQ(detail::collapse_digits(1ULL << 0, 0, 1, 3), 0ULL);
  EXPECT_EQ(detail::collapse_digits(1ULL << 1, 0, 1, 3), 0ULL);
  EXPECT_EQ(detail::collapse_digits(1ULL << 2, 0, 1, 3), 1ULL << 2);
  EXPECT_EQ(detail::collapse_digits(1ULL << 4, 0, 1, 3), 1ULL << 2);

  // d = 3, word 2 (phase 128 mod 3 = 2): one carried bit, first start at
  // bit 1.
  EXPECT_EQ(detail::collapse_digits(1ULL << 0, 0, 2, 3), 0ULL);
  EXPECT_EQ(detail::collapse_digits(1ULL << 1, 0, 2, 3), 1ULL << 1);
  EXPECT_EQ(detail::collapse_digits(1ULL << 3, 0, 2, 3), 1ULL << 1);
}

TEST(ApproxKernel, ValidationThrowsNamedErrors) {
  PackedShard p(8, 12);
  const PackedQuery q = PackedQuery::pack(arch::BitWord(12, 0));
  std::vector<std::uint64_t> within;
  std::vector<std::uint16_t> distances;
  EXPECT_THROW(approx_match(p, q, 0, 0, within, distances),
               std::invalid_argument);
  EXPECT_THROW(approx_match(p, q, 4, 0, within, distances),
               std::invalid_argument);
  EXPECT_THROW(approx_match(p, q, 1, -1, within, distances),
               std::invalid_argument);
  // 12 % 3 == 0 is fine; a 5-wide digit never is, and cols that d does
  // not divide must throw too.
  PackedShard p2(8, 13);
  const PackedQuery q2 = PackedQuery::pack(arch::BitWord(13, 0));
  EXPECT_THROW(approx_match(p2, q2, 2, 0, within, distances),
               std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::engine
