// BoundedQueue: bounded blocking semantics, close/drain behavior, and
// MPMC safety (everything pushed is popped exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "engine/queue.hpp"

namespace fetcam::engine {
namespace {

TEST(BoundedQueue, FifoAndWatermark) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_watermark(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_watermark(), 3u);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "full";
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3)) << "push after close fails";
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1) << "pops drain remaining items";
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt) << "then report closed";
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // must block until the consumer pops
    pushed.store(true);
  });
  // Give the producer a chance to block (not load-bearing for correctness;
  // the assertion below is what matters).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<int> outcomes{0};
  std::thread producer([&] {
    if (!q.push(2)) outcomes.fetch_add(1);  // blocked-full, then closed
  });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] {
    if (!empty.pop().has_value()) outcomes.fetch_add(1);  // blocked-empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  empty.close();
  producer.join();
  consumer.join();
  EXPECT_EQ(outcomes.load(), 2);
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::multiset<int> seen;
  std::mutex seen_mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        const std::lock_guard<std::mutex> lock(seen_mu);
        seen.insert(*item);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

TEST(BoundedQueue, PopSomeDrainsFifoUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  const std::vector<int> first = q.pop_some(3);
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2}));
  const std::vector<int> rest = q.pop_some(10);
  EXPECT_EQ(rest, (std::vector<int>{3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPopSomeNeverBlocks) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_pop_some(4).empty()) << "empty queue: no items, no wait";
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(q.try_pop_some(1), (std::vector<int>{1}));
  EXPECT_EQ(q.try_pop_some(8), (std::vector<int>{2}));
  EXPECT_TRUE(q.try_pop_some(8).empty());
  EXPECT_TRUE(q.pop_some(0).empty()) << "max=0 is a no-op";
}

TEST(BoundedQueue, PopSomeAfterCloseDrainsThenReportsEmpty) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  EXPECT_EQ(q.pop_some(10), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.pop_some(10).empty()) << "closed and drained";
}

// Regression: a bulk pop frees SEVERAL capacity slots at once, so it must
// notify_all on not_full_.  With pop()'s notify_one discipline, only one
// of the producers blocked on the full queue would wake; the consumer
// below then waits for every producer's item before popping again —
// exactly a drain-on-shutdown — and the test deadlocks.
TEST(BoundedQueue, BulkPopWakesEveryBlockedProducer) {
  constexpr int kProducers = 4;
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(-1));
  ASSERT_TRUE(q.push(-2));  // full: every producer below blocks
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] { ASSERT_TRUE(q.push(p)); });
  }
  // Let the producers reach the blocked wait (best effort; correctness
  // does not depend on it — it just makes the regression scenario real).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // One bulk pop frees BOTH slots; all four producers must make progress
  // even though the consumer now waits for all their items.
  std::multiset<int> seen;
  for (const int v : q.pop_some(2)) seen.insert(v);
  while (seen.size() < static_cast<std::size_t>(kProducers + 2)) {
    for (const int v : q.pop_some(2)) seen.insert(v);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers + 2));
  for (int v = -2; v < kProducers; ++v) EXPECT_EQ(seen.count(v), 1u) << v;
}

TEST(BoundedQueue, MpmcBulkConsumersDeliverEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(4);  // small: producers block constantly
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::multiset<int> seen;
  std::mutex seen_mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const std::vector<int> items = q.pop_some(3);
        if (items.empty()) return;  // closed and drained
        const std::lock_guard<std::mutex> lock(seen_mu);
        for (const int v : items) seen.insert(v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

}  // namespace
}  // namespace fetcam::engine
