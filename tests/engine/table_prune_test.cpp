// Mat-skip pruning index: incremental-vs-rebuilt aggregate equivalence
// under randomized mutation churn, pruned-vs-unpruned match equality
// (results AND stats, per mat), and blocked-vs-single table matches over
// the same churned states.  These are the properties that let the engine
// skip a mat's row scan without changing one observable bit:
//
//   * after ANY interleaving of insert / erase / update / rewrite_digits /
//     relocate / set_priority, the incrementally maintained MatAggregate
//     equals the one rebuilt from a full shard scan;
//   * a search against a pruning table returns exactly the TableMatch of
//     a non-pruning table — including SearchStats and per-mat stats,
//     because a skip is only taken when its stats are exactly knowable;
//   * match_mats_block over any lane mix equals per-lane match_mats.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "engine/packed_kernel.hpp"
#include "engine/table.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

constexpr std::uint64_t kSeed = 0x9A6BD0C3ul;

TableConfig prune_config(arch::TcamDesign design, bool mat_skip) {
  TableConfig cfg;
  cfg.design = design;
  cfg.mats = 4;
  cfg.rows_per_mat = 16;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 2;
  cfg.mat_skip = mat_skip;
  return cfg;
}

arch::TernaryWord random_word(std::mt19937& rng, int cols,
                              double x_fraction) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  arch::TernaryWord w;
  for (int c = 0; c < cols; ++c) {
    if (u(rng) < x_fraction) {
      w.push_back(arch::Ternary::kX);
    } else {
      w.push_back(bit(rng) != 0 ? arch::Ternary::kOne : arch::Ternary::kZero);
    }
  }
  return w;
}

arch::BitWord random_query(std::mt19937& rng, int cols) {
  std::uniform_int_distribution<int> bit(0, 1);
  arch::BitWord q;
  for (int c = 0; c < cols; ++c) {
    q.push_back(static_cast<std::uint8_t>(bit(rng)));
  }
  return q;
}

void expect_match_eq(const TableMatch& want, const TableMatch& got,
                     const char* what, int step) {
  ASSERT_EQ(want.hit, got.hit) << what << " step=" << step;
  ASSERT_EQ(want.entry, got.entry) << what << " step=" << step;
  if (want.hit) {
    ASSERT_EQ(want.priority, got.priority) << what << " step=" << step;
  }
  ASSERT_EQ(want.stats.rows, got.stats.rows) << what << " step=" << step;
  ASSERT_EQ(want.stats.step1_misses, got.stats.step1_misses)
      << what << " step=" << step;
  ASSERT_EQ(want.stats.step2_evaluated, got.stats.step2_evaluated)
      << what << " step=" << step;
  ASSERT_EQ(want.stats.matches, got.stats.matches)
      << what << " step=" << step;
  ASSERT_EQ(want.per_mat.size(), got.per_mat.size())
      << what << " step=" << step;
  for (std::size_t m = 0; m < want.per_mat.size(); ++m) {
    ASSERT_EQ(want.per_mat[m].rows, got.per_mat[m].rows)
        << what << " mat=" << m << " step=" << step;
    ASSERT_EQ(want.per_mat[m].step1_misses, got.per_mat[m].step1_misses)
        << what << " mat=" << m << " step=" << step;
    ASSERT_EQ(want.per_mat[m].step2_evaluated,
              got.per_mat[m].step2_evaluated)
        << what << " mat=" << m << " step=" << step;
    ASSERT_EQ(want.per_mat[m].matches, got.per_mat[m].matches)
        << what << " mat=" << m << " step=" << step;
  }
}

/// One randomized churn trajectory: every mutation kind against twin
/// tables (pruning on / pruning off), with aggregate-vs-scan and
/// match-equality checks woven through the mutation stream so the
/// properties are pinned at INTERMEDIATE states, not just at the end —
/// the applier's mid-plan states are exactly where a stale aggregate
/// would show.
void run_churn(arch::TcamDesign design, std::uint64_t trial) {
  std::mt19937 rng = util::trial_rng(kSeed, trial);
  const TableConfig pruned_cfg = prune_config(design, true);
  const TableConfig flat_cfg = prune_config(design, false);
  TcamTable pruned(pruned_cfg);
  TcamTable flat(flat_cfg);
  const int cols = pruned_cfg.cols;
  const int capacity = pruned_cfg.mats * pruned_cfg.rows_per_mat;

  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> prio(0, 40);
  std::uniform_int_distribution<int> mat_d(0, pruned_cfg.mats - 1);
  std::vector<EntryId> live;

  auto check_aggregates = [&](int step) {
    for (int m = 0; m < pruned_cfg.mats; ++m) {
      ASSERT_EQ(pruned.aggregate(m), pruned.scan_aggregate(m))
          << "design=" << static_cast<int>(design) << " mat=" << m
          << " step=" << step;
    }
  };
  auto check_matches = [&](int step) {
    // Single-lane equality, then every block size over the same lanes.
    std::vector<arch::BitWord> queries;
    for (int q = 0; q < kMaxQueryBlock; ++q) {
      queries.push_back(random_query(rng, cols));
    }
    MatchScratch scratch;
    std::vector<TableMatch> want(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      flat.match(queries[q], scratch, want[q]);
      TableMatch got;
      pruned.match(queries[q], scratch, got);
      expect_match_eq(want[q], got, "pruned vs flat", step);
      if (::testing::Test::HasFailure()) return;
    }
    BlockMatchScratch block_scratch;
    for (int nq = 1; nq <= kMaxQueryBlock; ++nq) {
      const arch::BitWord* qp[kMaxQueryBlock];
      std::vector<TableMatch> got(static_cast<std::size_t>(nq));
      TableMatch* outs[kMaxQueryBlock];
      for (int q = 0; q < nq; ++q) {
        qp[q] = &queries[static_cast<std::size_t>(q)];
        outs[q] = &got[static_cast<std::size_t>(q)];
      }
      pruned.match_mats_block(qp, nq, 0, pruned_cfg.mats, block_scratch,
                              outs);
      for (int q = 0; q < nq; ++q) {
        expect_match_eq(want[static_cast<std::size_t>(q)],
                        got[static_cast<std::size_t>(q)], "blocked", step);
        if (::testing::Test::HasFailure()) return;
      }
    }
  };

  for (int step = 0; step < 160; ++step) {
    const double op = u(rng);
    if (op < 0.35 || live.empty()) {
      if (static_cast<int>(live.size()) < capacity) {
        // Mix of sparse, dense, and fully wildcard rows: all-X rows are
        // the "never prunes" corner (no cared digit can be unanimous).
        const double xf = op < 0.05 ? 1.0 : u(rng);
        const int p = prio(rng);
        const arch::TernaryWord word = random_word(rng, cols, xf);
        // Twin tables share the deterministic allocator, so ids align.
        const EntryId a = pruned.insert(word, p);
        const EntryId b = flat.insert(word, p);
        ASSERT_EQ(a, b);
        live.push_back(a);
      }
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t at = pick(rng);
      const EntryId id = live[at];
      if (op < 0.50) {
        pruned.erase(id);
        flat.erase(id);
        live[at] = live.back();
        live.pop_back();
      } else if (op < 0.65) {
        const arch::TernaryWord next = random_word(rng, cols, u(rng));
        pruned.update(id, next);
        flat.update(id, next);
      } else if (op < 0.80) {
        // Delta rewrite; sometimes a no-op word (changed == 0 branch).
        const arch::TernaryWord next = op < 0.68
                                           ? pruned.entry_word(id)
                                           : random_word(rng, cols, u(rng));
        pruned.rewrite_digits(id, next);
        flat.rewrite_digits(id, next);
      } else if (op < 0.90) {
        const int target = mat_d(rng);
        const bool a = pruned.relocate(id, target);
        const bool b = flat.relocate(id, target);
        ASSERT_EQ(a, b);
      } else {
        const int p = prio(rng);
        pruned.set_priority(id, p);
        flat.set_priority(id, p);
      }
    }
    check_aggregates(step);
    if (::testing::Test::HasFailure()) return;
    if (step % 8 == 7) {
      check_matches(step);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(TablePrune, AggregateAndMatchInvariantUnderChurnTwoStep) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    run_churn(arch::TcamDesign::k1p5DgFe, trial);
    if (HasFailure()) return;
  }
}

TEST(TablePrune, AggregateAndMatchInvariantUnderChurnSingleStep) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    run_churn(arch::TcamDesign::k2DgFefet, trial + 100);
    if (HasFailure()) return;
  }
}

TEST(TablePrune, EmptyTableSkipsEveryMat) {
  TcamTable t(prune_config(arch::TcamDesign::k1p5DgFe, true));
  const TableMatch m = t.search(arch::BitWord(16, 0));
  EXPECT_FALSE(m.hit);
  EXPECT_EQ(m.stats.rows, 4 * 16);
  EXPECT_EQ(m.stats.step1_misses, 4 * 16);  // empty mats die in step 1
  EXPECT_EQ(m.stats.step2_evaluated, 0);
  EXPECT_EQ(t.mats_considered(), 4);
  EXPECT_EQ(t.mats_skipped(), 4);
}

TEST(TablePrune, UnanimousColumnPrunesAndAllXNeverDoes) {
  TcamTable t(prune_config(arch::TcamDesign::k1p5DgFe, true));
  // Mat 0 (emptiest-first allocator): every row cares-and-requires 1 at
  // column 0.
  arch::TernaryWord req1(16, arch::Ternary::kX);
  req1[0] = arch::Ternary::kOne;
  const EntryId id = t.insert(req1, 3);
  const long long base = t.mats_skipped();

  arch::BitWord miss_q(16, 0);  // bit 0 = 0: provably matchless in mat 0
  const TableMatch miss = t.search(miss_q);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(t.mats_skipped(), base + 4);  // mat 0 pruned + 3 empty mats

  arch::BitWord hit_q(16, 0);
  hit_q[0] = 1;
  const TableMatch hit = t.search(hit_q);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.entry, id);

  // An all-X row dissolves the unanimity: no column has every valid row
  // caring, so the aggregate masks go empty and nothing prunes —
  // a wildcard row matches every query, and the skip test must know it.
  const arch::TernaryWord all_x(16, arch::Ternary::kX);
  t.insert(all_x, 9, /*mat=*/0);
  const long long before = t.mats_skipped();
  const TableMatch after = t.search(miss_q);
  EXPECT_TRUE(after.hit);
  EXPECT_EQ(t.mats_skipped(), before + 3);  // only the 3 empty mats skip
}

TEST(TablePrune, MatSkipOffNeverSkips) {
  TcamTable t(prune_config(arch::TcamDesign::k1p5DgFe, false));
  t.search(arch::BitWord(16, 0));
  EXPECT_EQ(t.mats_considered(), 4);
  EXPECT_EQ(t.mats_skipped(), 0);
}

TEST(TablePrune, AggregateOverlapPrefersAlignedMat) {
  TcamTable t(prune_config(arch::TcamDesign::k1p5DgFe, true));
  arch::TernaryWord ones(16, arch::Ternary::kOne);
  arch::TernaryWord zeros(16, arch::Ternary::kZero);
  t.insert(ones, 1, /*mat=*/0);
  t.insert(zeros, 1, /*mat=*/1);
  // A word equal to the mat-0 population preserves all 16 unanimous
  // digits there and none of mat 1's.
  EXPECT_EQ(t.aggregate_overlap(0, ones), 16);
  EXPECT_EQ(t.aggregate_overlap(1, ones), 0);
  // Empty mats price a word by its cared-digit count (the aggregate the
  // insert would create).
  arch::TernaryWord sparse(16, arch::Ternary::kX);
  sparse[2] = arch::Ternary::kOne;
  EXPECT_EQ(t.aggregate_overlap(2, sparse), 1);
}

}  // namespace
}  // namespace fetcam::engine
