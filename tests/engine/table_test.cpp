// Sharded TcamTable: allocation, priority resolution, accounting, and
// golden equivalence of the broadcast match against a flat behavioral
// reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "arch/behavioral_array.hpp"
#include "engine/table.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

arch::TernaryWord from_string(const std::string& s) {
  arch::TernaryWord w;
  for (const char c : s) {
    w.push_back(c == '1'   ? arch::Ternary::kOne
                : c == '0' ? arch::Ternary::kZero
                           : arch::Ternary::kX);
  }
  return w;
}

arch::BitWord bits(const std::string& s) {
  arch::BitWord q;
  for (const char c : s) q.push_back(c == '1' ? 1 : 0);
  return q;
}

TableConfig small_config() {
  TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 2;
  cfg.rows_per_mat = 8;
  cfg.cols = 8;
  cfg.subarrays_per_mat = 2;
  return cfg;
}

TEST(TcamTable, ValidatesConfig) {
  TableConfig cfg = small_config();
  cfg.cols = 7;  // two-step design needs an even word
  EXPECT_THROW(TcamTable{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.subarrays_per_mat = 3;  // driver banks pair subarrays
  EXPECT_THROW(TcamTable{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.rows_per_mat = 6;
  cfg.subarrays_per_mat = 4;  // must divide rows
  EXPECT_THROW(TcamTable{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.mats = 0;
  EXPECT_THROW(TcamTable{cfg}, std::invalid_argument);
}

TEST(TcamTable, InsertSpreadsAcrossMatsAndRecyclesSlots) {
  TcamTable t(small_config());
  EXPECT_EQ(t.capacity(), 16u);
  const auto a = t.insert(from_string("0000XXXX"), 1);
  const auto b = t.insert(from_string("1111XXXX"), 2);
  // Emptiest-mat allocation: second insert lands on the other mat.
  ASSERT_TRUE(t.locate(a).has_value());
  ASSERT_TRUE(t.locate(b).has_value());
  EXPECT_EQ(t.locate(a)->mat, 0);
  EXPECT_EQ(t.locate(a)->row, 0);
  EXPECT_EQ(t.locate(b)->mat, 1);
  EXPECT_EQ(t.locate(b)->row, 0);
  EXPECT_EQ(t.size(), 2u);

  t.erase(a);
  EXPECT_FALSE(t.contains(a));
  EXPECT_EQ(t.size(), 1u);
  // The freed slot (mat 0, row 0 — lowest row of the emptiest mat) is
  // reused deterministically.
  const auto c = t.insert(from_string("0101XXXX"), 3);
  EXPECT_EQ(t.locate(c)->mat, 0);
  EXPECT_EQ(t.locate(c)->row, 0);
  EXPECT_NE(c, a);  // ids are never recycled
}

TEST(TcamTable, FullTableReturnsInvalidEntry) {
  TableConfig cfg = small_config();
  cfg.mats = 1;
  cfg.rows_per_mat = 2;
  TcamTable t(cfg);
  EXPECT_NE(t.insert(from_string("0000XXXX"), 0), kInvalidEntry);
  EXPECT_NE(t.insert(from_string("1111XXXX"), 0), kInvalidEntry);
  EXPECT_EQ(t.insert(from_string("01XXXXXX"), 0), kInvalidEntry);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TcamTable, PriorityResolutionLowestWinsTiesToOlder) {
  TcamTable t(small_config());
  const auto broad = t.insert(from_string("1XXXXXXX"), 10);
  const auto narrow = t.insert(from_string("10110000"), 2);
  const auto same_a = t.insert(from_string("1011XXXX"), 5);
  const auto same_b = t.insert(from_string("101100XX"), 5);

  auto m = t.search(bits("10110000"));
  EXPECT_TRUE(m.hit);
  EXPECT_EQ(m.entry, narrow);
  EXPECT_EQ(m.priority, 2);

  t.erase(narrow);
  m = t.search(bits("10110000"));
  EXPECT_TRUE(m.hit);
  EXPECT_EQ(m.entry, same_a) << "tie resolves to the older entry";

  t.erase(same_a);
  t.erase(same_b);
  m = t.search(bits("10110000"));
  EXPECT_EQ(m.entry, broad);

  m = t.search(bits("01110000"));
  EXPECT_FALSE(m.hit);
  EXPECT_EQ(m.entry, kInvalidEntry);
}

TEST(TcamTable, UpdateRewritesInPlaceAndCanChangePriority) {
  TcamTable t(small_config());
  const auto id = t.insert(from_string("0000XXXX"), 4);
  const auto loc = *t.locate(id);
  t.update(id, from_string("1111XXXX"));
  EXPECT_EQ(t.locate(id)->mat, loc.mat);
  EXPECT_EQ(t.locate(id)->row, loc.row);
  EXPECT_EQ(t.priority_of(id), 4);
  EXPECT_FALSE(t.search(bits("00001111")).hit);
  EXPECT_TRUE(t.search(bits("11110000")).hit);

  t.update(id, from_string("1111XXXX"), 7);
  EXPECT_EQ(t.priority_of(id), 7);

  EXPECT_THROW(t.update(kInvalidEntry, from_string("0000XXXX")),
               std::out_of_range);
  t.erase(id);
  EXPECT_THROW(t.update(id, from_string("0000XXXX")), std::out_of_range);
}

TEST(TcamTable, MatchIsPureAndSearchAccounts) {
  TcamTable t(small_config());
  t.insert(from_string("1011XXXX"), 1);
  const double e_writes = t.total_energy_j();
  EXPECT_GT(e_writes, 0.0) << "inserts charge write energy";
  EXPECT_GT(t.write_pulses(), 0);
  EXPECT_EQ(t.last_write_phases(), 3) << "1.5T1Fe writes are three-phase";

  MatchScratch scratch;
  TableMatch m;
  t.match(bits("10110000"), scratch, m);
  EXPECT_TRUE(m.hit);
  EXPECT_EQ(t.total_energy_j(), e_writes) << "match() must not account";
  EXPECT_EQ(t.search_stats().searches(), 0);

  t.account_search(m);
  EXPECT_GT(t.total_energy_j(), e_writes);
  EXPECT_EQ(t.search_stats().searches(), 1);
  // Per-mat stats must cover every mat's rows exactly once.
  ASSERT_EQ(m.per_mat.size(), 2u);
  EXPECT_EQ(m.per_mat[0].rows + m.per_mat[1].rows, 16);
  EXPECT_EQ(m.stats.rows, 16);
}

TEST(TcamTable, EnduranceTracksPerMatRowWrites) {
  TcamTable t(small_config());
  const auto id = t.insert(from_string("0000XXXX"), 0);
  t.update(id, from_string("1111XXXX"));
  t.update(id, from_string("0101XXXX"));
  const auto loc = *t.locate(id);
  EXPECT_EQ(t.endurance(loc.mat).writes(loc.row), 3u);
  EXPECT_EQ(t.endurance(1 - loc.mat).total_writes(), 0u);
}

TEST(TcamTable, BroadcastMatchesFlatBehavioralReference) {
  // The sharded two-step broadcast must agree with one big TcamArray
  // holding the same entries (match winner AND merged stats).
  TableConfig cfg;
  cfg.mats = 3;
  cfg.rows_per_mat = 16;
  cfg.cols = 12;
  cfg.subarrays_per_mat = 2;
  TcamTable t(cfg);

  auto rng = util::trial_rng(23, 0, 0);
  std::uniform_int_distribution<int> trit(0, 2);
  std::uniform_int_distribution<int> bit(0, 1);
  std::uniform_int_distribution<int> prio(0, 5);

  struct Ref {
    arch::TernaryWord w;
    int priority;
    EntryId id;
  };
  std::vector<Ref> refs;
  for (int i = 0; i < 40; ++i) {
    arch::TernaryWord w;
    for (int c = 0; c < cfg.cols; ++c) {
      const int v = trit(rng);
      w.push_back(v == 0   ? arch::Ternary::kZero
                  : v == 1 ? arch::Ternary::kOne
                           : arch::Ternary::kX);
    }
    const int p = prio(rng);
    refs.push_back({w, p, t.insert(w, p)});
  }

  MatchScratch scratch;
  TableMatch m;
  for (int q = 0; q < 50; ++q) {
    arch::BitWord query;
    for (int c = 0; c < cfg.cols; ++c) {
      query.push_back(static_cast<std::uint8_t>(bit(rng)));
    }
    t.match(query, scratch, m);
    // Reference winner: lowest (priority, id) among matching refs.
    EntryId want = kInvalidEntry;
    int want_p = 0;
    for (const auto& r : refs) {
      if (!arch::word_matches(r.w, query)) continue;
      if (want == kInvalidEntry || r.priority < want_p ||
          (r.priority == want_p && r.id < want)) {
        want = r.id;
        want_p = r.priority;
      }
    }
    EXPECT_EQ(m.hit, want != kInvalidEntry) << "query " << q;
    EXPECT_EQ(m.entry, want) << "query " << q;
    if (want != kInvalidEntry) EXPECT_EQ(m.priority, want_p);
    EXPECT_EQ(m.stats.rows, cfg.mats * cfg.rows_per_mat);
    EXPECT_EQ(m.stats.matches,
              static_cast<int>(std::count_if(
                  refs.begin(), refs.end(), [&](const Ref& r) {
                    return arch::word_matches(r.w, query);
                  })));
  }
}

TEST(TcamTable, TargetedInsertHonorsMatAndRefusesFullMat) {
  TableConfig cfg = small_config();
  cfg.mats = 2;
  cfg.rows_per_mat = 2;
  TcamTable t(cfg);
  const auto a = t.insert(from_string("0000XXXX"), 0, 1);
  const auto b = t.insert(from_string("0001XXXX"), 0, 1);
  EXPECT_EQ(t.locate(a)->mat, 1);
  EXPECT_EQ(t.locate(b)->mat, 1);
  // Mat 1 is full; a targeted insert must NOT silently fall back to mat 0.
  EXPECT_EQ(t.insert(from_string("0010XXXX"), 0, 1), kInvalidEntry);
  EXPECT_EQ(t.free_rows(0), 2u);
  EXPECT_EQ(t.free_rows(1), 0u);
  // mat < 0 keeps the default emptiest-mat policy.
  const auto c = t.insert(from_string("0011XXXX"), 0, -1);
  EXPECT_EQ(t.locate(c)->mat, 0);
  EXPECT_THROW(t.insert(from_string("0100XXXX"), 0, 2), std::out_of_range);
}

TEST(TcamTable, SetPriorityIsPeripheralOnly) {
  TcamTable t(small_config());
  const auto id = t.insert(from_string("1011XXXX"), 5);
  const auto pulses = t.write_pulses();
  const auto energy = t.total_energy_j();
  const auto loc = *t.locate(id);
  const auto row_writes = t.endurance(loc.mat).writes(loc.row);

  t.set_priority(id, 1);
  EXPECT_EQ(t.priority_of(id), 1);
  EXPECT_EQ(t.write_pulses(), pulses) << "priority lives in the resolver";
  EXPECT_EQ(t.total_energy_j(), energy);
  EXPECT_EQ(t.endurance(loc.mat).writes(loc.row), row_writes);
  const auto m = t.search(bits("10110000"));
  EXPECT_EQ(m.priority, 1);
}

TEST(TcamTable, RewriteDigitsChargesOnlyChangedColumns) {
  TcamTable t(small_config());
  const auto id = t.insert(from_string("00001111"), 0);
  const auto pulses = t.write_pulses();
  const auto energy = t.total_energy_j();

  // Unchanged word: zero pulses, zero energy, zero endurance.
  const auto loc = *t.locate(id);
  const auto row_writes = t.endurance(loc.mat).writes(loc.row);
  t.rewrite_digits(id, from_string("00001111"));
  EXPECT_EQ(t.last_write_phases(), 0);
  EXPECT_EQ(t.write_pulses(), pulses);
  EXPECT_EQ(t.total_energy_j(), energy);
  EXPECT_EQ(t.endurance(loc.mat).writes(loc.row), row_writes);

  // One digit flips 1 -> X: the charged pulses/energy must equal the
  // quoted delta cost, stay within a full 3-phase refresh, and leave the
  // stored word right.
  const auto cost = t.cost_rewrite(from_string("0000111X"),
                                   from_string("00001111"));
  t.rewrite_digits(id, from_string("0000111X"));
  EXPECT_EQ(t.write_pulses() - pulses, cost.phases);
  EXPECT_NEAR(t.total_energy_j() - energy, cost.energy_j, 1e-18);
  EXPECT_LE(cost.phases, 3);
  EXPECT_GT(cost.phases, 0);
  EXPECT_TRUE(t.search(bits("00001110")).hit);
  EXPECT_TRUE(t.search(bits("00001111")).hit);
  EXPECT_EQ(t.entry_word(id), from_string("0000111X"));
}

TEST(TcamTable, RelocateChargesDestinationWriteExactlyOnce) {
  // Regression: an early draft charged the write at BOTH the source (via
  // erase bookkeeping) and the destination.  A relocation is one program
  // operation: its energy delta must equal a fresh insert of the same
  // word, and endurance must tick only at the destination row.
  TcamTable t(small_config());
  const auto word = from_string("1010XXXX");
  const auto id = t.insert(word, 3, 0);
  const auto src = *t.locate(id);
  const double energy_before = t.total_energy_j();
  const auto pulses_before = t.write_pulses();
  const auto expect = t.cost_write(word, nullptr);

  ASSERT_TRUE(t.relocate(id, 1));
  const auto dst = *t.locate(id);
  EXPECT_EQ(dst.mat, 1);
  EXPECT_EQ(t.priority_of(id), 3) << "relocation preserves priority";
  EXPECT_EQ(t.entry_word(id), word);

  // Exactly one write's worth of energy and pulses, no double charge.
  EXPECT_NEAR(t.total_energy_j() - energy_before, expect.energy_j, 1e-18);
  EXPECT_EQ(t.write_pulses() - pulses_before, expect.phases);
  EXPECT_EQ(t.endurance(dst.mat).writes(dst.row), 1u);
  EXPECT_EQ(t.endurance(src.mat).writes(src.row), 1u)
      << "source row keeps its insert-time count; vacating is peripheral";
  EXPECT_EQ(t.endurance(src.mat).total_writes(), 1u);

  // The vacated row is free again and the search still resolves to id.
  EXPECT_EQ(t.free_rows(src.mat), 8u);
  const auto m = t.search(bits("10100000"));
  EXPECT_TRUE(m.hit);
  EXPECT_EQ(m.entry, id);

  // A full target mat refuses without side effects.
  TableConfig tiny = small_config();
  tiny.mats = 2;
  tiny.rows_per_mat = 2;
  TcamTable t2(tiny);
  const auto x = t2.insert(word, 0, 0);
  t2.insert(from_string("0001XXXX"), 0, 1);
  t2.insert(from_string("0010XXXX"), 0, 1);
  const double e2 = t2.total_energy_j();
  EXPECT_FALSE(t2.relocate(x, 1));
  EXPECT_EQ(t2.locate(x)->mat, 0);
  EXPECT_EQ(t2.total_energy_j(), e2);
}

TEST(TcamTable, SingleStepDesignUsesFullMatch) {
  TableConfig cfg = small_config();
  cfg.design = arch::TcamDesign::kCmos16T;
  cfg.cols = 7;  // single-step designs may use odd word lengths
  TcamTable t(cfg);
  EXPECT_FALSE(t.two_step());
  t.insert(from_string("1011XXX"), 0);
  const auto m = t.search(bits("1011010"));
  EXPECT_TRUE(m.hit);
  // Single-step accounting: every row evaluates fully.
  EXPECT_EQ(m.stats.step2_evaluated, m.stats.rows);
  EXPECT_EQ(m.stats.step1_misses, 0);
  EXPECT_EQ(t.last_write_phases(), 1) << "complementary write is one phase";
}

}  // namespace
}  // namespace fetcam::engine
