// Differential / property test layer for the match kernel tiers.
//
// Thousands of counter-keyed randomized cases (reproducible from the seed
// baked into each trial key) drive the scalar-packed kernel, the SIMD
// kernel (when the build/CPU has it), and the behavioral references
// (TcamArray::search, arch::two_step_search) over the same tables and
// queries.  Every case asserts BIT-EXACT agreement per lane — match flags
// row by row, mask padding, and the full SearchStats counters — across:
//
//   * widths spanning the word boundaries (1, 7, 63, 64, 65, 128, 130),
//   * row counts spanning the 64-row block boundaries (1, 3, 64, 65, 200),
//   * entry styles: random ternary, all-X (wildcard), all-care,
//     single-care-bit, erased and never-written rows,
//   * query styles: random, all-zeros, all-ones, exact row images, and
//     single-bit perturbations of a stored row.
//
// The SIMD tier has no early termination; the scalar tier does.  These
// tests are what pins the claim that early-out changes only cost, never
// any observable outcome.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"
#include "engine/packed_kernel.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

constexpr std::uint64_t kSeed = 0x7CA9D1FFul;

arch::TernaryWord random_word(std::mt19937& rng, int cols,
                              double x_fraction) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  arch::TernaryWord w;
  w.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    if (u(rng) < x_fraction) {
      w.push_back(arch::Ternary::kX);
    } else {
      w.push_back(bit(rng) != 0 ? arch::Ternary::kOne : arch::Ternary::kZero);
    }
  }
  return w;
}

/// Entry-style mix exercising every storage corner: random ternary rows,
/// all-X rows, all-care rows, single-care-bit rows, never-written rows,
/// and written-then-erased rows.
void build_pair(std::mt19937& rng, int rows, int cols, arch::TcamArray& a,
                PackedShard& p) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> col(0, cols - 1);
  for (int r = 0; r < rows; ++r) {
    const double style = u(rng);
    if (style < 0.10) continue;  // never written
    arch::TernaryWord w;
    if (style < 0.25) {
      w = random_word(rng, cols, 1.0);  // all-wildcard
    } else if (style < 0.40) {
      w = random_word(rng, cols, 0.0);  // all-care
    } else if (style < 0.50) {
      // single-care-bit: matches half the query space on one digit
      w = random_word(rng, cols, 1.0);
      w[static_cast<std::size_t>(col(rng))] =
          u(rng) < 0.5 ? arch::Ternary::kOne : arch::Ternary::kZero;
    } else {
      w = random_word(rng, cols, 0.3);
    }
    a.write(r, w);
    p.write(r, w);
    if (style >= 0.92) {  // written then invalidated
      a.erase(r);
      p.erase(r);
    }
  }
}

/// Query styles: random, all-zeros, all-ones, the exact image of a stored
/// row (X digits resolved randomly), and a one-bit perturbation of it.
arch::BitWord make_query(std::mt19937& rng, int style, int cols,
                         const arch::TcamArray& array) {
  std::uniform_int_distribution<int> bit(0, 1);
  arch::BitWord q(static_cast<std::size_t>(cols), 0);
  switch (style % 5) {
    case 0:
      for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
      break;
    case 1:
      break;  // all zeros
    case 2:
      for (auto& b : q) b = 1;
      break;
    default: {
      std::uniform_int_distribution<int> row(0, array.rows() - 1);
      const int r = row(rng);
      if (array.valid(r)) {
        const arch::TernaryWord& w = array.entry(r);
        for (int c = 0; c < cols; ++c) {
          const arch::Ternary t = w[static_cast<std::size_t>(c)];
          q[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(
              t == arch::Ternary::kX ? bit(rng) : (t == arch::Ternary::kOne));
        }
      } else {
        for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
      }
      if (style % 5 == 4) {
        std::uniform_int_distribution<int> col(0, cols - 1);
        const std::size_t c = static_cast<std::size_t>(col(rng));
        q[c] = static_cast<std::uint8_t>(1 - q[c]);
      }
      break;
    }
  }
  return q;
}

void expect_stats_eq(const arch::SearchStats& want,
                     const arch::SearchStats& got, const char* what,
                     std::uint64_t key) {
  EXPECT_EQ(want.rows, got.rows) << what << " key=" << key;
  EXPECT_EQ(want.step1_misses, got.step1_misses) << what << " key=" << key;
  EXPECT_EQ(want.step2_evaluated, got.step2_evaluated)
      << what << " key=" << key;
  EXPECT_EQ(want.matches, got.matches) << what << " key=" << key;
}

/// Per-lane flag comparison + the padding property: mask bits at and past
/// `rows` must be zero in every tier.
void expect_mask_eq(const std::vector<bool>& want,
                    const std::vector<std::uint64_t>& mask, int rows,
                    const char* what, std::uint64_t key) {
  for (int r = 0; r < rows; ++r) {
    const bool got =
        ((mask[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1ULL) != 0;
    ASSERT_EQ(want[static_cast<std::size_t>(r)], got)
        << what << " row " << r << " key=" << key;
  }
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t padded = mask[w];
    if (w == static_cast<std::size_t>(rows) / 64 && (rows & 63) != 0) {
      padded &= ~((1ULL << (rows & 63)) - 1);
    } else if (w < static_cast<std::size_t>(rows) / 64) {
      padded = 0;
    }
    ASSERT_EQ(padded, 0u) << what << " pad word " << w << " key=" << key;
  }
}

struct TierGuard {
  ~TierGuard() { clear_kernel_tier_override(); }
};

void run_differential(int rows, int cols, int tables, int queries) {
  const bool simd = kernel_tier_available(KernelTier::kAvx2);
  for (int t = 0; t < tables; ++t) {
    const std::uint64_t table_key = util::trial_key(
        kSeed, static_cast<std::uint64_t>(rows) * 1000003u +
                   static_cast<std::uint64_t>(cols) * 1009u +
                   static_cast<std::uint64_t>(t));
    std::mt19937 rng = util::trial_rng(kSeed, table_key);
    arch::TcamArray array(rows, cols);
    PackedShard shard(rows, cols);
    build_pair(rng, rows, cols, array, shard);

    std::vector<std::uint64_t> scalar_mask;
    std::vector<std::uint64_t> simd_mask;
    for (int qi = 0; qi < queries; ++qi) {
      const std::uint64_t key = table_key + static_cast<std::uint64_t>(qi);
      const arch::BitWord query = make_query(rng, qi, cols, array);
      const PackedQuery packed = PackedQuery::pack(query);
      const std::vector<bool> ref = array.search(query);

      // Full (single-step) match: every tier vs the behavioral reference.
      const arch::SearchStats scalar_stats =
          shard.full_match(packed, scalar_mask, KernelTier::kScalar);
      expect_mask_eq(ref, scalar_mask, rows, "full/scalar", key);
      EXPECT_EQ(scalar_stats.rows, rows);
      if (simd) {
        const arch::SearchStats simd_stats =
            shard.full_match(packed, simd_mask, KernelTier::kAvx2);
        ASSERT_EQ(scalar_mask, simd_mask) << "full mask key=" << key;
        expect_stats_eq(scalar_stats, simd_stats, "full stats", key);
      }

      // Two-step match (even widths only): tiers vs arch::two_step_search,
      // stats included — the paper's step-1/step-2 accounting must be
      // identical in every implementation.
      if (cols % 2 == 0) {
        const arch::ScheduledSearchResult two_ref =
            arch::two_step_search(array, query);
        const arch::SearchStats two_scalar =
            shard.two_step_match(packed, scalar_mask, KernelTier::kScalar);
        expect_mask_eq(two_ref.matches, scalar_mask, rows, "two/scalar", key);
        expect_stats_eq(two_ref.stats, two_scalar, "two/scalar stats", key);
        if (simd) {
          const arch::SearchStats two_simd =
              shard.two_step_match(packed, simd_mask, KernelTier::kAvx2);
          ASSERT_EQ(scalar_mask, simd_mask) << "two-step mask key=" << key;
          expect_stats_eq(two_ref.stats, two_simd, "two/simd stats", key);
        }
      }
      if (::testing::Test::HasFailure()) return;  // one bad case is enough
    }
  }
}

TEST(KernelDifferential, WordBoundaryWidths) {
  // 63 / 64 / 65 plus a two-word even width: the packing edge cases.
  for (const int cols : {63, 64, 65, 130}) {
    run_differential(/*rows=*/96, cols, /*tables=*/3, /*queries=*/40);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, RowBlockBoundaries) {
  // 1 / 3 rows (sub-block), 64 (exact block), 65 (block + 1), 200
  // (3 blocks + tail): the SIMD per-64-row-block accounting edges.
  for (const int rows : {1, 3, 64, 65, 200}) {
    run_differential(rows, /*cols=*/64, /*tables=*/3, /*queries=*/40);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, NarrowAndOddWidths) {
  for (const int cols : {1, 2, 7, 16}) {
    run_differential(/*rows=*/70, cols, /*tables=*/2, /*queries=*/40);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, RandomizedSweep) {
  // The bulk randomized sweep: ~3k additional (table, query) cases over
  // mixed shapes; together with the boundary suites the differential
  // layer runs >10k tier-vs-reference comparisons.
  std::mt19937 shape_rng = util::trial_rng(kSeed, 999);
  std::uniform_int_distribution<int> rows_d(1, 160);
  std::uniform_int_distribution<int> cols_d(1, 100);
  for (int i = 0; i < 24; ++i) {
    const int rows = rows_d(shape_rng);
    int cols = cols_d(shape_rng);
    if (i % 2 == 0 && cols % 2 != 0) ++cols;  // keep two-step covered
    run_differential(rows, cols, /*tables=*/1, /*queries=*/128);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, ActiveTierOverrideRoundTrip) {
  // The dispatch plumbing itself: overrides select exactly the requested
  // tier and clear back to the CPU-detected best.
  TierGuard guard;
  clear_kernel_tier_override();
  EXPECT_EQ(active_kernel_tier(), best_kernel_tier());
  set_kernel_tier_override(KernelTier::kScalar);
  EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
  if (kernel_tier_available(KernelTier::kAvx2)) {
    set_kernel_tier_override(KernelTier::kAvx2);
    EXPECT_EQ(active_kernel_tier(), KernelTier::kAvx2);
  } else {
    EXPECT_THROW(set_kernel_tier_override(KernelTier::kAvx2),
                 std::invalid_argument);
  }
  clear_kernel_tier_override();
  EXPECT_EQ(active_kernel_tier(), best_kernel_tier());
}

TEST(KernelDifferential, DefaultPathFollowsOverride) {
  // The tier-less PackedShard entry points must route through the active
  // tier: force scalar, then (if present) AVX2, and check the default call
  // reproduces the forced call bit for bit.
  TierGuard guard;
  std::mt19937 rng = util::trial_rng(kSeed, 4242);
  arch::TcamArray array(96, 64);
  PackedShard shard(96, 64);
  build_pair(rng, 96, 64, array, shard);
  const arch::BitWord query = make_query(rng, 0, 64, array);
  const PackedQuery packed = PackedQuery::pack(query);

  std::vector<std::uint64_t> forced, defaulted;
  for (const KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
    if (!kernel_tier_available(tier)) continue;
    set_kernel_tier_override(tier);
    const arch::SearchStats a = shard.two_step_match(packed, forced, tier);
    const arch::SearchStats b = shard.two_step_match(packed, defaulted);
    EXPECT_EQ(forced, defaulted) << kernel_tier_name(tier);
    expect_stats_eq(a, b, kernel_tier_name(tier), 4242);
  }
}

/// Blocked-vs-single differential: for every block size B, every lane of
/// the blocked kernels must reproduce the single-query kernel's mask AND
/// stats bit for bit — on every tier.  Lane q's result may never depend
/// on its neighbors, which is the property the engine's determinism
/// contract (results invariant under query_block) stands on.
void run_block_differential(int rows, int cols, int tables) {
  const bool simd = kernel_tier_available(KernelTier::kAvx2);
  for (int t = 0; t < tables; ++t) {
    const std::uint64_t table_key = util::trial_key(
        kSeed, 77000 + static_cast<std::uint64_t>(rows) * 131u +
                   static_cast<std::uint64_t>(cols) * 7u +
                   static_cast<std::uint64_t>(t));
    std::mt19937 rng = util::trial_rng(kSeed, table_key);
    arch::TcamArray array(rows, cols);
    PackedShard shard(rows, cols);
    build_pair(rng, rows, cols, array, shard);
    const std::size_t words = shard.mask_words();

    for (const int nq : {1, 2, 3, 4, 5, 7, 8}) {
      // Lanes reuse the single-query styles, including exact-row images.
      std::vector<PackedQuery> packed(static_cast<std::size_t>(nq));
      std::vector<arch::SearchStats> single_stats(
          static_cast<std::size_t>(nq));
      std::vector<std::vector<std::uint64_t>> single_masks(
          static_cast<std::size_t>(nq));
      std::vector<std::vector<std::uint64_t>> block_masks(
          static_cast<std::size_t>(nq));
      const PackedQuery* qp[kMaxQueryBlock];
      std::uint64_t* mp[kMaxQueryBlock];
      arch::SearchStats block_stats[kMaxQueryBlock];
      for (int q = 0; q < nq; ++q) {
        const arch::BitWord query = make_query(rng, q, cols, array);
        packed[static_cast<std::size_t>(q)].repack(query);
        block_masks[static_cast<std::size_t>(q)].assign(words, ~0ULL);
        qp[q] = &packed[static_cast<std::size_t>(q)];
        mp[q] = block_masks[static_cast<std::size_t>(q)].data();
      }
      const std::uint64_t key = table_key * 100 + static_cast<std::uint64_t>(nq);

      for (const KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
        if (tier == KernelTier::kAvx2 && !simd) continue;
        for (int q = 0; q < nq; ++q) {
          single_stats[static_cast<std::size_t>(q)] = shard.full_match(
              packed[static_cast<std::size_t>(q)],
              single_masks[static_cast<std::size_t>(q)], tier);
        }
        shard.full_match_block(qp, nq, mp, block_stats, tier);
        for (int q = 0; q < nq; ++q) {
          ASSERT_EQ(single_masks[static_cast<std::size_t>(q)],
                    block_masks[static_cast<std::size_t>(q)])
              << "full block lane " << q << "/" << nq << " key=" << key;
          expect_stats_eq(single_stats[static_cast<std::size_t>(q)],
                          block_stats[q], "full block stats", key);
        }
        if (cols % 2 != 0) continue;
        for (int q = 0; q < nq; ++q) {
          single_stats[static_cast<std::size_t>(q)] = shard.two_step_match(
              packed[static_cast<std::size_t>(q)],
              single_masks[static_cast<std::size_t>(q)], tier);
        }
        shard.two_step_match_block(qp, nq, mp, block_stats, tier);
        for (int q = 0; q < nq; ++q) {
          ASSERT_EQ(single_masks[static_cast<std::size_t>(q)],
                    block_masks[static_cast<std::size_t>(q)])
              << "two-step block lane " << q << "/" << nq << " key=" << key;
          expect_stats_eq(single_stats[static_cast<std::size_t>(q)],
                          block_stats[q], "two-step block stats", key);
        }
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(KernelDifferential, BlockedLanesMatchSingleAtWordBoundaries) {
  // 63 / 64 / 65 columns: the packing edges, under every block size.
  for (const int cols : {63, 64, 65, 130}) {
    run_block_differential(/*rows=*/96, cols, /*tables=*/3);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, BlockedLanesMatchSingleAtRowBoundaries) {
  for (const int rows : {1, 3, 64, 65, 200}) {
    run_block_differential(rows, /*cols=*/64, /*tables=*/3);
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, BlockedAllWildcardRows) {
  // Every valid row all-X: every lane must match every valid row, and the
  // blocked accounting must still agree with the single-query kernels.
  for (const int rows : {5, 64, 70}) {
    arch::TcamArray array(rows, 64);
    PackedShard shard(rows, 64);
    const arch::TernaryWord all_x(64, arch::Ternary::kX);
    for (int r = 0; r < rows; r += 2) {  // half valid, half never written
      array.write(r, all_x);
      shard.write(r, all_x);
    }
    std::mt19937 rng = util::trial_rng(kSeed, 31000 + rows);
    run_block_differential(rows, 64, /*tables=*/1);
    std::vector<PackedQuery> packed(4);
    const PackedQuery* qp[4];
    std::vector<std::vector<std::uint64_t>> masks(4);
    std::uint64_t* mp[4];
    arch::SearchStats stats[4];
    for (int q = 0; q < 4; ++q) {
      packed[static_cast<std::size_t>(q)].repack(
          make_query(rng, q, 64, array));
      masks[static_cast<std::size_t>(q)].assign(shard.mask_words(), 0);
      qp[q] = &packed[static_cast<std::size_t>(q)];
      mp[q] = masks[static_cast<std::size_t>(q)].data();
    }
    shard.two_step_match_block(qp, 4, mp, stats);
    for (int q = 0; q < 4; ++q) {
      EXPECT_EQ(stats[q].matches, (rows + 1) / 2) << "rows=" << rows;
      const std::vector<bool> ref =
          array.search(arch::BitWord(64, 0));  // all-X: query irrelevant
      expect_mask_eq(ref, masks[static_cast<std::size_t>(q)], rows,
                     "all-X block", static_cast<std::uint64_t>(rows));
    }
    if (HasFailure()) return;
  }
}

TEST(KernelDifferential, BlockSizeOutOfRangeThrows) {
  PackedShard shard(8, 16);
  PackedQuery q = PackedQuery::pack(arch::BitWord(16, 0));
  std::vector<std::uint64_t> mask(shard.mask_words(), 0);
  const PackedQuery* qp[1] = {&q};
  std::uint64_t* mp[1] = {mask.data()};
  arch::SearchStats stats[1];
  EXPECT_THROW(shard.full_match_block(qp, 0, mp, stats),
               std::invalid_argument);
  EXPECT_THROW(shard.full_match_block(qp, kMaxQueryBlock + 1, mp, stats),
               std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::engine
