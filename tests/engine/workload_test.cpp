// Workload layer: trace generation determinism and shape, trace file
// round-trip, and the run harness's aggregate accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "engine/workload.hpp"

namespace fetcam::engine {
namespace {

TEST(Workload, GenerationIsDeterministic) {
  TraceSpec spec;
  spec.kind = TraceKind::kClassifier;
  spec.cols = 32;
  spec.rules = 64;
  spec.queries = 200;
  spec.seed = 9;
  const Trace a = generate_trace(spec);
  const Trace b = generate_trace(spec);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t r = 0; r < a.rules.size(); ++r) {
    EXPECT_EQ(a.rules[r].entry, b.rules[r].entry) << r;
    EXPECT_EQ(a.rules[r].priority, b.rules[r].priority) << r;
  }
  ASSERT_EQ(a.queries, b.queries);

  spec.seed = 10;
  const Trace c = generate_trace(spec);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.rules.size() && !any_diff; ++r) {
    any_diff = a.rules[r].entry != c.rules[r].entry;
  }
  EXPECT_TRUE(any_diff) << "different seeds give different traces";
}

TEST(Workload, AppendingQueriesPreservesPrefix) {
  // Counter-keyed generation: growing the trace must not disturb what was
  // already generated.
  TraceSpec spec;
  spec.cols = 16;
  spec.rules = 32;
  spec.queries = 50;
  const Trace small = generate_trace(spec);
  spec.queries = 100;
  const Trace big = generate_trace(spec);
  for (std::size_t q = 0; q < small.queries.size(); ++q) {
    EXPECT_EQ(small.queries[q], big.queries[q]) << q;
  }
  for (std::size_t r = 0; r < small.rules.size(); ++r) {
    EXPECT_EQ(small.rules[r].entry, big.rules[r].entry) << r;
  }
}

TEST(Workload, IpPrefixRulesAreContiguousPrefixes) {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = 32;
  spec.rules = 100;
  spec.queries = 0;
  const Trace t = generate_trace(spec);
  for (const auto& rule : t.rules) {
    ASSERT_EQ(static_cast<int>(rule.entry.size()), spec.cols);
    // Once a rule goes 'X' it stays 'X' (host bits), and priority is
    // cols - prefix_len so longer prefixes win.
    int len = 0;
    bool in_host = false;
    for (const auto d : rule.entry) {
      if (d == arch::Ternary::kX) {
        in_host = true;
      } else {
        EXPECT_FALSE(in_host) << "care digit after host bits";
        ++len;
      }
    }
    EXPECT_EQ(rule.priority, spec.cols - len);
  }
}

TEST(Workload, MatchRateIsRoughlyHonored) {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = 32;
  spec.rules = 64;
  spec.queries = 2000;
  spec.match_rate = 0.5;
  spec.seed = 4;
  const Trace trace = generate_trace(spec);

  TableConfig cfg;
  cfg.mats = 2;
  cfg.rows_per_mat = 64;
  cfg.cols = 32;
  cfg.subarrays_per_mat = 2;
  TcamTable table(cfg);
  load_rules(table, trace);

  int hits = 0;
  MatchScratch scratch;
  TableMatch m;
  for (const auto& q : trace.queries) {
    table.match(q, scratch, m);
    if (m.hit) ++hits;
  }
  // Derived queries always hit; uniform ones may accidentally hit a short
  // prefix too, so the hit rate brackets match_rate from above.
  const double hit_rate = static_cast<double>(hits) / spec.queries;
  EXPECT_GE(hit_rate, 0.45);
  EXPECT_LE(hit_rate, 0.95);
}

TEST(Workload, SaveLoadRoundTrip) {
  TraceSpec spec;
  spec.kind = TraceKind::kClassifier;
  spec.cols = 24;
  spec.rules = 20;
  spec.queries = 30;
  const Trace t = generate_trace(spec);
  const std::string path = "workload_roundtrip_test.trace";
  ASSERT_TRUE(save_trace(t, path));
  const auto back = load_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cols, t.cols);
  ASSERT_EQ(back->rules.size(), t.rules.size());
  for (std::size_t r = 0; r < t.rules.size(); ++r) {
    EXPECT_EQ(back->rules[r].entry, t.rules[r].entry) << r;
    EXPECT_EQ(back->rules[r].priority, t.rules[r].priority) << r;
  }
  EXPECT_EQ(back->queries, t.queries);
}

TEST(Workload, LoadRejectsGarbage) {
  EXPECT_FALSE(load_trace("does_not_exist.trace").has_value());
}

TEST(Workload, RunTraceAggregatesMatchTheEngine) {
  TraceSpec spec;
  spec.cols = 16;
  spec.rules = 40;
  spec.queries = 500;
  spec.match_rate = 0.3;
  const Trace trace = generate_trace(spec);

  TableConfig cfg;
  cfg.mats = 2;
  cfg.rows_per_mat = 32;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 2;
  TcamTable table(cfg);
  const auto ids = load_rules(table, trace);

  SearchEngine engine(table);
  RunOptions opts;
  opts.batch_size = 64;
  opts.update_rate = 0.05;
  const RunSummary s = run_trace(engine, table, trace, ids, opts);

  // update_rate converts query slots into rewrites, so searches + writes
  // partition the trace.
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(spec.queries));
  EXPECT_EQ(s.requests, s.searches + s.writes);
  EXPECT_GT(s.writes, 0u) << "update_rate=0.05 over 500 queries";
  EXPECT_EQ(s.requests, engine.requests());
  EXPECT_EQ(s.batches, engine.batches());
  EXPECT_GT(s.hits, 0u);
  EXPECT_NEAR(s.hit_rate, static_cast<double>(s.hits) / s.searches, 1e-12);
  EXPECT_GT(s.step1_miss_rate, 0.0);
  EXPECT_LE(s.step1_miss_rate, 1.0);
  EXPECT_GT(s.energy_j, 0.0);
  EXPECT_GT(s.energy_per_search_j, 0.0);
  EXPECT_GT(s.model_time_s, 0.0);
  EXPECT_GT(s.write_cycles, 0);
  EXPECT_GE(s.wall_s, 0.0);
  EXPECT_GE(s.p99_batch_us, s.p50_batch_us);
}

TEST(Workload, LoadRulesThrowsWhenTableTooSmall) {
  TraceSpec spec;
  spec.cols = 16;
  spec.rules = 40;
  spec.queries = 0;
  const Trace trace = generate_trace(spec);
  TableConfig cfg;
  cfg.mats = 1;
  cfg.rows_per_mat = 16;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 2;
  TcamTable table(cfg);
  EXPECT_THROW(load_rules(table, trace), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::engine
