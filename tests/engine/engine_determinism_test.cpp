// SearchEngine thread-count-invariance golden tests (same contract as
// eval/variability_determinism_test): batch results, table contents,
// energy/endurance totals, and search statistics must be BIT-IDENTICAL
// for 1, 2, and 8 worker threads at a fixed seed — and, since the
// per-mat-group dispatcher split, for every combination of dispatcher
// thread count (1, 2, 8), mat-group count (1, 4), and coalescing window.
// wall_us (and the windows() telemetry counter) are the only fields
// outside the contract.
//
// All comparisons are exact (EXPECT_EQ on doubles, deliberately): any
// schedule-ordered accumulation in the engine would fail here.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "compiler/applier.hpp"
#include "compiler/compile.hpp"
#include "compiler/planner.hpp"
#include "engine/engine.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/parallel.hpp"

namespace fetcam::engine {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

TableConfig test_config() {
  TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

TraceSpec test_spec() {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = 16;
  spec.rules = 96;
  spec.queries = 600;
  spec.match_rate = 0.4;
  spec.seed = 42;
  return spec;
}

struct RunOutcome {
  std::vector<BatchResult> batches;
  double table_energy_j = 0.0;
  long long write_pulses = 0;
  std::vector<std::uint64_t> mat_writes;
  double step1_miss_rate = 0.0;
  long long driver_stalls = 0;
  long long driver_cycles = 0;
  double model_time_s = 0.0;
};

/// Build a fresh table + engine, drive the same batched workload, and
/// capture everything the determinism contract covers.
RunOutcome run_workload(EngineOptions opts = {}) {
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  const auto ids = load_rules(table, trace);

  RunOutcome out;
  {
    opts.queue_capacity = 4;
    SearchEngine engine(table, opts);
    std::vector<std::future<BatchResult>> futures;
    std::vector<Request> batch;
    for (std::size_t q = 0; q < trace.queries.size(); ++q) {
      batch.push_back(make_search(trace.queries[q]));
      // Sprinkle writes/erases to exercise the driver-multiplex path and
      // the serial apply order.
      if (q % 37 == 5) {
        const std::size_t r = q % ids.size();
        batch.push_back(make_update(ids[r], trace.rules[r].entry));
      }
      if (batch.size() >= 64) {
        futures.push_back(engine.submit(std::move(batch)));
        batch.clear();
      }
    }
    if (!batch.empty()) futures.push_back(engine.submit(std::move(batch)));
    for (auto& f : futures) out.batches.push_back(f.get());
    out.driver_stalls = engine.driver_stalls();
    out.driver_cycles = engine.driver_cycles();
    out.model_time_s = engine.model_time_s();
  }
  out.table_energy_j = table.total_energy_j();
  out.write_pulses = table.write_pulses();
  for (int m = 0; m < table.mats(); ++m) {
    out.mat_writes.push_back(table.endurance(m).total_writes());
  }
  out.step1_miss_rate = table.search_stats().step1_miss_rate();
  return out;
}

void expect_identical(const RunOutcome& a, const RunOutcome& golden,
                      int threads) {
  ASSERT_EQ(a.batches.size(), golden.batches.size()) << threads << " threads";
  for (std::size_t b = 0; b < a.batches.size(); ++b) {
    const auto& ba = a.batches[b];
    const auto& bg = golden.batches[b];
    EXPECT_EQ(ba.seq, bg.seq) << threads << " threads, batch " << b;
    ASSERT_EQ(ba.results.size(), bg.results.size())
        << threads << " threads, batch " << b;
    for (std::size_t r = 0; r < ba.results.size(); ++r) {
      EXPECT_EQ(ba.results[r].hit, bg.results[r].hit)
          << threads << " threads, batch " << b << ", req " << r;
      EXPECT_EQ(ba.results[r].entry, bg.results[r].entry)
          << threads << " threads, batch " << b << ", req " << r;
      EXPECT_EQ(ba.results[r].priority, bg.results[r].priority)
          << threads << " threads, batch " << b << ", req " << r;
    }
    EXPECT_EQ(ba.stats.rows, bg.stats.rows);
    EXPECT_EQ(ba.stats.step1_misses, bg.stats.step1_misses)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.stats.step2_evaluated, bg.stats.step2_evaluated)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.stats.matches, bg.stats.matches)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.driver_stalls, bg.driver_stalls)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.write_cycles, bg.write_cycles)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.model_latency_s, bg.model_latency_s)
        << threads << " threads, batch " << b;
  }
  EXPECT_EQ(a.table_energy_j, golden.table_energy_j) << threads << " threads";
  EXPECT_EQ(a.write_pulses, golden.write_pulses) << threads << " threads";
  EXPECT_EQ(a.mat_writes, golden.mat_writes) << threads << " threads";
  EXPECT_EQ(a.step1_miss_rate, golden.step1_miss_rate)
      << threads << " threads";
  EXPECT_EQ(a.driver_stalls, golden.driver_stalls) << threads << " threads";
  EXPECT_EQ(a.driver_cycles, golden.driver_cycles) << threads << " threads";
  EXPECT_EQ(a.model_time_s, golden.model_time_s) << threads << " threads";
}

class ThreadSweep {
 public:
  ~ThreadSweep() { util::set_thread_count(0); }
  template <typename Fn>
  void check(Fn&& run_and_compare) {
    for (const int threads : kThreadCounts) {
      util::set_thread_count(threads);
      run_and_compare(threads);
    }
  }
};

TEST(EngineDeterminism, BatchResultsInvariantAcrossThreadCounts) {
  util::set_thread_count(1);
  const RunOutcome golden = run_workload();
  ASSERT_FALSE(golden.batches.empty());
  ThreadSweep sweep;
  sweep.check(
      [&](int threads) { expect_identical(run_workload(), golden, threads); });
}

TEST(EngineDeterminism, ProducerInterleavingDoesNotChangeBatchResults) {
  // Two producers racing distinct batches: each batch's RESULT depends only
  // on the submission order (seq), which submit() hands out atomically.
  // Here every batch is a pure search batch against a frozen table, so
  // results must equal the serial single-producer run regardless of which
  // producer won each seq slot.
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  load_rules(table, trace);

  // Golden: serial submission.
  std::vector<BatchResult> golden;
  {
    SearchEngine engine(table);
    for (std::size_t q = 0; q + 4 <= trace.queries.size(); q += 4) {
      std::vector<Request> batch;
      for (std::size_t k = 0; k < 4; ++k) {
        batch.push_back(make_search(trace.queries[q + k]));
      }
      golden.push_back(engine.execute(std::move(batch)));
    }
  }

  // Racy: two producers, batches land in some interleaved seq order.
  std::vector<std::future<BatchResult>> futures(golden.size());
  {
    SearchEngine engine(table);
    std::mutex mu;  // protects futures slot assignment only
    auto produce = [&](std::size_t first, std::size_t last) {
      for (std::size_t b = first; b < last; ++b) {
        std::vector<Request> batch;
        for (std::size_t k = 0; k < 4; ++k) {
          batch.push_back(make_search(trace.queries[b * 4 + k]));
        }
        auto f = engine.submit(std::move(batch));
        const std::lock_guard<std::mutex> lock(mu);
        futures[b] = std::move(f);
      }
    };
    std::thread t1(produce, 0, golden.size() / 2);
    std::thread t2(produce, golden.size() / 2, golden.size());
    t1.join();
    t2.join();
    for (std::size_t b = 0; b < golden.size(); ++b) {
      const BatchResult res = futures[b].get();
      ASSERT_EQ(res.results.size(), golden[b].results.size());
      for (std::size_t r = 0; r < res.results.size(); ++r) {
        EXPECT_EQ(res.results[r].hit, golden[b].results[r].hit)
            << "batch " << b << ", req " << r;
        EXPECT_EQ(res.results[r].entry, golden[b].results[r].entry)
            << "batch " << b << ", req " << r;
      }
    }
  }
}

TEST(EngineDeterminism, InvariantAcrossDispatchersGroupsAndCoalescing) {
  // The tentpole contract: the per-mat-group dispatcher split is a pure
  // parallelism knob.  Sweep dispatcher threads x mat groups x coalescing
  // window and require byte-identical outcomes against the fully serial
  // configuration.
  EngineOptions serial;
  serial.dispatch_threads = 1;
  serial.mat_groups = 1;
  serial.coalesce_batches = 1;
  serial.query_block = 1;  // the single-query scalar reference path
  const RunOutcome golden = run_workload(serial);
  ASSERT_FALSE(golden.batches.empty());
  for (const int threads : kThreadCounts) {
    for (const int groups : {1, 4}) {
      for (const std::size_t coalesce : {std::size_t{1}, std::size_t{4}}) {
        for (const int qblock : {1, 5, 8}) {
          EngineOptions opts;
          opts.dispatch_threads = threads;
          opts.mat_groups = groups;
          opts.coalesce_batches = coalesce;
          opts.query_block = qblock;
          SCOPED_TRACE("dispatchers=" + std::to_string(threads) +
                       " groups=" + std::to_string(groups) +
                       " coalesce=" + std::to_string(coalesce) +
                       " query_block=" + std::to_string(qblock));
          expect_identical(run_workload(opts), golden, threads);
        }
      }
    }
  }
}

TEST(EngineDeterminism, EngineOptionsValidation) {
  TcamTable table(test_config());
  auto expect_throws = [&](EngineOptions opts, const char* field) {
    try {
      SearchEngine engine(table, opts);
      FAIL() << field << " accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << "message: " << e.what();
    }
  };
  EngineOptions opts;
  opts.queue_capacity = 0;
  expect_throws(opts, "queue_capacity");
  opts = {};
  opts.mat_groups = 0;
  expect_throws(opts, "mat_groups");
  opts = {};
  opts.mat_groups = -3;
  expect_throws(opts, "mat_groups");
  opts = {};
  opts.dispatch_threads = -1;
  expect_throws(opts, "dispatch_threads");
  opts = {};
  opts.coalesce_batches = 0;
  expect_throws(opts, "coalesce_batches");
  opts = {};
  opts.query_block = 0;
  expect_throws(opts, "query_block");
  opts = {};
  opts.query_block = kMaxQueryBlock + 1;
  expect_throws(opts, "query_block");
  // The documented escape hatches stay valid: 0 dispatch threads (pool
  // auto-resolve) and a mat_groups above mats (clamped down).
  opts = {};
  opts.dispatch_threads = 0;
  opts.mat_groups = 64;
  SearchEngine ok(table, opts);
  EXPECT_EQ(ok.mat_groups(), test_config().mats);
  EXPECT_EQ(ok.query_block(), 8);
}

TEST(EngineDeterminism, DispatchThreadsZeroFollowsParallelPool) {
  // dispatch_threads = 0 resolves through util::thread_count(), so the
  // existing --threads / FETCAM_THREADS sweeps exercise the dispatcher
  // split too.  Results must still match the serial golden.
  EngineOptions serial;
  serial.dispatch_threads = 1;
  serial.mat_groups = 1;
  serial.coalesce_batches = 1;
  const RunOutcome golden = run_workload(serial);
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    EngineOptions opts;
    opts.mat_groups = 4;  // dispatch_threads stays 0 (pool-resolved)
    expect_identical(run_workload(opts), golden, threads);
  });
}

TEST(EngineDeterminism, MatGroupsClampAndReporting) {
  TcamTable table(test_config());
  EngineOptions opts;
  opts.mat_groups = 64;  // more groups than mats: clamps to mats
  opts.dispatch_threads = 2;
  SearchEngine engine(table, opts);
  EXPECT_EQ(engine.mat_groups(), test_config().mats);
  EXPECT_EQ(engine.dispatch_threads(), 2);
  const auto res = engine.execute({make_search(arch::BitWord(16, 0))});
  EXPECT_EQ(res.results.size(), 1u);
  EXPECT_GE(engine.windows(), 1u);
}

TEST(EngineDeterminism, StressConcurrentCompilerUpdatesOldNewOrShadow) {
  // TSan-filtered stress: searcher threads hammer a multi-dispatcher
  // engine (8 dispatchers x 4 mat groups, small queue to force coalescing
  // and backpressure) while the main thread applies a compiler update
  // plan.  Every observed result must be the OLD winner, the NEW winner,
  // or a newly inserted entry still at its shadow priority — the same
  // acceptance as the make-before-break applier tests, now crossing the
  // fan-out/merge machinery.
  namespace cc = fetcam::compiler;
  TraceSpec spec = test_spec();
  spec.rules = 48;
  spec.queries = 256;
  const Trace trace = generate_trace(spec);
  ChurnSpec churn;
  churn.seed = 29;
  churn.hot_fraction = 0.25;
  churn.hot_modify_rate = 0.9;
  churn.modify_rate = 0.3;
  churn.add_remove_rate = 0.15;
  churn.priority_jitter_rate = 0.1;
  const auto rules_b =
      churn_rules(trace.rules, spec.kind, spec.cols, churn, 1);
  const auto setA =
      cc::compile_rules(cc::rule_set_from_rules(spec.cols, trace.rules));
  const auto setB =
      cc::compile_rules(cc::rule_set_from_rules(spec.cols, rules_b));

  TcamTable table(test_config());
  EngineOptions opts;
  opts.queue_capacity = 2;
  opts.dispatch_threads = 8;
  opts.mat_groups = 4;
  opts.coalesce_batches = 3;
  SearchEngine eng(table, opts);
  const cc::UpdatePlan planA = cc::plan_update({}, setA, table);
  const cc::Installation installedA =
      cc::apply_plan(eng, planA, setA).installed;
  eng.drain();
  const cc::UpdatePlan planB = cc::plan_update(installedA, setB, table);

  struct Observed {
    std::size_t query = 0;
    RequestResult result;
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Observed>> seen(2);
  auto searcher = [&](int who) {
    std::size_t at = static_cast<std::size_t>(who);
    // Floor of rounds: under scheduler starvation the apply can finish
    // before a searcher runs once; the settled-state rounds still satisfy
    // the acceptance (they see the new winner).
    int rounds = 0;
    while (rounds++ < 4 || !stop.load(std::memory_order_relaxed)) {
      std::vector<Request> batch;
      std::vector<std::size_t> keys;
      for (int k = 0; k < 8; ++k) {
        keys.push_back(at % trace.queries.size());
        batch.push_back(make_search(trace.queries[keys.back()]));
        at += 2;
      }
      const auto res = eng.execute(std::move(batch));
      for (std::size_t r = 0; r < res.results.size(); ++r) {
        seen[static_cast<std::size_t>(who)].push_back(
            {keys[r], res.results[r]});
      }
    }
  };
  std::thread s0(searcher, 0);
  std::thread s1(searcher, 1);

  cc::ApplyOptions aopts;
  aopts.chunk = 2;  // many small batches: maximum interleaving
  const cc::Installation installedB =
      cc::apply_plan(eng, planB, setB, aopts).installed;
  eng.drain();
  stop.store(true, std::memory_order_relaxed);
  s0.join();
  s1.join();

  // Quiescent winner for `key` under a (compiled, installed) pair.
  auto expected = [](const cc::CompiledRuleSet& compiled,
                     const cc::Installation& installed,
                     const arch::BitWord& key) {
    RequestResult e;
    const int w = cc::reference_winner(compiled, key);
    if (w < 0) return e;
    e.hit = true;
    e.entry = installed.entries[static_cast<std::size_t>(w)].id;
    e.priority = installed.entries[static_cast<std::size_t>(w)].priority;
    return e;
  };

  // Inserted entries (id, word, shadow priority) for the mid-make case.
  struct Shadow {
    EntryId id;
    const arch::TernaryWord* word;
    int shadow_priority;
  };
  std::vector<Shadow> shadows;
  for (const cc::PlanOp& op : planB.ops) {
    if (op.kind != cc::PlanOpKind::kInsert) continue;
    const auto& e =
        installedB.entries[static_cast<std::size_t>(op.compiled_index)];
    shadows.push_back(
        {e.id,
         &setB.entries[static_cast<std::size_t>(op.compiled_index)].word,
         e.priority + planB.shadow_priority_offset});
  }
  auto matches_key = [](const arch::TernaryWord& word,
                        const arch::BitWord& key) {
    for (std::size_t c = 0; c < word.size(); ++c) {
      if (word[c] == arch::Ternary::kX) continue;
      const bool one = word[c] == arch::Ternary::kOne;
      if (one != (key[c] != 0)) return false;
    }
    return true;
  };

  std::size_t checked = 0;
  for (const auto& lane : seen) {
    for (const auto& obs : lane) {
      const arch::BitWord& key = trace.queries[obs.query];
      const RequestResult old_w = expected(setA, installedA, key);
      const RequestResult new_w = expected(setB, installedB, key);
      const auto& got = obs.result;
      const bool is_old = got.hit == old_w.hit && got.entry == old_w.entry &&
                          (!old_w.hit || got.priority == old_w.priority);
      const bool is_new = got.hit == new_w.hit && got.entry == new_w.entry &&
                          (!new_w.hit || got.priority == new_w.priority);
      bool is_shadow = false;
      if (!is_old && !is_new && got.hit && !old_w.hit) {
        for (const Shadow& s : shadows) {
          if (got.entry == s.id && got.priority == s.shadow_priority &&
              matches_key(*s.word, key)) {
            is_shadow = true;
            break;
          }
        }
      }
      EXPECT_TRUE(is_old || is_new || is_shadow)
          << "query " << obs.query << ": hit=" << got.hit << " entry="
          << got.entry << " priority=" << got.priority;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(EngineDeterminism, SubmitAfterShutdownFailsCleanly) {
  TcamTable table(test_config());
  auto engine = std::make_unique<SearchEngine>(table);
  engine->drain();
  // Destroy and rebuild: futures from a dead engine must not hang.
  engine.reset();
  SearchEngine fresh(table);
  const auto res =
      fresh.execute({make_search(arch::BitWord(16, 0))});
  EXPECT_EQ(res.results.size(), 1u);
}

TEST(EngineDeterminism, TelemetryCountsRequests) {
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  const auto ids = load_rules(table, trace);
  SearchEngine engine(table);
  std::vector<Request> batch;
  batch.push_back(make_search(trace.queries[0]));
  batch.push_back(make_search(trace.queries[1]));
  batch.push_back(make_update(ids[0], trace.rules[0].entry));
  const auto res = engine.execute(std::move(batch));
  EXPECT_EQ(engine.batches(), 1u);
  EXPECT_EQ(engine.requests(), 3u);
  EXPECT_EQ(engine.searches(), 2u);
  EXPECT_EQ(engine.writes(), 1u);
  EXPECT_GT(engine.model_time_s(), 0.0);
  EXPECT_GT(res.write_cycles, 0) << "the update costs write cycles";
  EXPECT_GT(res.model_latency_s, 0.0);
  for (int m = 0; m < table.mats(); ++m) {
    EXPECT_GE(engine.mat_utilization(m), 0.0);
    EXPECT_LE(engine.mat_utilization(m), 1.0);
  }
}

}  // namespace
}  // namespace fetcam::engine
