// SearchEngine thread-count-invariance golden tests (same contract as
// eval/variability_determinism_test): batch results, table contents,
// energy/endurance totals, and search statistics must be BIT-IDENTICAL
// for 1, 2, and 8 worker threads at a fixed seed.  wall_us is the one
// field outside the contract.
//
// All comparisons are exact (EXPECT_EQ on doubles, deliberately): any
// schedule-ordered accumulation in the engine would fail here.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/parallel.hpp"

namespace fetcam::engine {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

TableConfig test_config() {
  TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

TraceSpec test_spec() {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = 16;
  spec.rules = 96;
  spec.queries = 600;
  spec.match_rate = 0.4;
  spec.seed = 42;
  return spec;
}

struct RunOutcome {
  std::vector<BatchResult> batches;
  double table_energy_j = 0.0;
  long long write_pulses = 0;
  std::vector<std::uint64_t> mat_writes;
  double step1_miss_rate = 0.0;
  long long driver_stalls = 0;
  long long driver_cycles = 0;
  double model_time_s = 0.0;
};

/// Build a fresh table + engine, drive the same batched workload, and
/// capture everything the determinism contract covers.
RunOutcome run_workload() {
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  const auto ids = load_rules(table, trace);

  RunOutcome out;
  {
    EngineOptions opts;
    opts.queue_capacity = 4;
    SearchEngine engine(table, opts);
    std::vector<std::future<BatchResult>> futures;
    std::vector<Request> batch;
    for (std::size_t q = 0; q < trace.queries.size(); ++q) {
      batch.push_back(make_search(trace.queries[q]));
      // Sprinkle writes/erases to exercise the driver-multiplex path and
      // the serial apply order.
      if (q % 37 == 5) {
        const std::size_t r = q % ids.size();
        batch.push_back(make_update(ids[r], trace.rules[r].entry));
      }
      if (batch.size() >= 64) {
        futures.push_back(engine.submit(std::move(batch)));
        batch.clear();
      }
    }
    if (!batch.empty()) futures.push_back(engine.submit(std::move(batch)));
    for (auto& f : futures) out.batches.push_back(f.get());
    out.driver_stalls = engine.driver_stalls();
    out.driver_cycles = engine.driver_cycles();
    out.model_time_s = engine.model_time_s();
  }
  out.table_energy_j = table.total_energy_j();
  out.write_pulses = table.write_pulses();
  for (int m = 0; m < table.mats(); ++m) {
    out.mat_writes.push_back(table.endurance(m).total_writes());
  }
  out.step1_miss_rate = table.search_stats().step1_miss_rate();
  return out;
}

void expect_identical(const RunOutcome& a, const RunOutcome& golden,
                      int threads) {
  ASSERT_EQ(a.batches.size(), golden.batches.size()) << threads << " threads";
  for (std::size_t b = 0; b < a.batches.size(); ++b) {
    const auto& ba = a.batches[b];
    const auto& bg = golden.batches[b];
    EXPECT_EQ(ba.seq, bg.seq) << threads << " threads, batch " << b;
    ASSERT_EQ(ba.results.size(), bg.results.size())
        << threads << " threads, batch " << b;
    for (std::size_t r = 0; r < ba.results.size(); ++r) {
      EXPECT_EQ(ba.results[r].hit, bg.results[r].hit)
          << threads << " threads, batch " << b << ", req " << r;
      EXPECT_EQ(ba.results[r].entry, bg.results[r].entry)
          << threads << " threads, batch " << b << ", req " << r;
      EXPECT_EQ(ba.results[r].priority, bg.results[r].priority)
          << threads << " threads, batch " << b << ", req " << r;
    }
    EXPECT_EQ(ba.stats.rows, bg.stats.rows);
    EXPECT_EQ(ba.stats.step1_misses, bg.stats.step1_misses)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.stats.step2_evaluated, bg.stats.step2_evaluated)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.stats.matches, bg.stats.matches)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.driver_stalls, bg.driver_stalls)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.write_cycles, bg.write_cycles)
        << threads << " threads, batch " << b;
    EXPECT_EQ(ba.model_latency_s, bg.model_latency_s)
        << threads << " threads, batch " << b;
  }
  EXPECT_EQ(a.table_energy_j, golden.table_energy_j) << threads << " threads";
  EXPECT_EQ(a.write_pulses, golden.write_pulses) << threads << " threads";
  EXPECT_EQ(a.mat_writes, golden.mat_writes) << threads << " threads";
  EXPECT_EQ(a.step1_miss_rate, golden.step1_miss_rate)
      << threads << " threads";
  EXPECT_EQ(a.driver_stalls, golden.driver_stalls) << threads << " threads";
  EXPECT_EQ(a.driver_cycles, golden.driver_cycles) << threads << " threads";
  EXPECT_EQ(a.model_time_s, golden.model_time_s) << threads << " threads";
}

class ThreadSweep {
 public:
  ~ThreadSweep() { util::set_thread_count(0); }
  template <typename Fn>
  void check(Fn&& run_and_compare) {
    for (const int threads : kThreadCounts) {
      util::set_thread_count(threads);
      run_and_compare(threads);
    }
  }
};

TEST(EngineDeterminism, BatchResultsInvariantAcrossThreadCounts) {
  util::set_thread_count(1);
  const RunOutcome golden = run_workload();
  ASSERT_FALSE(golden.batches.empty());
  ThreadSweep sweep;
  sweep.check(
      [&](int threads) { expect_identical(run_workload(), golden, threads); });
}

TEST(EngineDeterminism, ProducerInterleavingDoesNotChangeBatchResults) {
  // Two producers racing distinct batches: each batch's RESULT depends only
  // on the submission order (seq), which submit() hands out atomically.
  // Here every batch is a pure search batch against a frozen table, so
  // results must equal the serial single-producer run regardless of which
  // producer won each seq slot.
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  load_rules(table, trace);

  // Golden: serial submission.
  std::vector<BatchResult> golden;
  {
    SearchEngine engine(table);
    for (std::size_t q = 0; q + 4 <= trace.queries.size(); q += 4) {
      std::vector<Request> batch;
      for (std::size_t k = 0; k < 4; ++k) {
        batch.push_back(make_search(trace.queries[q + k]));
      }
      golden.push_back(engine.execute(std::move(batch)));
    }
  }

  // Racy: two producers, batches land in some interleaved seq order.
  std::vector<std::future<BatchResult>> futures(golden.size());
  {
    SearchEngine engine(table);
    std::mutex mu;  // protects futures slot assignment only
    auto produce = [&](std::size_t first, std::size_t last) {
      for (std::size_t b = first; b < last; ++b) {
        std::vector<Request> batch;
        for (std::size_t k = 0; k < 4; ++k) {
          batch.push_back(make_search(trace.queries[b * 4 + k]));
        }
        auto f = engine.submit(std::move(batch));
        const std::lock_guard<std::mutex> lock(mu);
        futures[b] = std::move(f);
      }
    };
    std::thread t1(produce, 0, golden.size() / 2);
    std::thread t2(produce, golden.size() / 2, golden.size());
    t1.join();
    t2.join();
    for (std::size_t b = 0; b < golden.size(); ++b) {
      const BatchResult res = futures[b].get();
      ASSERT_EQ(res.results.size(), golden[b].results.size());
      for (std::size_t r = 0; r < res.results.size(); ++r) {
        EXPECT_EQ(res.results[r].hit, golden[b].results[r].hit)
            << "batch " << b << ", req " << r;
        EXPECT_EQ(res.results[r].entry, golden[b].results[r].entry)
            << "batch " << b << ", req " << r;
      }
    }
  }
}

TEST(EngineDeterminism, SubmitAfterShutdownFailsCleanly) {
  TcamTable table(test_config());
  auto engine = std::make_unique<SearchEngine>(table);
  engine->drain();
  // Destroy and rebuild: futures from a dead engine must not hang.
  engine.reset();
  SearchEngine fresh(table);
  const auto res =
      fresh.execute({make_search(arch::BitWord(16, 0))});
  EXPECT_EQ(res.results.size(), 1u);
}

TEST(EngineDeterminism, TelemetryCountsRequests) {
  const Trace trace = generate_trace(test_spec());
  TcamTable table(test_config());
  const auto ids = load_rules(table, trace);
  SearchEngine engine(table);
  std::vector<Request> batch;
  batch.push_back(make_search(trace.queries[0]));
  batch.push_back(make_search(trace.queries[1]));
  batch.push_back(make_update(ids[0], trace.rules[0].entry));
  const auto res = engine.execute(std::move(batch));
  EXPECT_EQ(engine.batches(), 1u);
  EXPECT_EQ(engine.requests(), 3u);
  EXPECT_EQ(engine.searches(), 2u);
  EXPECT_EQ(engine.writes(), 1u);
  EXPECT_GT(engine.model_time_s(), 0.0);
  EXPECT_GT(res.write_cycles, 0) << "the update costs write cycles";
  EXPECT_GT(res.model_latency_s, 0.0);
  for (int m = 0; m < table.mats(); ++m) {
    EXPECT_GE(engine.mat_utilization(m), 0.0);
    EXPECT_LE(engine.mat_utilization(m), 1.0);
  }
}

}  // namespace
}  // namespace fetcam::engine
