// SearchServer / SearchClient loopback tests: framing round-trips,
// pipelined batches, fault containment (oversized / truncated / garbage
// frames hurt only the offending connection), and clean drain on stop().
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/client.hpp"
#include "engine/engine.hpp"
#include "engine/server.hpp"
#include "engine/table.hpp"
#include "engine/wire.hpp"
#include "engine/workload.hpp"
#include "obs/obs.hpp"

namespace fetcam::engine {
namespace {

constexpr int kCols = 16;

TableConfig test_config() {
  TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = kCols;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

TraceSpec test_spec() {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = kCols;
  spec.rules = 64;
  spec.queries = 200;
  spec.match_rate = 0.5;
  spec.seed = 7;
  return spec;
}

/// Table + engine + started server, torn down in reverse order.
struct Service {
  Trace trace;
  TcamTable table;
  SearchEngine engine;
  SearchServer server;

  explicit Service(ServerOptions sopts = {}, EngineOptions eopts = {})
      : trace(generate_trace(test_spec())),
        table(test_config()),
        engine((load_rules(table, trace), table), eopts),
        server(engine, kCols, sopts) {
    server.start();
  }
  ~Service() { server.stop(); }
};

/// What the engine itself reports for `queries` (the wire must be a
/// transparent window onto exactly this).
std::vector<RequestResult> direct_results(
    SearchEngine& engine, const std::vector<arch::BitWord>& queries) {
  std::vector<Request> batch;
  for (const auto& q : queries) batch.push_back(make_search(q));
  return engine.execute(std::move(batch)).results;
}

void expect_records_match(const std::vector<wire::ResultRecord>& records,
                          const std::vector<RequestResult>& want) {
  ASSERT_EQ(records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(records[i].hit != 0, want[i].hit) << "record " << i;
    EXPECT_EQ(records[i].entry, want[i].entry) << "record " << i;
    EXPECT_EQ(records[i].priority, want[i].priority) << "record " << i;
  }
}

TEST(SearchServer, RoundTripMatchesDirectEngineResults) {
  Service svc;
  std::vector<arch::BitWord> queries(svc.trace.queries.begin(),
                                     svc.trace.queries.begin() + 32);
  const auto want = direct_results(svc.engine, queries);

  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const auto records = client.search(queries, kCols);
  expect_records_match(records, want);
  EXPECT_EQ(svc.server.frames_served(), 1u);
  EXPECT_EQ(svc.server.frames_rejected(), 0u);
}

TEST(SearchServer, EmptyBatchRoundTrips) {
  Service svc;
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const auto records = client.search({}, kCols);
  EXPECT_TRUE(records.empty());
}

TEST(SearchServer, PipelinedBatchesAnswerInOrder) {
  Service svc;
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  constexpr std::size_t kFrames = 12;
  std::vector<std::vector<arch::BitWord>> frames;
  for (std::size_t f = 0; f < kFrames; ++f) {
    std::vector<arch::BitWord> queries;
    for (std::size_t k = 0; k < 8; ++k) {
      queries.push_back(
          svc.trace.queries[(f * 8 + k) % svc.trace.queries.size()]);
    }
    frames.push_back(std::move(queries));
  }
  // Send everything before reading anything: replies must come back in
  // request order, one frame each.
  for (const auto& frame : frames) client.send_batch(frame, kCols);
  for (const auto& frame : frames) {
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.ok);
    expect_records_match(reply.records, direct_results(svc.engine, frame));
  }
}

TEST(SearchServer, PipelineDeeperThanBackpressureWindowStillDrains) {
  ServerOptions sopts;
  sopts.max_pipeline = 2;  // force the EPOLLIN-off backpressure path
  Service svc(sopts);
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const std::vector<arch::BitWord> frame(
      8, arch::BitWord(static_cast<std::size_t>(kCols), 1));
  constexpr std::size_t kFrames = 16;
  for (std::size_t f = 0; f < kFrames; ++f) client.send_batch(frame, kCols);
  for (std::size_t f = 0; f < kFrames; ++f) {
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.ok) << "frame " << f;
    EXPECT_EQ(reply.records.size(), frame.size());
  }
}

TEST(SearchServer, GarbageHeaderGetsErrorFrameAndClose) {
  Service svc;
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  const char junk[16] = "not a frame!!!!";
  bad.send_raw(junk, sizeof(junk));
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kBadMagic);
  // The server closes the bad connection after the error frame.
  EXPECT_THROW(bad.recv_reply(), std::runtime_error);
}

TEST(SearchServer, OversizedFrameIsRejectedBeforeBuffering) {
  Service svc;
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  std::vector<std::uint8_t> header;
  wire::encode_header(header, wire::FrameType::kSearchBatch,
                      wire::kMaxPayload + 1);
  bad.send_raw(header.data(), header.size());
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kOversized);
}

TEST(SearchServer, TruncatedPayloadIsRejectedAsMalformed) {
  Service svc;
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  // Header promises a 12-byte payload; the payload's own counts then
  // claim more query words than those 12 bytes hold.
  std::vector<std::uint8_t> out;
  wire::encode_header(out, wire::FrameType::kSearchBatch, 12);
  wire::put_u32(out, 5);  // count
  wire::put_u32(out, 1);  // words_per_query -> needs 40 payload bytes
  wire::put_u32(out, 0);  // 4 stray bytes instead
  bad.send_raw(out.data(), out.size());
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kMalformed);
}

TEST(SearchServer, WrongWidthIsRejected) {
  Service svc;
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  const std::vector<arch::BitWord> queries(2, arch::BitWord(80, 0));
  bad.send_batch(queries, 80);  // table is 16 cols -> 1 word, this sends 2
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kBadWidth);
}

TEST(WireProtocol, OverflowingCountTimesWidthIsRejected) {
  // count * words_per_query = 2^61 words, whose byte size is 0 mod 2^64:
  // a naive `len == 8 + words * 8` check passes and the decoder attempts
  // a 2^61-word resize.  The decoder must reject instead.
  std::vector<std::uint8_t> payload;
  wire::put_u32(payload, 0x80000000u);  // count
  wire::put_u32(payload, 0x40000000u);  // words_per_query
  EXPECT_FALSE(
      wire::decode_search_batch(payload.data(), payload.size()).has_value());
}

TEST(SearchServer, OverflowingBatchCountsGetErrorFrameNotCrash) {
  // The same crafted 20-byte frame over the wire: it must earn a
  // kMalformed error frame on that connection only — not an uncaught
  // std::length_error that terminates the whole server.
  Service svc;
  SearchClient good;
  good.connect("127.0.0.1", svc.server.port());
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  std::vector<std::uint8_t> out;
  wire::encode_header(out, wire::FrameType::kSearchBatch, 8);
  wire::put_u32(out, 0x80000000u);  // count
  wire::put_u32(out, 0x40000000u);  // words_per_query
  bad.send_raw(out.data(), out.size());
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kMalformed);
  // The server survived and still serves other connections.
  const auto records = good.search(
      {arch::BitWord(static_cast<std::size_t>(kCols), 0)}, kCols);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_GE(svc.server.frames_rejected(), 1u);
}

TEST(SearchServer, BadConnectionDoesNotDisturbOthers) {
  Service svc;
  SearchClient good;
  good.connect("127.0.0.1", svc.server.port());
  std::vector<arch::BitWord> queries(svc.trace.queries.begin(),
                                     svc.trace.queries.begin() + 8);
  const auto want = direct_results(svc.engine, queries);
  // Interleave: good frame, then garbage on a second connection, then
  // another good frame.  The good connection must never notice.
  expect_records_match(good.search(queries, kCols), want);
  {
    SearchClient bad;
    bad.connect("127.0.0.1", svc.server.port());
    const char junk[32] = "garbage garbage garbage!!!!!!!";
    bad.send_raw(junk, sizeof(junk));
    const auto reply = bad.recv_reply();
    ASSERT_FALSE(reply.ok);
  }
  expect_records_match(good.search(queries, kCols), want);
  EXPECT_GE(svc.server.frames_rejected(), 1u);
}

TEST(SearchServer, ManyConcurrentClientsGetTheirOwnAnswers) {
  Service svc;
  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SearchClient client;
      client.connect("127.0.0.1", svc.server.port());
      for (int round = 0; round < kRounds; ++round) {
        std::vector<arch::BitWord> queries;
        for (int k = 0; k < 8; ++k) {
          queries.push_back(svc.trace.queries[static_cast<std::size_t>(
              (c * 131 + round * 17 + k) %
              static_cast<int>(svc.trace.queries.size()))]);
        }
        const auto records = client.search(queries, kCols);
        if (records.size() != queries.size()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.server.frames_served(),
            static_cast<std::uint64_t>(kClients * kRounds));
}

TEST(SearchServer, StopDrainsInFlightFramesBeforeClosing) {
  Service svc;
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const std::vector<arch::BitWord> frame(
      16, arch::BitWord(static_cast<std::size_t>(kCols), 0));
  constexpr std::size_t kFrames = 8;
  for (std::size_t f = 0; f < kFrames; ++f) client.send_batch(frame, kCols);
  // Stop with frames in flight: every already-submitted frame must still
  // be answered and flushed before the connection closes.
  svc.server.stop();
  std::size_t answered = 0;
  try {
    for (std::size_t f = 0; f < kFrames; ++f) {
      const auto reply = client.recv_reply();
      if (reply.ok) ++answered;
      EXPECT_EQ(reply.records.size(), frame.size());
    }
  } catch (const std::runtime_error&) {
    // Frames the server never read before stop() are legitimately
    // unanswered; everything it DID read must have been answered above.
  }
  EXPECT_EQ(svc.server.frames_served(), answered);
  EXPECT_FALSE(svc.server.running());
}

TEST(SearchServer, StopForceClosesPeersThatNeverRead) {
  ServerOptions sopts;
  sopts.drain_timeout_ms = 200;
  sopts.sndbuf_bytes = 8192;  // no autotuning: transit buffers stay tiny
  Service svc(sopts);
  // A raw client with a tiny receive buffer that never reads: once the
  // kernel's transit buffers fill, the connection's tx buffer stays
  // pinned, and without a drain bound stop() would block forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(svc.server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // 12 frames x 2000 queries -> ~312 KiB of result frames, far past what
  // a 4 KiB receive window lets through.
  wire::SearchBatchFrame frame;
  frame.words_per_query = 1;  // kCols = 16 -> one word per query
  frame.bits.assign(2000, 0);
  std::vector<std::uint8_t> bytes;
  for (int f = 0; f < 12; ++f) wire::encode_search_batch(bytes, frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  // Wait until every frame has been answered (responses encoded into the
  // tx buffer), so stop() finds undeliverable bytes rather than an idle
  // connection.
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.server.frames_served() < 12 &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(svc.server.frames_served(), 12u);
  const auto t0 = std::chrono::steady_clock::now();
  svc.server.stop();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(svc.server.running());
  // ~300 KiB of responses cannot fit in ~24 KiB of transit buffers, so
  // stop() must have gone through the 200 ms force-close deadline — not
  // a clean flush (which would return almost instantly) and not a hang
  // (generous CI slack on the upper bound).
  EXPECT_GE(elapsed_ms, 100);
  EXPECT_LT(elapsed_ms, 5000);
  ::close(fd);
}

TEST(SearchServer, StatsScrapeRoundTripsOverLiveConnection) {
  // kStats over the live loopback: the reply must be the stats snapshot
  // JSON carrying engine totals, queue gauges, stage percentiles, and the
  // per-server / per-connection counter sections.
  const obs::Level prior = obs::level();
  obs::set_level(obs::Level::kMetrics);
  {
    Service svc;
    SearchClient client;
    client.connect("127.0.0.1", svc.server.port());
    std::vector<arch::BitWord> queries(svc.trace.queries.begin(),
                                       svc.trace.queries.begin() + 16);
    client.search(queries, kCols);
    client.search(queries, kCols);

    const std::string json = client.stats();
    EXPECT_NE(json.find("\"schema\": \"fetcam.stats.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"requests\": 32"), std::string::npos);
    EXPECT_NE(json.find("\"stages\""), std::string::npos);
    // Server section: both search frames already served when the scrape
    // was rendered (the stats reply rides the same FIFO).
    EXPECT_NE(json.find("\"frames_served\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"connections_accepted\": 1"), std::string::npos);
    // Connection section: this client's own counters.
    EXPECT_NE(json.find("\"connection\": {"), std::string::npos);
#ifndef FETCAM_OBS_DISABLED
    // At metrics level the stage recorders must have observed the frames.
    EXPECT_NE(json.find("engine.stage.queue_wait"), std::string::npos);
    EXPECT_EQ(json.find("\"engine.batch.total\": {\"count\": 0"),
              std::string::npos)
        << "batch recorder never fired:\n"
        << json;
#endif
    EXPECT_EQ(svc.server.stats_served(), 1u);
    EXPECT_EQ(svc.server.frames_served(), 2u);
  }
  obs::set_level(prior);
}

TEST(SearchServer, StatsReplyPreservesPipelineOrder) {
  // search, search, stats, search pipelined without reading: replies must
  // come back exactly in that order (the stats frame does not jump the
  // connection's FIFO).
  Service svc;
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const std::vector<arch::BitWord> frame(
      4, arch::BitWord(static_cast<std::size_t>(kCols), 0));
  client.send_batch(frame, kCols);
  client.send_batch(frame, kCols);
  client.send_stats_request();
  client.send_batch(frame, kCols);

  for (int k = 0; k < 2; ++k) {
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.ok);
    EXPECT_FALSE(reply.is_stats) << "reply " << k;
    EXPECT_EQ(reply.records.size(), frame.size());
  }
  const auto stats = client.recv_reply();
  ASSERT_TRUE(stats.ok);
  EXPECT_TRUE(stats.is_stats);
  EXPECT_NE(stats.stats_json.find("fetcam.stats.v1"), std::string::npos);
  const auto last = client.recv_reply();
  ASSERT_TRUE(last.ok);
  EXPECT_FALSE(last.is_stats);
  EXPECT_EQ(last.records.size(), frame.size());
}

TEST(SearchServer, MalformedStatsFrameIsContainedToThatConnection) {
  // A kStats frame must have an empty payload; one that smuggles bytes is
  // malformed — error frame + close for that connection, nothing else.
  Service svc;
  SearchClient good;
  good.connect("127.0.0.1", svc.server.port());
  SearchClient bad;
  bad.connect("127.0.0.1", svc.server.port());
  std::vector<std::uint8_t> out;
  wire::encode_header(out, wire::FrameType::kStats, 4);
  wire::put_u32(out, 0xdeadbeefu);
  bad.send_raw(out.data(), out.size());
  const auto reply = bad.recv_reply();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, wire::ErrorCode::kMalformed);
  EXPECT_THROW(bad.recv_reply(), std::runtime_error);
  // The good connection still searches AND still scrapes.
  const auto records = good.search(
      {arch::BitWord(static_cast<std::size_t>(kCols), 0)}, kCols);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_NE(good.stats().find("fetcam.stats.v1"), std::string::npos);
  EXPECT_GE(svc.server.frames_rejected(), 1u);
}

TEST(SearchServer, StopThenRestartServesAgain) {
  Service svc;
  const std::uint16_t port1 = svc.server.port();
  svc.server.stop();
  EXPECT_FALSE(svc.server.running());
  svc.server.start();
  EXPECT_TRUE(svc.server.running());
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const auto records = client.search(
      {arch::BitWord(static_cast<std::size_t>(kCols), 0)}, kCols);
  EXPECT_EQ(records.size(), 1u);
  (void)port1;
}

}  // namespace
}  // namespace fetcam::engine
