// Approximate-match / kNN subsystem tests: TcamTable::search_nearest
// against the brute-force digit-distance reference (mat-skip pruning on
// AND off, digit widths 1-3), exact-path degeneration at d = 1 /
// threshold = 0 / k = 1, engine-level determinism of kSearchNearest
// across every dispatch shape, option-validation naming, the workload
// recall golden, and the kNearest wire round-trip plus the uniform
// unknown-opcode containment the protocol promises.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/client.hpp"
#include "engine/engine.hpp"
#include "engine/server.hpp"
#include "engine/table.hpp"
#include "engine/wire.hpp"
#include "engine/workload.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

TableConfig nearest_config(int digit_bits, bool mat_skip) {
  TableConfig cfg;
  cfg.mats = 4;
  cfg.rows_per_mat = 64;
  cfg.cols = 24;  // divisible by 1, 2, 3
  cfg.subarrays_per_mat = 2;
  cfg.digit_bits = digit_bits;
  cfg.mat_skip = mat_skip;
  return cfg;
}

TraceSpec nearest_spec(int digit_bits, std::uint64_t seed) {
  TraceSpec spec;
  spec.kind = TraceKind::kEmbedding;
  spec.cols = 24;
  spec.rules = 180;
  spec.queries = 300;
  spec.match_rate = 0.5;
  spec.digit_bits = digit_bits;
  spec.seed = seed;
  return spec;
}

TEST(ApproxNearest, TableMatchesBruteForceAcrossDigitWidths) {
  for (const int d : {1, 2, 3}) {
    for (const bool skip : {false, true}) {
      const Trace trace = generate_trace(nearest_spec(d, 11 + d));
      TcamTable table(nearest_config(d, skip));
      const auto ids = load_rules(table, trace);
      const int digits = trace.cols / d;
      for (const int threshold : {0, 1, 2, digits}) {
        for (const int k : {1, 3, 8}) {
          for (std::size_t q = 0; q < trace.queries.size(); q += 7) {
            const NearestMatch got =
                table.search_nearest(trace.queries[q], k, threshold);
            const auto want = brute_force_nearest(
                trace, ids, trace.queries[q], d, k, threshold);
            ASSERT_EQ(got.top.size(), want.size())
                << "d=" << d << " skip=" << skip << " t=" << threshold
                << " k=" << k << " q=" << q;
            for (std::size_t i = 0; i < want.size(); ++i) {
              ASSERT_EQ(got.top[i].entry, want[i].entry)
                  << "d=" << d << " skip=" << skip << " t=" << threshold
                  << " k=" << k << " q=" << q << " i=" << i;
              ASSERT_EQ(got.top[i].priority, want[i].priority);
              ASSERT_EQ(got.top[i].distance, want[i].distance);
            }
          }
        }
      }
    }
  }
}

TEST(ApproxNearest, MatSkipNeverChangesResultsOrKernelStats) {
  // The widened mat-skip bound must be conservative: a skipped mat can
  // hold no within-threshold row, and the skip must charge the SAME
  // single-step stats the kernel would have reported, so the energy
  // account is placement-independent.
  for (const int d : {1, 2}) {
    const Trace trace = generate_trace(nearest_spec(d, 29));
    TcamTable on(nearest_config(d, true));
    TcamTable off(nearest_config(d, false));
    const auto ids_on = load_rules(on, trace);
    const auto ids_off = load_rules(off, trace);
    ASSERT_EQ(ids_on, ids_off);
    for (std::size_t q = 0; q < trace.queries.size(); q += 5) {
      for (const int threshold : {0, 1}) {
        const NearestMatch a =
            on.search_nearest(trace.queries[q], 4, threshold);
        const NearestMatch b =
            off.search_nearest(trace.queries[q], 4, threshold);
        ASSERT_EQ(a.top.size(), b.top.size()) << "q=" << q;
        for (std::size_t i = 0; i < a.top.size(); ++i) {
          ASSERT_EQ(a.top[i].entry, b.top[i].entry);
          ASSERT_EQ(a.top[i].distance, b.top[i].distance);
        }
        ASSERT_EQ(a.stats.rows, b.stats.rows);
        ASSERT_EQ(a.stats.step2_evaluated, b.stats.step2_evaluated);
        ASSERT_EQ(a.stats.matches, b.stats.matches);
      }
    }
  }
}

TEST(ApproxNearest, DegeneratesToExactSearchAtUnitDigitZeroThreshold) {
  const Trace trace = generate_trace(nearest_spec(1, 37));
  TcamTable table(nearest_config(1, true));
  load_rules(table, trace);
  for (std::size_t q = 0; q < trace.queries.size(); ++q) {
    const TableMatch exact = table.search(trace.queries[q]);
    const NearestMatch near = table.search_nearest(trace.queries[q], 1, 0);
    if (exact.hit) {
      ASSERT_EQ(near.top.size(), 1u) << "q=" << q;
      // Exact resolves (priority, id); nearest resolves (distance,
      // priority, id) — identical at distance 0.
      EXPECT_EQ(near.top[0].entry, exact.entry) << "q=" << q;
      EXPECT_EQ(near.top[0].priority, exact.priority);
      EXPECT_EQ(near.top[0].distance, 0);
    } else {
      EXPECT_TRUE(near.top.empty()) << "q=" << q;
    }
  }
}

TEST(ApproxNearest, EngineResultsInvariantAcrossDispatchShapes) {
  const int d = 2;
  const Trace trace = generate_trace(nearest_spec(d, 53));
  // Reference: serial table walk.
  TcamTable ref_table(nearest_config(d, true));
  const auto ids = load_rules(ref_table, trace);

  struct Shape {
    int mat_groups;
    int dispatch_threads;
    int query_block;
    std::size_t coalesce;
  };
  const Shape shapes[] = {
      {1, 1, 1, 1}, {1, 2, 8, 4}, {2, 2, 4, 2}, {4, 3, 8, 4}, {3, 1, 2, 1},
  };
  for (const Shape& shape : shapes) {
    TcamTable table(nearest_config(d, true));
    load_rules(table, trace);
    EngineOptions opts;
    opts.mat_groups = shape.mat_groups;
    opts.dispatch_threads = shape.dispatch_threads;
    opts.query_block = shape.query_block;
    opts.coalesce_batches = shape.coalesce;
    SearchEngine eng(table, opts);
    // Mixed batches: exact searches interleaved with nearest requests so
    // the window carries both task kinds at once.
    std::vector<Request> batch;
    for (std::size_t q = 0; q < trace.queries.size(); ++q) {
      if (q % 3 == 0) {
        batch.push_back(make_search(trace.queries[q]));
      } else {
        batch.push_back(make_search_nearest(
            trace.queries[q], 1 + static_cast<int>(q % 4),
            static_cast<int>(q % 3)));
      }
    }
    const BatchResult res = eng.execute(std::move(batch));
    ASSERT_EQ(res.results.size(), trace.queries.size());
    for (std::size_t q = 0; q < trace.queries.size(); ++q) {
      const RequestResult& r = res.results[q];
      if (q % 3 == 0) {
        const TableMatch want = ref_table.search(trace.queries[q]);
        ASSERT_EQ(r.hit, want.hit) << "exact q=" << q;
        if (want.hit) {
          ASSERT_EQ(r.entry, want.entry);
        }
        continue;
      }
      const auto want = brute_force_nearest(
          trace, ids, trace.queries[q], d, 1 + static_cast<int>(q % 4),
          static_cast<int>(q % 3));
      ASSERT_EQ(r.neighbors.size(), want.size())
          << "groups=" << shape.mat_groups
          << " threads=" << shape.dispatch_threads
          << " block=" << shape.query_block << " q=" << q;
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(r.neighbors[i].entry, want[i].entry)
            << "groups=" << shape.mat_groups << " q=" << q << " i=" << i;
        ASSERT_EQ(r.neighbors[i].distance, want[i].distance);
      }
      ASSERT_EQ(r.hit, !want.empty());
      if (!want.empty()) {
        ASSERT_EQ(r.entry, want[0].entry);
        ASSERT_EQ(r.distance, want[0].distance);
      }
    }
  }
}

TEST(ApproxNearest, RequestDefaultsResolveFromEngineOptions) {
  const Trace trace = generate_trace(nearest_spec(1, 61));
  TcamTable table(nearest_config(1, true));
  const auto ids = load_rules(table, trace);
  EngineOptions opts;
  opts.k = 3;
  opts.distance_threshold = 2;
  SearchEngine eng(table, opts);
  // Request::k = 0 / threshold = -1 mean "use the engine defaults".
  const BatchResult res =
      eng.execute({make_search_nearest(trace.queries[0])});
  const auto want =
      brute_force_nearest(trace, ids, trace.queries[0], 1, 3, 2);
  ASSERT_EQ(res.results.size(), 1u);
  ASSERT_EQ(res.results[0].neighbors.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(res.results[0].neighbors[i].entry, want[i].entry);
  }
}

TEST(ApproxNearest, OptionValidationNamesTheParameter) {
  const Trace trace = generate_trace(nearest_spec(1, 67));
  TcamTable table(nearest_config(1, true));
  load_rules(table, trace);
  {
    EngineOptions opts;
    opts.k = 0;
    try {
      SearchEngine eng(table, opts);
      FAIL() << "EngineOptions.k = 0 must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("EngineOptions.k"),
                std::string::npos)
          << e.what();
    }
  }
  {
    EngineOptions opts;
    opts.distance_threshold = -1;
    try {
      SearchEngine eng(table, opts);
      FAIL() << "EngineOptions.distance_threshold = -1 must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(
          std::string(e.what()).find("EngineOptions.distance_threshold"),
          std::string::npos)
          << e.what();
    }
  }
  EXPECT_THROW(table.search_nearest(trace.queries[0], 0, 0),
               std::invalid_argument);
  EXPECT_THROW(table.search_nearest(trace.queries[0], 1, -1),
               std::invalid_argument);
  // TableConfig::digit_bits validation names the field and the reason.
  {
    TableConfig cfg = nearest_config(1, true);
    cfg.digit_bits = 4;
    try {
      TcamTable bad(cfg);
      FAIL() << "digit_bits = 4 must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("TableConfig::digit_bits"),
                std::string::npos)
          << e.what();
    }
  }
  {
    TableConfig cfg = nearest_config(1, true);
    cfg.cols = 26;  // even (two-step OK) but not divisible by 3
    cfg.digit_bits = 3;
    try {
      TcamTable bad(cfg);
      FAIL() << "digit_bits that does not divide cols must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("must divide cols"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ApproxNearest, WorkloadRecallGoldenIsPerfect) {
  // The engine's threshold search is an EXACT kNN under the digit metric,
  // so recall against the brute-force reference must be identically 1.0
  // when the threshold covers the planted flip range (0-2 digits).
  const int d = 2;
  const Trace trace = generate_trace(nearest_spec(d, 71));
  TcamTable table(nearest_config(d, true));
  const auto ids = load_rules(table, trace);
  SearchEngine eng(table);
  NearestRunOptions nopts;
  nopts.batch_size = 64;
  nopts.k = 4;
  nopts.threshold = 2;
  nopts.recall_sample = 1000;  // >= queries: score every query
  const NearestRunSummary s =
      run_nearest_trace(eng, table, trace, ids, nopts);
  EXPECT_EQ(s.searches, trace.queries.size());
  EXPECT_GT(s.recall_queries, 0u);
  EXPECT_DOUBLE_EQ(s.recall_at_k, 1.0);
  // Half the queries are planted near-duplicates within 2 flips, so the
  // hit rate can't be degenerate.
  EXPECT_GT(s.hit_rate, 0.3);
  // Winner-distance histogram: threshold + 1 buckets, total = hits.
  ASSERT_EQ(s.distance_histogram.size(),
            static_cast<std::size_t>(nopts.threshold) + 1);
  std::uint64_t total = 0;
  for (const std::uint64_t n : s.distance_histogram) total += n;
  EXPECT_EQ(total, s.hits);
  // Single-step accounting burns energy on every row of every mat:
  // threshold search must cost strictly more than nothing.
  EXPECT_GT(s.energy_per_search_j, 0.0);
}

// ---- wire layer ----------------------------------------------------------

TableConfig wire_config() {
  TableConfig cfg;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 4;
  cfg.digit_bits = 2;
  return cfg;
}

TraceSpec wire_spec() {
  TraceSpec spec;
  spec.kind = TraceKind::kEmbedding;
  spec.cols = 16;
  spec.rules = 48;
  spec.queries = 64;
  spec.match_rate = 0.5;
  spec.digit_bits = 2;
  spec.seed = 83;
  return spec;
}

struct NearestService {
  Trace trace;
  TcamTable table;
  SearchEngine engine;
  SearchServer server;

  NearestService()
      : trace(generate_trace(wire_spec())),
        table(wire_config()),
        engine((load_rules(table, trace), table)),
        server(engine, wire_spec().cols, {}) {
    server.start();
  }
  ~NearestService() { server.stop(); }
};

TEST(ApproxNearest, WireRoundTripMatchesDirectEngine) {
  NearestService svc;
  SearchClient client;
  client.connect("127.0.0.1", svc.server.port());
  const int k = 3;
  const int threshold = 2;
  const auto lists = client.search_nearest(svc.trace.queries,
                                           svc.trace.cols, k, threshold);
  ASSERT_EQ(lists.size(), svc.trace.queries.size());
  for (std::size_t q = 0; q < svc.trace.queries.size(); ++q) {
    const NearestMatch want =
        svc.table.search_nearest(svc.trace.queries[q], k, threshold);
    ASSERT_EQ(lists[q].size(), want.top.size()) << "q=" << q;
    for (std::size_t i = 0; i < want.top.size(); ++i) {
      EXPECT_EQ(lists[q][i].entry,
                static_cast<std::int64_t>(want.top[i].entry));
      EXPECT_EQ(lists[q][i].priority, want.top[i].priority);
      EXPECT_EQ(lists[q][i].distance,
                static_cast<std::uint32_t>(want.top[i].distance));
    }
  }
}

TEST(ApproxNearest, UnknownAndResponseOpcodesRejectedUniformly) {
  NearestService svc;
  // Every non-request frame type must die at the same validation point
  // with kBadType — including RESPONSE opcodes a confused client echoes
  // back, and type values no decoder knows.
  const std::uint8_t bad_types[] = {
      0,                                                      // unknown
      static_cast<std::uint8_t>(wire::FrameType::kSearchResult),
      static_cast<std::uint8_t>(wire::FrameType::kError),
      static_cast<std::uint8_t>(wire::FrameType::kStatsResult),
      static_cast<std::uint8_t>(wire::FrameType::kNearestResult),
      42, 255,
  };
  for (const std::uint8_t type : bad_types) {
    SearchClient bad;
    bad.connect("127.0.0.1", svc.server.port());
    std::uint8_t frame[wire::kHeaderSize] = {};
    const std::uint32_t magic = wire::kMagic;
    std::memcpy(frame, &magic, 4);
    frame[4] = wire::kVersion;
    frame[5] = type;
    // payload_len = 0 (bytes 8..11 already zero).
    bad.send_raw(frame, sizeof(frame));
    const SearchClient::Reply reply = bad.recv_reply();
    ASSERT_FALSE(reply.ok) << "type " << static_cast<int>(type);
    EXPECT_EQ(reply.error.code, wire::ErrorCode::kBadType)
        << "type " << static_cast<int>(type);
    // The connection is closed after the reject; a healthy client on a
    // fresh connection is unaffected.
    SearchClient good;
    good.connect("127.0.0.1", svc.server.port());
    const auto lists =
        good.search_nearest({svc.trace.queries[0]}, svc.trace.cols, 1, 0);
    ASSERT_EQ(lists.size(), 1u);
  }
}

TEST(ApproxNearest, NearestBatchDecodeRejectsMalformedPayloads) {
  wire::NearestBatchFrame frame;
  frame.words_per_query = 1;
  frame.k = 4;
  frame.threshold = 1;
  frame.bits = {0x1234, 0x5678};
  std::vector<std::uint8_t> out;
  wire::encode_nearest_batch(out, frame);
  const std::uint8_t* payload = out.data() + wire::kHeaderSize;
  const std::size_t len = out.size() - wire::kHeaderSize;
  ASSERT_TRUE(wire::decode_nearest_batch(payload, len).has_value());

  // Truncated below the fixed fields.
  EXPECT_FALSE(wire::decode_nearest_batch(payload, 15).has_value());
  // Truncated inside the query words.
  EXPECT_FALSE(wire::decode_nearest_batch(payload, len - 1).has_value());

  auto mutate = [&](std::size_t off, std::uint32_t v) {
    std::vector<std::uint8_t> copy(payload, payload + len);
    std::memcpy(copy.data() + off, &v, 4);
    return wire::decode_nearest_batch(copy.data(), copy.size());
  };
  // count * wpq overflow-hardened: a huge count cannot wrap the byte
  // bound.
  EXPECT_FALSE(mutate(0, 0xFFFFFFFFu).has_value());
  // count > 0 with wpq == 0 is meaningless.
  EXPECT_FALSE(mutate(4, 0).has_value());
  // k = 0 and k past the cap both die at decode.
  EXPECT_FALSE(mutate(8, 0).has_value());
  EXPECT_FALSE(
      mutate(8, static_cast<std::uint32_t>(wire::kMaxNearestK) + 1)
          .has_value());
  // A (count, k) combination whose reply could not fit kMaxPayload is
  // rejected at REQUEST decode, before any work is done.
  wire::NearestBatchFrame wide;
  wide.words_per_query = 1;
  wide.k = wire::kMaxNearestK;
  wide.threshold = 0;
  wide.bits.assign(70000, 0);  // 70000 queries x 16KiB replies >> 1MiB
  std::vector<std::uint8_t> wide_out;
  wire::encode_nearest_batch(wide_out, wide);
  EXPECT_FALSE(wire::decode_nearest_batch(
                   wide_out.data() + wire::kHeaderSize,
                   wide_out.size() - wire::kHeaderSize)
                   .has_value());
}

}  // namespace
}  // namespace fetcam::engine
