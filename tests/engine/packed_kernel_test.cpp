// PackedShard golden equivalence: the bit-packed kernel must reproduce the
// behavioral TcamArray::search and arch::two_step_search bit-exactly —
// match flags AND SearchStats — across word lengths spanning sub-word,
// word-aligned, and multi-word rows, with invalid rows and all-X entries
// mixed in.  Randomized property-style, counter-keyed RNG (the cases are
// reproducible from the seed printed on failure).
#include <gtest/gtest.h>

#include <random>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"
#include "engine/packed_kernel.hpp"
#include "util/rng.hpp"

namespace fetcam::engine {
namespace {

arch::TernaryWord random_word(std::mt19937& rng, int cols,
                              double x_fraction) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  arch::TernaryWord w;
  w.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    if (u(rng) < x_fraction) {
      w.push_back(arch::Ternary::kX);
    } else {
      w.push_back(bit(rng) != 0 ? arch::Ternary::kOne : arch::Ternary::kZero);
    }
  }
  return w;
}

arch::BitWord random_query(std::mt19937& rng, int cols) {
  std::uniform_int_distribution<int> bit(0, 1);
  arch::BitWord q(static_cast<std::size_t>(cols));
  for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
  return q;
}

/// Build paired behavioral/packed arrays with a mix of entry styles:
/// normal ternary rows, all-X rows, rows left erased, rows written then
/// invalidated.
void build_pair(std::mt19937& rng, int rows, int cols, arch::TcamArray& a,
                PackedShard& p) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int r = 0; r < rows; ++r) {
    const double style = u(rng);
    if (style < 0.15) continue;  // never written (invalid, all-X content)
    const double xf = style < 0.3 ? 1.0 : 0.3;  // some rows all-X
    const auto w = random_word(rng, cols, xf);
    a.write(r, w);
    p.write(r, w);
    if (style >= 0.85) {  // written then invalidated
      a.erase(r);
      p.erase(r);
    }
  }
}

TEST(PackedKernel, FullMatchEquivalenceAcrossWordLengths) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    auto rng = util::trial_rng(11, trial, 0);
    // Word lengths 1..192: sub-word, exactly 64/128, straddling tails.
    const int cols = 1 + static_cast<int>(trial * 7 % 192);
    const int rows =
        std::uniform_int_distribution<int>(0, 100)(rng);
    arch::TcamArray a(rows, cols);
    PackedShard p(rows, cols);
    build_pair(rng, rows, cols, a, p);
    for (int q = 0; q < 8; ++q) {
      const auto query = random_query(rng, cols);
      EXPECT_EQ(p.search(query), a.search(query))
          << "trial " << trial << " cols " << cols << " rows " << rows;
    }
  }
}

TEST(PackedKernel, TwoStepEquivalenceMatchesAndStats) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    auto rng = util::trial_rng(13, trial, 0);
    const int cols = 2 * (1 + static_cast<int>(trial * 5 % 96));  // 2..192
    const int rows = std::uniform_int_distribution<int>(0, 100)(rng);
    arch::TcamArray a(rows, cols);
    PackedShard p(rows, cols);
    build_pair(rng, rows, cols, a, p);
    for (int q = 0; q < 8; ++q) {
      const auto query = random_query(rng, cols);
      const auto golden = arch::two_step_search(a, query);
      const auto packed = p.two_step_search(query);
      EXPECT_EQ(packed.matches, golden.matches)
          << "trial " << trial << " cols " << cols;
      EXPECT_EQ(packed.stats.rows, golden.stats.rows);
      EXPECT_EQ(packed.stats.step1_misses, golden.stats.step1_misses)
          << "trial " << trial << " cols " << cols;
      EXPECT_EQ(packed.stats.step2_evaluated, golden.stats.step2_evaluated)
          << "trial " << trial << " cols " << cols;
      EXPECT_EQ(packed.stats.matches, golden.stats.matches)
          << "trial " << trial << " cols " << cols;
    }
  }
}

TEST(PackedKernel, EntryRoundTripsAndErasePreservesContent) {
  auto rng = util::trial_rng(17, 0, 0);
  const int cols = 70;  // straddles a word boundary
  PackedShard p(4, cols);
  const auto w = random_word(rng, cols, 0.3);
  p.write(1, w);
  EXPECT_TRUE(p.valid(1));
  EXPECT_EQ(p.entry(1), w);
  p.erase(1);
  EXPECT_FALSE(p.valid(1));
  EXPECT_EQ(p.entry(1), w);  // content retained, like TcamArray
  EXPECT_FALSE(p.valid(0));
  EXPECT_EQ(p.entry(0), arch::TernaryWord(70, arch::Ternary::kX));
}

TEST(PackedKernel, AllXEntryMatchesEverything) {
  PackedShard p(2, 66);
  p.write(0, arch::TernaryWord(66, arch::Ternary::kX));
  const arch::BitWord q(66, 1);
  const auto res = p.two_step_search(q);
  EXPECT_TRUE(res.matches[0]);
  EXPECT_FALSE(res.matches[1]);  // invalid row never matches
  EXPECT_EQ(res.stats.step1_misses, 1);  // the invalid row
  EXPECT_EQ(res.stats.step2_evaluated, 1);
  EXPECT_EQ(res.stats.matches, 1);
}

TEST(PackedKernel, ZeroRowShardReportsEmptyStats) {
  PackedShard p(0, 8);
  std::vector<std::uint64_t> mask;
  const auto stats = p.two_step_match(PackedQuery::pack(arch::BitWord(8, 0)),
                                      mask);
  EXPECT_EQ(stats.rows, 0);
  EXPECT_EQ(stats.step1_miss_rate(), 0.0);
  EXPECT_TRUE(mask.empty());
}

TEST(PackedKernel, RejectsBadShapes) {
  EXPECT_THROW(PackedShard(-1, 4), std::invalid_argument);
  EXPECT_THROW(PackedShard(4, 0), std::invalid_argument);
  PackedShard p(4, 6);
  EXPECT_THROW(p.write(4, arch::TernaryWord(6, arch::Ternary::kX)),
               std::out_of_range);
  EXPECT_THROW(p.write(0, arch::TernaryWord(5, arch::Ternary::kX)),
               std::invalid_argument);
  EXPECT_THROW(p.search(arch::BitWord(5, 0)), std::invalid_argument);
  PackedShard odd(4, 7);
  try {
    odd.two_step_search(arch::BitWord(7, 0));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must name the shape, like arch::two_step_search.
    EXPECT_NE(std::string(e.what()).find("4 rows"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("7 cols"), std::string::npos);
  }
}

}  // namespace
}  // namespace fetcam::engine
