// Service-telemetry tests for the engine request path: queue/in-flight
// gauges drain back to zero, the slow-query log ranks worst-first, the
// stats snapshot JSON carries every documented section, and — the
// determinism contract — results are bit-identical with telemetry off,
// at metrics level, and in a FETCAM_OBS=OFF build.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/stats.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fetcam::engine {
namespace {

constexpr int kCols = 16;

TableConfig test_config() {
  TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = kCols;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

Trace test_trace() {
  TraceSpec spec;
  spec.kind = TraceKind::kIpPrefix;
  spec.cols = kCols;
  spec.rules = 64;
  spec.queries = 160;
  spec.match_rate = 0.5;
  spec.seed = 21;
  return generate_trace(spec);
}

/// Scoped obs level override that restores the prior level (and clears
/// per-run registry state) on exit, so tests compose in one process.
struct ScopedObsLevel {
  obs::Level prior;
  explicit ScopedObsLevel(obs::Level l) : prior(obs::level()) {
    obs::set_level(l);
  }
  ~ScopedObsLevel() { obs::set_level(prior); }
};

std::vector<Request> search_batch(const Trace& trace, std::size_t offset,
                                  std::size_t n) {
  std::vector<Request> batch;
  for (std::size_t k = 0; k < n; ++k) {
    batch.push_back(
        make_search(trace.queries[(offset + k) % trace.queries.size()]));
  }
  return batch;
}

TEST(EngineStats, GaugesReturnToZeroAfterDrain) {
  ScopedObsLevel metrics(obs::Level::kMetrics);
  const Trace trace = test_trace();
  TcamTable table(test_config());
  load_rules(table, trace);
  SearchEngine eng(table);

  std::vector<std::future<BatchResult>> futures;
  for (int b = 0; b < 12; ++b) {
    futures.push_back(
        eng.submit(search_batch(trace, static_cast<std::size_t>(b) * 8, 8)));
  }
  for (auto& f : futures) f.get();

  // Every future has resolved: nothing may still be queued or in flight,
  // and the high watermark proves the queue actually filled at some point.
  EXPECT_EQ(eng.queue_depth(), 0u);
  EXPECT_EQ(eng.in_flight(), 0u);
  EXPECT_GE(eng.queue_high_watermark(), 1u);
  EXPECT_LE(eng.queue_high_watermark(), eng.queue_capacity());
  EXPECT_EQ(eng.batches(), 12u);
}

TEST(EngineStats, SlowQueryLogRanksWorstFirstAndKeepsTopK) {
#ifdef FETCAM_OBS_DISABLED
  GTEST_SKIP() << "slow-query log is compiled out under FETCAM_OBS=OFF";
#endif
  ScopedObsLevel metrics(obs::Level::kMetrics);
  const Trace trace = test_trace();
  TcamTable table(test_config());
  load_rules(table, trace);
  SearchEngine eng(table);

  for (int b = 0; b < 20; ++b) {
    eng.execute(search_batch(trace, static_cast<std::size_t>(b) * 4, 4));
  }
  const std::vector<SlowQuery> slow = eng.slow_queries();
  ASSERT_FALSE(slow.empty());
  EXPECT_LE(slow.size(), 8u);  // top-K bound
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GE(slow[i - 1].total_ns, slow[i].total_ns)
        << "entry " << i << " out of order";
  }
  for (const SlowQuery& q : slow) {
    EXPECT_GT(q.total_ns, 0u);
    EXPECT_EQ(q.requests, 4u);
    EXPECT_EQ(q.searches, 4u);
    EXPECT_NE(q.fingerprint, 0u);
  }
}

TEST(EngineStats, SnapshotJsonCarriesEverySection) {
  ScopedObsLevel metrics(obs::Level::kMetrics);
  const Trace trace = test_trace();
  TcamTable table(test_config());
  load_rules(table, trace);
  SearchEngine eng(table);
  eng.execute(search_batch(trace, 0, 16));

  const std::string json = stats_snapshot_json(eng);
  EXPECT_NE(json.find("\"schema\": \"fetcam.stats.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel_tier\""), std::string::npos);
  EXPECT_NE(json.find("\"batches\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"requests\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"queue_capacity\""), std::string::npos);
  EXPECT_NE(json.find("\"in_flight\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\""), std::string::npos);
  // No server attached: those sections are explicit nulls, not absent.
  EXPECT_NE(json.find("\"server\": null"), std::string::npos);
  EXPECT_NE(json.find("\"connection\": null"), std::string::npos);
#ifndef FETCAM_OBS_DISABLED
  // At metrics level the per-stage recorders must have fired.
  EXPECT_NE(json.find("engine.stage.queue_wait"), std::string::npos);
  EXPECT_NE(json.find("engine.batch.total"), std::string::npos);
#endif
}

/// Results must be bit-identical whatever the telemetry level: run the
/// same trace slice with obs off and at metrics level and compare every
/// result field (in a FETCAM_OBS=OFF build both arms compile to the same
/// thing, which is exactly the claim).
TEST(EngineStats, ResultsBitIdenticalWithTelemetryOnAndOff) {
  const Trace trace = test_trace();
  auto run_at = [&](obs::Level level) {
    ScopedObsLevel scoped(level);
    obs::MetricsRegistry::instance().reset();
    TcamTable table(test_config());
    load_rules(table, trace);
    SearchEngine eng(table);
    std::vector<BatchResult> out;
    for (int b = 0; b < 10; ++b) {
      out.push_back(
          eng.execute(search_batch(trace, static_cast<std::size_t>(b) * 7,
                                   7)));
    }
    return out;
  };
  const std::vector<BatchResult> off = run_at(obs::Level::kOff);
  const std::vector<BatchResult> on = run_at(obs::Level::kMetrics);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t b = 0; b < off.size(); ++b) {
    ASSERT_EQ(off[b].results.size(), on[b].results.size()) << "batch " << b;
    EXPECT_EQ(off[b].seq, on[b].seq);
    EXPECT_EQ(off[b].model_latency_s, on[b].model_latency_s)
        << "batch " << b;
    EXPECT_EQ(off[b].driver_stalls, on[b].driver_stalls);
    EXPECT_EQ(off[b].write_cycles, on[b].write_cycles);
    for (std::size_t i = 0; i < off[b].results.size(); ++i) {
      EXPECT_EQ(off[b].results[i].hit, on[b].results[i].hit)
          << "batch " << b << " result " << i;
      EXPECT_EQ(off[b].results[i].entry, on[b].results[i].entry);
      EXPECT_EQ(off[b].results[i].priority, on[b].results[i].priority);
    }
  }
}

TEST(EngineStats, SubmitTraceIdFlowsIntoSlowQueryLog) {
#ifdef FETCAM_OBS_DISABLED
  GTEST_SKIP() << "slow-query log is compiled out under FETCAM_OBS=OFF";
#endif
  ScopedObsLevel metrics(obs::Level::kMetrics);
  const Trace trace = test_trace();
  TcamTable table(test_config());
  load_rules(table, trace);
  SearchEngine eng(table);
  eng.submit(search_batch(trace, 0, 8), /*trace_id=*/777).get();
  const std::vector<SlowQuery> slow = eng.slow_queries();
  ASSERT_FALSE(slow.empty());
  EXPECT_EQ(slow.front().trace_id, 777u);
}

}  // namespace
}  // namespace fetcam::engine
