// Behavioural tests for the chunked parallel_for pool (util/parallel.hpp):
// chunking edge cases, exception propagation, nested-call safety, and
// schedule-independent chunk boundaries.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fetcam::util {
namespace {

/// Scoped thread-count override so one test can't leak its pool size
/// into the next.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { set_thread_count(n); }
  ~ThreadGuard() { set_thread_count(0); }
};

TEST(ParallelFor, ZeroItemsIsANoop) {
  ThreadGuard guard(4);
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  parallel_for_chunks(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItem) {
  ThreadGuard guard(4);
  std::atomic<int> calls{0};
  std::size_t seen = 99;
  parallel_for(1, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadGuard guard(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EveryIndexExactlyOnce) {
  ThreadGuard guard(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForChunks, BoundariesDependOnlyOnNAndChunk) {
  // The chunk decomposition must be a pure function of (n, chunk) — this
  // is what lets consumers reduce per-chunk partials deterministically.
  const auto boundaries = [](int threads) {
    ThreadGuard guard(threads);
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::mutex mu;
    parallel_for_chunks(103, 10, [&](std::size_t b, std::size_t e) {
      const std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(b, e);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto serial = boundaries(1);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<std::size_t, std::size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<std::size_t, std::size_t>{100, 103}));
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionAbortsUnclaimedWork) {
  // After the throw, chunks nobody claimed yet must be skipped — the
  // total number of executed bodies stays well below n.
  ThreadGuard guard(2);
  std::atomic<int> executed{0};
  try {
    parallel_for_chunks(10000, 1, [&](std::size_t b, std::size_t) {
      ++executed;
      if (b == 0) throw std::runtime_error("first chunk fails");
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first chunk fails");
  }
  EXPECT_LT(executed.load(), 10000);
}

TEST(ParallelFor, ExceptionInSerialModeAlsoPropagates) {
  ThreadGuard guard(1);
  EXPECT_THROW(parallel_for(
                   5, [](std::size_t i) { if (i == 2) throw 42; }),
               int);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_region_flag{false};
  parallel_for(8, [&](std::size_t) {
    if (inside_parallel_region()) saw_region_flag = true;
    // A nested region must not deadlock and must still visit every index.
    parallel_for(16, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_FALSE(inside_parallel_region());
}

TEST(ParallelFor, PoolSurvivesManyRegionsAndResizes) {
  for (const int threads : {1, 3, 2, 5, 2}) {
    ThreadGuard guard(threads);
    std::atomic<long> sum{0};
    parallel_for(200, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 199L * 200 / 2) << threads << " threads";
  }
}

TEST(ParallelMap, ResultsLandInOrder) {
  ThreadGuard guard(4);
  const auto out =
      parallel_map<int>(257, [](std::size_t i) { return static_cast<int>(i * 3); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * 3));
  }
}

TEST(ThreadCount, OverrideAndRestore) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1);
}

}  // namespace
}  // namespace fetcam::util
