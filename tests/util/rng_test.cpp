// Known-answer and stream-independence tests for the counter-based
// per-trial RNG (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fetcam::util {
namespace {

// splitmix64 known-answer vectors.  Seeds 42 and 0x0123456789ABCDEF
// reproduce the published outputs of Vigna's public-domain splitmix64.c
// reference implementation; seed 0 pins the zero corner.
TEST(SplitMix64, KnownAnswerSeed0) {
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
  EXPECT_EQ(sm.next(), 0xF88BB8A8724C81ECULL);
}

TEST(SplitMix64, KnownAnswerSeed42) {
  SplitMix64 sm(42);
  EXPECT_EQ(sm.next(), 13679457532755275413ULL);
  EXPECT_EQ(sm.next(), 2949826092126892291ULL);
  EXPECT_EQ(sm.next(), 5139283748462763858ULL);
  EXPECT_EQ(sm.next(), 6349198060258255764ULL);
}

TEST(SplitMix64, KnownAnswerReferenceSeed) {
  SplitMix64 sm(0x0123456789ABCDEFULL);
  EXPECT_EQ(sm.next(), 0x157A3807A48FAA9DULL);
  EXPECT_EQ(sm.next(), 0xD573529B34A1D093ULL);
  EXPECT_EQ(sm.next(), 0x2F90B72E996DCCBEULL);
  EXPECT_EQ(sm.next(), 0xA2D419334C4667ECULL);
}

TEST(SplitMix64, ConstexprUsable) {
  // The mixer is constexpr so keys can be baked at compile time.
  constexpr std::uint64_t k = trial_key(1, 2, 3);
  static_assert(k != 0, "trial_key must mix to a nonzero value here");
  EXPECT_EQ(k, trial_key(1, 2, 3));
}

TEST(TrialKey, DistinctAcrossTrialsSeedsAndStreams) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t seed : {0ULL, 1ULL, 2ULL, 12345ULL}) {
    for (std::uint64_t trial = 0; trial < 64; ++trial) {
      for (std::uint64_t stream : {0ULL, 1ULL}) {
        keys.insert(trial_key(seed, trial, stream));
      }
    }
  }
  EXPECT_EQ(keys.size(), 4u * 64u * 2u) << "trial_key collision";
}

TEST(TrialRng, SameKeySameStream) {
  auto a = trial_rng(7, 13);
  auto b = trial_rng(7, 13);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(a(), b()) << "draw " << i;
  }
}

TEST(TrialRng, NeighbouringTrialsDecorrelated) {
  // Adjacent trial indices must give unrelated streams: the first draws
  // of trials 0..99 should be (essentially) all distinct.
  std::set<std::uint32_t> firsts;
  for (std::uint64_t t = 0; t < 100; ++t) {
    firsts.insert(trial_rng(1, t)());
  }
  EXPECT_GE(firsts.size(), 99u);
}

TEST(TrialRng, StreamsAreIndependentChannels) {
  // Stream 1 of a trial differs from stream 0, and consuming extra draws
  // from one stream cannot affect the other (they are separate engines).
  auto s0 = trial_rng(5, 3, 0);
  auto s1 = trial_rng(5, 3, 1);
  std::vector<std::uint32_t> first(8);
  for (auto& v : first) v = s1();
  EXPECT_NE(trial_rng(5, 3, 0)(), first[0]);
  for (int i = 0; i < 1000; ++i) s0();  // burn stream 0
  auto s1_again = trial_rng(5, 3, 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(s1_again(), first[i]);
  }
}

TEST(TrialRng, SeedSeparation) {
  EXPECT_NE(trial_rng(1, 0)(), trial_rng(2, 0)());
  EXPECT_NE(trial_rng(0, 0)(), trial_rng(0, 1)());
}

}  // namespace
}  // namespace fetcam::util
