#include "spice/waveform.hpp"

#include <gtest/gtest.h>

namespace fetcam::spice {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(1.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(w.value(1e-9), 1.5);
  EXPECT_DOUBLE_EQ(w.value(1.0), 1.5);
  EXPECT_TRUE(w.breakpoints(1.0).empty());
}

TEST(Waveform, PulseShape) {
  // 0 -> 1 V pulse: delay 1ns, rise 0.1ns, width 2ns, fall 0.1ns.
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.0);
  EXPECT_NEAR(w.value(1.05e-9), 0.5, 1e-12);  // mid-rise
  EXPECT_DOUBLE_EQ(w.value(2.0e-9), 1.0);     // plateau
  EXPECT_NEAR(w.value(3.15e-9), 0.5, 1e-12);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.0);
}

TEST(Waveform, PulseBreakpointsOnEdges) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9);
  const auto bps = w.breakpoints(10e-9);
  ASSERT_EQ(bps.size(), 4u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0e-9);
  EXPECT_DOUBLE_EQ(bps[1], 1.1e-9);
  EXPECT_DOUBLE_EQ(bps[2], 3.1e-9);
  EXPECT_DOUBLE_EQ(bps[3], 3.2e-9);
}

TEST(Waveform, PeriodicPulseRepeats) {
  const Waveform w =
      Waveform::pulse(0.0, 1.0, 0.0, 0.1e-9, 0.1e-9, 0.4e-9, 2e-9);
  EXPECT_DOUBLE_EQ(w.value(0.3e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(2.3e-9), 1.0);  // second period
  EXPECT_DOUBLE_EQ(w.value(4.3e-9), 1.0);  // third period
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({{1.0, 0.0}, {2.0, 2.0}, {4.0, -2.0}});
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);   // clamp before
  EXPECT_DOUBLE_EQ(w.value(1.5), 1.0);   // interpolation
  EXPECT_DOUBLE_EQ(w.value(3.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(10.0), -2.0); // clamp after
}

TEST(Waveform, MinMaxValues) {
  const Waveform w = Waveform::pwl({{0.0, -2.0}, {1.0, 3.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(w.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(w.min_value(), -2.0);
}

TEST(Waveform, BreakpointsClippedToStop) {
  const Waveform w = Waveform::pwl({{1.0, 0.0}, {2.0, 1.0}, {5.0, 0.0}});
  const auto bps = w.breakpoints(3.0);
  ASSERT_EQ(bps.size(), 2u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0);
  EXPECT_DOUBLE_EQ(bps[1], 2.0);
}

}  // namespace
}  // namespace fetcam::spice
