// Physics-conservation properties of the simulator: energy bookkeeping must
// close across sources, dissipation, and storage — the strongest global
// check a transient engine can pass.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.hpp"
#include "spice/measure.hpp"

namespace fetcam::spice {
namespace {

// Energy dissipated in a resistor over the trace: integral of (v_ab)^2 / R.
double resistor_energy(const Trace& trace, const std::string& a,
                       const std::string& b, double r, double t0, double t1) {
  const auto va = trace.voltage(a);
  const auto vb = b == "0" ? std::vector<double>(trace.size(), 0.0)
                           : trace.voltage(b);
  std::vector<double> p(trace.size());
  for (std::size_t k = 0; k < p.size(); ++k) {
    const double v = va[k] - vb[k];
    p[k] = v * v / r;
  }
  return integrate(trace.times(), p, t0, t1);
}

TEST(Physics, RcChargeEnergyBalances) {
  // Step-charge a cap through a resistor: E_source = E_R + E_C with
  // E_R = E_C = C V^2 / 2 in the ideal limit.
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId out = ckt.node("out");
  const double r = 1e3, c = 1e-12, v = 1.0;
  ckt.emplace<VoltageSource>(
      "V1", vin, kGround, Waveform::pulse(0.0, v, 0.0, 1e-12, 1e-12, 1.0));
  ckt.emplace<Resistor>("R1", vin, out, r);
  ckt.emplace<Capacitor>("C1", out, kGround, c);
  TransientOptions opts;
  opts.t_stop = 12e-9;  // 12 tau: fully settled
  opts.dt = 10e-12;
  opts.trapezoidal = true;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);

  const double e_src = source_energy(res.trace, "V1", 0.0, opts.t_stop);
  const double e_r = resistor_energy(res.trace, "vin", "out", r, 0.0,
                                     opts.t_stop);
  const double v_end = res.trace.voltage_at_time("out", opts.t_stop);
  const double e_c = 0.5 * c * v_end * v_end;
  EXPECT_NEAR(e_src, e_r + e_c, 0.03 * e_src);
  EXPECT_NEAR(e_r, 0.5 * c * v * v, 0.05 * e_r);
}

TEST(Physics, ResistorDividerPowerBalance) {
  // Pure DC: source power equals total resistive dissipation at every
  // sample.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId m = ckt.node("m");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(2.0));
  ckt.emplace<Resistor>("R1", a, m, 3e3);
  ckt.emplace<Resistor>("R2", m, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 50e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const double e_src = source_energy(res.trace, "V1", 0.0, opts.t_stop);
  const double e_r = resistor_energy(res.trace, "a", "m", 3e3, 0.0,
                                     opts.t_stop) +
                     resistor_energy(res.trace, "m", "0", 1e3, 0.0,
                                     opts.t_stop);
  EXPECT_NEAR(e_src, e_r, 1e-3 * e_src);
  // And the analytic value: P = V^2 / (R1 + R2) = 1 mW over 1 ns = 1 pJ.
  EXPECT_NEAR(e_src, 1e-12, 0.01e-12);
}

TEST(Physics, SourceChargeMatchesCapacitorCharge) {
  // Charging a capacitor through a large resistor: the charge the source
  // delivers equals C * dV (KCL integrated over the whole transient).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  // Source steps 0 -> 1 V after the OP so the delivered charge is visible.
  ckt.emplace<VoltageSource>(
      "V1", a, kGround,
      Waveform::pwl({{0.0, 0.0}, {0.1e-6, 0.0}, {0.11e-6, 1.0}}));
  const double c2 = 3e-12, r = 1e6;
  ckt.emplace<Capacitor>("C2", b, kGround, c2);
  ckt.emplace<Resistor>("R1", a, b, r);
  TransientOptions opts;
  opts.t_stop = 20e-6;  // >> r*c2 = 3 us: fully settled
  opts.dt = 50e-9;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.trace.voltage_at_time("b", 20e-6), 1.0, 0.02);
  const double q = source_charge(res.trace, "V1", 0.0, opts.t_stop);
  EXPECT_NEAR(q, c2 * 1.0, 0.05 * c2);
}

TEST(Physics, TrapezoidalConservesBetterThanBeOnLcLikeRinging) {
  // A stiff RC chain driven by a fast square wave: BE damps numerically;
  // trapezoidal tracks the stored energy more faithfully.  Compare final
  // capacitor voltage error against a fine-step reference.
  const auto run = [&](bool trap, double dt) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId m = ckt.node("m");
    const NodeId o = ckt.node("o");
    ckt.emplace<VoltageSource>(
        "V1", a, kGround,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 2e-9, 4e-9));
    ckt.emplace<Resistor>("R1", a, m, 500.0);
    ckt.emplace<Capacitor>("C1", m, kGround, 1e-12);
    ckt.emplace<Resistor>("R2", m, o, 500.0);
    ckt.emplace<Capacitor>("C2", o, kGround, 1e-12);
    TransientOptions opts;
    opts.t_stop = 3.7e-9;
    opts.dt = dt;
    opts.trapezoidal = trap;
    const auto res = run_transient(ckt, opts);
    EXPECT_TRUE(res.ok);
    return res.trace.voltage_at_time("o", 3.7e-9);
  };
  const double ref = run(true, 2e-12);
  const double be = std::abs(run(false, 100e-12) - ref);
  const double tr = std::abs(run(true, 100e-12) - ref);
  EXPECT_LT(tr, be);
}

TEST(Physics, StaticHoldBurnsOnlyLeakagePower) {
  // A held node burns exactly V^2/R in its leak path — the static-power
  // bookkeeping behind the divider-energy accounting.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>(
      "V1", a, kGround, Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1e-9));
  ckt.emplace<Resistor>("R1", a, kGround, 1e7);
  ckt.emplace<Capacitor>("C1", a, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 0.9e-9;
  opts.dt = 10e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  // While held high, only the leak resistor burns: P = V^2/R = 0.1 uW.
  const double e = source_energy(res.trace, "V1", 0.2e-9, 0.8e-9);
  EXPECT_NEAR(e, 1e-7 * 0.6e-9, 0.2e-16);
}

}  // namespace
}  // namespace fetcam::spice
