// Factorization reuse on real circuit workloads: a transient run with the
// KLU-style refactor path enabled must be BIT-identical to the same run
// with reuse disabled, while factoring the full (symbolic + numeric)
// problem only once per Jacobian pattern — once for the operating point,
// once more after the OP -> transient mode switch activates the companion
// models.
#include <gtest/gtest.h>

#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "spice/transient.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::spice {
namespace {

struct ReuseRun {
  Trace trace;
  num::SparseLu::Stats stats;
  std::vector<std::string> node_names;
};

ReuseRun run_word_search(bool reuse) {
  tcam::WordOptions opts;
  opts.n_bits = 8;
  tcam::SearchConfig cfg;
  cfg.stored = arch::word_from_string("01X10X01");
  cfg.query = arch::bits_from_string("01110001");
  auto h = tcam::make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
  h->build_search(cfg);
  num::SparseNewtonWorkspace ws;
  TransientOptions topts;
  topts.t_stop = h->t_stop();
  topts.dt = h->suggested_dt();
  topts.solver = SolverKind::kSparse;
  topts.op.solver = SolverKind::kSparse;
  topts.reuse_factorization = reuse;
  topts.workspace = &ws;
  auto res = run_transient(h->circuit(), topts);
  EXPECT_TRUE(res.ok) << res.error;
  ReuseRun out{std::move(res.trace), ws.lu.stats(), {}};
  for (NodeId n = 1; n < h->circuit().node_count(); ++n) {
    out.node_names.push_back(h->circuit().node_name(n));
  }
  return out;
}

TEST(SolverReuse, TransientBitIdenticalWithAndWithoutReuse) {
  const ReuseRun on = run_word_search(/*reuse=*/true);
  const ReuseRun off = run_word_search(/*reuse=*/false);

  // Identical step sequence (step-size control follows the identical
  // convergence trajectory) ...
  ASSERT_EQ(on.trace.times().size(), off.trace.times().size());
  for (std::size_t k = 0; k < on.trace.times().size(); ++k) {
    EXPECT_EQ(on.trace.times()[k], off.trace.times()[k]) << "time " << k;
  }
  // ... and bit-identical waveforms on every node.
  ASSERT_EQ(on.node_names, off.node_names);
  for (const std::string& node : on.node_names) {
    const auto von = on.trace.voltage(node);
    const auto voff = off.trace.voltage(node);
    ASSERT_EQ(von.size(), voff.size()) << node;
    for (std::size_t k = 0; k < von.size(); ++k) {
      ASSERT_EQ(von[k], voff[k]) << node << " sample " << k
                                 << " (bit-exact comparison)";
    }
  }
}

TEST(SolverReuse, FullFactorCountDropsToOncePerPattern) {
  const ReuseRun on = run_word_search(/*reuse=*/true);
  // One full factor for the OP pattern, one for the transient pattern
  // (companion models change the stamp stream), plus one per pivot-drift
  // fallback; everything else must be a numeric-only refactor.
  EXPECT_EQ(on.stats.full_factors, 2u + on.stats.fallbacks);
  EXPECT_GT(on.stats.refactors, 0u);
  const double hit_rate =
      static_cast<double>(on.stats.refactors) /
      static_cast<double>(on.stats.refactors + on.stats.full_factors);
  EXPECT_GE(hit_rate, 0.9) << "refactors=" << on.stats.refactors
                           << " full=" << on.stats.full_factors;

  const ReuseRun off = run_word_search(/*reuse=*/false);
  EXPECT_EQ(off.stats.refactors, 0u);
  EXPECT_GT(off.stats.full_factors, 10u)
      << "with reuse disabled every Newton iteration full-factors";
}

TEST(SolverReuse, MetricsAndManifestReportHitRate) {
  const obs::Level saved = obs::level();
  obs::set_level(obs::Level::kMetrics);
  auto& reg = obs::MetricsRegistry::instance();
  const std::uint64_t factors0 = reg.counter("lu.sparse.factors").value();
  const std::uint64_t refactors0 = reg.counter("lu.sparse.refactors").value();

  run_word_search(/*reuse=*/true);

  const std::uint64_t factors =
      reg.counter("lu.sparse.factors").value() - factors0;
  const std::uint64_t refactors =
      reg.counter("lu.sparse.refactors").value() - refactors0;
  EXPECT_GT(refactors, 0u);
  EXPECT_GT(refactors, 9 * factors)
      << "process-wide hit rate of the run should exceed 0.9";

  // The manifest surfaces the derived hit rate next to the raw counters.
  const obs::RunManifest manifest("solver_reuse_test", "unit");
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"lu.sparse.refactors\""), std::string::npos);
  EXPECT_NE(json.find("\"lu.sparse.refactor_hit_rate\""), std::string::npos);
  obs::set_level(saved);
}

}  // namespace
}  // namespace fetcam::spice
