#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.hpp"

namespace fetcam::spice {
namespace {

// RC charging circuit: V1 - R - out - C - gnd.
struct RcFixture {
  Circuit ckt;
  NodeId vin, out;
  double r = 1e3;
  double c = 1e-12;  // tau = 1 ns

  RcFixture() {
    vin = ckt.node("vin");
    out = ckt.node("out");
    ckt.emplace<VoltageSource>(
        "V1", vin, kGround,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    ckt.emplace<Resistor>("R1", vin, out, r);
    ckt.emplace<Capacitor>("C1", out, kGround, c);
  }
};

TEST(Transient, RcStepResponseBackwardEuler) {
  RcFixture f;
  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 10e-12;
  const auto res = run_transient(f.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double tau = f.r * f.c;
  // Compare against the analytic exponential at several times.
  for (const double t : {1e-9, 2e-9, 3e-9}) {
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(res.trace.voltage_at_time("out", t), expected, 0.01)
        << "t=" << t;
  }
  // Fully settled by 5 tau.
  EXPECT_NEAR(res.trace.voltage_at_time("out", 5e-9), 1.0, 0.01);
}

TEST(Transient, TrapezoidalIsMoreAccurateThanBe) {
  const double tau = 1e-9;
  auto run = [&](bool trap) {
    RcFixture f;
    TransientOptions opts;
    opts.t_stop = 3e-9;
    opts.dt = 50e-12;
    opts.trapezoidal = trap;
    const auto res = run_transient(f.ckt, opts);
    EXPECT_TRUE(res.ok);
    double max_err = 0.0;
    for (double t = 0.3e-9; t < 3e-9; t += 0.1e-9) {
      const double expected = 1.0 - std::exp(-t / tau);
      max_err = std::max(
          max_err, std::abs(res.trace.voltage_at_time("out", t) - expected));
    }
    return max_err;
  };
  const double err_be = run(false);
  const double err_trap = run(true);
  EXPECT_LT(err_trap, err_be);
}

TEST(Transient, StartsFromDcOperatingPoint) {
  // DC source pre-charges the cap through the OP: no transient at all.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  ckt.emplace<Capacitor>("C1", b, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 20e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const auto v = res.trace.voltage("b");
  for (const double x : v) EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(Transient, BreakpointsAreHitExactly) {
  RcFixture f;
  // Replace the source with a delayed pulse whose edge must be sampled.
  auto* v1 = dynamic_cast<VoltageSource*>(f.ckt.find_device("V1"));
  ASSERT_NE(v1, nullptr);
  v1->set_waveform(Waveform::pulse(0.0, 1.0, 1.05e-9, 1e-12, 1e-12, 10e-9));
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 100e-12;  // coarse: would step over the 1.05 ns edge otherwise
  const auto res = run_transient(f.ckt, opts);
  ASSERT_TRUE(res.ok);
  bool found = false;
  for (const double t : res.trace.times()) {
    if (std::abs(t - 1.05e-9) < 1e-15) found = true;
  }
  EXPECT_TRUE(found);
  // Before the edge the output is still 0.
  EXPECT_NEAR(res.trace.voltage_at_time("out", 1.0e-9), 0.0, 1e-6);
}

TEST(Transient, RcDischargeThroughResistor) {
  // Pulse back low: cap discharges with the same tau.
  RcFixture f;
  auto* v1 = dynamic_cast<VoltageSource*>(f.ckt.find_device("V1"));
  v1->set_waveform(Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 5e-9, 0.0));
  TransientOptions opts;
  opts.t_stop = 10e-9;
  opts.dt = 10e-12;
  const auto res = run_transient(f.ckt, opts);
  ASSERT_TRUE(res.ok);
  const double tau = 1e-9;
  // After the falling edge at ~5 ns the voltage decays.
  const double v6 = res.trace.voltage_at_time("out", 6e-9);
  const double expected = std::exp(-1e-9 / tau);
  EXPECT_NEAR(v6, expected, 0.02);
}

TEST(Trace, BranchCurrentRecorded) {
  RcFixture f;
  TransientOptions opts;
  opts.t_stop = 0.5e-9;
  opts.dt = 5e-12;
  const auto res = run_transient(f.ckt, opts);
  ASSERT_TRUE(res.ok);
  const auto i = res.trace.branch_current("V1");
  ASSERT_EQ(i.size(), res.trace.times().size());
  // Just after the step, the source supplies ~1 V / 1 kOhm = 1 mA, i.e. the
  // branch current is about -1 mA.
  double peak = 0.0;
  for (const double x : i) peak = std::min(peak, x);
  EXPECT_NEAR(peak, -1e-3, 0.1e-3);
}

}  // namespace
}  // namespace fetcam::spice
