// Dense vs sparse solver equivalence on real circuit workloads.
#include <gtest/gtest.h>

#include <chrono>

#include "tcam/full_array.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::spice {
namespace {

TEST(Solver, DenseAndSparseAgreeOnWordTransient) {
  // Same 1.5T1DG search run with both solvers: waveforms must agree to
  // solver tolerance.
  const auto run = [&](SolverKind solver) {
    tcam::WordOptions opts;
    opts.n_bits = 8;
    tcam::SearchConfig cfg;
    cfg.stored = arch::word_from_string("01X10X01");
    cfg.query = arch::bits_from_string("01110001");
    auto h = tcam::make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
    h->build_search(cfg);
    TransientOptions topts;
    topts.t_stop = h->t_stop();
    topts.dt = h->suggested_dt();
    topts.solver = solver;
    topts.op.solver = solver;
    auto res = run_transient(h->circuit(), topts);
    EXPECT_TRUE(res.ok) << res.error;
    return res.trace;
  };
  const auto dense = run(SolverKind::kDense);
  const auto sparse = run(SolverKind::kSparse);
  const auto vd = dense.voltage("ml3");
  const auto vs = sparse.voltage("ml3");
  ASSERT_EQ(vd.size(), vs.size());
  for (std::size_t k = 0; k < vd.size(); ++k) {
    EXPECT_NEAR(vd[k], vs[k], 1e-4) << "sample " << k;
  }
}

TEST(Solver, SparseEnablesLargerFullArrays) {
  // An 8x16 full array (~200 unknowns by itself, ~300 with SA chains) —
  // simulated with the sparse path and still correct row-for-row.
  tcam::FullArrayOptions opts;
  opts.rows = 8;
  opts.cols = 16;
  std::vector<arch::TernaryWord> stored;
  for (int r = 0; r < opts.rows; ++r) {
    std::string w;
    for (int c = 0; c < opts.cols; ++c) {
      w.push_back("01X"[(r + c) % 3]);
    }
    stored.push_back(arch::word_from_string(w));
  }
  const auto query = arch::bits_from_string("0101010101010101");

  tcam::OnePointFiveArray arr(tcam::Flavor::kDg, opts);
  arr.build_search(stored, query, {});
  TransientOptions topts;
  topts.t_stop = arr.t_stop();
  topts.dt = arr.suggested_dt();
  topts.solver = SolverKind::kSparse;
  topts.op.solver = SolverKind::kSparse;
  const auto res = run_transient(arr.circuit(), topts);
  ASSERT_TRUE(res.ok) << res.error;
  const double half = 0.4;
  for (int r = 0; r < opts.rows; ++r) {
    const bool expect =
        arch::word_matches(stored[static_cast<std::size_t>(r)], query);
    const bool got = res.trace.voltage_at_time(
                         "r" + std::to_string(r) + ".saout",
                         arr.t_latch()) > half;
    EXPECT_EQ(got, expect) << "row " << r;
  }
}

TEST(Solver, AutoPicksSparseForLargeSystems) {
  // The auto threshold is an implementation policy; verify it is wired by
  // checking a large system still converges quickly (would take far longer
  // with dense LU at this size).
  tcam::FullArrayOptions opts;
  opts.rows = 12;
  opts.cols = 16;
  std::vector<arch::TernaryWord> stored(
      static_cast<std::size_t>(opts.rows),
      arch::TernaryWord(static_cast<std::size_t>(opts.cols),
                        arch::Ternary::kZero));
  const auto query =
      arch::BitWord(static_cast<std::size_t>(opts.cols), 0);
  tcam::OnePointFiveArray arr(tcam::Flavor::kSg, opts);
  arr.build_search(stored, query, {});
  arr.circuit().finalize();
  EXPECT_GT(arr.circuit().system_size(), kSparseAutoThreshold);
  TransientOptions topts;
  topts.t_stop = arr.t_stop();
  topts.dt = 4e-12;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = run_transient(arr.circuit(), topts);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_TRUE(res.ok) << res.error;
  // Generous bound; the dense path at ~600 unknowns x ~700 steps would blow
  // well past it on any hardware this runs on.
  EXPECT_LT(elapsed, 30.0);
}

}  // namespace
}  // namespace fetcam::spice
