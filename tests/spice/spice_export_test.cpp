#include "spice/spice_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "devices/fefet.hpp"
#include "devices/tech14.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::spice {
namespace {

TEST(SpiceExport, PassivesAndSources) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>(
      "V1", a, kGround, Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9));
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  ckt.emplace<Capacitor>("C1", b, kGround, 1e-12);
  ckt.emplace<Vcvs>("E1", ckt.node("o"), kGround, b, kGround, 2.5);
  std::ostringstream os;
  SpiceExportOptions opts;
  opts.tran_step = 1e-12;
  opts.tran_stop = 5e-9;
  opts.save_nodes = {"b"};
  ASSERT_TRUE(export_ngspice(os, ckt, opts));
  const std::string s = os.str();
  EXPECT_NE(s.find("RR1 a b 1000"), std::string::npos);
  EXPECT_NE(s.find("CC1 b 0 1e-12"), std::string::npos);
  EXPECT_NE(s.find("VV1 a 0 PWL("), std::string::npos);
  EXPECT_NE(s.find("EE1 o 0 b 0 2.5"), std::string::npos);
  EXPECT_NE(s.find(".tran 1e-12 5e-09"), std::string::npos);
  EXPECT_NE(s.find(".save v(b)"), std::string::npos);
  EXPECT_NE(s.find(".end"), std::string::npos);
}

TEST(SpiceExport, MosfetBecomesBehavioralSource) {
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.8));
  ckt.emplace<VoltageSource>("VG", g, kGround, Waveform::dc(0.8));
  ckt.emplace<dev::Mosfet>("M1", d, g, kGround, kGround,
                           dev::tech14::nfet());
  std::ostringstream os;
  ASSERT_TRUE(export_ngspice(os, ckt));
  const std::string s = os.str();
  EXPECT_NE(s.find("BM1 d 0 I="), std::string::npos);
  EXPECT_NE(s.find("ln(1+exp("), std::string::npos);  // EKV softplus
  EXPECT_NE(s.find("CM1_gs"), std::string::npos);
  // Balanced parentheses in the whole deck.
  EXPECT_EQ(std::count(s.begin(), s.end(), '('),
            std::count(s.begin(), s.end(), ')'));
}

TEST(SpiceExport, FefetCarriesFrozenThreshold) {
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId fg = ckt.node("fg");
  const NodeId bg = ckt.node("bg");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.4));
  ckt.emplace<VoltageSource>("VFG", fg, kGround, Waveform::dc(0.0));
  ckt.emplace<VoltageSource>("VBG", bg, kGround, Waveform::dc(2.0));
  auto& fe = ckt.emplace<dev::FeFet>("F1", d, fg, kGround, bg,
                                     dev::dg_fefet_params());
  fe.set_state(dev::FeState::kLvt, 0.0);
  std::ostringstream os;
  ASSERT_TRUE(export_ngspice(os, ckt));
  const std::string s = os.str();
  EXPECT_NE(s.find("P/Ps=1"), std::string::npos);
  EXPECT_NE(s.find("BF1 d 0 I="), std::string::npos);
  EXPECT_NE(s.find("RF1_leak"), std::string::npos);
}

TEST(SpiceExport, FullWordHarnessExports) {
  // The entire 1.5T1DG search netlist must export cleanly (every device
  // kind the harness uses is representable).
  tcam::WordOptions opts;
  opts.n_bits = 4;
  auto h = tcam::make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
  tcam::SearchConfig cfg;
  cfg.stored = arch::word_from_string("01X0");
  cfg.query = arch::bits_from_string("0100");
  h->build_search(cfg);
  std::ostringstream os;
  EXPECT_TRUE(export_ngspice(os, h->circuit()));
  const std::string s = os.str();
  EXPECT_EQ(s.find("UNSUPPORTED"), std::string::npos);
  EXPECT_NE(s.find("BFE0"), std::string::npos);   // a FeFET channel
  EXPECT_NE(s.find("BTML0"), std::string::npos);  // a control transistor
}

}  // namespace
}  // namespace fetcam::spice
