#include "spice/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "spice/elements.hpp"

namespace fetcam::spice {
namespace {

TEST(Measure, CrossTimeRisingFalling) {
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> v{0.0, 1.0, 0.0, 1.0, 0.0};
  const auto r1 = cross_time(t, v, 0.5, Edge::kRising);
  ASSERT_TRUE(r1.has_value());
  EXPECT_DOUBLE_EQ(*r1, 0.5);
  const auto f1 = cross_time(t, v, 0.5, Edge::kFalling);
  ASSERT_TRUE(f1.has_value());
  EXPECT_DOUBLE_EQ(*f1, 1.5);
  const auto r2 = cross_time(t, v, 0.5, Edge::kRising, 1.0);
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(*r2, 2.5);
  EXPECT_FALSE(cross_time(t, v, 2.0, Edge::kRising).has_value());
}

TEST(Measure, IntegrateWindowClamping) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> v{0.0, 2.0, 0.0};  // triangle, area 2
  EXPECT_NEAR(integrate(t, v, 0.0, 2.0), 2.0, 1e-12);
  EXPECT_NEAR(integrate(t, v, 0.5, 1.5), 1.5, 1e-12);
  EXPECT_NEAR(integrate(t, v, -1.0, 3.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(integrate(t, v, 1.0, 1.0), 0.0);
}

TEST(Measure, SampleAtInterpolates) {
  const std::vector<double> t{0.0, 2.0};
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(sample_at(t, v, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(sample_at(t, v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(sample_at(t, v, 5.0), 3.0);
}

TEST(Measure, WindowMinMax) {
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> v{0.0, 5.0, -3.0, 1.0};
  EXPECT_DOUBLE_EQ(window_max(t, v, 0.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(window_min(t, v, 0.0, 3.0), -3.0);
  EXPECT_DOUBLE_EQ(window_max(t, v, 1.5, 3.0), 1.0);
}

TEST(Measure, RiseTimeOfRamp) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 0.01);
    v.push_back(i * 0.01);  // unit ramp over 1 s
  }
  const auto rt = rise_time(t, v, 0.0, 1.0);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, 0.8, 1e-9);  // 10% to 90% of a linear ramp
}

TEST(Measure, SourceEnergyOfRcCharge) {
  // Energy delivered by a step source charging C through R converges to
  // C*V^2 (half stored, half dissipated).
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>(
      "V1", vin, kGround, Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
  ckt.emplace<Resistor>("R1", vin, out, 1e3);
  ckt.emplace<Capacitor>("C1", out, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 10e-9;
  opts.dt = 5e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const double e = source_energy(res.trace, "V1", 0.0, 10e-9);
  EXPECT_NEAR(e, 1e-12, 0.05e-12);  // C * V^2 = 1 pJ
  // Charge delivered = C * V.
  const double q = source_charge(res.trace, "V1", 0.0, 10e-9);
  EXPECT_NEAR(q, 1e-12, 0.05e-12);
}

TEST(Measure, TotalSourceEnergyFiltersByPrefix) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>("VSL_a", a, kGround, Waveform::dc(1.0));
  ckt.emplace<VoltageSource>("VML_b", b, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  ckt.emplace<Resistor>("R2", b, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 10e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const double e_sl = total_source_energy(res.trace, "VSL", 0.0, 1e-9);
  const double e_all = total_source_energy(res.trace, "", 0.0, 1e-9);
  // Each source dissipates V^2/R * t = 1 mW * 1 ns = 1 pJ.
  EXPECT_NEAR(e_sl, 1e-12, 0.05e-12);
  EXPECT_NEAR(e_all, 2.0 * e_sl, 0.1e-12);
}

}  // namespace
}  // namespace fetcam::spice
