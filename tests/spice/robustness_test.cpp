// Analysis robustness: continuation strategies, failure reporting, and
// integrator behaviour on awkward-but-legal circuits.
#include <gtest/gtest.h>

#include "devices/mosfet.hpp"
#include "devices/tech14.hpp"
#include "spice/dcsweep.hpp"
#include "spice/transient.hpp"

namespace fetcam::spice {
namespace {

// Cross-coupled inverter pair (bistable): the direct Newton from a zero
// start struggles; continuation must still deliver a valid operating point.
Circuit latch_circuit() {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId q = ckt.node("q");
  const NodeId qb = ckt.node("qb");
  ckt.emplace<VoltageSource>("VDD", vdd, kGround, Waveform::dc(0.8));
  ckt.emplace<dev::Mosfet>("MP1", q, qb, vdd, vdd, dev::tech14::pfet(2.0));
  ckt.emplace<dev::Mosfet>("MN1", q, qb, kGround, kGround,
                           dev::tech14::nfet());
  ckt.emplace<dev::Mosfet>("MP2", qb, q, vdd, vdd, dev::tech14::pfet(2.0));
  ckt.emplace<dev::Mosfet>("MN2", qb, q, kGround, kGround,
                           dev::tech14::nfet());
  return ckt;
}

TEST(OpRobustness, LatchConvergesToAValidState) {
  Circuit ckt = latch_circuit();
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged) << to_string(op.strategy);
  const Solution sol(ckt, op.x);
  const double q = sol.v(*ckt.find_node("q"));
  const double qb = sol.v(*ckt.find_node("qb"));
  // Any self-consistent solution is acceptable (including the metastable
  // midpoint under symmetric continuation); it must satisfy the inverter
  // transfer relation both ways.
  EXPECT_GE(q, -0.01);
  EXPECT_LE(q, 0.81);
  EXPECT_GE(qb, -0.01);
  EXPECT_LE(qb, 0.81);
}

TEST(OpRobustness, StrategyIsReported) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.strategy, OpStrategy::kDirect);
  EXPECT_GT(op.newton_iterations, 0);
}

TEST(OpRobustness, DisabledContinuationStillDirectSolves) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(0.5));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  OpOptions opts;
  opts.allow_gmin_stepping = false;
  opts.allow_source_stepping = false;
  const auto op = solve_op(ckt, opts);
  EXPECT_TRUE(op.converged);
}

TEST(TransientRobustness, ReportsErrorWhenOpFails) {
  // A current source into a pure capacitor has no DC operating point
  // (the gmin anchor saves it: so use an impossible system instead —
  // two parallel voltage sources at different values).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<VoltageSource>("V2", a, kGround, Waveform::dc(2.0));
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-10;
  const auto res = run_transient(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(TransientRobustness, SkipOpStartsFromZeroState) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  const NodeId b = ckt.node("b");
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  ckt.emplace<Capacitor>("C1", b, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 5e-9;
  opts.dt = 20e-12;
  opts.skip_op = true;  // cold power-up: cap starts at 0 despite DC source
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_LT(res.trace.voltage_at_time("b", 10e-12), 0.1);
  EXPECT_GT(res.trace.voltage_at_time("b", 5e-9), 0.95);
}

TEST(TransientRobustness, VcvsWorksInTransient) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>(
      "V1", in, kGround, Waveform::pulse(0.0, 0.2, 1e-9, 0.1e-9, 0.1e-9, 5e-9));
  ckt.emplace<Vcvs>("E1", out, kGround, in, kGround, 3.0);
  ckt.emplace<Resistor>("RL", out, kGround, 1e4);
  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.dt = 20e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.trace.voltage_at_time("out", 2e-9), 0.6, 1e-6);
  EXPECT_NEAR(res.trace.voltage_at_time("out", 0.5e-9), 0.0, 1e-6);
}

TEST(TransientRobustness, AdaptiveStepCountsRejections) {
  // A very fast edge with a huge nominal dt forces breakpoint alignment and
  // possibly halvings; the result must still be accurate.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>(
      "V1", a, kGround, Waveform::pulse(0.0, 1.0, 0.5e-9, 1e-12, 1e-12, 5e-9));
  ckt.emplace<Resistor>("R1", a, b, 100.0);
  ckt.emplace<Capacitor>("C1", b, kGround, 1e-13);  // tau = 10 ps
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 0.5e-9;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.trace.voltage_at_time("b", 2e-9), 1.0, 0.02);
}

TEST(DcSweep, RestoresSourceWaveform) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& v1 = ckt.emplace<VoltageSource>("V1", a, kGround,
                                        Waveform::dc(0.123));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  const auto sweep = dc_sweep(ckt, v1, 0.0, 1.0, 10);
  ASSERT_TRUE(sweep.ok);
  EXPECT_EQ(sweep.points.size(), 11u);
  // Waveform restored afterwards.
  EXPECT_DOUBLE_EQ(v1.value_at(0.0), 0.123);
  // Sweep voltages recorded monotonically.
  const auto vs = sweep.sweep_values();
  EXPECT_DOUBLE_EQ(vs.front(), 0.0);
  EXPECT_DOUBLE_EQ(vs.back(), 1.0);
}

TEST(DcSweep, ExtractsNodeColumns) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId mid = ckt.node("mid");
  auto& v1 = ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(0.0));
  ckt.emplace<Resistor>("R1", a, mid, 1e3);
  ckt.emplace<Resistor>("R2", mid, kGround, 1e3);
  const auto sweep = dc_sweep(ckt, v1, 0.0, 2.0, 4);
  ASSERT_TRUE(sweep.ok);
  const auto vmid = sweep.voltage(ckt, "mid");
  ASSERT_EQ(vmid.size(), 5u);
  EXPECT_NEAR(vmid.back(), 1.0, 1e-9);
}

}  // namespace
}  // namespace fetcam::spice
