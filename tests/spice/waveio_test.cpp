#include "spice/waveio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "spice/elements.hpp"

namespace fetcam::spice {
namespace {

Trace make_rc_trace() {
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>(
      "V1", vin, kGround, Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
  ckt.emplace<Resistor>("R1", vin, out, 1e3);
  ckt.emplace<Capacitor>("C1", out, kGround, 1e-12);
  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 50e-12;
  auto res = run_transient(ckt, opts);
  EXPECT_TRUE(res.ok);
  return res.trace;
}

TEST(WaveIo, CsvHasHeaderAndAllSamples) {
  const Trace trace = make_rc_trace();
  std::ostringstream os;
  ASSERT_TRUE(write_csv(os, trace, {"vin", "out"}));
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("t,vin,out\n", 0), 0u);
  // One line per sample plus the header.
  const auto lines = std::count(s.begin(), s.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), trace.size() + 1);
}

TEST(WaveIo, CsvFlagsUnknownSignals) {
  const Trace trace = make_rc_trace();
  std::ostringstream os;
  EXPECT_FALSE(write_csv(os, trace, {"vin", "no_such_node"}));
}

TEST(WaveIo, VcdStructure) {
  const Trace trace = make_rc_trace();
  std::ostringstream os;
  ASSERT_TRUE(write_vcd(os, trace, {"vin", "out"}));
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1000 fs $end"), std::string::npos);
  EXPECT_NE(s.find("$var real 64 ! vin $end"), std::string::npos);
  EXPECT_NE(s.find("$var real 64 \" out $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
  // Timestamps and real-value changes present.
  EXPECT_NE(s.find("#0"), std::string::npos);
  EXPECT_NE(s.find("r1 !"), std::string::npos);  // vin steps to 1 V
}

TEST(WaveIo, VcdOmitsUnchangedValues) {
  const Trace trace = make_rc_trace();
  std::ostringstream os;
  write_vcd(os, trace, {"vin"});
  const std::string s = os.str();
  // vin settles at 1.0 after the edge: far fewer value changes than samples.
  const auto changes = std::count(s.begin(), s.end(), 'r');
  EXPECT_LT(static_cast<std::size_t>(changes), trace.size() / 2);
}

TEST(WaveIo, ExportWritesBothFiles) {
  const Trace trace = make_rc_trace();
  const std::string base = "waveio_test_out";
  ASSERT_TRUE(export_waveforms(base, trace, {"vin", "out"}));
  std::ifstream csv(base + ".csv");
  std::ifstream vcd(base + ".vcd");
  EXPECT_TRUE(csv.good());
  EXPECT_TRUE(vcd.good());
  std::remove((base + ".csv").c_str());
  std::remove((base + ".vcd").c_str());
}

}  // namespace
}  // namespace fetcam::spice
