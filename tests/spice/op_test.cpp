#include "spice/op.hpp"

#include <gtest/gtest.h>

#include "spice/elements.hpp"
#include "spice/netlist.hpp"

namespace fetcam::spice {
namespace {

TEST(Op, VoltageDivider) {
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId mid = ckt.node("mid");
  ckt.emplace<VoltageSource>("V1", vin, kGround, Waveform::dc(2.0));
  ckt.emplace<Resistor>("R1", vin, mid, 1e3);
  ckt.emplace<Resistor>("R2", mid, kGround, 3e3);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  EXPECT_NEAR(sol.v(vin), 2.0, 1e-9);
  EXPECT_NEAR(sol.v(mid), 1.5, 1e-9);
}

TEST(Op, SourceBranchCurrentSign) {
  // 1 V source driving 1 kOhm: 1 mA flows out of the + terminal into the
  // circuit, so the branch current (+ -> through source -> -) is -1 mA.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& v1 = ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  EXPECT_NEAR(sol.branch_current(v1.branch_base()), -1e-3, 1e-9);
}

TEST(Op, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  // 2 mA pulled out of ground into node a (current flows + -> - inside the
  // source, so connect + to ground, - to a to push current INTO a).
  ckt.emplace<CurrentSource>("I1", kGround, a, Waveform::dc(2e-3));
  ckt.emplace<Resistor>("R1", a, kGround, 500.0);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  EXPECT_NEAR(sol.v(a), 1.0, 1e-9);
}

TEST(Op, VcvsAmplifies) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>("V1", in, kGround, Waveform::dc(0.25));
  ckt.emplace<Vcvs>("E1", out, kGround, in, kGround, 4.0);
  ckt.emplace<Resistor>("RL", out, kGround, 1e4);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  EXPECT_NEAR(sol.v(out), 1.0, 1e-9);
}

TEST(Op, CapacitorIsOpenAtDc) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  ckt.emplace<Capacitor>("C1", b, kGround, 1e-12);
  ckt.emplace<Resistor>("R2", b, kGround, 1e6);
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  // No DC current into the cap: divider is R1/R2.
  EXPECT_NEAR(sol.v(b), 1.0 * 1e6 / (1e6 + 1e3), 1e-9);
}

TEST(Op, SeriesResistorChain) {
  Circuit ckt;
  const NodeId top = ckt.node("n0");
  ckt.emplace<VoltageSource>("V1", top, kGround, Waveform::dc(10.0));
  NodeId prev = top;
  for (int i = 1; i <= 10; ++i) {
    const NodeId next =
        i == 10 ? kGround : ckt.node("n" + std::to_string(i));
    ckt.emplace<Resistor>("R" + std::to_string(i), prev, next, 100.0);
    prev = next;
  }
  const auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const Solution sol(ckt, op.x);
  EXPECT_NEAR(sol.v(*ckt.find_node("n5")), 5.0, 1e-9);
}

TEST(Netlist, DumpAndFloatingNodeLint) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId dangling = ckt.node("dangling");
  ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  ckt.emplace<Resistor>("R2", a, dangling, 1e3);
  const std::string dump = dump_netlist(ckt);
  EXPECT_NE(dump.find("resistor R1"), std::string::npos);
  const auto floating = find_floating_nodes(ckt);
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_EQ(floating[0], "dangling");
}

TEST(Circuit, RejectsDuplicateDeviceNames) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  EXPECT_THROW(ckt.emplace<Resistor>("R1", a, kGround, 2e3),
               std::invalid_argument);
}

TEST(Circuit, GroundAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
}

}  // namespace
}  // namespace fetcam::spice
