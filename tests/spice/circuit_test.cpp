// Circuit-graph bookkeeping: node/branch indexing, finalize semantics,
// breakpoints, device descriptions, trace source metadata.
#include <gtest/gtest.h>

#include "spice/elements.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"

namespace fetcam::spice {
namespace {

TEST(Circuit, NodeCreationAndLookup) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(ckt.node("a"), a);  // idempotent
  EXPECT_EQ(ckt.find_node("a").value(), a);
  EXPECT_FALSE(ckt.find_node("zzz").has_value());
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_EQ(ckt.node_count(), 3);  // ground + a + b
}

TEST(Circuit, InternalNodesAreUnique) {
  Circuit ckt;
  const NodeId x = ckt.internal_node("tmp");
  const NodeId y = ckt.internal_node("tmp");
  EXPECT_NE(x, y);
}

TEST(Circuit, BranchIndexAssignment) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  auto& v1 = ckt.emplace<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  auto& v2 = ckt.emplace<VoltageSource>("V2", b, kGround, Waveform::dc(2.0));
  ckt.finalize();
  EXPECT_EQ(ckt.branch_count(), 2);
  EXPECT_EQ(v1.branch_base(), 0);
  EXPECT_EQ(v2.branch_base(), 1);
  // Unknowns: 2 node voltages + 2 branch currents.
  EXPECT_EQ(ckt.system_size(), 4);
  EXPECT_EQ(ckt.node_sys_index(kGround), -1);
  EXPECT_EQ(ckt.branch_sys_index(0), 2);
}

TEST(Circuit, FinalizeIsIdempotentUntilNetlistChanges) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  ckt.finalize();
  EXPECT_TRUE(ckt.finalized());
  ckt.node("new_node");  // netlist change
  EXPECT_FALSE(ckt.finalized());
}

TEST(Circuit, BreakpointsMergeAcrossSources) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>(
      "V1", a, kGround, Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 1e-9));
  ckt.emplace<VoltageSource>(
      "V2", b, kGround, Waveform::pwl({{0.0, 0.0}, {1.5e-9, 1.0}}));
  ckt.emplace<Resistor>("R1", a, b, 1e3);
  const auto bps = ckt.breakpoints(10e-9);
  // Pulse edges: 1, 1.1, 2.1, 2.2 ns; PWL corner: 1.5 ns.
  EXPECT_EQ(bps.size(), 5u);
  EXPECT_TRUE(std::is_sorted(bps.begin(), bps.end()));
}

TEST(Circuit, DeviceDescribeListsTerminals) {
  Circuit ckt;
  const NodeId a = ckt.node("in");
  const NodeId b = ckt.node("out");
  auto& r = ckt.emplace<Resistor>("R42", a, b, 1e3);
  const std::string d = r.describe(ckt);
  EXPECT_NE(d.find("R42"), std::string::npos);
  EXPECT_NE(d.find("in"), std::string::npos);
  EXPECT_NE(d.find("out"), std::string::npos);
}

TEST(Trace, SourceMetadataSnapshot) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.emplace<VoltageSource>("VDRIVE", a, kGround, Waveform::dc(1.5));
  ckt.emplace<Resistor>("R1", a, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-10;
  opts.dt = 1e-11;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const auto names = res.trace.source_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "VDRIVE");
  EXPECT_DOUBLE_EQ(res.trace.source_value("VDRIVE", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(res.trace.source_value("missing", 0.0), 0.0);
  // The trace stays valid after the circuit dies (self-contained) — checked
  // structurally here by copying it out.
  Trace copy = res.trace;
  EXPECT_EQ(copy.voltage("a").size(), copy.size());
}

TEST(Elements, ResistorRejectsNonPositiveValues) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.emplace<Resistor>("R1", a, kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.emplace<Resistor>("R2", a, kGround, -5.0),
               std::invalid_argument);
  auto& r = ckt.emplace<Resistor>("R3", a, kGround, 5.0);
  EXPECT_THROW(r.set_resistance(0.0), std::invalid_argument);
  r.set_resistance(7.0);
  EXPECT_DOUBLE_EQ(r.resistance(), 7.0);
}

TEST(Elements, CapacitorRejectsNegative) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.emplace<Capacitor>("C1", a, kGround, -1e-15),
               std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::spice
