#include "devices/tech14.hpp"

#include <gtest/gtest.h>

#include "devices/fefet.hpp"
#include "spice/elements.hpp"
#include "spice/op.hpp"

namespace fetcam::dev {
namespace {

TEST(Tech14, CardGeometry) {
  const auto n = tech14::nfet(2.0, 3.0);
  EXPECT_DOUBLE_EQ(n.w, 100e-9);
  EXPECT_DOUBLE_EQ(n.l, 60e-9);
  EXPECT_EQ(n.polarity, Polarity::kN);
  const auto p = tech14::pfet();
  EXPECT_EQ(p.polarity, Polarity::kP);
  EXPECT_LT(p.u0, tech14::nfet().u0);
}

TEST(Tech14, DerivedCapacitancesScaleWithGeometry) {
  const auto small = tech14::nfet(1.0, 1.0);
  const auto wide = tech14::nfet(4.0, 1.0);
  EXPECT_NEAR(wide.cgate() / small.cgate(), 4.0, 1e-9);
  EXPECT_NEAR(wide.cjunction() / small.cjunction(), 4.0, 1e-9);
  EXPECT_GT(small.cgs(), small.cgd());  // drain side is overlap-only
}

TEST(Tech14, TemperatureRetargeting) {
  const auto cold = tech14::at_temperature(tech14::nfet(), 250.0);
  const auto nom = tech14::nfet();
  const auto hot = tech14::at_temperature(tech14::nfet(), 400.0);
  // Thermal voltage tracks kT/q.
  EXPECT_LT(cold.ut, nom.ut);
  EXPECT_GT(hot.ut, nom.ut);
  EXPECT_NEAR(hot.ut / nom.ut, 400.0 / 300.0, 1e-9);
  // Vth falls and mobility degrades with temperature.
  EXPECT_GT(cold.vth0, nom.vth0);
  EXPECT_LT(hot.vth0, nom.vth0);
  EXPECT_GT(cold.u0, nom.u0);
  EXPECT_LT(hot.u0, nom.u0);
  // 300 K is a fixed point.
  const auto same = tech14::at_temperature(tech14::nfet(), 300.0);
  EXPECT_DOUBLE_EQ(same.vth0, nom.vth0);
  EXPECT_DOUBLE_EQ(same.ut, nom.ut);
}

TEST(Tech14, HotDeviceLeaksMoreDrivesLess) {
  // Simulate on/off currents at 300 K vs 400 K.
  const auto current = [](const MosfetParams& card, double vg) {
    spice::Circuit ckt;
    const auto d = ckt.node("d");
    const auto g = ckt.node("g");
    ckt.emplace<spice::VoltageSource>("VD", d, spice::kGround,
                                      spice::Waveform::dc(0.8));
    ckt.emplace<spice::VoltageSource>("VG", g, spice::kGround,
                                      spice::Waveform::dc(vg));
    auto& m = ckt.emplace<Mosfet>("M1", d, g, spice::kGround, spice::kGround,
                                  card);
    const auto op = solve_op(ckt);
    EXPECT_TRUE(op.converged);
    return m.drain_current(spice::Solution(ckt, op.x));
  };
  const auto nom = tech14::nfet();
  const auto hot = tech14::at_temperature(tech14::nfet(), 400.0);
  EXPECT_GT(current(hot, 0.0), current(nom, 0.0) * 10.0);  // leakage up
  EXPECT_LT(current(hot, 0.8), current(nom, 0.8));         // drive down
}

TEST(Tech14, FefetTemperatureRetargeting) {
  const auto nom = dg_fefet_params();
  const auto hot = tech14::fefet_at_temperature(dg_fefet_params(), 400.0);
  EXPECT_LT(hot.fe.vc, nom.fe.vc);       // coercivity softens
  EXPECT_LT(hot.mos.vth0, nom.mos.vth0); // channel Vth rolls off
  // The memory window definition (mw_fg) is a card constant; the write
  // voltage needed for MVT shifts with the softer coercivity.
  EXPECT_LT(tech14::fefet_at_temperature(dg_fefet_params(), 400.0)
                .write_voltage_for_vth(0.61),
            nom.write_voltage_for_vth(0.61));
}

}  // namespace
}  // namespace fetcam::dev
