#include "devices/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "devices/tech14.hpp"
#include "spice/dcsweep.hpp"
#include "spice/elements.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace fetcam::dev {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Solution;
using spice::VoltageSource;
using spice::Waveform;

// Single NFET with swept gate, drain at VDD.
struct NfetTb {
  Circuit ckt;
  NodeId d, g;
  VoltageSource* vg = nullptr;
  Mosfet* m = nullptr;

  explicit NfetTb(MosfetParams p = tech14::nfet(), double vdd = 0.8) {
    d = ckt.node("d");
    g = ckt.node("g");
    ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(vdd));
    vg = &ckt.emplace<VoltageSource>("VG", g, kGround, Waveform::dc(0.0));
    m = &ckt.emplace<Mosfet>("M1", d, g, kGround, kGround, p);
  }

  double id_at(double vgs) {
    vg->set_waveform(Waveform::dc(vgs));
    const auto op = solve_op(ckt);
    EXPECT_TRUE(op.converged);
    const Solution sol(ckt, op.x);
    return m->drain_current(sol);
  }
};

TEST(Mosfet, NfetOnOffRatio) {
  NfetTb tb;
  const double i_on = tb.id_at(0.8);
  const double i_off = tb.id_at(0.0);
  EXPECT_GT(i_on, 1e-5);            // tens of uA on-current
  EXPECT_LT(i_off, 1e-9);           // sub-nA leakage
  EXPECT_GT(i_on / i_off, 1e4);     // healthy on/off for 14 nm
}

TEST(Mosfet, SubthresholdSlopeNear70mV) {
  NfetTb tb;
  const double i1 = tb.id_at(0.10);
  const double i2 = tb.id_at(0.20);
  const double ss = 0.1 / std::log10(i2 / i1);
  EXPECT_GT(ss, 0.060);
  EXPECT_LT(ss, 0.080);
}

TEST(Mosfet, PfetConductsWithLowGate) {
  Circuit ckt;
  const NodeId s = ckt.node("s");
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  ckt.emplace<VoltageSource>("VS", s, kGround, Waveform::dc(0.8));
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.0));
  auto& vg = ckt.emplace<VoltageSource>("VG", g, kGround, Waveform::dc(0.8));
  auto& m = ckt.emplace<Mosfet>("M1", d, g, s, s, tech14::pfet());
  // Gate high: off.
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const double i_off = std::abs(m.drain_current(Solution(ckt, op.x)));
  // Gate low: on.
  vg.set_waveform(Waveform::dc(0.0));
  op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const double i_on = std::abs(m.drain_current(Solution(ckt, op.x)));
  EXPECT_GT(i_on / std::max(i_off, 1e-18), 1e4);
}

TEST(Mosfet, SymmetricConduction) {
  // Swap drain/source bias: current magnitude identical, sign flipped.
  auto current = [](double vd, double vs) {
    Circuit ckt;
    const NodeId d = ckt.node("d");
    const NodeId s = ckt.node("s");
    const NodeId g = ckt.node("g");
    ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(vd));
    ckt.emplace<VoltageSource>("VS", s, kGround, Waveform::dc(vs));
    ckt.emplace<VoltageSource>("VG", g, kGround, Waveform::dc(0.8));
    auto& m = ckt.emplace<Mosfet>("M1", d, g, s, kGround, tech14::nfet());
    const auto op = solve_op(ckt);
    EXPECT_TRUE(op.converged);
    return m.drain_current(Solution(ckt, op.x));
  };
  const double fwd = current(0.4, 0.0);
  const double rev = current(0.0, 0.4);
  EXPECT_GT(fwd, 0.0);
  EXPECT_LT(rev, 0.0);
  EXPECT_NEAR(fwd, -rev, std::abs(fwd) * 0.1);
}

TEST(Mosfet, BodyBiasShiftsCurrent) {
  // Forward back-bias (positive VB for NFET) raises the current.
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.8));
  ckt.emplace<VoltageSource>("VG", g, kGround, Waveform::dc(0.3));
  auto& vb = ckt.emplace<VoltageSource>("VB", b, kGround, Waveform::dc(0.0));
  auto& m = ckt.emplace<Mosfet>("M1", d, g, kGround, b, tech14::nfet());
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const double i0 = m.drain_current(Solution(ckt, op.x));
  vb.set_waveform(Waveform::dc(0.5));
  op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  const double i1 = m.drain_current(Solution(ckt, op.x));
  EXPECT_GT(i1, i0 * 1.5);
}

TEST(Mosfet, InverterTransfersCorrectly) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>("VDD", vdd, kGround, Waveform::dc(0.8));
  auto& vin = ckt.emplace<VoltageSource>("VIN", in, kGround, Waveform::dc(0.0));
  ckt.emplace<Mosfet>("MP", out, in, vdd, vdd, tech14::pfet(2.0));
  ckt.emplace<Mosfet>("MN", out, in, kGround, kGround, tech14::nfet());
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_GT(Solution(ckt, op.x).v(out), 0.75);  // input low -> output high
  vin.set_waveform(Waveform::dc(0.8));
  op = solve_op(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_LT(Solution(ckt, op.x).v(out), 0.05);  // input high -> output low
}

TEST(Mosfet, InverterTransientSwitches) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.emplace<VoltageSource>("VDD", vdd, kGround, Waveform::dc(0.8));
  ckt.emplace<VoltageSource>(
      "VIN", in, kGround,
      Waveform::pulse(0.0, 0.8, 50e-12, 10e-12, 10e-12, 300e-12));
  ckt.emplace<Mosfet>("MP", out, in, vdd, vdd, tech14::pfet(2.0));
  ckt.emplace<Mosfet>("MN", out, in, kGround, kGround, tech14::nfet());
  ckt.emplace<spice::Capacitor>("CL", out, kGround, 0.5e-15);
  spice::TransientOptions opts;
  opts.t_stop = 600e-12;
  opts.dt = 1e-12;
  const auto res = run_transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.trace.voltage_at_time("out", 40e-12), 0.75);
  EXPECT_LT(res.trace.voltage_at_time("out", 300e-12), 0.05);
  EXPECT_GT(res.trace.voltage_at_time("out", 550e-12), 0.7);
}

TEST(Mosfet, DcSweepProducesMonotonicIdVg) {
  NfetTb tb;
  const auto sweep = dc_sweep(tb.ckt, *tb.vg, 0.0, 0.8, 40);
  ASSERT_TRUE(sweep.ok);
  // Drain source current = -branch current of VD.
  const auto ivd = sweep.branch_current(tb.ckt, "VD");
  double prev = -1.0;
  for (std::size_t k = 0; k < ivd.size(); ++k) {
    const double id = -ivd[k];
    EXPECT_GE(id, prev - 1e-12) << "k=" << k;
    prev = id;
  }
}

TEST(Mosfet, OnResistanceOrdersOfMagnitude) {
  NfetTb tb;
  tb.vg->set_waveform(Waveform::dc(0.8));
  auto op = solve_op(tb.ckt);
  ASSERT_TRUE(op.converged);
  const double r_on = tb.m->on_resistance(Solution(tb.ckt, op.x));
  EXPECT_GT(r_on, 1e3);
  EXPECT_LT(r_on, 1e5);
  tb.vg->set_waveform(Waveform::dc(0.0));
  op = solve_op(tb.ckt);
  ASSERT_TRUE(op.converged);
  const double r_off = tb.m->on_resistance(Solution(tb.ckt, op.x));
  EXPECT_GT(r_off, 1e8);
}

}  // namespace
}  // namespace fetcam::dev
