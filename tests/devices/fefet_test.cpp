#include "devices/fefet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/dcsweep.hpp"
#include "spice/elements.hpp"
#include "spice/measure.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace fetcam::dev {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Solution;
using spice::VoltageSource;
using spice::Waveform;

// FeFET testbench: drain at a read supply, FG and BG independently driven.
struct FeFetTb {
  Circuit ckt;
  NodeId d, fg, bg;
  VoltageSource* vfg = nullptr;
  VoltageSource* vbg = nullptr;
  VoltageSource* vd = nullptr;
  FeFet* dev = nullptr;

  explicit FeFetTb(const FeFetParams& p, double v_read_drain = 0.1) {
    d = ckt.node("d");
    fg = ckt.node("fg");
    bg = ckt.node("bg");
    vd = &ckt.emplace<VoltageSource>("VD", d, kGround,
                                     Waveform::dc(v_read_drain));
    vfg = &ckt.emplace<VoltageSource>("VFG", fg, kGround, Waveform::dc(0.0));
    vbg = &ckt.emplace<VoltageSource>("VBG", bg, kGround, Waveform::dc(0.0));
    dev = &ckt.emplace<FeFet>("F1", d, fg, kGround, bg, p);
  }

  // Constant-current threshold extraction sweeping one gate.
  double extract_vth(VoltageSource& gate, double v_lo, double v_hi,
                     double i_crit = 1e-7) {
    const auto sweep = spice::dc_sweep(ckt, gate, v_lo, v_hi, 120);
    EXPECT_TRUE(sweep.ok);
    const auto iv = sweep.branch_current(ckt, "VD");
    const auto vs = sweep.sweep_values();
    for (std::size_t k = 1; k < iv.size(); ++k) {
      const double i0 = -iv[k - 1];
      const double i1 = -iv[k];
      if (i0 < i_crit && i1 >= i_crit) {
        const double f = (i_crit - i0) / (i1 - i0);
        return vs[k - 1] + f * (vs[k] - vs[k - 1]);
      }
    }
    ADD_FAILURE() << "threshold not found in sweep";
    return std::nan("");
  }
};

TEST(FeFetCards, ReportedConstantsMatchPaper) {
  const auto sg = sg_fefet_params();
  EXPECT_FALSE(sg.double_gate);
  EXPECT_NEAR(sg.vw(), 4.0, 1e-9);
  EXPECT_NEAR(sg.mw_fg, 1.8, 1e-9);
  EXPECT_NEAR(sg.fe.t_fe, 10e-9, 1e-15);

  const auto dg = dg_fefet_params();
  EXPECT_TRUE(dg.double_gate);
  EXPECT_NEAR(dg.vw(), 2.0, 1e-9);
  EXPECT_NEAR(dg.mw_fg, 0.9, 1e-9);
  EXPECT_NEAR(dg.mw_bg(), 2.7, 1e-9);
  EXPECT_NEAR(dg.fe.t_fe, 5e-9, 1e-15);
}

TEST(FeFet, SgFrontGateMemoryWindow) {
  // Paper Fig. 1(c): FG-read I-V after +/-4 V write, MW = 1.8 V.
  const auto p = sg_fefet_params();
  FeFetTb tb(p);
  tb.dev->set_state(FeState::kLvt, 0.0);
  const double vth_lvt = tb.extract_vth(*tb.vfg, -1.0, 3.0);
  tb.dev->set_state(FeState::kHvt, 0.0);
  const double vth_hvt = tb.extract_vth(*tb.vfg, -1.0, 3.0);
  EXPECT_NEAR(vth_hvt - vth_lvt, 1.8, 0.1);
}

TEST(FeFet, DgBackGateMemoryWindowAmplified) {
  // Paper Fig. 1(d): BG-read I-V after +/-2 V write, MW = 2.7 V.
  const auto p = dg_fefet_params();
  FeFetTb tb(p);
  tb.dev->set_state(FeState::kLvt, 0.0);
  const double vth_lvt = tb.extract_vth(*tb.vbg, -1.0, 4.5);
  tb.dev->set_state(FeState::kHvt, 0.0);
  const double vth_hvt = tb.extract_vth(*tb.vbg, -1.0, 4.5);
  EXPECT_NEAR(vth_hvt - vth_lvt, 2.7, 0.2);
}

TEST(FeFet, BgReadDegradesSubthresholdSlope) {
  // The BG is a 3x weaker gate: SS(BG) ~ 3 * SS(FG).
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.8);
  tb.dev->set_state(FeState::kHvt, 0.0);

  auto slope = [&](VoltageSource& gate, double v0, double v1) {
    gate.set_waveform(Waveform::dc(v0));
    auto op = solve_op(tb.ckt);
    EXPECT_TRUE(op.converged);
    const double i0 = tb.dev->drain_current(Solution(tb.ckt, op.x));
    gate.set_waveform(Waveform::dc(v1));
    op = solve_op(tb.ckt);
    EXPECT_TRUE(op.converged);
    const double i1 = tb.dev->drain_current(Solution(tb.ckt, op.x));
    gate.set_waveform(Waveform::dc(0.0));
    return (v1 - v0) / std::log10(i1 / i0);
  };
  const double ss_fg = slope(*tb.vfg, 0.9, 1.0);
  const double ss_bg = slope(*tb.vbg, 2.7, 3.0);
  EXPECT_NEAR(ss_bg / ss_fg, 3.0, 0.3);
}

TEST(FeFet, DgBgReadOnOffRatioAboutTenThousand) {
  // At the select voltage V_SeL = 2 V the paper quotes ~1e4 on/off.
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.8);
  tb.vbg->set_waveform(Waveform::dc(2.0));
  tb.dev->set_state(FeState::kLvt, 0.0);
  auto op = solve_op(tb.ckt);
  ASSERT_TRUE(op.converged);
  const double i_on = tb.dev->drain_current(Solution(tb.ckt, op.x));
  tb.dev->set_state(FeState::kHvt, 0.0);
  op = solve_op(tb.ckt);
  ASSERT_TRUE(op.converged);
  const double i_off = tb.dev->drain_current(Solution(tb.ckt, op.x));
  EXPECT_GT(i_on / i_off, 1e3);
  EXPECT_LT(i_on / i_off, 1e7);
}

TEST(FeFet, WriteTransientProgramsPolarization) {
  // A +2 V / 50 ns pulse on the FG programs LVT from the erased state.
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.0);
  tb.dev->set_state(FeState::kHvt, 0.0);
  tb.vfg->set_waveform(
      Waveform::pulse(0.0, p.vw(), 5e-9, 1e-9, 1e-9, 50e-9));
  spice::TransientOptions opts;
  opts.t_stop = 80e-9;
  opts.dt = 0.5e-9;
  const auto res = run_transient(tb.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(tb.dev->normalized_polarization(), 0.95);
  EXPECT_NEAR(tb.dev->threshold_voltage(),
              p.mos.vth0 - p.mw_fg / 2.0, 0.05);
}

TEST(FeFet, EraseTransientResetsPolarization) {
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.0);
  tb.dev->set_state(FeState::kLvt, 0.0);
  tb.vfg->set_waveform(
      Waveform::pulse(0.0, -p.vw(), 5e-9, 1e-9, 1e-9, 50e-9));
  spice::TransientOptions opts;
  opts.t_stop = 80e-9;
  opts.dt = 0.5e-9;
  const auto res = run_transient(tb.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(tb.dev->normalized_polarization(), -0.95);
}

TEST(FeFet, PartialWriteProducesMvt) {
  // Paper Tab. II: the X state is written with V_m < V_w after erase.
  const auto p = dg_fefet_params();
  const double vth_target = 0.85;
  const double vm = p.write_voltage_for_vth(vth_target);
  EXPECT_GT(vm, 1.4);
  EXPECT_LT(vm, 1.9);

  FeFetTb tb(p, 0.0);
  tb.dev->set_state(FeState::kHvt, 0.0);
  tb.vfg->set_waveform(Waveform::pulse(0.0, vm, 5e-9, 1e-9, 1e-9, 80e-9));
  spice::TransientOptions opts;
  opts.t_stop = 100e-9;
  opts.dt = 0.5e-9;
  const auto res = run_transient(tb.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(tb.dev->threshold_voltage(), vth_target, 0.08);
}

TEST(FeFet, BgReadCyclesDoNotDisturbState) {
  // 100 select pulses at V_SeL = 2 V on the BG leave polarization intact —
  // the disturb-free read the DG structure exists for.
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.8);
  tb.dev->set_state(FeState::kLvt, 0.0);
  const double p_before = tb.dev->polarization();
  tb.vbg->set_waveform(
      Waveform::pulse(0.0, 2.0, 0.2e-9, 0.05e-9, 0.05e-9, 0.5e-9, 1e-9));
  spice::TransientOptions opts;
  opts.t_stop = 100e-9;  // 100 read cycles
  opts.dt = 20e-12;
  const auto res = run_transient(tb.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(tb.dev->polarization(), p_before, 1e-4 * p.fe.ps);
}

TEST(FeFet, WriteChargeMatchesTwoPsA) {
  // Switched charge through the FG during a full write ~ 2 Ps A plus the
  // dielectric charge — the physics behind the paper's write-energy rows.
  const auto p = dg_fefet_params();
  FeFetTb tb(p, 0.0);
  tb.dev->set_state(FeState::kHvt, 0.0);
  tb.vfg->set_waveform(
      Waveform::pulse(0.0, p.vw(), 5e-9, 1e-9, 1e-9, 50e-9));
  spice::TransientOptions opts;
  opts.t_stop = 60e-9;
  opts.dt = 0.25e-9;
  const auto res = run_transient(tb.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // Charge delivered while the pulse is high (before it returns).
  const double q = spice::source_charge(res.trace, "VFG", 0.0, 56e-9);
  const double q_pol = 2.0 * p.fe.ps * p.fe.area;  // 0.4 fC
  EXPECT_GT(q, 0.8 * q_pol);
  EXPECT_LT(q, 3.0 * q_pol);
}

TEST(FeFet, WriteVoltageForVthRoundTrips) {
  const auto p = dg_fefet_params();
  for (const double vth : {0.6, 0.8, 0.9, 1.0, 1.2}) {
    const double vm = p.write_voltage_for_vth(vth);
    // Quasi-static settle from erased at vm reproduces the polarization.
    const double pol =
        settle_polarization(p.fe, -p.fe.ps, vm);
    const double vth_back = p.vth_for(pol / p.fe.ps);
    EXPECT_NEAR(vth_back, vth, 1e-6);
  }
}

TEST(FeFet, SetStateMvtRejectsOutOfWindowTargets) {
  const auto p = dg_fefet_params();
  FeFetTb tb(p);
  EXPECT_THROW(tb.dev->set_state(FeState::kMvt, 2.5), std::invalid_argument);
  EXPECT_THROW(tb.dev->set_state(FeState::kMvt, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::dev
