// Parameterized FeFET property sweeps across flavours and states.
#include <gtest/gtest.h>

#include "devices/fefet.hpp"
#include "spice/elements.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace fetcam::dev {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Solution;
using spice::VoltageSource;
using spice::Waveform;

struct SweepCase {
  bool dg = false;
  FeState state = FeState::kHvt;
};

class FeFetStateSweep : public ::testing::TestWithParam<SweepCase> {};

double drain_current_at(const FeFetParams& p, FeState s, double vfg,
                        double vbg, double vd) {
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId fg = ckt.node("fg");
  const NodeId bg = ckt.node("bg");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(vd));
  ckt.emplace<VoltageSource>("VFG", fg, kGround, Waveform::dc(vfg));
  ckt.emplace<VoltageSource>("VBG", bg, kGround, Waveform::dc(vbg));
  auto& fe = ckt.emplace<FeFet>("F1", d, fg, kGround, bg, p);
  fe.set_state(s, p.mos.vth0);
  const auto op = solve_op(ckt);
  EXPECT_TRUE(op.converged);
  return fe.drain_current(Solution(ckt, op.x));
}

TEST_P(FeFetStateSweep, ThresholdMatchesStateEncoding) {
  const auto sc = GetParam();
  const FeFetParams p = sc.dg ? dg_fefet_params() : sg_fefet_params();
  FeFet fe("F", 1, 2, 3, 4, p);
  fe.set_state(sc.state, p.mos.vth0);
  switch (sc.state) {
    case FeState::kLvt:
      EXPECT_NEAR(fe.threshold_voltage(), p.mos.vth0 - p.mw_fg / 2.0, 1e-9);
      EXPECT_NEAR(fe.normalized_polarization(), 1.0, 1e-9);
      break;
    case FeState::kHvt:
      EXPECT_NEAR(fe.threshold_voltage(), p.mos.vth0 + p.mw_fg / 2.0, 1e-9);
      EXPECT_NEAR(fe.normalized_polarization(), -1.0, 1e-9);
      break;
    case FeState::kMvt:
      EXPECT_NEAR(fe.threshold_voltage(), p.mos.vth0, 1e-9);
      EXPECT_NEAR(fe.normalized_polarization(), 0.0, 1e-9);
      break;
  }
}

TEST_P(FeFetStateSweep, CurrentOrderingLvtAboveMvtAboveHvt) {
  const auto sc = GetParam();
  const FeFetParams p = sc.dg ? dg_fefet_params() : sg_fefet_params();
  // Bias at the flavour's read point.
  const double vfg = sc.dg ? 0.25 : 0.8;
  const double vbg = sc.dg ? 2.0 : 0.0;
  const double i_lvt = drain_current_at(p, FeState::kLvt, vfg, vbg, 0.4);
  const double i_mvt = drain_current_at(p, FeState::kMvt, vfg, vbg, 0.4);
  const double i_hvt = drain_current_at(p, FeState::kHvt, vfg, vbg, 0.4);
  EXPECT_GT(i_lvt, i_mvt);
  EXPECT_GT(i_mvt, i_hvt);
}

INSTANTIATE_TEST_SUITE_P(
    FlavorsAndStates, FeFetStateSweep,
    ::testing::Values(SweepCase{false, FeState::kHvt},
                      SweepCase{false, FeState::kMvt},
                      SweepCase{false, FeState::kLvt},
                      SweepCase{true, FeState::kHvt},
                      SweepCase{true, FeState::kMvt},
                      SweepCase{true, FeState::kLvt}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string n = info.param.dg ? "DG_" : "SG_";
      switch (info.param.state) {
        case FeState::kHvt: n += "HVT"; break;
        case FeState::kMvt: n += "MVT"; break;
        case FeState::kLvt: n += "LVT"; break;
      }
      return n;
    });

TEST(FeFetState, PolarizationPersistsAcrossChainedTransients) {
  // Non-volatility: a search-like transient must leave the state intact so
  // a second run on the same circuit sees the same device.
  const auto p = dg_fefet_params();
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId fg = ckt.node("fg");
  const NodeId bg = ckt.node("bg");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.4));
  ckt.emplace<VoltageSource>("VFG", fg, kGround, Waveform::dc(0.0));
  ckt.emplace<VoltageSource>(
      "VBG", bg, kGround,
      Waveform::pulse(0.0, 2.0, 0.1e-9, 20e-12, 20e-12, 0.5e-9));
  auto& fe = ckt.emplace<FeFet>("F1", d, fg, kGround, bg, p);
  fe.set_state(FeState::kMvt, 0.605);
  const double p0 = fe.polarization();
  for (int run = 0; run < 3; ++run) {
    spice::TransientOptions opts;
    opts.t_stop = 1e-9;
    opts.dt = 5e-12;
    const auto res = run_transient(ckt, opts);
    ASSERT_TRUE(res.ok) << res.error;
  }
  EXPECT_NEAR(fe.polarization(), p0, 1e-4 * p.fe.ps);
}

TEST(FeFetState, WriteVoltageForVthIsMonotone) {
  const auto p = dg_fefet_params();
  double prev = -1e9;
  // Lower target threshold (more LVT-ward) needs a higher write voltage.
  for (double vth = 1.1; vth >= 0.5; vth -= 0.1) {
    const double vm = p.write_voltage_for_vth(vth);
    EXPECT_GT(vm, prev) << "vth=" << vth;
    prev = vm;
  }
}

TEST(FeFetState, OnResistanceOrdersAcrossStates) {
  const auto p = sg_fefet_params();
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId fg = ckt.node("fg");
  ckt.emplace<VoltageSource>("VD", d, kGround, Waveform::dc(0.4));
  ckt.emplace<VoltageSource>("VFG", fg, kGround, Waveform::dc(0.8));
  auto& fe = ckt.emplace<FeFet>("F1", d, fg, kGround, kGround, p);
  const auto r_of = [&](FeState s) {
    fe.set_state(s, p.mos.vth0);
    const auto op = solve_op(ckt);
    EXPECT_TRUE(op.converged);
    return fe.on_resistance(Solution(ckt, op.x));
  };
  const double r_on = r_of(FeState::kLvt);
  const double r_m = r_of(FeState::kMvt);
  const double r_off = r_of(FeState::kHvt);
  EXPECT_LT(r_on, r_m);
  EXPECT_LT(r_m, r_off);
  EXPECT_GT(r_off / r_on, 1e2);
}

}  // namespace
}  // namespace fetcam::dev
