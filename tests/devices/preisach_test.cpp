#include "devices/preisach.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fetcam::dev {
namespace {

FerroParams dg_card() {
  FerroParams p;
  p.ps = 0.20;
  p.vc = 1.6;
  p.vslope = 0.133;
  return p;
}

// Quasi-static sweep helper: many small steps with long dwell.
double sweep_to(const FerroParams& p, double p_start, double v_from,
                double v_to, int steps = 200) {
  double pol = p_start;
  for (int k = 1; k <= steps; ++k) {
    const double v = v_from + (v_to - v_from) * k / steps;
    pol = advance_polarization(p, pol, v, 100.0 * p.tau0).p_end;
  }
  return pol;
}

TEST(Preisach, BranchesAreOrdered) {
  const auto p = dg_card();
  for (double v = -4.0; v <= 4.0; v += 0.1) {
    EXPECT_LE(branch_ascending(p, v), branch_descending(p, v) + 1e-15)
        << "v=" << v;
  }
}

TEST(Preisach, FullWriteSaturates) {
  const auto p = dg_card();
  // Program: 0 -> +Vw fully polarizes up.
  const double pol = sweep_to(p, -p.ps, 0.0, p.vw());
  EXPECT_GT(pol, 0.99 * p.ps);
  // Erase: -> -Vw fully polarizes down.
  const double pol2 = sweep_to(p, pol, p.vw(), -p.vw());
  EXPECT_LT(pol2, -0.99 * p.ps);
}

TEST(Preisach, RemanenceAtZeroVolts) {
  const auto p = dg_card();
  double pol = sweep_to(p, -p.ps, 0.0, p.vw());
  pol = sweep_to(p, pol, p.vw(), 0.0);
  // Non-volatile: remains polarized with no applied voltage.
  EXPECT_GT(pol, 0.95 * p.ps);
}

TEST(Preisach, MidCoerciveWriteGivesPartialPolarization) {
  const auto p = dg_card();
  // From erased, applying exactly Vc lands near P = 0 (the MVT write).
  const double pol = sweep_to(p, -p.ps, 0.0, p.vc);
  EXPECT_NEAR(pol, 0.0, 0.05 * p.ps);
}

TEST(Preisach, PartialWriteIsDeterministic) {
  const auto p = dg_card();
  const double a = sweep_to(p, -p.ps, 0.0, p.vc);
  const double b = sweep_to(p, -p.ps, 0.0, p.vc, 400);
  EXPECT_NEAR(a, b, 1e-3 * p.ps);
}

TEST(Preisach, LowVoltageReadDoesNotDisturb) {
  const auto p = dg_card();
  double pol = sweep_to(p, -p.ps, 0.0, p.vw());  // LVT
  const double before = pol;
  // 1000 read cycles at 25% of Vc: no accumulated disturb.
  for (int k = 0; k < 1000; ++k) {
    pol = advance_polarization(p, pol, 0.25 * p.vc, 10e-9).p_end;
    pol = advance_polarization(p, pol, 0.0, 10e-9).p_end;
  }
  EXPECT_NEAR(pol, before, 1e-6 * p.ps);
}

TEST(Preisach, NearCoerciveReadAccumulatesDisturb) {
  const auto p = dg_card();
  // Start from the erased state and repeatedly apply a read voltage close to
  // +Vc (the SG-FeFET front-gate read-disturb scenario).
  double pol = -p.ps;
  for (int k = 0; k < 2000; ++k) {
    pol = advance_polarization(p, pol, 0.95 * p.vc, 10e-9).p_end;
  }
  EXPECT_GT(pol, -0.9 * p.ps);  // visibly disturbed toward switching
}

TEST(Preisach, MinorLoopStaysInsideMajorLoop) {
  const auto p = dg_card();
  // Trace a minor loop between +/- 0.8 Vc starting from erased.
  double pol = -p.ps;
  pol = sweep_to(p, pol, 0.0, 0.8 * p.vc);
  const double top = pol;
  pol = sweep_to(p, pol, 0.8 * p.vc, -0.8 * p.vc);
  const double bottom = pol;
  EXPECT_LT(top, p.ps);
  EXPECT_GT(bottom, -p.ps);
  EXPECT_GE(top, bottom - 1e-12);
}

TEST(Preisach, SwitchingTauAcceleratesWithOverdrive) {
  const auto p = dg_card();
  EXPECT_DOUBLE_EQ(switching_tau(p, 0.5 * p.vc), p.tau0);
  EXPECT_LT(switching_tau(p, 2.0 * p.vc), p.tau0);
  EXPECT_GE(switching_tau(p, 10.0), p.tau_min);
}

TEST(Preisach, ShortPulseSwitchesLessThanLongPulse) {
  const auto p = dg_card();
  const double v = p.vw();
  const double p_short = advance_polarization(p, -p.ps, v, 0.2 * p.tau0).p_end;
  const double p_long = advance_polarization(p, -p.ps, v, 20.0 * p.tau0).p_end;
  EXPECT_LT(p_short, p_long);
  EXPECT_GT(p_long, 0.95 * p.ps);
}

TEST(Preisach, SettleClampsBetweenBranches) {
  const auto p = dg_card();
  const double v = 0.5;
  const double lo = branch_ascending(p, v);
  const double hi = branch_descending(p, v);
  EXPECT_DOUBLE_EQ(settle_polarization(p, lo - 0.1, v), lo);
  EXPECT_DOUBLE_EQ(settle_polarization(p, hi + 0.1, v), hi);
  const double mid = 0.5 * (lo + hi);
  EXPECT_DOUBLE_EQ(settle_polarization(p, mid, v), mid);
}

TEST(Preisach, DpDvSensitivityMatchesFiniteDifference) {
  const auto p = dg_card();
  const double p_prev = -p.ps;
  const double dt = 5e-9;
  for (double v = 1.0; v <= 2.4; v += 0.2) {
    const auto st = advance_polarization(p, p_prev, v, dt);
    const double h = 1e-6;
    const double fd = (advance_polarization(p, p_prev, v + h, dt).p_end -
                       advance_polarization(p, p_prev, v - h, dt).p_end) /
                      (2.0 * h);
    // The tau clamp at |v| = Vc puts a kink in the derivative; symmetric FD
    // straddles it at exactly v = Vc, so allow a modest tolerance there.
    if (std::abs(fd) > 1e-6) {
      EXPECT_NEAR(st.dp_dv / fd, 1.0, 0.15) << "v=" << v;
    }
  }
}

// ---- multi-level (FeCAM-style) programming --------------------------------

TEST(Preisach, MultiLevelProgramShapesAndOrdering) {
  const auto p = dg_card();
  for (int bits = 1; bits <= 3; ++bits) {
    const MultiLevelProgram prog = multi_level_program(p, bits);
    const std::size_t levels = 1u << bits;
    EXPECT_EQ(prog.bits, bits);
    ASSERT_EQ(prog.polarization.size(), levels);
    ASSERT_EQ(prog.write_voltage.size(), levels);
    for (std::size_t l = 1; l < levels; ++l) {
      EXPECT_GT(prog.polarization[l], prog.polarization[l - 1])
          << "bits=" << bits << " level " << l;
      EXPECT_GT(prog.write_voltage[l], prog.write_voltage[l - 1]);
    }
    // The top level is the nominal full write: d = 1 degenerates to the
    // binary cell the paper characterizes.
    EXPECT_NEAR(prog.write_voltage.back(), p.vw(), 1e-9);
    EXPECT_NEAR(prog.polarization.back(), branch_ascending(p, p.vw()),
                1e-12);
    EXPECT_GT(multi_level_margin(prog), 0.0);
  }
  // Margin shrinks as levels multiply inside the same polarization window.
  EXPECT_GT(multi_level_margin(multi_level_program(p, 1)),
            multi_level_margin(multi_level_program(p, 2)));
  EXPECT_GT(multi_level_margin(multi_level_program(p, 2)),
            multi_level_margin(multi_level_program(p, 3)));
}

TEST(Preisach, MultiLevelWriteSettlesOnTargetAndQuantizesBack) {
  // Erase + partial write at write_voltage[L] must settle at
  // polarization[L], and the sense quantizer must recover L from the
  // settled value — the closed loop a d-bit digit depends on.
  const auto p = dg_card();
  for (int bits = 1; bits <= 3; ++bits) {
    const MultiLevelProgram prog = multi_level_program(p, bits);
    const double erased = -branch_ascending(p, p.vw());
    for (std::size_t l = 0; l < prog.polarization.size(); ++l) {
      const double settled =
          settle_polarization(p, erased, prog.write_voltage[l]);
      EXPECT_NEAR(settled, prog.polarization[l],
                  1e-9 * std::abs(prog.polarization[l]) + 1e-15)
          << "bits=" << bits << " level " << l;
      EXPECT_EQ(quantize_level(prog, settled), static_cast<int>(l));
      // Quantization survives a disturb smaller than half the margin.
      const double kick = 0.4 * multi_level_margin(prog);
      EXPECT_EQ(quantize_level(prog, settled + kick), static_cast<int>(l));
      EXPECT_EQ(quantize_level(prog, settled - kick), static_cast<int>(l));
    }
  }
}

TEST(Preisach, MultiLevelProgramRejectsBadBitWidths) {
  const auto p = dg_card();
  EXPECT_THROW(multi_level_program(p, 0), std::invalid_argument);
  EXPECT_THROW(multi_level_program(p, 4), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::dev
