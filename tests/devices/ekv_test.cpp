#include "devices/ekv_core.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::dev {
namespace {

EkvParams test_params() {
  EkvParams p;
  p.is = 2.5e-6;
  p.n = 1.15;
  p.ut = 0.02585;
  p.lambda = 0.05;
  p.theta = 1.2;
  return p;
}

TEST(Softplus, MatchesLogExpAndIsSafe) {
  EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(softplus(1.0), std::log(1.0 + std::exp(1.0)), 1e-12);
  EXPECT_DOUBLE_EQ(softplus(100.0), 100.0);      // no overflow
  EXPECT_NEAR(softplus(-100.0), 0.0, 1e-40);     // no underflow surprises
}

TEST(Ekv, CurrentIsZeroAtZeroVds) {
  const auto r = ekv_current(test_params(), 0.3, 0.0);
  EXPECT_DOUBLE_EQ(r.id, 0.0);
}

TEST(Ekv, CurrentIncreasesWithOverdrive) {
  const auto p = test_params();
  double prev = 0.0;
  for (double vov = -0.3; vov <= 0.6; vov += 0.05) {
    const auto r = ekv_current(p, vov, 0.8);
    EXPECT_GT(r.id, prev) << "vov=" << vov;
    prev = r.id;
  }
}

TEST(Ekv, CurrentIncreasesWithVds) {
  const auto p = test_params();
  double prev = -1.0;
  for (double vds = 0.0; vds <= 1.0; vds += 0.05) {
    const auto r = ekv_current(p, 0.4, vds);
    EXPECT_GT(r.id, prev) << "vds=" << vds;
    prev = r.id;
  }
}

TEST(Ekv, SubthresholdSlopeMatchesSlopeFactor) {
  const auto p = test_params();
  // Deep subthreshold, saturated Vds: Id ~ exp(vov / (n Ut)).
  const double i1 = ekv_current(p, -0.30, 0.8).id;
  const double i2 = ekv_current(p, -0.20, 0.8).id;
  const double decades = std::log10(i2 / i1);
  const double ss = 0.1 / decades;  // volts per decade
  EXPECT_NEAR(ss, p.n * p.ut * std::log(10.0), 0.002);
}

TEST(Ekv, SaturationBeyondVdsat) {
  const auto p = test_params();
  const double vov = 0.4;
  const double vdsat = vov / p.n;
  const double i_sat = ekv_current(p, vov, vdsat * 2.0).id;
  const double i_more = ekv_current(p, vov, vdsat * 2.5).id;
  // Only channel-length modulation growth beyond saturation.
  const double growth = (i_more - i_sat) / i_sat;
  EXPECT_LT(growth, 0.05);
  EXPECT_GT(growth, 0.0);
}

TEST(Ekv, MobilityDegradationReducesStrongInversionCurrent) {
  auto p = test_params();
  const double with_theta = ekv_current(p, 0.5, 0.8).id;
  p.theta = 0.0;
  const double without = ekv_current(p, 0.5, 0.8).id;
  EXPECT_LT(with_theta, without);
  // But subthreshold is essentially untouched.
  p.theta = 1.2;
  const double sub_with = ekv_current(p, -0.2, 0.8).id;
  p.theta = 0.0;
  const double sub_without = ekv_current(p, -0.2, 0.8).id;
  EXPECT_NEAR(sub_with / sub_without, 1.0, 0.02);
}

// Analytic derivatives must match finite differences over the full operating
// plane (this is what keeps Newton honest).
class EkvDerivativeTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EkvDerivativeTest, MatchesFiniteDifference) {
  const auto p = test_params();
  const auto [vov, vds] = GetParam();
  const double h = 1e-7;
  const auto r = ekv_current(p, vov, vds);
  const double fd_vov =
      (ekv_current(p, vov + h, vds).id - ekv_current(p, vov - h, vds).id) /
      (2.0 * h);
  const double fd_vds =
      (ekv_current(p, vov, vds + h).id - ekv_current(p, vov, vds - h).id) /
      (2.0 * h);
  const double scale_vov = std::max(std::abs(fd_vov), 1e-12);
  const double scale_vds = std::max(std::abs(fd_vds), 1e-12);
  EXPECT_NEAR(r.did_dvov / scale_vov, fd_vov / scale_vov, 1e-4)
      << "vov=" << vov << " vds=" << vds;
  EXPECT_NEAR(r.did_dvds / scale_vds, fd_vds / scale_vds, 1e-4)
      << "vov=" << vov << " vds=" << vds;
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPlane, EkvDerivativeTest,
    ::testing::Combine(::testing::Values(-0.4, -0.2, 0.0, 0.1, 0.3, 0.6),
                       ::testing::Values(0.0, 0.05, 0.2, 0.8, 1.5)));

}  // namespace
}  // namespace fetcam::dev
