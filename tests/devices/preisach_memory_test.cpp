// Hysteresis-memory properties of the Preisach model: return-point memory,
// wiping-out, and loop orientation — the classical Preisach axioms our
// bounded-relaxation formulation must respect.
#include <gtest/gtest.h>

#include "devices/preisach.hpp"

namespace fetcam::dev {
namespace {

FerroParams card() {
  FerroParams p;
  p.ps = 0.20;
  p.vc = 1.6;
  p.vslope = 0.133;
  return p;
}

double sweep(const FerroParams& p, double pol, double v_from, double v_to,
             int steps = 100) {
  for (int k = 1; k <= steps; ++k) {
    const double v = v_from + (v_to - v_from) * k / steps;
    pol = advance_polarization(p, pol, v, 100.0 * p.tau0).p_end;
  }
  return pol;
}

TEST(PreisachMemory, ReturnPointMemory) {
  // Excursion to a sub-switching voltage and back, repeated: the state at
  // the return point must be reproducible (no drift from cycling within
  // the hysteretic band).
  const auto p = card();
  double pol = sweep(p, -p.ps, 0.0, 0.9 * p.vc);
  const double at_peak = pol;
  for (int cycle = 0; cycle < 5; ++cycle) {
    pol = sweep(p, pol, 0.9 * p.vc, 0.2 * p.vc);
    pol = sweep(p, pol, 0.2 * p.vc, 0.9 * p.vc);
    EXPECT_NEAR(pol, at_peak, 1e-9 * p.ps) << "cycle " << cycle;
  }
}

TEST(PreisachMemory, WipingOut) {
  // A larger excursion erases the memory of smaller ones: after reaching
  // V_hi, the state must not depend on earlier sub-V_hi wiggles.
  const auto p = card();
  double direct = sweep(p, -p.ps, 0.0, 1.2 * p.vc);
  double wiggled = -p.ps;
  wiggled = sweep(p, wiggled, 0.0, 0.5 * p.vc);
  wiggled = sweep(p, wiggled, 0.5 * p.vc, 0.1 * p.vc);
  wiggled = sweep(p, wiggled, 0.1 * p.vc, 0.8 * p.vc);
  wiggled = sweep(p, wiggled, 0.8 * p.vc, 1.2 * p.vc);
  EXPECT_NEAR(wiggled, direct, 1e-6 * p.ps);
}

TEST(PreisachMemory, MajorLoopOrientation) {
  // Counterclockwise loop: at the same voltage, the descending branch
  // carries more polarization than the ascending one.
  const auto p = card();
  double up = sweep(p, -p.ps, -p.vw(), 0.0);    // ascending through 0
  double down = sweep(p, p.ps, p.vw(), 0.0);    // descending through 0
  EXPECT_GT(down, up);
  EXPECT_GT(down, 0.9 * p.ps);   // remanence
  EXPECT_LT(up, -0.9 * p.ps);
}

TEST(PreisachMemory, StateBoundedBySaturation) {
  const auto p = card();
  double pol = -p.ps;
  // Arbitrary violent drive sequence: polarization must stay in [-Ps, Ps].
  const double vs[] = {3.0, -5.0, 1.9, -0.3, 2.5, -2.5, 10.0, -10.0};
  for (const double v : vs) {
    pol = advance_polarization(p, pol, v, 1e-6).p_end;
    EXPECT_GE(pol, -p.ps * 1.0000001);
    EXPECT_LE(pol, p.ps * 1.0000001);
  }
}

TEST(PreisachMemory, SymmetricCoercivity) {
  // The loop is odd-symmetric: sweeping up from -Ps crosses P = 0 at +Vc;
  // sweeping down from +Ps crosses at -Vc.
  const auto p = card();
  double up = sweep(p, -p.ps, 0.0, p.vc, 400);
  EXPECT_NEAR(up, 0.0, 0.02 * p.ps);
  double down = sweep(p, p.ps, 0.0, -p.vc, 400);
  EXPECT_NEAR(down, 0.0, 0.02 * p.ps);
}

}  // namespace
}  // namespace fetcam::dev
