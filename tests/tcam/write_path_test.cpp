// Write-path integration tests: full write transients (pulsed waveforms,
// polarization dynamics) must land every cell on the intended state, from
// any prior state, for every FeFET design.
#include <gtest/gtest.h>

#include "tcam/cell_1p5t1fe.hpp"
#include "tcam/cmos16t.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::TcamDesign;

WriteMeasurement write(TcamDesign d, const std::string& data,
                       const std::string& initial = "") {
  WordOptions opts;
  opts.n_bits = static_cast<int>(data.size());
  WriteConfig cfg;
  cfg.data = arch::word_from_string(data);
  if (!initial.empty()) cfg.initial = arch::word_from_string(initial);
  return measure_write(d, opts, cfg);
}

class WritePathTest : public ::testing::TestWithParam<TcamDesign> {};

TEST_P(WritePathTest, WritesAllThreeStatesFromErased) {
  const auto m = write(GetParam(), "01X0X1");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.data_ok) << "read back: " << arch::to_string(m.final_state);
}

TEST_P(WritePathTest, OverwritesArbitraryPreviousData) {
  const auto m = write(GetParam(), "10X1", "01X0");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.data_ok) << "read back: " << arch::to_string(m.final_state);
}

TEST_P(WritePathTest, AllOnesAndAllZeros) {
  const auto ones = write(GetParam(), "1111", "0000");
  ASSERT_TRUE(ones.ok) << ones.error;
  EXPECT_TRUE(ones.data_ok);
  const auto zeros = write(GetParam(), "0000", "1111");
  ASSERT_TRUE(zeros.ok) << zeros.error;
  EXPECT_TRUE(zeros.data_ok);
}

TEST_P(WritePathTest, AllWildcards) {
  const auto m = write(GetParam(), "XXXX", "0101");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.data_ok);
}

TEST_P(WritePathTest, WriteEnergyIsPositiveAndFinite) {
  const auto m = write(GetParam(), "0101", "1010");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.energy_per_cell, 0.0);
  EXPECT_LT(m.energy_per_cell, 100e-15);  // sanity: fJ scale
}

INSTANTIATE_TEST_SUITE_P(
    FefetDesigns, WritePathTest,
    ::testing::Values(TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
                      TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe),
    [](const ::testing::TestParamInfo<TcamDesign>& info) {
      std::string n = arch::design_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(WritePath, Cmos16tWriteIsNotModeled) {
  WordOptions opts;
  opts.n_bits = 4;
  WriteConfig cfg;
  cfg.data = arch::word_from_string("0101");
  EXPECT_THROW(
      {
        Cmos16tWord w(opts);
        w.build_write(cfg);
      },
      std::logic_error);
}

TEST(WritePath, TwoFefetWriteEnergyIsStateIndependent) {
  // Paper: the complementary 2FeFET write always switches both devices for
  // '0' and '1' data, making the write energy data-independent.
  const auto e0 = write(TcamDesign::k2DgFefet, "0000", "1111");
  const auto e1 = write(TcamDesign::k2DgFefet, "1111", "0000");
  ASSERT_TRUE(e0.ok && e1.ok);
  EXPECT_NEAR(e0.energy_per_cell, e1.energy_per_cell,
              0.05 * e0.energy_per_cell);
  // The 'X' write (both gates at -Vw) switches at most one device when the
  // previous state was complementary: cheaper, but the same order.
  const auto ex = write(TcamDesign::k2DgFefet, "XXXX", "1111");
  ASSERT_TRUE(ex.ok);
  EXPECT_GT(ex.energy_per_cell, 0.3 * e0.energy_per_cell);
  EXPECT_LT(ex.energy_per_cell, 1.1 * e0.energy_per_cell);
}

TEST(WritePath, DgWriteEnergyHalvesSg) {
  const auto sg = write(TcamDesign::k2SgFefet, "0101", "1010");
  const auto dg = write(TcamDesign::k2DgFefet, "0101", "1010");
  ASSERT_TRUE(sg.ok && dg.ok);
  EXPECT_NEAR(sg.energy_per_cell / dg.energy_per_cell, 2.0, 0.6);
}

TEST(WritePath, SingleFefetHalvesTwoFefetWriteEnergy) {
  const auto two = write(TcamDesign::k2DgFefet, "0101", "1010");
  const auto one = write(TcamDesign::k1p5DgFe, "0101", "1010");
  ASSERT_TRUE(two.ok && one.ok);
  EXPECT_NEAR(two.energy_per_cell / one.energy_per_cell, 2.0, 0.7);
}

TEST(WritePath, SearchAfterWriteRoundTrip) {
  // Write through the transient path, transplant the state into a search
  // harness via read_stored, and verify the search outcome.
  WordOptions opts;
  opts.n_bits = 4;
  WriteConfig wcfg;
  wcfg.data = arch::word_from_string("0X10");
  auto writer = make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
  writer->build_write(wcfg);
  spice::TransientOptions topts;
  topts.t_stop = writer->t_stop();
  topts.dt = writer->suggested_dt();
  ASSERT_TRUE(run_transient(writer->circuit(), topts).ok);
  const auto stored = writer->read_stored();
  ASSERT_EQ(stored, wcfg.data);

  SearchConfig scfg;
  scfg.stored = stored;
  scfg.query = arch::bits_from_string("0110");
  const auto m = measure_search(arch::TcamDesign::k1p5DgFe, opts, scfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.measured_match);
}

}  // namespace
}  // namespace fetcam::tcam
