#include "tcam/parasitics.hpp"

#include <gtest/gtest.h>

#include "tcam/op_program.hpp"

namespace fetcam::tcam {
namespace {

TEST(Wire, ScalesLinearlyWithPitch) {
  const WireTech tech;
  const auto a = wire_for_pitch(tech, 0.4e-6);
  const auto b = wire_for_pitch(tech, 0.8e-6);
  EXPECT_NEAR(b.resistance, 2.0 * a.resistance, 1e-12);
  EXPECT_NEAR(b.capacitance, 2.0 * a.capacitance, 1e-24);
}

TEST(Wire, RepresentativeValues) {
  // ~0.4 um pitch: a few Ohms and tens of aF — 14 nm intermediate metal.
  const auto seg = wire_for_pitch({}, 0.4e-6);
  EXPECT_GT(seg.resistance, 1.0);
  EXPECT_LT(seg.resistance, 100.0);
  EXPECT_GT(seg.capacitance, 1e-18);
  EXPECT_LT(seg.capacitance, 1e-15);
}

TEST(SearchTiming, PhaseArithmetic) {
  SearchTiming t;
  t.t_precharge = 100e-12;
  t.t_step = 300e-12;
  t.t_slack = 50e-12;
  t.t_tail = 80e-12;
  EXPECT_DOUBLE_EQ(t.search_start(), 100e-12);
  EXPECT_DOUBLE_EQ(t.step2_start(), 400e-12);
  EXPECT_DOUBLE_EQ(t.stop_after(1), 480e-12);
  EXPECT_DOUBLE_EQ(t.stop_after(2), 830e-12);
}

TEST(WriteTiming, PhaseArithmetic) {
  WriteTiming t;
  t.t_pulse = 40e-9;
  t.t_gap = 5e-9;
  EXPECT_DOUBLE_EQ(t.phase_start(0), 0.0);
  EXPECT_DOUBLE_EQ(t.phase_start(2), 90e-9);
  EXPECT_DOUBLE_EQ(t.phase_end(2), 130e-9);
  EXPECT_DOUBLE_EQ(t.stop_after(3), 140e-9);
}

TEST(LevelPlan, WaveformRealization) {
  const auto w = levels_waveform({{0.0, 0.0}, {1e-9, 1.0}, {3e-9, -0.5}},
                                 100e-12);
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.05e-9), 0.5);  // mid-edge
  EXPECT_DOUBLE_EQ(w.value(2.0e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.value(4.0e-9), -0.5);
  // Breakpoints at every corner.
  const auto bps = w.breakpoints(10e-9);
  EXPECT_EQ(bps.size(), 4u);
}

}  // namespace
}  // namespace fetcam::tcam
