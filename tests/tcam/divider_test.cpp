// Locks the calibrated 1.5T1Fe divider design in place: every stored/query
// corner must decide correctly and the Eq. 1 operating window must hold for
// both device flavours.
#include <gtest/gtest.h>

#include "eval/calibration.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::eval {
namespace {

class DividerTest : public ::testing::TestWithParam<tcam::Flavor> {};

TEST_P(DividerTest, AllSixCornersDecideCorrectly) {
  const auto points = characterize_divider(GetParam());
  ASSERT_EQ(points.size(), 6u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.correct)
        << "stored " << arch::to_char(p.stored) << " query " << p.query
        << " slb=" << p.v_slb << " ml=" << p.v_ml;
  }
}

TEST_P(DividerTest, SlbLevelsAreOrderedAcrossStates) {
  // Searching '0' (Eq. 2): slb('1') > slb('X') > slb('0') — the divider
  // discriminates monotonically in R_FE.
  const auto points = characterize_divider(GetParam());
  double v_on = 0.0, v_m = 0.0, v_off = 0.0;
  for (const auto& p : points) {
    if (p.query != 0) continue;
    if (p.stored == arch::Ternary::kOne) v_on = p.v_slb;
    if (p.stored == arch::Ternary::kX) v_m = p.v_slb;
    if (p.stored == arch::Ternary::kZero) v_off = p.v_slb;
  }
  EXPECT_GT(v_on, v_m + 0.05);
  EXPECT_GT(v_m, v_off);
}

TEST_P(DividerTest, MismatchSlbClearsTmlThresholdWithMargin) {
  const auto points = characterize_divider(GetParam());
  const auto r = extract_eq1_resistances(GetParam());
  for (const auto& p : points) {
    if (p.expect_match) {
      if (p.query == 0) {
        // Match legs through TN must sit below the TML threshold.
        EXPECT_LT(p.v_slb, r.tml_vth)
            << "stored " << arch::to_char(p.stored) << " q" << p.query;
      }
    } else {
      EXPECT_GT(p.v_slb, r.tml_vth - 0.02)
          << "stored " << arch::to_char(p.stored) << " q" << p.query;
    }
  }
}

TEST_P(DividerTest, Eq1OperatingWindowHolds) {
  const auto r = extract_eq1_resistances(GetParam());
  EXPECT_TRUE(r.functional())
      << "R_ON=" << r.r_on << " R_N=" << r.r_n << " R_M0=" << r.r_m0
      << " R_M1=" << r.r_m1 << " R_P=" << r.r_p << " R_OFF=" << r.r_off;
  // The FeFET state ladder itself is strictly ordered.
  EXPECT_LT(r.r_on, r.r_m0);
  EXPECT_LT(r.r_m0, r.r_off);
  EXPECT_LT(r.r_m1, r.r_p);
  EXPECT_GT(r.r_off, 100.0 * r.r_p);
}

INSTANTIATE_TEST_SUITE_P(Flavors, DividerTest,
                         ::testing::Values(tcam::Flavor::kSg,
                                           tcam::Flavor::kDg),
                         [](const auto& info) {
                           return info.param == tcam::Flavor::kSg ? "SG"
                                                                  : "DG";
                         });

TEST(DividerWorstCase, AllWildcardWordMatchesEverything) {
  // The hardest match-retention corner: every pair holds 'X' and every
  // divider leaks a little toward TML; the ML must stay above the SA trip
  // through both steps.  (This is the margin-limited corner of the DG
  // design discussed in EXPERIMENTS.md.)
  for (const auto design :
       {arch::TcamDesign::k1p5SgFe, arch::TcamDesign::k1p5DgFe}) {
    tcam::WordOptions opts;
    opts.n_bits = 16;
    tcam::SearchConfig cfg;
    cfg.stored = arch::word_from_string("XXXXXXXXXXXXXXXX");
    cfg.query = arch::bits_from_string("0000000000000000");
    const auto m = tcam::measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.measured_match) << arch::design_name(design);
  }
}

TEST(DividerWorstCase, AllOnesSearchedZeroDischargesFast) {
  // Every cell mismatching: the strongest aggregate discharge; must miss.
  for (const auto design :
       {arch::TcamDesign::k1p5SgFe, arch::TcamDesign::k1p5DgFe}) {
    tcam::WordOptions opts;
    opts.n_bits = 16;
    tcam::SearchConfig cfg;
    cfg.stored = arch::word_from_string("1111111111111111");
    cfg.query = arch::bits_from_string("0000000000000000");
    const auto m = tcam::measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_FALSE(m.measured_match);
    ASSERT_TRUE(m.latency.has_value());
    EXPECT_GT(*m.latency, 0.0);
  }
}

}  // namespace
}  // namespace fetcam::eval
