// Full-array validation: a complete M x N 1.5T1Fe circuit (every row live,
// shared column lines) must agree row-by-row with the behavioral model —
// this is the cross-check that the word-slice harnesses do not hide
// cross-row interactions.
#include <gtest/gtest.h>

#include <random>

#include "tcam/full_array.hpp"

namespace fetcam::tcam {
namespace {

using arch::BitWord;
using arch::TernaryWord;

std::vector<TernaryWord> stored_words(std::initializer_list<const char*> w) {
  std::vector<TernaryWord> out;
  for (const char* s : w) out.push_back(arch::word_from_string(s));
  return out;
}

TEST(FullArray, MixedRowsResolveIndependently) {
  FullArrayOptions opts;
  opts.rows = 4;
  opts.cols = 8;
  const auto stored = stored_words(
      {"01010101",    // exact match
       "11010101",    // step-1 miss (bit 0)
       "00010101",    // step-2 miss (bit 1)
       "XXXXXXXX"});  // wildcard match
  const auto query = arch::bits_from_string("01010101");
  const auto res = simulate_array_search(Flavor::kDg, opts, stored, query);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.rows.size(), 4u);
  EXPECT_TRUE(res.rows[0].measured_match);
  EXPECT_FALSE(res.rows[1].measured_match);
  EXPECT_FALSE(res.rows[2].measured_match);
  EXPECT_TRUE(res.rows[3].measured_match);
  EXPECT_TRUE(res.all_correct());
}

TEST(FullArray, SgFlavorAgreesToo) {
  FullArrayOptions opts;
  opts.rows = 3;
  opts.cols = 6;
  const auto stored = stored_words({"010101", "0101X1", "111111"});
  const auto query = arch::bits_from_string("010101");
  const auto res = simulate_array_search(Flavor::kSg, opts, stored, query);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.all_correct());
  EXPECT_TRUE(res.rows[0].measured_match);
  EXPECT_TRUE(res.rows[1].measured_match);
  EXPECT_FALSE(res.rows[2].measured_match);
}

TEST(FullArray, SharedColumnLinesDoNotCoupleRows) {
  // A row full of mismatches (heavy divider currents) next to a matching
  // row on the SAME column lines must not corrupt the matching row.
  FullArrayOptions opts;
  opts.rows = 3;
  opts.cols = 8;
  const auto stored = stored_words({"11111111", "01010101", "11111111"});
  const auto query = arch::bits_from_string("01010101");
  const auto res = simulate_array_search(Flavor::kDg, opts, stored, query);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.rows[0].measured_match);
  EXPECT_TRUE(res.rows[1].measured_match);
  EXPECT_FALSE(res.rows[2].measured_match);
  EXPECT_GT(res.rows[1].v_ml_latched, 0.5);
}

TEST(FullArray, RandomContentsAgreeWithGoldenRule) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> digit(0, 2);
  std::uniform_int_distribution<int> bit(0, 1);
  for (int trial = 0; trial < 2; ++trial) {
    FullArrayOptions opts;
    opts.rows = 4;
    opts.cols = 6;
    std::vector<TernaryWord> stored;
    for (int r = 0; r < opts.rows; ++r) {
      TernaryWord w;
      for (int c = 0; c < opts.cols; ++c) {
        w.push_back(static_cast<arch::Ternary>(digit(rng)));
      }
      stored.push_back(w);
    }
    BitWord query;
    for (int c = 0; c < opts.cols; ++c) {
      query.push_back(static_cast<std::uint8_t>(bit(rng)));
    }
    const auto res = simulate_array_search(Flavor::kDg, opts, stored, query);
    ASSERT_TRUE(res.ok) << res.error;
    for (int r = 0; r < opts.rows; ++r) {
      EXPECT_EQ(res.rows[static_cast<std::size_t>(r)].measured_match,
                res.rows[static_cast<std::size_t>(r)].expected_match)
          << "trial " << trial << " row " << r << " stored "
          << arch::to_string(stored[static_cast<std::size_t>(r)]) << " query "
          << arch::to_string(query);
    }
  }
}

TEST(FullArray, ValidatesInput) {
  FullArrayOptions opts;
  opts.cols = 5;  // odd
  EXPECT_THROW(OnePointFiveArray(Flavor::kDg, opts), std::invalid_argument);
  opts.cols = 4;
  OnePointFiveArray arr(Flavor::kDg, opts);
  EXPECT_THROW(arr.build_search({}, arch::bits_from_string("0101"), {}),
               std::invalid_argument);
}

TEST(FullArray, OneShot) {
  FullArrayOptions opts;
  opts.rows = 1;
  opts.cols = 2;
  OnePointFiveArray arr(Flavor::kDg, opts);
  const auto stored = stored_words({"01"});
  arr.build_search(stored, arch::bits_from_string("01"), {});
  EXPECT_THROW(arr.build_search(stored, arch::bits_from_string("01"), {}),
               std::logic_error);
}

TEST(TwoFefetArray, MixedRowsResolveIndependently) {
  FullArrayOptions opts;
  opts.rows = 4;
  opts.cols = 8;
  const auto stored = stored_words(
      {"01010101", "11010101", "0101010X", "XXXXXXXX"});
  const auto query = arch::bits_from_string("01010101");
  for (const auto flavor : {Flavor::kSg, Flavor::kDg}) {
    const auto res =
        simulate_two_fefet_array_search(flavor, opts, stored, query);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.rows[0].measured_match);
    EXPECT_FALSE(res.rows[1].measured_match);
    EXPECT_TRUE(res.rows[2].measured_match);
    EXPECT_TRUE(res.rows[3].measured_match);
    EXPECT_TRUE(res.all_correct());
  }
}

TEST(TwoFefetArray, SharedSearchLinesDoNotCoupleRows) {
  FullArrayOptions opts;
  opts.rows = 3;
  opts.cols = 8;
  const auto stored = stored_words({"11111111", "01010101", "11111111"});
  const auto query = arch::bits_from_string("01010101");
  const auto res =
      simulate_two_fefet_array_search(Flavor::kDg, opts, stored, query);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.rows[0].measured_match);
  EXPECT_TRUE(res.rows[1].measured_match);
  EXPECT_FALSE(res.rows[2].measured_match);
}

TEST(TwoFefetArray, OneShotAndValidation) {
  FullArrayOptions opts;
  opts.rows = 1;
  opts.cols = 2;
  TwoFefetArray arr(Flavor::kSg, opts);
  const auto stored = stored_words({"01"});
  arr.build_search(stored, arch::bits_from_string("01"), {});
  EXPECT_THROW(arr.build_search(stored, arch::bits_from_string("01"), {}),
               std::logic_error);
  TwoFefetArray arr2(Flavor::kSg, opts);
  EXPECT_THROW(arr2.build_search({}, arch::bits_from_string("01"), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::tcam
