// Word-harness construction invariants: one-shot enforcement, netlist
// sanity, design metadata, timing/waveform programming.
#include <gtest/gtest.h>

#include "spice/netlist.hpp"
#include "tcam/cell_1p5t1fe.hpp"
#include "tcam/cmos16t.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::TcamDesign;

SearchConfig simple_search(int n) {
  SearchConfig cfg;
  for (int i = 0; i < n; ++i) {
    cfg.stored.push_back(arch::Ternary::kZero);
    cfg.query.push_back(0);
  }
  return cfg;
}

class HarnessTest : public ::testing::TestWithParam<TcamDesign> {};

TEST_P(HarnessTest, OneShotBuildEnforced) {
  WordOptions opts;
  opts.n_bits = 4;
  auto h = make_word_harness(GetParam(), opts);
  h->build_search(simple_search(4));
  EXPECT_THROW(h->build_search(simple_search(4)), std::logic_error);
}

TEST_P(HarnessTest, RejectsSizeMismatches) {
  WordOptions opts;
  opts.n_bits = 8;
  auto h = make_word_harness(GetParam(), opts);
  EXPECT_THROW(h->build_search(simple_search(4)), std::invalid_argument);
}

TEST_P(HarnessTest, NoFloatingNodesInSearchNetlist) {
  WordOptions opts;
  opts.n_bits = 4;
  auto h = make_word_harness(GetParam(), opts);
  h->build_search(simple_search(4));
  const auto floating = spice::find_floating_nodes(h->circuit());
  EXPECT_TRUE(floating.empty())
      << arch::design_name(GetParam()) << ": " << floating.front();
}

TEST_P(HarnessTest, MetadataIsConsistent) {
  WordOptions opts;
  opts.n_bits = 4;
  auto h = make_word_harness(GetParam(), opts);
  EXPECT_GT(h->cell_pitch(), 0.0);
  EXPECT_LT(h->cell_pitch(), 1e-6);
  EXPECT_GE(h->search_steps(), 1);
  EXPECT_LE(h->search_steps(), 2);
  EXPECT_EQ(h->design_name(), arch::design_name(GetParam()));
}

TEST_P(HarnessTest, SearchBuildExposesMlAndSaNodes) {
  WordOptions opts;
  opts.n_bits = 4;
  auto h = make_word_harness(GetParam(), opts);
  h->build_search(simple_search(4));
  EXPECT_GT(h->ml_sense_node(), 0);
  EXPECT_GT(h->sa_out_node(), 0);
  EXPECT_GT(h->t_stop(), 0.0);
  EXPECT_GT(h->suggested_dt(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, HarnessTest,
    ::testing::Values(TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                      TcamDesign::k2DgFefet, TcamDesign::k1p5SgFe,
                      TcamDesign::k1p5DgFe),
    [](const ::testing::TestParamInfo<TcamDesign>& info) {
      std::string n = arch::design_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Harness, OnePointFiveRequiresEvenWidth) {
  WordOptions opts;
  opts.n_bits = 5;
  EXPECT_THROW(OnePointFiveWord(Flavor::kDg, opts), std::invalid_argument);
}

TEST(Harness, OnePointFiveStepCount) {
  WordOptions opts;
  opts.n_bits = 4;
  OnePointFiveWord w(Flavor::kDg, opts);
  EXPECT_EQ(w.search_steps(), 2);
  EXPECT_EQ(w.write_phases(), 3);
  EXPECT_THROW(w.build_search(
                   {arch::word_from_string("0000"),
                    arch::bits_from_string("0000"), {}, /*steps=*/3}),
               std::invalid_argument);
}

TEST(Harness, VmMatchesPaperLevels) {
  WordOptions opts;
  opts.n_bits = 2;
  OnePointFiveWord dg(Flavor::kDg, opts);
  OnePointFiveWord sg(Flavor::kSg, opts);
  EXPECT_NEAR(dg.vm(), 1.6, 0.15);  // paper: 1.6 V
  EXPECT_NEAR(sg.vm(), 3.2, 0.30);  // paper: 3.2 V
  EXPECT_NEAR(dg.select_voltage(), 2.0, 1e-12);  // co-optimized with Vw
  EXPECT_NEAR(sg.select_voltage(), 0.8, 1e-12);
}

TEST(Harness, TwoFefetSearchVoltages) {
  WordOptions opts;
  opts.n_bits = 2;
  TwoFefetWord sg(Flavor::kSg, opts);
  TwoFefetWord dg(Flavor::kDg, opts);
  EXPECT_LT(sg.search_voltage(), 0.8);  // conservative FG read
  EXPECT_NEAR(dg.search_voltage(), 2.0, 1e-12);  // Table I V_s
}

TEST(Harness, CellPitchTracksAreaModel) {
  WordOptions opts;
  opts.n_bits = 2;
  TwoFefetWord sg(Flavor::kSg, opts);
  EXPECT_NEAR(sg.cell_pitch(),
              arch::cell_pitch_m(arch::TcamDesign::k2SgFefet), 1e-15);
  OnePointFiveWord dg(Flavor::kDg, opts);
  EXPECT_NEAR(dg.cell_pitch(),
              arch::cell_pitch_m(arch::TcamDesign::k1p5DgFe), 1e-15);
}

TEST(Harness, DuplicateHarnessesAreIndependent) {
  WordOptions opts;
  opts.n_bits = 4;
  auto a = make_word_harness(TcamDesign::k1p5DgFe, opts);
  auto b = make_word_harness(TcamDesign::k1p5DgFe, opts);
  a->build_search(simple_search(4));
  // b is still buildable with a different configuration.
  SearchConfig cfg = simple_search(4);
  cfg.stored = arch::word_from_string("1X0X");
  EXPECT_NO_THROW(b->build_search(cfg));
}

}  // namespace
}  // namespace fetcam::tcam
