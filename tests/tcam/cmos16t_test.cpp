// 16T CMOS baseline specifics: X encoding (both SRAM bits low), compare
// stack behaviour, and its speed advantage over the FeFET designs.
#include <gtest/gtest.h>

#include "tcam/cmos16t.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::TcamDesign;

SearchMeasurement run16t(const std::string& stored, const std::string& query,
                         spice::Trace* trace = nullptr) {
  WordOptions opts;
  opts.n_bits = static_cast<int>(stored.size());
  SearchConfig cfg;
  cfg.stored = arch::word_from_string(stored);
  cfg.query = arch::bits_from_string(query);
  return measure_search(TcamDesign::kCmos16T, opts, cfg, trace);
}

TEST(Cmos16t, XDisablesBothStacks) {
  // An all-X word matches both all-zeros and all-ones queries: with both
  // SRAM bits low neither stack can discharge the ML.
  for (const std::string q : {"0000", "1111", "0101"}) {
    const auto m = run16t("XXXX", q);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.measured_match) << q;
  }
}

TEST(Cmos16t, StoredReadBack) {
  WordOptions opts;
  opts.n_bits = 4;
  Cmos16tWord w(opts);
  SearchConfig cfg;
  cfg.stored = arch::word_from_string("01X0");
  cfg.query = arch::bits_from_string("0100");
  w.build_search(cfg);
  EXPECT_EQ(arch::to_string(w.read_stored()), "01X0");
}

TEST(Cmos16t, FasterThanEveryFefetDesign) {
  const auto lat = [&](TcamDesign d) {
    WordOptions opts;
    opts.n_bits = 16;
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("1101010101010101");
    cfg.query = arch::bits_from_string("0101010101010101");
    const auto m = measure_search(d, opts, cfg);
    EXPECT_TRUE(m.ok) << m.error;
    return m.latency.value_or(1e9);
  };
  const double t16 = lat(TcamDesign::kCmos16T);
  for (const auto d : {TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
                       TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe}) {
    EXPECT_LT(t16, lat(d)) << arch::design_name(d);
  }
}

TEST(Cmos16t, StackIntermediateNodeDoesNotFalseDischarge) {
  // A matching cell whose SL is high but whose stored bit gates the lower
  // stack device off: only the intermediate node charges, the ML holds.
  const auto m = run16t("0000", "0000");  // SL high on every cell, qt low
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.measured_match);
  // And the mirrored polarity.
  const auto m2 = run16t("1111", "1111");
  ASSERT_TRUE(m2.ok) << m2.error;
  EXPECT_TRUE(m2.measured_match);
}

TEST(Cmos16t, SingleStepOnly) {
  WordOptions opts;
  opts.n_bits = 4;
  Cmos16tWord w(opts);
  SearchConfig cfg;
  cfg.stored = arch::word_from_string("0000");
  cfg.query = arch::bits_from_string("0000");
  cfg.steps = 2;
  EXPECT_THROW(w.build_search(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::tcam
