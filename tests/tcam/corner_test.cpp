// Process-corner robustness: the designs must decide correctly at the SS
// and FF global corners, and the corner shifts must move latency the
// expected way (slow corner = weaker drive = slower discharge).
#include <gtest/gtest.h>

#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::TcamDesign;
using dev::tech14::Corner;

class CornerTest
    : public ::testing::TestWithParam<std::tuple<TcamDesign, Corner>> {};

TEST_P(CornerTest, SearchDecidesCorrectly) {
  const auto [design, corner] = GetParam();
  WordOptions opts;
  opts.n_bits = 8;
  opts.corner = corner;
  {
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("01X00110");
    cfg.query = arch::bits_from_string("01000110");
    const auto m = measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.measured_match);
  }
  {
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("11X00110");
    cfg.query = arch::bits_from_string("01000110");
    const auto m = measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_FALSE(m.measured_match);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, CornerTest,
    ::testing::Combine(::testing::Values(TcamDesign::k2SgFefet,
                                         TcamDesign::k1p5SgFe,
                                         TcamDesign::k1p5DgFe),
                       ::testing::Values(Corner::kSlow, Corner::kTypical,
                                         Corner::kFast)),
    [](const ::testing::TestParamInfo<std::tuple<TcamDesign, Corner>>& info) {
      std::string n = arch::design_name(std::get<0>(info.param)) + "_";
      switch (std::get<1>(info.param)) {
        case Corner::kSlow: n += "SS"; break;
        case Corner::kTypical: n += "TT"; break;
        case Corner::kFast: n += "FF"; break;
      }
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(CornerLatency, SlowCornerIsSlower) {
  const auto latency = [&](Corner corner) {
    WordOptions opts;
    opts.n_bits = 16;
    opts.corner = corner;
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("1101010101010101");
    cfg.query = arch::bits_from_string("0101010101010101");
    const auto m = measure_search(TcamDesign::k2SgFefet, opts, cfg);
    EXPECT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.latency.has_value());
    return m.latency.value_or(0.0);
  };
  const double ss = latency(Corner::kSlow);
  const double tt = latency(Corner::kTypical);
  const double ff = latency(Corner::kFast);
  EXPECT_GT(ss, tt);
  EXPECT_GT(tt, ff);
}

TEST(CornerCards, ShiftsAreSymmetricAroundTypical) {
  const auto nom = dev::tech14::nfet();
  const auto ss = dev::tech14::at_corner(nom, Corner::kSlow);
  const auto ff = dev::tech14::at_corner(nom, Corner::kFast);
  const auto tt = dev::tech14::at_corner(nom, Corner::kTypical);
  EXPECT_DOUBLE_EQ(tt.vth0, nom.vth0);
  EXPECT_NEAR(ss.vth0 - nom.vth0, nom.vth0 - ff.vth0, 1e-12);
  EXPECT_GT(ss.vth0, ff.vth0);
  EXPECT_LT(ss.u0, ff.u0);
}

}  // namespace
}  // namespace fetcam::tcam
