// Temperature robustness: the calibrated designs must keep deciding
// correctly across the industrial temperature range (the device cards
// shift V_TH, mobility, and subthreshold slope with T).
#include <gtest/gtest.h>

#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::TcamDesign;

class TemperatureTest
    : public ::testing::TestWithParam<std::tuple<TcamDesign, int>> {};

TEST_P(TemperatureTest, SearchDecidesCorrectly) {
  const auto [design, kelvin] = GetParam();
  WordOptions opts;
  opts.n_bits = 8;
  opts.temperature_k = kelvin;
  // One matching and one mismatching scenario per temperature.
  {
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("01X00110");
    cfg.query = arch::bits_from_string("01000110");
    const auto m = measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.measured_match) << "T=" << kelvin;
  }
  {
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("11X00110");
    cfg.query = arch::bits_from_string("01000110");
    const auto m = measure_search(design, opts, cfg);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_FALSE(m.measured_match) << "T=" << kelvin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, TemperatureTest,
    ::testing::Combine(::testing::Values(TcamDesign::k2SgFefet,
                                         TcamDesign::k1p5SgFe,
                                         TcamDesign::k1p5DgFe),
                       ::testing::Values(260, 300, 340)),
    [](const ::testing::TestParamInfo<std::tuple<TcamDesign, int>>& info) {
      std::string n = arch::design_name(std::get<0>(info.param)) + "_" +
                      std::to_string(std::get<1>(info.param)) + "K";
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Temperature, HotWriteStillLandsAllStates) {
  WordOptions opts;
  opts.n_bits = 4;
  opts.temperature_k = 350.0;
  WriteConfig cfg;
  cfg.data = arch::word_from_string("01X0");
  cfg.initial = arch::word_from_string("10X1");
  const auto m = measure_write(arch::TcamDesign::k1p5DgFe, opts, cfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.data_ok) << arch::to_string(m.final_state);
}

TEST(Temperature, LeakageGrowsWithT) {
  // The match-case ML droop rate (pure leakage) must grow from cold to hot.
  const auto droop = [&](double kelvin) {
    WordOptions opts;
    opts.n_bits = 8;
    opts.temperature_k = kelvin;
    SearchConfig cfg;
    cfg.stored = arch::word_from_string("XXXXXXXX");
    cfg.query = arch::bits_from_string("00000000");
    spice::Trace trace;
    const auto m =
        measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg, &trace);
    EXPECT_TRUE(m.ok) << m.error;
    const double v0 = trace.voltage_at_time("ml3", 0.3e-9);
    const double v1 = trace.voltage_at_time("ml3", 1.0e-9);
    return v0 - v1;
  };
  EXPECT_GT(droop(340.0), droop(260.0));
}

}  // namespace
}  // namespace fetcam::tcam
