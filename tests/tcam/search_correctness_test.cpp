// Circuit-vs-golden search correctness: every design's word harness must
// reproduce the ternary match rule for arbitrary stored/query combinations.
#include <gtest/gtest.h>

#include <random>

#include "tcam/sim_harness.hpp"

namespace fetcam::tcam {
namespace {

using arch::BitWord;
using arch::TcamDesign;
using arch::TernaryWord;

const std::vector<TcamDesign> kAllDesigns = {
    TcamDesign::kCmos16T, TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
    TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe};

SearchMeasurement run(TcamDesign d, const std::string& stored,
                      const std::string& query) {
  WordOptions opts;
  opts.n_bits = static_cast<int>(stored.size());
  SearchConfig cfg;
  cfg.stored = arch::word_from_string(stored);
  cfg.query = arch::bits_from_string(query);
  return measure_search(d, opts, cfg);
}

// ---- parameterized over designs -----------------------------------------

class DesignSearchTest : public ::testing::TestWithParam<TcamDesign> {};

TEST_P(DesignSearchTest, ExactMatchStaysHigh) {
  const auto m = run(GetParam(), "01100110", "01100110");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.expected_match);
  EXPECT_TRUE(m.measured_match);
}

TEST_P(DesignSearchTest, OneCellMismatchDischarges) {
  const auto m = run(GetParam(), "01100110", "11100110");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_FALSE(m.expected_match);
  EXPECT_FALSE(m.measured_match);
  EXPECT_TRUE(m.latency.has_value());
}

TEST_P(DesignSearchTest, WildcardsMatchEitherPolarity) {
  for (const std::string q : {"00000000", "11111111", "01010101"}) {
    const auto m = run(GetParam(), "XXXXXXXX", q);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_TRUE(m.measured_match) << "query " << q;
  }
}

TEST_P(DesignSearchTest, MixedWildcardsRespectLiterals) {
  const auto hit = run(GetParam(), "0XX1XX10", "00110010");
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.measured_match);
  const auto miss = run(GetParam(), "0XX1XX10", "00100010");  // literal 1->0
  ASSERT_TRUE(miss.ok) << miss.error;
  EXPECT_FALSE(miss.measured_match);
}

TEST_P(DesignSearchTest, AllZeroAndAllOneWords) {
  const auto m0 = run(GetParam(), "00000000", "00000000");
  ASSERT_TRUE(m0.ok) << m0.error;
  EXPECT_TRUE(m0.measured_match);
  const auto m1 = run(GetParam(), "11111111", "11111111");
  ASSERT_TRUE(m1.ok) << m1.error;
  EXPECT_TRUE(m1.measured_match);
  const auto mm = run(GetParam(), "00000000", "11111111");
  ASSERT_TRUE(mm.ok) << mm.error;
  EXPECT_FALSE(mm.measured_match);
}

TEST_P(DesignSearchTest, EnergyBucketsArePositive) {
  const auto m = run(GetParam(), "01100110", "11100110");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.energy.precharge, 0.0);
  EXPECT_GT(m.energy.sense_amp, 0.0);
  EXPECT_GT(m.energy.total(), 0.0);
  EXPECT_GT(m.energy_per_cell, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignSearchTest, ::testing::ValuesIn(kAllDesigns),
    [](const ::testing::TestParamInfo<TcamDesign>& info) {
      std::string n = arch::design_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---- mismatch position sweep (1.5T1Fe step semantics) --------------------

class MismatchPositionTest
    : public ::testing::TestWithParam<std::tuple<TcamDesign, int>> {};

TEST_P(MismatchPositionTest, DetectedAtAnyPosition) {
  const auto [design, pos] = GetParam();
  std::string stored = "01010101";
  std::string query = stored;
  // Flip the query bit at `pos` against a literal stored digit.
  query[static_cast<std::size_t>(pos)] =
      query[static_cast<std::size_t>(pos)] == '0' ? '1' : '0';
  const auto m = run(design, stored, query);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_FALSE(m.measured_match) << "pos " << pos;
}

INSTANTIATE_TEST_SUITE_P(
    Positions, MismatchPositionTest,
    ::testing::Combine(::testing::Values(TcamDesign::k1p5SgFe,
                                         TcamDesign::k1p5DgFe,
                                         TcamDesign::k2SgFefet),
                       ::testing::Values(0, 1, 3, 4, 6, 7)));

// ---- randomized property sweep -------------------------------------------

class RandomSearchTest
    : public ::testing::TestWithParam<std::tuple<TcamDesign, int>> {};

TEST_P(RandomSearchTest, AgreesWithGoldenRule) {
  const auto [design, seed] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed) * 1299709u + 3u);
  std::uniform_int_distribution<int> digit(0, 2);
  std::uniform_int_distribution<int> bit(0, 1);
  std::string stored, query;
  for (int c = 0; c < 8; ++c) {
    stored.push_back("01X"[digit(rng)]);
    query.push_back("01"[bit(rng)]);
  }
  const auto m = run(design, stored, query);
  ASSERT_TRUE(m.ok) << m.error << " stored=" << stored << " query=" << query;
  EXPECT_EQ(m.measured_match, m.expected_match)
      << "stored=" << stored << " query=" << query;
}

INSTANTIATE_TEST_SUITE_P(
    Random, RandomSearchTest,
    ::testing::Combine(::testing::ValuesIn(kAllDesigns),
                       ::testing::Range(0, 4)));

// ---- early termination semantics -----------------------------------------

TEST(EarlyTermination, OneStepSearchIgnoresCell2Mismatch) {
  // Mismatch only at an odd (cell2) position: a 1-step search must match.
  WordOptions opts;
  opts.n_bits = 8;
  SearchConfig cfg;
  cfg.stored = arch::word_from_string("01010101");
  cfg.query = arch::bits_from_string("00010101");  // bit 1 mismatches
  cfg.steps = 1;
  const auto m = measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.expected_match);   // per 1-step semantics
  EXPECT_TRUE(m.measured_match);   // SeL_b never raised
  // The same search with both steps must miss.
  cfg.steps = 2;
  const auto m2 = measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
  ASSERT_TRUE(m2.ok) << m2.error;
  EXPECT_FALSE(m2.measured_match);
}

TEST(EarlyTermination, SavesSearchSignalEnergy) {
  WordOptions opts;
  opts.n_bits = 16;
  SearchConfig cfg;
  cfg.stored = arch::word_from_string("1101010101010101");
  cfg.query = arch::bits_from_string("0101010101010101");  // step-1 miss
  cfg.steps = 1;
  const auto e1 = measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
  cfg.steps = 2;
  // Step-2 miss variant.
  cfg.stored = arch::word_from_string("0001010101010101");
  cfg.query = arch::bits_from_string("0101010101010101");
  const auto e2 = measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
  ASSERT_TRUE(e1.ok) << e1.error;
  ASSERT_TRUE(e2.ok) << e2.error;
  EXPECT_LT(e1.energy_per_cell, e2.energy_per_cell);
}

}  // namespace
}  // namespace fetcam::tcam
