// Pareto utilities: exact dominance semantics (including the NaN/inf and
// duplicate-vector rules the sweep relies on) and the deterministic QMC
// hypervolume estimate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dse/pareto.hpp"

namespace fetcam::dse {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Dominates, StrictInOneWeakInAll) {
  EXPECT_TRUE(dominates({1, 1, 1, 1}, {2, 1, 1, 1}));
  EXPECT_TRUE(dominates({1, 1, 1, 1}, {2, 2, 2, 2}));
  EXPECT_FALSE(dominates({1, 1, 1, 1}, {1, 1, 1, 1}));  // equal: no
  EXPECT_FALSE(dominates({1, 2, 1, 1}, {2, 1, 1, 1}));  // trade-off: no
}

TEST(Dominates, NonFiniteNeverDominates) {
  EXPECT_FALSE(dominates({kInf, 0, 0, 0}, {1, 1, 1, 1}));
  EXPECT_FALSE(dominates({std::nan(""), 0, 0, 0}, {1, 1, 1, 1}));
  // ...but a finite point dominates an inf one.
  EXPECT_TRUE(dominates({1, 1, 1, 1}, {kInf, kInf, kInf, kInf}));
}

TEST(ParetoFront, KeepsExactlyTheNonDominated) {
  const std::vector<ObjVec> objs = {
      {1, 4, 1, 1},  // frontier (best obj0)
      {4, 1, 1, 1},  // frontier (best obj1)
      {2, 2, 1, 1},  // frontier (trade-off)
      {3, 3, 1, 1},  // dominated by {2,2,1,1}
      {kInf, kInf, kInf, kInf},  // failed point, never enters
  };
  const auto front = pareto_front(objs);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, DuplicateVectorsKeepOnlyTheFirst) {
  const std::vector<ObjVec> objs = {
      {1, 1, 1, 1},
      {1, 1, 1, 1},
      {2, 2, 2, 2},
  };
  EXPECT_EQ(pareto_front(objs), (std::vector<std::size_t>{0}));
}

TEST(ReferencePoint, InflatesFiniteMax) {
  const std::vector<ObjVec> objs = {
      {1, 10, 100, 0.5},
      {2, 5, 50, 1.0},
      {kInf, kInf, kInf, kInf},
  };
  const ObjVec ref = reference_point(objs);
  EXPECT_DOUBLE_EQ(ref[0], 2.2);
  EXPECT_DOUBLE_EQ(ref[1], 11.0);
  EXPECT_DOUBLE_EQ(ref[2], 110.0);
  EXPECT_DOUBLE_EQ(ref[3], 1.1);
}

TEST(DominatedVolume, BoundsAndMonotonicity) {
  const ObjVec ref = {1, 1, 1, 1};
  EXPECT_EQ(dominated_volume({}, ref), 0.0);
  // The origin dominates the whole box.
  EXPECT_DOUBLE_EQ(dominated_volume({{0, 0, 0, 0}}, ref), 1.0);
  // A mid-box point dominates 1/16 of it (QMC converges to it).
  const double mid = dominated_volume({{0.5, 0.5, 0.5, 0.5}}, ref, 16384);
  EXPECT_NEAR(mid, 1.0 / 16.0, 0.01);
  // Adding a frontier point can only grow the volume.
  const double two =
      dominated_volume({{0.5, 0.5, 0.5, 0.5}, {0.1, 0.9, 0.9, 0.9}}, ref,
                       16384);
  EXPECT_GE(two, mid);
  // Deterministic: same inputs, same bits.
  EXPECT_EQ(dominated_volume({{0.5, 0.5, 0.5, 0.5}}, ref, 16384), mid);
}

}  // namespace
}  // namespace fetcam::dse
