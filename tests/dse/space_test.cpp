// DesignSpace contract: grid enumeration is canonical and complete,
// validation names the broken axis, the low-discrepancy sampler is a
// deterministic deduplicated function of (space, n, seed), and the
// feature map normalizes every knob into [0, 1].
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "dse/design_space.hpp"

namespace fetcam::dse {
namespace {

DesignSpace tiny_space() {
  DesignSpace s;
  s.designs = {arch::TcamDesign::k2SgFefet, arch::TcamDesign::k1p5DgFe};
  s.t_fe_scale = {0.8, 1.0};
  s.vdd = {0.8};
  s.control_w_scale = {1.0};
  s.sense_trim_v = {0.0};
  s.rows = {4, 16};
  s.word_bits = {8};
  s.mats = {1};
  s.digit_bits = {1, 2};
  return s;
}

TEST(DesignSpace, GridSizeIsAxisProduct) {
  EXPECT_EQ(tiny_space().grid_size(), 2u * 2u * 2u * 2u);
  EXPECT_EQ(default_space().grid_size(), 256u);
}

TEST(DesignSpace, GridEnumeratesEveryPointExactlyOnce) {
  const DesignSpace s = tiny_space();
  const auto pts = s.grid_points();
  ASSERT_EQ(pts.size(), s.grid_size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_FALSE(pts[i] == pts[j]) << "duplicate at " << i << ", " << j;
    }
  }
  // digit_bits is the fastest axis in the canonical order.
  EXPECT_EQ(pts[0].digit_bits, 1);
  EXPECT_EQ(pts[1].digit_bits, 2);
  EXPECT_EQ(pts[0].design, pts[1].design);
}

TEST(DesignSpace, ValidateNamesTheBrokenAxis) {
  DesignSpace s = tiny_space();
  s.digit_bits = {4};
  try {
    s.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("digit_bits"), std::string::npos);
  }

  DesignSpace empty = tiny_space();
  empty.vdd.clear();
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  DesignSpace cmos = tiny_space();
  cmos.designs = {arch::TcamDesign::kCmos16T};
  EXPECT_THROW(cmos.validate(), std::invalid_argument);
}

TEST(DesignSpace, SamplingIsDeterministicAndDeduplicated) {
  const DesignSpace s = tiny_space();
  const auto a = s.sample_points(8, 42);
  const auto b = s.sample_points(8, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "seed-stable sample diverged at " << i;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_FALSE(a[i] == a[j]) << "duplicate sample at " << i << ", " << j;
    }
  }
  // Asking for more points than the grid holds saturates at the grid.
  EXPECT_LE(s.sample_points(1000, 42).size(), s.grid_size());
  EXPECT_EQ(s.sample_points(1000, 42).size(), s.grid_size());
}

TEST(DesignSpace, SeedsDecorrelate) {
  const DesignSpace s = default_space();
  const auto a = s.sample_points(32, 1);
  const auto b = s.sample_points(32, 2);
  ASSERT_EQ(a.size(), b.size());
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(DesignSpace, FeaturesNormalizedAndNamed) {
  const DesignSpace s = default_space();
  const auto names = s.feature_names();
  for (const auto& p : s.grid_points()) {
    const auto f = s.features(p);
    ASSERT_EQ(f.size(), names.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_GE(f[i], 0.0) << names[i];
      EXPECT_LE(f[i], 1.0) << names[i];
    }
  }
}

TEST(DesignSpace, ParseSpaceRoundTrip) {
  const DesignSpace s = parse_space(
      "# comment line\n"
      "design = 2sg 1p5dg\n"
      "t_fe_scale = 0.8 1.0\n"
      "vdd = 0.8\n"
      "control_w_scale = 1.0\n"
      "sense_trim_v = 0.0\n"
      "rows = 4 16   # trailing comment\n"
      "word_bits = 8\n"
      "mats = 1\n"
      "digit_bits = 1 2\n");
  EXPECT_EQ(s.grid_size(), tiny_space().grid_size());
  EXPECT_THROW(parse_space("nonsense = 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_space("vdd 0.8\n"), std::invalid_argument);
  EXPECT_THROW(parse_space("design = warp9\n"), std::invalid_argument);
}

TEST(DesignSpace, FlavorNamesRoundTrip) {
  for (arch::TcamDesign d :
       {arch::TcamDesign::k2SgFefet, arch::TcamDesign::k2DgFefet,
        arch::TcamDesign::k1p5SgFe, arch::TcamDesign::k1p5DgFe}) {
    EXPECT_EQ(flavor_from_name(flavor_name(d)), d);
  }
  EXPECT_THROW(flavor_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::dse
