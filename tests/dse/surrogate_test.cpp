// Surrogate contract: refuses to predict before the fit is well-posed,
// recovers a planted quadratic, and the optimistic bound actually bounds
// (prediction minus margin never exceeds the prediction, and widens with
// k_margin).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dse/surrogate.hpp"
#include "util/rng.hpp"

namespace fetcam::dse {
namespace {

/// Deterministic pseudo-uniform in [0,1) from (seed, i, stream).
double u01(std::uint64_t seed, std::uint64_t i, std::uint64_t stream) {
  return static_cast<double>(util::trial_key(seed, i, stream) >> 11) *
         0x1.0p-53;
}

TEST(Surrogate, NotReadyBeforeMinSamples) {
  QuadraticSurrogate s(3);
  EXPECT_FALSE(s.ready());
  for (std::size_t i = 0; i + 1 < s.min_samples_to_fit(); ++i) {
    s.add_sample({0.1, 0.2, 0.3}, {1, 1, 1, 0.5});
    EXPECT_FALSE(s.fit());
  }
  s.add_sample({0.4, 0.5, 0.6}, {2, 2, 2, 0.25});
  EXPECT_TRUE(s.fit());
  EXPECT_TRUE(s.ready());
}

TEST(Surrogate, RecoversPlantedQuadratic) {
  const std::size_t k = 3;
  QuadraticSurrogate s(k, /*ridge=*/1e-6);
  // Plant a smooth positive response per objective and sample it on a
  // deterministic scattered set.
  auto truth = [](const std::vector<double>& x, std::size_t obj) {
    const double t = 0.3 * x[0] + 0.5 * x[1] * x[1] - 0.2 * x[2] +
                     0.1 * static_cast<double>(obj);
    return obj < 3 ? std::exp(t) : std::min(1.0, std::max(0.0, 0.5 * t + 0.3));
  };
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::vector<double> x = {u01(9, i, 0), u01(9, i, 1), u01(9, i, 2)};
    ObjVec y{};
    for (std::size_t obj = 0; obj < 4; ++obj) y[obj] = truth(x, obj);
    s.add_sample(x, y);
  }
  ASSERT_TRUE(s.fit());
  // Held-out points: prediction within a few percent (the planted model
  // is inside the basis for objs 0-2 up to the missing cross terms).
  for (std::uint64_t i = 100; i < 110; ++i) {
    std::vector<double> x = {u01(9, i, 0), u01(9, i, 1), u01(9, i, 2)};
    const ObjVec p = s.predict(x);
    for (std::size_t obj = 0; obj < 3; ++obj) {
      EXPECT_NEAR(p[obj] / truth(x, obj), 1.0, 0.10) << "obj " << obj;
    }
    EXPECT_NEAR(p[3], truth(x, 3), 0.05);
  }
}

TEST(Surrogate, OptimisticBoundsPredictionAndWidensWithMargin) {
  QuadraticSurrogate s(2);
  for (std::uint64_t i = 0; i < 32; ++i) {
    std::vector<double> x = {u01(3, i, 0), u01(3, i, 1)};
    s.add_sample(x, {10.0 + x[0], 1.0 + x[1], 2.0, 0.5 * x[0]});
  }
  ASSERT_TRUE(s.fit());
  const std::vector<double> x = {0.4, 0.6};
  const ObjVec p = s.predict(x);
  const ObjVec o1 = s.optimistic(x, 1.0);
  const ObjVec o2 = s.optimistic(x, 3.0);
  for (std::size_t obj = 0; obj < 4; ++obj) {
    EXPECT_LE(o1[obj], p[obj]) << "obj " << obj;
    EXPECT_LE(o2[obj], o1[obj]) << "obj " << obj;
    EXPECT_GE(o2[obj], 0.0) << "obj " << obj;  // physical floor
  }
}

TEST(Surrogate, SensitivityMatchesPlantedSlopes) {
  QuadraticSurrogate s(2, /*ridge=*/1e-6);
  // Yield-loss objective is linear-fit: plant loss = 0.8*x0 + 0.05*x1.
  for (std::uint64_t i = 0; i < 40; ++i) {
    std::vector<double> x = {u01(5, i, 0), u01(5, i, 1)};
    s.add_sample(x, {1.0, 1.0, 1.0, 0.8 * x[0] + 0.05 * x[1]});
  }
  ASSERT_TRUE(s.fit());
  const auto sens = s.linear_sensitivity();
  ASSERT_EQ(sens.size(), 2u);
  EXPECT_GT(sens[0][3], sens[1][3]);  // x0 is the dominant knob
  EXPECT_NEAR(sens[0][3], 0.8, 0.1);
}

}  // namespace
}  // namespace fetcam::dse
