// Thread-count-invariance golden tests for the DSE table: run_dse must
// return a BIT-IDENTICAL result — every candidate's point, flags,
// metrics, the frontier, the hypervolume — for 1, 2, and 8 pool threads,
// with the surrogate both off and on.  This is the same contract
// eval/variability_determinism_test.cpp pins for the MC evaluators,
// extended to the sweep driver: batched decisions from prior-batch state
// only, per-point splitmix64 seed streams, ordered reductions.
//
// All comparisons are exact (EXPECT_EQ on doubles, deliberately).
#include <gtest/gtest.h>

#include <cmath>

#include "dse/driver.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fetcam::dse {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

void expect_identical(const DseResult& a, const DseResult& b, int threads) {
  ASSERT_EQ(a.n_candidates, b.n_candidates) << threads << " threads";
  EXPECT_EQ(a.n_evaluated, b.n_evaluated) << threads << " threads";
  EXPECT_EQ(a.n_skipped, b.n_skipped) << threads << " threads";
  EXPECT_EQ(a.n_validated, b.n_validated) << threads << " threads";
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    EXPECT_TRUE(ca.point == cb.point) << threads << " threads, cand " << i;
    EXPECT_EQ(ca.simulated, cb.simulated) << threads << " threads, cand " << i;
    EXPECT_EQ(ca.skipped, cb.skipped) << threads << " threads, cand " << i;
    EXPECT_EQ(ca.validated, cb.validated)
        << threads << " threads, cand " << i;
    if (ca.simulated && cb.simulated) {
      EXPECT_EQ(ca.metrics.ok, cb.metrics.ok);
      EXPECT_EQ(ca.metrics.latency_ps, cb.metrics.latency_ps)
          << threads << " threads, cand " << i;
      EXPECT_EQ(ca.metrics.search_energy_fj_per_bit,
                cb.metrics.search_energy_fj_per_bit)
          << threads << " threads, cand " << i;
      EXPECT_EQ(ca.metrics.write_energy_fj_per_bit,
                cb.metrics.write_energy_fj_per_bit)
          << threads << " threads, cand " << i;
      EXPECT_EQ(ca.metrics.area_um2_per_bit, cb.metrics.area_um2_per_bit)
          << threads << " threads, cand " << i;
      EXPECT_EQ(ca.metrics.yield, cb.metrics.yield)
          << threads << " threads, cand " << i;
    }
  }
  EXPECT_EQ(a.frontier, b.frontier) << threads << " threads";
  EXPECT_EQ(a.hypervolume, b.hypervolume) << threads << " threads";
  EXPECT_EQ(a.max_validation_gap, b.max_validation_gap)
      << threads << " threads";
}

class ThreadSweep {
 public:
  ~ThreadSweep() { util::set_thread_count(0); }
  template <typename Fn>
  void check(Fn&& run_and_compare) {
    for (const int threads : kThreadCounts) {
      util::set_thread_count(threads);
      run_and_compare(threads);
    }
  }
};

/// Small real-pipeline space: 8 cheap points through the full transient +
/// variability stack.
DseOptions real_options(bool use_surrogate) {
  DseOptions o;
  o.space.designs = {arch::TcamDesign::k2SgFefet,
                     arch::TcamDesign::k1p5DgFe};
  o.space.t_fe_scale = {0.9, 1.0};
  o.space.vdd = {0.8};
  o.space.control_w_scale = {1.0};
  o.space.sense_trim_v = {0.0};
  o.space.rows = {8};
  o.space.word_bits = {8};
  o.space.mats = {1};
  o.space.digit_bits = {1, 2};
  o.use_surrogate = use_surrogate;
  o.eval.mc_samples = 16;
  o.eval.seed = 11;
  o.seed = 11;
  return o;
}

TEST(DseDeterminism, RealPipelineTableInvariantAcrossThreadCounts) {
  for (const bool surrogate : {false, true}) {
    util::set_thread_count(1);
    const DseResult golden = run_dse(real_options(surrogate));
    ASSERT_EQ(golden.n_candidates, 8u);
    ASSERT_GT(golden.frontier.size(), 0u);
    ThreadSweep sweep;
    sweep.check([&](int threads) {
      const DseResult got = run_dse(real_options(surrogate));
      expect_identical(golden, got, threads);
    });
  }
}

/// Synthetic evaluation over a bigger grid so the surrogate actually
/// fits and PRUNES — the skip/validate decision sequence itself must be
/// schedule-independent.
DseOptions synthetic_options() {
  DseOptions o;
  o.space.designs = {arch::TcamDesign::k2SgFefet,
                     arch::TcamDesign::k1p5DgFe};
  o.space.t_fe_scale = {0.8, 0.9, 1.0};
  o.space.vdd = {0.7, 0.8};
  o.space.control_w_scale = {1.0, 1.25};
  o.space.sense_trim_v = {0.0, 0.05};
  o.space.rows = {16};
  o.space.word_bits = {8, 32};
  o.space.mats = {1, 4};
  o.space.digit_bits = {1, 2};  // 384 candidates
  o.use_surrogate = true;
  o.batch = 16;
  o.seed = 5;
  o.eval.seed = 5;
  return o;
}

PointMetrics synthetic_eval(std::size_t i, const DesignPoint& p) {
  PointMetrics m;
  m.point = p;
  m.ok = true;
  const double jitter = static_cast<double>(
                            util::trial_key(99, i, /*stream=*/1) >> 11) *
                        0x1.0p-53;
  m.latency_ps = 50.0 + 10.0 * p.word_bits * p.t_fe_scale + 5.0 * jitter;
  m.search_energy_fj_per_bit = (0.1 + 0.2 * p.vdd) / p.digit_bits;
  m.write_energy_fj_per_bit = 1.0;
  m.area_um2_per_bit = (2.0 - 0.5 * (p.design == arch::TcamDesign::k1p5DgFe)) /
                       p.digit_bits / std::sqrt(static_cast<double>(p.mats));
  m.yield = std::max(0.0, 1.0 - 0.3 * (p.digit_bits - 1) - 0.1 * jitter);
  return m;
}

TEST(DseDeterminism, PruningDecisionsInvariantAcrossThreadCounts) {
  util::set_thread_count(1);
  const DseResult golden = run_dse(synthetic_options(), synthetic_eval);
  ASSERT_EQ(golden.n_candidates, 384u);
  // The synthetic surface is smooth: the surrogate must actually prune,
  // otherwise this test exercises nothing.
  ASSERT_GT(golden.n_skipped, 0u);
  ASSERT_GT(golden.n_validated, 0u);
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    const DseResult got = run_dse(synthetic_options(), synthetic_eval);
    expect_identical(golden, got, threads);
  });
}

}  // namespace
}  // namespace fetcam::dse
