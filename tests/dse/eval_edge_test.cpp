// Edge-shape coverage for the point-evaluation pipeline and the models
// under it (eval FoM path, arch::area_model): degenerate geometries and
// multi-level corners must come back FINITE and documented, never NaN —
// and genuinely invalid shapes must fail closed (ok = false, all-inf
// objectives that can never enter a frontier).
#include <gtest/gtest.h>

#include <cmath>

#include "arch/area_model.hpp"
#include "dse/evaluate.hpp"
#include "dse/pareto.hpp"

namespace fetcam::dse {
namespace {

EvalOptions fast_eval() {
  EvalOptions o;
  o.mc_samples = 8;
  o.seed = 3;
  return o;
}

DesignPoint base_point(arch::TcamDesign d) {
  DesignPoint p;
  p.design = d;
  p.rows = 4;
  p.word_bits = 8;
  p.mats = 1;
  p.digit_bits = 1;
  return p;
}

void expect_finite(const PointMetrics& m) {
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(std::isfinite(m.latency_ps));
  EXPECT_GT(m.latency_ps, 0.0);
  EXPECT_TRUE(std::isfinite(m.search_energy_fj_per_bit));
  EXPECT_GT(m.search_energy_fj_per_bit, 0.0);
  EXPECT_TRUE(std::isfinite(m.write_energy_fj_per_bit));
  EXPECT_TRUE(std::isfinite(m.area_um2_per_bit));
  EXPECT_GT(m.area_um2_per_bit, 0.0);
  EXPECT_GE(m.yield, 0.0);
  EXPECT_LE(m.yield, 1.0);
  const ObjVec obj = m.objectives(0.01);
  for (double v : obj) EXPECT_TRUE(std::isfinite(v));
}

TEST(EvalEdge, MultiLevelDigitsStayFiniteAndCheaperPerBit) {
  PointMetrics prev;
  for (int d = 1; d <= 3; ++d) {
    DesignPoint p = base_point(arch::TcamDesign::k2SgFefet);
    p.digit_bits = d;
    const PointMetrics m = evaluate_point(p, fast_eval(), 77);
    expect_finite(m);
    if (d > 1) {
      // d bits per digit: per-bit energy and area shrink...
      EXPECT_LT(m.area_um2_per_bit, prev.area_um2_per_bit);
      EXPECT_LT(m.search_energy_fj_per_bit, prev.search_energy_fj_per_bit);
      // ...and the tighter level spacing can only cost yield.
      EXPECT_LE(m.yield, prev.yield);
    }
    prev = m;
  }
  // The derating factor itself is monotone in d.
  DesignPoint p2 = base_point(arch::TcamDesign::k2SgFefet);
  p2.digit_bits = 2;
  DesignPoint p3 = p2;
  p3.digit_bits = 3;
  EXPECT_DOUBLE_EQ(margin_scale_for(base_point(arch::TcamDesign::k2SgFefet)),
                   1.0);
  EXPECT_LT(margin_scale_for(p2), 1.0);
  EXPECT_LT(margin_scale_for(p3), margin_scale_for(p2));
}

TEST(EvalEdge, OneRowOneBitArraysAreFinite) {
  DesignPoint p = base_point(arch::TcamDesign::k2SgFefet);
  p.rows = 1;
  p.word_bits = 1;
  expect_finite(evaluate_point(p, fast_eval(), 78));

  // 1.5T1Fe stores two ternary bits per cell: word_bits = 2 is its
  // minimum word, and one row of it must still evaluate.
  DesignPoint q = base_point(arch::TcamDesign::k1p5DgFe);
  q.rows = 1;
  q.word_bits = 2;
  expect_finite(evaluate_point(q, fast_eval(), 79));
}

TEST(EvalEdge, OddWordOn1p5FailsClosed) {
  DesignPoint p = base_point(arch::TcamDesign::k1p5DgFe);
  p.word_bits = 7;
  const PointMetrics m = evaluate_point(p, fast_eval(), 80);
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.error.empty());
  const ObjVec obj = m.objectives(0.01);
  for (double v : obj) EXPECT_TRUE(std::isinf(v));
  // An inf vector never dominates anything, so it can't poison a sweep.
  EXPECT_FALSE(dominates(obj, {1e9, 1e9, 1e9, 1.0}));
}

TEST(EvalEdge, ZeroYieldCornerIsFiniteObjective) {
  // Drive the variability sigma far past the sense window: yield collapses
  // but the objective stays the documented finite value 1.0, not NaN/inf.
  DesignPoint p = base_point(arch::TcamDesign::k1p5DgFe);
  EvalOptions o = fast_eval();
  o.variability.sigma_fefet_vth = 1.5;
  o.variability.sigma_mos_vth = 1.0;
  const PointMetrics m = evaluate_point(p, o, 81);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_EQ(m.yield, 0.0);
  const ObjVec obj = m.objectives(0.01);
  EXPECT_EQ(obj[kYieldLoss], 1.0);
  for (double v : obj) EXPECT_TRUE(std::isfinite(v));
}

TEST(EvalEdge, AreaModelDegenerateShapes) {
  for (arch::TcamDesign d :
       {arch::TcamDesign::kCmos16T, arch::TcamDesign::k2SgFefet,
        arch::TcamDesign::k1p5DgFe}) {
    const arch::ArrayArea a1 = arch::array_area(d, 1, 1, 12.0, false);
    EXPECT_TRUE(std::isfinite(a1.total_um2)) << design_name(d);
    EXPECT_GT(a1.total_um2, 0.0) << design_name(d);
    EXPECT_GE(a1.total_um2, a1.cells_um2) << design_name(d);
    // One row of many columns and many rows of one column both scale.
    const arch::ArrayArea wide = arch::array_area(d, 1, 64, 12.0, false);
    const arch::ArrayArea tall = arch::array_area(d, 64, 1, 12.0, false);
    EXPECT_GT(wide.cells_um2, a1.cells_um2);
    EXPECT_GT(tall.cells_um2, a1.cells_um2);
    EXPECT_DOUBLE_EQ(wide.cells_um2, tall.cells_um2);
  }
}

}  // namespace
}  // namespace fetcam::dse
