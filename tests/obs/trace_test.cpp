// ScopedSpan nesting, level gating, and Chrome-trace export.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace fetcam::obs {
namespace {

// Restores kOff and clears the collector on scope exit so tests cannot
// leak trace state into each other.
struct TraceGuard {
  ~TraceGuard() {
    set_level(Level::kOff);
    TraceCollector::instance().clear();
  }
};

#ifndef FETCAM_OBS_DISABLED

TEST(ScopedSpanTest, RecordsOnlyWhenTraceOn) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();

  set_level(Level::kOff);
  { ScopedSpan span("test.off", "test"); }
  EXPECT_EQ(tc.size(), 0u);

  set_level(Level::kMetrics);
  { ScopedSpan span("test.metrics", "test"); }
  EXPECT_EQ(tc.size(), 0u);

  set_level(Level::kTrace);
  { ScopedSpan span("test.trace", "test"); }
  ASSERT_EQ(tc.size(), 1u);
  const auto events = tc.snapshot();
  EXPECT_STREQ(events[0].name, "test.trace");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(ScopedSpanTest, ActivationLatchedAtConstruction) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();
  set_level(Level::kOff);
  {
    ScopedSpan span("test.latched", "test");
    // Turning tracing on mid-span must not produce a torn event.
    set_level(Level::kTrace);
  }
  EXPECT_EQ(tc.size(), 0u);
}

TEST(ScopedSpanTest, NestedSpansContainEachOther) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();
  set_level(Level::kTrace);
  {
    ScopedSpan outer("test.outer", "test");
    { ScopedSpan inner("test.inner", "test"); }
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.dur_us, inner.dur_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST(ScopedSpanTest, ThreadsGetDistinctIds) {
  const std::uint32_t here = TraceCollector::thread_id();
  // Stable within a thread.
  EXPECT_EQ(TraceCollector::thread_id(), here);
  std::uint32_t other = here;
  std::thread t([&other] { other = TraceCollector::thread_id(); });
  t.join();
  EXPECT_NE(other, here);
}

TEST(TraceCollectorTest, ChromeJsonShape) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();
  set_level(Level::kTrace);
  { ScopedSpan span("test.json", "test"); }
  const std::string json = tc.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_EQ(json.find(']'), json.size() - 2);  // "...]\n"
}

TEST(TraceCollectorTest, ClearDropsEverything) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  set_level(Level::kTrace);
  { ScopedSpan span("test.cleared", "test"); }
  EXPECT_GE(tc.size(), 1u);
  tc.clear();
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.dropped(), 0u);
}

#else  // FETCAM_OBS_DISABLED

TEST(ScopedSpanTest, CompiledOutBuildNeverRecords) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();
  set_level(Level::kTrace);  // must be ignored
  { ScopedSpan span("test.disabled", "test"); }
  EXPECT_EQ(tc.size(), 0u);
}

#endif

TEST(TraceCollectorTest, ManualRecordRoundTrips) {
  TraceGuard guard;
  auto& tc = TraceCollector::instance();
  tc.clear();
  tc.record({"test.manual", "test", 10.0, 2.5, 7});
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_us, 10.0);
  EXPECT_EQ(events[0].dur_us, 2.5);
  EXPECT_EQ(events[0].tid, 7u);
}

}  // namespace
}  // namespace fetcam::obs
