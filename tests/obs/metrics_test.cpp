// MetricsRegistry: concurrent increments, deterministic export order,
// histogram bucket edges.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace fetcam::obs {
namespace {

TEST(MetricsCounter, ConcurrentIncrementsAreExact) {
  Counter& c = MetricsRegistry::instance().counter("test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

#ifndef FETCAM_OBS_DISABLED
TEST(MetricsCounter, IncIsGatedOnLevel) {
  Counter& c = MetricsRegistry::instance().counter("test.gated");
  c.reset();
  set_level(Level::kOff);
  c.inc();
  EXPECT_EQ(c.value(), 0u);
  set_level(Level::kMetrics);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  set_level(Level::kOff);
}
#endif

TEST(MetricsGauge, SetAndRead) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstance) {
  Counter& a = MetricsRegistry::instance().counter("test.same");
  Counter& b = MetricsRegistry::instance().counter("test.same");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = MetricsRegistry::instance().histogram("test.same_h", {1, 2});
  Histogram& h2 =
      MetricsRegistry::instance().histogram("test.same_h", {5, 6, 7});
  EXPECT_EQ(&h1, &h2);
  // First registration's bounds win.
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ExportOrderIsSortedAndStable) {
  auto& reg = MetricsRegistry::instance();
  // Register deliberately out of order.
  reg.counter("test.order.zz").add(1);
  reg.counter("test.order.aa").add(2);
  reg.counter("test.order.mm").add(3);
  const std::string json = reg.to_json();
  const auto pos_a = json.find("test.order.aa");
  const auto pos_m = json.find("test.order.mm");
  const auto pos_z = json.find("test.order.zz");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_m, std::string::npos);
  ASSERT_NE(pos_z, std::string::npos);
  EXPECT_LT(pos_a, pos_m);
  EXPECT_LT(pos_m, pos_z);
  // Byte-stable across calls.
  EXPECT_EQ(json, reg.to_json());
  // The table renderer sees the same values.
  EXPECT_NE(reg.to_table().find("test.order.aa"), std::string::npos);
}

TEST(MetricsHistogram, BucketEdges) {
  Histogram h({1.0, 2.0, 4.0});
  // A value exactly on a bound lands in that bound's bucket (v <= bound).
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (edge)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1 (edge)
  h.observe(4.0);   // bucket 2 (edge)
  h.observe(4.001); // overflow
  h.observe(1e9);   // overflow
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001 + 1e9);
}

TEST(MetricsHistogram, NegativeAndZeroValuesLandInFirstBucket) {
  Histogram h({1.0, 2.0});
  h.observe(0.0);
  h.observe(-5.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(MetricsHistogram, ConcurrentObserveCountsExactly) {
  Histogram h({10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(5.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(0), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Integer-valued observations: the CAS-accumulated sum is exact.
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 * kThreads * kPerThread);
}

TEST(MetricsHistogram, ResetZeroesEverything) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(MetricsBounds, Helpers) {
  const auto e = exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0], 1.0);
  EXPECT_EQ(e[3], 8.0);
  const auto l = linear_bounds(0.0, 0.5, 3);
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l[2], 1.0);
}

}  // namespace
}  // namespace fetcam::obs
