// RunManifest JSON shape, phase timing, and solver-health embedding.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace fetcam::obs {
namespace {

TEST(BuildInfoTest, FieldsAreNonEmpty) {
  EXPECT_NE(std::string(BuildInfo::git_sha()), "");
  EXPECT_NE(std::string(BuildInfo::build_type()), "");
  EXPECT_NE(std::string(BuildInfo::compiler()), "");
}

TEST(RunManifestTest, JsonContainsIdentityAndInfo) {
  RunManifest m("unit_test", "fetcam_cli --threads 2 variability");
  m.set_threads(2);
  m.set_level(Level::kMetrics);
  m.add_info("rng_seed", 12345ll);
  m.add_info("flavor", "dg");
  m.add_phase("solve", 0.25);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("fetcam_cli --threads 2 variability"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"obs_level\": \"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"rng_seed\": \"12345\""), std::string::npos);
  EXPECT_NE(json.find("\"flavor\": \"dg\""), std::string::npos);
  EXPECT_NE(json.find("\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"solver_health\""), std::string::npos);
  // Info insertion order is preserved.
  EXPECT_LT(json.find("rng_seed"), json.find("flavor"));
}

TEST(RunManifestTest, SolverHealthPicksUpSolverCounters) {
  // "eval." is one of the solver-health prefixes; "test." is not.
  MetricsRegistry::instance().counter("eval.manifest_probe").add(3);
  MetricsRegistry::instance().counter("test.manifest_probe").add(5);
  RunManifest m("unit_test", "cmd");
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"eval.manifest_probe\": 3"), std::string::npos);
  EXPECT_EQ(json.find("test.manifest_probe"), std::string::npos);
}

TEST(RunManifestTest, PhaseTimerRecordsOnDestruction) {
  RunManifest m("unit_test", "cmd");
  {
    PhaseTimer timer(m, "phase_a");
  }
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"phase_a\":"), std::string::npos);
}

TEST(RunManifestTest, WriteProducesReadableFile) {
  const std::string path = ::testing::TempDir() + "fetcam_manifest_test.json";
  RunManifest m("unit_test", "cmd");
  ASSERT_TRUE(m.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), m.to_json());
  std::remove(path.c_str());
}

TEST(RunManifestTest, EscapesQuotesInCommandLine) {
  RunManifest m("unit_test", "run \"with quotes\" and \\ backslash");
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\\\"with quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ backslash"), std::string::npos);
}

}  // namespace
}  // namespace fetcam::obs
