// LatencyRecorder / WindowedSnapshot tests: the bucket layout is an exact
// pure function of the value, merged counts are bit-identical no matter
// which thread recorded what, percentiles walk the merged buckets
// conservatively, and the windowed exporter emits deterministic JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fetcam::obs {
namespace {

TEST(LatencyBuckets, LayoutIsMonotoneAndSelfConsistent) {
  // Every bucket's [lower, upper] range maps back to that bucket, and the
  // ranges tile the uint64 axis in order with no gaps.
  std::uint64_t expect_lower = 0;
  for (std::size_t i = 0; i < LatencyRecorder::kBucketCount; ++i) {
    const std::uint64_t lo = LatencyRecorder::bucket_lower(i);
    const std::uint64_t hi = LatencyRecorder::bucket_upper(i);
    ASSERT_EQ(lo, expect_lower) << "gap before bucket " << i;
    ASSERT_GE(hi, lo) << "inverted bucket " << i;
    ASSERT_EQ(LatencyRecorder::bucket_index(lo), i) << "lower of " << i;
    ASSERT_EQ(LatencyRecorder::bucket_index(hi), i) << "upper of " << i;
    if (hi == ~0ull) {
      ASSERT_EQ(i + 1, LatencyRecorder::kBucketCount);
      break;
    }
    expect_lower = hi + 1;
  }
}

TEST(LatencyBuckets, RelativeErrorIsBoundedBySubBucketWidth) {
  // Above the unit range a bucket spans < 2^-kSubBits of its own lower
  // bound — the quantization guarantee the header documents.
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t v = rng() >> (rng() % 60);
    const std::size_t i = LatencyRecorder::bucket_index(v);
    const std::uint64_t lo = LatencyRecorder::bucket_lower(i);
    const std::uint64_t hi = LatencyRecorder::bucket_upper(i);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    if (v >= LatencyRecorder::kSubCount && hi != ~0ull) {
      ASSERT_LE(hi - lo + 1, (lo >> LatencyRecorder::kSubBits) + 1)
          << "bucket " << i << " too wide at value " << v;
    }
  }
}

TEST(LatencyRecorder, ConcurrentRecordingMergesBitExactly) {
  // N threads record disjoint deterministic streams; the merged bucket
  // counts must equal a serial single-thread reference exactly — no lost
  // updates, no double counts.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  LatencyRecorder concurrent;
  LatencyRecorder serial;
  auto value_at = [](int t, int k) {
    std::uint64_t v = static_cast<std::uint64_t>(t) * 2654435761u +
                      static_cast<std::uint64_t>(k) * 40503u;
    v ^= v >> 13;
    return v % 5000000;  // 0..5ms in ns
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        concurrent.record_ns(value_at(t, k));
      }
    });
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kPerThread; ++k) serial.record_ns(value_at(t, k));
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(concurrent.bucket_counts(), serial.bucket_counts());
  const LatencySnapshot a = concurrent.snapshot();
  const LatencySnapshot b = serial.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.max_ns, b.max_ns);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.p999_ns, b.p999_ns);
  EXPECT_EQ(a.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyRecorder, PercentilesOfKnownDistributionAreConservative) {
  // 100 samples 1..100 us: pX must cover the true pX value without
  // under-reporting it, and stay within one sub-bucket above.
  LatencyRecorder rec;
  for (std::uint64_t us = 1; us <= 100; ++us) rec.record_ns(us * 1000);
  const LatencySnapshot s = rec.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ns, 100000u);
  EXPECT_GE(s.p50_ns, 50000u);
  EXPECT_LE(s.p50_ns, 50000u + (50000u >> LatencyRecorder::kSubBits));
  EXPECT_GE(s.p95_ns, 95000u);
  EXPECT_LE(s.p95_ns, 95000u + (95000u >> LatencyRecorder::kSubBits));
  EXPECT_GE(s.p99_ns, 99000u);
  // The tail percentiles clamp to the observed max, never beyond.
  EXPECT_LE(s.p99_ns, s.max_ns);
  EXPECT_EQ(s.p999_ns, s.max_ns);
  EXPECT_GE(s.p99_ns, s.p95_ns);
  EXPECT_GE(s.p95_ns, s.p50_ns);
}

TEST(LatencyRecorder, EmptyAndResetSnapshotsAreZero) {
  LatencyRecorder rec;
  LatencySnapshot s = rec.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p999_ns, 0u);
  rec.record_ns(1234);
  EXPECT_EQ(rec.snapshot().count, 1u);
  rec.reset();
  s = rec.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum_ns, 0u);
  EXPECT_EQ(s.max_ns, 0u);
  for (const std::uint64_t c : rec.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(WindowedSnapshot, EmitsDeltaWindowsWithStableShape) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& counter = reg.counter("test.window.counter");
  auto& lat = reg.latency("test.window.latency");

  WindowedSnapshot win;
  counter.add(5);
  lat.record_ns(1000);
  lat.record_ns(2000);
  const std::string first = win.capture_json(1.0);
  EXPECT_NE(first.find("\"schema\": \"fetcam.window.v1\""),
            std::string::npos);
  EXPECT_NE(first.find("\"window\": 1"), std::string::npos);
  EXPECT_NE(first.find("\"test.window.counter\": {\"total\": 5, "
                       "\"delta\": 5"),
            std::string::npos);
  EXPECT_NE(first.find("\"count\": 2, \"delta\": 2"), std::string::npos);

  // Second window: only the increments since the first capture.
  counter.add(3);
  lat.record_ns(3000);
  const std::string second = win.capture_json(2.0);
  EXPECT_NE(second.find("\"window\": 2"), std::string::npos);
  EXPECT_NE(second.find("\"test.window.counter\": {\"total\": 8, "
                        "\"delta\": 3, \"rate_per_s\": 3"),
            std::string::npos);
  EXPECT_NE(second.find("\"count\": 3, \"delta\": 1"), std::string::npos);

  // Identical registry state + forced clocks => byte-identical documents
  // (the first capture pins the window start, the second is compared).
  WindowedSnapshot repeat_a;
  WindowedSnapshot repeat_b;
  repeat_a.capture_json(1.0);
  repeat_b.capture_json(1.0);
  EXPECT_EQ(repeat_a.capture_json(5.0), repeat_b.capture_json(5.0));
  reg.reset();
}

}  // namespace
}  // namespace fetcam::obs
