// Golden guard: with observability off, the instrumented simulator must
// reproduce the pre-instrumentation variability results BIT-IDENTICALLY at
// any thread count.  The hexfloat constants below were captured from the
// seed build (commit aaed851, before src/obs/ existed) with
// VariabilityParams{samples=40, seed=7} on the DG flavour.
//
// A second test runs the same analysis at kTrace and asserts the numbers
// are STILL identical — instrumentation observes, it never perturbs — and
// that the solver-health counters and spans actually accumulated.
#include <gtest/gtest.h>

#include <array>

#include "eval/variability.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace fetcam::eval {
namespace {

VariabilityParams golden_params() {
  VariabilityParams vp;
  vp.samples = 40;
  vp.seed = 7;
  return vp;
}

struct GoldenCorner {
  int failures;
  double worst;
  double mean;
};

// Captured from the pre-instrumentation seed build (see file comment).
constexpr std::array<GoldenCorner, 6> kGolden = {{
    {0, 0x1.1ed1d17db7e66p-2, 0x1.43ab2be448182p-2},    // stored 0, query 0
    {0, 0x1.94a5eeeebbf66p-2, 0x1.b1feee82eead5p-2},    // stored 0, query 1
    {10, -0x1.05dd77d13ee2p-4, 0x1.551b343b694cap-6},   // stored 1, query 0
    {0, 0x1.14a44fd849535p-2, 0x1.38d654d09f7bfp-2},    // stored 1, query 1
    {3, -0x1.f6e65e5455838p-5, 0x1.b670863f87d1bp-4},   // stored X, query 0
    {21, -0x1.03e5ba599f258p-1, -0x1.31f59ea2ad04ap-4}, // stored X, query 1
}};
constexpr double kGoldenYield = 0x1.4cccccccccccdp-2;

void expect_matches_golden(const VariabilityReport& rep) {
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.cell_yield, kGoldenYield);
  ASSERT_EQ(rep.corners.size(), kGolden.size());
  for (std::size_t c = 0; c < kGolden.size(); ++c) {
    EXPECT_EQ(rep.corners[c].failures, kGolden[c].failures) << "corner " << c;
    EXPECT_EQ(rep.corners[c].solver_failures, 0) << "corner " << c;
    EXPECT_EQ(rep.corners[c].samples, 40) << "corner " << c;
    // Bit-exact: the goldens are hexfloats, so EXPECT_EQ on doubles.
    EXPECT_EQ(rep.corners[c].worst_margin, kGolden[c].worst) << "corner " << c;
    EXPECT_EQ(rep.corners[c].mean_margin, kGolden[c].mean) << "corner " << c;
  }
}

// Restores the default pool size and obs level regardless of outcome.
struct EnvGuard {
  ~EnvGuard() {
    util::set_thread_count(0);
    obs::set_level(obs::Level::kOff);
  }
};

TEST(BaselineGolden, ObsOffMatchesPreInstrumentationAtAnyThreadCount) {
  EnvGuard guard;
  obs::set_level(obs::Level::kOff);
  for (int threads : {1, 8}) {
    util::set_thread_count(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_matches_golden(analyze_variability(tcam::Flavor::kDg,
                                              golden_params()));
  }
}

#ifndef FETCAM_OBS_DISABLED
TEST(BaselineGolden, InstrumentationDoesNotPerturbResults) {
  EnvGuard guard;
  obs::set_level(obs::Level::kTrace);
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& newton = reg.counter("newton.dense.solves");
  obs::Counter& trials = reg.counter("eval.variability.trials");
  obs::Histogram& iters =
      reg.histogram("op.newton_iterations", obs::exponential_bounds(2, 2, 10));
  const auto newton0 = newton.value();
  const auto trials0 = trials.value();
  const auto iters0 = iters.count();
  const auto spans0 = obs::TraceCollector::instance().size();

  util::set_thread_count(4);
  expect_matches_golden(analyze_variability(tcam::Flavor::kDg,
                                            golden_params()));

  // Full metrics + trace collection ran alongside the solve.
  EXPECT_GT(newton.value(), newton0);
  EXPECT_EQ(trials.value(), trials0 + 40);
  EXPECT_GT(iters.count(), iters0);
  EXPECT_GT(obs::TraceCollector::instance().size(), spans0);
}
#endif

}  // namespace
}  // namespace fetcam::eval
