// Table IV shape tests: the headline relationships the reproduction must
// preserve.  These run full circuit characterizations and take a few
// seconds in total (n_bits = 16 keeps them fast; the ratios are stable
// across word lengths).
#include <gtest/gtest.h>

#include "eval/fom.hpp"

namespace fetcam::eval {
namespace {

using arch::TcamDesign;

FomOptions fast_opts() {
  FomOptions o;
  // 32 bits: past the small-N crossover where the 2FeFET designs still beat
  // 1.5T1Fe on latency (visible in the Fig. 7 sweep), yet fast to simulate.
  o.n_bits = 32;
  return o;
}

TEST(Fom, WriteEnergyRatiosMatchPaper) {
  const auto opts = fast_opts();
  const auto sg2 = measure_write_energy(TcamDesign::k2SgFefet, opts);
  const auto dg2 = measure_write_energy(TcamDesign::k2DgFefet, opts);
  const auto sg15 = measure_write_energy(TcamDesign::k1p5SgFe, opts);
  const auto dg15 = measure_write_energy(TcamDesign::k1p5DgFe, opts);
  ASSERT_TRUE(sg2 && dg2 && sg15 && dg15);
  // Paper Table IV: 1x / 2x / 2x / 4x improvements over 2SG-FeFET.
  EXPECT_NEAR(*sg2 / *dg2, 2.0, 0.6);
  EXPECT_NEAR(*sg2 / *sg15, 2.0, 0.6);
  EXPECT_NEAR(*sg2 / *dg15, 4.0, 1.2);
  EXPECT_FALSE(
      measure_write_energy(TcamDesign::kCmos16T, opts).has_value());
}

TEST(Fom, LatencyOrderingMatchesPaper) {
  const auto opts = fast_opts();
  const auto l16t = measure_worst_latency(TcamDesign::kCmos16T, opts);
  const auto l2sg = measure_worst_latency(TcamDesign::k2SgFefet, opts);
  const auto l2dg = measure_worst_latency(TcamDesign::k2DgFefet, opts);
  const auto l15sg = measure_worst_latency(TcamDesign::k1p5SgFe, opts);
  const auto l15dg = measure_worst_latency(TcamDesign::k1p5DgFe, opts);
  ASSERT_TRUE(l16t.ok && l2sg.ok && l2dg.ok && l15sg.ok && l15dg.ok);
  // 16T fastest; 2DG slowest (reduced SS + heavy ML); DG flavours slower
  // than their SG counterparts; 1.5T1DG beats 2DG.
  EXPECT_LT(l16t.latency_full, l15sg.latency_full);
  EXPECT_LT(l2sg.latency_full, l2dg.latency_full);
  EXPECT_LT(l15sg.latency_full, l15dg.latency_full);
  EXPECT_LT(l15dg.latency_full, l2dg.latency_full);
  // Two-step designs: step-1 latency below the full-operation latency.
  EXPECT_GT(l15sg.latency_1step, 0.0);
  EXPECT_LT(l15sg.latency_1step, l15sg.latency_full);
}

TEST(Fom, EarlyTerminationSavesEnergy) {
  const auto opts = fast_opts();
  for (const auto d : {TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe}) {
    const auto lat = measure_worst_latency(d, opts);
    ASSERT_TRUE(lat.ok);
    const auto e = measure_search_energy(d, opts, lat.sized_timing);
    ASSERT_TRUE(e.ok) << e.error;
    EXPECT_LT(e.e1, e.e2) << arch::design_name(d);
    // Average with 90% step-1 misses sits near the 1-step energy.
    EXPECT_LT(e.avg, 0.5 * (e.e1 + e.e2));
    EXPECT_NEAR(e.avg, 0.9 * e.e1 + 0.1 * e.e2, 1e-20);
  }
}

TEST(Fom, EvaluateFomFillsEveryField) {
  FomOptions opts = fast_opts();
  const auto fom = evaluate_fom(TcamDesign::k1p5DgFe, opts);
  ASSERT_TRUE(fom.ok) << fom.error;
  EXPECT_EQ(fom.name, "1.5T1DG-Fe");
  EXPECT_NEAR(fom.write_voltage, 2.0, 1e-9);
  EXPECT_NEAR(fom.t_fe_nm, 5.0, 1e-9);
  EXPECT_NEAR(fom.v_mvt, 1.66, 0.1);
  EXPECT_NEAR(fom.cell_area_um2, 0.156, 1e-3);
  EXPECT_GT(fom.write_energy_fj, 0.0);
  EXPECT_GT(fom.latency_1step_ps, 0.0);
  EXPECT_GT(fom.latency_ps, fom.latency_1step_ps);
  EXPECT_GT(fom.energy_1step_fj, 0.0);
  EXPECT_GT(fom.energy_2step_fj, fom.energy_1step_fj);
  EXPECT_GT(fom.energy_avg_fj, 0.0);
}

TEST(Fom, SizedWindowCoversMeasuredLatency) {
  const auto opts = fast_opts();
  const auto lat = measure_worst_latency(TcamDesign::k1p5SgFe, opts);
  ASSERT_TRUE(lat.ok);
  EXPECT_GT(lat.sized_timing.t_step, lat.latency_1step);
  EXPECT_NEAR(lat.sized_timing.t_step,
              lat.latency_1step * (1.0 + opts.window_slack),
              1e-15 + 0.01 * lat.latency_1step);
}

}  // namespace
}  // namespace fetcam::eval
