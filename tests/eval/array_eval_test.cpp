#include "eval/array_eval.hpp"

#include <gtest/gtest.h>

namespace fetcam::eval {
namespace {

using arch::TcamDesign;

TEST(ArrayDatasheet, BasicConsistency) {
  const auto d = array_datasheet(TcamDesign::k1p5DgFe);
  EXPECT_EQ(d.rows, 64);
  EXPECT_EQ(d.cols, 64);
  EXPECT_DOUBLE_EQ(d.capacity_bits, 4096.0);
  EXPECT_NEAR(d.total_area_um2, d.cell_area_um2 + d.driver_area_um2, 1e-9);
  EXPECT_NEAR(d.area_per_bit_um2, d.total_area_um2 / 4096.0, 1e-12);
  EXPECT_GT(d.searches_per_second, 1e8);
  EXPECT_GT(d.search_power_uw, 0.0);
}

TEST(ArrayDatasheet, SharingOnlyAppliesTo1p5Designs) {
  DatasheetOptions opts;
  opts.shared_drivers = true;
  EXPECT_TRUE(array_datasheet(TcamDesign::k1p5DgFe, opts).drivers_shared);
  EXPECT_TRUE(array_datasheet(TcamDesign::k1p5SgFe, opts).drivers_shared);
  EXPECT_FALSE(array_datasheet(TcamDesign::k2SgFefet, opts).drivers_shared);
  EXPECT_FALSE(array_datasheet(TcamDesign::kCmos16T, opts).drivers_shared);
}

TEST(ArrayDatasheet, SharingHalvesDriverAreaAndLeakage) {
  DatasheetOptions on;
  DatasheetOptions off;
  off.shared_drivers = false;
  const auto a = array_datasheet(TcamDesign::k1p5DgFe, on);
  const auto b = array_datasheet(TcamDesign::k1p5DgFe, off);
  EXPECT_NEAR(a.driver_area_um2 / b.driver_area_um2, 0.5, 0.02);
  EXPECT_NEAR(a.driver_leakage_nw / b.driver_leakage_nw, 0.5, 0.02);
  EXPECT_DOUBLE_EQ(a.cell_area_um2, b.cell_area_um2);
}

TEST(ArrayDatasheet, FefetDesignsBeat16tAtMacroScale) {
  // At 64x64 the peripheral drivers dominate and scramble the per-bit
  // ordering (a real effect — and the argument for larger subarrays); at
  // 256x256 the cell array dominates and every FeFET design beats 16T.
  DatasheetOptions opts;
  opts.rows = 256;
  opts.cols = 256;
  const auto a16 = array_datasheet(TcamDesign::kCmos16T, opts);
  for (const auto d : {TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
                       TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe}) {
    EXPECT_LT(array_datasheet(d, opts).area_per_bit_um2,
              a16.area_per_bit_um2)
        << arch::design_name(d);
  }
  // And the cell-area champion keeps its crown once cells dominate.
  EXPECT_LT(array_datasheet(TcamDesign::k2SgFefet, opts).area_per_bit_um2,
            array_datasheet(TcamDesign::k2DgFefet, opts).area_per_bit_um2);
}

TEST(ArrayDatasheet, UnsharedHvDriversEraseTheAreaAdvantage) {
  // The architectural point of Fig. 6: WITHOUT sharing, the 1.5T1Fe's
  // 2M + N HV driver lines eat most of its cell-area win over 16T CMOS.
  DatasheetOptions off;
  off.shared_drivers = false;
  const auto with = array_datasheet(TcamDesign::k1p5SgFe);
  const auto without = array_datasheet(TcamDesign::k1p5SgFe, off);
  const auto a16 = array_datasheet(TcamDesign::kCmos16T, off);
  EXPECT_LT(with.area_per_bit_um2, without.area_per_bit_um2);
  const double margin_with = a16.area_per_bit_um2 - with.area_per_bit_um2;
  const double margin_without =
      a16.area_per_bit_um2 - without.area_per_bit_um2;
  EXPECT_GT(margin_with, margin_without);
}

TEST(ArrayDatasheet, MissRateLowersAverageEnergy) {
  DatasheetOptions high_miss;
  high_miss.step1_miss_rate = 0.95;
  DatasheetOptions low_miss;
  low_miss.step1_miss_rate = 0.5;
  const auto a = array_datasheet(TcamDesign::k1p5DgFe, high_miss);
  const auto b = array_datasheet(TcamDesign::k1p5DgFe, low_miss);
  EXPECT_LT(a.search_energy_per_bit_fj, b.search_energy_per_bit_fj);
  // Single-step designs are insensitive to the miss rate.
  const auto c = array_datasheet(TcamDesign::k2SgFefet, high_miss);
  const auto d = array_datasheet(TcamDesign::k2SgFefet, low_miss);
  EXPECT_DOUBLE_EQ(c.search_energy_per_bit_fj, d.search_energy_per_bit_fj);
}

TEST(ArrayDatasheet, RendersAllDesigns) {
  std::vector<ArrayDatasheet> sheets;
  for (const auto d : {TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                       TcamDesign::k1p5DgFe}) {
    sheets.push_back(array_datasheet(d));
  }
  const auto text = render_datasheets(sheets);
  EXPECT_NE(text.find("area/bit"), std::string::npos);
  EXPECT_NE(text.find("1.5T1DG-Fe"), std::string::npos);
  EXPECT_NE(text.find("N.A."), std::string::npos);  // 16T write energy
}

}  // namespace
}  // namespace fetcam::eval
