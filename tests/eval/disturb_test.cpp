#include "eval/disturb.hpp"

#include <gtest/gtest.h>

namespace fetcam::eval {
namespace {

TEST(ReadDisturb, SgDriftGrowsWithReadVoltage) {
  const auto res = read_disturb_comparison();
  ASSERT_GE(res.sg_fg_read.size(), 3u);
  for (std::size_t k = 1; k < res.sg_fg_read.size(); ++k) {
    EXPECT_GE(res.sg_fg_read[k].p_drift_norm,
              res.sg_fg_read[k - 1].p_drift_norm - 1e-12)
        << "ratio index " << k;
  }
  // Near-coercive stress disturbs visibly.
  EXPECT_GT(res.sg_fg_read.back().p_drift_norm, 0.01);
}

TEST(ReadDisturb, DgBgReadIsDisturbFree) {
  const auto res = read_disturb_comparison();
  // The 2 V select never reaches the FE stack: zero accumulated drift —
  // the paper's "disturb-free read".
  EXPECT_LT(res.dg_bg_read.p_drift_norm, 1e-6);
  EXPECT_LT(res.dg_bg_read.vth_drift, 1e-6);
}

TEST(ReadDisturb, LowVoltageSgReadIsSafe) {
  const auto res = read_disturb_comparison();
  // At 30 % of V_c (well below the paper's operating points) the SG read is
  // still effectively disturb-free.
  EXPECT_LT(res.sg_fg_read.front().p_drift_norm, 1e-3);
}

TEST(ReadDisturb, VthDriftTracksPolarization) {
  const auto res = read_disturb_comparison();
  for (const auto& pt : res.sg_fg_read) {
    EXPECT_NEAR(pt.vth_drift, pt.p_drift_norm * 1.8 / 2.0, 1e-9);
  }
}

TEST(ReadDisturb, MoreCyclesMoreDrift) {
  DisturbParams few;
  few.cycles = 1000;
  few.stress_ratios = {0.9};
  DisturbParams many;
  many.cycles = 1000000;
  many.stress_ratios = {0.9};
  const auto a = read_disturb_comparison(few);
  const auto b = read_disturb_comparison(many);
  EXPECT_LE(a.sg_fg_read[0].p_drift_norm, b.sg_fg_read[0].p_drift_norm);
}

}  // namespace
}  // namespace fetcam::eval
