// The closed-form estimator and the SPICE harnesses must agree within a
// factor of ~2 — the mutual cross-check described in analytic.hpp.
#include <gtest/gtest.h>

#include "eval/analytic.hpp"
#include "eval/fom.hpp"

namespace fetcam::eval {
namespace {

using arch::TcamDesign;

TEST(Analytic, ComponentsArePhysical) {
  for (const auto d : {TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                       TcamDesign::k2DgFefet, TcamDesign::k1p5SgFe,
                       TcamDesign::k1p5DgFe}) {
    const auto est = analytic_search_estimate(d, 64);
    EXPECT_GT(est.c_ml, 1e-16) << arch::design_name(d);
    EXPECT_LT(est.c_ml, 1e-13) << arch::design_name(d);
    EXPECT_GT(est.r_discharge, 1e3) << arch::design_name(d);
    EXPECT_GT(est.latency, 10e-12) << arch::design_name(d);
    EXPECT_LT(est.latency, 10e-9) << arch::design_name(d);
    EXPECT_GT(est.e_per_cell, 1e-17) << arch::design_name(d);
  }
}

TEST(Analytic, MlCapScalesLinearlyWithWordLength) {
  const auto a = analytic_search_estimate(TcamDesign::k2SgFefet, 32);
  const auto b = analytic_search_estimate(TcamDesign::k2SgFefet, 128);
  EXPECT_NEAR(b.c_ml / a.c_ml, 4.0, 0.3);
  EXPECT_GT(b.latency, a.latency);
}

TEST(Analytic, ReproducesDesignOrdering) {
  const auto sg2 = analytic_search_estimate(TcamDesign::k2SgFefet, 64);
  const auto dg2 = analytic_search_estimate(TcamDesign::k2DgFefet, 64);
  const auto sg15 = analytic_search_estimate(TcamDesign::k1p5SgFe, 64);
  EXPECT_LT(sg2.latency, dg2.latency);
  EXPECT_LT(sg15.latency, sg2.latency);
  // 1.5T1Fe ML is the lightest (1 small NMOS per 2 cells).
  EXPECT_LT(sg15.c_ml, sg2.c_ml);
}

TEST(Analytic, WriteEnergyRatiosAndCrossCheck) {
  const double sg2 = analytic_write_energy(TcamDesign::k2SgFefet);
  const double dg2 = analytic_write_energy(TcamDesign::k2DgFefet);
  const double sg15 = analytic_write_energy(TcamDesign::k1p5SgFe);
  const double dg15 = analytic_write_energy(TcamDesign::k1p5DgFe);
  EXPECT_DOUBLE_EQ(analytic_write_energy(TcamDesign::kCmos16T), 0.0);
  // Paper Table IV ratios: 1x / ~2x / 2x / ~4x.
  EXPECT_NEAR(sg2 / dg2, 2.0, 0.5);
  EXPECT_NEAR(sg2 / sg15, 2.0, 1e-9);
  EXPECT_NEAR(sg2 / dg15, 4.0, 1.0);
  // Cross-check against the transient write measurement.
  FomOptions opts;
  opts.n_bits = 8;
  for (const auto d : {TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
                       TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe}) {
    const auto measured = measure_write_energy(d, opts);
    ASSERT_TRUE(measured.has_value()) << arch::design_name(d);
    const double ratio = analytic_write_energy(d) / *measured;
    EXPECT_GT(ratio, 0.3) << arch::design_name(d);
    EXPECT_LT(ratio, 3.0) << arch::design_name(d);
  }
}

class AnalyticVsSpiceTest : public ::testing::TestWithParam<TcamDesign> {};

TEST_P(AnalyticVsSpiceTest, LatencyWithinFactorOfTwo) {
  FomOptions opts;
  opts.n_bits = 32;
  const auto spice = measure_worst_latency(GetParam(), opts);
  ASSERT_TRUE(spice.ok) << spice.error;
  const auto est = analytic_search_estimate(GetParam(), 32);
  const double ratio = est.latency / spice.latency_full;
  EXPECT_GT(ratio, 0.4) << "analytic " << est.latency << " vs spice "
                        << spice.latency_full;
  EXPECT_LT(ratio, 2.5) << "analytic " << est.latency << " vs spice "
                        << spice.latency_full;
}

INSTANTIATE_TEST_SUITE_P(
    Designs, AnalyticVsSpiceTest,
    ::testing::Values(TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                      TcamDesign::k2DgFefet, TcamDesign::k1p5SgFe,
                      TcamDesign::k1p5DgFe),
    [](const ::testing::TestParamInfo<TcamDesign>& info) {
      std::string n = arch::design_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace fetcam::eval
