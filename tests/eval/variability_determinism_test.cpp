// Thread-count-invariance golden tests: the parallel Monte-Carlo
// evaluators must return BIT-IDENTICAL reports for 1, 2, and 8 pool
// threads at a fixed seed.  This is the contract the counter-based
// per-trial RNG (util/rng.hpp) plus the ordered reduction
// (eval/variability_detail.hpp) exist to provide: the schedule may
// change, the numbers may not.
//
// All comparisons are exact (EXPECT_EQ on doubles, deliberately): any
// atomics-based or schedule-ordered accumulation would fail here.
#include <gtest/gtest.h>

#include "eval/disturb.hpp"
#include "eval/half_select.hpp"
#include "eval/trim.hpp"
#include "eval/variability.hpp"
#include "util/parallel.hpp"

namespace fetcam::eval {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

void expect_identical(const VariabilityReport& a, const VariabilityReport& b,
                      int threads) {
  ASSERT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.cell_yield, b.cell_yield) << threads << " threads";
  ASSERT_EQ(a.corners.size(), b.corners.size());
  for (std::size_t c = 0; c < a.corners.size(); ++c) {
    const auto& ca = a.corners[c];
    const auto& cb = b.corners[c];
    EXPECT_EQ(ca.stored, cb.stored);
    EXPECT_EQ(ca.query, cb.query);
    EXPECT_EQ(ca.samples, cb.samples) << threads << " threads, corner " << c;
    EXPECT_EQ(ca.failures, cb.failures) << threads << " threads, corner " << c;
    EXPECT_EQ(ca.worst_margin, cb.worst_margin)
        << threads << " threads, corner " << c;
    EXPECT_EQ(ca.mean_margin, cb.mean_margin)
        << threads << " threads, corner " << c;
  }
}

class ThreadSweep {
 public:
  ~ThreadSweep() { util::set_thread_count(0); }
  template <typename Fn>
  void check(Fn&& run_and_compare) {
    for (const int threads : kThreadCounts) {
      util::set_thread_count(threads);
      run_and_compare(threads);
    }
  }
};

TEST(VariabilityDeterminism, ReportInvariantAcrossThreadCounts) {
  VariabilityParams p;
  p.samples = 40;
  p.seed = 7;
  util::set_thread_count(1);
  const auto golden = analyze_variability(tcam::Flavor::kDg, p);
  ASSERT_TRUE(golden.ok);
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    expect_identical(analyze_variability(tcam::Flavor::kDg, p), golden,
                     threads);
  });
}

TEST(VariabilityDeterminism, TrimmedReportInvariantAcrossThreadCounts) {
  VariabilityParams p;
  p.samples = 16;  // trim runs a verify loop per sample — keep this tight
  p.seed = 3;
  util::set_thread_count(1);
  const auto golden = analyze_variability_trimmed(tcam::Flavor::kDg, p);
  ASSERT_TRUE(golden.ok);
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    expect_identical(analyze_variability_trimmed(tcam::Flavor::kDg, p),
                     golden, threads);
  });
}

TEST(VariabilityDeterminism, DisturbReportInvariantAcrossThreadCounts) {
  util::set_thread_count(1);
  const auto golden = read_disturb_comparison();
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    const auto rep = read_disturb_comparison();
    ASSERT_EQ(rep.sg_fg_read.size(), golden.sg_fg_read.size());
    for (std::size_t k = 0; k < rep.sg_fg_read.size(); ++k) {
      EXPECT_EQ(rep.sg_fg_read[k].v_read, golden.sg_fg_read[k].v_read)
          << threads << " threads, point " << k;
      EXPECT_EQ(rep.sg_fg_read[k].p_drift_norm,
                golden.sg_fg_read[k].p_drift_norm)
          << threads << " threads, point " << k;
      EXPECT_EQ(rep.sg_fg_read[k].vth_drift, golden.sg_fg_read[k].vth_drift)
          << threads << " threads, point " << k;
    }
    EXPECT_EQ(rep.dg_bg_read.p_drift_norm, golden.dg_bg_read.p_drift_norm);
  });
}

TEST(VariabilityDeterminism, HalfSelectInvariantAcrossThreadCounts) {
  util::set_thread_count(1);
  const auto golden = half_select_study(true);
  ThreadSweep sweep;
  sweep.check([&](int threads) {
    const auto rep = half_select_study(true);
    ASSERT_EQ(rep.size(), golden.size());
    for (std::size_t k = 0; k < rep.size(); ++k) {
      EXPECT_EQ(rep[k].scheme, golden[k].scheme);
      EXPECT_EQ(rep[k].v_fe_program, golden[k].v_fe_program)
          << threads << " threads";
      EXPECT_EQ(rep[k].vth_drift_1k, golden[k].vth_drift_1k)
          << threads << " threads";
      EXPECT_EQ(rep[k].writes_to_fail, golden[k].writes_to_fail)
          << threads << " threads";
      EXPECT_EQ(rep[k].survives_budget, golden[k].survives_budget)
          << threads << " threads";
    }
  });
}

TEST(VariabilityDeterminism, OpenLoopAndTrimmedShareSampledDevices) {
  // Same (seed, trial) => same device in both analyses: with all sigmas
  // at zero the trimmed X placement converges to the same nominal target,
  // so the full-write corners (stored 0/1) must agree exactly.
  VariabilityParams p;
  p.samples = 4;
  p.sigma_fefet_vth = 0.0;
  p.sigma_ps_rel = 0.0;
  p.sigma_mos_vth = 0.0;
  p.sigma_vc_rel = 0.0;
  const auto open = analyze_variability(tcam::Flavor::kDg, p);
  const auto trimmed = analyze_variability_trimmed(tcam::Flavor::kDg, p);
  ASSERT_TRUE(open.ok && trimmed.ok);
  for (std::size_t c = 0; c < 4; ++c) {  // corners 0..3 store 0 or 1
    EXPECT_EQ(open.corners[c].worst_margin, trimmed.corners[c].worst_margin)
        << "corner " << c;
  }
}

}  // namespace
}  // namespace fetcam::eval
