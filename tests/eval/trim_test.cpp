#include "eval/trim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::eval {
namespace {

TEST(Trim, NominalDeviceConvergesInOnePulse) {
  const auto dev_card = dev::dg_fefet_params();
  const auto res = trim_mvt(dev_card, 0.605);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.pulses, 2);
  EXPECT_NEAR(res.final_vth, 0.605, 0.021);
}

TEST(Trim, WindowRelativePlacementTracksTheDeviceShift) {
  // A +80 mV threshold-shifted device: the window-relative policy places X
  // at the SAME fractional window position, i.e. ~80 mV above nominal.
  auto dev_card = dev::dg_fefet_params();
  dev_card.mos.vth0 += 0.08;
  const auto res = trim_mvt(dev_card, 0.605);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.final_vth, 0.605 + 0.08, 0.025);
  EXPECT_LE(res.pulses, 16);
}

TEST(Trim, AbsolutePlacementHitsTheAbsoluteTarget) {
  auto dev_card = dev::dg_fefet_params();
  dev_card.mos.vth0 += 0.08;
  TrimParams tp;
  tp.window_relative = false;
  const auto res = trim_mvt(dev_card, 0.605, tp);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.final_vth, 0.605, 0.021);
  // The controller had to move V_m off nominal to compensate the shift.
  const double vm_nom = dev::dg_fefet_params().write_voltage_for_vth(0.605);
  EXPECT_GT(std::abs(res.final_vm - vm_nom), 0.01);
}

TEST(Trim, ShrunkenWindowDeviceConverges) {
  auto dev_card = dev::dg_fefet_params();
  dev_card.mw_fg *= 0.85;
  const auto res = trim_mvt(dev_card, 0.605);
  ASSERT_TRUE(res.converged);
  // Window-relative: the achieved level sits at the nominal fraction of the
  // SHRUNKEN window.
  EXPECT_GT(res.final_vth, dev_card.vth_for(1.0));
  EXPECT_LT(res.final_vth, dev_card.vth_for(-1.0));
}

TEST(Trim, UnreachableAbsoluteTargetFailsHonestly) {
  auto dev_card = dev::dg_fefet_params();
  dev_card.mos.vth0 += 0.5;  // window no longer covers the nominal target
  TrimParams tp;
  tp.window_relative = false;
  const auto res = trim_mvt(dev_card, 0.605, tp);
  EXPECT_FALSE(res.converged);
}

TEST(Trim, ImprovesVariabilityYield) {
  VariabilityParams vp;
  vp.samples = 120;
  const auto open = analyze_variability(tcam::Flavor::kDg, vp);
  const auto closed = analyze_variability_trimmed(tcam::Flavor::kDg, vp);
  ASSERT_TRUE(open.ok && closed.ok);
  EXPECT_GT(closed.cell_yield, open.cell_yield);
  // The X-state corners improve (placement error removed).
  for (std::size_t c = 0; c < open.corners.size(); ++c) {
    if (open.corners[c].stored == arch::Ternary::kX) {
      EXPECT_LE(closed.corners[c].failures, open.corners[c].failures)
          << "corner " << c;
    }
  }
}

TEST(Trim, SgFlavorAlsoImproves) {
  VariabilityParams vp;
  vp.samples = 80;
  const auto open = analyze_variability(tcam::Flavor::kSg, vp);
  const auto closed = analyze_variability_trimmed(tcam::Flavor::kSg, vp);
  ASSERT_TRUE(open.ok && closed.ok);
  EXPECT_GE(closed.cell_yield, open.cell_yield);
}

}  // namespace
}  // namespace fetcam::eval
