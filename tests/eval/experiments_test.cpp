// Experiment-runner integration tests: the figure/table generators must
// reproduce the paper's headline device and circuit facts.
#include <gtest/gtest.h>

#include "eval/experiments.hpp"

namespace fetcam::eval {
namespace {

TEST(Fig1, SgMemoryWindowIs1p8V) {
  const auto c = fig1_sg_fg_read();
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.memory_window, 1.8, 0.1);
  EXPECT_GT(c.on_off_ratio, 1e3);
}

TEST(Fig1, DgBgMemoryWindowIs2p7V) {
  const auto c = fig1_dg_bg_read();
  ASSERT_TRUE(c.ok);
  EXPECT_NEAR(c.memory_window, 2.7, 0.2);
  // Paper: "10^4 level" ON/OFF at the select point.
  EXPECT_GT(c.on_off_ratio, 1e3);
  EXPECT_LT(c.on_off_ratio, 1e7);
}

TEST(Fig1, CurvesAreMonotonicallyIncreasing) {
  for (const auto& c : {fig1_sg_fg_read(), fig1_dg_bg_read()}) {
    ASSERT_TRUE(c.ok);
    for (std::size_t k = 1; k < c.vg.size(); ++k) {
      EXPECT_GE(c.id_lvt[k], c.id_lvt[k - 1] - 1e-12) << c.label;
      EXPECT_GE(c.id_hvt[k], c.id_hvt[k - 1] - 1e-12) << c.label;
    }
    // LVT conducts more than HVT at every gate voltage.
    for (std::size_t k = 0; k < c.vg.size(); ++k) {
      EXPECT_GE(c.id_lvt[k], c.id_hvt[k] - 1e-12) << c.label;
    }
  }
}

TEST(Fig4, ThreeCasesResolveCorrectly) {
  const auto cases = fig4_waveforms(tcam::Flavor::kDg);
  ASSERT_EQ(cases.size(), 3u);
  for (const auto& c : cases) {
    ASSERT_TRUE(c.ok) << c.label;
    EXPECT_EQ(c.matched, c.label == "match") << c.label;
    ASSERT_FALSE(c.t.empty());
    ASSERT_EQ(c.sel_a.size(), c.t.size());
    ASSERT_EQ(c.ml.size(), c.t.size());
  }
}

TEST(Fig4, EarlyTerminationKeepsSelBGrounded) {
  const auto cases = fig4_waveforms(tcam::Flavor::kDg);
  const auto& miss1 = cases[0];
  ASSERT_TRUE(miss1.ok);
  double selb_max = 0.0;
  for (const double v : miss1.sel_b) selb_max = std::max(selb_max, v);
  EXPECT_LT(selb_max, 0.1);  // paper Fig. 4(a): SeL_b never raised
  // The step-2 miss case does raise SeL_b.
  const auto& miss2 = cases[1];
  double selb2_max = 0.0;
  for (const double v : miss2.sel_b) selb2_max = std::max(selb2_max, v);
  EXPECT_GT(selb2_max, 1.5);
}

TEST(Fig4, MlDischargeTiming) {
  const auto cases = fig4_waveforms(tcam::Flavor::kDg);
  const auto& miss1 = cases[0];
  const auto& miss2 = cases[1];
  const auto& match = cases[2];
  ASSERT_TRUE(miss1.ok && miss2.ok && match.ok);
  // The ML is precharged from zero; evaluate only after the search starts.
  const double t_eval = 300e-12;
  // Step-1 miss discharges earlier than step-2 miss.
  const auto fall_time = [&](const Fig4Case& c) {
    for (std::size_t k = 0; k < c.t.size(); ++k) {
      if (c.t[k] > t_eval && c.ml[k] < 0.2) return c.t[k];
    }
    return 1e9;
  };
  EXPECT_LT(fall_time(miss1), fall_time(miss2));
  // Match: ML never falls after precharge.
  double ml_min = 1e9;
  for (std::size_t k = 0; k < match.t.size(); ++k) {
    if (match.t[k] > t_eval) ml_min = std::min(ml_min, match.ml[k]);
  }
  EXPECT_GT(ml_min, 0.4);
}

TEST(OperationTables, AllDesignsPassAllChecks) {
  for (const auto d :
       {arch::TcamDesign::k2DgFefet, arch::TcamDesign::k1p5DgFe,
        arch::TcamDesign::k1p5SgFe}) {
    const auto checks = verify_operation_table(d);
    EXPECT_GE(checks.size(), 6u);
    for (const auto& c : checks) {
      EXPECT_TRUE(c.passed)
          << arch::design_name(d) << ": " << c.operation << " " << c.detail;
    }
  }
}

TEST(Fig7, SmallSweepTrends) {
  // Two points suffice to check the latency-growth trend cheaply.
  const auto pts = fig7_sweep(arch::TcamDesign::k1p5SgFe, {8, 32});
  ASSERT_EQ(pts.size(), 2u);
  ASSERT_TRUE(pts[0].ok && pts[1].ok);
  EXPECT_GT(pts[1].latency_full_ps, pts[0].latency_full_ps);
  EXPECT_GT(pts[0].energy_1step_fj, 0.0);
}

TEST(Table4, RendersEveryRow) {
  // Use a light word so the full five-design evaluation stays quick.
  FomOptions opts;
  opts.n_bits = 8;
  const auto foms = table4(opts);
  ASSERT_EQ(foms.size(), 5u);
  for (const auto& f : foms) EXPECT_TRUE(f.ok) << f.name << ": " << f.error;
  const auto text = render_table4(foms);
  EXPECT_NE(text.find("1.5T1DG-Fe"), std::string::npos);
  EXPECT_NE(text.find("Write voltage"), std::string::npos);
  EXPECT_NE(text.find("Search latency"), std::string::npos);
  EXPECT_NE(text.find("N.A."), std::string::npos);  // 16T FE thickness
}

}  // namespace
}  // namespace fetcam::eval
