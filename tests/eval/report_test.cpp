#include "eval/report.hpp"

#include <gtest/gtest.h>

namespace fetcam::eval {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"wide-cell", "3"});
  const std::string s = t.str();
  // Every line has the same column start for the second column.
  const auto lines_start = s.find('\n');
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"x", "y", "z"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.str());
}

TEST(Format, Engineering) {
  EXPECT_EQ(format_eng(231.4, "ps"), "231 ps");
  EXPECT_EQ(format_eng(0.41, "fJ"), "0.41 fJ");
  EXPECT_EQ(format_eng(1.8, "V", 2), "1.8 V");
  EXPECT_EQ(format_eng(5.0, ""), "5");
}

TEST(Format, Ratio) {
  EXPECT_EQ(format_ratio(0.53, 0.14), "3.8x");
  EXPECT_EQ(format_ratio(1.0, 0.0), "-");
  EXPECT_EQ(format_ratio(0.286, 0.095, 3), "3.01x");
}

}  // namespace
}  // namespace fetcam::eval
