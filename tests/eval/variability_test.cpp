#include "eval/variability.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fetcam::eval {
namespace {

VariabilityParams quick(int samples, double scale) {
  VariabilityParams p;
  p.samples = samples;
  p.sigma_fefet_vth *= scale;
  p.sigma_ps_rel *= scale;
  p.sigma_mos_vth *= scale;
  p.sigma_vc_rel *= scale;
  return p;
}

TEST(Variability, NominalDesignHasPositiveMargins) {
  // Zero variation: every corner must decide with margin (the calibrated
  // design point), i.e. 100 % yield.
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    const auto rep = analyze_variability(flavor, quick(3, 0.0));
    ASSERT_TRUE(rep.ok);
    EXPECT_DOUBLE_EQ(rep.cell_yield, 1.0)
        << (flavor == tcam::Flavor::kSg ? "SG" : "DG");
    for (const auto& c : rep.corners) {
      EXPECT_GT(c.worst_margin, 0.0)
          << "stored " << arch::to_char(c.stored) << " q" << c.query;
    }
  }
}

TEST(Variability, YieldDegradesWithSigma) {
  const auto mild = analyze_variability(tcam::Flavor::kDg, quick(80, 0.5));
  const auto harsh = analyze_variability(tcam::Flavor::kDg, quick(80, 3.0));
  ASSERT_TRUE(mild.ok && harsh.ok);
  EXPECT_GE(mild.cell_yield, harsh.cell_yield);
  // 3x nominal sigma must break the thin DG margins at least sometimes.
  EXPECT_LT(harsh.cell_yield, 1.0);
}

TEST(Variability, SgHasWiderMarginsThanDg) {
  // The DG divider window is pinched by the (1 + k) source degeneration
  // (EXPERIMENTS.md deviation 1): at equal sigma its worst corner margin is
  // smaller than the SG flavour's.  Coercive-voltage (write-path) noise is
  // excluded here: it maps to LARGER absolute Vth error on the SG flavour
  // (wider window x same relative branch error) and would mask the
  // divider-window comparison this test makes.
  auto params = quick(60, 1.0);
  params.sigma_vc_rel = 0.0;
  const auto sg = analyze_variability(tcam::Flavor::kSg, params);
  const auto dg = analyze_variability(tcam::Flavor::kDg, params);
  ASSERT_TRUE(sg.ok && dg.ok);
  double sg_worst = 1e9, dg_worst = 1e9;
  for (const auto& c : sg.corners) sg_worst = std::min(sg_worst, c.worst_margin);
  for (const auto& c : dg.corners) dg_worst = std::min(dg_worst, c.worst_margin);
  EXPECT_GE(sg.cell_yield, dg.cell_yield);
  EXPECT_GT(sg_worst, dg_worst - 0.02);
}

TEST(Variability, CornerBookkeeping) {
  const auto rep = analyze_variability(tcam::Flavor::kSg, quick(10, 1.0));
  ASSERT_EQ(rep.corners.size(), 6u);
  for (const auto& c : rep.corners) {
    EXPECT_EQ(c.samples, 10);
    EXPECT_GE(c.failures, 0);
    EXPECT_LE(c.failures, 10);
    EXPECT_GE(c.failure_rate(), 0.0);
    EXPECT_LE(c.failure_rate(), 1.0);
  }
}

TEST(Variability, DeterministicForFixedSeed) {
  const auto a = analyze_variability(tcam::Flavor::kDg, quick(30, 1.0));
  const auto b = analyze_variability(tcam::Flavor::kDg, quick(30, 1.0));
  EXPECT_DOUBLE_EQ(a.cell_yield, b.cell_yield);
  for (std::size_t c = 0; c < a.corners.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.corners[c].worst_margin, b.corners[c].worst_margin);
  }
}

// Property-style randomized check: across 20 random run seeds, the report
// must satisfy the structural invariants whatever the draws were.  The
// run seeds themselves come from a fixed splitmix64 stream, so a failure
// reproduces.
TEST(Variability, InvariantsHoldAcrossRandomSeeds) {
  util::SplitMix64 meta(20260806);
  for (int run = 0; run < 20; ++run) {
    VariabilityParams p = quick(8, 1.0);
    p.seed = static_cast<unsigned>(meta.next());
    const auto rep = analyze_variability(tcam::Flavor::kDg, p);
    ASSERT_TRUE(rep.ok) << "run " << run << " seed " << p.seed;
    ASSERT_EQ(rep.corners.size(), 6u);
    EXPECT_GE(rep.cell_yield, 0.0);
    EXPECT_LE(rep.cell_yield, 1.0);
    for (const auto& c : rep.corners) {
      EXPECT_EQ(c.samples, p.samples);
      EXPECT_GE(c.failures, 0);
      EXPECT_LE(c.failures, c.samples) << "seed " << p.seed;
      EXPECT_GE(c.solver_failures, 0);
      EXPECT_LE(c.solver_failures, c.failures) << "seed " << p.seed;
      if (c.solver_failures == 0) {
        // Every margin is real: the minimum cannot exceed the mean.
        EXPECT_LE(c.worst_margin, c.mean_margin + 1e-12)
            << "seed " << p.seed << " stored " << arch::to_char(c.stored)
            << " q" << c.query;
      }
    }
  }
}

// Yield must not IMPROVE when the FeFET V_TH spread grows.  The per-trial
// counter RNG gives common random numbers across the sigma levels (trial
// s draws the same Gaussians, scaled), making this a paired comparison
// rather than a noisy statistical one.
TEST(Variability, YieldMonotoneInFefetVthSigma) {
  util::SplitMix64 meta(42);
  for (int run = 0; run < 20; ++run) {
    const unsigned seed = static_cast<unsigned>(meta.next());
    double prev_yield = 2.0;
    for (const double sigma : {0.0, 0.03, 0.12}) {
      VariabilityParams p = quick(8, 0.0);  // all other spreads off
      p.sigma_fefet_vth = sigma;
      p.seed = seed;
      const auto rep = analyze_variability(tcam::Flavor::kDg, p);
      ASSERT_TRUE(rep.ok);
      EXPECT_LE(rep.cell_yield, prev_yield)
          << "seed " << seed << " sigma " << sigma;
      prev_yield = rep.cell_yield;
    }
  }
}

}  // namespace
}  // namespace fetcam::eval
