// Golden regression bands for the calibrated Table IV operating point.
//
// These are NOT the paper's numbers (see EXPERIMENTS.md for that mapping) —
// they are THIS reproduction's calibrated 64-bit results, locked within
// generous bands so that device-card or harness changes that silently move
// the evaluation get caught.  If a deliberate recalibration moves a value,
// update the band AND the EXPERIMENTS.md table together.
#include <gtest/gtest.h>

#include "eval/fom.hpp"

namespace fetcam::eval {
namespace {

struct Golden {
  arch::TcamDesign design;
  double latency_ps;    // full-operation worst case
  double energy_avg_fj; // per cell
  double write_fj;      // per cell; 0 = N.A.
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, Table4PointWithinBands) {
  const Golden g = GetParam();
  const auto fom = evaluate_fom(g.design);
  ASSERT_TRUE(fom.ok) << fom.error;
  EXPECT_NEAR(fom.latency_ps, g.latency_ps, 0.25 * g.latency_ps);
  EXPECT_NEAR(fom.energy_avg_fj, g.energy_avg_fj, 0.25 * g.energy_avg_fj);
  if (g.write_fj > 0.0) {
    EXPECT_NEAR(fom.write_energy_fj, g.write_fj, 0.25 * g.write_fj);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Calibrated64Bit, GoldenTest,
    ::testing::Values(
        Golden{arch::TcamDesign::kCmos16T, 79.0, 0.164, 0.0},
        Golden{arch::TcamDesign::k2SgFefet, 470.0, 0.237, 4.0},
        Golden{arch::TcamDesign::k2DgFefet, 968.0, 2.32, 1.83},
        Golden{arch::TcamDesign::k1p5SgFe, 267.0, 0.214, 2.22},
        Golden{arch::TcamDesign::k1p5DgFe, 737.0, 0.506, 0.965}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string n = arch::design_name(info.param.design);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace fetcam::eval
