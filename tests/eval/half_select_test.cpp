#include "eval/half_select.hpp"

#include <gtest/gtest.h>

namespace fetcam::eval {
namespace {

TEST(HalfSelect, DgNaiveRowGatingDisturbsAtCoerciveVoltage) {
  // The architecture gap: with only row-gated Wr/SL, an inhibited DG cell
  // sees Vw - VDD/2 = 1.6 V = exactly V_c across its ferroelectric during
  // program pulses — it disturbs within a handful of neighbouring writes.
  const auto pts = half_select_study(/*double_gate=*/true);
  ASSERT_EQ(pts.size(), 3u);
  const auto& naive = pts[0];
  EXPECT_NEAR(naive.v_fe_program, 1.6, 1e-9);
  EXPECT_FALSE(naive.survives_budget);
  EXPECT_LT(naive.writes_to_fail, 1000);
}

TEST(HalfSelect, RaisedSlBuysOrdersOfMagnitude) {
  const auto pts = half_select_study(true);
  const auto& naive = pts[0];
  const auto& raised = pts[1];
  EXPECT_LT(raised.v_fe_program, naive.v_fe_program);
  EXPECT_GT(raised.writes_to_fail, 100 * naive.writes_to_fail);
}

TEST(HalfSelect, VwThirdsIsEffectivelyDisturbFree) {
  for (const bool dg : {true, false}) {
    const auto pts = half_select_study(dg);
    const auto& thirds = pts[2];
    EXPECT_TRUE(thirds.survives_budget) << (dg ? "DG" : "SG");
    EXPECT_LT(thirds.vth_drift_1k, 1e-3);
  }
}

TEST(HalfSelect, SgHasMoreNaiveHeadroom) {
  // SG: Vw - VDD/2 = 3.6 V vs Vc = 3.2 V — also above coercive!  Both
  // flavours need an inhibit scheme; neither survives naive gating.
  const auto sg = half_select_study(false);
  EXPECT_NEAR(sg[0].v_fe_program, 3.6, 1e-9);
  EXPECT_FALSE(sg[0].survives_budget);
}

TEST(HalfSelect, DriftMonotoneInVfe) {
  const auto pts = half_select_study(true);
  // Lower inhibited v_FE => slower failure.
  EXPECT_LE(pts[2].vth_drift_1k, pts[1].vth_drift_1k);
  EXPECT_LE(pts[1].vth_drift_1k, pts[0].vth_drift_1k);
}

}  // namespace
}  // namespace fetcam::eval
