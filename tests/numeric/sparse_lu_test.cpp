#include "numeric/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <random>

#include "numeric/lu.hpp"

namespace fetcam::num {
namespace {

TripletAccumulator from_dense(const Matrix& a) {
  TripletAccumulator acc(a.rows());
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      if (a(r, c) != 0.0) acc.add(r, c, a(r, c));
    }
  }
  return acc;
}

TEST(SparseLu, SolvesDiagonal) {
  TripletAccumulator a(3);
  a.add(0, 0, 2.0);
  a.add(1, 1, -4.0);
  a.add(2, 2, 0.5);
  Vector b(3);
  b[0] = 2.0;
  b[1] = 8.0;
  b[2] = 1.0;
  const auto x = solve_sparse(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], -2.0, 1e-12);
  EXPECT_NEAR((*x)[2], 2.0, 1e-12);
}

TEST(SparseLu, RequiresPivoting) {
  // Zero diagonal forces a row swap.
  TripletAccumulator a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  Vector b(2);
  b[0] = 3.0;
  b[1] = 7.0;
  const auto x = solve_sparse(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SparseLu, DetectsSingular) {
  TripletAccumulator a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  SparseLu lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_GE(lu.failed_column(), 0);
}

TEST(SparseLu, DuplicateTripletsAreSummed) {
  TripletAccumulator a(1);
  a.add(0, 0, 1.5);
  a.add(0, 0, 0.5);
  Vector b(1);
  b[0] = 4.0;
  const auto x = solve_sparse(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
}

TEST(SparseLu, MnaLikeLadderWithSourceRows) {
  // Resistor ladder with a voltage-source branch row: unsymmetric, zero
  // diagonal in the branch block.
  //   [ G  -G   0   1 ] [v1]   [0]
  //   [-G  2G  -G   0 ] [v2] = [0]
  //   [ 0  -G   G   0 ] [v3]   [0]  (floating end anchored by gmin)
  //   [ 1   0   0   0 ] [i ]   [V]
  const double g = 1e-3;
  TripletAccumulator a(4);
  a.add(0, 0, g);
  a.add(0, 1, -g);
  a.add(0, 3, 1.0);
  a.add(1, 0, -g);
  a.add(1, 1, 2.0 * g);
  a.add(1, 2, -g);
  a.add(2, 1, -g);
  a.add(2, 2, g + 1e-12);
  a.add(3, 0, 1.0);
  Vector b(4);
  b[3] = 1.0;
  const auto x = solve_sparse(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-6);
  EXPECT_NEAR((*x)[1], 1.0, 1e-6);  // no load current: all nodes at 1 V
  EXPECT_NEAR((*x)[2], 1.0, 1e-6);
}

class SparseVsDenseTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDenseTest, AgreesWithDenseOnRandomSparseSystems) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 17u + 7u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<Index> col(0, n - 1);
  Matrix dense(n, n);
  for (Index r = 0; r < n; ++r) {
    dense(r, r) = 4.0 + dist(rng);
    for (int k = 0; k < 5; ++k) dense(r, col(rng)) += dist(rng);
  }
  Vector x_true(n);
  for (Index i = 0; i < n; ++i) x_true[i] = dist(rng);
  const Vector b = dense.multiply(x_true);

  const auto xs = solve_sparse(from_dense(dense), b);
  ASSERT_TRUE(xs.has_value());
  const auto xd = solve_dense(dense, b);
  ASSERT_TRUE(xd.has_value());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR((*xs)[i], (*xd)[i], 1e-8) << "i=" << i;
    EXPECT_NEAR((*xs)[i], x_true[i], 1e-7) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDenseTest,
                         ::testing::Values(2, 8, 32, 128, 512));

TEST(SparseLu, BadlyScaledRows) {
  // kS rows next to pA rows (the equilibrated-dense-LU test case).
  TripletAccumulator a(3);
  a.add(0, 0, 1e3);
  a.add(0, 1, 1e-7);
  a.add(1, 0, 1e-7);
  a.add(1, 1, 1e-6);
  a.add(1, 2, 1e-13);
  a.add(2, 1, 1e-13);
  a.add(2, 2, 1e-12);
  Vector x_true(3);
  x_true[0] = 1.0;
  x_true[1] = 2.0;
  x_true[2] = 3.0;
  Matrix dense(3, 3);
  dense(0, 0) = 1e3;
  dense(0, 1) = 1e-7;
  dense(1, 0) = 1e-7;
  dense(1, 1) = 1e-6;
  dense(1, 2) = 1e-13;
  dense(2, 1) = 1e-13;
  dense(2, 2) = 1e-12;
  const Vector b = dense.multiply(x_true);
  const auto x = solve_sparse(a, b);
  ASSERT_TRUE(x.has_value());
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR((*x)[i], x_true[i], 1e-6 * std::abs(x_true[i]));
  }
}

TEST(SparseLu, TridiagonalHasLinearFill) {
  // A tridiagonal system must produce O(n) factor nonzeros, not O(n^2) —
  // the sparsity-preserving property that justifies the solver.
  const int n = 400;
  TripletAccumulator a(n);
  for (Index i = 0; i < n; ++i) {
    a.add(i, i, 2.1);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.0);
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  EXPECT_LT(lu.factor_nonzeros(), static_cast<std::size_t>(4 * n));
  const Vector b(n, 1.0);
  const Vector x = lu.solve(b);
  // Verify the residual.
  for (Index i = 1; i + 1 < n; ++i) {
    const double r = 2.1 * x[i] - x[i - 1] - x[i + 1];
    EXPECT_NEAR(r, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace fetcam::num
