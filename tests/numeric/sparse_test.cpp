#include "numeric/sparse.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fetcam::num {
namespace {

TEST(Csr, BuildsFromTripletsWithDuplicates) {
  TripletAccumulator acc(3);
  acc.add(0, 0, 1.0);
  acc.add(0, 0, 2.0);  // duplicate, summed
  acc.add(1, 2, -1.0);
  acc.add(2, 1, 4.0);
  acc.add(1, 1, 0.5);
  const CsrMatrix m = CsrMatrix::from_triplets(acc);
  EXPECT_EQ(m.nonzeros(), 4u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(Csr, DropsCancellingEntries) {
  TripletAccumulator acc(2);
  acc.add(0, 1, 5.0);
  acc.add(0, 1, -5.0);
  acc.add(1, 1, 1.0);
  const CsrMatrix m = CsrMatrix::from_triplets(acc);
  EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(Csr, MultiplyMatchesDense) {
  TripletAccumulator acc(3);
  acc.add(0, 0, 2.0);
  acc.add(0, 2, 1.0);
  acc.add(1, 1, -1.0);
  acc.add(2, 0, 3.0);
  acc.add(2, 2, 4.0);
  const CsrMatrix m = CsrMatrix::from_triplets(acc);
  Vector x(3);
  x[0] = 1.0;
  x[1] = 2.0;
  x[2] = -1.0;
  const Vector y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Bicgstab, SolvesSmallUnsymmetric) {
  TripletAccumulator acc(3);
  acc.add(0, 0, 4.0);
  acc.add(0, 1, 1.0);
  acc.add(1, 0, -1.0);
  acc.add(1, 1, 3.0);
  acc.add(1, 2, 0.5);
  acc.add(2, 2, 5.0);
  acc.add(2, 0, 0.2);
  const CsrMatrix m = CsrMatrix::from_triplets(acc);
  Vector x_true(3);
  x_true[0] = 1.0;
  x_true[1] = -2.0;
  x_true[2] = 0.5;
  const Vector b = m.multiply(x_true);
  Vector x(3);
  const auto res = solve_bicgstab(m, b, x);
  ASSERT_TRUE(res.converged);
  for (Index i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

class BicgstabRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BicgstabRandomTest, SolvesDiagonallyDominantSparse) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) + 101u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<Index> col(0, n - 1);
  TripletAccumulator acc(n);
  for (Index r = 0; r < n; ++r) {
    acc.add(r, r, 10.0 + dist(rng));
    for (int k = 0; k < 4; ++k) acc.add(r, col(rng), dist(rng));
  }
  const CsrMatrix m = CsrMatrix::from_triplets(acc);
  Vector x_true(n);
  for (Index i = 0; i < n; ++i) x_true[i] = dist(rng);
  const Vector b = m.multiply(x_true);
  Vector x(n);
  const auto res = solve_bicgstab(m, b, x);
  ASSERT_TRUE(res.converged) << "n=" << n << " residual=" << res.residual;
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BicgstabRandomTest,
                         ::testing::Values(4, 16, 64, 256, 1024));

}  // namespace
}  // namespace fetcam::num
