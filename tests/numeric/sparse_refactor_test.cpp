// Refactor-vs-full-factor equivalence for the KLU-style reuse path.
//
// The contract under test (sparse_lu.hpp): a successful numeric-only
// refactor is BIT-IDENTICAL to the full factor a fresh SparseLu would
// produce for the same matrix — same pivot order, same L/U values, same
// solve output — and any pivot drift past the threshold triggers a
// fallback whose result is again bit-identical to the full factor.  Reuse
// changes cost, never results.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numeric/sparse_lu.hpp"
#include "numeric/stamped_csc.hpp"

namespace fetcam::num {
namespace {

/// Random MNA-shaped system: a diagonally-loaded conductance ladder with
/// random cross-couplings plus one voltage-source-style branch row pair
/// (zero diagonal, forces pivoting).  Stamp order is deterministic for a
/// given seed, mimicking a device loop.
TripletAccumulator make_mna_like(Index n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> g(0.1, 10.0);
  std::uniform_int_distribution<Index> pick(0, n - 2);
  TripletAccumulator a(n);
  for (Index i = 0; i + 1 < n; ++i) {
    const double cond = g(rng);
    a.add(i, i, cond + 0.3);
    if (i > 0) {
      a.add(i, i - 1, -cond);
      a.add(i - 1, i, -cond);
      a.add(i - 1, i - 1, cond);
    }
  }
  for (int k = 0; k < static_cast<int>(n); ++k) {
    const Index r = pick(rng);
    const Index c = pick(rng);
    a.add(r, c, 0.01 * g(rng));  // random coupling, may duplicate
  }
  // Branch row: f_br = v0 - V, current unknown couples into node 0.
  a.add(n - 1, 0, 1.0);
  a.add(0, n - 1, 1.0);
  return a;
}

/// Replay `a`'s stamp stream into `m` with every value scaled, keeping the
/// pattern (and stamp sequence) identical.
void refill_scaled(StampedCsc& m, const TripletAccumulator& a, double scale,
                   std::size_t boosted_entry = SIZE_MAX,
                   double boost = 1.0) {
  m.begin_fill();
  for (std::size_t k = 0; k < a.entries(); ++k) {
    const double f = (k == boosted_entry) ? boost : scale;
    ASSERT_TRUE(m.add(a.rows()[k], a.cols()[k], a.vals()[k] * f));
  }
  ASSERT_TRUE(m.end_fill());
}

void expect_identical_factors(const SparseLu& got, const SparseLu& want) {
  ASSERT_EQ(got.perm().size(), want.perm().size());
  for (std::size_t i = 0; i < want.perm().size(); ++i) {
    EXPECT_EQ(got.perm()[i], want.perm()[i]) << "pivot order differs at " << i;
  }
  ASSERT_EQ(got.l_values().size(), want.l_values().size());
  for (std::size_t i = 0; i < want.l_values().size(); ++i) {
    EXPECT_EQ(got.l_values()[i], want.l_values()[i])
        << "L value differs (bit-exact) at " << i;
  }
  ASSERT_EQ(got.u_values().size(), want.u_values().size());
  for (std::size_t i = 0; i < want.u_values().size(); ++i) {
    EXPECT_EQ(got.u_values()[i], want.u_values()[i])
        << "U value differs (bit-exact) at " << i;
  }
}

TEST(SparseRefactor, RefactorMatchesFullFactorBitExact) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    const Index n = 60;
    const TripletAccumulator a = make_mna_like(n, seed);
    StampedCsc m;
    m.build(a);

    SparseLu reused;
    ASSERT_TRUE(reused.factor(m));
    EXPECT_EQ(reused.stats().full_factors, 1u);

    // Perturb all values by a few percent — same pattern, same pivots.
    refill_scaled(m, a, 1.03);
    ASSERT_TRUE(reused.factor(m));
    ASSERT_EQ(reused.stats().refactors, 1u)
        << "perturbed same-pattern factor should take the refactor path";
    EXPECT_EQ(reused.stats().fallbacks, 0u);
    EXPECT_LE(reused.last_refactor_min_growth(), 1.0);
    EXPECT_GT(reused.last_refactor_min_growth(), 0.0);

    // Reference: a fresh instance full-factoring the same values.
    StampedCsc m2;
    m2.build(a);
    refill_scaled(m2, a, 1.03);
    SparseLu fresh;
    ASSERT_TRUE(fresh.factor(m2));
    EXPECT_EQ(fresh.stats().full_factors, 1u);
    expect_identical_factors(reused, fresh);

    // Solves agree bit-exactly too, in both the returning and the
    // in-place overload.
    Vector b(n);
    std::mt19937 rng(seed ^ 0x9e3779b9u);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (Index i = 0; i < n; ++i) b[i] = u(rng);
    const Vector x_reused = reused.solve(static_cast<const Vector&>(b));
    const Vector x_fresh = fresh.solve(static_cast<const Vector&>(b));
    Vector x_inplace = b;
    reused.solve(x_inplace);
    for (Index i = 0; i < n; ++i) {
      EXPECT_EQ(x_reused[i], x_fresh[i]);
      EXPECT_EQ(x_reused[i], x_inplace[i]);
    }
  }
}

TEST(SparseRefactor, PivotDriftTriggersFallbackAndMatchesFullFactor) {
  // First assignment: the diagonal dominates column 0 and is recorded as
  // the pivot.  Second assignment shrinks A(0,0) RELATIVE TO ITS OWN ROW
  // (row equilibration neutralizes whole-row scaling), pushing the diagonal
  // below the 10% threshold so the verified refactor must bail out.
  const Index n = 2;
  TripletAccumulator a(n);
  a.add(0, 0, 1.0);
  a.add(0, 1, 0.2);
  a.add(1, 0, 0.5);
  a.add(1, 1, 1.0);
  StampedCsc m;
  m.build(a);

  SparseLu reused;
  ASSERT_TRUE(reused.factor(m));
  EXPECT_EQ(reused.perm()[0], 0) << "diagonal should be the recorded pivot";

  const double drifted[] = {0.001, 1.0, 0.5, 1.0};
  m.begin_fill();
  for (std::size_t k = 0; k < a.entries(); ++k) {
    ASSERT_TRUE(m.add(a.rows()[k], a.cols()[k], drifted[k]));
  }
  ASSERT_TRUE(m.end_fill());
  ASSERT_TRUE(reused.factor(m));
  EXPECT_EQ(reused.stats().fallbacks, 1u)
      << "diagonal decay past the threshold must change the pivot choice";
  EXPECT_EQ(reused.stats().full_factors, 2u);
  EXPECT_EQ(reused.perm()[0], 1) << "fallback full factor repivots";

  StampedCsc m2;
  m2.build(a);
  m2.begin_fill();
  for (std::size_t k = 0; k < a.entries(); ++k) {
    ASSERT_TRUE(m2.add(a.rows()[k], a.cols()[k], drifted[k]));
  }
  ASSERT_TRUE(m2.end_fill());
  SparseLu fresh;
  ASSERT_TRUE(fresh.factor(m2));
  expect_identical_factors(reused, fresh);

  // After the fallback the NEW factorization is the cached one; a repeat of
  // the same values now refactors cleanly again.
  ASSERT_TRUE(reused.factor(m));
  EXPECT_EQ(reused.stats().refactors, 1u);
  EXPECT_EQ(reused.stats().fallbacks, 1u);
  expect_identical_factors(reused, fresh);
}

TEST(SparseRefactor, PatternChangeForcesFullFactor) {
  const Index n = 30;
  const TripletAccumulator a = make_mna_like(n, 5);
  StampedCsc m;
  m.build(a);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_EQ(lu.stats().full_factors, 1u);

  // Rebuilding bumps the pattern id, so reuse must not kick in even though
  // the values and structure are the same.
  m.build(a);
  ASSERT_TRUE(lu.factor(m));
  EXPECT_EQ(lu.stats().full_factors, 2u);
  EXPECT_EQ(lu.stats().refactors, 0u);
}

TEST(SparseRefactor, ReuseDisabledAlwaysFullFactors) {
  const Index n = 30;
  const TripletAccumulator a = make_mna_like(n, 11);
  StampedCsc m;
  m.build(a);
  SparseLuOptions opts;
  opts.reuse_symbolic = false;
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m, opts));
  ASSERT_TRUE(lu.factor(m, opts));
  EXPECT_EQ(lu.stats().full_factors, 2u);
  EXPECT_EQ(lu.stats().refactors, 0u);
}

TEST(SparseRefactor, SingularRefactorFallsBackAndReportsFailure) {
  // A value assignment that zeroes a whole column is caught by the pivot
  // re-verification (floor test), falls back, and the full factor reports
  // the singularity.
  const Index n = 3;
  TripletAccumulator a(n);
  a.add(0, 0, 2.0);
  a.add(1, 1, 3.0);
  a.add(2, 2, 4.0);
  a.add(1, 0, -1.0);
  StampedCsc m;
  m.build(a);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));

  m.begin_fill();
  ASSERT_TRUE(m.add(0, 0, 0.0));  // column 0 now all-zero
  ASSERT_TRUE(m.add(1, 1, 3.0));
  ASSERT_TRUE(m.add(2, 2, 4.0));
  ASSERT_TRUE(m.add(1, 0, 0.0));
  ASSERT_TRUE(m.end_fill());
  EXPECT_FALSE(lu.factor(m));
  EXPECT_EQ(lu.failed_column(), 0);
  EXPECT_FALSE(lu.factored());
}

TEST(StampedCscReplay, DetectsDivergingStampStream) {
  TripletAccumulator a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 2.0);
  StampedCsc m;
  m.build(a);
  ASSERT_TRUE(m.has_pattern());

  // Matching replay succeeds and sums duplicates into the recorded slots.
  m.begin_fill();
  EXPECT_TRUE(m.add(0, 0, 3.0));
  EXPECT_TRUE(m.add(1, 1, 4.0));
  EXPECT_TRUE(m.end_fill());
  EXPECT_EQ(m.vals()[0], 3.0);

  // Wrong coordinate at step 0 -> rejected immediately.
  m.begin_fill();
  EXPECT_FALSE(m.add(1, 0, 3.0));

  // Short stream -> end_fill reports the miscount.
  m.begin_fill();
  EXPECT_TRUE(m.add(0, 0, 3.0));
  EXPECT_FALSE(m.end_fill());

  // Extra stamp past the recorded sequence -> rejected.
  m.begin_fill();
  EXPECT_TRUE(m.add(0, 0, 3.0));
  EXPECT_TRUE(m.add(1, 1, 4.0));
  EXPECT_FALSE(m.add(0, 1, 5.0));
}

TEST(StampedCscReplay, SinkAdapterSwallowsAfterMismatch) {
  TripletAccumulator a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 2.0);
  StampedCsc m;
  m.build(a);
  m.begin_fill();
  StampedCscSink sink(m);
  sink.add(0, 0, 5.0);
  sink.add(0, 1, 6.0);  // diverges: not in the recorded stream
  sink.add(1, 1, 7.0);  // swallowed, must not corrupt slots
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(m.vals()[1], 0.0);
}

}  // namespace
}  // namespace fetcam::num
