#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::num {
namespace {

TEST(Vector, BasicOps) {
  Vector v(3, 1.0);
  EXPECT_EQ(v.size(), 3);
  v[1] = -4.0;
  EXPECT_DOUBLE_EQ(v.inf_norm(), 4.0);
  EXPECT_DOUBLE_EQ(v.two_norm(), std::sqrt(1.0 + 16.0 + 1.0));
}

TEST(Vector, Axpy) {
  Vector v(2, 1.0);
  Vector w(2);
  w[0] = 2.0;
  w[1] = -1.0;
  v.axpy(3.0, w);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(Vector, EmptyNorms) {
  Vector v;
  EXPECT_DOUBLE_EQ(v.inf_norm(), 0.0);
  EXPECT_DOUBLE_EQ(v.two_norm(), 0.0);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a(3, 3);
  for (Index i = 0; i < 3; ++i) a(i, i) = 1.0;
  Vector x(3);
  x[0] = 1.0;
  x[1] = 2.0;
  x[2] = 3.0;
  const Vector y = a.multiply(x);
  for (Index i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, MultiplyGeneral) {
  Matrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = -1.0;
  a(1, 1) = 0.0;
  a(1, 2) = 4.0;
  Vector x(3);
  x[0] = 1.0;
  x[1] = 1.0;
  x[2] = 2.0;
  const Vector y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, InfNorm) {
  Matrix a(2, 2);
  a(0, 0) = -3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 2.0;
  EXPECT_DOUBLE_EQ(a.inf_norm(), 4.0);
}

TEST(Matrix, SetZeroKeepsShape) {
  Matrix a(2, 2, 5.0);
  a.set_zero();
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.0);
}

}  // namespace
}  // namespace fetcam::num
