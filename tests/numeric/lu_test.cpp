#include "numeric/lu.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fetcam::num {
namespace {

TEST(Lu, SolvesDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  Vector b(2);
  b[0] = 2.0;
  b[1] = 8.0;
  const auto x = solve_dense(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  Vector b(2);
  b[0] = 3.0;
  b[1] = 7.0;
  const auto x = solve_dense(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  LuFactorization lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_GE(lu.failed_row(), 0);
}

TEST(Lu, BadlyScaledMnaLikeSystem) {
  // Row magnitudes spanning 15 orders of magnitude (kS supply rows next to
  // pA-leakage rows), but each row diagonally dominant — well-conditioned
  // after equilibration.  A global-norm pivot test wrongly rejects this.
  Matrix a(3, 3);
  a(0, 0) = 1e3;
  a(0, 1) = 1e-7;
  a(1, 0) = 1e-7;
  a(1, 1) = 1e-6;
  a(1, 2) = 1e-13;
  a(2, 1) = 1e-13;
  a(2, 2) = 1e-12;
  Vector x_true(3);
  x_true[0] = 1.0;
  x_true[1] = 2.0;
  x_true[2] = 3.0;
  const Vector b = a.multiply(x_true);
  const auto x = solve_dense(a, b);
  ASSERT_TRUE(x.has_value());
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR((*x)[i], x_true[i], 1e-6 * std::abs(x_true[i]));
  }
}

class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, RoundTripsRandomSystems) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 7919u + 13u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += 2.0;  // keep comfortably nonsingular
  }
  Vector x_true(n);
  for (Index i = 0; i < n; ++i) x_true[i] = dist(rng);
  const Vector b = a.multiply(x_true);
  const auto x = solve_dense(a, b);
  ASSERT_TRUE(x.has_value());
  for (Index i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomTest,
                         ::testing::Values(1, 2, 5, 16, 64, 128));

}  // namespace
}  // namespace fetcam::num
