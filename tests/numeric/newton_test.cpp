#include "numeric/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::num {
namespace {

TEST(Newton, SolvesScalarQuadratic) {
  // f(x) = x^2 - 4 = 0, root at 2 from a positive start.
  const AssembleFn f = [](const Vector& x, Matrix& jac, Vector& res) {
    res[0] = x[0] * x[0] - 4.0;
    jac(0, 0) = 2.0 * x[0];
  };
  Vector x(1, 3.0);
  const auto r = solve_newton(f, x);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
}

TEST(Newton, Solves2dSystem) {
  // x^2 + y^2 = 5, x*y = 2  ->  (2, 1) from a nearby start.
  const AssembleFn f = [](const Vector& x, Matrix& jac, Vector& res) {
    res[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    res[1] = x[0] * x[1] - 2.0;
    jac(0, 0) = 2.0 * x[0];
    jac(0, 1) = 2.0 * x[1];
    jac(1, 0) = x[1];
    jac(1, 1) = x[0];
  };
  Vector x(2);
  x[0] = 2.5;
  x[1] = 0.5;
  const auto r = solve_newton(f, x);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-7);
  EXPECT_NEAR(x[1], 1.0, 1e-7);
}

TEST(Newton, StepClampTamesExponential) {
  // Diode-like f(x) = 1e-12*(exp(x/0.026) - 1) - 1e-3: overflows without
  // voltage limiting from a zero start.
  const AssembleFn f = [](const Vector& x, Matrix& jac, Vector& res) {
    const double e = std::exp(std::min(x[0] / 0.026, 300.0));
    res[0] = 1e-12 * (e - 1.0) - 1e-3;
    jac(0, 0) = 1e-12 / 0.026 * e;
  };
  Vector x(1, 0.0);
  NewtonOptions opts;
  opts.max_step = 0.1;
  opts.residual_tol = 1e-12;
  const auto r = solve_newton(f, x, opts);
  ASSERT_TRUE(r.converged);
  const double expected = 0.026 * std::log(1e9 + 1.0);
  EXPECT_NEAR(x[0], expected, 1e-6);
}

TEST(Newton, ReportsSingularJacobian) {
  const AssembleFn f = [](const Vector& x, Matrix& jac, Vector& res) {
    res[0] = x[0] + x[1] - 1.0;
    res[1] = 2.0 * x[0] + 2.0 * x[1] - 2.0;
    jac(0, 0) = 1.0;
    jac(0, 1) = 1.0;
    jac(1, 0) = 2.0;
    jac(1, 1) = 2.0;
  };
  Vector x(2, 0.0);
  const auto r = solve_newton(f, x);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.singular);
}

TEST(Newton, DoesNotConvergeOnRootlessFunction) {
  const AssembleFn f = [](const Vector& x, Matrix& jac, Vector& res) {
    res[0] = x[0] * x[0] + 1.0;  // no real root
    jac(0, 0) = 2.0 * x[0] + 1e-3;
  };
  Vector x(1, 1.0);
  NewtonOptions opts;
  opts.max_iterations = 50;
  const auto r = solve_newton(f, x, opts);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace fetcam::num
