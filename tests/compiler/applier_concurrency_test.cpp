// Make-before-break applier under concurrency.
//
// Two properties, tested separately:
//
//   1. DETERMINISM (golden, thread-sweep): a fixed single-producer
//      scenario — install, search sweeps, two churn updates — produces
//      bit-identical search results, write pulses, energy, and per-mat
//      endurance totals at 1, 2, and 8 worker threads, and every
//      quiescent sweep agrees with the brute-force reference resolver
//      (the soft table).
//
//   2. ATOMICITY (racy): searcher threads hammer the engine while the
//      main thread applies an update plan.  Every observed result must be
//      the OLD winner, the NEW winner, or — only on keys the old set
//      misses — a newly inserted entry still at its shadow priority.
//      Anything else (a half-applied hybrid) fails the test.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "compiler/applier.hpp"
#include "compiler/compile.hpp"
#include "compiler/planner.hpp"
#include "engine/engine.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/parallel.hpp"

namespace fetcam::compiler {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

engine::TableConfig test_config() {
  engine::TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 32;
  cfg.cols = 16;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

engine::TraceSpec test_spec() {
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 16;
  spec.rules = 48;
  spec.queries = 256;
  spec.match_rate = 0.5;
  spec.seed = 91;
  return spec;
}

/// Winner a quiescent table must report for `key` under `compiled` /
/// `installed`: entry id + flattened priority, or a miss.
struct Expected {
  bool hit = false;
  engine::EntryId entry = engine::kInvalidEntry;
  int priority = 0;
};

Expected expected_result(const CompiledRuleSet& compiled,
                         const Installation& installed,
                         const arch::BitWord& key) {
  Expected e;
  const int w = reference_winner(compiled, key);
  if (w < 0) return e;
  e.hit = true;
  e.entry = installed.entries[static_cast<std::size_t>(w)].id;
  e.priority = installed.entries[static_cast<std::size_t>(w)].priority;
  return e;
}

struct ScenarioOutcome {
  std::vector<engine::RequestResult> results;  ///< all sweeps, concatenated
  long long write_pulses = 0;
  double energy_j = 0.0;
  std::vector<std::uint64_t> mat_writes;
  std::vector<int> plan_shape;  ///< op counts per update, flattened
};

/// Fixed single-producer scenario: install set 0, sweep, churn -> set 1,
/// sweep, churn -> set 2 (endurance-tuned options), sweep.  Each sweep is
/// checked against the reference resolver in place.
ScenarioOutcome run_scenario() {
  const engine::Trace trace = engine::generate_trace(test_spec());
  engine::ChurnSpec churn;
  churn.seed = 17;
  churn.hot_fraction = 0.25;
  churn.hot_modify_rate = 0.9;

  engine::TcamTable table(test_config());
  ScenarioOutcome out;
  {
    engine::SearchEngine eng(table);
    Installation installed;
    std::vector<engine::TraceRule> rules = trace.rules;
    for (int step = 0; step < 3; ++step) {
      if (step > 0) {
        rules = engine::churn_rules(rules, test_spec().kind,
                                    test_spec().cols, churn, step);
      }
      const auto compiled =
          compile_rules(rule_set_from_rules(test_spec().cols, rules));
      PlannerOptions popts;
      if (step == 2) {
        popts.placement.rewrite_spread_headroom = 2;
      }
      const UpdatePlan plan =
          plan_update(installed, compiled, table, popts);
      out.plan_shape.insert(out.plan_shape.end(),
                            {plan.keeps, plan.priority_flips, plan.rewrites,
                             plan.inserts, plan.erases, plan.relocations});
      ApplyOptions aopts;
      aopts.chunk = 4;
      installed = apply_plan(eng, plan, compiled, aopts).installed;

      // Quiescent sweep: batched searches, checked against the soft table.
      for (std::size_t q = 0; q < trace.queries.size(); q += 16) {
        std::vector<engine::Request> batch;
        for (std::size_t k = q; k < q + 16 && k < trace.queries.size(); ++k) {
          batch.push_back(engine::make_search(trace.queries[k]));
        }
        const auto res = eng.execute(std::move(batch));
        for (std::size_t r = 0; r < res.results.size(); ++r) {
          const Expected want =
              expected_result(compiled, installed, trace.queries[q + r]);
          EXPECT_EQ(res.results[r].hit, want.hit) << "step " << step;
          EXPECT_EQ(res.results[r].entry, want.entry) << "step " << step;
          if (want.hit) {
            EXPECT_EQ(res.results[r].priority, want.priority)
                << "step " << step;
          }
          out.results.push_back(res.results[r]);
        }
      }
    }
  }
  out.write_pulses = table.write_pulses();
  out.energy_j = table.total_energy_j();
  for (int m = 0; m < table.mats(); ++m) {
    out.mat_writes.push_back(table.endurance(m).total_writes());
  }
  return out;
}

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

TEST(ApplierConcurrency, GoldenAcrossThreadCountsAndMatchesSoftTable) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  const ScenarioOutcome golden = run_scenario();
  ASSERT_FALSE(golden.results.empty());
  for (const int threads : kThreadCounts) {
    util::set_thread_count(threads);
    const ScenarioOutcome run = run_scenario();
    ASSERT_EQ(run.results.size(), golden.results.size()) << threads;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      EXPECT_EQ(run.results[i].hit, golden.results[i].hit) << threads;
      EXPECT_EQ(run.results[i].entry, golden.results[i].entry) << threads;
      EXPECT_EQ(run.results[i].priority, golden.results[i].priority)
          << threads;
    }
    EXPECT_EQ(run.write_pulses, golden.write_pulses) << threads;
    EXPECT_EQ(run.energy_j, golden.energy_j) << threads;
    EXPECT_EQ(run.mat_writes, golden.mat_writes) << threads;
    EXPECT_EQ(run.plan_shape, golden.plan_shape) << threads;
  }
}

TEST(ApplierConcurrency, SearchesSeeOldWinnerOrNewWinnerNeverHybrids) {
  const engine::Trace trace = engine::generate_trace(test_spec());
  engine::ChurnSpec churn;
  churn.seed = 29;
  churn.hot_fraction = 0.25;
  churn.hot_modify_rate = 0.9;
  churn.modify_rate = 0.3;
  churn.add_remove_rate = 0.15;
  churn.priority_jitter_rate = 0.1;
  const auto rules_b =
      engine::churn_rules(trace.rules, test_spec().kind, test_spec().cols,
                          churn, 1);
  const auto setA =
      compile_rules(rule_set_from_rules(test_spec().cols, trace.rules));
  const auto setB =
      compile_rules(rule_set_from_rules(test_spec().cols, rules_b));

  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const UpdatePlan planA = plan_update({}, setA, table);
  const Installation installedA = apply_plan(eng, planA, setA).installed;
  eng.drain();

  const UpdatePlan planB = plan_update(installedA, setB, table);

  // Searchers race the update: record every (query, result) observed.
  struct Observed {
    std::size_t query = 0;
    engine::RequestResult result;
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Observed>> seen(2);
  auto searcher = [&](int who) {
    std::size_t at = static_cast<std::size_t>(who);
    // A floor of rounds keeps `checked` non-vacuous even when the apply
    // outruns this thread's first schedule slot (a loaded single-core
    // box); post-stop rounds observe the settled state, which the
    // acceptance admits as the new winner.
    int rounds = 0;
    while (rounds++ < 4 || !stop.load(std::memory_order_relaxed)) {
      std::vector<engine::Request> batch;
      std::vector<std::size_t> keys;
      for (int k = 0; k < 8; ++k) {
        keys.push_back(at % trace.queries.size());
        batch.push_back(engine::make_search(trace.queries[keys.back()]));
        at += 2;
      }
      const auto res = eng.execute(std::move(batch));
      for (std::size_t r = 0; r < res.results.size(); ++r) {
        seen[static_cast<std::size_t>(who)].push_back(
            {keys[r], res.results[r]});
      }
    }
  };
  std::thread s0(searcher, 0);
  std::thread s1(searcher, 1);

  ApplyOptions aopts;
  aopts.chunk = 2;  // many small batches: maximum interleaving
  const Installation installedB = apply_plan(eng, planB, setB, aopts).installed;
  // Let the searchers observe the settled state too, then stop them.
  eng.drain();
  stop.store(true, std::memory_order_relaxed);
  s0.join();
  s1.join();

  // Inserted entries (id, word, shadow priority) for the mid-make case.
  struct Shadow {
    engine::EntryId id;
    const arch::TernaryWord* word;
    int shadow_priority;
  };
  std::vector<Shadow> shadows;
  for (const PlanOp& op : planB.ops) {
    if (op.kind != PlanOpKind::kInsert) continue;
    const auto& e = installedB.entries[static_cast<std::size_t>(op.compiled_index)];
    shadows.push_back(
        {e.id, &setB.entries[static_cast<std::size_t>(op.compiled_index)].word,
         e.priority + planB.shadow_priority_offset});
  }

  std::size_t checked = 0;
  for (const auto& lane : seen) {
    for (const auto& obs : lane) {
      const arch::BitWord& key = trace.queries[obs.query];
      const Expected old_w = expected_result(setA, installedA, key);
      const Expected new_w = expected_result(setB, installedB, key);
      const auto& got = obs.result;
      const bool is_old = got.hit == old_w.hit && got.entry == old_w.entry &&
                          (!old_w.hit || got.priority == old_w.priority);
      const bool is_new = got.hit == new_w.hit && got.entry == new_w.entry &&
                          (!new_w.hit || got.priority == new_w.priority);
      bool is_shadow = false;
      if (!old_w.hit && got.hit) {
        // Mid-make on an old-miss key: any matching inserted entry at its
        // shadow priority is a legal early glimpse of the new set.
        for (const Shadow& s : shadows) {
          if (got.entry == s.id && got.priority == s.shadow_priority &&
              arch::word_matches(*s.word, key)) {
            is_shadow = true;
            break;
          }
        }
      }
      EXPECT_TRUE(is_old || is_new || is_shadow)
          << "query " << obs.query << ": got (hit=" << got.hit << ", entry="
          << got.entry << ", prio=" << got.priority << "), old (hit="
          << old_w.hit << ", entry=" << old_w.entry << ", prio="
          << old_w.priority << "), new (hit=" << new_w.hit << ", entry="
          << new_w.entry << ", prio=" << new_w.priority << ")";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << "searchers must have observed something";
  // The update really changed the rule set (the race was not vacuous).
  EXPECT_GT(planB.rewrites + planB.inserts + planB.erases, 0);
}

}  // namespace
}  // namespace fetcam::compiler
