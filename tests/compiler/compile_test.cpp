// Rule compiler: range-to-ternary expansion (with its edge cases),
// coverage elimination, priority flattening, and rule-set file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "arch/ternary.hpp"
#include "compiler/compile.hpp"
#include "compiler/rules.hpp"
#include "util/rng.hpp"

namespace fetcam::compiler {
namespace {

arch::TernaryWord from_string(const std::string& s) {
  return arch::word_from_string(s);
}

arch::BitWord value_bits(std::uint64_t v, int bits) {
  arch::BitWord q;
  for (int d = bits - 1; d >= 0; --d) {
    q.push_back(static_cast<std::uint8_t>((v >> d) & 1));
  }
  return q;
}

TEST(RangeExpansion, EmptyRangeExpandsToNothing) {
  EXPECT_TRUE(expand_range(5, 4, 8).empty());
  EXPECT_TRUE(expand_range(1, 0, 1).empty());
  // lo beyond the field is empty too (hi clamps, lo cannot).
  EXPECT_TRUE(expand_range(300, 400, 8).empty());
}

TEST(RangeExpansion, FullWidthRangeIsOneAllXEntry) {
  for (const int bits : {1, 4, 8, 16}) {
    const auto v = expand_range(0, (std::uint64_t{1} << bits) - 1, bits);
    ASSERT_EQ(v.size(), 1u) << bits << " bits";
    for (const auto d : v[0]) EXPECT_EQ(d, arch::Ternary::kX);
  }
  // hi past the field clamps to full width.
  const auto clamped = expand_range(0, 9999, 8);
  ASSERT_EQ(clamped.size(), 1u);
  EXPECT_EQ(clamped[0], from_string("XXXXXXXX"));
}

TEST(RangeExpansion, SingleValueIsOneExactEntry) {
  const auto v = expand_range(0xB6, 0xB6, 8);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], from_string("10110110"));
}

TEST(RangeExpansion, PowerOfTwoStraddlingWorstCaseIsTwoWMinusOne) {
  // [1, 2^w - 2] is the classic worst case: no block may cross the top or
  // bottom boundary value, so the cover needs 2(w - 1) entries.
  for (const int bits : {2, 4, 8, 16}) {
    const auto v =
        expand_range(1, (std::uint64_t{1} << bits) - 2, bits);
    EXPECT_EQ(v.size(), static_cast<std::size_t>(2 * (bits - 1)))
        << bits << " bits";
  }
  // A range straddling the half-way power of two splits at the boundary.
  const auto v = expand_range(0x70, 0x8F, 8);  // 112..143 straddles 128
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], from_string("0111XXXX"));  // 112..127
  EXPECT_EQ(v[1], from_string("1000XXXX"));  // 128..143
}

TEST(RangeExpansion, CoverIsExactAndDisjointOnRandomRanges) {
  auto rng = util::trial_rng(7, 0, 0);
  std::uniform_int_distribution<std::uint64_t> pick(0, 255);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = pick(rng);
    const std::uint64_t b = pick(rng);
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    const auto cover = expand_range(lo, hi, 8);
    for (std::uint64_t v = 0; v < 256; ++v) {
      int matched = 0;
      for (const auto& w : cover) {
        if (arch::word_matches(w, value_bits(v, 8))) ++matched;
      }
      // Exactly one block holds each in-range value (disjointness), none
      // holds an out-of-range one (exactness).
      EXPECT_EQ(matched, lo <= v && v <= hi ? 1 : 0)
          << "[" << lo << "," << hi << "] value " << v;
    }
  }
}

TEST(Covers, DigitwiseContainment) {
  EXPECT_TRUE(covers(from_string("10XX"), from_string("10XX")));
  EXPECT_TRUE(covers(from_string("10XX"), from_string("101X")));
  EXPECT_TRUE(covers(from_string("XXXX"), from_string("1010")));
  EXPECT_FALSE(covers(from_string("101X"), from_string("10XX")));
  EXPECT_FALSE(covers(from_string("10XX"), from_string("11XX")));
  EXPECT_FALSE(covers(from_string("10X"), from_string("10XX")));
}

TEST(CompileRules, ExpandsRangesAndReportsExpansionFactor) {
  RuleSet rules;
  rules.cols = 12;
  rules.range_bits = 8;
  RuleSpec r;
  r.match = from_string("1010");
  r.has_range = true;
  r.lo = 1;
  r.hi = 254;  // worst case: 14 entries
  r.priority = 0;
  rules.rules.push_back(r);
  RuleSpec plain;
  plain.match = from_string("0000XXXXXXXX");
  plain.priority = 1;
  rules.rules.push_back(plain);

  const auto compiled = compile_rules(rules);
  EXPECT_EQ(compiled.stats.source_rules, 2);
  EXPECT_EQ(compiled.stats.expanded_entries, 15);
  EXPECT_EQ(compiled.entries.size(), 15u);
  EXPECT_NEAR(compiled.stats.expansion_factor, 7.5, 1e-12);
  // Every expanded entry keeps the rule head and its source attribution.
  for (std::size_t i = 0; i < 14; ++i) {
    EXPECT_EQ(compiled.entries[i].source_rule, 0);
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(compiled.entries[i].word[static_cast<std::size_t>(c)],
                r.match[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(CompileRules, ShadowedAndRedundantEntriesAreRemoved) {
  RuleSet rules;
  rules.cols = 4;
  RuleSpec broad;  // wins everything it covers
  broad.match = from_string("10XX");
  broad.priority = 0;
  RuleSpec shadowed;  // later, worse priority, fully covered
  shadowed.match = from_string("101X");
  shadowed.priority = 5;
  RuleSpec redundant;  // same priority, later in list, fully covered
  redundant.match = from_string("100X");
  redundant.priority = 0;
  RuleSpec survivor;  // not covered
  survivor.match = from_string("11XX");
  survivor.priority = 5;
  rules.rules = {broad, shadowed, redundant, survivor};

  const auto compiled = compile_rules(rules);
  EXPECT_EQ(compiled.stats.shadowed_removed, 1);
  EXPECT_EQ(compiled.stats.redundant_removed, 1);
  ASSERT_EQ(compiled.entries.size(), 2u);
  EXPECT_EQ(compiled.entries[0].word, broad.match);
  EXPECT_EQ(compiled.entries[1].word, survivor.match);
}

TEST(CompileRules, PrioritiesFlattenDensePerRuleInWinningOrder) {
  RuleSet rules;
  rules.cols = 8;
  rules.range_bits = 4;
  RuleSpec a;  // expands to several entries, all one level
  a.match = from_string("1111");
  a.has_range = true;
  a.lo = 1;
  a.hi = 14;
  a.priority = 40;
  RuleSpec b;
  b.match = from_string("0000XXXX");
  b.priority = 7;
  RuleSpec c;
  c.match = from_string("0011XXXX");
  c.priority = 7;  // ties with b; later in list loses
  rules.rules = {a, b, c};

  const auto compiled = compile_rules(rules);
  EXPECT_EQ(compiled.stats.priority_levels, 3);
  // Winning order: b (prio 7, first), c (prio 7), a (prio 40).
  EXPECT_EQ(compiled.entries[0].source_rule, 1);
  EXPECT_EQ(compiled.entries[0].priority, 0);
  EXPECT_EQ(compiled.entries[1].source_rule, 2);
  EXPECT_EQ(compiled.entries[1].priority, 1);
  for (std::size_t i = 2; i < compiled.entries.size(); ++i) {
    EXPECT_EQ(compiled.entries[i].source_rule, 0);
    EXPECT_EQ(compiled.entries[i].priority, 2);
  }
  // reference_winner respects the same order.
  EXPECT_EQ(reference_winner(compiled, value_bits(0x0F, 8)), 0);
  EXPECT_EQ(reference_winner(compiled, value_bits(0x35, 8)), 1);
  EXPECT_EQ(reference_winner(compiled, value_bits(0x55, 8)), -1);
}

TEST(CompileRules, EmptyRangeRuleCompilesToNothing) {
  RuleSet rules;
  rules.cols = 8;
  rules.range_bits = 8;
  RuleSpec r;
  r.has_range = true;
  r.lo = 9;
  r.hi = 3;
  r.priority = 0;
  rules.rules = {r};
  const auto compiled = compile_rules(rules);
  EXPECT_EQ(compiled.stats.empty_rules, 1);
  EXPECT_TRUE(compiled.entries.empty());
  EXPECT_EQ(compiled.stats.priority_levels, 0);
}

TEST(CompileRules, RejectsMalformedInput) {
  RuleSet rules;
  rules.cols = 0;
  EXPECT_THROW(compile_rules(rules), std::invalid_argument);
  rules.cols = 8;
  rules.range_bits = 9;
  EXPECT_THROW(compile_rules(rules), std::invalid_argument);
  rules.range_bits = 4;
  RuleSpec bad;  // plain rule must span all cols
  bad.match = from_string("10XX");
  rules.rules = {bad};
  EXPECT_THROW(compile_rules(rules), std::invalid_argument);
}

TEST(RuleSetIo, SaveLoadRoundTrip) {
  RuleSet rules;
  rules.cols = 12;
  rules.range_bits = 8;
  RuleSpec ranged;
  ranged.match = from_string("10X1");
  ranged.has_range = true;
  ranged.lo = 3;
  ranged.hi = 200;
  ranged.priority = 2;
  RuleSpec plain;
  plain.match = from_string("0000XXXX1111");
  plain.priority = 9;
  rules.rules = {ranged, plain};

  const std::string path = ::testing::TempDir() + "ruleset_roundtrip.txt";
  ASSERT_TRUE(save_rule_set(rules, path));
  const auto loaded = load_rule_set(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cols, 12);
  EXPECT_EQ(loaded->range_bits, 8);
  ASSERT_EQ(loaded->rules.size(), 2u);
  EXPECT_EQ(loaded->rules[0].match, ranged.match);
  EXPECT_TRUE(loaded->rules[0].has_range);
  EXPECT_EQ(loaded->rules[0].lo, 3u);
  EXPECT_EQ(loaded->rules[0].hi, 200u);
  EXPECT_EQ(loaded->rules[0].priority, 2);
  EXPECT_FALSE(loaded->rules[1].has_range);
  EXPECT_EQ(loaded->rules[1].match, plain.match);
  std::remove(path.c_str());
}

TEST(RuleSetIo, LoadRejectsWidthMismatchesAndGarbage) {
  const std::string path = ::testing::TempDir() + "ruleset_bad.txt";
  const auto write = [&](const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(body.c_str(), f);
    std::fclose(f);
  };
  write("cols 8\nrule 10XX 0\n");  // wrong width
  EXPECT_FALSE(load_rule_set(path).has_value());
  write("cols 8\nrrule 10XX 1 5 0\n");  // rrule without range-bits
  EXPECT_FALSE(load_rule_set(path).has_value());
  write("cols 8\nbogus 1\n");
  EXPECT_FALSE(load_rule_set(path).has_value());
  write("rule 10XX 0\n");  // no cols header
  EXPECT_FALSE(load_rule_set(path).has_value());
  write("# comment only\ncols 8\nrange-bits 4\nrrule 10XX 1 5 0\n");
  EXPECT_TRUE(load_rule_set(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fetcam::compiler
