// Delta planner + endurance-aware placement: op classification, cost
// accounting against the naive rewrite baseline, and the wear-leveling
// levers (cold-mat inserts, hot-row rewrite spreading, relocation).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "compiler/applier.hpp"
#include "compiler/compile.hpp"
#include "compiler/planner.hpp"
#include "engine/engine.hpp"
#include "engine/table.hpp"

namespace fetcam::compiler {
namespace {

arch::TernaryWord from_string(const std::string& s) {
  return arch::word_from_string(s);
}

engine::TableConfig test_config() {
  engine::TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 16;
  cfg.cols = 8;
  cfg.subarrays_per_mat = 2;
  return cfg;
}

RuleSet plain_rules(const std::vector<std::pair<std::string, int>>& specs) {
  RuleSet rules;
  rules.cols =
      specs.empty() ? 8 : static_cast<int>(specs.front().first.size());
  for (const auto& [word, prio] : specs) {
    RuleSpec r;
    r.match = from_string(word);
    r.priority = prio;
    rules.rules.push_back(std::move(r));
  }
  return rules;
}

/// Compile + plan + apply in one step; returns the new installation.
Installation install(engine::SearchEngine& eng, engine::TcamTable& table,
                     const CompiledRuleSet& compiled,
                     const Installation& current) {
  const UpdatePlan plan = plan_update(current, compiled, table);
  return apply_plan(eng, plan, compiled).installed;
}

/// Heat a row through the engine (the table is engine-owned while one is
/// alive): each full refresh charges a row write.
void heat_row(engine::SearchEngine& eng, engine::EntryId id,
              const arch::TernaryWord& word, int times) {
  for (int i = 0; i < times; ++i) {
    eng.execute({engine::make_update(id, word)});
  }
}

TEST(Planner, InitialInstallIsAllFreshWrites) {
  engine::TcamTable table(test_config());
  const auto compiled = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"0001XXXX", 1},
      {"1111XXXX", 2},
  }));
  const UpdatePlan plan = plan_update({}, compiled, table);
  EXPECT_EQ(plan.inserts, 3);
  EXPECT_EQ(plan.keeps + plan.rewrites + plan.erases + plan.priority_flips +
                plan.relocations,
            0);
  // Nothing to reuse: the delta plan IS the naive plan.
  EXPECT_EQ(plan.cost.write_phases, plan.cost.naive_write_phases);
  EXPECT_EQ(plan.cost.energy_j, plan.cost.naive_energy_j);
  EXPECT_EQ(plan.shadow_priority_offset, 0) << "empty table needs no shadows";

  engine::SearchEngine eng(table);
  const auto installed = apply_plan(eng, plan, compiled).installed;
  eng.drain();
  ASSERT_EQ(installed.entries.size(), 3u);
  for (std::size_t j = 0; j < installed.entries.size(); ++j) {
    EXPECT_TRUE(table.contains(installed.entries[j].id));
    EXPECT_EQ(table.priority_of(installed.entries[j].id),
              compiled.entries[j].priority);
    EXPECT_EQ(table.entry_word(installed.entries[j].id),
              compiled.entries[j].word);
  }
  EXPECT_EQ(table.write_pulses(), plan.cost.write_phases);
}

TEST(Planner, DeltaPlanReusesRowsAndChargesOnlyTheDelta) {
  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({
      {"0000XXXX", 0},  // kept verbatim
      {"0001XXXX", 1},  // priority changes in B
      {"0010XXXX", 2},  // word tweaked in B (1-digit rewrite)
      {"0011XXXX", 3},  // word replaced in B (paired as a rewrite)
  }));
  const auto installedA = install(eng, table, setA, {});
  eng.drain();
  const auto pulses_a = table.write_pulses();

  const auto setB = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"0001XXXX", 3},  // moved down the priority ladder
      {"0010XXX1", 2},  // one digit differs
      {"1100XXXX", 4},  // pairs with the replaced row (delta rewrite)
      {"1010XXXX", 5},  // genuinely new: no row left to reuse
  }));
  const UpdatePlan plan = plan_update(installedA, setB, table);
  EXPECT_EQ(plan.keeps, 1);
  EXPECT_EQ(plan.priority_flips, 1);
  EXPECT_EQ(plan.rewrites, 2);
  EXPECT_EQ(plan.inserts, 1);
  EXPECT_EQ(plan.erases, 0);
  EXPECT_LT(plan.cost.write_phases, plan.cost.naive_write_phases)
      << "reuse must beat rewriting the world";
  EXPECT_LT(plan.cost.energy_j, plan.cost.naive_energy_j);
  // Shadows sit above every live priority (A flattened to 0..3).
  EXPECT_EQ(plan.shadow_priority_offset, 4);

  const auto installedB = apply_plan(eng, plan, setB).installed;
  eng.drain();
  // The charged pulses match the plan's projection exactly.
  EXPECT_EQ(table.write_pulses() - pulses_a, plan.cost.write_phases);
  // And the table now serves set B: every installed entry agrees.
  ASSERT_EQ(installedB.entries.size(), setB.entries.size());
  for (std::size_t j = 0; j < installedB.entries.size(); ++j) {
    EXPECT_EQ(table.entry_word(installedB.entries[j].id),
              setB.entries[j].word);
    EXPECT_EQ(table.priority_of(installedB.entries[j].id),
              setB.entries[j].priority);
  }
  EXPECT_EQ(table.size(), setB.entries.size());
  // The kept row really is the same physical entry (no churn).
  EXPECT_EQ(installedB.entries[0].id, installedA.entries[0].id);

  // Shrink to two rules: surviving words are kept, the rest erased
  // (peripheral-only — zero additional pulses).
  const auto pulses_b = table.write_pulses();
  const auto setC = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"1010XXXX", 1},
  }));
  const UpdatePlan shrink = plan_update(installedB, setC, table);
  EXPECT_EQ(shrink.keeps, 1);  // "0000XXXX" stays at level 0
  EXPECT_EQ(shrink.priority_flips, 1);  // "1010XXXX" climbs to level 1
  EXPECT_EQ(shrink.erases, 3);
  EXPECT_EQ(shrink.inserts + shrink.rewrites, 0);
  EXPECT_EQ(shrink.cost.write_phases, 0);
  apply_plan(eng, shrink, setC);
  eng.drain();
  EXPECT_EQ(table.write_pulses(), pulses_b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(Planner, PriorityOnlyChangeIsPeripheralOnly) {
  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"1111XXXX", 1},
  }));
  const auto installedA = install(eng, table, setA, {});
  eng.drain();
  const auto pulses_a = table.write_pulses();
  const double energy_a = table.total_energy_j();

  // Same words, swapped winning order.
  const auto setB = compile_rules(plain_rules({
      {"1111XXXX", 0},
      {"0000XXXX", 1},
  }));
  const UpdatePlan plan = plan_update(installedA, setB, table);
  EXPECT_EQ(plan.priority_flips, 2);
  EXPECT_EQ(plan.inserts + plan.rewrites + plan.erases, 0);
  EXPECT_EQ(plan.cost.write_phases, 0);
  EXPECT_EQ(plan.cost.energy_j, 0.0);

  apply_plan(eng, plan, setB);
  EXPECT_EQ(table.write_pulses(), pulses_a) << "flips must not pulse";
  arch::BitWord ones;
  for (int i = 0; i < 8; ++i) ones.push_back(1);
  const auto res = eng.execute({engine::make_search(ones)});
  EXPECT_TRUE(res.results[0].hit);
  EXPECT_EQ(res.results[0].priority, 0) << "1111XXXX wins after the flip";
  eng.drain();
  // Only the search's energy was added on top.
  EXPECT_GT(table.total_energy_j(), energy_a);
}

TEST(Planner, ThrowsWhenMakeBeforeBreakLacksSlack) {
  engine::TableConfig cfg = test_config();
  cfg.mats = 1;
  cfg.rows_per_mat = 2;
  engine::TcamTable table(cfg);
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"0001XXXX", 1},
  }));
  const auto installedA = install(eng, table, setA, {});
  eng.drain();
  // Both rows are live and pair with two of B's rules; the third needs a
  // fresh row BEFORE anything can be erased — and there is none.
  const auto setB = compile_rules(plain_rules({
      {"1110XXXX", 0},
      {"1101XXXX", 1},
      {"1011XXXX", 2},
  }));
  EXPECT_THROW(plan_update(installedA, setB, table), std::runtime_error);
}

TEST(Planner, InsertsLandOnTheColdestMat) {
  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({{"0000XXXX", 0}}));
  const auto installedA = install(eng, table, setA, {});
  const auto id = installedA.entries[0].id;
  heat_row(eng, id, setA.entries[0].word, 10);
  eng.drain();
  const auto loc = *table.locate(id);
  ASSERT_GT(table.endurance(loc.mat).total_writes(), 0u);

  const auto setB = compile_rules(plain_rules({
      {"0000XXXX", 0},
      {"1111XXXX", 1},
  }));
  const UpdatePlan plan = plan_update(installedA, setB, table);
  ASSERT_EQ(plan.inserts, 1);
  for (const auto& op : plan.ops) {
    if (op.kind != PlanOpKind::kInsert) continue;
    EXPECT_NE(op.mat, loc.mat) << "insert must avoid the hot mat";
    EXPECT_GE(op.mat, 0);
  }
}

TEST(Planner, HotRowRewriteSpreadsToInsertPlusErase) {
  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({{"0000XXXX", 0}}));
  const auto installedA = install(eng, table, setA, {});
  eng.drain();
  const auto id = installedA.entries[0].id;
  const auto loc = *table.locate(id);

  PlannerOptions popts;
  popts.placement.rewrite_spread_headroom = 8;
  // Below the headroom: a plain in-place rewrite.
  const auto setB = compile_rules(plain_rules({{"0000XXX1", 0}}));
  {
    const UpdatePlan plan = plan_update(installedA, setB, table, popts);
    EXPECT_EQ(plan.rewrites, 1);
    EXPECT_EQ(plan.inserts, 0);
  }
  // Heat the row past the headroom: the planner moves the write instead.
  heat_row(eng, id, setA.entries[0].word, 10);
  eng.drain();
  {
    const UpdatePlan plan = plan_update(installedA, setB, table, popts);
    EXPECT_EQ(plan.rewrites, 0);
    EXPECT_EQ(plan.inserts, 1);
    EXPECT_EQ(plan.erases, 1);
    for (const auto& op : plan.ops) {
      if (op.kind == PlanOpKind::kInsert) EXPECT_NE(op.mat, loc.mat);
    }
    // Not-endurance-aware planning keeps hammering the row in place.
    PlannerOptions off;
    off.placement.endurance_aware = false;
    const UpdatePlan naive = plan_update(installedA, setB, table, off);
    EXPECT_EQ(naive.rewrites, 1);
    EXPECT_EQ(naive.inserts, 0);
  }
}

TEST(Planner, WornKeptRowsRelocate) {
  engine::TcamTable table(test_config());
  engine::SearchEngine eng(table);
  const auto setA = compile_rules(plain_rules({{"0000XXXX", 0}}));
  const auto installedA = install(eng, table, setA, {});
  eng.drain();
  const auto id = installedA.entries[0].id;
  const auto loc = *table.locate(id);
  heat_row(eng, id, setA.entries[0].word, 20);
  eng.drain();

  PlannerOptions popts;
  // DG budget is 1e10; 21 writes / 1e10 must clear the (tuned) threshold.
  popts.placement.relocate_wear_fraction = 1e-9;
  const UpdatePlan plan = plan_update(installedA, setA, table, popts);
  EXPECT_EQ(plan.keeps, 1);
  ASSERT_EQ(plan.relocations, 1);
  for (const auto& op : plan.ops) {
    if (op.kind != PlanOpKind::kRelocate) continue;
    EXPECT_EQ(op.target, id);
    EXPECT_NE(op.mat, loc.mat);
  }
  // Relocation is a real write: the plan prices it.
  EXPECT_GT(plan.cost.write_phases, 0);

  const auto pulses_before = table.write_pulses();
  const auto installedB = apply_plan(eng, plan, setA).installed;
  eng.drain();
  EXPECT_EQ(table.write_pulses() - pulses_before, plan.cost.write_phases);
  EXPECT_EQ(installedB.entries[0].id, id) << "relocation preserves the id";
  EXPECT_NE(table.locate(id)->mat, loc.mat);
}

TEST(Planner, RejectsWidthMismatch) {
  engine::TcamTable table(test_config());
  RuleSet narrow;
  narrow.cols = 4;
  RuleSpec r;
  r.match = from_string("10XX");
  narrow.rules = {r};
  const auto compiled = compile_rules(narrow);
  EXPECT_THROW(plan_update({}, compiled, table), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::compiler
