#include "arch/search_scheduler.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace fetcam::arch {
namespace {

TEST(TwoStepSearch, MatchesPlainSearch) {
  TcamArray a(4, 4);
  a.write(0, word_from_string("0101"));
  a.write(1, word_from_string("01XX"));
  a.write(2, word_from_string("1111"));
  const auto q = bits_from_string("0101");
  const auto plain = a.search(q);
  const auto two = two_step_search(a, q);
  EXPECT_EQ(two.matches, plain);
}

TEST(TwoStepSearch, Step1MissTerminatesEarly) {
  TcamArray a(2, 4);
  // Row 0 mismatches at an even (cell1) position -> terminated in step 1.
  a.write(0, word_from_string("1111"));
  // Row 1 mismatches only at an odd (cell2) position -> runs step 2.
  a.write(1, word_from_string("0001"));
  const auto res = two_step_search(a, bits_from_string("0000"));
  EXPECT_EQ(res.stats.step1_misses, 1);
  EXPECT_EQ(res.stats.step2_evaluated, 1);
  EXPECT_EQ(res.stats.matches, 0);
}

TEST(TwoStepSearch, MatchRunsBothSteps) {
  TcamArray a(1, 4);
  a.write(0, word_from_string("01X1"));
  const auto res = two_step_search(a, bits_from_string("0101"));
  EXPECT_EQ(res.stats.step2_evaluated, 1);
  EXPECT_EQ(res.stats.matches, 1);
  EXPECT_TRUE(res.matches[0]);
}

TEST(TwoStepSearch, InvalidRowsCountAsStep1Misses) {
  TcamArray a(3, 4);
  a.write(1, word_from_string("XXXX"));
  const auto res = two_step_search(a, bits_from_string("0000"));
  EXPECT_EQ(res.stats.step1_misses, 2);  // rows 0 and 2 invalid
  EXPECT_EQ(res.stats.step2_evaluated, 1);
}

TEST(TwoStepSearch, RequiresEvenWordLength) {
  TcamArray a(1, 3);
  a.write(0, word_from_string("000"));
  EXPECT_THROW(two_step_search(a, bits_from_string("000")),
               std::invalid_argument);
}

TEST(TwoStepSearch, OddWordLengthErrorNamesTheArrayShape) {
  TcamArray a(5, 7);
  try {
    two_step_search(a, BitWord(7, 0));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5 rows"), std::string::npos) << what;
    EXPECT_NE(what.find("7 cols"), std::string::npos) << what;
  }
}

TEST(TwoStepSearch, ZeroRowArrayReportsEmptyStats) {
  TcamArray a(0, 4);
  const auto res = two_step_search(a, bits_from_string("0101"));
  EXPECT_TRUE(res.matches.empty());
  EXPECT_EQ(res.stats.rows, 0);
  EXPECT_EQ(res.stats.step1_misses, 0);
  EXPECT_EQ(res.stats.step2_evaluated, 0);
  EXPECT_EQ(res.stats.matches, 0);
  // The miss-rate helper must not divide by zero on an empty array.
  EXPECT_EQ(res.stats.step1_miss_rate(), 0.0);
}

TEST(TwoStepSearch, AllInvalidArrayMissesEverythingInStep1) {
  TcamArray a(6, 4);  // no row ever written
  const auto res = two_step_search(a, bits_from_string("0000"));
  EXPECT_EQ(res.stats.rows, 6);
  EXPECT_EQ(res.stats.step1_misses, 6);
  EXPECT_EQ(res.stats.step2_evaluated, 0);
  EXPECT_EQ(res.stats.matches, 0);
  EXPECT_EQ(res.stats.step1_miss_rate(), 1.0);
}

TEST(TwoStepSearch, StatsAccumulator) {
  TcamArray a(4, 4);
  a.write(0, word_from_string("0000"));
  a.write(1, word_from_string("1111"));
  a.write(2, word_from_string("XXXX"));
  a.write(3, word_from_string("00XX"));
  SearchStatsAccumulator acc;
  acc.add(two_step_search(a, bits_from_string("0000")).stats);
  acc.add(two_step_search(a, bits_from_string("1111")).stats);
  EXPECT_EQ(acc.searches(), 2);
  EXPECT_EQ(acc.rows_searched(), 8);
  EXPECT_EQ(acc.matches(), 3 + 2);
}

// Property: on random arrays, early termination never changes the result
// and step-2 evaluations equal the rows whose even digits all match.
class SchedulerRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerRandomTest, EquivalentToPlainSearch) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
  std::uniform_int_distribution<int> digit(0, 2);
  std::uniform_int_distribution<int> bit(0, 1);
  TcamArray a(12, 8);
  for (int r = 0; r < 12; ++r) {
    TernaryWord w;
    for (int c = 0; c < 8; ++c) w.push_back(static_cast<Ternary>(digit(rng)));
    a.write(r, w);
  }
  for (int q = 0; q < 10; ++q) {
    BitWord query;
    for (int c = 0; c < 8; ++c)
      query.push_back(static_cast<std::uint8_t>(bit(rng)));
    const auto res = two_step_search(a, query);
    EXPECT_EQ(res.matches, a.search(query));
    int expect_step2 = 0;
    for (int r = 0; r < 12; ++r) {
      bool alive = true;
      for (int c = 0; c < 8; c += 2) {
        if (!ternary_matches(a.entry(r)[static_cast<std::size_t>(c)],
                             query[static_cast<std::size_t>(c)] != 0)) {
          alive = false;
        }
      }
      if (alive) ++expect_step2;
    }
    EXPECT_EQ(res.stats.step2_evaluated, expect_step2);
    EXPECT_EQ(res.stats.rows, 12);
    EXPECT_EQ(res.stats.step1_misses + res.stats.step2_evaluated, 12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace fetcam::arch
