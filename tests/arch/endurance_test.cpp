#include "arch/endurance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::arch {
namespace {

TEST(Endurance, BudgetsMatchTheDeviceStory) {
  // DG devices (thin FE, 2 V writes) outlast SG by orders of magnitude [18].
  EXPECT_GT(endurance_cycles(TcamDesign::k1p5DgFe),
            1e3 * endurance_cycles(TcamDesign::k1p5SgFe));
  EXPECT_EQ(endurance_cycles(TcamDesign::k2DgFefet),
            endurance_cycles(TcamDesign::k1p5DgFe));
  EXPECT_GT(endurance_cycles(TcamDesign::kCmos16T),
            endurance_cycles(TcamDesign::k1p5DgFe));
}

TEST(Endurance, TracksPerRowWrites) {
  EnduranceModel m(TcamDesign::k1p5DgFe, 4);
  m.on_write(0);
  m.on_write(2);
  m.on_write(2);
  EXPECT_EQ(m.writes(0), 1u);
  EXPECT_EQ(m.writes(1), 0u);
  EXPECT_EQ(m.writes(2), 2u);
  EXPECT_EQ(m.total_writes(), 3u);
  EXPECT_EQ(m.hottest_row(), 2);
}

TEST(Endurance, WearFractionAndRemaining) {
  EnduranceModel m(TcamDesign::k1p5SgFe, 2);  // budget 1e6
  for (int k = 0; k < 1000; ++k) m.on_write(0);
  EXPECT_NEAR(m.wear_fraction(), 1e-3, 1e-9);
  // Continuing the same (fully skewed) pattern: ~999k writes left.
  EXPECT_NEAR(static_cast<double>(m.writes_remaining()), 999000.0, 1000.0);
}

TEST(Endurance, LifetimeScalesWithUpdateRate) {
  EnduranceModel m(TcamDesign::k1p5SgFe, 2);
  for (int k = 0; k < 100; ++k) m.on_write(0);
  const double slow = m.lifetime_seconds(1.0);
  const double fast = m.lifetime_seconds(100.0);
  EXPECT_NEAR(slow / fast, 100.0, 1e-6);
  EXPECT_TRUE(std::isinf(m.lifetime_seconds(0.0)));
}

TEST(Endurance, ImbalanceDetectsHotspots) {
  EnduranceModel level(TcamDesign::k1p5DgFe, 4);
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 10; ++k) level.on_write(r);
  }
  EXPECT_NEAR(level.imbalance(), 1.0, 1e-9);

  EnduranceModel hot(TcamDesign::k1p5DgFe, 4);
  for (int k = 0; k < 40; ++k) hot.on_write(3);
  EXPECT_NEAR(hot.imbalance(), 4.0, 1e-9);
}

TEST(Endurance, DgOutlastsSgAtSameWorkload) {
  EnduranceModel sg(TcamDesign::k1p5SgFe, 8);
  EnduranceModel dg(TcamDesign::k1p5DgFe, 8);
  for (int k = 0; k < 1000; ++k) {
    sg.on_write(k % 8);
    dg.on_write(k % 8);
  }
  EXPECT_GT(dg.lifetime_seconds(1000.0), 1e3 * sg.lifetime_seconds(1000.0));
}

TEST(Endurance, Validation) {
  EXPECT_THROW(EnduranceModel(TcamDesign::k1p5DgFe, 0),
               std::invalid_argument);
  EnduranceModel m(TcamDesign::k1p5DgFe, 2);
  EXPECT_THROW(m.on_write(5), std::out_of_range);
}

}  // namespace
}  // namespace fetcam::arch
