#include "arch/write_controller.hpp"

#include <gtest/gtest.h>

namespace fetcam::arch {
namespace {

const WriteVoltages kV{.vw = 2.0, .vm = 1.66, .vdd = 0.8};

TEST(ThreeStepPlan, PhaseStructure) {
  const auto plan = three_step_plan(word_from_string("01X0"), {}, kV);
  ASSERT_EQ(plan.phases.size(), 3u);
  EXPECT_EQ(plan.phases[0].name, "erase");
  EXPECT_EQ(plan.phases[1].name, "program-1");
  EXPECT_EQ(plan.phases[2].name, "program-X");
}

TEST(ThreeStepPlan, EraseDrivesAllColumnsNegative) {
  const auto plan = three_step_plan(word_from_string("01X"), {}, kV);
  for (const double v : plan.phases[0].bl) EXPECT_DOUBLE_EQ(v, -kV.vw);
  EXPECT_DOUBLE_EQ(plan.phases[0].wrsl, kV.vdd);
  EXPECT_DOUBLE_EQ(plan.phases[0].sl, 0.0);
}

TEST(ThreeStepPlan, ProgramPhasesTargetTheRightColumns) {
  const auto plan = three_step_plan(word_from_string("01X0"), {}, kV);
  const auto& p1 = plan.phases[1];
  EXPECT_DOUBLE_EQ(p1.bl[0], 0.0);
  EXPECT_DOUBLE_EQ(p1.bl[1], kV.vw);
  EXPECT_DOUBLE_EQ(p1.bl[2], 0.0);
  const auto& px = plan.phases[2];
  EXPECT_DOUBLE_EQ(px.bl[1], 0.0);
  EXPECT_DOUBLE_EQ(px.bl[2], kV.vm);
}

TEST(ThreeStepPlan, SwitchingCellAccounting) {
  // Previous data all '1': erase switches everything; then 1 one and 1 X.
  const auto plan = three_step_plan(word_from_string("01X0"),
                                    word_from_string("1111"), kV);
  EXPECT_EQ(plan.phases[0].switching_cells, 4);
  EXPECT_EQ(plan.phases[1].switching_cells, 1);
  EXPECT_EQ(plan.phases[2].switching_cells, 1);
  EXPECT_EQ(plan.total_switching_cells(), 6);
}

TEST(ThreeStepPlan, ErasedPreviousSkipsEraseSwitching) {
  const auto plan = three_step_plan(word_from_string("0000"), {}, kV);
  EXPECT_EQ(plan.phases[0].switching_cells, 0);
  EXPECT_EQ(plan.total_switching_cells(), 0);
}

TEST(ThreeStepPlan, RejectsWidthMismatch) {
  EXPECT_THROW(
      three_step_plan(word_from_string("01"), word_from_string("011"), kV),
      std::invalid_argument);
}

TEST(ComplementaryPlan, TableIEncoding) {
  const auto plan = complementary_plan(word_from_string("01X"), kV);
  ASSERT_EQ(plan.phases.size(), 1u);
  const auto& p = plan.phases[0];
  // '0' -> (-Vw, +Vw)
  EXPECT_DOUBLE_EQ(p.bl[0], -kV.vw);
  EXPECT_DOUBLE_EQ(p.bl_bar[0], kV.vw);
  // '1' -> (+Vw, -Vw)
  EXPECT_DOUBLE_EQ(p.bl[1], kV.vw);
  EXPECT_DOUBLE_EQ(p.bl_bar[1], -kV.vw);
  // 'X' -> (-Vw, -Vw)
  EXPECT_DOUBLE_EQ(p.bl[2], -kV.vw);
  EXPECT_DOUBLE_EQ(p.bl_bar[2], -kV.vw);
}

TEST(ComplementaryPlan, EveryCellSwitchesBothDevices) {
  const auto plan = complementary_plan(word_from_string("0101"), kV);
  EXPECT_EQ(plan.total_switching_cells(), 8);
}

}  // namespace
}  // namespace fetcam::arch
