#include "arch/behavioral_array.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fetcam::arch {
namespace {

TEST(TcamArray, WriteAndSearch) {
  TcamArray a(4, 4);
  a.write(0, word_from_string("0101"));
  a.write(1, word_from_string("01XX"));
  a.write(2, word_from_string("1111"));
  const auto m = a.search(bits_from_string("0101"));
  EXPECT_TRUE(m[0]);
  EXPECT_TRUE(m[1]);
  EXPECT_FALSE(m[2]);
  EXPECT_FALSE(m[3]);  // never written -> invalid
}

TEST(TcamArray, InvalidRowsNeverMatch) {
  TcamArray a(2, 4);
  // Even an all-X query target: row never written stays invalid.
  EXPECT_FALSE(a.search(bits_from_string("0000"))[0]);
  a.write(0, word_from_string("XXXX"));
  EXPECT_TRUE(a.search(bits_from_string("0000"))[0]);
  a.erase(0);
  EXPECT_FALSE(a.search(bits_from_string("0000"))[0]);
}

TEST(TcamArray, FirstMatchIsPriorityEncoded) {
  TcamArray a(3, 2);
  a.write(1, word_from_string("XX"));
  a.write(2, word_from_string("00"));
  EXPECT_EQ(a.first_match(bits_from_string("00")).value_or(-1), 1);
  a.write(0, word_from_string("0X"));
  EXPECT_EQ(a.first_match(bits_from_string("00")).value_or(-1), 0);
  EXPECT_EQ(a.first_match(bits_from_string("11")).value_or(-1), 1);
}

TEST(TcamArray, AllMatches) {
  TcamArray a(4, 2);
  a.write(0, word_from_string("0X"));
  a.write(1, word_from_string("11"));
  a.write(2, word_from_string("XX"));
  const auto m = a.all_matches(bits_from_string("01"));
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 2);
}

TEST(TcamArray, BoundsChecking) {
  TcamArray a(2, 2);
  EXPECT_THROW(a.write(2, word_from_string("00")), std::out_of_range);
  EXPECT_THROW(a.write(-1, word_from_string("00")), std::out_of_range);
  EXPECT_THROW(a.write(0, word_from_string("000")), std::invalid_argument);
  EXPECT_THROW(a.search(bits_from_string("0")), std::invalid_argument);
  EXPECT_THROW(TcamArray(-1, 4), std::invalid_argument);
  EXPECT_THROW(TcamArray(4, 0), std::invalid_argument);
}

TEST(TcamArray, ZeroRowArrayIsEmptyAndMatchesNothing) {
  TcamArray a(0, 4);
  EXPECT_EQ(a.rows(), 0);
  EXPECT_TRUE(a.search(bits_from_string("0101")).empty());
  EXPECT_FALSE(a.first_match(bits_from_string("0101")).has_value());
  EXPECT_TRUE(a.all_matches(bits_from_string("0101")).empty());
  EXPECT_THROW(a.write(0, word_from_string("0101")), std::out_of_range);
  EXPECT_THROW(a.valid(0), std::out_of_range);
}

// Property: search agrees with per-row word_matches on random content.
class TcamArrayRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TcamArrayRandomTest, SearchAgreesWithGoldenRule) {
  const int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_int_distribution<int> digit(0, 2);
  std::uniform_int_distribution<int> bit(0, 1);
  TcamArray a(16, 12);
  for (int r = 0; r < 16; ++r) {
    TernaryWord w;
    for (int c = 0; c < 12; ++c) w.push_back(static_cast<Ternary>(digit(rng)));
    a.write(r, w);
  }
  for (int q = 0; q < 20; ++q) {
    BitWord query;
    for (int c = 0; c < 12; ++c)
      query.push_back(static_cast<std::uint8_t>(bit(rng)));
    const auto m = a.search(query);
    for (int r = 0; r < 16; ++r) {
      EXPECT_EQ(m[static_cast<std::size_t>(r)],
                word_matches(a.entry(r), query))
          << "seed=" << seed << " row=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcamArrayRandomTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace fetcam::arch
