#include "arch/controller.hpp"

#include <gtest/gtest.h>

namespace fetcam::arch {
namespace {

TEST(Controller, UpdateAndSearchRoundTrip) {
  TcamController c(TcamDesign::k1p5DgFe, 4, 8);
  c.update(0, word_from_string("01010101"));
  c.update(1, word_from_string("0101XXXX"));
  const auto res = c.search(bits_from_string("01011111"));
  EXPECT_FALSE(res.matches[0]);
  EXPECT_TRUE(res.matches[1]);
  EXPECT_EQ(c.first_match(bits_from_string("01011111")).value_or(-1), 1);
}

TEST(Controller, ChargesSearchEnergyWithEarlyTermination) {
  TcamController c(TcamDesign::k1p5DgFe, 4, 8);
  for (int r = 0; r < 4; ++r) c.update(r, word_from_string("11111111"));
  const double e_before = c.energy().total_energy_j();
  c.search(bits_from_string("00000000"));  // every row misses in step 1
  const double e_miss = c.energy().total_energy_j() - e_before;
  c.search(bits_from_string("11111111"));  // every row runs both steps
  const double e_match =
      c.energy().total_energy_j() - e_before - e_miss;
  EXPECT_GT(e_miss, 0.0);
  EXPECT_GT(e_match, 2.0 * e_miss);  // full 2-step costs >> terminated
}

TEST(Controller, SingleStepDesignChargesFlatEnergy) {
  TcamController c(TcamDesign::k2SgFefet, 4, 8);
  for (int r = 0; r < 4; ++r) c.update(r, word_from_string("11111111"));
  const double e0 = c.energy().total_energy_j();
  c.search(bits_from_string("00000000"));
  const double e_miss = c.energy().total_energy_j() - e0;
  c.search(bits_from_string("11111111"));
  const double e_match = c.energy().total_energy_j() - e0 - e_miss;
  EXPECT_NEAR(e_miss, e_match, 1e-20);
}

TEST(Controller, TracksWritePulsesPerDesign) {
  TcamController dg(TcamDesign::k1p5DgFe, 2, 4);
  dg.update(0, word_from_string("01X0"));
  EXPECT_EQ(dg.write_pulses(), 3);  // three-phase write
  TcamController sg2(TcamDesign::k2SgFefet, 2, 4);
  sg2.update(0, word_from_string("01X0"));
  EXPECT_EQ(sg2.write_pulses(), 1);  // complementary single phase
}

TEST(Controller, EnduranceFollowsUpdates) {
  TcamController c(TcamDesign::k1p5SgFe, 4, 4);
  for (int k = 0; k < 10; ++k) c.update(1, word_from_string("0101"));
  EXPECT_EQ(c.endurance().writes(1), 10u);
  EXPECT_EQ(c.endurance().hottest_row(), 1);
  EXPECT_GT(c.endurance().wear_fraction(), 0.0);
}

TEST(Controller, SearchStatsAccumulate) {
  TcamController c(TcamDesign::k1p5DgFe, 2, 4);
  c.update(0, word_from_string("0101"));
  c.search(bits_from_string("0101"));
  c.search(bits_from_string("1111"));
  EXPECT_EQ(c.search_stats().searches(), 2);
  EXPECT_EQ(c.search_stats().rows_searched(), 4);
  EXPECT_EQ(c.search_stats().matches(), 1);
}

TEST(Controller, OverwriteChargesOnlySwitchingCells) {
  TcamController c(TcamDesign::k1p5DgFe, 1, 8);
  c.update(0, word_from_string("00000000"));
  const double e0 = c.energy().total_energy_j();
  // Rewriting the same data: erase switches nothing (already '0'), no
  // program pulses switch -> near-zero incremental write energy.
  c.update(0, word_from_string("00000000"));
  const double e_same = c.energy().total_energy_j() - e0;
  c.update(0, word_from_string("11111111"));
  const double e_flip =
      c.energy().total_energy_j() - e0 - e_same;
  EXPECT_LT(e_same, 0.25 * e_flip);
}

}  // namespace
}  // namespace fetcam::arch
