#include "arch/energy_model.hpp"

#include <gtest/gtest.h>

namespace fetcam::arch {
namespace {

TEST(OpCosts, DefaultsExistForAllDesigns) {
  for (const auto d : {TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                       TcamDesign::k2DgFefet, TcamDesign::k1p5SgFe,
                       TcamDesign::k1p5DgFe}) {
    const auto c = default_op_costs(d);
    EXPECT_GT(c.search_e2, 0.0) << design_name(d);
    EXPECT_GT(c.latency_full, 0.0) << design_name(d);
    EXPECT_LE(c.search_e1, c.search_e2) << design_name(d);
  }
}

TEST(OpCosts, PaperRatiosHold) {
  // Write energy: DG halves SG; 1.5T1Fe halves 2FeFET (Table IV's 2x/4x).
  const auto sg2 = default_op_costs(TcamDesign::k2SgFefet);
  const auto dg2 = default_op_costs(TcamDesign::k2DgFefet);
  const auto sg15 = default_op_costs(TcamDesign::k1p5SgFe);
  const auto dg15 = default_op_costs(TcamDesign::k1p5DgFe);
  EXPECT_NEAR(sg2.write_energy / dg2.write_energy, 2.0, 0.5);
  EXPECT_NEAR(sg2.write_energy / sg15.write_energy, 2.0, 0.5);
  EXPECT_NEAR(sg2.write_energy / dg15.write_energy, 4.0, 1.0);
  // Latency ordering: 1.5T1SG < 2SG < 2DG; 1.5T1DG < 2DG.
  EXPECT_LT(sg15.latency_full, sg2.latency_full);
  EXPECT_LT(sg2.latency_full, dg2.latency_full);
  EXPECT_LT(dg15.latency_full, dg2.latency_full);
}

TEST(EnergyModel, SingleStepDesignChargesFullEnergy) {
  ArrayEnergyModel m(TcamDesign::k2SgFefet, 4, 8);
  SearchStats s;
  s.rows = 4;
  s.step1_misses = 3;  // irrelevant for single-step designs
  s.step2_evaluated = 1;
  m.on_search(s);
  const auto c = default_op_costs(TcamDesign::k2SgFefet);
  EXPECT_NEAR(m.total_energy_j(), 4 * 8 * c.search_e2, 1e-20);
}

TEST(EnergyModel, EarlyTerminationSavesEnergy) {
  const auto c = default_op_costs(TcamDesign::k1p5DgFe);
  SearchStats mostly_missing;
  mostly_missing.rows = 10;
  mostly_missing.step2_evaluated = 1;
  mostly_missing.step1_misses = 9;
  SearchStats all_surviving;
  all_surviving.rows = 10;
  all_surviving.step2_evaluated = 10;

  ArrayEnergyModel a(TcamDesign::k1p5DgFe, 10, 8, c);
  a.on_search(mostly_missing);
  ArrayEnergyModel b(TcamDesign::k1p5DgFe, 10, 8, c);
  b.on_search(all_surviving);
  EXPECT_LT(a.total_energy_j(), b.total_energy_j());
  // 90% termination saves roughly the paper's margin: e_avg near e1.
  const double expected =
      (9 * c.search_e1 + 1 * c.search_e2) * 8;
  EXPECT_NEAR(a.total_energy_j(), expected, 1e-20);
}

TEST(EnergyModel, WritesAccumulate) {
  ArrayEnergyModel m(TcamDesign::k1p5DgFe, 4, 8);
  m.on_write(8);
  m.on_write(8);
  const auto c = default_op_costs(TcamDesign::k1p5DgFe);
  EXPECT_NEAR(m.total_energy_j(), 16 * c.write_energy, 1e-20);
  EXPECT_EQ(m.writes(), 2);
}

TEST(EnergyModel, MeanSearchEnergyPerCell) {
  ArrayEnergyModel m(TcamDesign::k2SgFefet, 2, 4);
  SearchStats s;
  s.rows = 2;
  m.on_search(s);
  const auto c = default_op_costs(TcamDesign::k2SgFefet);
  EXPECT_NEAR(m.mean_search_energy_per_cell(), c.search_e2, 1e-22);
}

TEST(EnergyModel, TimeAdvancesPerSearch) {
  ArrayEnergyModel m(TcamDesign::k1p5SgFe, 2, 4);
  SearchStats s;
  s.rows = 2;
  s.step2_evaluated = 2;
  m.on_search(s);
  m.on_search(s);
  const auto c = default_op_costs(TcamDesign::k1p5SgFe);
  EXPECT_NEAR(m.total_time_s(), 2 * c.latency_full, 1e-18);
}

TEST(EnergyModel, RejectsBadDimensions) {
  EXPECT_THROW(ArrayEnergyModel(TcamDesign::k2SgFefet, 0, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::arch
