#include "arch/ternary.hpp"

#include <gtest/gtest.h>

namespace fetcam::arch {
namespace {

TEST(Ternary, CharRoundTrip) {
  for (const char c : {'0', '1', 'X'}) {
    EXPECT_EQ(to_char(ternary_from_char(c)), c);
  }
  EXPECT_EQ(ternary_from_char('x'), Ternary::kX);
  EXPECT_EQ(ternary_from_char('*'), Ternary::kX);
  EXPECT_THROW(ternary_from_char('2'), std::invalid_argument);
  EXPECT_THROW(ternary_from_char(' '), std::invalid_argument);
}

TEST(Ternary, WordFromString) {
  const auto w = word_from_string("01X");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], Ternary::kZero);
  EXPECT_EQ(w[1], Ternary::kOne);
  EXPECT_EQ(w[2], Ternary::kX);
  EXPECT_EQ(to_string(w), "01X");
}

TEST(Ternary, BitsFromString) {
  const auto b = bits_from_string("0110");
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 1);
  EXPECT_EQ(to_string(b), "0110");
  EXPECT_THROW(bits_from_string("01X"), std::invalid_argument);
}

TEST(Ternary, MatchRules) {
  EXPECT_TRUE(ternary_matches(Ternary::kZero, false));
  EXPECT_FALSE(ternary_matches(Ternary::kZero, true));
  EXPECT_TRUE(ternary_matches(Ternary::kOne, true));
  EXPECT_FALSE(ternary_matches(Ternary::kOne, false));
  EXPECT_TRUE(ternary_matches(Ternary::kX, false));
  EXPECT_TRUE(ternary_matches(Ternary::kX, true));
}

TEST(Ternary, WordMatch) {
  const auto stored = word_from_string("01XX");
  EXPECT_TRUE(word_matches(stored, bits_from_string("0100")));
  EXPECT_TRUE(word_matches(stored, bits_from_string("0111")));
  EXPECT_FALSE(word_matches(stored, bits_from_string("0011")));
  EXPECT_EQ(mismatch_count(stored, bits_from_string("1000")), 2);
  EXPECT_THROW(word_matches(stored, bits_from_string("01")),
               std::invalid_argument);
}

TEST(Ternary, AllXMatchesEverything) {
  const auto stored = word_from_string("XXXXXXXX");
  for (int v = 0; v < 256; ++v) {
    BitWord q;
    for (int b = 7; b >= 0; --b) q.push_back((v >> b) & 1);
    EXPECT_TRUE(word_matches(stored, q)) << v;
  }
}

}  // namespace
}  // namespace fetcam::arch
