#include "arch/hv_driver.hpp"

#include <gtest/gtest.h>

namespace fetcam::arch {
namespace {

TEST(DriverBank, SharingHalvesEverything) {
  const MatGeometry g{.rows = 64, .cols = 64, .subarrays = 4};
  const auto r = driver_bank_report(g, {});
  EXPECT_EQ(r.drivers_dedicated, 4 * (64 + 128));
  EXPECT_EQ(r.drivers_shared, r.drivers_dedicated / 2);
  EXPECT_NEAR(r.area_saving(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(r.leakage_shared_nw, 0.5 * r.leakage_dedicated_nw);
}

TEST(DriverBank, NoSharingWithoutVoltageCoOptimization) {
  const MatGeometry g{.rows = 32, .cols = 32, .subarrays = 4};
  HvDriverParams p;
  p.voltages_match = false;
  const auto r = driver_bank_report(g, p);
  EXPECT_EQ(r.drivers_shared, r.drivers_dedicated);
  EXPECT_DOUBLE_EQ(r.area_saving(), 0.0);
}

TEST(Scheduler, ConcurrentSearchesBothGranted) {
  SharedDriverScheduler s({.rows = 16, .cols = 16, .subarrays = 4}, {});
  const auto g = s.submit({MatOp::kSearch, MatOp::kSearch, MatOp::kSearch,
                           MatOp::kSearch});
  EXPECT_TRUE(g[0] && g[1] && g[2] && g[3]);
  EXPECT_EQ(s.stalls(), 0);
  EXPECT_EQ(s.grants(), 4);
}

TEST(Scheduler, WriteStallsPairedSearch) {
  SharedDriverScheduler s({.rows = 16, .cols = 16, .subarrays = 2}, {});
  const auto g = s.submit({MatOp::kWrite, MatOp::kSearch});
  EXPECT_TRUE(g[0]);
  EXPECT_FALSE(g[1]);
  EXPECT_EQ(s.stalls(), 1);
}

TEST(Scheduler, IdlePairDoesNotConflict) {
  SharedDriverScheduler s({.rows = 16, .cols = 16, .subarrays = 2}, {});
  const auto g = s.submit({MatOp::kWrite, MatOp::kIdle});
  EXPECT_TRUE(g[0]);
  EXPECT_EQ(s.stalls(), 0);
}

TEST(Scheduler, UtilizationTracksBusyBanks) {
  SharedDriverScheduler s({.rows = 16, .cols = 16, .subarrays = 4}, {});
  s.submit({MatOp::kSearch, MatOp::kIdle, MatOp::kIdle, MatOp::kIdle});
  s.submit({MatOp::kIdle, MatOp::kIdle, MatOp::kIdle, MatOp::kIdle});
  // 1 busy bank cycle out of 4 (2 banks x 2 cycles).
  EXPECT_NEAR(s.utilization(), 0.25, 1e-12);
}

TEST(Scheduler, RejectsBadConfigs) {
  EXPECT_THROW(
      SharedDriverScheduler({.rows = 8, .cols = 8, .subarrays = 3}, {}),
      std::invalid_argument);
  HvDriverParams p;
  p.voltages_match = false;
  EXPECT_THROW(
      SharedDriverScheduler({.rows = 8, .cols = 8, .subarrays = 4}, p),
      std::invalid_argument);
  SharedDriverScheduler s({.rows = 8, .cols = 8, .subarrays = 4}, {});
  EXPECT_THROW(s.submit({MatOp::kIdle}), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::arch
