// Behavioral approximate-search reference checks: digit distances counted
// straight off the ternary words, exact-match degeneration at d = 1 /
// threshold = 0, all-X digits costing nothing, and the single-step stats
// convention the engine's energy A/B relies on.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "arch/approx_search.hpp"
#include "arch/behavioral_array.hpp"
#include "util/rng.hpp"

namespace fetcam::arch {
namespace {

TernaryWord random_word(std::mt19937& rng, int cols, double x_fraction) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> bit(0, 1);
  TernaryWord w;
  w.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    if (u(rng) < x_fraction) {
      w.push_back(Ternary::kX);
    } else {
      w.push_back(bit(rng) != 0 ? Ternary::kOne : Ternary::kZero);
    }
  }
  return w;
}

BitWord random_query(std::mt19937& rng, int cols) {
  std::uniform_int_distribution<int> bit(0, 1);
  BitWord q(static_cast<std::size_t>(cols));
  for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
  return q;
}

/// Digit distance counted the obvious way: walk the digits, a digit
/// mismatches when any cared column in it mismatches.
int naive_distance(const TernaryWord& stored, const BitWord& query,
                   int digit_bits) {
  int distance = 0;
  for (std::size_t g = 0; g < stored.size();
       g += static_cast<std::size_t>(digit_bits)) {
    for (int b = 0; b < digit_bits; ++b) {
      const std::size_t c = g + static_cast<std::size_t>(b);
      const Ternary t = stored[c];
      if (t == Ternary::kX) continue;
      const bool want = t == Ternary::kOne;
      if (want != (query[c] != 0)) {
        ++distance;
        break;
      }
    }
  }
  return distance;
}

TEST(ApproxSearch, DigitDistanceMatchesNaiveCount) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    auto rng = util::trial_rng(41, trial, 0);
    for (const int d : {1, 2, 3}) {
      const int digits = 1 + static_cast<int>(trial % 70);
      const int cols = digits * d;
      const auto w = random_word(rng, cols, 0.3);
      const auto q = random_query(rng, cols);
      EXPECT_EQ(digit_distance(w, q, d), naive_distance(w, q, d))
          << "trial " << trial << " d " << d;
    }
  }
}

TEST(ApproxSearch, ResultMatchesPerRowDigitDistance) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    auto rng = util::trial_rng(42, trial, 0);
    for (const int d : {1, 2, 3}) {
      const int digits = 10 + static_cast<int>(trial % 40);
      const int cols = digits * d;
      const int rows = std::uniform_int_distribution<int>(1, 60)(rng);
      TcamArray a(rows, cols);
      std::vector<TernaryWord> words(static_cast<std::size_t>(rows));
      std::vector<bool> valid(static_cast<std::size_t>(rows), false);
      for (int r = 0; r < rows; ++r) {
        if (std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.2) {
          continue;  // leave invalid
        }
        words[static_cast<std::size_t>(r)] = random_word(rng, cols, 0.25);
        a.write(r, words[static_cast<std::size_t>(r)]);
        valid[static_cast<std::size_t>(r)] = true;
      }
      const auto q = random_query(rng, cols);
      const int threshold = static_cast<int>(trial % 5);
      const ApproxSearchResult res = approx_search(a, q, d, threshold);
      int candidates = 0;
      for (int r = 0; r < rows; ++r) {
        if (!valid[static_cast<std::size_t>(r)]) {
          EXPECT_EQ(res.distances[static_cast<std::size_t>(r)], -1);
          EXPECT_FALSE(res.within[static_cast<std::size_t>(r)]);
          continue;
        }
        const int want =
            digit_distance(words[static_cast<std::size_t>(r)], q, d);
        EXPECT_EQ(res.distances[static_cast<std::size_t>(r)], want);
        EXPECT_EQ(res.within[static_cast<std::size_t>(r)],
                  want <= threshold);
        if (want <= threshold) ++candidates;
      }
      // Single-step accounting: every valid row evaluated once, matches =
      // candidate count, no step-1 misses to save energy on.
      EXPECT_EQ(res.stats.matches, candidates);
      EXPECT_EQ(res.stats.step1_misses, 0);
    }
  }
}

TEST(ApproxSearch, ExactDegenerationAtDigitOneThresholdZero) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    auto rng = util::trial_rng(43, trial, 0);
    const int cols = 1 + static_cast<int>(trial * 5 % 100);
    const int rows = std::uniform_int_distribution<int>(1, 50)(rng);
    TcamArray a(rows, cols);
    for (int r = 0; r < rows; ++r) {
      if (std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.15) {
        continue;
      }
      a.write(r, random_word(rng, cols, 0.3));
    }
    const auto q = random_query(rng, cols);
    const ApproxSearchResult res = approx_search(a, q, 1, 0);
    const std::vector<bool> exact = a.search(q);
    for (int r = 0; r < rows; ++r) {
      EXPECT_EQ(res.within[static_cast<std::size_t>(r)],
                exact[static_cast<std::size_t>(r)])
          << "trial " << trial << " row " << r;
    }
  }
}

TEST(ApproxSearch, AllXDigitsCostNothing) {
  TcamArray a(2, 6);
  a.write(0, TernaryWord(6, Ternary::kX));
  // Row 1: one cared digit that mismatches everything-ones.
  TernaryWord w(6, Ternary::kX);
  w[0] = Ternary::kZero;
  a.write(1, w);
  const BitWord q(6, 1);
  const ApproxSearchResult res = approx_search(a, q, 3, 0);
  EXPECT_EQ(res.distances[0], 0);
  EXPECT_TRUE(res.within[0]);
  EXPECT_EQ(res.distances[1], 1);
  EXPECT_FALSE(res.within[1]);
}

TEST(ApproxSearch, ValidationThrows) {
  TcamArray a(2, 6);
  const BitWord q(6, 0);
  EXPECT_THROW(approx_search(a, q, 0, 0), std::invalid_argument);
  EXPECT_THROW(approx_search(a, q, 4, 0), std::invalid_argument);
  EXPECT_THROW(approx_search(a, q, 1, -1), std::invalid_argument);
  // cols = 6 is divisible by 2 and 3 but a 4-wide digit is out of range
  // anyway; a non-dividing width must throw.
  TcamArray b(2, 7);
  const BitWord qb(7, 0);
  EXPECT_THROW(approx_search(b, qb, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fetcam::arch
