#include "arch/area_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fetcam::arch {
namespace {

TEST(AreaModel, ReproducesTable4Areas) {
  // Paper Table IV cell areas (um^2).
  EXPECT_NEAR(cell_area(TcamDesign::kCmos16T).total_um2, 0.286, 0.001);
  EXPECT_NEAR(cell_area(TcamDesign::k2SgFefet).total_um2, 0.095, 0.001);
  EXPECT_NEAR(cell_area(TcamDesign::k2DgFefet).total_um2, 0.204, 0.001);
  EXPECT_NEAR(cell_area(TcamDesign::k1p5SgFe).total_um2, 0.108, 0.001);
  EXPECT_NEAR(cell_area(TcamDesign::k1p5DgFe).total_um2, 0.156, 0.001);
}

TEST(AreaModel, ImprovementRatiosMatchTable4) {
  const double base = cell_area(TcamDesign::kCmos16T).total_um2;
  EXPECT_NEAR(base / cell_area(TcamDesign::k2SgFefet).total_um2, 3.01, 0.05);
  EXPECT_NEAR(base / cell_area(TcamDesign::k2DgFefet).total_um2, 1.40, 0.05);
  EXPECT_NEAR(base / cell_area(TcamDesign::k1p5SgFe).total_um2, 2.65, 0.05);
  EXPECT_NEAR(base / cell_area(TcamDesign::k1p5DgFe).total_um2, 1.83, 0.05);
}

TEST(AreaModel, WellSpacingDrivesTheDgPenalty) {
  // Shrinking the well-isolation spacing closes the DG/SG gap — the
  // sensitivity the paper discusses.
  AreaParams tight;
  tight.well_spacing_unit = 0.0;
  EXPECT_NEAR(cell_area(TcamDesign::k2DgFefet, tight).total_um2,
              cell_area(TcamDesign::k2SgFefet, tight).total_um2, 1e-12);
}

TEST(AreaModel, DeviceCounts) {
  EXPECT_EQ(cell_area(TcamDesign::k2DgFefet).fefets, 2);
  EXPECT_EQ(cell_area(TcamDesign::k1p5DgFe).fefets, 1);
  EXPECT_DOUBLE_EQ(cell_area(TcamDesign::k1p5DgFe).transistors, 1.5);
  EXPECT_DOUBLE_EQ(cell_area(TcamDesign::kCmos16T).transistors, 16.0);
}

TEST(AreaModel, BreakdownSumsToTotal) {
  for (const auto d : {TcamDesign::kCmos16T, TcamDesign::k2SgFefet,
                       TcamDesign::k2DgFefet, TcamDesign::k1p5SgFe,
                       TcamDesign::k1p5DgFe}) {
    const auto a = cell_area(d);
    EXPECT_NEAR(a.total_um2, a.devices_um2 + a.well_um2, 1e-12)
        << design_name(d);
  }
}

TEST(AreaModel, PitchIsSqrtOfAreaAtUnitAspect) {
  const double a = cell_area(TcamDesign::k2SgFefet).total_um2;
  EXPECT_NEAR(cell_pitch_m(TcamDesign::k2SgFefet), std::sqrt(a) * 1e-6,
              1e-12);
  // Wider aspect increases the ML-direction pitch.
  EXPECT_GT(cell_pitch_m(TcamDesign::k2SgFefet, {}, 2.0),
            cell_pitch_m(TcamDesign::k2SgFefet, {}, 1.0));
}

TEST(AreaModel, ArrayAreaWithSharedDrivers) {
  const auto dedicated =
      array_area(TcamDesign::k1p5DgFe, 64, 64, 12.0, false);
  const auto shared = array_area(TcamDesign::k1p5DgFe, 64, 64, 12.0, true);
  EXPECT_DOUBLE_EQ(dedicated.cells_um2, shared.cells_um2);
  EXPECT_NEAR(shared.drivers_um2, 0.5 * dedicated.drivers_um2,
              12.0);  // integer rounding of driver count
  EXPECT_LT(shared.total_um2, dedicated.total_um2);
}

TEST(AreaModel, DesignNames) {
  EXPECT_EQ(design_name(TcamDesign::k1p5DgFe), "1.5T1DG-Fe");
  EXPECT_EQ(design_name(TcamDesign::kCmos16T), "16T CMOS");
}

}  // namespace
}  // namespace fetcam::arch
