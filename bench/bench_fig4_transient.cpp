// Reproduces paper Fig. 4: transient waveforms of the two-step search with
// early termination on a 1.5T1DG-Fe word — SeL_a/SeL_b select pulses (a),
// the match line (b), and the SA output (c) for the step-1 miss, step-2
// miss, and match cases.
//
// Expected shapes: the ML discharges during step 1 for a step-1 miss (and
// SeL_b is never raised — early termination), during step 2 for a step-2
// miss, and stays high through both steps for a match; the SA output
// resolves accordingly.  The waveforms are printed as a sampled table and
// written to bench_fig4_waveforms.csv for plotting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/experiments.hpp"

using namespace fetcam;

namespace {

int g_failures = 0;

void report(const std::vector<eval::Fig4Case>& cases) {
  for (const auto& c : cases) {
    if (!c.ok) {
      std::printf("case %s: SIMULATION FAILED\n", c.label.c_str());
      ++g_failures;
      continue;
    }
    const bool expect_match = c.label == "match";
    if (c.matched != expect_match) ++g_failures;
    std::printf("\n-- %s (SA says %s) --\n", c.label.c_str(),
                c.matched ? "match" : "miss");
    std::printf("   %-9s %-8s %-8s %-8s %-8s\n", "t (ps)", "SeL_a", "SeL_b",
                "ML", "SAout");
    const std::size_t stride = std::max<std::size_t>(1, c.t.size() / 24);
    for (std::size_t k = 0; k < c.t.size(); k += stride) {
      std::printf("   %-9.1f %-8.3f %-8.3f %-8.3f %-8.3f\n", c.t[k] * 1e12,
                  c.sel_a[k], c.sel_b[k], c.ml[k], c.sa_out[k]);
    }
  }
  // CSV dump for plotting.
  std::FILE* f = std::fopen("bench_fig4_waveforms.csv", "w");
  if (f != nullptr) {
    std::fprintf(f, "case,t_ps,sel_a,sel_b,ml,sa_out\n");
    for (const auto& c : cases) {
      for (std::size_t k = 0; k < c.t.size(); ++k) {
        std::fprintf(f, "%s,%.2f,%.4f,%.4f,%.4f,%.4f\n", c.label.c_str(),
                     c.t[k] * 1e12, c.sel_a[k], c.sel_b[k], c.ml[k],
                     c.sa_out[k]);
      }
    }
    std::fclose(f);
    std::printf("\nwaveforms written to bench_fig4_waveforms.csv\n");
  }
}

void BM_Fig4DgWaveforms(benchmark::State& state) {
  for (auto _ : state) {
    auto cases = eval::fig4_waveforms(tcam::Flavor::kDg);
    benchmark::DoNotOptimize(cases);
  }
}
BENCHMARK(BM_Fig4DgWaveforms)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 4: two-step search transients (1.5T1DG-Fe) ===\n");
  report(eval::fig4_waveforms(tcam::Flavor::kDg));
  std::printf("\n%s\n", g_failures == 0 ? "ALL FIG.4 CASES CORRECT"
                                        : "FIG.4 CASE FAILURES!");
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return g_failures == 0 ? 0 : 1;
}
