// Shared helper for the Table I/II/III operation-table benches: simulates
// every write state and stored x query search of a design and prints the
// verified operation table.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/experiments.hpp"
#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::benchsupport {

/// Prints the verified operation rows; returns the number of failures.
inline int print_operation_table(arch::TcamDesign design,
                                 const char* paper_table) {
  std::printf("=== %s: %s cell operations (simulated & verified) ===\n",
              paper_table, arch::design_name(design).c_str());
  int failures = 0;
  const auto checks = eval::verify_operation_table(design);
  for (const auto& c : checks) {
    std::printf("  %-26s %-40s %s\n", c.operation.c_str(), c.detail.c_str(),
                c.passed ? "OK" : "FAIL");
    if (!c.passed) ++failures;
  }
  std::printf("%s\n", failures == 0 ? "ALL OPERATION CHECKS PASSED"
                                    : "OPERATION CHECK FAILURES!");
  return failures;
}

/// Standard main body: print the table, then run the kernel timing.
inline int ops_bench_main(int argc, char** argv, arch::TcamDesign design,
                          const char* paper_table) {
  const int failures = print_operation_table(design, paper_table);
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures == 0 ? 0 : 1;
}

}  // namespace fetcam::benchsupport
