// Reproduces paper Table III: operations of the 1.5T1SG-Fe TCAM cell —
// the merged BL/SeL front-gate line variant (V_SeL = 0.8 V, Vw = +/-4 V).
#include "ops_verify_common.hpp"

using namespace fetcam;

namespace {

void BM_VerifyTab3(benchmark::State& state) {
  for (auto _ : state) {
    auto checks = eval::verify_operation_table(arch::TcamDesign::k1p5SgFe);
    benchmark::DoNotOptimize(checks);
  }
}
BENCHMARK(BM_VerifyTab3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  tcam::WordOptions opts;
  opts.n_bits = 2;
  tcam::OnePointFiveWord sg(tcam::Flavor::kSg, opts);
  std::printf("1.5T1SG-Fe levels: Vw = +/-%.1f V, Vm = %.2f V (paper 3.2 V), "
              "V_SeL = %.1f V, VDD = 0.8 V\n\n",
              4.0, sg.vm(), sg.select_voltage());
  return benchsupport::ops_bench_main(argc, argv, arch::TcamDesign::k1p5SgFe,
                                      "Table III");
}
