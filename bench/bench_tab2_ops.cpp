// Reproduces paper Table II: operations of the 1.5T1DG-Fe TCAM cell —
// three-phase write (erase / program-'1' / program-'X' at V_m) and the
// two-step voltage-divider search with V_SeL = 2 V and V_b bias.
#include "ops_verify_common.hpp"

using namespace fetcam;

namespace {

void BM_VerifyTab2(benchmark::State& state) {
  for (auto _ : state) {
    auto checks = eval::verify_operation_table(arch::TcamDesign::k1p5DgFe);
    benchmark::DoNotOptimize(checks);
  }
}
BENCHMARK(BM_VerifyTab2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  tcam::WordOptions opts;
  opts.n_bits = 2;
  tcam::OnePointFiveWord dg(tcam::Flavor::kDg, opts);
  std::printf("1.5T1DG-Fe levels: Vw = +/-%.1f V, Vm = %.2f V (paper 1.6 V), "
              "V_SeL = %.1f V, V_b = %.2f V, VDD = 0.8 V\n\n",
              2.0, dg.vm(), dg.select_voltage(), dg.cell_params().v_b);
  return benchsupport::ops_bench_main(argc, argv, arch::TcamDesign::k1p5DgFe,
                                      "Table II");
}
