// TCAM service-engine throughput study (no paper counterpart): the
// bit-packed shard kernel vs the behavioral byte-per-digit array, and the
// end-to-end trace-driven engine (sharded table + batch queue + driver
// admission model).
//
// Usage:
//   bench_engine_throughput                      # google-benchmark kernels
//   bench_engine_throughput --engine-json=PATH   # machine-readable report
//                           [--stats-json=PATH]  # + live kStats scrape
//
// The JSON mode feeds BENCH_engine.json consumed by CI's engine perf smoke
// guard (tools/check_engine_throughput.py).  The headline gate is the
// kernel section: packed full-match throughput must be >= 4x the unpacked
// TcamArray::search at 4096 rows x 128 cols, single thread.  The wire
// section reports per-frame RTT p50/p99 and, with --stats-json, archives a
// "fetcam.stats.v1" snapshot scraped from the live loopback server.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"
#include "engine/client.hpp"
#include "engine/engine.hpp"
#include "engine/packed_kernel.hpp"
#include "engine/server.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

#include <mutex>

using namespace fetcam;

namespace {

constexpr int kKernelRows = 4096;
constexpr int kKernelCols = 128;

/// Populate paired behavioral/packed arrays with identical random content
/// (~25 % 'X' digits, routing-table-ish).
void fill_pair(std::uint64_t seed, int rows, int cols, arch::TcamArray* a,
               engine::PackedShard* p) {
  for (int r = 0; r < rows; ++r) {
    auto rng = util::trial_rng(seed, static_cast<std::uint64_t>(r), 0);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::uniform_int_distribution<int> bit(0, 1);
    arch::TernaryWord w;
    w.reserve(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      if (u(rng) < 0.25) {
        w.push_back(arch::Ternary::kX);
      } else {
        w.push_back(bit(rng) != 0 ? arch::Ternary::kOne
                                  : arch::Ternary::kZero);
      }
    }
    if (a != nullptr) a->write(r, w);
    if (p != nullptr) p->write(r, w);
  }
}

std::vector<arch::BitWord> make_queries(std::uint64_t seed, int count,
                                        int cols) {
  std::vector<arch::BitWord> qs;
  qs.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    auto rng = util::trial_rng(seed, static_cast<std::uint64_t>(j), 1);
    std::uniform_int_distribution<int> bit(0, 1);
    arch::BitWord q(static_cast<std::size_t>(cols));
    for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
    qs.push_back(std::move(q));
  }
  return qs;
}

// ---------------------------------------------------------------------------
// google-benchmark kernels
// ---------------------------------------------------------------------------

void BM_UnpackedSearch(benchmark::State& state) {
  arch::TcamArray a(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, &a, nullptr);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.search(qs[j++ % qs.size()]));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_UnpackedSearch)->Unit(benchmark::kMicrosecond);

void BM_PackedFullMatch(benchmark::State& state) {
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.full_match(packed[j++ % packed.size()], mask));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_PackedFullMatch)->Unit(benchmark::kMicrosecond);

void BM_PackedTwoStep(benchmark::State& state) {
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.two_step_match(packed[j++ % packed.size()], mask));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_PackedTwoStep)->Unit(benchmark::kMicrosecond);

/// Same packed kernel pinned to one implementation tier (0 = scalar,
/// 1 = AVX2); skipped when the tier is not available on this build/CPU.
void BM_PackedFullMatchTier(benchmark::State& state) {
  const auto tier = static_cast<engine::KernelTier>(state.range(0));
  if (!engine::kernel_tier_available(tier)) {
    state.SkipWithError("kernel tier unavailable");
    return;
  }
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.full_match(packed[j++ % packed.size()], mask, tier));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
  state.SetLabel(engine::kernel_tier_name(tier));
}
BENCHMARK(BM_PackedFullMatchTier)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_PackedTwoStepTier(benchmark::State& state) {
  const auto tier = static_cast<engine::KernelTier>(state.range(0));
  if (!engine::kernel_tier_available(tier)) {
    state.SkipWithError("kernel tier unavailable");
    return;
  }
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.two_step_match(packed[j++ % packed.size()], mask, tier));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
  state.SetLabel(engine::kernel_tier_name(tier));
}
BENCHMARK(BM_PackedTwoStepTier)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_EngineBatch(benchmark::State& state) {
  engine::TraceSpec spec;
  spec.cols = 64;
  spec.rules = 512;
  spec.queries = 256;
  spec.match_rate = 0.25;
  const auto trace = engine::generate_trace(spec);
  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 64;
  cfg.cols = 64;
  engine::TcamTable table(cfg);
  engine::load_rules(table, trace);
  engine::SearchEngine eng(table);
  for (auto _ : state) {
    std::vector<engine::Request> batch;
    batch.reserve(trace.queries.size());
    for (const auto& q : trace.queries) {
      batch.push_back(engine::make_search(q));
    }
    benchmark::DoNotOptimize(eng.execute(std::move(batch)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.queries.size()));
}
BENCHMARK(BM_EngineBatch)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Machine-readable report (--engine-json=PATH)
// ---------------------------------------------------------------------------

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double median_us(int reps, Fn&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_us();
    fn();
    t.push_back(now_us() - t0);
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct KernelReport {
  int rows = 0;
  int cols = 0;
  int queries = 0;
  double unpacked_us = 0.0;         ///< TcamArray::search, per query batch
  double unpacked_two_step_us = 0.0;
  double packed_us = 0.0;           ///< PackedShard::full_match
  double packed_two_step_us = 0.0;
  double speedup = 0.0;             ///< unpacked / packed, full match
  double two_step_speedup = 0.0;
};

KernelReport measure_kernel() {
  KernelReport rep;
  rep.rows = kKernelRows;
  rep.cols = kKernelCols;
  rep.queries = 32;

  arch::TcamArray a(kKernelRows, kKernelCols);
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, &a, &p);
  const auto qs = make_queries(5, rep.queries, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));

  const int reps = 15;
  rep.unpacked_us = median_us(reps, [&] {
    for (const auto& q : qs) benchmark::DoNotOptimize(a.search(q));
  });
  rep.unpacked_two_step_us = median_us(reps, [&] {
    for (const auto& q : qs) {
      benchmark::DoNotOptimize(arch::two_step_search(a, q));
    }
  });
  std::vector<std::uint64_t> mask;
  rep.packed_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(p.full_match(q, mask));
    }
  });
  rep.packed_two_step_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(p.two_step_match(q, mask));
    }
  });
  rep.speedup = rep.packed_us > 0.0 ? rep.unpacked_us / rep.packed_us : 0.0;
  rep.two_step_speedup = rep.packed_two_step_us > 0.0
                             ? rep.unpacked_two_step_us / rep.packed_two_step_us
                             : 0.0;
  return rep;
}

struct SimdReport {
  bool available = false;        ///< AVX2 compiled in AND CPU supports it
  std::string active_tier;       ///< tier the default path dispatches to
  double scalar_us = 0.0;        ///< full_match pinned to kScalar
  double simd_us = 0.0;          ///< full_match pinned to kAvx2
  double scalar_two_step_us = 0.0;
  double simd_two_step_us = 0.0;
  double speedup = 0.0;          ///< scalar / simd, full match
  double two_step_speedup = 0.0;
};

/// SIMD-vs-scalar on the SAME packed representation at the gate shape;
/// this isolates the vector kernel from the packing win measured above.
SimdReport measure_simd() {
  SimdReport rep;
  rep.available = engine::kernel_tier_available(engine::KernelTier::kAvx2);
  rep.active_tier = engine::kernel_tier_name(engine::active_kernel_tier());

  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 32, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));

  const int reps = 15;
  std::vector<std::uint64_t> mask;
  rep.scalar_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(
          p.full_match(q, mask, engine::KernelTier::kScalar));
    }
  });
  rep.scalar_two_step_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(
          p.two_step_match(q, mask, engine::KernelTier::kScalar));
    }
  });
  if (rep.available) {
    rep.simd_us = median_us(reps, [&] {
      for (const auto& q : packed) {
        benchmark::DoNotOptimize(
            p.full_match(q, mask, engine::KernelTier::kAvx2));
      }
    });
    rep.simd_two_step_us = median_us(reps, [&] {
      for (const auto& q : packed) {
        benchmark::DoNotOptimize(
            p.two_step_match(q, mask, engine::KernelTier::kAvx2));
      }
    });
    rep.speedup = rep.simd_us > 0.0 ? rep.scalar_us / rep.simd_us : 0.0;
    rep.two_step_speedup = rep.simd_two_step_us > 0.0
                               ? rep.scalar_two_step_us / rep.simd_two_step_us
                               : 0.0;
  }
  return rep;
}

struct MulticoreConfig {
  int dispatch_threads = 1;
  int mat_groups = 1;
  std::size_t coalesce_batches = 1;
  double qps = 0.0;
};

/// Search-only trace through the engine under different dispatcher-pool /
/// mat-group / coalescing shapes.  Results are identical by the engine's
/// determinism contract; only the throughput moves.
std::vector<MulticoreConfig> measure_multicore(double* best_qps) {
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 64;
  spec.rules = 2048;
  spec.queries = 20000;
  spec.match_rate = 0.25;
  spec.seed = 11;
  const auto trace = engine::generate_trace(spec);

  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  cfg.cols = 64;
  cfg.subarrays_per_mat = 4;

  std::vector<MulticoreConfig> configs = {
      {1, 1, 1, 0.0},  // the PR-5 single-dispatcher baseline shape
      {1, 1, 4, 0.0},  // + window coalescing
      {2, 4, 4, 0.0},  // small dispatcher pool over 4 mat groups
      {0, 8, 4, 0.0},  // pool-sized dispatchers, one group per mat
  };
  *best_qps = 0.0;
  for (auto& c : configs) {
    engine::TcamTable table(cfg);
    const auto ids = engine::load_rules(table, trace);
    engine::EngineOptions eopts;
    eopts.dispatch_threads = c.dispatch_threads;
    eopts.mat_groups = c.mat_groups;
    eopts.coalesce_batches = c.coalesce_batches;
    engine::SearchEngine eng(table, eopts);
    engine::RunOptions ropts;
    ropts.batch_size = 512;
    ropts.update_rate = 0.0;  // pure search: the coalescer's best case
    ropts.seed = 11;
    const engine::RunSummary s =
        engine::run_trace(eng, table, trace, ids, ropts);
    c.qps = s.qps;
    *best_qps = std::max(*best_qps, c.qps);
    std::cerr << "multicore dispatch=" << c.dispatch_threads
              << " groups=" << c.mat_groups
              << " coalesce=" << c.coalesce_batches << ": " << c.qps
              << " qps\n";
  }
  return configs;
}

struct ApproxReport {
  int digit_bits = 0;
  int k = 0;
  int threshold = 0;
  std::uint64_t rules = 0;
  std::uint64_t searches = 0;
  double hit_rate = 0.0;
  double recall_at_k = 0.0;
  std::uint64_t recall_queries = 0;
  double qps = 0.0;
  double energy_per_search_j = 0.0;        ///< threshold kNN (single step)
  double exact_energy_per_search_j = 0.0;  ///< exact two-step, same table
  double energy_ratio = 0.0;  ///< approx / exact: the early-term saving lost
  std::vector<std::uint64_t> distance_histogram;
};

/// Approximate-match arm: an embedding trace with planted near-duplicates
/// through the kSearchNearest path, recall-checked against the brute-force
/// reference, plus an exact-search A/B on the SAME table for the energy
/// story (threshold search cannot use two-step early termination, so it
/// pays the full-word evaluation energy on every row).
ApproxReport measure_approx() {
  ApproxReport rep;
  rep.digit_bits = 2;
  rep.k = 4;
  rep.threshold = 2;

  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kEmbedding;
  spec.cols = 64;
  spec.rules = 2048;
  spec.queries = 20000;
  spec.match_rate = 0.5;
  spec.digit_bits = rep.digit_bits;
  spec.seed = 17;
  const auto trace = engine::generate_trace(spec);
  rep.rules = trace.rules.size();

  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  cfg.cols = 64;
  cfg.subarrays_per_mat = 4;
  cfg.digit_bits = rep.digit_bits;
  engine::TcamTable table(cfg);
  const auto ids = engine::load_rules(table, trace);

  engine::EngineOptions eopts;
  eopts.k = rep.k;
  eopts.distance_threshold = rep.threshold;
  engine::SearchEngine eng(table, eopts);

  // Exact A/B first: the same queries as plain searches (two-step early
  // termination active).  Planted duplicates with >= 1 flipped digit miss
  // here — that gap is what the approximate path exists to close.
  engine::RunOptions exact_opts;
  exact_opts.batch_size = 512;
  exact_opts.update_rate = 0.0;
  exact_opts.seed = 17;
  const engine::RunSummary exact =
      engine::run_trace(eng, table, trace, ids, exact_opts);
  rep.exact_energy_per_search_j = exact.energy_per_search_j;

  engine::NearestRunOptions nopts;
  nopts.batch_size = 512;
  nopts.k = rep.k;
  nopts.threshold = rep.threshold;
  const engine::NearestRunSummary s =
      engine::run_nearest_trace(eng, table, trace, ids, nopts);
  rep.searches = s.searches;
  rep.hit_rate = s.hit_rate;
  rep.recall_at_k = s.recall_at_k;
  rep.recall_queries = s.recall_queries;
  rep.qps = s.qps;
  rep.energy_per_search_j = s.energy_per_search_j;
  rep.energy_ratio = rep.exact_energy_per_search_j > 0.0
                         ? rep.energy_per_search_j /
                               rep.exact_energy_per_search_j
                         : 0.0;
  rep.distance_histogram = s.distance_histogram;
  std::cerr << "approx (d=" << rep.digit_bits << ", k=" << rep.k
            << ", t=" << rep.threshold << "): " << s.searches
            << " searches -> " << s.qps << " qps, recall@" << rep.k << "="
            << s.recall_at_k << " (" << s.recall_queries
            << " scored), hit_rate=" << s.hit_rate
            << ", exact hit_rate=" << exact.hit_rate
            << ", energy_ratio=" << rep.energy_ratio << "\n";
  return rep;
}

struct WireReport {
  int clients = 0;
  int frames_per_client = 0;
  int queries_per_frame = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  std::uint64_t frames_served = 0;
  double rtt_p50_us = 0.0;  ///< per-frame send->reply round trip
  double rtt_p99_us = 0.0;
  std::string stats_json;   ///< live kStats scrape taken before stop()
};

double sorted_percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size()) + 0.999999);
  if (idx < 1) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

/// Over-the-wire mode: loopback SearchServer, pipelined binary-protocol
/// clients.  Measures the full path (framing + epoll + engine + framing).
/// Stage attribution rides along: the section runs at obs metrics level and
/// finishes with a live kStats scrape off the still-running server, which
/// CI archives next to BENCH_engine.json.
WireReport measure_wire() {
  WireReport rep;
  rep.clients = 2;
  rep.frames_per_client = 100;
  rep.queries_per_frame = 64;

  // Per-stage recorders only fill at metrics level; restore the prior
  // level on exit so the wire section is self-contained.
  const obs::Level prior_level = obs::level();
  if (!obs::metrics_on()) obs::set_level(obs::Level::kMetrics);

  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 64;
  spec.rules = 2048;
  spec.queries = 1024;
  spec.match_rate = 0.25;
  spec.seed = 13;
  const auto trace = engine::generate_trace(spec);

  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  cfg.cols = 64;
  cfg.subarrays_per_mat = 4;
  engine::TcamTable table(cfg);
  engine::load_rules(table, trace);

  engine::EngineOptions eopts;
  eopts.coalesce_batches = 4;
  engine::SearchEngine eng(table, eopts);
  engine::SearchServer server(eng, cfg.cols);
  server.start();

  constexpr int kPipelineDepth = 8;
  std::mutex rtt_mu;
  std::vector<double> rtts;  // per-frame round trips, all clients merged
  const double t0 = now_us();
  std::vector<std::thread> threads;
  for (int c = 0; c < rep.clients; ++c) {
    threads.emplace_back([&, c] {
      engine::SearchClient client;
      client.connect("127.0.0.1", server.port());
      std::vector<arch::BitWord> frame;
      frame.reserve(static_cast<std::size_t>(rep.queries_per_frame));
      for (int k = 0; k < rep.queries_per_frame; ++k) {
        frame.push_back(trace.queries[static_cast<std::size_t>(
            (c * 509 + k) % static_cast<int>(trace.queries.size()))]);
      }
      // The server answers in request order, so reply k closes the RTT
      // opened by send k even with pipelining.
      std::vector<double> send_ts(
          static_cast<std::size_t>(rep.frames_per_client), 0.0);
      std::vector<double> local_rtts;
      local_rtts.reserve(send_ts.size());
      int sent = 0;
      int received = 0;
      while (received < rep.frames_per_client) {
        while (sent < rep.frames_per_client &&
               sent - received < kPipelineDepth) {
          send_ts[static_cast<std::size_t>(sent)] = now_us();
          client.send_batch(frame, cfg.cols);
          ++sent;
        }
        const auto reply = client.recv_reply();
        if (!reply.ok) return;  // surfaces as a frames_served shortfall
        local_rtts.push_back(now_us() -
                             send_ts[static_cast<std::size_t>(received)]);
        ++received;
      }
      const std::lock_guard<std::mutex> lock(rtt_mu);
      rtts.insert(rtts.end(), local_rtts.begin(), local_rtts.end());
    });
  }
  for (auto& t : threads) t.join();
  rep.wall_s = (now_us() - t0) / 1e6;
  rep.frames_served = server.frames_served();
  rep.rtt_p50_us = sorted_percentile(rtts, 0.50);
  rep.rtt_p99_us = sorted_percentile(rtts, 0.99);
  // Scrape the live server before stopping it: the artifact shows queue /
  // stage percentiles and per-connection counters for this exact run.
  try {
    engine::SearchClient scraper;
    scraper.connect("127.0.0.1", server.port());
    rep.stats_json = scraper.stats();
  } catch (const std::exception& e) {
    std::cerr << "stats scrape failed: " << e.what() << "\n";
  }
  server.stop();
  obs::set_level(prior_level);
  const double total_queries = static_cast<double>(rep.clients) *
                               rep.frames_per_client * rep.queries_per_frame;
  rep.qps = rep.wall_s > 0.0 ? total_queries / rep.wall_s : 0.0;
  std::cerr << "wire: " << rep.clients << " clients x "
            << rep.frames_per_client << " frames x " << rep.queries_per_frame
            << " queries in " << rep.wall_s << "s -> " << rep.qps
            << " qps, rtt p50=" << rep.rtt_p50_us << "us p99="
            << rep.rtt_p99_us << "us\n";
  return rep;
}

int emit_engine_json(const std::string& path, const std::string& stats_path) {
  // The kernel gate is defined single-thread: pin the pool so a parallel
  // environment cannot flatter (or starve) either arm.
  util::set_thread_count(1);
  const KernelReport k = measure_kernel();
  std::cerr << "kernel " << k.rows << "x" << k.cols << ": unpacked="
            << k.unpacked_us << "us packed=" << k.packed_us
            << "us speedup=" << k.speedup << " (two-step "
            << k.two_step_speedup << ")\n";
  const SimdReport simd = measure_simd();
  std::cerr << "simd (" << (simd.available ? "avx2" : "unavailable")
            << ", active=" << simd.active_tier << "): scalar="
            << simd.scalar_us << "us simd=" << simd.simd_us
            << "us speedup=" << simd.speedup << " (two-step "
            << simd.two_step_speedup << ")\n";

  // Engine run: default thread resolution (FETCAM_THREADS / cores).
  util::set_thread_count(0);
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 64;
  spec.rules = 2048;
  spec.queries = 50000;
  spec.match_rate = 0.25;
  spec.seed = 7;
  const auto trace = engine::generate_trace(spec);

  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  cfg.cols = 64;
  cfg.subarrays_per_mat = 4;
  engine::RunOptions ropts;
  ropts.batch_size = 512;
  ropts.update_rate = 0.01;
  ropts.seed = 7;

  // Baseline arm — the PR 7 search path: insertion-order placement,
  // pruning off, query_block 1 (every lane takes the single-query path).
  engine::TableConfig base_cfg = cfg;
  base_cfg.mat_skip = false;
  engine::RunSummary sb;
  {
    engine::TcamTable base_table(base_cfg);
    const auto base_ids = engine::load_rules(base_table, trace);
    engine::EngineOptions base_opts;
    base_opts.query_block = 1;
    engine::SearchEngine base_eng(base_table, base_opts);
    sb = engine::run_trace(base_eng, base_table, trace, base_ids, ropts);
  }
  std::cerr << "engine baseline (block=1, skip off): " << sb.searches
            << " searches in " << sb.wall_s << "s -> " << sb.qps
            << " qps, hit_rate=" << sb.hit_rate << "\n";

  // Blocked arm — this PR: pruning-aware clustered placement, mat-skip
  // pruning, blocked kernels at the default query_block.
  engine::TcamTable table(cfg);
  const auto ids = engine::load_rules_clustered(table, trace);
  engine::SearchEngine eng(table);
  const engine::RunSummary s =
      engine::run_trace(eng, table, trace, ids, ropts);
  const long long considered = eng.mats_considered();
  const long long skipped = eng.mats_skipped();
  const double skip_rate =
      considered > 0
          ? static_cast<double>(skipped) / static_cast<double>(considered)
          : 0.0;
  const double block_speedup = sb.qps > 0.0 ? s.qps / sb.qps : 0.0;
  std::cerr << "engine blocked (block=" << eng.query_block()
            << ", skip on): " << s.searches << " searches in " << s.wall_s
            << "s -> " << s.qps << " qps, hit_rate=" << s.hit_rate
            << " step1_miss_rate=" << s.step1_miss_rate
            << " mat_skip_rate=" << skip_rate
            << " block_speedup=" << block_speedup << "\n";

  double best_qps = 0.0;
  const std::vector<MulticoreConfig> configs = measure_multicore(&best_qps);
  const WireReport wire = measure_wire();
  const ApproxReport approx = measure_approx();

  std::ostringstream os;
  os << "{\n  \"kernel\": {\n"
     << "    \"rows\": " << k.rows << ",\n"
     << "    \"cols\": " << k.cols << ",\n"
     << "    \"queries_per_rep\": " << k.queries << ",\n"
     << "    \"unpacked_us\": " << k.unpacked_us << ",\n"
     << "    \"unpacked_two_step_us\": " << k.unpacked_two_step_us << ",\n"
     << "    \"packed_us\": " << k.packed_us << ",\n"
     << "    \"packed_two_step_us\": " << k.packed_two_step_us << ",\n"
     << "    \"speedup\": " << k.speedup << ",\n"
     << "    \"two_step_speedup\": " << k.two_step_speedup << "\n"
     << "  },\n";
  os << "  \"simd\": {\n"
     << "    \"available\": " << (simd.available ? "true" : "false") << ",\n"
     << "    \"active_tier\": \"" << simd.active_tier << "\",\n"
     << "    \"scalar_us\": " << simd.scalar_us << ",\n"
     << "    \"simd_us\": " << simd.simd_us << ",\n"
     << "    \"scalar_two_step_us\": " << simd.scalar_two_step_us << ",\n"
     << "    \"simd_two_step_us\": " << simd.simd_two_step_us << ",\n"
     << "    \"speedup\": " << simd.speedup << ",\n"
     << "    \"two_step_speedup\": " << simd.two_step_speedup << "\n"
     << "  },\n";
  os << "  \"multicore\": {\n    \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const MulticoreConfig& c = configs[i];
    os << "      {\"dispatch_threads\": " << c.dispatch_threads
       << ", \"mat_groups\": " << c.mat_groups
       << ", \"coalesce_batches\": " << c.coalesce_batches
       << ", \"qps\": " << c.qps << "}"
       << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  os << "    ],\n    \"best_qps\": " << best_qps << "\n  },\n";
  os << "  \"wire\": {\n"
     << "    \"clients\": " << wire.clients << ",\n"
     << "    \"frames_per_client\": " << wire.frames_per_client << ",\n"
     << "    \"queries_per_frame\": " << wire.queries_per_frame << ",\n"
     << "    \"frames_served\": " << wire.frames_served << ",\n"
     << "    \"wall_s\": " << wire.wall_s << ",\n"
     << "    \"qps\": " << wire.qps << ",\n"
     << "    \"rtt_p50_us\": " << wire.rtt_p50_us << ",\n"
     << "    \"rtt_p99_us\": " << wire.rtt_p99_us << "\n"
     << "  },\n";
  os << "  \"approx\": {\n"
     << "    \"digit_bits\": " << approx.digit_bits << ",\n"
     << "    \"k\": " << approx.k << ",\n"
     << "    \"threshold\": " << approx.threshold << ",\n"
     << "    \"rules\": " << approx.rules << ",\n"
     << "    \"searches\": " << approx.searches << ",\n"
     << "    \"hit_rate\": " << approx.hit_rate << ",\n"
     << "    \"recall_at_k\": " << approx.recall_at_k << ",\n"
     << "    \"recall_queries\": " << approx.recall_queries << ",\n"
     << "    \"qps\": " << approx.qps << ",\n"
     << "    \"energy_per_search_j\": " << approx.energy_per_search_j << ",\n"
     << "    \"exact_energy_per_search_j\": "
     << approx.exact_energy_per_search_j << ",\n"
     << "    \"energy_ratio\": " << approx.energy_ratio << ",\n"
     << "    \"distance_histogram\": [";
  for (std::size_t i = 0; i < approx.distance_histogram.size(); ++i) {
    os << (i ? ", " : "") << approx.distance_histogram[i];
  }
  os << "]\n  },\n";
  os << "  \"engine\": {\n"
     << "    \"trace_kind\": \"" << engine::trace_kind_name(spec.kind)
     << "\",\n"
     << "    \"mats\": " << cfg.mats << ",\n"
     << "    \"rows_per_mat\": " << cfg.rows_per_mat << ",\n"
     << "    \"cols\": " << cfg.cols << ",\n"
     << "    \"rules\": " << trace.rules.size() << ",\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"searches\": " << s.searches << ",\n"
     << "    \"writes\": " << s.writes << ",\n"
     << "    \"batches\": " << s.batches << ",\n"
     << "    \"hit_rate\": " << s.hit_rate << ",\n"
     << "    \"step1_miss_rate\": " << s.step1_miss_rate << ",\n"
     << "    \"query_block\": " << eng.query_block() << ",\n"
     << "    \"baseline_qps\": " << sb.qps << ",\n"
     << "    \"block_speedup\": " << block_speedup << ",\n"
     << "    \"mats_considered\": " << considered << ",\n"
     << "    \"mats_skipped\": " << skipped << ",\n"
     << "    \"mat_skip_rate\": " << skip_rate << ",\n"
     << "    \"energy_per_search_j\": " << s.energy_per_search_j << ",\n"
     << "    \"driver_stalls\": " << s.driver_stalls << ",\n"
     << "    \"write_cycles\": " << s.write_cycles << ",\n"
     << "    \"model_time_s\": " << s.model_time_s << ",\n"
     << "    \"wall_s\": " << s.wall_s << ",\n"
     << "    \"qps\": " << s.qps << ",\n"
     << "    \"p50_batch_us\": " << s.p50_batch_us << ",\n"
     << "    \"p99_batch_us\": " << s.p99_batch_us << ",\n"
     << "    \"queue_high_watermark\": " << eng.queue_high_watermark() << "\n"
     << "  }\n}\n";

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cerr << "wrote " << path << "\n";

  if (!stats_path.empty()) {
    if (wire.stats_json.empty()) {
      std::cerr << "no stats snapshot captured; skipping " << stats_path
                << "\n";
      return 1;
    }
    std::ofstream sf(stats_path);
    if (!sf) {
      std::cerr << "cannot write " << stats_path << "\n";
      return 1;
    }
    sf << wire.stats_json;
    std::cerr << "wrote " << stats_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string stats_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      json_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      stats_path = argv[i] + 13;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return emit_engine_json(json_path, stats_path);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
