// TCAM service-engine throughput study (no paper counterpart): the
// bit-packed shard kernel vs the behavioral byte-per-digit array, and the
// end-to-end trace-driven engine (sharded table + batch queue + driver
// admission model).
//
// Usage:
//   bench_engine_throughput                      # google-benchmark kernels
//   bench_engine_throughput --engine-json=PATH   # machine-readable report
//
// The JSON mode feeds BENCH_engine.json consumed by CI's engine perf smoke
// guard (tools/check_engine_throughput.py).  The headline gate is the
// kernel section: packed full-match throughput must be >= 4x the unpacked
// TcamArray::search at 4096 rows x 128 cols, single thread.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"
#include "engine/engine.hpp"
#include "engine/packed_kernel.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace fetcam;

namespace {

constexpr int kKernelRows = 4096;
constexpr int kKernelCols = 128;

/// Populate paired behavioral/packed arrays with identical random content
/// (~25 % 'X' digits, routing-table-ish).
void fill_pair(std::uint64_t seed, int rows, int cols, arch::TcamArray* a,
               engine::PackedShard* p) {
  for (int r = 0; r < rows; ++r) {
    auto rng = util::trial_rng(seed, static_cast<std::uint64_t>(r), 0);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::uniform_int_distribution<int> bit(0, 1);
    arch::TernaryWord w;
    w.reserve(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      if (u(rng) < 0.25) {
        w.push_back(arch::Ternary::kX);
      } else {
        w.push_back(bit(rng) != 0 ? arch::Ternary::kOne
                                  : arch::Ternary::kZero);
      }
    }
    if (a != nullptr) a->write(r, w);
    if (p != nullptr) p->write(r, w);
  }
}

std::vector<arch::BitWord> make_queries(std::uint64_t seed, int count,
                                        int cols) {
  std::vector<arch::BitWord> qs;
  qs.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    auto rng = util::trial_rng(seed, static_cast<std::uint64_t>(j), 1);
    std::uniform_int_distribution<int> bit(0, 1);
    arch::BitWord q(static_cast<std::size_t>(cols));
    for (auto& b : q) b = static_cast<std::uint8_t>(bit(rng));
    qs.push_back(std::move(q));
  }
  return qs;
}

// ---------------------------------------------------------------------------
// google-benchmark kernels
// ---------------------------------------------------------------------------

void BM_UnpackedSearch(benchmark::State& state) {
  arch::TcamArray a(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, &a, nullptr);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.search(qs[j++ % qs.size()]));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_UnpackedSearch)->Unit(benchmark::kMicrosecond);

void BM_PackedFullMatch(benchmark::State& state) {
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.full_match(packed[j++ % packed.size()], mask));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_PackedFullMatch)->Unit(benchmark::kMicrosecond);

void BM_PackedTwoStep(benchmark::State& state) {
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, nullptr, &p);
  const auto qs = make_queries(5, 64, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));
  std::vector<std::uint64_t> mask;
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.two_step_match(packed[j++ % packed.size()], mask));
  }
  state.SetItemsProcessed(state.iterations() * kKernelRows);
}
BENCHMARK(BM_PackedTwoStep)->Unit(benchmark::kMicrosecond);

void BM_EngineBatch(benchmark::State& state) {
  engine::TraceSpec spec;
  spec.cols = 64;
  spec.rules = 512;
  spec.queries = 256;
  spec.match_rate = 0.25;
  const auto trace = engine::generate_trace(spec);
  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 64;
  cfg.cols = 64;
  engine::TcamTable table(cfg);
  engine::load_rules(table, trace);
  engine::SearchEngine eng(table);
  for (auto _ : state) {
    std::vector<engine::Request> batch;
    batch.reserve(trace.queries.size());
    for (const auto& q : trace.queries) {
      batch.push_back(engine::make_search(q));
    }
    benchmark::DoNotOptimize(eng.execute(std::move(batch)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.queries.size()));
}
BENCHMARK(BM_EngineBatch)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Machine-readable report (--engine-json=PATH)
// ---------------------------------------------------------------------------

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double median_us(int reps, Fn&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_us();
    fn();
    t.push_back(now_us() - t0);
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct KernelReport {
  int rows = 0;
  int cols = 0;
  int queries = 0;
  double unpacked_us = 0.0;         ///< TcamArray::search, per query batch
  double unpacked_two_step_us = 0.0;
  double packed_us = 0.0;           ///< PackedShard::full_match
  double packed_two_step_us = 0.0;
  double speedup = 0.0;             ///< unpacked / packed, full match
  double two_step_speedup = 0.0;
};

KernelReport measure_kernel() {
  KernelReport rep;
  rep.rows = kKernelRows;
  rep.cols = kKernelCols;
  rep.queries = 32;

  arch::TcamArray a(kKernelRows, kKernelCols);
  engine::PackedShard p(kKernelRows, kKernelCols);
  fill_pair(3, kKernelRows, kKernelCols, &a, &p);
  const auto qs = make_queries(5, rep.queries, kKernelCols);
  std::vector<engine::PackedQuery> packed;
  for (const auto& q : qs) packed.push_back(engine::PackedQuery::pack(q));

  const int reps = 15;
  rep.unpacked_us = median_us(reps, [&] {
    for (const auto& q : qs) benchmark::DoNotOptimize(a.search(q));
  });
  rep.unpacked_two_step_us = median_us(reps, [&] {
    for (const auto& q : qs) {
      benchmark::DoNotOptimize(arch::two_step_search(a, q));
    }
  });
  std::vector<std::uint64_t> mask;
  rep.packed_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(p.full_match(q, mask));
    }
  });
  rep.packed_two_step_us = median_us(reps, [&] {
    for (const auto& q : packed) {
      benchmark::DoNotOptimize(p.two_step_match(q, mask));
    }
  });
  rep.speedup = rep.packed_us > 0.0 ? rep.unpacked_us / rep.packed_us : 0.0;
  rep.two_step_speedup = rep.packed_two_step_us > 0.0
                             ? rep.unpacked_two_step_us / rep.packed_two_step_us
                             : 0.0;
  return rep;
}

int emit_engine_json(const std::string& path) {
  // The kernel gate is defined single-thread: pin the pool so a parallel
  // environment cannot flatter (or starve) either arm.
  util::set_thread_count(1);
  const KernelReport k = measure_kernel();
  std::cerr << "kernel " << k.rows << "x" << k.cols << ": unpacked="
            << k.unpacked_us << "us packed=" << k.packed_us
            << "us speedup=" << k.speedup << " (two-step "
            << k.two_step_speedup << ")\n";

  // Engine run: default thread resolution (FETCAM_THREADS / cores).
  util::set_thread_count(0);
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 64;
  spec.rules = 2048;
  spec.queries = 50000;
  spec.match_rate = 0.25;
  spec.seed = 7;
  const auto trace = engine::generate_trace(spec);

  engine::TableConfig cfg;
  cfg.mats = 8;
  cfg.rows_per_mat = 256;
  cfg.cols = 64;
  cfg.subarrays_per_mat = 4;
  engine::TcamTable table(cfg);
  const auto ids = engine::load_rules(table, trace);

  engine::SearchEngine eng(table);
  engine::RunOptions ropts;
  ropts.batch_size = 512;
  ropts.update_rate = 0.01;
  ropts.seed = 7;
  const engine::RunSummary s =
      engine::run_trace(eng, table, trace, ids, ropts);
  std::cerr << "engine: " << s.searches << " searches in " << s.wall_s
            << "s -> " << s.qps << " qps, hit_rate=" << s.hit_rate
            << " step1_miss_rate=" << s.step1_miss_rate << "\n";

  std::ostringstream os;
  os << "{\n  \"kernel\": {\n"
     << "    \"rows\": " << k.rows << ",\n"
     << "    \"cols\": " << k.cols << ",\n"
     << "    \"queries_per_rep\": " << k.queries << ",\n"
     << "    \"unpacked_us\": " << k.unpacked_us << ",\n"
     << "    \"unpacked_two_step_us\": " << k.unpacked_two_step_us << ",\n"
     << "    \"packed_us\": " << k.packed_us << ",\n"
     << "    \"packed_two_step_us\": " << k.packed_two_step_us << ",\n"
     << "    \"speedup\": " << k.speedup << ",\n"
     << "    \"two_step_speedup\": " << k.two_step_speedup << "\n"
     << "  },\n";
  os << "  \"engine\": {\n"
     << "    \"trace_kind\": \"" << engine::trace_kind_name(spec.kind)
     << "\",\n"
     << "    \"mats\": " << cfg.mats << ",\n"
     << "    \"rows_per_mat\": " << cfg.rows_per_mat << ",\n"
     << "    \"cols\": " << cfg.cols << ",\n"
     << "    \"rules\": " << trace.rules.size() << ",\n"
     << "    \"requests\": " << s.requests << ",\n"
     << "    \"searches\": " << s.searches << ",\n"
     << "    \"writes\": " << s.writes << ",\n"
     << "    \"batches\": " << s.batches << ",\n"
     << "    \"hit_rate\": " << s.hit_rate << ",\n"
     << "    \"step1_miss_rate\": " << s.step1_miss_rate << ",\n"
     << "    \"energy_per_search_j\": " << s.energy_per_search_j << ",\n"
     << "    \"driver_stalls\": " << s.driver_stalls << ",\n"
     << "    \"write_cycles\": " << s.write_cycles << ",\n"
     << "    \"model_time_s\": " << s.model_time_s << ",\n"
     << "    \"wall_s\": " << s.wall_s << ",\n"
     << "    \"qps\": " << s.qps << ",\n"
     << "    \"p50_batch_us\": " << s.p50_batch_us << ",\n"
     << "    \"p99_batch_us\": " << s.p99_batch_us << ",\n"
     << "    \"queue_high_watermark\": " << eng.queue_high_watermark() << "\n"
     << "  }\n}\n";

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine-json=", 14) == 0) {
      json_path = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return emit_engine_json(json_path);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
