// Design-space exploration benchmark (no paper counterpart): the
// surrogate-pruned sweep of src/dse against the exhaustive arm.
//
// Usage:
//   bench_dse                     # google-benchmark kernels
//   bench_dse --dse-json=PATH     # machine-readable report
//
// The JSON mode runs dse::run_dse_comparison on the default space (exact
// arm simulated once, pruned arm replayed against it) and writes the
// fetcam.dse.v1 document consumed by CI's DSE guard
// (tools/check_dse_frontier.py).  Gates:
//   * the frontier holds both cell families (a 2FeFET and a 1.5T1Fe
//     design) — neither family is allowed to silently fall out of the
//     reproduction's trade-off space;
//   * the paper's nominal points are not dominated beyond a small
//     relative margin inside our own model;
//   * the pruned arm simulates <= 60 % of the grid while recovering
//     >= 95 % of the exact frontier.
//
// Everything in the JSON is deterministic (fixed seeds, counter-based MC
// streams, batched pruning decisions); only the google-benchmark kernel
// timings below are machine-dependent.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/driver.hpp"
#include "dse/pareto.hpp"
#include "dse/report.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace fetcam;

namespace {

dse::DseOptions bench_options() {
  dse::DseOptions opts;
  opts.space = dse::default_space();
  return opts;
}

int emit_dse_json(const std::string& path) {
  const dse::DseOptions opts = bench_options();
  const dse::DseComparison cmp = dse::run_dse_comparison(opts);
  const auto paper = dse::check_paper_points(opts, cmp.exact);
  const std::string json =
      dse::render_json(opts, cmp.exact, &cmp.pruned, cmp.frontier_recall,
                       paper, util::thread_count());
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  f << json << "\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

void BM_EvaluatePoint(benchmark::State& state) {
  const dse::DseOptions opts = bench_options();
  const dse::DesignPoint p = opts.space.grid_point(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse::evaluate_point(p, opts.eval, util::trial_key(1, i++)));
  }
}
BENCHMARK(BM_EvaluatePoint)->Unit(benchmark::kMillisecond);

void BM_ParetoFront(benchmark::State& state) {
  // Synthetic objective cloud via the Halton sequence (deterministic).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<dse::ObjVec> objs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      objs[i][k] = util::radical_inverse(i + 1, k == 0   ? 2
                                                : k == 1 ? 3
                                                : k == 2 ? 5
                                                         : 7);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse::pareto_front(objs));
  }
}
BENCHMARK(BM_ParetoFront)->Arg(128)->Arg(1024);

void BM_SurrogateFitPredict(benchmark::State& state) {
  const dse::DseOptions opts = bench_options();
  const auto pts = opts.space.grid_points();
  for (auto _ : state) {
    dse::QuadraticSurrogate s(opts.space.feature_names().size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      dse::ObjVec y{};
      for (std::size_t k = 0; k < 4; ++k) {
        y[k] = 1.0 + util::radical_inverse(i + 1, 2 + k);
      }
      s.add_sample(opts.space.features(pts[i]), y);
    }
    s.fit();
    benchmark::DoNotOptimize(s.predict(opts.space.features(pts[0])));
  }
}
BENCHMARK(BM_SurrogateFitPredict);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dse-json=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return emit_dse_json(json_path);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
