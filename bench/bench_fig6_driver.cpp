// Reproduces paper Fig. 6 (Sec. III-B4): the shared high-voltage driver
// architecture — driver count/area/leakage of a 4-subarray mat with and
// without time-multiplexed sharing, plus a schedule simulation measuring
// driver utilization and the write-vs-search conflicts the sharing
// introduces under mixed workloads.
//
// Expected shape: sharing halves driver count, area and leakage (enabled by
// the V_write == V_select co-optimization); utilization roughly doubles;
// stall rate stays low while writes are rare (the paper's "seldom writes,
// frequent searches" regime).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "arch/hv_driver.hpp"
#include "eval/array_eval.hpp"
#include "eval/report.hpp"

using namespace fetcam;

namespace {

void print_bank_report() {
  const arch::MatGeometry g{.rows = 64, .cols = 64, .subarrays = 4};
  const arch::HvDriverParams p{};
  const auto r = arch::driver_bank_report(g, p);
  eval::TextTable t({"metric", "dedicated", "shared (Fig. 6)", "saving"});
  t.add_row({"HV drivers", std::to_string(r.drivers_dedicated),
             std::to_string(r.drivers_shared),
             eval::format_eng(100.0 * r.area_saving(), "%")});
  t.add_row({"driver area (um^2)",
             eval::format_eng(r.area_dedicated_um2, ""),
             eval::format_eng(r.area_shared_um2, ""),
             eval::format_eng(100.0 * r.area_saving(), "%")});
  t.add_row({"driver leakage (nW)",
             eval::format_eng(r.leakage_dedicated_nw, ""),
             eval::format_eng(r.leakage_shared_nw, ""),
             eval::format_eng(100.0 * r.area_saving(), "%")});
  std::printf("%s", t.str().c_str());

  arch::HvDriverParams no_coopt = p;
  no_coopt.voltages_match = false;
  const auto r2 = arch::driver_bank_report(g, no_coopt);
  std::printf("\nwithout the V_write == V_select co-optimization: %d drivers "
              "(no sharing possible)\n",
              r2.drivers_shared);
}

void run_schedule(double write_fraction, double active_fraction) {
  const arch::MatGeometry g{.rows = 64, .cols = 64, .subarrays = 4};
  arch::SharedDriverScheduler sched(g, {});
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int cycle = 0; cycle < 20000; ++cycle) {
    std::vector<arch::MatOp> req(4, arch::MatOp::kIdle);
    for (auto& op : req) {
      if (u(rng) < active_fraction) {
        op = u(rng) < write_fraction ? arch::MatOp::kWrite
                                     : arch::MatOp::kSearch;
      }
    }
    sched.submit(req);
  }
  std::printf("  write fraction %4.1f%%: utilization %.1f%%, stalls %lld / "
              "%lld grants\n",
              100.0 * write_fraction, 100.0 * sched.utilization(),
              sched.stalls(), sched.grants());
}

void BM_Scheduler(benchmark::State& state) {
  const arch::MatGeometry g{.rows = 64, .cols = 64, .subarrays = 4};
  arch::SharedDriverScheduler sched(g, {});
  std::vector<arch::MatOp> req{arch::MatOp::kSearch, arch::MatOp::kSearch,
                               arch::MatOp::kWrite, arch::MatOp::kIdle};
  for (auto _ : state) {
    auto granted = sched.submit(req);
    benchmark::DoNotOptimize(granted);
  }
}
BENCHMARK(BM_Scheduler);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 6: shared HV driver architecture ===\n\n");
  print_bank_report();
  std::printf("\n-- time-multiplexed schedule (80%% busy subarrays) --\n");
  for (const double wf : {0.0, 0.01, 0.05, 0.20, 0.50}) {
    run_schedule(wf, 0.8);
  }
  std::printf("\n-- array-level datasheets (64x64, shared drivers where "
              "applicable) --\n");
  {
    std::vector<eval::ArrayDatasheet> sheets;
    for (const auto d :
         {arch::TcamDesign::kCmos16T, arch::TcamDesign::k2SgFefet,
          arch::TcamDesign::k2DgFefet, arch::TcamDesign::k1p5SgFe,
          arch::TcamDesign::k1p5DgFe}) {
      sheets.push_back(eval::array_datasheet(d));
    }
    std::printf("%s", eval::render_datasheets(sheets).c_str());
  }
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
