// Reproduces paper Table I: operations of the 2DG-FeFET TCAM cell.
// Every write state (complementary +/-2 V FG pulses) and every stored x
// query search (V_s = 2 V on the back gates) is simulated and verified.
#include "ops_verify_common.hpp"

using namespace fetcam;

namespace {

void BM_VerifyTab1(benchmark::State& state) {
  for (auto _ : state) {
    auto checks = eval::verify_operation_table(arch::TcamDesign::k2DgFefet);
    benchmark::DoNotOptimize(checks);
  }
}
BENCHMARK(BM_VerifyTab1)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return benchsupport::ops_bench_main(argc, argv,
                                      arch::TcamDesign::k2DgFefet, "Table I");
}
