// Simulator-kernel scaling study (no paper counterpart): dense vs sparse LU
// factorization cost on MNA-structured matrices, and end-to-end transient
// throughput of the word harness at growing word lengths.
//
// This is the evidence behind the SolverKind::kAuto policy: the sparse
// Gilbert-Peierls path overtakes dense LU at a few hundred unknowns on the
// ladder-plus-branches structure TCAM netlists produce.
#include <benchmark/benchmark.h>

#include <random>

#include "numeric/lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "tcam/sim_harness.hpp"

using namespace fetcam;

namespace {

// MNA-like ladder matrix: tridiagonal conductances plus a few long-range
// branch rows, the structure of a match-line netlist.
void build_ladder(int n, num::Matrix* dense, num::TripletAccumulator* sparse) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> g(0.5, 2.0);
  const auto add = [&](num::Index r, num::Index c, double v) {
    if (dense != nullptr) (*dense)(r, c) += v;
    if (sparse != nullptr) sparse->add(r, c, v);
  };
  for (int i = 0; i < n; ++i) {
    add(i, i, 2.5 + g(rng));
    if (i > 0) add(i, i - 1, -1.0);
    if (i + 1 < n) add(i, i + 1, -1.0);
  }
  // Branch-like rows every 32 unknowns.
  for (int i = 0; i + 32 < n; i += 32) {
    add(i, i + 32, 1.0);
    add(i + 32, i, 1.0);
  }
}

void BM_DenseLu(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  num::Matrix a(n, n);
  build_ladder(n, &a, nullptr);
  num::Vector b(n, 1.0);
  for (auto _ : state) {
    num::LuFactorization lu;
    benchmark::DoNotOptimize(lu.factor(a));
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLu)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_SparseLu(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  num::TripletAccumulator a(n);
  build_ladder(n, nullptr, &a);
  num::Vector b(n, 1.0);
  for (auto _ : state) {
    num::SparseLu lu;
    benchmark::DoNotOptimize(lu.factor(a));
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseLu)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_WordSearchTransient(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    tcam::WordOptions opts;
    opts.n_bits = n;
    tcam::SearchConfig cfg;
    for (int i = 0; i < n; ++i) {
      cfg.stored.push_back((i % 2) != 0 ? arch::Ternary::kOne
                                        : arch::Ternary::kZero);
      cfg.query.push_back((i % 2) != 0 ? 1 : 0);
    }
    auto m = tcam::measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_WordSearchTransient)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
