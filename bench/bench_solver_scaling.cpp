// Simulator-kernel scaling study (no paper counterpart): dense vs sparse LU
// factorization cost on MNA-structured matrices, the KLU-style refactor
// speedup, and end-to-end transient throughput of the word harness.
//
// This is the evidence behind two solver policies: SolverKind::kAuto (the
// sparse Gilbert-Peierls path overtakes dense LU at a few hundred unknowns
// on the ladder-plus-branches structure TCAM netlists produce) and
// factorization reuse (the numeric-only refactor path must beat the full
// symbolic+numeric factor by a wide margin for the reuse machinery to pay).
//
// Usage:
//   bench_solver_scaling                      # google-benchmark kernels
//   bench_solver_scaling --solver-json=PATH   # machine-readable report
//   bench_solver_scaling --solver-json=PATH --no-transient  # kernels only
//
// The JSON mode feeds BENCH_solver.json consumed by CI's solver perf smoke
// guard (tools/check_solver_speedup.py).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "numeric/lu.hpp"
#include "numeric/newton.hpp"
#include "numeric/sparse_lu.hpp"
#include "spice/transient.hpp"
#include "tcam/sim_harness.hpp"

using namespace fetcam;

namespace {

// MNA-like ladder matrix: tridiagonal conductances plus a few long-range
// branch rows, the structure of a match-line netlist.
void build_ladder(int n, num::Matrix* dense, num::TripletAccumulator* sparse) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> g(0.5, 2.0);
  const auto add = [&](num::Index r, num::Index c, double v) {
    if (dense != nullptr) (*dense)(r, c) += v;
    if (sparse != nullptr) sparse->add(r, c, v);
  };
  for (int i = 0; i < n; ++i) {
    add(i, i, 2.5 + g(rng));
    if (i > 0) add(i, i - 1, -1.0);
    if (i + 1 < n) add(i, i + 1, -1.0);
  }
  // Branch-like rows every 32 unknowns.
  for (int i = 0; i + 32 < n; i += 32) {
    add(i, i + 32, 1.0);
    add(i + 32, i, 1.0);
  }
}

void BM_DenseLu(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  num::Matrix a(n, n);
  build_ladder(n, &a, nullptr);
  const num::Vector b(n, 1.0);
  for (auto _ : state) {
    num::LuFactorization lu;
    benchmark::DoNotOptimize(lu.factor(a));
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLu)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_SparseLu(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  num::TripletAccumulator a(n);
  build_ladder(n, nullptr, &a);
  const num::Vector b(n, 1.0);
  for (auto _ : state) {
    num::SparseLu lu;
    benchmark::DoNotOptimize(lu.factor(a));
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseLu)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_SparseLuRefactor(benchmark::State& state) {
  // Steady-state cost of the reuse path: factor once, then numeric-only
  // refactors of the same pattern (what every transient step pays).
  const int n = static_cast<int>(state.range(0));
  num::TripletAccumulator a(n);
  build_ladder(n, nullptr, &a);
  num::StampedCsc m;
  m.build(a);
  num::SparseLu lu;
  if (!lu.factor(m)) state.SkipWithError("factor failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.factor(m));
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_WordSearchTransient(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    tcam::WordOptions opts;
    opts.n_bits = n;
    tcam::SearchConfig cfg;
    for (int i = 0; i < n; ++i) {
      cfg.stored.push_back((i % 2) != 0 ? arch::Ternary::kOne
                                        : arch::Ternary::kZero);
      cfg.query.push_back((i % 2) != 0 ? 1 : 0);
    }
    auto m = tcam::measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_WordSearchTransient)->Arg(8)->Arg(32)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Machine-readable report (--solver-json=PATH)
// ---------------------------------------------------------------------------

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median of `reps` timings of `fn` (microseconds).
template <typename Fn>
double median_us(int reps, Fn&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_us();
    fn();
    t.push_back(now_us() - t0);
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

struct KernelRow {
  int n = 0;
  std::size_t nnz = 0;
  double full_factor_us = 0.0;
  double refactor_us = 0.0;
  double solve_us = 0.0;
  double triplet_build_us = 0.0;
  double replay_fill_us = 0.0;
};

KernelRow measure_kernels(int n) {
  KernelRow row;
  row.n = n;
  num::TripletAccumulator a(n);
  build_ladder(n, nullptr, &a);
  num::StampedCsc m;
  m.build(a);
  row.nnz = m.nonzeros();

  const int reps = n >= 1024 ? 25 : 100;

  // Full symbolic + numeric factor (reuse disabled).
  {
    num::SparseLuOptions opts;
    opts.reuse_symbolic = false;
    num::SparseLu lu;
    row.full_factor_us = median_us(reps, [&] {
      if (!lu.factor(m, opts)) std::abort();
    });
  }
  // Numeric-only refactor of the cached pattern.
  num::SparseLu lu;
  if (!lu.factor(m)) std::abort();
  row.refactor_us = median_us(reps, [&] {
    if (!lu.factor(m)) std::abort();
  });
  // Triangular solve (in place, allocation-free).
  num::Vector b(n, 1.0);
  row.solve_us = median_us(reps, [&] { lu.solve(b); });

  // Assembly: fresh triplet -> CSC build vs stamp-slot replay.
  row.triplet_build_us = median_us(reps, [&] { m.build(a); });
  row.replay_fill_us = median_us(reps, [&] {
    m.begin_fill();
    const auto& rows = a.rows();
    const auto& cols = a.cols();
    const auto& vals = a.vals();
    for (std::size_t k = 0; k < vals.size(); ++k) {
      if (!m.add(rows[k], cols[k], vals[k])) std::abort();
    }
    if (!m.end_fill()) std::abort();
  });
  return row;
}

struct NewtonPathRow {
  int n_bits = 0;
  num::Index system_size = 0;
  std::size_t stamps = 0;
  double scratch_us = 0.0;
  double steady_us = 0.0;
};

/// Per-iteration Newton SOLVER path on the real word-slice Jacobian at its
/// converged operating point, device model evaluation excluded (this PR does
/// not change it).  The scratch arm re-does what every iteration used to pay:
/// triplet accumulation, dedup CSC build, full symbolic + numeric factor.
/// The steady arm is the reuse path: stamp-slot replay into the cached
/// pattern plus a numeric-only refactor.  Both arms deliver the identical
/// stamp stream and solve the identical system.
NewtonPathRow measure_newton_path(int n_bits) {
  NewtonPathRow row;
  row.n_bits = n_bits;
  tcam::WordOptions opts;
  opts.n_bits = n_bits;
  tcam::SearchConfig cfg;
  for (int i = 0; i < n_bits; ++i) {
    cfg.stored.push_back((i % 2) != 0 ? arch::Ternary::kOne
                                      : arch::Ternary::kZero);
    cfg.query.push_back((i % 2) != 0 ? 1 : 0);
  }
  auto h = tcam::make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
  h->build_search(cfg);
  spice::OpOptions oopts;
  oopts.solver = spice::SolverKind::kSparse;
  const auto op = spice::solve_op(h->circuit(), oopts);
  if (!op.converged) {
    std::cerr << "OP failed for newton-path measurement\n";
    std::abort();
  }
  const num::Index n = h->circuit().system_size();
  row.system_size = n;

  // Capture the stamp stream once (real device stamps at the OP solution).
  const spice::EvalContext ctx;
  num::TripletAccumulator a(n);
  num::Vector residual(n, 0.0);
  {
    num::TripletSink sink(a);
    spice::assemble_system(h->circuit(), ctx, op.x, sink, residual);
  }
  row.stamps = a.entries();
  const auto& rs = a.rows();
  const auto& cs = a.cols();
  const auto& vs = a.vals();

  const int reps = 200;
  num::Vector rhs(n, 0.0);

  // Scratch arm: what an iteration cost before reuse.
  num::SparseLuOptions off;
  off.reuse_symbolic = false;
  num::TripletAccumulator a2(n);
  num::SparseLu lu_off;
  row.scratch_us = median_us(reps, [&] {
    a2.reset(n);
    for (std::size_t k = 0; k < vs.size(); ++k) a2.add(rs[k], cs[k], vs[k]);
    if (!lu_off.factor(a2, off)) std::abort();
    rhs = residual;
    lu_off.solve(rhs);
  });

  // Steady arm: stamp-slot replay + numeric-only refactor.
  num::StampedCsc m;
  m.build(a);
  num::SparseLu lu_on;
  if (!lu_on.factor(m)) std::abort();
  row.steady_us = median_us(reps, [&] {
    m.begin_fill();
    for (std::size_t k = 0; k < vs.size(); ++k) {
      if (!m.add(rs[k], cs[k], vs[k])) std::abort();
    }
    if (!m.end_fill()) std::abort();
    if (!lu_on.factor(m)) std::abort();
    rhs = residual;
    lu_on.solve(rhs);
  });
  return row;
}

struct TransientAb {
  int n_bits = 0;
  num::Index system_size = 0;
  double reuse_on_s = 0.0;
  double reuse_off_s = 0.0;
  double hit_rate = 0.0;
  std::uint64_t full_factors = 0;
  std::uint64_t refactors = 0;
  std::uint64_t fallbacks = 0;
};

/// End-to-end A/B: one 1.5T1DG match-line slice searched with the sparse
/// solver, reuse on vs off.  `n_bits = 256` is the paper-scale word slice.
TransientAb measure_transient_ab(int n_bits) {
  TransientAb ab;
  ab.n_bits = n_bits;
  const auto run = [&](bool reuse, num::SparseLu::Stats* stats) {
    tcam::WordOptions opts;
    opts.n_bits = n_bits;
    tcam::SearchConfig cfg;
    for (int i = 0; i < n_bits; ++i) {
      cfg.stored.push_back((i % 2) != 0 ? arch::Ternary::kOne
                                        : arch::Ternary::kZero);
      cfg.query.push_back((i % 2) != 0 ? 1 : 0);
    }
    auto h = tcam::make_word_harness(arch::TcamDesign::k1p5DgFe, opts);
    h->build_search(cfg);
    h->circuit().finalize();
    ab.system_size = h->circuit().system_size();
    num::SparseNewtonWorkspace ws;
    spice::TransientOptions topts;
    topts.t_stop = h->t_stop();
    topts.dt = h->suggested_dt();
    topts.solver = spice::SolverKind::kSparse;
    topts.op.solver = spice::SolverKind::kSparse;
    topts.reuse_factorization = reuse;
    topts.workspace = &ws;
    const double t0 = now_us();
    const auto res = spice::run_transient(h->circuit(), topts);
    const double wall = (now_us() - t0) * 1e-6;
    if (!res.ok) {
      std::cerr << "transient failed: " << res.error << "\n";
      std::abort();
    }
    if (stats != nullptr) *stats = ws.lu.stats();
    return wall;
  };
  num::SparseLu::Stats stats;
  ab.reuse_on_s = run(true, &stats);
  ab.reuse_off_s = run(false, nullptr);
  ab.full_factors = stats.full_factors;
  ab.refactors = stats.refactors;
  ab.fallbacks = stats.fallbacks;
  const double total =
      static_cast<double>(stats.full_factors + stats.refactors);
  ab.hit_rate = total > 0.0 ? static_cast<double>(stats.refactors) / total
                            : 0.0;
  return ab;
}

int emit_solver_json(const std::string& path, bool with_transient) {
  std::ostringstream os;
  os << "{\n  \"kernels\": [\n";
  const int sizes[] = {64, 128, 256, 512, 1024, 2048};
  bool first = true;
  for (const int n : sizes) {
    const KernelRow r = measure_kernels(n);
    os << (first ? "" : ",\n");
    first = false;
    os << "    {\"n\": " << r.n << ", \"nnz\": " << r.nnz
       << ", \"full_factor_us\": " << r.full_factor_us
       << ", \"refactor_us\": " << r.refactor_us
       << ", \"refactor_speedup\": "
       << (r.refactor_us > 0.0 ? r.full_factor_us / r.refactor_us : 0.0)
       << ", \"solve_us\": " << r.solve_us
       << ", \"triplet_build_us\": " << r.triplet_build_us
       << ", \"replay_fill_us\": " << r.replay_fill_us << "}";
    std::cerr << "kernel n=" << r.n << " full=" << r.full_factor_us
              << "us refactor=" << r.refactor_us << "us solve=" << r.solve_us
              << "us\n";
  }
  os << "\n  ],\n  \"newton_path\": [\n";
  first = true;
  for (const int bits : {64, 256}) {
    const NewtonPathRow np = measure_newton_path(bits);
    os << (first ? "" : ",\n");
    first = false;
    os << "    {\"n_bits\": " << np.n_bits
       << ", \"system_size\": " << np.system_size
       << ", \"stamps\": " << np.stamps
       << ", \"scratch_us\": " << np.scratch_us
       << ", \"steady_us\": " << np.steady_us << ", \"speedup\": "
       << (np.steady_us > 0.0 ? np.scratch_us / np.steady_us : 0.0) << "}";
    std::cerr << "newton_path bits=" << np.n_bits << " n=" << np.system_size
              << " scratch=" << np.scratch_us << "us steady=" << np.steady_us
              << "us\n";
  }
  os << "\n  ],\n";
  if (with_transient) {
    // 256 bits is the paper-scale match-line slice (acceptance target);
    // 64 keeps a fast cross-check point.
    os << "  \"transient\": [\n";
    first = true;
    for (const int bits : {64, 256}) {
      const TransientAb ab = measure_transient_ab(bits);
      os << (first ? "" : ",\n");
      first = false;
      os << "    {\"n_bits\": " << ab.n_bits
         << ", \"system_size\": " << ab.system_size
         << ", \"reuse_on_s\": " << ab.reuse_on_s
         << ", \"reuse_off_s\": " << ab.reuse_off_s << ", \"speedup\": "
         << (ab.reuse_on_s > 0.0 ? ab.reuse_off_s / ab.reuse_on_s : 0.0)
         << ", \"refactor_hit_rate\": " << ab.hit_rate
         << ", \"full_factors\": " << ab.full_factors
         << ", \"refactors\": " << ab.refactors
         << ", \"fallbacks\": " << ab.fallbacks << "}";
      std::cerr << "transient bits=" << ab.n_bits << " on=" << ab.reuse_on_s
                << "s off=" << ab.reuse_off_s
                << "s hit_rate=" << ab.hit_rate << "\n";
    }
    os << "\n  ],\n";
  }
  os << "  \"peak_rss_mb\": " << peak_rss_mb() << "\n}\n";

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool with_transient = true;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--solver-json=", 14) == 0) {
      json_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--no-transient") == 0) {
      with_transient = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return emit_solver_json(json_path, with_transient);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
