// Ablation studies beyond the paper's headline tables:
//
//  1. Monte-Carlo variability of the 1.5T1Fe divider (the reliability
//     concern the paper's device references flag for multi-level DG
//     storage): per-corner sense margins and cell yield vs sigma.
//  2. Accumulated read disturb: SG FG-read drift vs read voltage, against
//     the disturb-free DG BG-read — the paper's core motivation for the
//     double-gate structure, quantified.
//  3. Sensitivity of the divider margins to the design knobs DESIGN.md
//     calls out (TN length, TML threshold, V_b), via the in-situ Eq. 1
//     characterization.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/calibration.hpp"
#include "eval/disturb.hpp"
#include "eval/half_select.hpp"
#include "eval/report.hpp"
#include "eval/trim.hpp"
#include "eval/variability.hpp"
#include "util/parallel.hpp"

using namespace fetcam;

namespace {

void print_variability() {
  std::printf("-- 1. Monte-Carlo divider yield (200 samples/point, %d "
              "thread(s)) --\n",
              util::thread_count());
  eval::TextTable t({"flavor", "sigma scale", "open-loop yield",
                     "trimmed yield", "worst margin (open)"});
  // Sweep the flavor x sigma grid as a parallel map (the nested analyses
  // run inline on the owning worker); each slot renders its own row, so
  // the table order is fixed regardless of schedule.
  struct GridPoint {
    tcam::Flavor flavor;
    double scale;
  };
  std::vector<GridPoint> grid;
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    for (const double scale : {0.5, 1.0, 2.0, 3.0}) {
      grid.push_back({flavor, scale});
    }
  }
  const auto rows = util::parallel_map<std::vector<std::string>>(
      grid.size(), [&](std::size_t k) {
        const auto [flavor, scale] = grid[k];
        eval::VariabilityParams p;
        p.sigma_fefet_vth *= scale;
        p.sigma_ps_rel *= scale;
        p.sigma_mos_vth *= scale;
        p.sigma_vc_rel *= scale;
        const auto rep = eval::analyze_variability(flavor, p);
        const auto trimmed = eval::analyze_variability_trimmed(flavor, p);
        double worst = 1e9;
        for (const auto& c : rep.corners) {
          worst = std::min(worst, c.worst_margin);
        }
        return std::vector<std::string>{
            flavor == tcam::Flavor::kSg ? "1.5T1SG-Fe" : "1.5T1DG-Fe",
            eval::format_eng(scale, "x"),
            eval::format_eng(100.0 * rep.cell_yield, "%"),
            eval::format_eng(100.0 * trimmed.cell_yield, "%"),
            eval::format_eng(worst * 1e3, "mV")};
      });
  for (const auto& row : rows) t.add_row(row);
  std::printf("%s", t.str().c_str());
  std::printf(
      "(nominal sigma: FeFET Vth 30 mV, Ps 5%%, coercive V 3%%, MOSFET Vth\n"
      " 20 mV; 'trimmed' = window-relative program-and-verify X placement —\n"
      " the write-path Vc spread is the dominant open-loop yield killer)\n");
}

void print_disturb() {
  std::printf("\n-- 2. Accumulated read disturb (100k read cycles) --\n");
  const auto res = eval::read_disturb_comparison();
  eval::TextTable t({"read path", "V_read", "V_read/Vc", "|dP|/Ps",
                     "Vth drift"});
  for (const auto& pt : res.sg_fg_read) {
    t.add_row({"SG FG read", eval::format_eng(pt.v_read, "V"),
               eval::format_eng(pt.v_read / 3.2, ""),
               eval::format_eng(pt.p_drift_norm, ""),
               eval::format_eng(pt.vth_drift * 1e3, "mV")});
  }
  t.add_row({"DG BG read", eval::format_eng(res.dg_bg_read.v_read, "V"),
             "n/a (FG quiet)",
             eval::format_eng(res.dg_bg_read.p_drift_norm, ""),
             eval::format_eng(res.dg_bg_read.vth_drift * 1e3, "mV")});
  std::printf("%s", t.str().c_str());
  std::printf("(the separated write/read paths make the DG read disturb-free"
              " at ANY select voltage — paper Sec. II-A)\n");
}

void print_half_select() {
  std::printf("\n-- 4. Half-select disturb: row-selective writes --\n");
  std::printf("(the paper's column-wise write scheme has no row gating; a\n"
              " practical array needs one of these inhibit schemes)\n");
  eval::TextTable t({"flavor", "scheme", "v_FE inhibited",
                     "dVth @1k writes", "writes to 100 mV drift"});
  for (const bool dg : {true, false}) {
    for (const auto& pt : eval::half_select_study(dg)) {
      t.add_row({dg ? "DG" : "SG",
                 eval::inhibit_scheme_name(pt.scheme),
                 eval::format_eng(pt.v_fe_program, "V"),
                 eval::format_eng(pt.vth_drift_1k * 1e3, "mV"),
                 pt.survives_budget ? ">1e6 (survives)"
                                    : eval::format_eng(
                                          static_cast<double>(
                                              pt.writes_to_fail),
                                          "")});
    }
  }
  std::printf("%s", t.str().c_str());
}

void print_sensitivity() {
  std::printf("\n-- 3. In-situ divider operating points (Eq. 1) --\n");
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    const auto r = eval::extract_eq1_resistances(flavor);
    const double v_on = 0.8 * r.r_n / (r.r_on + r.r_n);
    const double v_m0 = 0.8 * r.r_n / (r.r_m0 + r.r_n);
    const double v_m1 = 0.8 * r.r_m1 / (r.r_m1 + r.r_p);
    std::printf("  1.5T1%s-Fe: V(slb) miss=%.0f mV / X,q0=%.0f mV / "
                "X,q1=%.0f mV around TML Vth=%.0f mV -> window %s\n",
                flavor == tcam::Flavor::kSg ? "SG" : "DG", v_on * 1e3,
                v_m0 * 1e3, v_m1 * 1e3, r.tml_vth * 1e3,
                r.functional() ? "OK" : "VIOLATED");
  }
}

void BM_Variability200(benchmark::State& state) {
  for (auto _ : state) {
    auto rep = eval::analyze_variability(tcam::Flavor::kDg, {});
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_Variability200)->Unit(benchmark::kMillisecond)->Iterations(1);

// Thread-scaling study for EXPERIMENTS.md: the same 2000-sample analysis
// at 1 / 2 / 4 / 8 pool threads.  Results are bit-identical across args
// (the determinism golden test asserts this); only wall clock changes.
void BM_VariabilityScaling(benchmark::State& state) {
  util::set_thread_count(static_cast<int>(state.range(0)));
  eval::VariabilityParams p;
  p.samples = 2000;
  for (auto _ : state) {
    auto rep = eval::analyze_variability(tcam::Flavor::kDg, p);
    benchmark::DoNotOptimize(rep);
  }
  util::set_thread_count(0);
}
BENCHMARK(BM_VariabilityScaling)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_DisturbSweep(benchmark::State& state) {
  for (auto _ : state) {
    auto res = eval::read_disturb_comparison();
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_DisturbSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablations: variability, read disturb, divider margins "
              "===\n\n");
  print_variability();
  print_disturb();
  print_half_select();
  print_sensitivity();
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
