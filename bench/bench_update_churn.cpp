// Rule-churn update cost study (no paper counterpart): the delta planner
// (src/compiler) against the naive erase-everything/rewrite-everything
// controller, and endurance-aware placement against capacity-only
// placement under hot-rule churn.
//
// Usage:
//   bench_update_churn                      # google-benchmark kernels
//   bench_update_churn --update-json=PATH   # machine-readable report
//
// The JSON mode feeds BENCH_update.json consumed by CI's update-cost guard
// (tools/check_update_writes.py).  Gates:
//   * planned delta write phases <= 50 % of the naive full-rewrite
//     baseline over the churn run; and
//   * the endurance-aware run's wear spread (max - min per-mat writes)
//     and hottest-row count no worse than capacity-only placement's.
//
// Both churn arms run the SAME rule trace with fixed seeds, so every
// reported count is deterministic; only the search latency figures are
// machine-dependent (and are reported, not gated).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/applier.hpp"
#include "compiler/compile.hpp"
#include "compiler/planner.hpp"
#include "compiler/rules.hpp"
#include "engine/engine.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/parallel.hpp"

using namespace fetcam;

namespace {

engine::TraceSpec churn_trace_spec() {
  engine::TraceSpec spec;
  spec.kind = engine::TraceKind::kIpPrefix;
  spec.cols = 32;
  spec.rules = 96;
  spec.queries = 512;
  spec.match_rate = 0.4;
  spec.seed = 11;
  return spec;
}

engine::TableConfig churn_table_config() {
  engine::TableConfig cfg;
  cfg.design = arch::TcamDesign::k1p5DgFe;
  cfg.mats = 4;
  cfg.rows_per_mat = 64;
  cfg.cols = 32;
  cfg.subarrays_per_mat = 4;
  return cfg;
}

engine::ChurnSpec churn_spec() {
  engine::ChurnSpec churn;
  churn.seed = 11;
  churn.hot_fraction = 0.25;
  churn.hot_modify_rate = 0.9;
  churn.modify_rate = 0.1;
  churn.add_remove_rate = 0.05;
  churn.priority_jitter_rate = 0.05;
  return churn;
}

constexpr int kChurnSteps = 24;

// ---------------------------------------------------------------------------
// google-benchmark kernels
// ---------------------------------------------------------------------------

void BM_ExpandRangeWorstCase(benchmark::State& state) {
  // The classic [1, 2^w - 2] range: 2(w - 1) prefixes at w = 16.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiler::expand_range(1, (1ull << 16) - 2, 16));
  }
}
BENCHMARK(BM_ExpandRangeWorstCase);

void BM_CompileRuleSet(benchmark::State& state) {
  const auto trace = engine::generate_trace(churn_trace_spec());
  const auto rules = compiler::rule_set_from_trace(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile_rules(rules));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rules.rules.size()));
}
BENCHMARK(BM_CompileRuleSet)->Unit(benchmark::kMicrosecond);

void BM_PlanChurnDelta(benchmark::State& state) {
  // plan_update is read-only on the table, so one installed state can be
  // re-planned every iteration.
  const auto spec = churn_trace_spec();
  const auto trace = engine::generate_trace(spec);
  engine::TcamTable table(churn_table_config());
  compiler::Installation installed;
  const auto setA =
      compiler::compile_rules(compiler::rule_set_from_rules(spec.cols,
                                                            trace.rules));
  {
    engine::SearchEngine eng(table);
    installed = compiler::apply_plan(
                    eng, compiler::plan_update({}, setA, table), setA)
                    .installed;
  }
  const auto rules_b = engine::churn_rules(trace.rules, spec.kind, spec.cols,
                                           churn_spec(), 1);
  const auto setB =
      compiler::compile_rules(compiler::rule_set_from_rules(spec.cols,
                                                            rules_b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::plan_update(installed, setB, table));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(setB.entries.size()));
}
BENCHMARK(BM_PlanChurnDelta)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Machine-readable report (--update-json=PATH)
// ---------------------------------------------------------------------------

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnReport {
  int steps = 0;
  long long delta_write_phases = 0;
  long long delta_switched_cells = 0;
  double delta_energy_j = 0.0;
  long long naive_write_phases = 0;
  double naive_energy_j = 0.0;
  long long keeps = 0;
  long long priority_flips = 0;
  long long rewrites = 0;
  long long inserts = 0;
  long long erases = 0;
  long long relocations = 0;
  std::vector<std::uint64_t> mat_writes;
  std::uint64_t mat_spread = 0;
  std::uint64_t max_row_writes = 0;
  double search_p50_us = 0.0;  ///< median 64-query batch during churn
};

/// Drive kChurnSteps churn steps through compile -> plan -> apply with the
/// given placement policy, interleaving timed search sweeps.
ChurnReport run_churn(bool endurance_aware) {
  const auto spec = churn_trace_spec();
  const auto trace = engine::generate_trace(spec);
  engine::TcamTable table(churn_table_config());

  compiler::PlannerOptions popts;
  popts.placement.endurance_aware = endurance_aware;
  popts.placement.rewrite_spread_headroom = 6;

  ChurnReport rep;
  rep.steps = kChurnSteps;
  std::vector<double> batch_us;
  {
    engine::SearchEngine eng(table);
    compiler::Installation installed;
    std::vector<engine::TraceRule> rules = trace.rules;
    for (int step = 0; step <= kChurnSteps; ++step) {
      if (step > 0) {
        rules = engine::churn_rules(rules, spec.kind, spec.cols, churn_spec(),
                                    step);
      }
      const auto compiled =
          compiler::compile_rules(compiler::rule_set_from_rules(spec.cols,
                                                                rules));
      const auto plan =
          compiler::plan_update(installed, compiled, table, popts);
      installed = compiler::apply_plan(eng, plan, compiled).installed;
      if (step > 0) {  // step 0 is the install, not churn
        rep.delta_write_phases += plan.cost.write_phases;
        rep.delta_switched_cells += plan.cost.switched_cells;
        rep.delta_energy_j += plan.cost.energy_j;
        rep.naive_write_phases += plan.cost.naive_write_phases;
        rep.naive_energy_j += plan.cost.naive_energy_j;
        rep.keeps += plan.keeps;
        rep.priority_flips += plan.priority_flips;
        rep.rewrites += plan.rewrites;
        rep.inserts += plan.inserts;
        rep.erases += plan.erases;
        rep.relocations += plan.relocations;
      }

      // Timed search sweep between updates (latency under churn load).
      for (std::size_t q = 0; q + 64 <= trace.queries.size(); q += 64) {
        std::vector<engine::Request> batch;
        batch.reserve(64);
        for (std::size_t k = q; k < q + 64; ++k) {
          batch.push_back(engine::make_search(trace.queries[k]));
        }
        const double t0 = now_us();
        benchmark::DoNotOptimize(eng.execute(std::move(batch)));
        batch_us.push_back(now_us() - t0);
      }
    }
    eng.drain();
  }

  std::uint64_t max_mat = 0;
  std::uint64_t min_mat = ~std::uint64_t{0};
  for (int m = 0; m < table.mats(); ++m) {
    const auto& e = table.endurance(m);
    rep.mat_writes.push_back(e.total_writes());
    max_mat = std::max(max_mat, e.total_writes());
    min_mat = std::min(min_mat, e.total_writes());
    rep.max_row_writes = std::max(rep.max_row_writes, e.max_row_writes());
  }
  rep.mat_spread = max_mat - min_mat;
  std::sort(batch_us.begin(), batch_us.end());
  rep.search_p50_us = batch_us.empty() ? 0.0 : batch_us[batch_us.size() / 2];
  return rep;
}

void json_arm(std::ostream& os, const char* name, const ChurnReport& r,
              bool last) {
  os << "  \"" << name << "\": {\n"
     << "    \"steps\": " << r.steps << ",\n"
     << "    \"delta_write_phases\": " << r.delta_write_phases << ",\n"
     << "    \"delta_switched_cells\": " << r.delta_switched_cells << ",\n"
     << "    \"delta_energy_j\": " << r.delta_energy_j << ",\n"
     << "    \"naive_write_phases\": " << r.naive_write_phases << ",\n"
     << "    \"naive_energy_j\": " << r.naive_energy_j << ",\n"
     << "    \"keeps\": " << r.keeps << ",\n"
     << "    \"priority_flips\": " << r.priority_flips << ",\n"
     << "    \"rewrites\": " << r.rewrites << ",\n"
     << "    \"inserts\": " << r.inserts << ",\n"
     << "    \"erases\": " << r.erases << ",\n"
     << "    \"relocations\": " << r.relocations << ",\n"
     << "    \"mat_writes\": [";
  for (std::size_t m = 0; m < r.mat_writes.size(); ++m) {
    os << (m != 0 ? ", " : "") << r.mat_writes[m];
  }
  os << "],\n"
     << "    \"mat_spread\": " << r.mat_spread << ",\n"
     << "    \"max_row_writes\": " << r.max_row_writes << ",\n"
     << "    \"search_p50_us\": " << r.search_p50_us << "\n"
     << "  }" << (last ? "\n" : ",\n");
}

int emit_update_json(const std::string& path) {
  util::set_thread_count(0);
  const ChurnReport aware = run_churn(true);
  const ChurnReport naive_place = run_churn(false);
  std::cerr << "aware: delta=" << aware.delta_write_phases << " phases vs "
            << aware.naive_write_phases << " naive, mat_spread="
            << aware.mat_spread << ", max_row=" << aware.max_row_writes
            << "\n";
  std::cerr << "capacity-only: delta=" << naive_place.delta_write_phases
            << " phases, mat_spread=" << naive_place.mat_spread
            << ", max_row=" << naive_place.max_row_writes << "\n";

  std::ostringstream os;
  os << "{\n";
  json_arm(os, "endurance_aware", aware, false);
  json_arm(os, "capacity_only", naive_place, true);
  os << "}\n";

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--update-json=", 14) == 0) {
      json_path = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return emit_update_json(json_path);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
