// Reproduces paper Table IV: the figure-of-merit comparison of the 16T CMOS
// baseline and the four FeFET TCAM designs at 64x64 — write voltage, FE
// thickness, cell area, write energy/cell, worst-case search latency
// (1-step and 2-step for the 1.5T1Fe designs), and search energy/cell
// (1-step / 2-step / 90 %-step-1-miss average).
//
// Expected shapes (see EXPERIMENTS.md for the measured-vs-paper table):
//  * write energy ratios ~ 1 : 2 : 2 : 4 for 2SG : 2DG : 1.5T1SG : 1.5T1DG;
//  * cell areas match Table IV by construction of the layout model;
//  * latency ordering 16T < 1.5T1SG < {2SG, 1.5T1DG} < 2DG;
//  * early termination cuts 1.5T1Fe search energy ~3x vs the full 2-step.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/calibration.hpp"
#include "eval/experiments.hpp"

using namespace fetcam;

namespace {

void print_divider_margins() {
  std::printf("\n-- Eq. 1 operating-point resistances (in-situ) --\n");
  for (const auto flavor : {tcam::Flavor::kSg, tcam::Flavor::kDg}) {
    const auto r = eval::extract_eq1_resistances(flavor);
    std::printf("  1.5T1%s-Fe: R_ON=%.3g R_N=%.3g R_M(q0)=%.3g R_M(q1)=%.3g "
                "R_P=%.3g R_OFF=%.3g Ohm -> %s\n",
                flavor == tcam::Flavor::kSg ? "SG" : "DG", r.r_on, r.r_n,
                r.r_m0, r.r_m1, r.r_p, r.r_off,
                r.functional() ? "Eq.1 window OK" : "Eq.1 window VIOLATED");
  }
}

void BM_Table4SingleDesign(benchmark::State& state) {
  for (auto _ : state) {
    auto fom = eval::evaluate_fom(arch::TcamDesign::k1p5DgFe);
    benchmark::DoNotOptimize(fom);
  }
}
BENCHMARK(BM_Table4SingleDesign)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table IV: FoM comparison (64-bit words, 64-row array) "
              "===\n\n");
  const auto foms = eval::table4();
  for (const auto& f : foms) {
    if (!f.ok) std::printf("%s FAILED: %s\n", f.name.c_str(), f.error.c_str());
  }
  std::printf("%s", eval::render_table4(foms).c_str());
  print_divider_margins();
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
