// Reproduces paper Fig. 1(c)/(d): SG-FeFET FG-read and DG-FeFET BG-read
// transfer characteristics after full +/-Vw writes, with the extracted
// memory windows and ON/OFF ratios.
//
// Expected shapes: MW(SG, FG) ~ 1.8 V at +/-4 V writes; MW(DG, BG) ~ 2.7 V
// at +/-2 V writes with a visibly degraded subthreshold slope and ~1e4
// ON/OFF at V_SeL = 2 V.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/experiments.hpp"

using namespace fetcam;

namespace {

void print_curve(const eval::IvCurve& c) {
  std::printf("\n-- %s --\n", c.label.c_str());
  std::printf("   MW (constant-current, 100 nA): %.2f V\n", c.memory_window);
  std::printf("   ON/OFF at read voltage:        %.3g\n", c.on_off_ratio);
  std::printf("   %-8s  %-12s  %-12s\n", "Vg (V)", "Id LVT (A)", "Id HVT (A)");
  for (std::size_t k = 0; k < c.vg.size(); k += 10) {
    std::printf("   %-8.2f  %-12.4g  %-12.4g\n", c.vg[k], c.id_lvt[k],
                c.id_hvt[k]);
  }
}

void BM_Fig1SgFgRead(benchmark::State& state) {
  for (auto _ : state) {
    auto c = eval::fig1_sg_fg_read();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Fig1SgFgRead)->Unit(benchmark::kMillisecond);

void BM_Fig1DgBgRead(benchmark::State& state) {
  for (auto _ : state) {
    auto c = eval::fig1_dg_bg_read();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Fig1DgBgRead)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 1(c)/(d): FeFET transfer characteristics ===\n");
  std::printf("paper: MW(SG,FG) = 1.8 V @ +/-4 V;  MW(DG,BG) = 2.7 V @ +/-2 V,"
              " ON/OFF ~ 1e4\n");
  print_curve(eval::fig1_sg_fg_read());
  print_curve(eval::fig1_dg_bg_read());
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
