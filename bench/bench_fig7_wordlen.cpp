// Reproduces paper Fig. 7: word-length impact on (a) search latency and
// (b) average search energy per cell for the four FeFET TCAM designs.
//
// Expected shapes (paper Sec. V-C):
//  * latency grows with word length for all designs, with the 1.5T1Fe
//    designs growing more slowly than the 2FeFET designs (lighter ML);
//  * per-cell search energy FALLS with word length for the 2FeFET designs
//    (SA/precharge amortization) but RISES for the 1.5T1Fe designs (the
//    voltage-divider current integrates over a latency-sized window that
//    lengthens with the word).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "util/parallel.hpp"

using namespace fetcam;

namespace {

const std::vector<int> kLengths{16, 32, 64, 128};

void run_and_print() {
  const std::vector<arch::TcamDesign> designs = {
      arch::TcamDesign::k2SgFefet, arch::TcamDesign::k2DgFefet,
      arch::TcamDesign::k1p5SgFe, arch::TcamDesign::k1p5DgFe};

  // Parallel over designs (the inner per-length sweep then runs inline on
  // whichever worker owns the design); slot di keeps the output ordered.
  std::printf("sweeping %d designs x %d lengths on %d thread(s)...\n",
              static_cast<int>(designs.size()),
              static_cast<int>(kLengths.size()), util::thread_count());
  std::fflush(stdout);
  const auto data = util::parallel_map<std::vector<eval::SweepPoint>>(
      designs.size(),
      [&](std::size_t di) { return eval::fig7_sweep(designs[di], kLengths); });

  std::printf("\n-- Fig. 7(a): search latency (ps) vs word length --\n");
  {
    eval::TextTable t({"N", "2SG-FeFET", "2DG-FeFET", "1.5T1SG-Fe",
                       "1.5T1DG-Fe"});
    for (std::size_t k = 0; k < kLengths.size(); ++k) {
      std::vector<std::string> row{std::to_string(kLengths[k])};
      for (const auto& series : data) {
        row.push_back(series[k].ok
                          ? eval::format_eng(series[k].latency_full_ps, "")
                          : std::string("-"));
      }
      t.add_row(row);
    }
    std::printf("%s", t.str().c_str());
  }

  std::printf("\n-- Fig. 7(b): average search energy per cell (fJ) --\n");
  {
    eval::TextTable t({"N", "2SG-FeFET", "2DG-FeFET", "1.5T1SG-Fe",
                       "1.5T1DG-Fe"});
    for (std::size_t k = 0; k < kLengths.size(); ++k) {
      std::vector<std::string> row{std::to_string(kLengths[k])};
      for (const auto& series : data) {
        row.push_back(series[k].ok
                          ? eval::format_eng(series[k].energy_avg_fj, "")
                          : std::string("-"));
      }
      t.add_row(row);
    }
    std::printf("%s", t.str().c_str());
  }

  // CSV for plotting.
  std::FILE* f = std::fopen("bench_fig7_sweep.csv", "w");
  if (f != nullptr) {
    std::fprintf(f, "design,n_bits,latency_ps,latency_1step_ps,"
                    "energy_avg_fj,energy_1step_fj,energy_2step_fj\n");
    for (std::size_t di = 0; di < designs.size(); ++di) {
      for (const auto& p : data[di]) {
        if (!p.ok) continue;
        std::fprintf(f, "%s,%d,%.2f,%.2f,%.4f,%.4f,%.4f\n",
                     arch::design_name(designs[di]).c_str(), p.n_bits,
                     p.latency_full_ps, p.latency_1step_ps, p.energy_avg_fj,
                     p.energy_1step_fj, p.energy_2step_fj);
      }
    }
    std::fclose(f);
    std::printf("\nsweep written to bench_fig7_sweep.csv\n");
  }

  // Trend checks matching the paper's qualitative claims (Sec. V-C):
  //  * latency grows with N, more slowly for the 1.5T1Fe designs;
  //  * 2FeFET energy/cell falls with N (SA amortization);
  //  * the 1.5T1Fe divider current suppresses that amortization — its
  //    relative energy decrease from N=32 to N=max is smaller (or negative).
  const auto& sg2 = data[0];
  const auto& p15sg = data[2];
  const bool latency_grows =
      sg2.front().ok && sg2.back().ok &&
      sg2.back().latency_full_ps > sg2.front().latency_full_ps;
  const bool scales_better =
      sg2.back().latency_full_ps / sg2.front().latency_full_ps >
      p15sg.back().latency_full_ps / p15sg.front().latency_full_ps;
  const bool twofefet_energy_falls =
      sg2.front().ok && sg2.back().ok &&
      sg2.back().energy_avg_fj < sg2.front().energy_avg_fj;
  const bool amortization_suppressed =
      data[2][1].ok && data[0][1].ok &&
      (data[2].back().energy_avg_fj / data[2][1].energy_avg_fj) >
          (data[0].back().energy_avg_fj / data[0][1].energy_avg_fj);
  std::printf("\ntrend checks: latency grows with N: %s | 1.5T1Fe scales "
              "better: %s | 2FeFET E/cell falls: %s | 1.5T1Fe amortization "
              "suppressed: %s\n",
              latency_grows ? "yes" : "NO", scales_better ? "yes" : "NO",
              twofefet_energy_falls ? "yes" : "NO",
              amortization_suppressed ? "yes" : "NO");
}

void BM_Fig7OnePoint(benchmark::State& state) {
  for (auto _ : state) {
    auto pts = eval::fig7_sweep(arch::TcamDesign::k1p5SgFe, {32});
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_Fig7OnePoint)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 7: word-length design-space exploration ===\n");
  run_and_print();
  std::printf("\n=== kernel timing ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
