// Quickstart: store ternary entries in a 1.5T1DG-Fe TCAM, search it, and
// inspect the energy/latency the architecture model charges for it.
//
//   $ ./quickstart
//
// Walks the three layers of the library:
//   1. behavioral array  — functional content-addressable search;
//   2. two-step scheduler — the paper's early-terminating search control;
//   3. circuit harness    — a SPICE-level search of one stored word.
#include <cstdio>

#include "arch/behavioral_array.hpp"
#include "arch/controller.hpp"
#include "arch/search_scheduler.hpp"
#include "tcam/sim_harness.hpp"

using namespace fetcam;

int main() {
  // ---- 1. A small TCAM holding ternary rules ------------------------------
  arch::TcamArray array(/*rows=*/8, /*cols=*/8);
  array.write(0, arch::word_from_string("01010101"));
  array.write(1, arch::word_from_string("0101XXXX"));  // wildcard tail
  array.write(2, arch::word_from_string("1111XXXX"));
  array.write(3, arch::word_from_string("XXXXXXXX"));  // match-all fallback

  const auto query = arch::bits_from_string("01011100");
  std::printf("query %s matches rows:", arch::to_string(query).c_str());
  for (const int r : array.all_matches(query)) std::printf(" %d", r);
  std::printf("  (first match: row %d)\n",
              array.first_match(query).value_or(-1));

  // ---- 2. The controller facade: search + write with telemetry ------------
  arch::TcamController tcam(arch::TcamDesign::k1p5DgFe, 8, 8);
  for (int r = 0; r < 4; ++r) tcam.update(r, array.entry(r));
  const auto sched = tcam.search(query);
  std::printf("two-step search: %d/%d rows terminated after step 1, "
              "%d ran step 2, %d matched\n",
              sched.stats.step1_misses, sched.stats.rows,
              sched.stats.step2_evaluated, sched.stats.matches);
  std::printf("telemetry: %.3f fJ total energy, %lld write pulses, "
              "hottest row at %.1e of its endurance budget\n",
              tcam.energy().total_energy_j() * 1e15, tcam.write_pulses(),
              tcam.endurance().wear_fraction());

  // ---- 3. The same word at circuit level ----------------------------------
  std::printf("\ncircuit-level search of row 1 (stored 0101XXXX):\n");
  tcam::WordOptions opts;
  opts.n_bits = 8;
  tcam::SearchConfig cfg;
  cfg.stored = array.entry(1);
  cfg.query = query;
  const auto m = tcam::measure_search(arch::TcamDesign::k1p5DgFe, opts, cfg);
  if (!m.ok) {
    std::printf("  simulation failed: %s\n", m.error.c_str());
    return 1;
  }
  std::printf("  SA verdict: %s (expected %s)\n",
              m.measured_match ? "match" : "miss",
              m.expected_match ? "match" : "miss");
  std::printf("  energy/cell: %.3f fJ  (precharge %.3f, SA %.3f, "
              "signals %.3f fJ total)\n",
              m.energy_per_cell * 1e15, m.energy.precharge * 1e15,
              m.energy.sense_amp * 1e15, m.energy.signals * 1e15);
  return m.measured_match == m.expected_match ? 0 : 1;
}
