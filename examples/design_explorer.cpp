// Design-space explorer: sweep the 1.5T1Fe cell's sizing/bias knobs and
// watch the divider margins move — the device-circuit co-optimization loop
// of the paper's Sec. III-B4, exposed as a tool.
//
//   $ ./design_explorer
//
// For each knob setting it solves the static divider corners (via the
// calibration API) and reports the two margins that bound the design:
//   drive margin = V(slb, stored-'1' miss) - TML threshold   (speed)
//   hold margin  = TML threshold - V(slb, 'X' match)         (correctness)
#include <cstdio>

#include "devices/tech14.hpp"
#include "spice/op.hpp"
#include "tcam/cell_1p5t1fe.hpp"

using namespace fetcam;

namespace {

// Static divider solve (search-'0' leg) for one stored state.
double slb_for(tcam::Flavor flavor, const tcam::OnePointFiveParams& p,
               dev::FeState state) {
  const dev::FeFetParams fp = flavor == tcam::Flavor::kSg
                                  ? dev::sg_fefet_params()
                                  : dev::dg_fefet_params();
  const double vdd = 0.8;
  const double vsel = flavor == tcam::Flavor::kSg ? p.v_sel_sg : p.v_sel_dg;
  spice::Circuit ckt;
  const auto sl = ckt.node("sl");
  const auto slb = ckt.node("slb");
  const auto bl = ckt.node("bl");
  const auto sel = ckt.node("sel");
  const auto wrsl = ckt.node("wrsl");
  const auto vddp = ckt.node("vddp");
  ckt.emplace<spice::VoltageSource>("VSL", sl, spice::kGround,
                                    spice::Waveform::dc(vdd));
  ckt.emplace<spice::VoltageSource>("VWRSL", wrsl, spice::kGround,
                                    spice::Waveform::dc(vdd));
  ckt.emplace<spice::VoltageSource>("VDDP", vddp, spice::kGround,
                                    spice::Waveform::dc(vdd));
  ckt.emplace<spice::VoltageSource>(
      "VBL", bl, spice::kGround,
      spice::Waveform::dc(flavor == tcam::Flavor::kSg ? vsel : p.v_b));
  ckt.emplace<spice::VoltageSource>(
      "VSEL", sel, spice::kGround,
      spice::Waveform::dc(flavor == tcam::Flavor::kSg ? 0.0 : vsel));
  auto& fe = ckt.emplace<dev::FeFet>("FE", sl, bl, slb, sel, fp);
  fe.set_state(state, flavor == tcam::Flavor::kSg ? p.mvt_vth_sg
                                                  : p.mvt_vth_dg);
  ckt.emplace<dev::Mosfet>("TN", slb, wrsl, spice::kGround, spice::kGround,
                           dev::tech14::nfet(p.tn_w, p.tn_l));
  ckt.emplace<dev::Mosfet>("TP", slb, wrsl, vddp, vddp,
                           dev::tech14::pfet(p.tp_w, p.tp_l));
  const auto op = solve_op(ckt);
  if (!op.converged) return -1.0;
  return spice::Solution(ckt, op.x).v(slb);
}

void explore(tcam::Flavor flavor) {
  const char* name = flavor == tcam::Flavor::kSg ? "1.5T1SG-Fe" : "1.5T1DG-Fe";
  std::printf("\n== %s: TN length sweep (drive vs hold margin) ==\n", name);
  std::printf("%-8s %-10s %-10s %-12s %-12s\n", "tn_l", "slb(miss)",
              "slb(X)", "drive (mV)", "hold (mV)");
  for (const double tn_l : {8.0, 16.0, 24.0, 32.0, 48.0}) {
    tcam::OnePointFiveParams p;
    p.tn_l = tn_l;
    const double tml_vth =
        flavor == tcam::Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg;
    const double v_miss = slb_for(flavor, p, dev::FeState::kLvt);
    const double v_x = slb_for(flavor, p, dev::FeState::kMvt);
    std::printf("%-8.0f %-10.3f %-10.3f %-12.0f %-12.0f\n", tn_l, v_miss,
                v_x, (v_miss - tml_vth) * 1e3, (tml_vth - v_x) * 1e3);
  }

  std::printf("\n== %s: V_b sweep (DG bias knob; Tab. II) ==\n", name);
  std::printf("%-8s %-10s %-10s %-12s %-12s\n", "v_b", "slb(miss)", "slb(X)",
              "drive (mV)", "hold (mV)");
  for (const double vb : {0.0, 0.10, 0.15, 0.25, 0.35}) {
    tcam::OnePointFiveParams p;
    p.v_b = vb;
    const double tml_vth =
        flavor == tcam::Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg;
    const double v_miss = slb_for(flavor, p, dev::FeState::kLvt);
    const double v_x = slb_for(flavor, p, dev::FeState::kMvt);
    std::printf("%-8.2f %-10.3f %-10.3f %-12.0f %-12.0f\n", vb, v_miss, v_x,
                (v_miss - tml_vth) * 1e3, (tml_vth - v_x) * 1e3);
  }
}

}  // namespace

int main() {
  std::printf("1.5T1Fe divider design explorer\n");
  std::printf("(drive margin must stay positive for mismatch detection;\n"
              " hold margin must stay positive for X-state retention —\n"
              " the V_b rows show why the paper biases the DG BL at 0.25 V)\n");
  explore(tcam::Flavor::kDg);
  explore(tcam::Flavor::kSg);
  return 0;
}
