// Packet classifier: longest-prefix-match IP routing served by the TCAM
// engine — the classic application the paper's introduction cites, run
// through the sharded service layer instead of a single behavioral array.
//
// Routes are stored in a TcamTable with priority = 32 - prefix_length, so
// the global (priority, id) resolution returns the longest match no matter
// which mat the entry landed on.  A SearchEngine batches the packet trace,
// matches in parallel, and applies results in order; per-mat energy
// accounting then compares a 1.5T1DG-Fe implementation (early termination)
// against a 2SG-FeFET TCAM serving the identical workload.
#include <cstdio>
#include <cstdint>
#include <vector>

#include "engine/engine.hpp"
#include "engine/table.hpp"
#include "engine/workload.hpp"
#include "util/rng.hpp"

using namespace fetcam;

namespace {

struct Route {
  std::uint32_t prefix;
  int length;  // bits
  const char* next_hop;
};

arch::TernaryWord route_entry(const Route& r) {
  arch::TernaryWord w;
  for (int b = 31; b >= 0; --b) {
    if (31 - b < r.length) {
      w.push_back(((r.prefix >> b) & 1u) != 0 ? arch::Ternary::kOne
                                              : arch::Ternary::kZero);
    } else {
      w.push_back(arch::Ternary::kX);
    }
  }
  return w;
}

arch::BitWord address_query(std::uint32_t addr) {
  arch::BitWord q;
  for (int b = 31; b >= 0; --b) q.push_back((addr >> b) & 1u);
  return q;
}

std::uint32_t ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

engine::TableConfig router_config(arch::TcamDesign design) {
  engine::TableConfig cfg;
  cfg.design = design;
  cfg.mats = 2;
  cfg.rows_per_mat = 64;
  cfg.cols = 32;
  cfg.subarrays_per_mat = 2;
  return cfg;
}

}  // namespace

int main() {
  // Routing table.  Priority = 32 - prefix_length: lower priority values
  // win, so the longest prefix takes the packet regardless of insertion
  // order or which shard holds it.
  const std::vector<Route> routes = {
      {ip(10, 1, 5, 0), 24, "eth3 (lab subnet)"},
      {ip(10, 1, 0, 0), 16, "eth2 (campus)"},
      {ip(10, 0, 0, 0), 8, "eth1 (corp)"},
      {ip(192, 168, 0, 0), 16, "eth4 (private)"},
      {ip(0, 0, 0, 0), 0, "eth0 (default)"},
  };

  engine::TcamTable table(router_config(arch::TcamDesign::k1p5DgFe));
  std::vector<engine::EntryId> ids;
  for (const auto& r : routes) {
    ids.push_back(table.insert(route_entry(r), 32 - r.length));
  }

  std::printf("routing table (%zu entries across %d mats):\n", routes.size(),
              table.mats());
  for (std::size_t r = 0; r < routes.size(); ++r) {
    const auto loc = *table.locate(ids[r]);
    std::printf("  mat %d row %2d: %s -> %s\n", loc.mat, loc.row,
                arch::to_string(route_entry(routes[r])).c_str(),
                routes[r].next_hop);
  }

  // Route a few illustrative packets through the engine as one batch.
  const std::vector<std::uint32_t> packets = {
      ip(10, 1, 5, 7),     // longest match: /24
      ip(10, 1, 9, 1),     // /16
      ip(10, 77, 1, 1),    // /8
      ip(192, 168, 3, 3),  // /16 private
      ip(8, 8, 8, 8),      // default
  };
  {
    engine::SearchEngine eng(table);
    std::vector<engine::Request> batch;
    for (const auto addr : packets) {
      batch.push_back(engine::make_search(address_query(addr)));
    }
    const auto res = eng.execute(std::move(batch));
    std::printf("\nforwarding decisions:\n");
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const auto addr = packets[i];
      const auto& r = res.results[i];
      const char* hop = "DROP";
      if (r.hit) {
        for (std::size_t k = 0; k < ids.size(); ++k) {
          if (ids[k] == r.entry) hop = routes[k].next_hop;
        }
      }
      std::printf("  %3u.%u.%u.%u -> %s\n", addr >> 24, (addr >> 16) & 0xff,
                  (addr >> 8) & 0xff, addr & 0xff, hop);
      if (!r.hit) return 1;
    }
  }

  // Energy comparison over a synthetic packet trace: most rows miss in
  // step 1, which is exactly where the 1.5T1Fe early termination pays.
  // Both tables hold the identical routes and serve the identical batched
  // workload; only the design (and therefore the per-op cost model and
  // match schedule) differs.
  constexpr int kPackets = 100000;
  constexpr int kBatch = 1000;
  const auto run_design = [&](arch::TcamDesign design) {
    engine::TcamTable t(router_config(design));
    for (const auto& r : routes) t.insert(route_entry(r), 32 - r.length);
    const double writes_j = t.total_energy_j();
    engine::SearchEngine eng(t);
    std::vector<engine::Request> batch;
    batch.reserve(kBatch);
    for (int i = 0; i < kPackets; ++i) {
      auto rng = util::trial_rng(7, static_cast<std::uint64_t>(i), 0);
      batch.push_back(engine::make_search(address_query(
          std::uniform_int_distribution<std::uint32_t>()(rng))));
      if (static_cast<int>(batch.size()) == kBatch) {
        eng.execute(std::move(batch));
        batch.clear();
        batch.reserve(kBatch);
      }
    }
    struct Out {
      double search_j;
      double miss_rate;
      long long considered;
      long long skipped;
      double skip_rate;
    };
    const long long considered = t.mats_considered();
    const long long skipped = t.mats_skipped();
    return Out{t.total_energy_j() - writes_j,
               t.search_stats().step1_miss_rate(), considered, skipped,
               considered > 0 ? static_cast<double>(skipped) /
                                    static_cast<double>(considered)
                              : 0.0};
  };
  const auto dg = run_design(arch::TcamDesign::k1p5DgFe);
  const auto sg2 = run_design(arch::TcamDesign::k2SgFefet);

  std::printf("\n%d packets routed; step-1 miss rate %.1f%% (paper assumes "
              ">90%% in real workloads)\n",
              kPackets, 100.0 * dg.miss_rate);
  std::printf("lookup energy: 1.5T1DG-Fe %.2f nJ vs 2SG-FeFET %.2f nJ "
              "(%.2fx)\n",
              dg.search_j * 1e9, sg2.search_j * 1e9,
              sg2.search_j / dg.search_j);

  // Machine-readable summary: which kernel tier served the trace and how
  // often the mat-skip index proved whole mats matchless (the default
  // route is all-X, so its mat can never prune — a skip rate below 50%
  // on this 2-mat split is expected, not a bug).
  std::printf("\n{\"kernel_tier\": \"%s\", "
              "\"dg\": {\"mats_considered\": %lld, \"mats_skipped\": %lld, "
              "\"mat_skip_rate\": %.4f, \"search_nj\": %.3f}, "
              "\"sg2\": {\"mats_considered\": %lld, \"mats_skipped\": %lld, "
              "\"mat_skip_rate\": %.4f, \"search_nj\": %.3f}}\n",
              engine::kernel_tier_name(engine::active_kernel_tier()),
              dg.considered, dg.skipped, dg.skip_rate, dg.search_j * 1e9,
              sg2.considered, sg2.skipped, sg2.skip_rate,
              sg2.search_j * 1e9);
  return 0;
}
