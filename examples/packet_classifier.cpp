// Packet classifier: longest-prefix-match IP routing on a ternary CAM —
// the classic TCAM application the paper's introduction cites.
//
// Routes are stored as 32-bit prefixes with 'X' wildcards for the host
// bits, ordered by decreasing prefix length so the priority encoder (first
// matching row) returns the longest match.  The example routes a packet
// trace, reports the forwarding decisions, and compares the energy of a
// 1.5T1DG-Fe implementation (with early termination) against a 2SG-FeFET
// TCAM for the same workload.
#include <cstdio>
#include <cstdint>
#include <random>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/energy_model.hpp"
#include "arch/search_scheduler.hpp"

using namespace fetcam;

namespace {

struct Route {
  std::uint32_t prefix;
  int length;  // bits
  const char* next_hop;
};

arch::TernaryWord route_entry(const Route& r) {
  arch::TernaryWord w;
  for (int b = 31; b >= 0; --b) {
    if (31 - b < r.length) {
      w.push_back(((r.prefix >> b) & 1u) != 0 ? arch::Ternary::kOne
                                              : arch::Ternary::kZero);
    } else {
      w.push_back(arch::Ternary::kX);
    }
  }
  return w;
}

arch::BitWord address_query(std::uint32_t addr) {
  arch::BitWord q;
  for (int b = 31; b >= 0; --b) q.push_back((addr >> b) & 1u);
  return q;
}

std::uint32_t ip(int a, int b, int c, int d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}

}  // namespace

int main() {
  // Routing table, longest prefixes first (TCAM priority = row order).
  const std::vector<Route> routes = {
      {ip(10, 1, 5, 0), 24, "eth3 (lab subnet)"},
      {ip(10, 1, 0, 0), 16, "eth2 (campus)"},
      {ip(10, 0, 0, 0), 8, "eth1 (corp)"},
      {ip(192, 168, 0, 0), 16, "eth4 (private)"},
      {ip(0, 0, 0, 0), 0, "eth0 (default)"},
  };

  arch::TcamArray table(static_cast<int>(routes.size()), 32);
  for (std::size_t r = 0; r < routes.size(); ++r) {
    table.write(static_cast<int>(r), route_entry(routes[r]));
  }

  std::printf("routing table (%zu entries, 32-bit ternary):\n",
              routes.size());
  for (std::size_t r = 0; r < routes.size(); ++r) {
    std::printf("  row %zu: %s -> %s\n", r,
                arch::to_string(table.entry(static_cast<int>(r))).c_str(),
                routes[r].next_hop);
  }

  // Route a few illustrative packets.
  const std::vector<std::uint32_t> packets = {
      ip(10, 1, 5, 7),     // longest match: /24
      ip(10, 1, 9, 1),     // /16
      ip(10, 77, 1, 1),    // /8
      ip(192, 168, 3, 3),  // /16 private
      ip(8, 8, 8, 8),      // default
  };
  std::printf("\nforwarding decisions:\n");
  for (const auto addr : packets) {
    const auto q = address_query(addr);
    const auto hit = table.first_match(q);
    std::printf("  %3u.%u.%u.%u -> %s\n", addr >> 24, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff,
                hit ? routes[static_cast<std::size_t>(*hit)].next_hop
                    : "DROP");
    if (!hit) return 1;
  }

  // Energy comparison over a synthetic packet trace: most rows miss in
  // step 1, which is exactly where the 1.5T1Fe early termination pays.
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> rand_addr;
  arch::ArrayEnergyModel dg(arch::TcamDesign::k1p5DgFe, table.rows(), 32);
  arch::ArrayEnergyModel sg2(arch::TcamDesign::k2SgFefet, table.rows(), 32);
  arch::SearchStatsAccumulator acc;
  const int kPackets = 100000;
  for (int i = 0; i < kPackets; ++i) {
    const auto q = address_query(rand_addr(rng));
    const auto res = two_step_search(table, q);
    acc.add(res.stats);
    dg.on_search(res.stats);
    sg2.on_search(res.stats);
  }
  std::printf("\n%d packets routed; step-1 miss rate %.1f%% (paper assumes "
              ">90%% in real workloads)\n",
              kPackets, 100.0 * acc.step1_miss_rate());
  std::printf("lookup energy: 1.5T1DG-Fe %.2f nJ vs 2SG-FeFET %.2f nJ "
              "(%.2fx)\n",
              dg.total_energy_j() * 1e9, sg2.total_energy_j() * 1e9,
              sg2.total_energy_j() / dg.total_energy_j());
  return 0;
}
