// Wildcard pattern store for one-shot classification — the in-memory-
// computing use case (Ni et al., Nature Electronics 2019) the paper cites
// as a motivation for FeFET TCAMs.
//
// Each class is represented by a ternary signature: feature bits that were
// consistent across the few training examples are stored as '0'/'1', the
// unstable ones as 'X' (don't care).  Inference is a single TCAM search;
// with multiple matches, the row with the fewest wildcards (most specific
// signature) wins.  The example also demonstrates the three-step write plan
// the 1.5T1Fe array uses to program such wildcard-heavy entries.
#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/energy_model.hpp"
#include "arch/search_scheduler.hpp"
#include "arch/write_controller.hpp"

using namespace fetcam;

namespace {

constexpr int kFeatures = 16;

/// Build a class signature from a handful of noisy examples: stable bits
/// become literals, unstable ones 'X'.
arch::TernaryWord learn_signature(const std::vector<arch::BitWord>& shots) {
  arch::TernaryWord sig;
  for (int f = 0; f < kFeatures; ++f) {
    int ones = 0;
    for (const auto& s : shots) ones += s[static_cast<std::size_t>(f)];
    if (ones == 0) {
      sig.push_back(arch::Ternary::kZero);
    } else if (ones == static_cast<int>(shots.size())) {
      sig.push_back(arch::Ternary::kOne);
    } else {
      sig.push_back(arch::Ternary::kX);
    }
  }
  return sig;
}

int wildcard_count(const arch::TernaryWord& w) {
  return static_cast<int>(
      std::count(w.begin(), w.end(), arch::Ternary::kX));
}

arch::BitWord noisy(const arch::BitWord& base, double flip_p,
                    std::mt19937& rng) {
  std::bernoulli_distribution flip(flip_p);
  arch::BitWord out = base;
  for (auto& b : out) {
    if (flip(rng)) b = b != 0 ? 0 : 1;
  }
  return out;
}

}  // namespace

int main() {
  std::mt19937 rng(42);

  // Three classes with characteristic prototypes.
  const std::vector<arch::BitWord> prototypes = {
      arch::bits_from_string("1111000011110000"),
      arch::bits_from_string("0000111100001111"),
      arch::bits_from_string("1010101010101010"),
  };
  const std::vector<const char*> names = {"class-A", "class-B", "class-C"};

  // One-shot learning: 4 noisy shots per class -> ternary signature.
  arch::TcamArray store(static_cast<int>(prototypes.size()), kFeatures);
  for (std::size_t c = 0; c < prototypes.size(); ++c) {
    std::vector<arch::BitWord> shots;
    for (int s = 0; s < 4; ++s) shots.push_back(noisy(prototypes[c], 0.08, rng));
    const auto sig = learn_signature(shots);
    store.write(static_cast<int>(c), sig);
    std::printf("%s signature: %s  (%d wildcards)\n", names[c],
                arch::to_string(sig).c_str(), wildcard_count(sig));
  }

  // The 1.5T1Fe three-step write plan for one signature (Sec. III-B3).
  {
    const arch::WriteVoltages v{.vw = 2.0, .vm = 1.66, .vdd = 0.8};
    const auto plan = arch::three_step_plan(store.entry(0), {}, v);
    std::printf("\nthree-step write of %s:\n",
                arch::to_string(store.entry(0)).c_str());
    for (const auto& ph : plan.phases) {
      std::printf("  %-10s: %d cells switch\n", ph.name.c_str(),
                  ph.switching_cells);
    }
  }

  // Inference: classify noisy queries; most specific matching row wins.
  int correct = 0;
  const int kQueries = 2000;
  arch::ArrayEnergyModel energy(arch::TcamDesign::k1p5DgFe, store.rows(),
                                kFeatures);
  for (int q = 0; q < kQueries; ++q) {
    const std::size_t truth =
        static_cast<std::size_t>(q) % prototypes.size();
    const auto query = noisy(prototypes[truth], 0.03, rng);
    const auto res = two_step_search(store, query);
    energy.on_search(res.stats);
    int best = -1;
    int best_wild = kFeatures + 1;
    for (int r = 0; r < store.rows(); ++r) {
      if (res.matches[static_cast<std::size_t>(r)] &&
          wildcard_count(store.entry(r)) < best_wild) {
        best = r;
        best_wild = wildcard_count(store.entry(r));
      }
    }
    if (best == static_cast<int>(truth)) ++correct;
  }
  std::printf("\nclassified %d queries: %.1f%% matched their class "
              "signature exactly\n",
              kQueries, 100.0 * correct / kQueries);
  std::printf("inference energy on 1.5T1DG-Fe: %.3f pJ total "
              "(%.3f fJ per searched cell)\n",
              energy.total_energy_j() * 1e12,
              energy.mean_search_energy_per_cell() * 1e15);
  // Wildcard-rich signatures tolerate noise; expect a solid majority hit
  // rate despite 3 % feature noise.
  return correct > kQueries / 2 ? 0 : 1;
}
