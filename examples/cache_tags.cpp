// High-associativity cache tag lookup — the other conventional TCAM
// application from the paper's abstract.
//
// A 32-way fully-associative tag store is held in a binary-mode TCAM (no
// wildcards): a lookup is one parallel search, a hit returns the way.  The
// example runs an LRU cache over a synthetic address trace with temporal
// locality and reports hit rate plus the tag-search energy on two TCAM
// implementations.
#include <cstdio>
#include <cstdint>
#include <list>
#include <random>
#include <unordered_map>
#include <vector>

#include "arch/behavioral_array.hpp"
#include "arch/endurance.hpp"
#include "arch/energy_model.hpp"
#include "arch/search_scheduler.hpp"

using namespace fetcam;

namespace {

constexpr int kWays = 32;
constexpr int kTagBits = 20;

arch::TernaryWord tag_entry(std::uint32_t tag) {
  arch::TernaryWord w;
  for (int b = kTagBits - 1; b >= 0; --b) {
    w.push_back(((tag >> b) & 1u) != 0 ? arch::Ternary::kOne
                                       : arch::Ternary::kZero);
  }
  return w;
}

arch::BitWord tag_query(std::uint32_t tag) {
  arch::BitWord q;
  for (int b = kTagBits - 1; b >= 0; --b) q.push_back((tag >> b) & 1u);
  return q;
}

}  // namespace

int main() {
  arch::TcamArray tags(kWays, kTagBits);
  std::list<int> lru;  // front = most recent
  std::unordered_map<int, std::uint32_t> way_tag;

  std::mt19937 rng(99);
  // Locality: 90 % of accesses hit a small working set.
  std::uniform_int_distribution<std::uint32_t> hot(0, 23);
  std::uniform_int_distribution<std::uint32_t> cold(0, 4000);
  std::bernoulli_distribution is_hot(0.9);

  arch::ArrayEnergyModel dg(arch::TcamDesign::k1p5DgFe, kWays, kTagBits);
  arch::ArrayEnergyModel cmos(arch::TcamDesign::kCmos16T, kWays, kTagBits);
  arch::EnduranceModel wear(arch::TcamDesign::k1p5DgFe, kWays);

  int hits = 0;
  const int kAccesses = 50000;
  for (int a = 0; a < kAccesses; ++a) {
    const std::uint32_t tag = is_hot(rng) ? hot(rng) : cold(rng);
    const auto res = two_step_search(tags, tag_query(tag));
    dg.on_search(res.stats);
    cmos.on_search(res.stats);

    const auto way = tags.first_match(tag_query(tag));
    if (way) {
      ++hits;
      lru.remove(*way);
      lru.push_front(*way);
      continue;
    }
    // Miss: fill (possibly evicting LRU).
    int victim;
    if (static_cast<int>(lru.size()) < kWays) {
      victim = static_cast<int>(lru.size());
    } else {
      victim = lru.back();
      lru.pop_back();
    }
    tags.write(victim, tag_entry(tag));
    way_tag[victim] = tag;
    lru.push_front(victim);
    dg.on_write(kTagBits);
    wear.on_write(victim);
  }

  std::printf("%d accesses, %.1f%% hit rate, %d tag writes\n", kAccesses,
              100.0 * hits / kAccesses, static_cast<int>(dg.writes()));
  std::printf("tag-search energy: 1.5T1DG-Fe %.2f nJ vs 16T CMOS %.2f nJ\n",
              dg.total_energy_j() * 1e9, cmos.total_energy_j() * 1e9);
  std::printf("lookup latency: %.0f ps (1.5T1DG two-step) vs %.0f ps (16T)\n",
              dg.costs().latency_full * 1e12,
              cmos.costs().latency_full * 1e12);
  // Endurance outlook at a brutal fill rate (back-to-back accesses at the
  // search latency): tag churn is the worst case for NVM endurance, and the
  // 1e10-cycle DG budget is what makes an NVM tag store thinkable at all —
  // an SG-FeFET store (1e6 cycles) would wear out 10,000x sooner.
  const double fills_per_s =
      wear.total_writes() / (kAccesses * dg.costs().latency_full);
  const double life_s = wear.lifetime_seconds(fills_per_s);
  std::printf("tag-write wear: hottest way at %.2e of the DG 1e10-cycle "
              "budget;\n  at a worst-case %.0f Mfill/s the store lasts %.0f "
              "minutes (SG: %.1f ms) —\n  real fill rates are orders of "
              "magnitude lower\n",
              wear.wear_fraction(), fills_per_s / 1e6, life_s / 60.0,
              life_s / 1e4 * 1e3);
  // Consistency check: every hot tag re-access after the warmup should hit.
  return hits > kAccesses / 2 ? 0 : 1;
}
