// Waveform dump: run the paper's Fig. 4 scenarios on a 1.5T1DG-Fe word and
// export the select/ML/SA waveforms to CSV and VCD for inspection in a
// plotting tool or GTKWave.
//
//   $ ./waveform_dump [out_basename]
//   -> <out>_step1_miss.{csv,vcd}, <out>_step2_miss.{csv,vcd},
//      <out>_match.{csv,vcd}
#include <cstdio>
#include <string>

#include "spice/waveio.hpp"
#include "tcam/sim_harness.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "fig4";
  const int n = 8;

  struct Scenario {
    const char* label;
    const char* stored;
    const char* query;
    int steps;
  };
  const Scenario scenarios[] = {
      {"step1_miss", "11010101", "01010101", 1},
      {"step2_miss", "00010101", "01010101", 2},
      {"match", "01010101", "01010101", 2},
  };

  for (const auto& sc : scenarios) {
    tcam::WordOptions opts;
    opts.n_bits = n;
    tcam::SearchConfig cfg;
    cfg.stored = arch::word_from_string(sc.stored);
    cfg.query = arch::bits_from_string(sc.query);
    cfg.steps = sc.steps;

    spice::Trace trace;
    const auto m = tcam::measure_search(arch::TcamDesign::k1p5DgFe, opts,
                                        cfg, &trace);
    if (!m.ok) {
      std::printf("%s: simulation failed: %s\n", sc.label, m.error.c_str());
      return 1;
    }
    const std::string out = base + "_" + sc.label;
    const std::vector<std::string> nodes = {
        "sela", "selb", "ml0", "ml" + std::to_string(n / 2 - 1), "ml.saout"};
    if (!spice::export_waveforms(out, trace, nodes)) {
      std::printf("%s: export failed\n", sc.label);
      return 1;
    }
    std::printf("%-11s -> SA %-5s  (%zu samples) -> %s.{csv,vcd}\n",
                sc.label, m.measured_match ? "match" : "miss", trace.size(),
                out.c_str());
  }
  std::printf("\nview: gtkwave %s_match.vcd   or plot the CSVs\n",
              base.c_str());
  return 0;
}
