
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/area_model_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/area_model_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/area_model_test.cpp.o.d"
  "/root/repo/tests/arch/behavioral_array_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/behavioral_array_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/behavioral_array_test.cpp.o.d"
  "/root/repo/tests/arch/controller_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/controller_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/controller_test.cpp.o.d"
  "/root/repo/tests/arch/endurance_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/endurance_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/endurance_test.cpp.o.d"
  "/root/repo/tests/arch/energy_model_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/energy_model_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/energy_model_test.cpp.o.d"
  "/root/repo/tests/arch/hv_driver_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/hv_driver_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/hv_driver_test.cpp.o.d"
  "/root/repo/tests/arch/search_scheduler_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/search_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/search_scheduler_test.cpp.o.d"
  "/root/repo/tests/arch/ternary_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/ternary_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/ternary_test.cpp.o.d"
  "/root/repo/tests/arch/write_controller_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/arch/write_controller_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/arch/write_controller_test.cpp.o.d"
  "/root/repo/tests/devices/ekv_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/ekv_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/ekv_test.cpp.o.d"
  "/root/repo/tests/devices/fefet_sweep_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/fefet_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/fefet_sweep_test.cpp.o.d"
  "/root/repo/tests/devices/fefet_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/fefet_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/fefet_test.cpp.o.d"
  "/root/repo/tests/devices/mosfet_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/mosfet_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/mosfet_test.cpp.o.d"
  "/root/repo/tests/devices/preisach_memory_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/preisach_memory_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/preisach_memory_test.cpp.o.d"
  "/root/repo/tests/devices/preisach_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/preisach_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/preisach_test.cpp.o.d"
  "/root/repo/tests/devices/tech14_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/devices/tech14_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/devices/tech14_test.cpp.o.d"
  "/root/repo/tests/eval/analytic_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/analytic_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/analytic_test.cpp.o.d"
  "/root/repo/tests/eval/array_eval_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/array_eval_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/array_eval_test.cpp.o.d"
  "/root/repo/tests/eval/disturb_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/disturb_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/disturb_test.cpp.o.d"
  "/root/repo/tests/eval/experiments_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/experiments_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/experiments_test.cpp.o.d"
  "/root/repo/tests/eval/fom_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/fom_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/fom_test.cpp.o.d"
  "/root/repo/tests/eval/golden_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/golden_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/golden_test.cpp.o.d"
  "/root/repo/tests/eval/half_select_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/half_select_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/half_select_test.cpp.o.d"
  "/root/repo/tests/eval/report_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/report_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/report_test.cpp.o.d"
  "/root/repo/tests/eval/trim_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/trim_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/trim_test.cpp.o.d"
  "/root/repo/tests/eval/variability_determinism_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/variability_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/variability_determinism_test.cpp.o.d"
  "/root/repo/tests/eval/variability_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/eval/variability_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/eval/variability_test.cpp.o.d"
  "/root/repo/tests/numeric/lu_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/numeric/lu_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/numeric/lu_test.cpp.o.d"
  "/root/repo/tests/numeric/matrix_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/numeric/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/numeric/matrix_test.cpp.o.d"
  "/root/repo/tests/numeric/newton_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/numeric/newton_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/numeric/newton_test.cpp.o.d"
  "/root/repo/tests/numeric/sparse_lu_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/numeric/sparse_lu_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/numeric/sparse_lu_test.cpp.o.d"
  "/root/repo/tests/numeric/sparse_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/numeric/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/numeric/sparse_test.cpp.o.d"
  "/root/repo/tests/spice/circuit_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/circuit_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/circuit_test.cpp.o.d"
  "/root/repo/tests/spice/measure_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/measure_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/measure_test.cpp.o.d"
  "/root/repo/tests/spice/op_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/op_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/op_test.cpp.o.d"
  "/root/repo/tests/spice/physics_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/physics_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/physics_test.cpp.o.d"
  "/root/repo/tests/spice/robustness_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/robustness_test.cpp.o.d"
  "/root/repo/tests/spice/solver_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/solver_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/solver_test.cpp.o.d"
  "/root/repo/tests/spice/spice_export_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/spice_export_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/spice_export_test.cpp.o.d"
  "/root/repo/tests/spice/transient_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/transient_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/transient_test.cpp.o.d"
  "/root/repo/tests/spice/waveform_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/waveform_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/waveform_test.cpp.o.d"
  "/root/repo/tests/spice/waveio_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/spice/waveio_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/spice/waveio_test.cpp.o.d"
  "/root/repo/tests/tcam/cmos16t_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/cmos16t_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/cmos16t_test.cpp.o.d"
  "/root/repo/tests/tcam/corner_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/corner_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/corner_test.cpp.o.d"
  "/root/repo/tests/tcam/divider_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/divider_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/divider_test.cpp.o.d"
  "/root/repo/tests/tcam/full_array_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/full_array_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/full_array_test.cpp.o.d"
  "/root/repo/tests/tcam/harness_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/harness_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/harness_test.cpp.o.d"
  "/root/repo/tests/tcam/parasitics_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/parasitics_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/parasitics_test.cpp.o.d"
  "/root/repo/tests/tcam/search_correctness_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/search_correctness_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/search_correctness_test.cpp.o.d"
  "/root/repo/tests/tcam/temperature_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/temperature_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/temperature_test.cpp.o.d"
  "/root/repo/tests/tcam/write_path_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/tcam/write_path_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/tcam/write_path_test.cpp.o.d"
  "/root/repo/tests/util/parallel_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/util/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/util/parallel_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/fetcam_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/fetcam_tests.dir/util/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_tcam.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_devices.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
