# Empty compiler generated dependencies file for fetcam_tests.
# This may be replaced when dependencies are built.
