# Empty compiler generated dependencies file for calib_divider.
# This may be replaced when dependencies are built.
