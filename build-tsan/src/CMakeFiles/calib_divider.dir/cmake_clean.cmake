file(REMOVE_RECURSE
  "CMakeFiles/calib_divider.dir/__/tools/calib_divider.cpp.o"
  "CMakeFiles/calib_divider.dir/__/tools/calib_divider.cpp.o.d"
  "calib_divider"
  "calib_divider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_divider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
