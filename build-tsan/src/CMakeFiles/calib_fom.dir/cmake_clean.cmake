file(REMOVE_RECURSE
  "CMakeFiles/calib_fom.dir/__/tools/calib_fom.cpp.o"
  "CMakeFiles/calib_fom.dir/__/tools/calib_fom.cpp.o.d"
  "calib_fom"
  "calib_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calib_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
