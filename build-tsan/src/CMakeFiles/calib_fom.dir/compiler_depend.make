# Empty compiler generated dependencies file for calib_fom.
# This may be replaced when dependencies are built.
