file(REMOVE_RECURSE
  "libfetcam_arch.a"
)
