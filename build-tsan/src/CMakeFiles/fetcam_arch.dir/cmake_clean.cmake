file(REMOVE_RECURSE
  "CMakeFiles/fetcam_arch.dir/arch/area_model.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/area_model.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/behavioral_array.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/behavioral_array.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/controller.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/controller.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/endurance.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/endurance.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/energy_model.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/energy_model.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/hv_driver.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/hv_driver.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/search_scheduler.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/search_scheduler.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/ternary.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/ternary.cpp.o.d"
  "CMakeFiles/fetcam_arch.dir/arch/write_controller.cpp.o"
  "CMakeFiles/fetcam_arch.dir/arch/write_controller.cpp.o.d"
  "libfetcam_arch.a"
  "libfetcam_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
