# Empty dependencies file for fetcam_arch.
# This may be replaced when dependencies are built.
