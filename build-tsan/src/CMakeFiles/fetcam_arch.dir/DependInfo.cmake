
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/area_model.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/area_model.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/area_model.cpp.o.d"
  "/root/repo/src/arch/behavioral_array.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/behavioral_array.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/behavioral_array.cpp.o.d"
  "/root/repo/src/arch/controller.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/controller.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/controller.cpp.o.d"
  "/root/repo/src/arch/endurance.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/endurance.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/endurance.cpp.o.d"
  "/root/repo/src/arch/energy_model.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/energy_model.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/energy_model.cpp.o.d"
  "/root/repo/src/arch/hv_driver.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/hv_driver.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/hv_driver.cpp.o.d"
  "/root/repo/src/arch/search_scheduler.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/search_scheduler.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/search_scheduler.cpp.o.d"
  "/root/repo/src/arch/ternary.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/ternary.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/ternary.cpp.o.d"
  "/root/repo/src/arch/write_controller.cpp" "src/CMakeFiles/fetcam_arch.dir/arch/write_controller.cpp.o" "gcc" "src/CMakeFiles/fetcam_arch.dir/arch/write_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
