# Empty compiler generated dependencies file for fetcam_eval.
# This may be replaced when dependencies are built.
