file(REMOVE_RECURSE
  "libfetcam_eval.a"
)
