
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/analytic.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/analytic.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/analytic.cpp.o.d"
  "/root/repo/src/eval/array_eval.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/array_eval.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/array_eval.cpp.o.d"
  "/root/repo/src/eval/calibration.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/calibration.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/calibration.cpp.o.d"
  "/root/repo/src/eval/disturb.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/disturb.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/disturb.cpp.o.d"
  "/root/repo/src/eval/experiments.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/experiments.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/experiments.cpp.o.d"
  "/root/repo/src/eval/fom.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/fom.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/fom.cpp.o.d"
  "/root/repo/src/eval/half_select.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/half_select.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/half_select.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/trim.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/trim.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/trim.cpp.o.d"
  "/root/repo/src/eval/variability.cpp" "src/CMakeFiles/fetcam_eval.dir/eval/variability.cpp.o" "gcc" "src/CMakeFiles/fetcam_eval.dir/eval/variability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_tcam.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_devices.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
