file(REMOVE_RECURSE
  "CMakeFiles/fetcam_eval.dir/eval/analytic.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/analytic.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/array_eval.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/array_eval.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/calibration.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/calibration.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/disturb.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/disturb.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/experiments.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/experiments.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/fom.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/fom.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/half_select.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/half_select.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/report.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/report.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/trim.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/trim.cpp.o.d"
  "CMakeFiles/fetcam_eval.dir/eval/variability.cpp.o"
  "CMakeFiles/fetcam_eval.dir/eval/variability.cpp.o.d"
  "libfetcam_eval.a"
  "libfetcam_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
