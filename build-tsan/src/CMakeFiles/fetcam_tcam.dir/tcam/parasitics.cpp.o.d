src/CMakeFiles/fetcam_tcam.dir/tcam/parasitics.cpp.o: \
 /root/repo/src/tcam/parasitics.cpp /usr/include/stdc-predef.h \
 /root/repo/src/tcam/parasitics.hpp
