
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcam/array_builder.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/array_builder.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/array_builder.cpp.o.d"
  "/root/repo/src/tcam/cell_1p5t1fe.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/cell_1p5t1fe.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/cell_1p5t1fe.cpp.o.d"
  "/root/repo/src/tcam/cell_2fefet.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/cell_2fefet.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/cell_2fefet.cpp.o.d"
  "/root/repo/src/tcam/cmos16t.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/cmos16t.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/cmos16t.cpp.o.d"
  "/root/repo/src/tcam/full_array.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/full_array.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/full_array.cpp.o.d"
  "/root/repo/src/tcam/op_program.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/op_program.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/op_program.cpp.o.d"
  "/root/repo/src/tcam/parasitics.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/parasitics.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/parasitics.cpp.o.d"
  "/root/repo/src/tcam/sense_amp.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/sense_amp.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/sense_amp.cpp.o.d"
  "/root/repo/src/tcam/sim_harness.cpp" "src/CMakeFiles/fetcam_tcam.dir/tcam/sim_harness.cpp.o" "gcc" "src/CMakeFiles/fetcam_tcam.dir/tcam/sim_harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_devices.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_arch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
