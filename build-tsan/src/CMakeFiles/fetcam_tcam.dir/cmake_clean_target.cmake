file(REMOVE_RECURSE
  "libfetcam_tcam.a"
)
