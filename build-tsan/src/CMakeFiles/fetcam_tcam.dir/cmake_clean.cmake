file(REMOVE_RECURSE
  "CMakeFiles/fetcam_tcam.dir/tcam/array_builder.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/array_builder.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/cell_1p5t1fe.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/cell_1p5t1fe.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/cell_2fefet.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/cell_2fefet.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/cmos16t.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/cmos16t.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/full_array.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/full_array.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/op_program.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/op_program.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/parasitics.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/parasitics.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/sense_amp.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/sense_amp.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/tcam/sim_harness.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/tcam/sim_harness.cpp.o.d"
  "libfetcam_tcam.a"
  "libfetcam_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
