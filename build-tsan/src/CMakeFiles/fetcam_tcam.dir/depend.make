# Empty dependencies file for fetcam_tcam.
# This may be replaced when dependencies are built.
