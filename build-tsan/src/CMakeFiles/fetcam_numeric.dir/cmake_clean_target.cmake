file(REMOVE_RECURSE
  "libfetcam_numeric.a"
)
