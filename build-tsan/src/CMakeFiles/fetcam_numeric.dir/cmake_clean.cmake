file(REMOVE_RECURSE
  "CMakeFiles/fetcam_numeric.dir/numeric/lu.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/numeric/lu.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/numeric/matrix.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/numeric/matrix.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/numeric/newton.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/numeric/newton.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/numeric/sparse.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/numeric/sparse.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/numeric/sparse_lu.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/numeric/sparse_lu.cpp.o.d"
  "libfetcam_numeric.a"
  "libfetcam_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
