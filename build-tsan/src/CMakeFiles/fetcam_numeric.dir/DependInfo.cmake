
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/lu.cpp" "src/CMakeFiles/fetcam_numeric.dir/numeric/lu.cpp.o" "gcc" "src/CMakeFiles/fetcam_numeric.dir/numeric/lu.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/CMakeFiles/fetcam_numeric.dir/numeric/matrix.cpp.o" "gcc" "src/CMakeFiles/fetcam_numeric.dir/numeric/matrix.cpp.o.d"
  "/root/repo/src/numeric/newton.cpp" "src/CMakeFiles/fetcam_numeric.dir/numeric/newton.cpp.o" "gcc" "src/CMakeFiles/fetcam_numeric.dir/numeric/newton.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "src/CMakeFiles/fetcam_numeric.dir/numeric/sparse.cpp.o" "gcc" "src/CMakeFiles/fetcam_numeric.dir/numeric/sparse.cpp.o.d"
  "/root/repo/src/numeric/sparse_lu.cpp" "src/CMakeFiles/fetcam_numeric.dir/numeric/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/fetcam_numeric.dir/numeric/sparse_lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
