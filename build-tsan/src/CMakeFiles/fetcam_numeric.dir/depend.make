# Empty dependencies file for fetcam_numeric.
# This may be replaced when dependencies are built.
