
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/fefet.cpp" "src/CMakeFiles/fetcam_devices.dir/devices/fefet.cpp.o" "gcc" "src/CMakeFiles/fetcam_devices.dir/devices/fefet.cpp.o.d"
  "/root/repo/src/devices/mosfet.cpp" "src/CMakeFiles/fetcam_devices.dir/devices/mosfet.cpp.o" "gcc" "src/CMakeFiles/fetcam_devices.dir/devices/mosfet.cpp.o.d"
  "/root/repo/src/devices/preisach.cpp" "src/CMakeFiles/fetcam_devices.dir/devices/preisach.cpp.o" "gcc" "src/CMakeFiles/fetcam_devices.dir/devices/preisach.cpp.o.d"
  "/root/repo/src/devices/tech14.cpp" "src/CMakeFiles/fetcam_devices.dir/devices/tech14.cpp.o" "gcc" "src/CMakeFiles/fetcam_devices.dir/devices/tech14.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
