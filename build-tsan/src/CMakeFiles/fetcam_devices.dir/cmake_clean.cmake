file(REMOVE_RECURSE
  "CMakeFiles/fetcam_devices.dir/devices/fefet.cpp.o"
  "CMakeFiles/fetcam_devices.dir/devices/fefet.cpp.o.d"
  "CMakeFiles/fetcam_devices.dir/devices/mosfet.cpp.o"
  "CMakeFiles/fetcam_devices.dir/devices/mosfet.cpp.o.d"
  "CMakeFiles/fetcam_devices.dir/devices/preisach.cpp.o"
  "CMakeFiles/fetcam_devices.dir/devices/preisach.cpp.o.d"
  "CMakeFiles/fetcam_devices.dir/devices/tech14.cpp.o"
  "CMakeFiles/fetcam_devices.dir/devices/tech14.cpp.o.d"
  "libfetcam_devices.a"
  "libfetcam_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
