file(REMOVE_RECURSE
  "libfetcam_devices.a"
)
