# Empty compiler generated dependencies file for fetcam_devices.
# This may be replaced when dependencies are built.
