# Empty dependencies file for fetcam_devices.
# This may be replaced when dependencies are built.
