# Empty dependencies file for fetcam_util.
# This may be replaced when dependencies are built.
