file(REMOVE_RECURSE
  "CMakeFiles/fetcam_util.dir/util/parallel.cpp.o"
  "CMakeFiles/fetcam_util.dir/util/parallel.cpp.o.d"
  "CMakeFiles/fetcam_util.dir/util/rng.cpp.o"
  "CMakeFiles/fetcam_util.dir/util/rng.cpp.o.d"
  "libfetcam_util.a"
  "libfetcam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
