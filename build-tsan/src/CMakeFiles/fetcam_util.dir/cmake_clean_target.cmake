file(REMOVE_RECURSE
  "libfetcam_util.a"
)
