file(REMOVE_RECURSE
  "CMakeFiles/fetcam_spice.dir/spice/circuit.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/circuit.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/dcsweep.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/dcsweep.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/elements.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/elements.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/measure.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/measure.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/netlist.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/netlist.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/op.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/op.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/spice_export.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/spice_export.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/transient.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/transient.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/waveform.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/waveform.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/spice/waveio.cpp.o"
  "CMakeFiles/fetcam_spice.dir/spice/waveio.cpp.o.d"
  "libfetcam_spice.a"
  "libfetcam_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
