# Empty dependencies file for fetcam_spice.
# This may be replaced when dependencies are built.
