
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/circuit.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/circuit.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/circuit.cpp.o.d"
  "/root/repo/src/spice/dcsweep.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/dcsweep.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/dcsweep.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/elements.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/elements.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/measure.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/measure.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/op.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/op.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/op.cpp.o.d"
  "/root/repo/src/spice/spice_export.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/spice_export.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/spice_export.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/transient.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/transient.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/waveform.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/waveform.cpp.o.d"
  "/root/repo/src/spice/waveio.cpp" "src/CMakeFiles/fetcam_spice.dir/spice/waveio.cpp.o" "gcc" "src/CMakeFiles/fetcam_spice.dir/spice/waveio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
