file(REMOVE_RECURSE
  "libfetcam_spice.a"
)
