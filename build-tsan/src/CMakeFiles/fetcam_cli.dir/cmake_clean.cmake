file(REMOVE_RECURSE
  "CMakeFiles/fetcam_cli.dir/__/tools/fetcam_cli.cpp.o"
  "CMakeFiles/fetcam_cli.dir/__/tools/fetcam_cli.cpp.o.d"
  "fetcam_cli"
  "fetcam_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
