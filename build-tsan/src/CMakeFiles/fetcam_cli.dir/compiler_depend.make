# Empty compiler generated dependencies file for fetcam_cli.
# This may be replaced when dependencies are built.
