# Empty dependencies file for bench_fig4_transient.
# This may be replaced when dependencies are built.
