file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_transient.dir/bench_fig4_transient.cpp.o"
  "CMakeFiles/bench_fig4_transient.dir/bench_fig4_transient.cpp.o.d"
  "bench_fig4_transient"
  "bench_fig4_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
