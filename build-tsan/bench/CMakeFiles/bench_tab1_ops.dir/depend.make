# Empty dependencies file for bench_tab1_ops.
# This may be replaced when dependencies are built.
