file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_ops.dir/bench_tab1_ops.cpp.o"
  "CMakeFiles/bench_tab1_ops.dir/bench_tab1_ops.cpp.o.d"
  "bench_tab1_ops"
  "bench_tab1_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
