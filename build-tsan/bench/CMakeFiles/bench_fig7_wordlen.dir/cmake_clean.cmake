file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_wordlen.dir/bench_fig7_wordlen.cpp.o"
  "CMakeFiles/bench_fig7_wordlen.dir/bench_fig7_wordlen.cpp.o.d"
  "bench_fig7_wordlen"
  "bench_fig7_wordlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_wordlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
