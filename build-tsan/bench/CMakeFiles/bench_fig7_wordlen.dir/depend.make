# Empty dependencies file for bench_fig7_wordlen.
# This may be replaced when dependencies are built.
