# Empty dependencies file for bench_fig1_device_iv.
# This may be replaced when dependencies are built.
