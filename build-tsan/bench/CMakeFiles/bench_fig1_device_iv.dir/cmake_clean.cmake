file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_device_iv.dir/bench_fig1_device_iv.cpp.o"
  "CMakeFiles/bench_fig1_device_iv.dir/bench_fig1_device_iv.cpp.o.d"
  "bench_fig1_device_iv"
  "bench_fig1_device_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_device_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
