file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_ops.dir/bench_tab3_ops.cpp.o"
  "CMakeFiles/bench_tab3_ops.dir/bench_tab3_ops.cpp.o.d"
  "bench_tab3_ops"
  "bench_tab3_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
