# Empty dependencies file for bench_tab3_ops.
# This may be replaced when dependencies are built.
