file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_ops.dir/bench_tab2_ops.cpp.o"
  "CMakeFiles/bench_tab2_ops.dir/bench_tab2_ops.cpp.o.d"
  "bench_tab2_ops"
  "bench_tab2_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
