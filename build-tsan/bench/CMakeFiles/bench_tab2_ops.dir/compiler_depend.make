# Empty compiler generated dependencies file for bench_tab2_ops.
# This may be replaced when dependencies are built.
