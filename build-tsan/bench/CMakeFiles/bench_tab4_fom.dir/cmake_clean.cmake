file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_fom.dir/bench_tab4_fom.cpp.o"
  "CMakeFiles/bench_tab4_fom.dir/bench_tab4_fom.cpp.o.d"
  "bench_tab4_fom"
  "bench_tab4_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
