# Empty dependencies file for bench_tab4_fom.
# This may be replaced when dependencies are built.
