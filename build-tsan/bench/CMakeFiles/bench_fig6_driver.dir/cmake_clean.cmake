file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_driver.dir/bench_fig6_driver.cpp.o"
  "CMakeFiles/bench_fig6_driver.dir/bench_fig6_driver.cpp.o.d"
  "bench_fig6_driver"
  "bench_fig6_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
