# Empty dependencies file for bench_fig6_driver.
# This may be replaced when dependencies are built.
