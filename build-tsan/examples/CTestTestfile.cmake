# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_classifier "/root/repo/build-tsan/examples/packet_classifier")
set_tests_properties(example_packet_classifier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pattern_store "/root/repo/build-tsan/examples/pattern_store")
set_tests_properties(example_pattern_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_tags "/root/repo/build-tsan/examples/cache_tags")
set_tests_properties(example_cache_tags PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_waveform_dump "/root/repo/build-tsan/examples/waveform_dump")
set_tests_properties(example_waveform_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_explorer "/root/repo/build-tsan/examples/design_explorer")
set_tests_properties(example_design_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
