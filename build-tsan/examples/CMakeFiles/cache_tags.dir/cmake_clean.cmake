file(REMOVE_RECURSE
  "CMakeFiles/cache_tags.dir/cache_tags.cpp.o"
  "CMakeFiles/cache_tags.dir/cache_tags.cpp.o.d"
  "cache_tags"
  "cache_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
