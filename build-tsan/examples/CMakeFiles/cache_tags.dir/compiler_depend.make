# Empty compiler generated dependencies file for cache_tags.
# This may be replaced when dependencies are built.
