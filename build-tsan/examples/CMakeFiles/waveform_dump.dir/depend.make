# Empty dependencies file for waveform_dump.
# This may be replaced when dependencies are built.
