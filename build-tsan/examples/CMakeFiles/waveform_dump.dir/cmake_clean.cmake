file(REMOVE_RECURSE
  "CMakeFiles/waveform_dump.dir/waveform_dump.cpp.o"
  "CMakeFiles/waveform_dump.dir/waveform_dump.cpp.o.d"
  "waveform_dump"
  "waveform_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
