# Empty dependencies file for pattern_store.
# This may be replaced when dependencies are built.
