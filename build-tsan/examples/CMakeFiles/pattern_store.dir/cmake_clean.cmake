file(REMOVE_RECURSE
  "CMakeFiles/pattern_store.dir/pattern_store.cpp.o"
  "CMakeFiles/pattern_store.dir/pattern_store.cpp.o.d"
  "pattern_store"
  "pattern_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
