#include "tcam/sense_amp.hpp"

#include "devices/tech14.hpp"

namespace fetcam::tcam {

using dev::Mosfet;
using dev::tech14::nfet;
using dev::tech14::pfet;
using spice::Circuit;
using spice::NodeId;
using spice::VoltageSource;
using spice::Waveform;

PrechargeHandles add_precharge(Circuit& ckt, NodeId ml,
                               const std::string& prefix, double vdd,
                               double w_mult, double temperature_k,
                               dev::tech14::Corner corner) {
  PrechargeHandles h;
  const NodeId vpre = ckt.node(prefix + ".vpre");
  const NodeId gate = ckt.node(prefix + ".preb");
  h.supply = &ckt.emplace<VoltageSource>("VPRE" + prefix, vpre, spice::kGround,
                                         Waveform::dc(vdd));
  h.gate = &ckt.emplace<VoltageSource>("VPREG" + prefix, gate, spice::kGround,
                                       Waveform::dc(0.0));
  h.pmos = &ckt.emplace<Mosfet>(
      "MPRE" + prefix, ml, gate, vpre, vpre,
      dev::tech14::at_corner(
          dev::tech14::at_temperature(pfet(w_mult), temperature_k), corner));
  return h;
}

SenseAmpHandles add_sense_amp(Circuit& ckt, NodeId ml,
                              const std::string& prefix, double vdd,
                              double temperature_k,
                              dev::tech14::Corner corner) {
  SenseAmpHandles h;
  const auto at_t = [&](dev::MosfetParams card) {
    return dev::tech14::at_corner(
        dev::tech14::at_temperature(card, temperature_k), corner);
  };
  const NodeId vsa = ckt.node(prefix + ".vsa");
  h.inv = ckt.node(prefix + ".sainv");
  h.out = ckt.node(prefix + ".saout");
  h.supply = &ckt.emplace<VoltageSource>("VSA" + prefix, vsa, spice::kGround,
                                         Waveform::dc(vdd));
  // Stage 1: skewed inverter (strong PFET, weak NFET) so the trip point sits
  // below VDD/2 and a partially-discharged ML does not flip it spuriously.
  ckt.emplace<Mosfet>("MSAP1" + prefix, h.inv, ml, vsa, vsa, at_t(pfet(3.0)));
  ckt.emplace<Mosfet>("MSAN1" + prefix, h.inv, ml, spice::kGround,
                      spice::kGround, at_t(nfet(1.0, 2.0)));
  // Stage 2: buffer back to match polarity.
  ckt.emplace<Mosfet>("MSAP2" + prefix, h.out, h.inv, vsa, vsa,
                      at_t(pfet(2.0)));
  ckt.emplace<Mosfet>("MSAN2" + prefix, h.out, h.inv, spice::kGround,
                      spice::kGround, at_t(nfet(1.0)));
  // Output load (downstream priority-encoder input).
  ckt.emplace<spice::Capacitor>("CSAOUT" + prefix, h.out, spice::kGround,
                                0.2e-15);
  return h;
}

}  // namespace fetcam::tcam
