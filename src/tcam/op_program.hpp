// Operation timing definitions and waveform-programming helpers for TCAM
// search and write simulations.
#pragma once

#include <utility>
#include <vector>

#include "spice/waveform.hpp"

namespace fetcam::tcam {

/// Search-phase timing.  One precharge, then one or two evaluation steps
/// (the 1.5T1Fe designs search cell1 in step 1 and cell2 in step 2; the ML
/// is precharged only once).  SeL_b rises at the same instant the pair
/// signals (SL, Wr/SL) switch to the step-2 query values: any dead time in
/// between would leave TP pulling SL_bar high with no cell selected, falsely
/// discharging matched MLs through TML.  `t_slack` is the settling margin
/// appended after each signal switch, which the paper's two-step latency
/// accounting also includes.
struct SearchTiming {
  double t_precharge = 250e-12;
  /// Evaluation window per step.  Sized to cover the worst-case resolution
  /// of the word under test; keeping it tight also bounds how long the
  /// 1.5T1Fe divider (and the X-state TML subthreshold leak) integrates —
  /// see the latency-sized windows used by eval::measure_worst_latency.
  double t_step = 400e-12;
  double t_slack = 50e-12;   ///< post-switch settling margin (step 2)
  double t_edge = 10e-12;    ///< rise/fall of search signals
  double t_tail = 100e-12;   ///< settle time after the last step

  double search_start() const { return t_precharge; }
  /// Step-2 signals (SeL_b and the pair-line switch) fire together here.
  double step2_start() const { return t_precharge + t_step; }
  double stop_after(int steps) const {
    return t_precharge + steps * t_step + (steps - 1) * t_slack + t_tail;
  }
};

/// Write-phase timing.  Phases run back to back: the 2FeFET designs need one
/// phase (complementary +/-Vw), the 1.5T1Fe designs three (erase all, program
/// '1's, program 'X's — the "three-step write" of Sec. III-B3).
struct WriteTiming {
  double t_pulse = 40e-9;
  double t_gap = 5e-9;
  double t_edge = 1e-9;

  double phase_start(int phase) const { return phase * (t_pulse + t_gap); }
  double phase_end(int phase) const { return phase_start(phase) + t_pulse; }
  double stop_after(int phases) const {
    return phases * (t_pulse + t_gap) + t_gap;
  }
};

/// A piecewise-constant level plan: (start_time, level) pairs, first entry at
/// t = 0.  Transitions ramp linearly over `t_edge`.
using LevelPlan = std::vector<std::pair<double, double>>;

/// Build the PWL waveform realizing a level plan.
spice::Waveform levels_waveform(const LevelPlan& plan, double t_edge);

}  // namespace fetcam::tcam
