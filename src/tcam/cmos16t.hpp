// 16T CMOS NOR-type TCAM word testbench (the paper's baseline, [25]).
//
// Search path is simulated at circuit level: per cell, two 2-NMOS compare
// stacks pull the ML down on a mismatch.  The SRAM storage nodes are modeled
// as static rails (the cell's 12 storage transistors do not move during a
// search); the X state disables both stacks (both SRAM bits low), matching
// the classic encoding.  Write energy is not modeled — Table IV reports it
// as N.A. for the 16T design as well.
#pragma once

#include "arch/area_model.hpp"
#include "devices/mosfet.hpp"
#include "tcam/word.hpp"

namespace fetcam::tcam {

class Cmos16tWord : public WordHarness {
 public:
  explicit Cmos16tWord(WordOptions opts);

  std::string design_name() const override;
  int search_steps() const override { return 1; }
  int write_phases() const override { return 0; }
  double cell_pitch() const override;

  void build_search(const SearchConfig& cfg) override;
  void build_write(const WriteConfig& cfg) override;  // throws: not modeled
  arch::TernaryWord read_stored() const override { return stored_; }

 private:
  double search_line_cap_per_cell() const;

  arch::TernaryWord stored_;
};

}  // namespace fetcam::tcam
