#include "tcam/parasitics.hpp"

namespace fetcam::tcam {

WireSegment wire_for_pitch(const WireTech& tech, double cell_pitch_m) {
  const double um = cell_pitch_m * 1e6;
  return {.resistance = tech.r_per_um * um,
          .capacitance = tech.c_per_um * um};
}

}  // namespace fetcam::tcam
