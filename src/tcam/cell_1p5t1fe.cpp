#include "tcam/cell_1p5t1fe.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

#include "devices/tech14.hpp"

namespace fetcam::tcam {

using arch::Ternary;
using dev::FeFet;
using dev::FeState;
using dev::Mosfet;
using spice::Capacitor;
using spice::kGround;
using spice::NodeId;
using spice::VoltageSource;
using spice::Waveform;

OnePointFiveParams apply_tuning(Flavor flavor, OnePointFiveParams p,
                                const DeviceTuning& t,
                                const dev::FeFetParams& tuned_fe) {
  p.tn_w *= t.control_w_scale;
  p.tp_w *= t.control_w_scale;
  p.tml_vth_sg += t.sense_trim_v;
  p.tml_vth_dg += t.sense_trim_v;
  if (t.t_fe_scale != 1.0) {
    // Keep the X level at the same FRACTIONAL window position: the window
    // scales around the MVT midpoint vth0, so the offset scales with it.
    const double vth0 = tuned_fe.mos.vth0;
    double& mvt = flavor == Flavor::kSg ? p.mvt_vth_sg : p.mvt_vth_dg;
    mvt = vth0 + (mvt - vth0) * t.t_fe_scale;
  }
  return p;
}

OnePointFiveWord::OnePointFiveWord(Flavor flavor, WordOptions opts,
                                   OnePointFiveParams params)
    : WordHarness(opts),
      flavor_(flavor),
      params_(params),
      fe_params_(dev::tech14::fefet_at_corner(
          dev::tech14::fefet_at_temperature(
              dev::scale_fe_thickness(flavor == Flavor::kSg
                                          ? dev::sg_fefet_params()
                                          : dev::dg_fefet_params(),
                                      opts.tuning.t_fe_scale),
              opts.temperature_k),
          opts.corner)) {
  if (opts.n_bits % 2 != 0) {
    throw std::invalid_argument("1.5T1Fe word length must be even");
  }
  params_ = apply_tuning(flavor, params_, opts.tuning, fe_params_);
}

std::string OnePointFiveWord::design_name() const {
  return arch::design_name(area_design());
}

double OnePointFiveWord::cell_pitch() const {
  return arch::cell_pitch_m(area_design());
}

double OnePointFiveWord::select_voltage() const {
  return flavor_ == Flavor::kSg ? params_.v_sel_sg : params_.v_sel_dg;
}

double OnePointFiveWord::mvt_vth_target() const {
  return flavor_ == Flavor::kSg ? params_.mvt_vth_sg : params_.mvt_vth_dg;
}

double OnePointFiveWord::vm() const {
  return fe_params_.write_voltage_for_vth(mvt_vth_target());
}

double OnePointFiveWord::search_line_cap_per_cell() const {
  // Column lines serve every row's search simultaneously; the fair one-row
  // share is the wire over one vertical cell pitch (this row's device loads
  // are already present as devices).
  return wire_for_pitch(opts_.wire, cell_pitch()).capacitance;
}

double OnePointFiveWord::write_line_cap_per_cell() const {
  // Write energy is reported cell-level (paper Table IV): wire share only.
  return wire_for_pitch(opts_.wire, cell_pitch()).capacitance;
}

void OnePointFiveWord::place_pair(int p, const PairNodes& nodes,
                                  NodeId sela, NodeId selb, NodeId vdd_rail,
                                  NodeId ml_tap,
                                  const arch::TernaryWord& stored) {
  const int c1 = 2 * p;
  const int c2 = 2 * p + 1;
  const std::string sp = std::to_string(p);

  auto& f1 = ckt_.emplace<FeFet>("FE" + std::to_string(c1), nodes.sl,
                                 nodes.bl1, nodes.slb, sela, fe_params_);
  auto& f2 = ckt_.emplace<FeFet>("FE" + std::to_string(c2), nodes.sl,
                                 nodes.bl2, nodes.slb, selb, fe_params_);
  const auto set = [&](FeFet& f, Ternary d) {
    switch (d) {
      case Ternary::kZero:
        f.set_state(FeState::kHvt, 0.0);
        break;
      case Ternary::kOne:
        f.set_state(FeState::kLvt, 0.0);
        break;
      case Ternary::kX:
        f.set_state(FeState::kMvt, mvt_vth_target());
        break;
    }
  };
  set(f1, stored[static_cast<std::size_t>(c1)]);
  set(f2, stored[static_cast<std::size_t>(c2)]);
  fefets_[static_cast<std::size_t>(c1)] = &f1;
  fefets_[static_cast<std::size_t>(c2)] = &f2;

  const auto env = [&](dev::MosfetParams card) {
    return dev::tech14::at_corner(
        dev::tech14::at_temperature(card, opts_.temperature_k),
        opts_.corner);
  };
  ckt_.emplace<Mosfet>("TN" + sp, nodes.slb, nodes.wrsl, kGround, kGround,
                       env(dev::tech14::nfet(params_.tn_w, params_.tn_l)));
  ckt_.emplace<Mosfet>("TP" + sp, nodes.slb, nodes.wrsl, vdd_rail, vdd_rail,
                       env(dev::tech14::pfet(params_.tp_w, params_.tp_l)));
  dev::MosfetParams tml = dev::tech14::nfet(params_.tml_w, params_.tml_l);
  tml.vth0 =
      flavor_ == Flavor::kSg ? params_.tml_vth_sg : params_.tml_vth_dg;
  ckt_.emplace<Mosfet>("TML" + sp, ml_tap, nodes.slb, kGround, kGround,
                       env(tml));
}

void OnePointFiveWord::build_search(const SearchConfig& cfg) {
  assert_unbuilt();
  const int n = opts_.n_bits;
  if (static_cast<int>(cfg.stored.size()) != n ||
      static_cast<int>(cfg.query.size()) != n) {
    throw std::invalid_argument("stored/query size must equal n_bits");
  }
  const int steps = cfg.steps == 0 ? 2 : cfg.steps;
  if (steps < 1 || steps > 2) {
    throw std::invalid_argument("1.5T1Fe search runs 1 or 2 steps");
  }
  const SearchTiming& tm = cfg.timing;
  const double vsel = select_voltage();
  const double vdd = opts_.vdd;
  const int pairs = n / 2;

  const auto ml = build_match_line(pairs, 2);

  // TP pullup rail — part of the voltage-divider ("search signals") energy.
  const NodeId vdd_rail = ckt_.node("slrail");
  ckt_.emplace<VoltageSource>("VSLRAIL", vdd_rail, kGround, Waveform::dc(vdd));

  // --- Select lines --------------------------------------------------------
  // DG: row-wise SeL_a / SeL_b driving the back gates (Fig. 4a timing).
  // SG: the merged BL/SeL front-gate lines play this role per column parity.
  const LevelPlan plan_sela{{0.0, 0.0},
                            {tm.search_start(), vsel},
                            {tm.search_start() + tm.t_step, 0.0}};
  const LevelPlan plan_selb_on{{0.0, 0.0}, {tm.step2_start(), vsel}};
  const LevelPlan plan_off{{0.0, 0.0}};

  NodeId sela = kGround;
  NodeId selb = kGround;
  std::vector<NodeId> bl1_nodes(static_cast<std::size_t>(pairs));
  std::vector<NodeId> bl2_nodes(static_cast<std::size_t>(pairs));

  const double row_wire_cap =
      wire_for_pitch(opts_.wire, cell_pitch()).capacitance * n;

  if (flavor_ == Flavor::kDg) {
    sela = ckt_.node("sela");
    selb = ckt_.node("selb");
    ckt_.emplace<VoltageSource>("VSEL.a", sela, kGround,
                                levels_waveform(plan_sela, tm.t_edge));
    ckt_.emplace<VoltageSource>(
        "VSEL.b", selb, kGround,
        levels_waveform(steps == 2 ? plan_selb_on : plan_off, tm.t_edge));
    ckt_.emplace<Capacitor>("CSEL.a", sela, kGround, row_wire_cap);
    ckt_.emplace<Capacitor>("CSEL.b", selb, kGround, row_wire_cap);

    // Column BLs carry the V_b bias while searching '0' (Tab. II); grouped
    // by query bit.
    NodeId bl_q[2];
    int bl_count[2] = {0, 0};
    for (const auto qb : cfg.query) ++bl_count[qb ? 1 : 0];
    for (int b = 0; b < 2; ++b) {
      bl_q[b] = ckt_.node("bl.q" + std::to_string(b));
      const LevelPlan bias{{0.0, 0.0}, {tm.search_start(), params_.v_b}};
      ckt_.emplace<VoltageSource>(
          "VBL.q" + std::to_string(b), bl_q[b], kGround,
          levels_waveform(b == 0 ? bias : plan_off, tm.t_edge));
      if (bl_count[b] > 0) {
        ckt_.emplace<Capacitor>("CBL.q" + std::to_string(b), bl_q[b], kGround,
                                write_line_cap_per_cell() * bl_count[b]);
      }
    }
    for (int p = 0; p < pairs; ++p) {
      bl1_nodes[static_cast<std::size_t>(p)] =
          bl_q[cfg.query[static_cast<std::size_t>(2 * p)] ? 1 : 0];
      bl2_nodes[static_cast<std::size_t>(p)] =
          bl_q[cfg.query[static_cast<std::size_t>(2 * p + 1)] ? 1 : 0];
    }
  } else {
    // SG: BL/SeL merged; V_SeL pulses on cell1 columns in step 1 and cell2
    // columns in step 2, independent of the query value (Tab. III).
    const NodeId bla = ckt_.node("blsel.a");
    const NodeId blb = ckt_.node("blsel.b");
    ckt_.emplace<VoltageSource>("VSEL.a", bla, kGround,
                                levels_waveform(plan_sela, tm.t_edge));
    ckt_.emplace<VoltageSource>(
        "VSEL.b", blb, kGround,
        levels_waveform(steps == 2 ? plan_selb_on : plan_off, tm.t_edge));
    const double col_cap = write_line_cap_per_cell() * pairs;
    ckt_.emplace<Capacitor>("CSEL.a", bla, kGround, col_cap);
    ckt_.emplace<Capacitor>("CSEL.b", blb, kGround, col_cap);
    for (int p = 0; p < pairs; ++p) {
      bl1_nodes[static_cast<std::size_t>(p)] = bla;
      bl2_nodes[static_cast<std::size_t>(p)] = blb;
    }
  }

  // --- Pair lines SL and Wr/SL, grouped by (q1, q2) ------------------------
  // Searching '0' needs (VDD, VDD); searching '1' needs (0, 0) (Tab. II).
  // Wr/SL idles at VDD so TN holds SL_bar low (TML off) during precharge.
  const auto level_for = [&](bool q) { return q ? 0.0 : vdd; };
  NodeId sl_g[2][2], wrsl_g[2][2];
  int pair_count[2][2] = {{0, 0}, {0, 0}};
  for (int p = 0; p < pairs; ++p) {
    const int q1 = cfg.query[static_cast<std::size_t>(2 * p)] ? 1 : 0;
    const int q2 = cfg.query[static_cast<std::size_t>(2 * p + 1)] ? 1 : 0;
    ++pair_count[q1][q2];
  }
  for (int q1 = 0; q1 < 2; ++q1) {
    for (int q2 = 0; q2 < 2; ++q2) {
      if (pair_count[q1][q2] == 0) {
        sl_g[q1][q2] = kGround;
        wrsl_g[q1][q2] = kGround;
        continue;
      }
      const std::string tag = std::to_string(q1) + std::to_string(q2);
      sl_g[q1][q2] = ckt_.node("sl.q" + tag);
      wrsl_g[q1][q2] = ckt_.node("wrsl.q" + tag);
      LevelPlan sl_plan{{0.0, 0.0}, {tm.search_start(), level_for(q1)}};
      LevelPlan wrsl_plan{{0.0, vdd}, {tm.search_start(), level_for(q1)}};
      if (steps == 2 && q1 != q2) {
        sl_plan.push_back({tm.step2_start(), level_for(q2)});
        wrsl_plan.push_back({tm.step2_start(), level_for(q2)});
      }
      ckt_.emplace<VoltageSource>("VSL.q" + tag, sl_g[q1][q2], kGround,
                                  levels_waveform(sl_plan, tm.t_edge));
      ckt_.emplace<VoltageSource>("VWRSL.q" + tag, wrsl_g[q1][q2], kGround,
                                  levels_waveform(wrsl_plan, tm.t_edge));
      const double col_cap =
          search_line_cap_per_cell() * 2 * pair_count[q1][q2];
      ckt_.emplace<Capacitor>("CSL.q" + tag, sl_g[q1][q2], kGround, col_cap);
      ckt_.emplace<Capacitor>("CWRSL.q" + tag, wrsl_g[q1][q2], kGround,
                              col_cap);
    }
  }

  // --- SL_bar nodes, grouped by the full pair signature --------------------
  // Pairs with identical (stored1, q1, stored2, q2) see identical divider
  // waveforms; sharing the node keeps voltages exact while the per-pair
  // devices keep aggregate currents exact.
  std::map<std::tuple<int, int, int, int>, NodeId> slb_groups;
  fefets_.assign(static_cast<std::size_t>(n), nullptr);
  slb_of_pair_.assign(static_cast<std::size_t>(pairs), -1);
  for (int p = 0; p < pairs; ++p) {
    const int c1 = 2 * p;
    const int c2 = 2 * p + 1;
    const int q1 = cfg.query[static_cast<std::size_t>(c1)] ? 1 : 0;
    const int q2 = cfg.query[static_cast<std::size_t>(c2)] ? 1 : 0;
    const auto key = std::make_tuple(
        static_cast<int>(cfg.stored[static_cast<std::size_t>(c1)]), q1,
        static_cast<int>(cfg.stored[static_cast<std::size_t>(c2)]), q2);
    auto it = slb_groups.find(key);
    if (it == slb_groups.end()) {
      const NodeId slb =
          ckt_.node("slb.g" + std::to_string(slb_groups.size()));
      it = slb_groups.emplace(key, slb).first;
    }
    PairNodes nodes;
    nodes.sl = sl_g[q1][q2];
    nodes.wrsl = wrsl_g[q1][q2];
    nodes.slb = it->second;
    nodes.bl1 = bl1_nodes[static_cast<std::size_t>(p)];
    nodes.bl2 = bl2_nodes[static_cast<std::size_t>(p)];
    slb_of_pair_[static_cast<std::size_t>(p)] = nodes.slb;
    place_pair(p, nodes, sela, selb, vdd_rail,
               ml[static_cast<std::size_t>(p)], cfg.stored);
  }

  program_precharge(tm);
  // Both steps' window is always simulated so 1-step (early-terminated) and
  // 2-step energies integrate over the same operation time.
  mark_built(tm.stop_after(2), 2e-12);
}

void OnePointFiveWord::build_write(const WriteConfig& cfg) {
  assert_unbuilt();
  const int n = opts_.n_bits;
  if (static_cast<int>(cfg.data.size()) != n) {
    throw std::invalid_argument("data size must equal n_bits");
  }
  arch::TernaryWord initial = cfg.initial;
  if (initial.empty()) {
    initial.assign(static_cast<std::size_t>(n), Ternary::kZero);
  }
  const WriteTiming& tm = cfg.timing;
  const double vdd = opts_.vdd;
  const double vw = fe_params_.vw();
  const int pairs = n / 2;

  const auto ml = build_match_line(pairs, 2);
  // ML parked low during writes.
  pre_.gate->set_waveform(Waveform::dc(vdd));

  const NodeId vdd_rail = ckt_.node("slrail");
  ckt_.emplace<VoltageSource>("VSLRAIL", vdd_rail, kGround, Waveform::dc(vdd));

  // Wr/SL = VDD (TN grounds SL_bar), SL = 0: single shared nodes.
  const NodeId wrsl = ckt_.node("wrsl");
  const NodeId sl = ckt_.node("sl");
  ckt_.emplace<VoltageSource>("VWRSL", wrsl, kGround, Waveform::dc(vdd));
  ckt_.emplace<VoltageSource>("VSL", sl, kGround, Waveform::dc(0.0));

  // Select lines grounded during write.
  NodeId sela = kGround, selb = kGround;
  if (flavor_ == Flavor::kDg) {
    sela = ckt_.node("sela");
    selb = ckt_.node("selb");
    ckt_.emplace<VoltageSource>("VSEL.a", sela, kGround, Waveform::dc(0.0));
    ckt_.emplace<VoltageSource>("VSEL.b", selb, kGround, Waveform::dc(0.0));
  }

  // BL groups by data digit; three phases: erase all (-Vw), program '1's
  // (+Vw), program 'X's (V_m).
  const double v_mvt = vm();
  NodeId bl_d[3];
  int count[3] = {0, 0, 0};
  for (const auto d : cfg.data) ++count[static_cast<int>(d)];
  for (int d = 0; d < 3; ++d) {
    if (count[d] == 0) {
      bl_d[d] = kGround;
      continue;
    }
    bl_d[d] = ckt_.node("bl.d" + std::to_string(d));
    LevelPlan plan{{0.0, 0.0},
                   {tm.phase_start(0) + tm.t_gap, -vw},
                   {tm.phase_end(0), 0.0}};
    if (d == static_cast<int>(Ternary::kOne)) {
      plan.push_back({tm.phase_start(1) + tm.t_gap, vw});
      plan.push_back({tm.phase_end(1), 0.0});
    } else if (d == static_cast<int>(Ternary::kX)) {
      plan.push_back({tm.phase_start(2) + tm.t_gap, v_mvt});
      plan.push_back({tm.phase_end(2), 0.0});
    }
    ckt_.emplace<VoltageSource>("VBL.d" + std::to_string(d), bl_d[d], kGround,
                                levels_waveform(plan, tm.t_edge));
    ckt_.emplace<Capacitor>("CBL.d" + std::to_string(d), bl_d[d], kGround,
                            write_line_cap_per_cell() * count[d]);
  }

  // SL_bar shared per initial-state pair signature (drive is uniform).
  std::map<std::tuple<int, int>, NodeId> slb_groups;
  fefets_.assign(static_cast<std::size_t>(n), nullptr);
  slb_of_pair_.assign(static_cast<std::size_t>(pairs), -1);
  for (int p = 0; p < pairs; ++p) {
    const int c1 = 2 * p;
    const int c2 = 2 * p + 1;
    const auto key = std::make_tuple(
        static_cast<int>(initial[static_cast<std::size_t>(c1)]) * 3 +
            static_cast<int>(cfg.data[static_cast<std::size_t>(c1)]),
        static_cast<int>(initial[static_cast<std::size_t>(c2)]) * 3 +
            static_cast<int>(cfg.data[static_cast<std::size_t>(c2)]));
    auto it = slb_groups.find(key);
    if (it == slb_groups.end()) {
      const NodeId slb =
          ckt_.node("slb.g" + std::to_string(slb_groups.size()));
      it = slb_groups.emplace(key, slb).first;
    }
    PairNodes nodes;
    nodes.sl = sl;
    nodes.wrsl = wrsl;
    nodes.slb = it->second;
    nodes.bl1 = bl_d[static_cast<int>(cfg.data[static_cast<std::size_t>(c1)])];
    nodes.bl2 = bl_d[static_cast<int>(cfg.data[static_cast<std::size_t>(c2)])];
    slb_of_pair_[static_cast<std::size_t>(p)] = nodes.slb;
    place_pair(p, nodes, sela, selb, vdd_rail,
               ml[static_cast<std::size_t>(p)], initial);
  }

  mark_built(tm.stop_after(3), 0.25e-9);
}

arch::TernaryWord OnePointFiveWord::read_stored() const {
  const double vth_lvt = fe_params_.vth_for(1.0);
  const double vth_hvt = fe_params_.vth_for(-1.0);
  const double vth_mvt = mvt_vth_target();
  arch::TernaryWord out;
  out.reserve(fefets_.size());
  for (const auto* f : fefets_) {
    const double vth = f->threshold_voltage();
    if (vth < 0.5 * (vth_lvt + vth_mvt)) {
      out.push_back(Ternary::kOne);
    } else if (vth > 0.5 * (vth_hvt + vth_mvt)) {
      out.push_back(Ternary::kZero);
    } else {
      out.push_back(Ternary::kX);
    }
  }
  return out;
}

}  // namespace fetcam::tcam
