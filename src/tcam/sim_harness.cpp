#include "tcam/sim_harness.hpp"

#include <stdexcept>

#include "spice/measure.hpp"
#include "tcam/cell_1p5t1fe.hpp"
#include "tcam/cell_2fefet.hpp"
#include "tcam/cmos16t.hpp"

namespace fetcam::tcam {

std::unique_ptr<WordHarness> make_word_harness(arch::TcamDesign design,
                                               const WordOptions& opts) {
  switch (design) {
    case arch::TcamDesign::kCmos16T:
      return std::make_unique<Cmos16tWord>(opts);
    case arch::TcamDesign::k2SgFefet:
      return std::make_unique<TwoFefetWord>(Flavor::kSg, opts);
    case arch::TcamDesign::k2DgFefet:
      return std::make_unique<TwoFefetWord>(Flavor::kDg, opts);
    case arch::TcamDesign::k1p5SgFe:
      return std::make_unique<OnePointFiveWord>(Flavor::kSg, opts);
    case arch::TcamDesign::k1p5DgFe:
      return std::make_unique<OnePointFiveWord>(Flavor::kDg, opts);
  }
  throw std::invalid_argument("unknown design");
}

namespace {

EnergyBreakdown bucket_energy(const spice::Trace& trace, double t0,
                              double t1) {
  EnergyBreakdown e;
  e.precharge = spice::total_source_energy(trace, "VPRE", t0, t1);
  e.sense_amp = spice::total_source_energy(trace, "VSA", t0, t1);
  const double all = spice::total_source_energy(trace, "", t0, t1);
  e.signals = all - e.precharge - e.sense_amp;
  return e;
}

}  // namespace

SearchMeasurement measure_search(arch::TcamDesign design,
                                 const WordOptions& opts,
                                 const SearchConfig& cfg,
                                 spice::Trace* trace_out) {
  SearchMeasurement m;
  auto harness = make_word_harness(design, opts);
  harness->build_search(cfg);

  m.expected_match = arch::word_matches(cfg.stored, cfg.query);
  // An early-terminated (1-step) search on a 2-step design only inspects the
  // first cells of each pair.
  const int steps = cfg.steps == 0 ? harness->search_steps() : cfg.steps;
  if (steps < harness->search_steps()) {
    bool match = true;
    for (std::size_t i = 0; i < cfg.stored.size(); i += 2) {
      if (!arch::ternary_matches(cfg.stored[i], cfg.query[i] != 0)) {
        match = false;
      }
    }
    m.expected_match = match;
  }

  spice::TransientOptions topts;
  topts.t_stop = harness->t_stop();
  topts.dt = harness->suggested_dt();
  auto res = run_transient(harness->circuit(), topts);
  m.newton_iterations = res.total_newton_iterations;
  if (!res.ok) {
    m.error = res.error;
    return m;
  }

  const auto& trace = res.trace;
  const auto times = trace.times();
  const std::string ml_name =
      harness->circuit().node_name(harness->ml_sense_node());
  const std::string sa_name =
      harness->circuit().node_name(harness->sa_out_node());
  const auto v_ml = trace.voltage(ml_name);
  const auto v_sa = trace.voltage(sa_name);
  const double t_search = cfg.timing.search_start();
  const double half = 0.5 * opts.vdd;

  // The SA verdict is latched at the end of the last evaluation window
  // (clocked sensing), not at the end of the trace: ML droop beyond the
  // latch instant is architecturally irrelevant.
  const double t_latch =
      cfg.timing.stop_after(steps) - cfg.timing.t_tail;
  m.measured_match =
      spice::sample_at(times, v_sa, std::min(t_latch, times.back())) > half;
  const auto ml_cross =
      spice::cross_time(times, v_ml, half, spice::Edge::kFalling, t_search);
  const auto sa_cross =
      spice::cross_time(times, v_sa, half, spice::Edge::kFalling, t_search);
  if (ml_cross) m.ml_fall_time = *ml_cross - t_search;
  if (sa_cross) m.latency = *sa_cross - t_search;

  m.energy = bucket_energy(trace, 0.0, harness->t_stop());
  m.energy_per_cell = m.energy.total() / harness->n_bits();
  m.ok = true;
  if (trace_out != nullptr) *trace_out = trace;
  return m;
}

WriteMeasurement measure_write(arch::TcamDesign design, const WordOptions& opts,
                               const WriteConfig& cfg) {
  WriteMeasurement m;
  auto harness = make_word_harness(design, opts);
  harness->build_write(cfg);

  spice::TransientOptions topts;
  topts.t_stop = harness->t_stop();
  topts.dt = harness->suggested_dt();
  const auto res = run_transient(harness->circuit(), topts);
  if (!res.ok) {
    m.error = res.error;
    return m;
  }

  m.final_state = harness->read_stored();
  m.data_ok = m.final_state == cfg.data;
  // Write energy: the write-line drivers (BL groups for DG / 1.5T1Fe, SL
  // groups for 2SG carry both names; bucket everything that is not
  // precharge/SA/idle rails).
  const auto& trace = res.trace;
  const double all = spice::total_source_energy(trace, "", 0.0, topts.t_stop);
  const double pre = spice::total_source_energy(trace, "VPRE", 0.0, topts.t_stop);
  const double sa = spice::total_source_energy(trace, "VSA", 0.0, topts.t_stop);
  m.energy = all - pre - sa;
  m.energy_per_cell = m.energy / harness->n_bits();
  m.ok = true;
  return m;
}

}  // namespace fetcam::tcam
