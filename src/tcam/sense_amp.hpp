// Match-line precharge and sense-amplifier subcircuits.
//
// Energy bucketing: each subcircuit gets its own supply source so the
// measurement layer can split search energy into ML-precharge, SA, and
// search-signal components the way Table IV discusses them
// ("VPRE<prefix>", "VSA<prefix>" name prefixes).
#pragma once

#include <string>

#include "devices/tech14.hpp"
#include "spice/elements.hpp"

namespace fetcam::tcam {

struct PrechargeHandles {
  spice::VoltageSource* supply = nullptr;  ///< "VPRE..." — precharge energy
  spice::VoltageSource* gate = nullptr;    ///< PMOS gate drive ("VPREG...")
  dev::Mosfet* pmos = nullptr;
};

/// Attach a PMOS precharge device to `ml`.  The gate waveform (low while
/// precharging, high to release) is programmed later via `gate`.
PrechargeHandles add_precharge(
    spice::Circuit& ckt, spice::NodeId ml, const std::string& prefix,
    double vdd, double w_mult = 4.0, double temperature_k = 300.0,
    dev::tech14::Corner corner = dev::tech14::Corner::kTypical);

struct SenseAmpHandles {
  spice::VoltageSource* supply = nullptr;  ///< "VSA..." — SA energy
  spice::NodeId out = -1;                  ///< buffered match output
  spice::NodeId inv = -1;                  ///< inverted ML (internal)
};

/// Two-inverter sense chain on the ML: first stage skewed low so the output
/// resolves as soon as the ML falls below ~0.4 * VDD; second stage restores
/// polarity (out high = match, matching paper Fig. 4c).
SenseAmpHandles add_sense_amp(
    spice::Circuit& ckt, spice::NodeId ml, const std::string& prefix,
    double vdd, double temperature_k = 300.0,
    dev::tech14::Corner corner = dev::tech14::Corner::kTypical);

}  // namespace fetcam::tcam
