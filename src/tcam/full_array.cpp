#include "tcam/full_array.hpp"

#include <stdexcept>

#include "devices/tech14.hpp"
#include "spice/measure.hpp"
#include "tcam/sense_amp.hpp"

namespace fetcam::tcam {

using arch::Ternary;
using dev::FeFet;
using dev::FeState;
using dev::Mosfet;
using spice::Capacitor;
using spice::kGround;
using spice::NodeId;
using spice::Resistor;
using spice::VoltageSource;
using spice::Waveform;

OnePointFiveArray::OnePointFiveArray(Flavor flavor, FullArrayOptions opts)
    : flavor_(flavor),
      opts_(opts),
      fe_params_(flavor == Flavor::kSg ? dev::sg_fefet_params()
                                       : dev::dg_fefet_params()) {
  if (opts.cols % 2 != 0) {
    throw std::invalid_argument("full array needs an even word length");
  }
  if (opts.rows < 1 || opts.cols < 2) {
    throw std::invalid_argument("array too small");
  }
}

void OnePointFiveArray::build_search(
    const std::vector<arch::TernaryWord>& stored, const arch::BitWord& query,
    const SearchTiming& tm) {
  if (built_) throw std::logic_error("OnePointFiveArray is one-shot");
  built_ = true;
  const int m = opts_.rows;
  const int n = opts_.cols;
  const int pairs = n / 2;
  if (static_cast<int>(stored.size()) != m ||
      static_cast<int>(query.size()) != n) {
    throw std::invalid_argument("stored/query shape mismatch");
  }
  const double vdd = opts_.vdd;
  const OnePointFiveParams& p = opts_.cell;
  const double vsel =
      flavor_ == Flavor::kSg ? p.v_sel_sg : p.v_sel_dg;
  const double pitch = arch::cell_pitch_m(
      flavor_ == Flavor::kSg ? arch::TcamDesign::k1p5SgFe
                             : arch::TcamDesign::k1p5DgFe);
  const WireSegment seg = wire_for_pitch(opts_.wire, 2.0 * pitch);
  const double mvt = flavor_ == Flavor::kSg ? p.mvt_vth_sg : p.mvt_vth_dg;

  const NodeId vdd_rail = ckt_.node("slrail");
  ckt_.emplace<VoltageSource>("VSLRAIL", vdd_rail, kGround,
                              Waveform::dc(vdd));

  // --- select lines (shared waveform; row wire caps lumped) ----------------
  const LevelPlan plan_sela{{0.0, 0.0},
                            {tm.search_start(), vsel},
                            {tm.step2_start(), 0.0}};
  const LevelPlan plan_selb{{0.0, 0.0}, {tm.step2_start(), vsel}};
  NodeId sela = kGround, selb = kGround;
  if (flavor_ == Flavor::kDg) {
    sela = ckt_.node("sela");
    selb = ckt_.node("selb");
    ckt_.emplace<VoltageSource>("VSEL.a", sela, kGround,
                                levels_waveform(plan_sela, tm.t_edge));
    ckt_.emplace<VoltageSource>("VSEL.b", selb, kGround,
                                levels_waveform(plan_selb, tm.t_edge));
    const double row_wire = wire_for_pitch(opts_.wire, pitch).capacitance *
                            n * m;
    ckt_.emplace<Capacitor>("CSEL.a", sela, kGround, row_wire);
    ckt_.emplace<Capacitor>("CSEL.b", selb, kGround, row_wire);
  }

  // --- BL groups by query bit ----------------------------------------------
  NodeId bl_q[2] = {kGround, kGround};
  std::vector<NodeId> bl_of_col(static_cast<std::size_t>(n));
  if (flavor_ == Flavor::kDg) {
    for (int b = 0; b < 2; ++b) {
      bl_q[b] = ckt_.node("bl.q" + std::to_string(b));
      const LevelPlan bias{{0.0, 0.0}, {tm.search_start(), p.v_b}};
      ckt_.emplace<VoltageSource>(
          "VBL.q" + std::to_string(b), bl_q[b], kGround,
          levels_waveform(b == 0 ? bias : LevelPlan{{0.0, 0.0}}, tm.t_edge));
    }
    for (int c = 0; c < n; ++c) {
      bl_of_col[static_cast<std::size_t>(c)] =
          bl_q[query[static_cast<std::size_t>(c)] ? 1 : 0];
    }
  } else {
    // SG: merged BL/SeL per column parity.
    const NodeId bla = ckt_.node("blsel.a");
    const NodeId blb = ckt_.node("blsel.b");
    ckt_.emplace<VoltageSource>("VSEL.a", bla, kGround,
                                levels_waveform(plan_sela, tm.t_edge));
    ckt_.emplace<VoltageSource>("VSEL.b", blb, kGround,
                                levels_waveform(plan_selb, tm.t_edge));
    for (int c = 0; c < n; ++c) {
      bl_of_col[static_cast<std::size_t>(c)] = (c % 2 == 0) ? bla : blb;
    }
  }

  // --- per-pair-column SL / Wr/SL lines, shared by every row ---------------
  const auto level_for = [&](bool q) { return q ? 0.0 : vdd; };
  std::vector<NodeId> sl_col(static_cast<std::size_t>(pairs));
  std::vector<NodeId> wrsl_col(static_cast<std::size_t>(pairs));
  for (int pc = 0; pc < pairs; ++pc) {
    const bool q1 = query[static_cast<std::size_t>(2 * pc)] != 0;
    const bool q2 = query[static_cast<std::size_t>(2 * pc + 1)] != 0;
    const std::string sp = std::to_string(pc);
    sl_col[static_cast<std::size_t>(pc)] = ckt_.node("sl." + sp);
    wrsl_col[static_cast<std::size_t>(pc)] = ckt_.node("wrsl." + sp);
    LevelPlan sl_plan{{0.0, 0.0}, {tm.search_start(), level_for(q1)}};
    LevelPlan wrsl_plan{{0.0, vdd}, {tm.search_start(), level_for(q1)}};
    if (q1 != q2) {
      sl_plan.push_back({tm.step2_start(), level_for(q2)});
      wrsl_plan.push_back({tm.step2_start(), level_for(q2)});
    }
    ckt_.emplace<VoltageSource>("VSL." + sp,
                                sl_col[static_cast<std::size_t>(pc)], kGround,
                                levels_waveform(sl_plan, tm.t_edge));
    ckt_.emplace<VoltageSource>(
        "VWRSL." + sp, wrsl_col[static_cast<std::size_t>(pc)], kGround,
        levels_waveform(wrsl_plan, tm.t_edge));
    // Column wire (runs the full array height).
    const double col_wire =
        wire_for_pitch(opts_.wire, pitch).capacitance * m;
    ckt_.emplace<Capacitor>("CSL." + sp,
                            sl_col[static_cast<std::size_t>(pc)], kGround,
                            col_wire);
    ckt_.emplace<Capacitor>("CWRSL." + sp,
                            wrsl_col[static_cast<std::size_t>(pc)], kGround,
                            col_wire);
  }

  // --- rows -----------------------------------------------------------------
  ml_sense_.assign(static_cast<std::size_t>(m), -1);
  sa_out_.assign(static_cast<std::size_t>(m), -1);
  dev::MosfetParams tml = dev::tech14::nfet(p.tml_w, p.tml_l);
  tml.vth0 = flavor_ == Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg;

  for (int r = 0; r < m; ++r) {
    const std::string sr = std::to_string(r);
    // Match line: one tap per pair.
    NodeId prev = ckt_.node("ml" + sr + "_0");
    ckt_.emplace<Capacitor>("CML" + sr + "_0", prev, kGround,
                            seg.capacitance);
    std::vector<NodeId> taps{prev};
    for (int k = 1; k < pairs; ++k) {
      const NodeId nn = ckt_.node("ml" + sr + "_" + std::to_string(k));
      ckt_.emplace<Resistor>("RML" + sr + "_" + std::to_string(k), prev, nn,
                             seg.resistance);
      ckt_.emplace<Capacitor>("CML" + sr + "_" + std::to_string(k), nn,
                              kGround, seg.capacitance);
      taps.push_back(nn);
      prev = nn;
    }
    auto pre = add_precharge(ckt_, taps.front(), "r" + sr, vdd);
    pre.gate->set_waveform(levels_waveform(
        {{0.0, vdd}, {10e-12, 0.0}, {tm.search_start(), vdd}}, tm.t_edge));
    const auto sa = add_sense_amp(ckt_, taps.back(), "r" + sr, vdd);
    ml_sense_[static_cast<std::size_t>(r)] = taps.back();
    sa_out_[static_cast<std::size_t>(r)] = sa.out;

    for (int pc = 0; pc < pairs; ++pc) {
      const int c1 = 2 * pc;
      const int c2 = 2 * pc + 1;
      const std::string sp = sr + "_" + std::to_string(pc);
      const NodeId slb = ckt_.node("slb." + sp);
      auto& f1 = ckt_.emplace<FeFet>(
          "FE" + sr + "_" + std::to_string(c1),
          sl_col[static_cast<std::size_t>(pc)],
          bl_of_col[static_cast<std::size_t>(c1)], slb, sela, fe_params_);
      auto& f2 = ckt_.emplace<FeFet>(
          "FE" + sr + "_" + std::to_string(c2),
          sl_col[static_cast<std::size_t>(pc)],
          bl_of_col[static_cast<std::size_t>(c2)], slb, selb, fe_params_);
      const auto set = [&](FeFet& f, Ternary d) {
        switch (d) {
          case Ternary::kZero:
            f.set_state(FeState::kHvt, 0.0);
            break;
          case Ternary::kOne:
            f.set_state(FeState::kLvt, 0.0);
            break;
          case Ternary::kX:
            f.set_state(FeState::kMvt, mvt);
            break;
        }
      };
      set(f1, stored[static_cast<std::size_t>(r)][static_cast<std::size_t>(c1)]);
      set(f2, stored[static_cast<std::size_t>(r)][static_cast<std::size_t>(c2)]);
      ckt_.emplace<Mosfet>("TN" + sp, slb,
                           wrsl_col[static_cast<std::size_t>(pc)], kGround,
                           kGround, dev::tech14::nfet(p.tn_w, p.tn_l));
      ckt_.emplace<Mosfet>("TP" + sp, slb,
                           wrsl_col[static_cast<std::size_t>(pc)], vdd_rail,
                           vdd_rail, dev::tech14::pfet(p.tp_w, p.tp_l));
      ckt_.emplace<Mosfet>("TML" + sp,
                           taps[static_cast<std::size_t>(pc)], slb, kGround,
                           kGround, tml);
    }
  }
  t_stop_ = tm.stop_after(2);
  t_latch_ = tm.stop_after(2) - tm.t_tail;
}

ArraySearchResult simulate_array_search(
    Flavor flavor, const FullArrayOptions& opts,
    const std::vector<arch::TernaryWord>& stored, const arch::BitWord& query,
    const SearchTiming& timing) {
  ArraySearchResult res;
  OnePointFiveArray arr(flavor, opts);
  arr.build_search(stored, query, timing);

  spice::TransientOptions topts;
  topts.t_stop = arr.t_stop();
  topts.dt = arr.suggested_dt();
  const auto sim = run_transient(arr.circuit(), topts);
  if (!sim.ok) {
    res.error = sim.error;
    return res;
  }
  const double half = 0.5 * opts.vdd;
  for (int r = 0; r < opts.rows; ++r) {
    ArraySearchRow row;
    row.expected_match =
        arch::word_matches(stored[static_cast<std::size_t>(r)], query);
    const std::string sa_name = "r" + std::to_string(r) + ".saout";
    row.measured_match =
        sim.trace.voltage_at_time(sa_name, arr.t_latch()) > half;
    row.v_ml_latched = sim.trace.voltage_at_time(
        arr.circuit().node_name(arr.ml_sense_node(r)), arr.t_latch());
    res.rows.push_back(row);
  }
  res.energy_total =
      spice::total_source_energy(sim.trace, "", 0.0, arr.t_stop());
  res.ok = true;
  return res;
}

TwoFefetArray::TwoFefetArray(Flavor flavor, FullArrayOptions opts)
    : flavor_(flavor),
      opts_(opts),
      fe_params_(flavor == Flavor::kSg ? dev::sg_fefet_params()
                                       : dev::dg_fefet_params()) {
  if (opts.rows < 1 || opts.cols < 1) {
    throw std::invalid_argument("array too small");
  }
}

void TwoFefetArray::build_search(const std::vector<arch::TernaryWord>& stored,
                                 const arch::BitWord& query,
                                 const SearchTiming& tm) {
  if (built_) throw std::logic_error("TwoFefetArray is one-shot");
  built_ = true;
  const int m = opts_.rows;
  const int n = opts_.cols;
  if (static_cast<int>(stored.size()) != m ||
      static_cast<int>(query.size()) != n) {
    throw std::invalid_argument("stored/query shape mismatch");
  }
  const double vdd = opts_.vdd;
  const double v_search = flavor_ == Flavor::kSg ? 0.45 : 2.0;
  const double pitch = arch::cell_pitch_m(
      flavor_ == Flavor::kSg ? arch::TcamDesign::k2SgFefet
                             : arch::TcamDesign::k2DgFefet);
  const WireSegment seg = wire_for_pitch(opts_.wire, pitch);

  // Per-column search lines, shared by every row.
  std::vector<NodeId> sl_col(static_cast<std::size_t>(n));
  std::vector<NodeId> slb_col(static_cast<std::size_t>(n));
  NodeId bl_idle = kGround;
  if (flavor_ == Flavor::kDg) {
    bl_idle = ckt_.node("bl.idle");
    ckt_.emplace<VoltageSource>("VBL.idle", bl_idle, kGround,
                                Waveform::dc(0.0));
  }
  for (int c = 0; c < n; ++c) {
    const std::string sc = std::to_string(c);
    sl_col[static_cast<std::size_t>(c)] = ckt_.node("sl." + sc);
    slb_col[static_cast<std::size_t>(c)] = ckt_.node("slb." + sc);
    const bool q = query[static_cast<std::size_t>(c)] != 0;
    const LevelPlan active{{0.0, 0.0}, {tm.search_start(), v_search}};
    const LevelPlan idle{{0.0, 0.0}};
    // Table I: search '0' -> SL active; search '1' -> SLbar active.
    ckt_.emplace<VoltageSource>(
        "VSL." + sc, sl_col[static_cast<std::size_t>(c)], kGround,
        levels_waveform(q ? idle : active, tm.t_edge));
    ckt_.emplace<VoltageSource>(
        "VSLB." + sc, slb_col[static_cast<std::size_t>(c)], kGround,
        levels_waveform(q ? active : idle, tm.t_edge));
    const double col_wire = seg.capacitance * m;
    ckt_.emplace<Capacitor>("CSL." + sc,
                            sl_col[static_cast<std::size_t>(c)], kGround,
                            col_wire);
    ckt_.emplace<Capacitor>("CSLB." + sc,
                            slb_col[static_cast<std::size_t>(c)], kGround,
                            col_wire);
  }

  for (int r = 0; r < m; ++r) {
    const std::string sr = std::to_string(r);
    NodeId prev = ckt_.node("ml" + sr + "_0");
    ckt_.emplace<Capacitor>("CML" + sr + "_0", prev, kGround,
                            seg.capacitance);
    std::vector<NodeId> taps{prev};
    for (int k = 1; k < n; ++k) {
      const NodeId nn = ckt_.node("ml" + sr + "_" + std::to_string(k));
      ckt_.emplace<Resistor>("RML" + sr + "_" + std::to_string(k), prev, nn,
                             seg.resistance);
      ckt_.emplace<Capacitor>("CML" + sr + "_" + std::to_string(k), nn,
                              kGround, seg.capacitance);
      taps.push_back(nn);
      prev = nn;
    }
    auto pre = add_precharge(ckt_, taps.front(), "r" + sr, vdd);
    pre.gate->set_waveform(levels_waveform(
        {{0.0, vdd}, {10e-12, 0.0}, {tm.search_start(), vdd}}, tm.t_edge));
    add_sense_amp(ckt_, taps.back(), "r" + sr, vdd);

    for (int c = 0; c < n; ++c) {
      const std::string si = sr + "_" + std::to_string(c);
      const NodeId gate_t = flavor_ == Flavor::kSg
                                ? sl_col[static_cast<std::size_t>(c)]
                                : bl_idle;
      const NodeId gate_c = flavor_ == Flavor::kSg
                                ? slb_col[static_cast<std::size_t>(c)]
                                : bl_idle;
      const NodeId bg_t = flavor_ == Flavor::kSg
                              ? kGround
                              : sl_col[static_cast<std::size_t>(c)];
      const NodeId bg_c = flavor_ == Flavor::kSg
                              ? kGround
                              : slb_col[static_cast<std::size_t>(c)];
      auto& ft = ckt_.emplace<FeFet>("FT" + si,
                                     taps[static_cast<std::size_t>(c)],
                                     gate_t, kGround, bg_t, fe_params_);
      auto& fc = ckt_.emplace<FeFet>("FC" + si,
                                     taps[static_cast<std::size_t>(c)],
                                     gate_c, kGround, bg_c, fe_params_);
      switch (stored[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) {
        case Ternary::kZero:
          ft.set_state(FeState::kHvt, 0.0);
          fc.set_state(FeState::kLvt, 0.0);
          break;
        case Ternary::kOne:
          ft.set_state(FeState::kLvt, 0.0);
          fc.set_state(FeState::kHvt, 0.0);
          break;
        case Ternary::kX:
          ft.set_state(FeState::kHvt, 0.0);
          fc.set_state(FeState::kHvt, 0.0);
          break;
      }
    }
  }
  t_stop_ = tm.stop_after(1);
  t_latch_ = t_stop_ - tm.t_tail;
}

ArraySearchResult simulate_two_fefet_array_search(
    Flavor flavor, const FullArrayOptions& opts,
    const std::vector<arch::TernaryWord>& stored, const arch::BitWord& query,
    const SearchTiming& timing) {
  ArraySearchResult res;
  TwoFefetArray arr(flavor, opts);
  arr.build_search(stored, query, timing);
  spice::TransientOptions topts;
  topts.t_stop = arr.t_stop();
  topts.dt = arr.suggested_dt();
  const auto sim = run_transient(arr.circuit(), topts);
  if (!sim.ok) {
    res.error = sim.error;
    return res;
  }
  const double half = 0.5 * opts.vdd;
  for (int r = 0; r < opts.rows; ++r) {
    ArraySearchRow row;
    row.expected_match =
        arch::word_matches(stored[static_cast<std::size_t>(r)], query);
    row.measured_match =
        sim.trace.voltage_at_time("r" + std::to_string(r) + ".saout",
                                  arr.t_latch()) > half;
    row.v_ml_latched = sim.trace.voltage_at_time(
        "ml" + std::to_string(r) + "_" + std::to_string(opts.cols - 1),
        arr.t_latch());
    res.rows.push_back(row);
  }
  res.energy_total =
      spice::total_source_energy(sim.trace, "", 0.0, arr.t_stop());
  res.ok = true;
  return res;
}

}  // namespace fetcam::tcam
