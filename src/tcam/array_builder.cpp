#include "tcam/word.hpp"

#include <stdexcept>

namespace fetcam::tcam {

std::vector<spice::NodeId> WordHarness::build_match_line(int taps,
                                                         int cells_per_tap) {
  const WireSegment seg =
      wire_for_pitch(opts_.wire, cell_pitch() * cells_per_tap);
  std::vector<spice::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(taps));
  spice::NodeId prev = ckt_.node("ml0");
  nodes.push_back(prev);
  ckt_.emplace<spice::Capacitor>("CML0", prev, spice::kGround,
                                 seg.capacitance);
  for (int k = 1; k < taps; ++k) {
    const spice::NodeId n = ckt_.node("ml" + std::to_string(k));
    ckt_.emplace<spice::Resistor>("RML" + std::to_string(k), prev, n,
                                  seg.resistance);
    ckt_.emplace<spice::Capacitor>("CML" + std::to_string(k), n,
                                   spice::kGround, seg.capacitance);
    nodes.push_back(n);
    prev = n;
  }
  pre_ = add_precharge(ckt_, nodes.front(), "ml", opts_.vdd, 4.0,
                       opts_.temperature_k, opts_.corner);
  sa_ = add_sense_amp(ckt_, nodes.back(), "ml", opts_.vdd,
                      opts_.temperature_k, opts_.corner);
  ml_sense_ = nodes.back();
  return nodes;
}

void WordHarness::program_precharge(const SearchTiming& t) {
  // The ML starts discharged (the common case: the previous search missed)
  // and is charged from zero during the precharge window, so the VPRE supply
  // is billed the full C*V^2 — then released for evaluation.
  pre_.gate->set_waveform(levels_waveform(
      {{0.0, opts_.vdd}, {10e-12, 0.0}, {t.search_start(), opts_.vdd}},
      t.t_edge));
}

void WordHarness::assert_unbuilt() const {
  if (built_) {
    throw std::logic_error(
        "WordHarness is one-shot: construct a fresh harness per operation");
  }
}

}  // namespace fetcam::tcam
