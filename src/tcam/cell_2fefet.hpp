// 2FeFET TCAM word testbench (paper Fig. 3, Table I).
//
// Cell: two FeFETs with drains on the ML and grounded sources, storing the
// ternary digit in complementary V_TH states:
//   '0' -> (HVT, LVT), '1' -> (LVT, HVT), 'X' -> (HVT, HVT).
//
// SG flavour (the widely-adopted 2FeFET TCAM [13]): SL / SLbar drive the
// front gates for both write (+/-4 V, complementary, single phase) and
// search (V_DD).
//
// DG flavour (paper Sec. III-A): BL / BLbar drive the front gates (write,
// +/-2 V); SL / SLbar drive the dedicated back gates (search, V_s = 2 V).
// The BG read path's degraded subthreshold slope weakens the pulldown — the
// reason the straightforward 2DG-FeFET TCAM is slower than its SG
// counterpart (Table IV: 1147 ps vs 582 ps).
//
// During writes the ML is held low by a peripheral clamp NMOS (and by the
// ON-state FeFETs themselves), keeping the FeFET channels at ground as the
// write pulses fly — see Table I's all-zero SL rows.
#pragma once

#include "arch/area_model.hpp"
#include "devices/fefet.hpp"
#include "tcam/word.hpp"

namespace fetcam::tcam {

enum class Flavor { kSg, kDg };

class TwoFefetWord : public WordHarness {
 public:
  TwoFefetWord(Flavor flavor, WordOptions opts);

  std::string design_name() const override;
  int search_steps() const override { return 1; }
  int write_phases() const override { return 1; }
  double cell_pitch() const override;

  void build_search(const SearchConfig& cfg) override;
  void build_write(const WriteConfig& cfg) override;
  arch::TernaryWord read_stored() const override;

  Flavor flavor() const { return flavor_; }
  /// SL level during search (SG: V_DD on the FG; DG: V_s = 2 V on the BG).
  double search_voltage() const;
  /// FeFET pair of cell i (true, complement); valid after a build_*.
  std::pair<const dev::FeFet*, const dev::FeFet*> cell(int i) const {
    return {f_true_[static_cast<std::size_t>(i)],
            f_comp_[static_cast<std::size_t>(i)]};
  }

  arch::TcamDesign area_design() const {
    return flavor_ == Flavor::kSg ? arch::TcamDesign::k2SgFefet
                                  : arch::TcamDesign::k2DgFefet;
  }

 private:
  /// Capacitance one cell presents to its search line (other rows' load).
  double search_line_cap_per_cell() const;
  /// Capacitance one cell presents to its write line (DG only).
  double write_line_cap_per_cell() const;
  void place_cells(const arch::TernaryWord& stored,
                   const std::vector<spice::NodeId>& gate_true,
                   const std::vector<spice::NodeId>& gate_comp,
                   const std::vector<spice::NodeId>& bg_true,
                   const std::vector<spice::NodeId>& bg_comp,
                   const std::vector<spice::NodeId>& ml_taps);
  void add_ml_write_clamp(spice::NodeId ml0);

  Flavor flavor_;
  dev::FeFetParams fe_params_;
  std::vector<dev::FeFet*> f_true_, f_comp_;
  spice::VoltageSource* ml_clamp_gate_ = nullptr;
};

}  // namespace fetcam::tcam
