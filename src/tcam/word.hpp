// Common interface of the per-design TCAM word testbenches.
//
// A WordHarness owns a SPICE netlist of one N-bit TCAM word — cells, match
// line with wire parasitics, precharge device, sense amplifier, and drive
// sources — plus the waveform programming for one search or write operation.
// The evaluation layer runs transients on these netlists to extract the
// paper's latency/energy figures of merit.
//
// Harnesses are ONE-SHOT: construct, call build_search() or build_write()
// exactly once, run the transient, measure.  This allows an important
// optimization: columns whose cells are electrically identical for the
// configured operation (same stored digit, same drive waveforms) share one
// signal node and one driver source, with the column-line capacitive load
// lumped per column onto the shared node.  Voltages and total energies are
// unchanged (identical parallel subcircuits), while the MNA system stays
// small enough to sweep word lengths up to 256 bits.  Per-cell devices and
// per-cell match-line taps are always kept individual.
//
// Array context: the harness models a word embedded in a `rows_in_array` x
// `n_bits` array by adding (rows_in_array - 1) rows' worth of column-line
// load (wire + gate capacitance) to every column signal, so column-driver
// energy is charged realistically even though one row is simulated at
// device level.
#pragma once

#include <string>
#include <vector>

#include "arch/ternary.hpp"
#include "spice/transient.hpp"
#include "tcam/op_program.hpp"
#include "tcam/parasitics.hpp"
#include "devices/tech14.hpp"
#include "tcam/sense_amp.hpp"

namespace fetcam::tcam {

/// Design-space tuning applied by the harnesses on top of the nominal
/// technology cards.  Identity by default — every existing experiment is
/// unchanged — and swept by the DSE subsystem (src/dse/, docs/DSE.md).
struct DeviceTuning {
  /// Ferroelectric thickness scale: t_FE, the coercive voltage (E_c t_FE)
  /// and the FG memory window (P t_FE / eps) all scale linearly with it to
  /// first order, so thinner FE lowers the write voltage/energy at the
  /// price of sense margin.
  double t_fe_scale = 1.0;
  /// TP/TN width scale of the 1.5T1Fe divider (no-op for other designs):
  /// wider control transistors stiffen the divider (and cost area via
  /// AreaParams::control_t_unit) but raise its static current.
  double control_w_scale = 1.0;
  /// Sense-threshold trim, volts.  1.5T1Fe: added to the TML V_T (the
  /// match/mismatch decision level).  2FeFET: added to the search gate
  /// voltage — more overdrive discharges faster but erodes HVT margin.
  double sense_trim_v = 0.0;
};

struct WordOptions {
  int n_bits = 64;
  int rows_in_array = 64;  ///< array context for column-line loading
  double vdd = 0.8;
  DeviceTuning tuning;     ///< DSE knobs; identity by default
  WireTech wire;
  /// Junction temperature; every device card is retargeted via
  /// dev::tech14::at_temperature (300 K = characterization point).
  double temperature_k = 300.0;
  /// Global process corner applied to every device card.
  dev::tech14::Corner corner = dev::tech14::Corner::kTypical;
};

/// One search operation: stored word, query, timing, and how many of the
/// design's evaluation steps to run (fewer than search_steps() simulates an
/// early-terminated search: the remaining SeL stays grounded).
struct SearchConfig {
  arch::TernaryWord stored;
  arch::BitWord query;
  SearchTiming timing;
  int steps = 0;  ///< 0 = all of the design's steps
};

/// One write operation: target data and the pre-existing stored word the
/// cells hold before the write (writes must work from any prior state).
struct WriteConfig {
  arch::TernaryWord data;
  arch::TernaryWord initial;  ///< empty = all-'0' (erased)
  WriteTiming timing;
};

class WordHarness {
 public:
  virtual ~WordHarness() = default;
  WordHarness(const WordHarness&) = delete;
  WordHarness& operator=(const WordHarness&) = delete;

  virtual std::string design_name() const = 0;
  /// Search evaluation steps: 1 for 2FeFET, 2 for 1.5T1Fe.
  virtual int search_steps() const = 0;
  /// Write phases: 1 for 2FeFET, 3 for 1.5T1Fe.
  virtual int write_phases() const = 0;
  /// Cell pitch along the match line, meters (from the layout area model).
  virtual double cell_pitch() const = 0;

  /// Build the netlist and program all waveforms for one search.  One-shot.
  virtual void build_search(const SearchConfig& cfg) = 0;
  /// Build the netlist and program all waveforms for one write.  One-shot.
  virtual void build_write(const WriteConfig& cfg) = 0;

  /// Decode the stored word from device polarization state (valid after a
  /// build_* call; after a simulated write it reflects the written data).
  virtual arch::TernaryWord read_stored() const = 0;

  /// Simulation end time of the operation programmed by the last build_*.
  double t_stop() const { return t_stop_; }
  /// Suggested transient timestep for the programmed operation.
  double suggested_dt() const { return dt_; }

  int n_bits() const { return opts_.n_bits; }
  const WordOptions& options() const { return opts_; }
  spice::Circuit& circuit() { return ckt_; }
  const spice::Circuit& circuit() const { return ckt_; }

  /// ML node at the sense amplifier (search builds only).
  spice::NodeId ml_sense_node() const { return ml_sense_; }
  spice::NodeId sa_out_node() const { return sa_.out; }
  const PrechargeHandles& precharge() const { return pre_; }

 protected:
  explicit WordHarness(WordOptions opts) : opts_(opts) {}

  /// Build the ML as a chain of `taps` wire segments (RC per segment from
  /// the design pitch), attach precharge at tap 0 and the SA at the last
  /// tap, and return all tap nodes.
  std::vector<spice::NodeId> build_match_line(int taps, int cells_per_tap);

  /// Program the precharge: ML held at VDD during [0, t_precharge], then
  /// released.
  void program_precharge(const SearchTiming& t);

  void assert_unbuilt() const;
  void mark_built(double t_stop, double dt) {
    built_ = true;
    t_stop_ = t_stop;
    dt_ = dt;
  }

  WordOptions opts_;
  spice::Circuit ckt_;
  PrechargeHandles pre_;
  SenseAmpHandles sa_;
  spice::NodeId ml_sense_ = -1;
  bool built_ = false;
  double t_stop_ = 0.0;
  double dt_ = 2e-12;
};

}  // namespace fetcam::tcam
