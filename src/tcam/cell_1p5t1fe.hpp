// 1.5T1Fe TCAM word testbench — the paper's proposed design (Fig. 5,
// Tables II/III).
//
// Cell: ONE FeFET storing the ternary digit in three V_TH levels
// (HVT = '0', MVT = 'X', LVT = '1').  Every two cells form a pair sharing
// three control transistors (hence "1.5T" per cell):
//
//        SL (pair) ---.----------------.
//                  [FeFET1]        [FeFET2]        FG1 <- BL1, FG2 <- BL2
//   SeL_a -> BG1      |                |           (BG row lines select)
//   SeL_b -> BG2      '----- SL_bar ---'
//                            |
//             VDD --[TP]-----+-----[TN]-- gnd      gates <- Wr/SL (pair)
//                            |
//                          [TML] gate; TML drain -> ML, source -> gnd
//
// Search is a voltage-divider comparison (paper Eq. 2/3) in two steps with
// optional early termination: step 1 raises SeL_a and evaluates all cell1s;
// only if the row still matches does step 2 raise SeL_b.  The ML is
// precharged once for both steps.  Resistance ordering required (Eq. 1):
//      R_ON < R_N < R_M < R_P << R_OFF.
//
// Write is three-phase (Sec. III-B3): erase all (BL = -Vw), program '1's
// (BL = +Vw), program 'X's (BL = Vm), with Wr/SL = VDD holding SL_bar at
// ground and SL = 0 grounding the channel.
//
// SG flavour (Sec. IV, Table III): BL and SeL merge into one FG line; no
// dedicated BGs, no V_b bias, smaller cell.
#pragma once

#include "arch/area_model.hpp"
#include "devices/fefet.hpp"
#include "devices/mosfet.hpp"
#include "tcam/cell_2fefet.hpp"  // Flavor
#include "tcam/word.hpp"

namespace fetcam::tcam {

/// Sizing and bias knobs of the 1.5T1Fe cell (defaults calibrated so Eq. 1
/// holds across all state/query corners; see tests/tcam/divider_test.cpp).
struct OnePointFiveParams {
  double tn_w = 1.0, tn_l = 32.0;    ///< TN: weak pulldown (R_N > R_ON)
  double tp_w = 1.0, tp_l = 16.0;    ///< TP: weaker pullup (R_P > R_M)
  double tml_w = 4.0, tml_l = 1.0;  ///< TML: small ML pulldown (2 cells share it)
  double tml_vth_sg = 0.30;  ///< TML VT: above the X-state SL_bar, below the mismatch level
  double tml_vth_dg = 0.35;  ///< DG TML: higher VT for X-state leak margin
  double v_b = 0.25;   ///< DG only: BL bias while searching '0' (Tab. II)
  double v_sel_dg = 2.0;  ///< DG select voltage (= V_w: shared drivers)
  double v_sel_sg = 0.8;  ///< SG select voltage (Tab. III)
  /// FG-referred V_TH target for the MVT ('X') state.
  double mvt_vth_dg = 0.605;
  double mvt_vth_sg = 0.62;
};

/// Cell parameters after a WordOptions::tuning is applied: TP/TN widths
/// scaled, the TML V_T trimmed, and the MVT ('X') targets repositioned
/// window-relatively when the FE thickness scale moves the memory window
/// (the absolute nominal target would fall outside a shrunken window).
/// Shared by the harness constructor and the DSE variability path so both
/// see exactly the same tuned cell.  `tuned_fe` must already carry the
/// thickness scale (dev::scale_fe_thickness).
OnePointFiveParams apply_tuning(Flavor flavor, OnePointFiveParams p,
                                const DeviceTuning& t,
                                const dev::FeFetParams& tuned_fe);

class OnePointFiveWord : public WordHarness {
 public:
  OnePointFiveWord(Flavor flavor, WordOptions opts,
                   OnePointFiveParams params = {});

  std::string design_name() const override;
  int search_steps() const override { return 2; }
  int write_phases() const override { return 3; }
  double cell_pitch() const override;

  void build_search(const SearchConfig& cfg) override;
  void build_write(const WriteConfig& cfg) override;
  arch::TernaryWord read_stored() const override;

  Flavor flavor() const { return flavor_; }
  double select_voltage() const;
  double mvt_vth_target() const;
  /// X-state write voltage V_m (paper: 1.6 V DG / 3.2 V SG).
  double vm() const;
  const OnePointFiveParams& cell_params() const { return params_; }
  const dev::FeFet* fefet(int cell) const {
    return fefets_[static_cast<std::size_t>(cell)];
  }
  /// SL_bar node of pair p (for divider diagnostics in tests).
  spice::NodeId slb_node(int pair) const {
    return slb_of_pair_[static_cast<std::size_t>(pair)];
  }

  arch::TcamDesign area_design() const {
    return flavor_ == Flavor::kSg ? arch::TcamDesign::k1p5SgFe
                                  : arch::TcamDesign::k1p5DgFe;
  }

 private:
  struct PairNodes {
    spice::NodeId sl, slb, wrsl, bl1, bl2;
  };
  /// Instantiate the pair devices for cells (2p, 2p+1).
  void place_pair(int p, const PairNodes& nodes, spice::NodeId sela,
                  spice::NodeId selb, spice::NodeId vdd_rail,
                  spice::NodeId ml_tap, const arch::TernaryWord& stored);
  double search_line_cap_per_cell() const;
  double write_line_cap_per_cell() const;

  Flavor flavor_;
  OnePointFiveParams params_;
  dev::FeFetParams fe_params_;
  std::vector<dev::FeFet*> fefets_;
  std::vector<spice::NodeId> slb_of_pair_;
};

}  // namespace fetcam::tcam
