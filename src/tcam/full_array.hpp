// Full M x N 1.5T1Fe array at circuit level.
//
// Unlike the word harnesses (one row, column loads lumped, identical columns
// grouped), this builds EVERY row and EVERY column line as real nodes:
// row-wise MLs and SeL_a/SeL_b lines, column-wise (per pair) SL and Wr/SL
// lines shared by all rows, per-column BLs.  It exists to validate the
// word-slice methodology — per-row match results and cross-row interactions
// (shared column lines!) must agree with the behavioral model — and to let
// users simulate small arrays end to end.
//
// Cost grows as O((M*N)^3) per Newton iteration with the dense solver, so
// keep it to small arrays (<= 8x16 is comfortable).
#pragma once

#include "arch/behavioral_array.hpp"
#include "devices/fefet.hpp"
#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::tcam {

struct FullArrayOptions {
  int rows = 4;
  int cols = 8;  ///< must be even
  double vdd = 0.8;
  WireTech wire;
  OnePointFiveParams cell;
};

/// Per-row search outcome of a full-array transient.
struct ArraySearchRow {
  bool expected_match = false;
  bool measured_match = false;
  double v_ml_latched = 0.0;
};

struct ArraySearchResult {
  bool ok = false;
  std::string error;
  std::vector<ArraySearchRow> rows;
  double energy_total = 0.0;  ///< all supplies, whole operation
  bool all_correct() const {
    for (const auto& r : rows) {
      if (r.measured_match != r.expected_match) return false;
    }
    return !rows.empty();
  }
};

class OnePointFiveArray {
 public:
  OnePointFiveArray(Flavor flavor, FullArrayOptions opts);

  int rows() const { return opts_.rows; }
  int cols() const { return opts_.cols; }

  /// Build the netlist with the given stored contents and program a search
  /// for `query` (both steps).  One-shot, like the word harnesses.
  void build_search(const std::vector<arch::TernaryWord>& stored,
                    const arch::BitWord& query, const SearchTiming& timing);

  spice::Circuit& circuit() { return ckt_; }
  spice::NodeId ml_sense_node(int row) const {
    return ml_sense_[static_cast<std::size_t>(row)];
  }
  spice::NodeId sa_out_node(int row) const {
    return sa_out_[static_cast<std::size_t>(row)];
  }
  double t_stop() const { return t_stop_; }
  double t_latch() const { return t_latch_; }
  double suggested_dt() const { return 2e-12; }

 private:
  Flavor flavor_;
  FullArrayOptions opts_;
  spice::Circuit ckt_;
  dev::FeFetParams fe_params_;
  std::vector<spice::NodeId> ml_sense_, sa_out_;
  bool built_ = false;
  double t_stop_ = 0.0;
  double t_latch_ = 0.0;
};

/// Convenience: build, simulate, and compare each row against the golden
/// ternary rule.
ArraySearchResult simulate_array_search(
    Flavor flavor, const FullArrayOptions& opts,
    const std::vector<arch::TernaryWord>& stored, const arch::BitWord& query,
    const SearchTiming& timing = {});

/// Full M x N 2FeFET array (SG or DG flavour): per-column SL/SLbar lines
/// shared by every row, per-row MLs — the baseline-design counterpart of
/// OnePointFiveArray, used to validate the 2FeFET word harnesses.
class TwoFefetArray {
 public:
  TwoFefetArray(Flavor flavor, FullArrayOptions opts);

  void build_search(const std::vector<arch::TernaryWord>& stored,
                    const arch::BitWord& query, const SearchTiming& timing);

  spice::Circuit& circuit() { return ckt_; }
  double t_stop() const { return t_stop_; }
  double t_latch() const { return t_latch_; }
  double suggested_dt() const { return 2e-12; }

 private:
  Flavor flavor_;
  FullArrayOptions opts_;
  spice::Circuit ckt_;
  dev::FeFetParams fe_params_;
  bool built_ = false;
  double t_stop_ = 0.0;
  double t_latch_ = 0.0;
};

/// Convenience wrapper mirroring simulate_array_search for 2FeFET arrays.
ArraySearchResult simulate_two_fefet_array_search(
    Flavor flavor, const FullArrayOptions& opts,
    const std::vector<arch::TernaryWord>& stored, const arch::BitWord& query,
    const SearchTiming& timing = {});

}  // namespace fetcam::tcam
