// Run TCAM word operations and extract the paper's figures of merit.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "arch/area_model.hpp"
#include "tcam/word.hpp"

namespace fetcam::tcam {

/// Construct the harness for a design.
std::unique_ptr<WordHarness> make_word_harness(arch::TcamDesign design,
                                               const WordOptions& opts);

/// Search energy split the way Table IV discusses it.
struct EnergyBreakdown {
  double precharge = 0.0;  ///< ML precharge supply
  double sense_amp = 0.0;  ///< SA supply
  double signals = 0.0;    ///< search lines, selects, divider rail
  double total() const { return precharge + sense_amp + signals; }
};

struct SearchMeasurement {
  bool ok = false;
  std::string error;
  bool expected_match = false;  ///< golden (behavioral) result
  bool measured_match = false;  ///< SA output at the end of the operation
  /// SA-output resolution time relative to search start (mismatches only).
  std::optional<double> latency;
  /// ML 50 %-V_DD crossing relative to search start (mismatches only).
  std::optional<double> ml_fall_time;
  EnergyBreakdown energy;       ///< whole-operation energy, joules
  double energy_per_cell = 0.0;
  int newton_iterations = 0;
};

/// Build + simulate one search.  `trace_out`, when non-null, receives the
/// full waveform trace (used by the Fig. 4 bench).
SearchMeasurement measure_search(arch::TcamDesign design,
                                 const WordOptions& opts,
                                 const SearchConfig& cfg,
                                 spice::Trace* trace_out = nullptr);

struct WriteMeasurement {
  bool ok = false;
  std::string error;
  arch::TernaryWord final_state;
  bool data_ok = false;  ///< final state decodes to the written data
  double energy = 0.0;   ///< write-line energy, joules
  double energy_per_cell = 0.0;
};

/// Build + simulate one write (three-phase for 1.5T1Fe, one-phase 2FeFET).
WriteMeasurement measure_write(arch::TcamDesign design, const WordOptions& opts,
                               const WriteConfig& cfg);

}  // namespace fetcam::tcam
