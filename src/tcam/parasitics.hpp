// Wire parasitics for match lines and search lines, per cell pitch.
//
// Constants are representative of 14 nm intermediate-metal interconnect (the
// role Eva-CAM [15] plays in the paper): ~2 fF/um capacitance and
// ~20 Ohm/um resistance at minimum width/space.  The per-cell values scale
// with the design's cell pitch, so the larger DG cells also carry slightly
// longer wire per bit — one of the second-order effects in the Fig. 7
// word-length sweeps.
#pragma once

namespace fetcam::tcam {

struct WireTech {
  double r_per_um = 20.0;    ///< Ohm / um
  double c_per_um = 0.12e-15;  ///< F / um
};

struct WireSegment {
  double resistance = 0.0;   ///< Ohms
  double capacitance = 0.0;  ///< Farads
};

/// RC of a wire spanning one cell of the given pitch (meters).
WireSegment wire_for_pitch(const WireTech& tech, double cell_pitch_m);

}  // namespace fetcam::tcam
