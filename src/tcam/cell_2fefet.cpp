#include "tcam/cell_2fefet.hpp"

#include <stdexcept>

#include "devices/tech14.hpp"

namespace fetcam::tcam {

using arch::Ternary;
using dev::FeFet;
using dev::FeState;
using spice::Capacitor;
using spice::kGround;
using spice::NodeId;
using spice::VoltageSource;
using spice::Waveform;

TwoFefetWord::TwoFefetWord(Flavor flavor, WordOptions opts)
    : WordHarness(opts),
      flavor_(flavor),
      fe_params_(dev::tech14::fefet_at_corner(
          dev::tech14::fefet_at_temperature(
              dev::scale_fe_thickness(flavor == Flavor::kSg
                                          ? dev::sg_fefet_params()
                                          : dev::dg_fefet_params(),
                                      opts.tuning.t_fe_scale),
              opts.temperature_k),
          opts.corner)) {}

std::string TwoFefetWord::design_name() const {
  return arch::design_name(area_design());
}

double TwoFefetWord::cell_pitch() const {
  return arch::cell_pitch_m(area_design());
}

double TwoFefetWord::search_voltage() const {
  // SG: the search voltage is applied to the FG — the same gate that writes
  // the ferroelectric — so it is biased conservatively low in the memory
  // window (just above the LVT edge) to bound read disturb and preserve HVT
  // margin under variation.  This modest gate overdrive is what limits the
  // 2FeFET pulldown strength; the 1.5T1Fe design escapes the constraint by
  // decoupling search drive from the storage gate.
  // DG: V_s = 2 V on the back gate (Table I).  The sense trim shifts the
  // drive either way: more overdrive = faster pulldown, less HVT margin.
  return (flavor_ == Flavor::kSg ? 0.45 : 2.0) + opts_.tuning.sense_trim_v;
}

double TwoFefetWord::search_line_cap_per_cell() const {
  // Column lines span the whole array, but their charging serves every row's
  // search simultaneously, so the fair one-row share is the line wire over
  // one (vertical) cell pitch — the row's own gate loads are already present
  // as devices.
  return wire_for_pitch(opts_.wire, cell_pitch()).capacitance;
}

double TwoFefetWord::write_line_cap_per_cell() const {
  // Write energy is reported cell-level (paper Table IV): wire share only.
  return wire_for_pitch(opts_.wire, cell_pitch()).capacitance;
}

void TwoFefetWord::add_ml_write_clamp(NodeId ml0) {
  const NodeId g = ckt_.node("mlrst.g");
  ml_clamp_gate_ = &ckt_.emplace<VoltageSource>("VMLRST", g, kGround,
                                                Waveform::dc(0.0));
  ckt_.emplace<dev::Mosfet>(
      "MMLRST", ml0, g, kGround, kGround,
      dev::tech14::at_corner(
          dev::tech14::at_temperature(dev::tech14::nfet(2.0),
                                      opts_.temperature_k),
          opts_.corner));
}

void TwoFefetWord::place_cells(const arch::TernaryWord& stored,
                               const std::vector<NodeId>& gate_true,
                               const std::vector<NodeId>& gate_comp,
                               const std::vector<NodeId>& bg_true,
                               const std::vector<NodeId>& bg_comp,
                               const std::vector<NodeId>& ml_taps) {
  f_true_.clear();
  f_comp_.clear();
  for (int i = 0; i < opts_.n_bits; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    auto& ft = ckt_.emplace<FeFet>("FT" + std::to_string(i), ml_taps[idx],
                                   gate_true[idx], kGround, bg_true[idx],
                                   fe_params_);
    auto& fc = ckt_.emplace<FeFet>("FC" + std::to_string(i), ml_taps[idx],
                                   gate_comp[idx], kGround, bg_comp[idx],
                                   fe_params_);
    switch (stored[idx]) {
      case Ternary::kZero:
        ft.set_state(FeState::kHvt, 0.0);
        fc.set_state(FeState::kLvt, 0.0);
        break;
      case Ternary::kOne:
        ft.set_state(FeState::kLvt, 0.0);
        fc.set_state(FeState::kHvt, 0.0);
        break;
      case Ternary::kX:
        ft.set_state(FeState::kHvt, 0.0);
        fc.set_state(FeState::kHvt, 0.0);
        break;
    }
    f_true_.push_back(&ft);
    f_comp_.push_back(&fc);
  }
}

void TwoFefetWord::build_search(const SearchConfig& cfg) {
  assert_unbuilt();
  if (static_cast<int>(cfg.stored.size()) != opts_.n_bits ||
      static_cast<int>(cfg.query.size()) != opts_.n_bits) {
    throw std::invalid_argument("stored/query size must equal n_bits");
  }
  const int steps = cfg.steps == 0 ? 1 : cfg.steps;
  if (steps != 1) throw std::invalid_argument("2FeFET search is single-step");

  const auto ml = build_match_line(opts_.n_bits, 1);
  add_ml_write_clamp(ml.front());

  // Shared signal nodes per query-bit group; column load lumped per column.
  // sl[b] drives the true FeFET search gates of query-bit-b columns, slb[b]
  // the complementary ones.
  NodeId sl[2], slb[2];
  int count[2] = {0, 0};
  for (const auto qb : cfg.query) ++count[qb ? 1 : 0];
  for (int b = 0; b < 2; ++b) {
    sl[b] = ckt_.node("sl.q" + std::to_string(b));
    slb[b] = ckt_.node("slb.q" + std::to_string(b));
    // Table I: search '0' -> SL = Vs, SLbar = 0; search '1' -> SL = 0,
    // SLbar = Vs.  The group with the active level ramps at search start.
    const bool sl_active = (b == 0);
    const LevelPlan active{{0.0, 0.0},
                           {cfg.timing.search_start(), search_voltage()}};
    const LevelPlan idle{{0.0, 0.0}};
    ckt_.emplace<VoltageSource>(
        "VSL.q" + std::to_string(b), sl[b], kGround,
        levels_waveform(sl_active ? active : idle, cfg.timing.t_edge));
    ckt_.emplace<VoltageSource>(
        "VSLB.q" + std::to_string(b), slb[b], kGround,
        levels_waveform(sl_active ? idle : active, cfg.timing.t_edge));
    if (count[b] > 0) {
      const double c_col = search_line_cap_per_cell() * count[b];
      ckt_.emplace<Capacitor>("CSL.q" + std::to_string(b), sl[b], kGround,
                              c_col);
      ckt_.emplace<Capacitor>("CSLB.q" + std::to_string(b), slb[b], kGround,
                              c_col);
    }
  }

  std::vector<NodeId> gate_true(static_cast<std::size_t>(opts_.n_bits));
  std::vector<NodeId> gate_comp(gate_true.size());
  std::vector<NodeId> bg_true(gate_true.size());
  std::vector<NodeId> bg_comp(gate_true.size());

  if (flavor_ == Flavor::kSg) {
    // FG is the search gate; body grounded.
    for (int i = 0; i < opts_.n_bits; ++i) {
      const int b = cfg.query[static_cast<std::size_t>(i)] ? 1 : 0;
      gate_true[static_cast<std::size_t>(i)] = sl[b];
      gate_comp[static_cast<std::size_t>(i)] = slb[b];
      bg_true[static_cast<std::size_t>(i)] = kGround;
      bg_comp[static_cast<std::size_t>(i)] = kGround;
    }
  } else {
    // BG is the search gate; FGs sit on grounded BLs during search.
    const NodeId bl0 = ckt_.node("bl.idle");
    ckt_.emplace<VoltageSource>("VBL.idle", bl0, kGround, Waveform::dc(0.0));
    const double c_bl = write_line_cap_per_cell() * opts_.n_bits * 2.0;
    ckt_.emplace<Capacitor>("CBL.idle", bl0, kGround, c_bl);
    for (int i = 0; i < opts_.n_bits; ++i) {
      const int b = cfg.query[static_cast<std::size_t>(i)] ? 1 : 0;
      gate_true[static_cast<std::size_t>(i)] = bl0;
      gate_comp[static_cast<std::size_t>(i)] = bl0;
      bg_true[static_cast<std::size_t>(i)] = sl[b];
      bg_comp[static_cast<std::size_t>(i)] = slb[b];
    }
  }

  place_cells(cfg.stored, gate_true, gate_comp, bg_true, bg_comp, ml);
  program_precharge(cfg.timing);
  mark_built(cfg.timing.stop_after(1), 2e-12);
}

void TwoFefetWord::build_write(const WriteConfig& cfg) {
  assert_unbuilt();
  if (static_cast<int>(cfg.data.size()) != opts_.n_bits) {
    throw std::invalid_argument("data size must equal n_bits");
  }
  arch::TernaryWord initial = cfg.initial;
  if (initial.empty()) {
    initial.assign(static_cast<std::size_t>(opts_.n_bits), Ternary::kZero);
  }

  const auto ml = build_match_line(opts_.n_bits, 1);
  add_ml_write_clamp(ml.front());
  // Hold the ML low for the whole write.
  ml_clamp_gate_->set_waveform(Waveform::dc(opts_.vdd));

  const double vw = fe_params_.vw();
  // One signal-node group per data digit.  Table I: write '0' -> (-Vw, +Vw),
  // '1' -> (+Vw, -Vw), 'X' -> (-Vw, -Vw) on the (true, comp) write gates.
  const auto level_true = [&](Ternary d) {
    return d == Ternary::kOne ? vw : -vw;
  };
  const auto level_comp = [&](Ternary d) {
    return d == Ternary::kZero ? vw : -vw;
  };

  NodeId wt[3], wc[3];
  int count[3] = {0, 0, 0};
  for (const auto d : cfg.data) ++count[static_cast<int>(d)];
  const std::string prefix = flavor_ == Flavor::kSg ? "VSL.d" : "VBL.d";
  for (int d = 0; d < 3; ++d) {
    if (count[d] == 0) {
      wt[d] = kGround;
      wc[d] = kGround;
      continue;
    }
    const auto dig = static_cast<Ternary>(d);
    wt[d] = ckt_.node("w.t" + std::to_string(d));
    wc[d] = ckt_.node("w.c" + std::to_string(d));
    const LevelPlan plan_t{{0.0, 0.0},
                           {cfg.timing.phase_start(0) + cfg.timing.t_gap,
                            level_true(dig)},
                           {cfg.timing.phase_end(0), 0.0}};
    const LevelPlan plan_c{{0.0, 0.0},
                           {cfg.timing.phase_start(0) + cfg.timing.t_gap,
                            level_comp(dig)},
                           {cfg.timing.phase_end(0), 0.0}};
    ckt_.emplace<VoltageSource>(prefix + std::to_string(d) + ".t", wt[d],
                                kGround,
                                levels_waveform(plan_t, cfg.timing.t_edge));
    ckt_.emplace<VoltageSource>(prefix + std::to_string(d) + ".c", wc[d],
                                kGround,
                                levels_waveform(plan_c, cfg.timing.t_edge));
    const double c_col = write_line_cap_per_cell() * count[d];
    ckt_.emplace<Capacitor>("CW.t" + std::to_string(d), wt[d], kGround,
                            c_col);
    ckt_.emplace<Capacitor>("CW.c" + std::to_string(d), wc[d], kGround,
                            c_col);
  }

  std::vector<NodeId> gate_true(static_cast<std::size_t>(opts_.n_bits));
  std::vector<NodeId> gate_comp(gate_true.size());
  std::vector<NodeId> bg_true(gate_true.size());
  std::vector<NodeId> bg_comp(gate_true.size());
  NodeId sl_idle = kGround;
  if (flavor_ == Flavor::kDg) {
    // BGs grounded through their (quiet) search lines during write.
    sl_idle = ckt_.node("sl.idle");
    ckt_.emplace<VoltageSource>("VSL.idle", sl_idle, kGround,
                                Waveform::dc(0.0));
  }
  for (int i = 0; i < opts_.n_bits; ++i) {
    const int d = static_cast<int>(cfg.data[static_cast<std::size_t>(i)]);
    gate_true[static_cast<std::size_t>(i)] = wt[d];
    gate_comp[static_cast<std::size_t>(i)] = wc[d];
    bg_true[static_cast<std::size_t>(i)] =
        flavor_ == Flavor::kSg ? kGround : sl_idle;
    bg_comp[static_cast<std::size_t>(i)] =
        flavor_ == Flavor::kSg ? kGround : sl_idle;
  }

  place_cells(initial, gate_true, gate_comp, bg_true, bg_comp, ml);
  // Precharge idle: supply up, gate high (off).
  pre_.gate->set_waveform(Waveform::dc(opts_.vdd));
  mark_built(cfg.timing.stop_after(1), 0.25e-9);
}

arch::TernaryWord TwoFefetWord::read_stored() const {
  arch::TernaryWord out;
  out.reserve(f_true_.size());
  for (std::size_t i = 0; i < f_true_.size(); ++i) {
    const double pt = f_true_[i]->normalized_polarization();
    const double pc = f_comp_[i]->normalized_polarization();
    const bool t_lvt = pt > 0.5;
    const bool c_lvt = pc > 0.5;
    if (t_lvt && !c_lvt) {
      out.push_back(Ternary::kOne);
    } else if (!t_lvt && c_lvt) {
      out.push_back(Ternary::kZero);
    } else if (!t_lvt && !c_lvt) {
      out.push_back(Ternary::kX);
    } else {
      throw std::runtime_error("2FeFET cell in invalid LVT/LVT state");
    }
  }
  return out;
}

}  // namespace fetcam::tcam
