#include "tcam/op_program.hpp"

#include <cassert>

namespace fetcam::tcam {

spice::Waveform levels_waveform(const LevelPlan& plan, double t_edge) {
  assert(!plan.empty());
  assert(plan.front().first == 0.0);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(plan.size() * 2);
  pts.emplace_back(0.0, plan.front().second);
  for (std::size_t k = 1; k < plan.size(); ++k) {
    const double t = plan[k].first;
    assert(t > plan[k - 1].first);
    pts.emplace_back(t, plan[k - 1].second);        // hold previous level
    pts.emplace_back(t + t_edge, plan[k].second);   // ramp to the new one
  }
  return spice::Waveform::pwl(std::move(pts));
}

}  // namespace fetcam::tcam
