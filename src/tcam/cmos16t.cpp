#include "tcam/cmos16t.hpp"

#include <stdexcept>

#include "devices/tech14.hpp"

namespace fetcam::tcam {

using arch::Ternary;
using dev::Mosfet;
using spice::Capacitor;
using spice::kGround;
using spice::NodeId;
using spice::VoltageSource;
using spice::Waveform;

Cmos16tWord::Cmos16tWord(WordOptions opts) : WordHarness(opts) {}

std::string Cmos16tWord::design_name() const {
  return arch::design_name(arch::TcamDesign::kCmos16T);
}

double Cmos16tWord::cell_pitch() const {
  return arch::cell_pitch_m(arch::TcamDesign::kCmos16T);
}

double Cmos16tWord::search_line_cap_per_cell() const {
  // One-row share of the column search line: wire over one vertical pitch
  // (the compare-stack gates of this row exist as devices).
  return wire_for_pitch(opts_.wire, cell_pitch()).capacitance;
}

void Cmos16tWord::build_search(const SearchConfig& cfg) {
  assert_unbuilt();
  const int n = opts_.n_bits;
  if (static_cast<int>(cfg.stored.size()) != n ||
      static_cast<int>(cfg.query.size()) != n) {
    throw std::invalid_argument("stored/query size must equal n_bits");
  }
  const int steps = cfg.steps == 0 ? 1 : cfg.steps;
  if (steps != 1) throw std::invalid_argument("16T search is single-step");
  stored_ = cfg.stored;
  const SearchTiming& tm = cfg.timing;
  const double vdd = opts_.vdd;

  const auto ml = build_match_line(n, 1);

  // Search lines grouped by query bit (as in the FeFET harnesses).
  NodeId sl[2], slb[2];
  int count[2] = {0, 0};
  for (const auto qb : cfg.query) ++count[qb ? 1 : 0];
  for (int b = 0; b < 2; ++b) {
    sl[b] = ckt_.node("sl.q" + std::to_string(b));
    slb[b] = ckt_.node("slb.q" + std::to_string(b));
    const LevelPlan active{{0.0, 0.0}, {tm.search_start(), vdd}};
    const LevelPlan idle{{0.0, 0.0}};
    const bool sl_active = (b == 0);  // query '0' raises SL
    ckt_.emplace<VoltageSource>(
        "VSL.q" + std::to_string(b), sl[b], kGround,
        levels_waveform(sl_active ? active : idle, tm.t_edge));
    ckt_.emplace<VoltageSource>(
        "VSLB.q" + std::to_string(b), slb[b], kGround,
        levels_waveform(sl_active ? idle : active, tm.t_edge));
    if (count[b] > 0) {
      const double c_col = search_line_cap_per_cell() * count[b];
      ckt_.emplace<Capacitor>("CSL.q" + std::to_string(b), sl[b], kGround,
                              c_col);
      ckt_.emplace<Capacitor>("CSLB.q" + std::to_string(b), slb[b], kGround,
                              c_col);
    }
  }

  // SRAM state rails: qt high for stored '1', qc high for stored '0'; both
  // low for 'X'.
  NodeId q_hi = ckt_.node("q.hi");
  ckt_.emplace<VoltageSource>("VQ.hi", q_hi, kGround, Waveform::dc(vdd));

  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const int b = cfg.query[idx] ? 1 : 0;
    const Ternary d = cfg.stored[idx];
    const NodeId qt = d == Ternary::kOne ? q_hi : kGround;
    const NodeId qc = d == Ternary::kZero ? q_hi : kGround;
    const std::string si = std::to_string(i);
    // Stack 1: SL AND qt; stack 2: SLbar AND qc.
    const NodeId mid1 = ckt_.node("mid1." + si);
    const NodeId mid2 = ckt_.node("mid2." + si);
    const auto nf = dev::tech14::at_corner(
        dev::tech14::at_temperature(dev::tech14::nfet(),
                                    opts_.temperature_k),
        opts_.corner);
    ckt_.emplace<Mosfet>("M1." + si, ml[idx], sl[b], mid1, kGround, nf);
    ckt_.emplace<Mosfet>("M2." + si, mid1, qt, kGround, kGround, nf);
    ckt_.emplace<Mosfet>("M3." + si, ml[idx], slb[b], mid2, kGround, nf);
    ckt_.emplace<Mosfet>("M4." + si, mid2, qc, kGround, kGround, nf);
  }

  program_precharge(tm);
  mark_built(tm.stop_after(1), 2e-12);
}

void Cmos16tWord::build_write(const WriteConfig&) {
  throw std::logic_error(
      "16T CMOS write energy is not modeled (reported N.A. in Table IV)");
}

}  // namespace fetcam::tcam
