#include "arch/ternary.hpp"

#include <stdexcept>

namespace fetcam::arch {

char to_char(Ternary t) {
  switch (t) {
    case Ternary::kZero:
      return '0';
    case Ternary::kOne:
      return '1';
    case Ternary::kX:
      return 'X';
  }
  return '?';
}

Ternary ternary_from_char(char c) {
  switch (c) {
    case '0':
      return Ternary::kZero;
    case '1':
      return Ternary::kOne;
    case 'x':
    case 'X':
    case '*':
      return Ternary::kX;
    default:
      throw std::invalid_argument(std::string("invalid ternary digit: ") + c);
  }
}

TernaryWord word_from_string(std::string_view s) {
  TernaryWord w;
  w.reserve(s.size());
  for (const char c : s) w.push_back(ternary_from_char(c));
  return w;
}

std::string to_string(const TernaryWord& w) {
  std::string s;
  s.reserve(w.size());
  for (const Ternary t : w) s.push_back(to_char(t));
  return s;
}

BitWord bits_from_string(std::string_view s) {
  BitWord b;
  b.reserve(s.size());
  for (const char c : s) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument(std::string("invalid query bit: ") + c);
    }
    b.push_back(c == '1' ? 1 : 0);
  }
  return b;
}

std::string to_string(const BitWord& b) {
  std::string s;
  s.reserve(b.size());
  for (const auto bit : b) s.push_back(bit ? '1' : '0');
  return s;
}

bool word_matches(const TernaryWord& stored, const BitWord& query) {
  return mismatch_count(stored, query) == 0;
}

int mismatch_count(const TernaryWord& stored, const BitWord& query) {
  if (stored.size() != query.size()) {
    throw std::invalid_argument("stored/query length mismatch");
  }
  int n = 0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (!ternary_matches(stored[i], query[i] != 0)) ++n;
  }
  return n;
}

}  // namespace fetcam::arch
