#include "arch/write_controller.hpp"

#include <stdexcept>

namespace fetcam::arch {

int WritePlan::total_switching_cells() const {
  int n = 0;
  for (const auto& p : phases) n += p.switching_cells;
  return n;
}

WritePlan three_step_plan(const TernaryWord& data, const TernaryWord& previous,
                          const WriteVoltages& v) {
  const std::size_t n = data.size();
  TernaryWord prev = previous;
  if (prev.empty()) prev.assign(n, Ternary::kZero);
  if (prev.size() != n) {
    throw std::invalid_argument("previous/data width mismatch");
  }

  WritePlan plan;
  WritePhase erase{.name = "erase", .bl = std::vector<double>(n, -v.vw),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  WritePhase prog1{.name = "program-1", .bl = std::vector<double>(n, 0.0),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  WritePhase progx{.name = "program-X", .bl = std::vector<double>(n, 0.0),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  for (std::size_t c = 0; c < n; ++c) {
    if (prev[c] != Ternary::kZero) ++erase.switching_cells;
    if (data[c] == Ternary::kOne) {
      prog1.bl[c] = v.vw;
      ++prog1.switching_cells;
    } else if (data[c] == Ternary::kX) {
      progx.bl[c] = v.vm;
      ++progx.switching_cells;
    }
  }
  plan.phases = {erase, prog1, progx};
  return plan;
}

WritePlan complementary_plan(const TernaryWord& data, const WriteVoltages& v) {
  const std::size_t n = data.size();
  WritePhase ph{.name = "write", .bl = std::vector<double>(n, 0.0),
                .bl_bar = std::vector<double>(n, 0.0), .wrsl = 0.0,
                .sl = 0.0, .switching_cells = 0};
  for (std::size_t c = 0; c < n; ++c) {
    // Table I: '0' -> (-Vw, +Vw); '1' -> (+Vw, -Vw); 'X' -> (-Vw, -Vw).
    switch (data[c]) {
      case Ternary::kZero:
        ph.bl[c] = -v.vw;
        ph.bl_bar[c] = v.vw;
        break;
      case Ternary::kOne:
        ph.bl[c] = v.vw;
        ph.bl_bar[c] = -v.vw;
        break;
      case Ternary::kX:
        ph.bl[c] = -v.vw;
        ph.bl_bar[c] = -v.vw;
        break;
    }
    ph.switching_cells += 2;  // both FeFETs driven every write
  }
  WritePlan plan;
  plan.phases = {ph};
  return plan;
}

WritePlan incremental_three_step_plan(const TernaryWord& data,
                                      const TernaryWord& previous,
                                      const WriteVoltages& v) {
  const std::size_t n = data.size();
  if (previous.size() != n) {
    throw std::invalid_argument("previous/data width mismatch");
  }
  WritePhase erase{.name = "erase", .bl = std::vector<double>(n, 0.0),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  WritePhase prog1{.name = "program-1", .bl = std::vector<double>(n, 0.0),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  WritePhase progx{.name = "program-X", .bl = std::vector<double>(n, 0.0),
                   .bl_bar = {}, .wrsl = v.vdd, .sl = 0.0,
                   .switching_cells = 0};
  for (std::size_t c = 0; c < n; ++c) {
    if (data[c] == previous[c]) continue;
    // Erased state is HVT ('0'): a changed cell needs the erase pulse only
    // when it sits above HVT, and a program pulse only to leave HVT.
    if (previous[c] != Ternary::kZero) {
      erase.bl[c] = -v.vw;
      ++erase.switching_cells;
    }
    if (data[c] == Ternary::kOne) {
      prog1.bl[c] = v.vw;
      ++prog1.switching_cells;
    } else if (data[c] == Ternary::kX) {
      progx.bl[c] = v.vm;
      ++progx.switching_cells;
    }
  }
  WritePlan plan;
  for (const auto& phase : {erase, prog1, progx}) {
    if (phase.switching_cells > 0) plan.phases.push_back(phase);
  }
  return plan;
}

WritePlan incremental_complementary_plan(const TernaryWord& data,
                                         const TernaryWord& previous,
                                         const WriteVoltages& v) {
  const std::size_t n = data.size();
  if (previous.size() != n) {
    throw std::invalid_argument("previous/data width mismatch");
  }
  WritePhase ph{.name = "write-delta", .bl = std::vector<double>(n, 0.0),
                .bl_bar = std::vector<double>(n, 0.0), .wrsl = 0.0,
                .sl = 0.0, .switching_cells = 0};
  for (std::size_t c = 0; c < n; ++c) {
    if (data[c] == previous[c]) continue;
    switch (data[c]) {
      case Ternary::kZero:
        ph.bl[c] = -v.vw;
        ph.bl_bar[c] = v.vw;
        break;
      case Ternary::kOne:
        ph.bl[c] = v.vw;
        ph.bl_bar[c] = -v.vw;
        break;
      case Ternary::kX:
        ph.bl[c] = -v.vw;
        ph.bl_bar[c] = -v.vw;
        break;
    }
    ph.switching_cells += 2;
  }
  WritePlan plan;
  if (ph.switching_cells > 0) plan.phases.push_back(ph);
  return plan;
}

}  // namespace fetcam::arch
