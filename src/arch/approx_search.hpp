// Approximate (threshold / best-match) search reference over the
// behavioral array — the TAP-CAM generalization of exact ternary match.
//
// Columns are grouped into d-bit digits (d = digit_bits consecutive
// columns form one stored digit, FeCAM-style multi-level cells).  A digit
// mismatches when ANY cared column inside its group mismatches; a row's
// distance is the number of mismatching digits, and the row is a
// candidate when distance <= threshold.  X columns never mismatch, so an
// all-X digit contributes zero distance — exactly like exact match.
//
// At d = 1 and threshold = 0 this degenerates to the exact search
// (candidates == TcamArray::search), which is the differential anchor the
// packed engine kernels are validated against.
#pragma once

#include "arch/behavioral_array.hpp"
#include "arch/search_scheduler.hpp"

namespace fetcam::arch {

struct ApproxSearchResult {
  /// Per-row digit distance.  Invalid rows report -1.  Rows whose
  /// distance exceeded the threshold report the true distance as well
  /// (the reference never early-exits; only the packed kernels do, and
  /// they may then report any value above the threshold).
  std::vector<int> distances;
  /// Per-row candidate flags: valid and distance <= threshold.
  std::vector<bool> within;
  /// Single-step accounting: every valid row is evaluated once (no
  /// two-step early termination in threshold mode), matches = candidates.
  SearchStats stats;
};

/// Count per-row digit mismatches against `query` and threshold them.
/// Requires cols % digit_bits == 0, digit_bits in [1, 3], threshold >= 0.
ApproxSearchResult approx_search(const TcamArray& array, const BitWord& query,
                                 int digit_bits, int threshold);

/// Digit distance between one stored word and a query (helper shared with
/// the workload soft reference).  Sizes must agree.
int digit_distance(const TernaryWord& stored, const BitWord& query,
                   int digit_bits);

}  // namespace fetcam::arch
