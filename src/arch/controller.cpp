#include "arch/controller.hpp"

namespace fetcam::arch {

namespace {

WriteVoltages voltages_for(TcamDesign design) {
  switch (design) {
    case TcamDesign::k2SgFefet:
    case TcamDesign::k1p5SgFe:
      return {.vw = 4.0, .vm = 3.39, .vdd = 0.8};
    case TcamDesign::k2DgFefet:
    case TcamDesign::k1p5DgFe:
      return {.vw = 2.0, .vm = 1.66, .vdd = 0.8};
    case TcamDesign::kCmos16T:
      return {.vw = 0.9, .vm = 0.0, .vdd = 0.8};
  }
  return {};
}

}  // namespace

TcamController::TcamController(TcamDesign design, int rows, int cols)
    : TcamController(design, rows, cols, default_op_costs(design)) {}

TcamController::TcamController(TcamDesign design, int rows, int cols,
                               OpCosts costs)
    : array_(rows, cols),
      energy_(design, rows, cols, costs),
      endurance_(design, rows),
      write_voltages_(voltages_for(design)) {}

void TcamController::update(int row, const TernaryWord& entry) {
  const TernaryWord previous =
      array_.valid(row) ? array_.entry(row) : TernaryWord{};
  const WritePlan plan =
      two_step() ? three_step_plan(entry, previous, write_voltages_)
                 : complementary_plan(entry, write_voltages_);
  write_pulses_ += static_cast<long long>(plan.phases.size());
  // Energy: the 2FeFET designs switch every cell regardless of data; the
  // 1.5T1Fe plans charge only switching cells.
  const int cells = two_step() ? plan.total_switching_cells()
                               : array_.cols();
  energy_.on_write(cells);
  endurance_.on_write(row);
  array_.write(row, entry);
}

void TcamController::erase(int row) { array_.erase(row); }

ScheduledSearchResult TcamController::search(const BitWord& query) {
  ScheduledSearchResult res;
  if (two_step()) {
    res = two_step_search(array_, query);
  } else {
    res.matches = array_.search(query);
    res.stats.rows = array_.rows();
    for (const bool m : res.matches) {
      if (m) ++res.stats.matches;
    }
    // Single-step designs evaluate every cell of every row.
    res.stats.step2_evaluated = array_.rows();
  }
  energy_.on_search(res.stats);
  stats_.add(res.stats);
  return res;
}

std::optional<int> TcamController::first_match(const BitWord& query) {
  const auto res = search(query);
  for (int r = 0; r < array_.rows(); ++r) {
    if (res.matches[static_cast<std::size_t>(r)]) return r;
  }
  return std::nullopt;
}

}  // namespace fetcam::arch
