// Endurance bookkeeping for FeFET TCAM arrays.
//
// The paper motivates the DG-FeFET partly by endurance: the thinner FE
// layer and halved write voltage push cycling endurance past 1e10 [18],
// versus ~1e5-1e7 for thick-FE SG devices.  For "seldom writes, frequent
// searches" workloads that is plenty — but rule-update-heavy deployments
// (routing churn, online learning) can wear rows out.  This model tracks
// per-row write cycles against the device budget and answers: how long does
// the array last at a given update rate, and does write traffic need
// leveling?
#pragma once

#include <cstdint>
#include <vector>

#include "arch/area_model.hpp"

namespace fetcam::arch {

/// Write-cycle budget per design (each row write cycles its cells once; the
/// 2FeFET designs cycle BOTH devices, but the budget is per device).
double endurance_cycles(TcamDesign design);

class EnduranceModel {
 public:
  EnduranceModel(TcamDesign design, int rows);

  /// Record one write (erase+program) of `row`.
  void on_write(int row);

  std::uint64_t writes(int row) const;
  std::uint64_t total_writes() const { return total_; }
  /// Most-written row (the wear hotspot).
  int hottest_row() const;
  /// Least-written row (where a wear-leveling placer should put the next
  /// hot entry; lowest index on ties).
  int coldest_row() const;
  std::uint64_t max_row_writes() const;
  std::uint64_t min_row_writes() const;
  /// Fraction of the hottest row's budget consumed, in [0, inf).
  double wear_fraction() const;
  /// Fraction of one row's budget consumed, in [0, inf).
  double row_wear_fraction(int row) const;
  /// Writes remaining before the hottest row exceeds its budget, assuming
  /// the current per-row distribution continues proportionally.
  std::uint64_t writes_remaining() const;
  /// Lifetime in seconds at `updates_per_second` row writes following the
  /// observed distribution.
  double lifetime_seconds(double updates_per_second) const;
  /// Imbalance metric: hottest-row writes / mean writes (1 = perfectly
  /// leveled).  High values say the controller should wear-level.
  double imbalance() const;

 private:
  TcamDesign design_;
  std::vector<std::uint64_t> per_row_;
  std::uint64_t total_ = 0;
};

}  // namespace fetcam::arch
