#include "arch/energy_model.hpp"

#include <stdexcept>

namespace fetcam::arch {

OpCosts default_op_costs(TcamDesign design) {
  // Calibrated from the SPICE word harnesses at 64-bit words (see
  // tools/calib_fom.cpp and EXPERIMENTS.md).  Energies are per cell.
  switch (design) {
    case TcamDesign::kCmos16T:
      return {.search_e1 = 0.164e-15, .search_e2 = 0.164e-15,
              .latency_1step = 0.0, .latency_full = 79e-12,
              .write_energy = 0.0, .two_step = false};
    case TcamDesign::k2SgFefet:
      return {.search_e1 = 0.237e-15, .search_e2 = 0.237e-15,
              .latency_1step = 0.0, .latency_full = 470e-12,
              .write_energy = 4.0e-15, .two_step = false};
    case TcamDesign::k2DgFefet:
      return {.search_e1 = 2.32e-15, .search_e2 = 2.32e-15,
              .latency_1step = 0.0, .latency_full = 968e-12,
              .write_energy = 1.83e-15, .two_step = false};
    case TcamDesign::k1p5SgFe:
      return {.search_e1 = 0.171e-15, .search_e2 = 0.596e-15,
              .latency_1step = 118e-12, .latency_full = 267e-12,
              .write_energy = 2.22e-15, .two_step = true};
    case TcamDesign::k1p5DgFe:
      return {.search_e1 = 0.380e-15, .search_e2 = 1.64e-15,
              .latency_1step = 326e-12, .latency_full = 737e-12,
              .write_energy = 0.965e-15, .two_step = true};
  }
  throw std::invalid_argument("unknown design");
}

ArrayEnergyModel::ArrayEnergyModel(TcamDesign design, int rows, int cols,
                                   OpCosts costs)
    : design_(design), rows_(rows), cols_(cols), costs_(costs) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("array dimensions must be positive");
  }
}

ArrayEnergyModel::ArrayEnergyModel(TcamDesign design, int rows, int cols)
    : ArrayEnergyModel(design, rows, cols, default_op_costs(design)) {}

void ArrayEnergyModel::on_search(const SearchStats& stats) {
  double e = 0.0;
  if (costs_.two_step) {
    const long long terminated = stats.rows - stats.step2_evaluated;
    e = terminated * cols_ * costs_.search_e1 +
        static_cast<double>(stats.step2_evaluated) * cols_ * costs_.search_e2;
    // Every row finishes within the full-operation window; early-terminated
    // rows do not shorten the array's search cycle (the winner may be in
    // step 2), so the search time is the full latency.
    time_ += costs_.latency_full;
  } else {
    e = static_cast<double>(stats.rows) * cols_ * costs_.search_e2;
    time_ += costs_.latency_full;
  }
  energy_ += e;
  search_energy_ += e;
  cells_searched_ += static_cast<long long>(stats.rows) * cols_;
  ++searches_;
}

void ArrayEnergyModel::on_write(int cells) {
  energy_ += cells * costs_.write_energy;
  ++writes_;
}

double ArrayEnergyModel::mean_search_energy_per_cell() const {
  return cells_searched_ > 0 ? search_energy_ / cells_searched_ : 0.0;
}

}  // namespace fetcam::arch
