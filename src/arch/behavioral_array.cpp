#include "arch/behavioral_array.hpp"

#include <stdexcept>

namespace fetcam::arch {

TcamArray::TcamArray(int rows, int cols) : rows_(rows), cols_(cols) {
  // Zero rows is a legal (empty) array: searches return no matches and the
  // scheduler reports 0-row statistics.  Zero or negative columns is not.
  if (rows < 0 || cols <= 0) {
    throw std::invalid_argument("array needs rows >= 0 and cols > 0");
  }
  entries_.assign(static_cast<std::size_t>(rows),
                  TernaryWord(static_cast<std::size_t>(cols), Ternary::kX));
  valid_.assign(static_cast<std::size_t>(rows), false);
}

void TcamArray::check_row(int row) const {
  if (row < 0 || row >= rows_) throw std::out_of_range("row out of range");
}

void TcamArray::write(int row, const TernaryWord& entry) {
  check_row(row);
  if (static_cast<int>(entry.size()) != cols_) {
    throw std::invalid_argument("entry width mismatch");
  }
  entries_[static_cast<std::size_t>(row)] = entry;
  valid_[static_cast<std::size_t>(row)] = true;
}

void TcamArray::erase(int row) {
  check_row(row);
  valid_[static_cast<std::size_t>(row)] = false;
}

bool TcamArray::valid(int row) const {
  check_row(row);
  return valid_[static_cast<std::size_t>(row)];
}

const TernaryWord& TcamArray::entry(int row) const {
  check_row(row);
  return entries_[static_cast<std::size_t>(row)];
}

std::vector<bool> TcamArray::search(const BitWord& query) const {
  if (static_cast<int>(query.size()) != cols_) {
    throw std::invalid_argument("query width mismatch");
  }
  std::vector<bool> out(static_cast<std::size_t>(rows_), false);
  for (int r = 0; r < rows_; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    out[idx] = valid_[idx] && word_matches(entries_[idx], query);
  }
  return out;
}

std::optional<int> TcamArray::first_match(const BitWord& query) const {
  const auto m = search(query);
  for (int r = 0; r < rows_; ++r) {
    if (m[static_cast<std::size_t>(r)]) return r;
  }
  return std::nullopt;
}

std::vector<int> TcamArray::all_matches(const BitWord& query) const {
  const auto m = search(query);
  std::vector<int> out;
  for (int r = 0; r < rows_; ++r) {
    if (m[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

}  // namespace fetcam::arch
