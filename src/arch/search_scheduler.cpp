#include "arch/search_scheduler.hpp"

#include <stdexcept>
#include <string>

namespace fetcam::arch {

ScheduledSearchResult two_step_search(const TcamArray& array,
                                      const BitWord& query) {
  if (static_cast<int>(query.size()) != array.cols()) {
    throw std::invalid_argument("query width mismatch");
  }
  if (array.cols() % 2 != 0) {
    throw std::invalid_argument(
        "two-step search needs an even word length (array is " +
        std::to_string(array.rows()) + " rows x " +
        std::to_string(array.cols()) + " cols)");
  }
  ScheduledSearchResult res;
  res.matches.assign(static_cast<std::size_t>(array.rows()), false);
  res.stats.rows = array.rows();

  for (int r = 0; r < array.rows(); ++r) {
    if (!array.valid(r)) {
      // Invalid rows are kept erased-to-'0' at cell1 positions by the write
      // controller, so they miss in step 1 and never consume step-2 energy.
      ++res.stats.step1_misses;
      continue;
    }
    const TernaryWord& e = array.entry(r);
    // Step 1: even (cell1) digits.
    bool alive = true;
    for (int c = 0; c < array.cols(); c += 2) {
      if (!ternary_matches(e[static_cast<std::size_t>(c)],
                           query[static_cast<std::size_t>(c)] != 0)) {
        alive = false;
        break;
      }
    }
    if (!alive) {
      ++res.stats.step1_misses;
      continue;
    }
    // Step 2: odd (cell2) digits, only for surviving rows.
    ++res.stats.step2_evaluated;
    bool match = true;
    for (int c = 1; c < array.cols(); c += 2) {
      if (!ternary_matches(e[static_cast<std::size_t>(c)],
                           query[static_cast<std::size_t>(c)] != 0)) {
        match = false;
        break;
      }
    }
    if (match) {
      res.matches[static_cast<std::size_t>(r)] = true;
      ++res.stats.matches;
    }
  }
  return res;
}

}  // namespace fetcam::arch
