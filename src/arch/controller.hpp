// TCAM macro controller: the firmware-facing façade.
//
// Ties together the behavioral array (content), the two-step search
// scheduler (early termination), the write controller (1- or 3-phase
// plans), the energy model (per-op costs), and endurance bookkeeping — so
// an application issues `search` / `update` calls and gets functional
// results plus running energy/latency/lifetime telemetry, exactly the
// accounting the examples previously hand-rolled.
#pragma once

#include <optional>

#include "arch/behavioral_array.hpp"
#include "arch/endurance.hpp"
#include "arch/energy_model.hpp"
#include "arch/search_scheduler.hpp"
#include "arch/write_controller.hpp"

namespace fetcam::arch {

class TcamController {
 public:
  TcamController(TcamDesign design, int rows, int cols);
  TcamController(TcamDesign design, int rows, int cols, OpCosts costs);

  int rows() const { return array_.rows(); }
  int cols() const { return array_.cols(); }
  TcamDesign design() const { return energy_.design(); }

  /// Store an entry; generates the design's write plan (three-phase for
  /// 1.5T1Fe) and charges energy/endurance for the switching cells.
  void update(int row, const TernaryWord& entry);
  /// Invalidate a row (no device writes: the valid bit lives in the
  /// peripheral logic).
  void erase(int row);

  /// Parallel search with the design's step semantics; charges energy per
  /// the early-termination statistics.
  ScheduledSearchResult search(const BitWord& query);
  /// Priority-encoded convenience.
  std::optional<int> first_match(const BitWord& query);

  const TcamArray& array() const { return array_; }
  const ArrayEnergyModel& energy() const { return energy_; }
  const EnduranceModel& endurance() const { return endurance_; }
  const SearchStatsAccumulator& search_stats() const { return stats_; }

  /// Total write pulses issued (phases x rows written).
  long long write_pulses() const { return write_pulses_; }

 private:
  bool two_step() const { return energy_.costs().two_step; }

  TcamArray array_;
  ArrayEnergyModel energy_;
  EnduranceModel endurance_;
  SearchStatsAccumulator stats_;
  WriteVoltages write_voltages_;
  long long write_pulses_ = 0;
};

}  // namespace fetcam::arch
