// Behavioral (golden) TCAM array model.
//
// Functionally exact content-addressable search over ternary entries, used
// as the reference the circuit harnesses are checked against, and as the
// fast engine behind the examples (routing, pattern stores) where running a
// transient per search would be absurd.
#pragma once

#include <optional>
#include <vector>

#include "arch/ternary.hpp"

namespace fetcam::arch {

class TcamArray {
 public:
  /// rows entries of `cols` ternary digits, all initialized to 'X'
  /// (matching an erased array) and marked invalid.  rows >= 0 (a zero-row
  /// array is empty and matches nothing), cols > 0.
  TcamArray(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Store an entry (marks the row valid).
  void write(int row, const TernaryWord& entry);
  /// Invalidate a row (it matches nothing until rewritten).
  void erase(int row);
  bool valid(int row) const;
  const TernaryWord& entry(int row) const;

  /// Fully parallel search: per-row match flags (invalid rows never match).
  std::vector<bool> search(const BitWord& query) const;

  /// Priority-encoded search: lowest matching row index.
  std::optional<int> first_match(const BitWord& query) const;

  /// All matching row indices, ascending.
  std::vector<int> all_matches(const BitWord& query) const;

 private:
  void check_row(int row) const;

  int rows_;
  int cols_;
  std::vector<TernaryWord> entries_;
  std::vector<bool> valid_;
};

}  // namespace fetcam::arch
