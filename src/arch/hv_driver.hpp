// Shared high-voltage driver architecture (paper Sec. III-B4, Fig. 6).
//
// Device/circuit co-optimization makes the DG-FeFET LVT write voltage equal
// to the BG read (select) voltage — 2.0 V — so one HV driver can drive BLs
// during writes and SeLs during searches.  Because BLs and SeLs run
// perpendicular and are never active at the same time within a subarray,
// adjacent 90-degree-rotated subarrays (4 per mat) share driver banks in a
// time-multiplexed way, halving driver count.
//
// This model answers the questions Fig. 6 raises: how many drivers, how much
// area and leakage is saved, how busy the drivers are, and what scheduling
// conflicts the time multiplexing introduces.
#pragma once

#include <string>
#include <vector>

namespace fetcam::arch {

struct HvDriverParams {
  double area_um2 = 12.0;     ///< one HV (2 V) level-shifting driver
  double leakage_nw = 2.0;    ///< idle leakage per driver, nW
  bool voltages_match = true; ///< write and select voltage co-optimized equal
};

struct MatGeometry {
  int rows = 64;   ///< per subarray
  int cols = 64;
  int subarrays = 4;  ///< one mat
};

enum class MatOp { kIdle, kSearch, kWrite };

struct DriverBankReport {
  int drivers_dedicated = 0;
  int drivers_shared = 0;
  double area_dedicated_um2 = 0.0;
  double area_shared_um2 = 0.0;
  double leakage_dedicated_nw = 0.0;
  double leakage_shared_nw = 0.0;
  double area_saving() const {
    return area_dedicated_um2 > 0.0
               ? 1.0 - area_shared_um2 / area_dedicated_um2
               : 0.0;
  }
};

/// Driver counts/area/leakage for a mat of 1.5T1Fe subarrays, dedicated vs
/// shared.  Sharing requires voltages_match (the co-optimization); without
/// it, separate write and select banks are needed and nothing is saved.
DriverBankReport driver_bank_report(const MatGeometry& g,
                                    const HvDriverParams& p);

/// Cycle-accurate-ish schedule simulation of a shared mat: each cycle every
/// subarray requests an operation; a shared bank serves the write lines of
/// one subarray and the select lines of its 90-degree neighbour, so a write
/// in one subarray conflicts with a concurrent search in the paired one.
class SharedDriverScheduler {
 public:
  SharedDriverScheduler(MatGeometry g, HvDriverParams p);

  /// Submit one cycle of per-subarray requests (size == subarrays).
  /// Returns which subarrays were granted this cycle; denied requests are
  /// counted as stalls (the caller retries next cycle).
  std::vector<bool> submit(const std::vector<MatOp>& requests);

  long long cycles() const { return cycles_; }
  long long grants() const { return grants_; }
  long long stalls() const { return stalls_; }
  /// Fraction of driver-bank cycles doing useful work.
  double utilization() const;

 private:
  MatGeometry geom_;
  HvDriverParams params_;
  long long cycles_ = 0;
  long long grants_ = 0;
  long long stalls_ = 0;
  long long busy_bank_cycles_ = 0;
};

}  // namespace fetcam::arch
