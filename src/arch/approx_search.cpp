#include "arch/approx_search.hpp"

#include <stdexcept>

namespace fetcam::arch {

int digit_distance(const TernaryWord& stored, const BitWord& query,
                   int digit_bits) {
  if (stored.size() != query.size()) {
    throw std::invalid_argument("stored/query width mismatch");
  }
  int distance = 0;
  for (std::size_t c = 0; c < stored.size();
       c += static_cast<std::size_t>(digit_bits)) {
    for (int b = 0; b < digit_bits; ++b) {
      const std::size_t col = c + static_cast<std::size_t>(b);
      if (!ternary_matches(stored[col], query[col] != 0)) {
        ++distance;
        break;  // one mismatching column settles the whole digit
      }
    }
  }
  return distance;
}

ApproxSearchResult approx_search(const TcamArray& array, const BitWord& query,
                                 int digit_bits, int threshold) {
  if (digit_bits < 1 || digit_bits > 3) {
    throw std::invalid_argument("digit_bits must be in [1, 3]");
  }
  if (array.cols() % digit_bits != 0) {
    throw std::invalid_argument("cols must be a multiple of digit_bits");
  }
  if (threshold < 0) {
    throw std::invalid_argument("distance_threshold must be >= 0");
  }
  if (static_cast<int>(query.size()) != array.cols()) {
    throw std::invalid_argument("query width mismatch");
  }
  ApproxSearchResult out;
  out.distances.assign(static_cast<std::size_t>(array.rows()), -1);
  out.within.assign(static_cast<std::size_t>(array.rows()), false);
  out.stats.rows = array.rows();
  // Single-step accounting, matching the packed kernels' full-match
  // convention: every row fires once, step1_misses stays 0.
  out.stats.step2_evaluated = array.rows();
  for (int r = 0; r < array.rows(); ++r) {
    if (!array.valid(r)) continue;
    const int d = digit_distance(array.entry(r), query, digit_bits);
    out.distances[static_cast<std::size_t>(r)] = d;
    if (d <= threshold) {
      out.within[static_cast<std::size_t>(r)] = true;
      out.stats.matches += 1;
    }
  }
  return out;
}

}  // namespace fetcam::arch
