#include "arch/hv_driver.hpp"

#include <stdexcept>

namespace fetcam::arch {

DriverBankReport driver_bank_report(const MatGeometry& g,
                                    const HvDriverParams& p) {
  DriverBankReport r;
  // Per 1.5T1Fe subarray: one BL write driver per column, and 2 SeL drivers
  // per row (SeL_a / SeL_b).
  const int per_subarray = g.cols + 2 * g.rows;
  r.drivers_dedicated = g.subarrays * per_subarray;
  // Fig. 6: BLs of one subarray and SeLs of the rotated neighbour share a
  // bank, halving the count — but only when the write and select voltages
  // were co-optimized to the same level.
  r.drivers_shared = p.voltages_match ? (r.drivers_dedicated + 1) / 2
                                      : r.drivers_dedicated;
  r.area_dedicated_um2 = r.drivers_dedicated * p.area_um2;
  r.area_shared_um2 = r.drivers_shared * p.area_um2;
  r.leakage_dedicated_nw = r.drivers_dedicated * p.leakage_nw;
  r.leakage_shared_nw = r.drivers_shared * p.leakage_nw;
  return r;
}

SharedDriverScheduler::SharedDriverScheduler(MatGeometry g, HvDriverParams p)
    : geom_(g), params_(p) {
  if (g.subarrays % 2 != 0) {
    throw std::invalid_argument("shared mat needs an even subarray count");
  }
  if (!p.voltages_match) {
    throw std::invalid_argument(
        "driver sharing requires the write/select voltage co-optimization");
  }
}

std::vector<bool> SharedDriverScheduler::submit(
    const std::vector<MatOp>& requests) {
  if (static_cast<int>(requests.size()) != geom_.subarrays) {
    throw std::invalid_argument("one request per subarray expected");
  }
  ++cycles_;
  std::vector<bool> granted(requests.size(), false);
  // Subarrays are paired (0,1), (2,3), ...: each pair shares one bank that
  // can serve, per cycle, EITHER the write lines of one member OR the select
  // lines of the other member — but both members may search concurrently
  // only if one of them uses its own half of the bank; a write occupies the
  // full shared bank.
  for (std::size_t p = 0; p + 1 < requests.size(); p += 2) {
    const MatOp a = requests[p];
    const MatOp b = requests[p + 1];
    const bool bank_used = a != MatOp::kIdle || b != MatOp::kIdle;
    if (a == MatOp::kWrite && b != MatOp::kIdle) {
      // Write monopolizes the bank: the neighbour stalls.
      granted[p] = true;
      ++grants_;
      ++stalls_;
    } else if (b == MatOp::kWrite && a != MatOp::kIdle) {
      granted[p + 1] = true;
      ++grants_;
      ++stalls_;
    } else {
      if (a != MatOp::kIdle) {
        granted[p] = true;
        ++grants_;
      }
      if (b != MatOp::kIdle) {
        granted[p + 1] = true;
        ++grants_;
      }
    }
    if (bank_used) ++busy_bank_cycles_;
  }
  return granted;
}

double SharedDriverScheduler::utilization() const {
  const long long banks = geom_.subarrays / 2;
  const long long total = cycles_ * banks;
  return total > 0 ? static_cast<double>(busy_bank_cycles_) / total : 0.0;
}

}  // namespace fetcam::arch
