// Parametric cell/array area model.
//
// The paper estimates cell areas from layouts [27] including "the large
// spacing between different P-wells".  We reproduce the same accounting as
// an explicit sum of components:
//
//   cell area = (FeFET devices) + (control transistors, sized)
//             + (isolated P-well spacing share)
//
// with component footprints calibrated so the five designs land on the
// Table IV values (0.286 / 0.095 / 0.204 / 0.108 / 0.156 um^2).  The knobs
// stay physical: shrink `well_spacing_unit` and the DG designs close the gap
// to their SG counterparts, exactly the sensitivity the paper discusses.
#pragma once

#include <string>

namespace fetcam::arch {

enum class TcamDesign {
  kCmos16T,
  k2SgFefet,
  k2DgFefet,
  k1p5SgFe,
  k1p5DgFe,
};

std::string design_name(TcamDesign d);

struct AreaParams {
  /// Footprint of one minimum CMOS transistor incl. wiring share, um^2
  /// (16T cell / 16 devices at 14 nm SOI [25]).
  double cmos_t_unit = 0.286 / 16.0;
  /// Footprint of one FeFET (20 x 50 nm device, gate contact, S/D), um^2.
  double fefet_unit = 0.0475;
  /// Footprint of one *sized* control transistor (TP/TN/TML average) — the
  /// "relatively large TP and TN" of the 1.5T1Fe divider, um^2.
  double control_t_unit = 0.121 / 3.0;
  /// Isolated P-well spacing charged per independently-biased well boundary
  /// per cell, um^2.
  double well_spacing_unit = 0.0545;
  /// Row-wise well strips of the 1.5T1Fe DG design amortize part of the
  /// spacing across the word (2M wells instead of 2N columns).
  double row_well_share = 0.88;
};

struct CellArea {
  double total_um2 = 0.0;
  double devices_um2 = 0.0;   ///< FeFETs + control/CMOS transistors
  double well_um2 = 0.0;      ///< P-well isolation share
  int fefets = 0;
  double transistors = 0.0;   ///< control transistors per cell (may be 1.5)
};

/// Per-cell area breakdown for a design.
CellArea cell_area(TcamDesign d, const AreaParams& p = {});

/// Cell pitch along the match line assuming the given aspect ratio
/// (width / height); meters.
double cell_pitch_m(TcamDesign d, const AreaParams& p = {},
                    double aspect = 1.0);

struct ArrayArea {
  double cells_um2 = 0.0;
  double drivers_um2 = 0.0;
  double total_um2 = 0.0;
};

/// Array area for rows x cols cells plus peripheral driver estimate.
/// `driver_um2_per_line` models one HV driver footprint; `shared_drivers`
/// applies the paper's Fig. 6 time-multiplexed sharing (driver count halved).
ArrayArea array_area(TcamDesign d, int rows, int cols,
                     double driver_um2_per_line, bool shared_drivers,
                     const AreaParams& p = {});

}  // namespace fetcam::arch
