// Two-step search scheduler with early termination (paper Sec. III-B3).
//
// Models the 1.5T1Fe array's search control: step 1 raises SeL_a and
// evaluates the cell1 (even-column) digits of every row in parallel; rows
// that already mismatch terminate — their SeL_b stays grounded — and only
// surviving rows evaluate the cell2 (odd-column) digits in step 2.  The
// returned statistics (how many rows ran step 2) drive the energy model:
// the paper assumes >90 % of rows miss in step 1 in real workloads, which
// is where the early-termination energy saving comes from.
#pragma once

#include "arch/behavioral_array.hpp"

namespace fetcam::arch {

struct SearchStats {
  int rows = 0;
  int step1_misses = 0;   ///< rows terminated after step 1
  int step2_evaluated = 0;  ///< rows whose SeL_b was raised
  int matches = 0;

  double step1_miss_rate() const {
    return rows > 0 ? static_cast<double>(step1_misses) / rows : 0.0;
  }
};

struct ScheduledSearchResult {
  std::vector<bool> matches;
  SearchStats stats;
};

/// Run one two-step early-terminating search against the array.
/// Functionally identical to TcamArray::search; additionally reports the
/// step statistics.  Requires an even word length.
ScheduledSearchResult two_step_search(const TcamArray& array,
                                      const BitWord& query);

/// Accumulates step statistics across many searches (for energy reporting).
class SearchStatsAccumulator {
 public:
  void add(const SearchStats& s) {
    searches_ += 1;
    rows_ += s.rows;
    step1_misses_ += s.step1_misses;
    step2_ += s.step2_evaluated;
    matches_ += s.matches;
  }
  int searches() const { return searches_; }
  long long rows_searched() const { return rows_; }
  long long step2_evaluations() const { return step2_; }
  long long matches() const { return matches_; }
  double step1_miss_rate() const {
    return rows_ > 0 ? static_cast<double>(step1_misses_) / rows_ : 0.0;
  }

 private:
  int searches_ = 0;
  long long rows_ = 0;
  long long step1_misses_ = 0;
  long long step2_ = 0;
  long long matches_ = 0;
};

}  // namespace fetcam::arch
