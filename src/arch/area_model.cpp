#include "arch/area_model.hpp"

#include <cmath>
#include <stdexcept>

namespace fetcam::arch {

std::string design_name(TcamDesign d) {
  switch (d) {
    case TcamDesign::kCmos16T:
      return "16T CMOS";
    case TcamDesign::k2SgFefet:
      return "2SG-FeFET";
    case TcamDesign::k2DgFefet:
      return "2DG-FeFET";
    case TcamDesign::k1p5SgFe:
      return "1.5T1SG-Fe";
    case TcamDesign::k1p5DgFe:
      return "1.5T1DG-Fe";
  }
  throw std::invalid_argument("unknown design");
}

CellArea cell_area(TcamDesign d, const AreaParams& p) {
  CellArea a;
  switch (d) {
    case TcamDesign::kCmos16T:
      a.fefets = 0;
      a.transistors = 16.0;
      a.devices_um2 = 16.0 * p.cmos_t_unit;
      a.well_um2 = 0.0;
      break;
    case TcamDesign::k2SgFefet:
      a.fefets = 2;
      a.transistors = 0.0;
      a.devices_um2 = 2.0 * p.fefet_unit;
      a.well_um2 = 0.0;
      break;
    case TcamDesign::k2DgFefet:
      // Dedicated SLs need 2N column-wise isolated P-wells: two well
      // boundaries charged to every cell.
      a.fefets = 2;
      a.transistors = 0.0;
      a.devices_um2 = 2.0 * p.fefet_unit;
      a.well_um2 = 2.0 * p.well_spacing_unit;
      break;
    case TcamDesign::k1p5SgFe:
      // One FeFET plus half of the shared TP/TN/TML per cell.
      a.fefets = 1;
      a.transistors = 1.5;
      a.devices_um2 = p.fefet_unit + 1.5 * p.control_t_unit;
      a.well_um2 = 0.0;
      break;
    case TcamDesign::k1p5DgFe:
      // Row-wise SeL wells: 2M wells for an M x N array, partially
      // amortized along the word.
      a.fefets = 1;
      a.transistors = 1.5;
      a.devices_um2 = p.fefet_unit + 1.5 * p.control_t_unit;
      a.well_um2 = p.row_well_share * p.well_spacing_unit;
      break;
  }
  a.total_um2 = a.devices_um2 + a.well_um2;
  return a;
}

double cell_pitch_m(TcamDesign d, const AreaParams& p, double aspect) {
  const double area = cell_area(d, p).total_um2;  // um^2
  const double width_um = std::sqrt(area * aspect);
  return width_um * 1e-6;
}

ArrayArea array_area(TcamDesign d, int rows, int cols,
                     double driver_um2_per_line, bool shared_drivers,
                     const AreaParams& p) {
  ArrayArea out;
  out.cells_um2 = cell_area(d, p).total_um2 * rows * cols;
  // One driver per column write line plus one per row/column search-control
  // line; sharing halves the count (Fig. 6).
  const int write_lines = cols;
  const int search_lines =
      (d == TcamDesign::k1p5DgFe || d == TcamDesign::k1p5SgFe) ? 2 * rows
                                                               : cols;
  int drivers = write_lines + search_lines;
  if (shared_drivers) drivers = (drivers + 1) / 2;
  out.drivers_um2 = drivers * driver_um2_per_line;
  out.total_um2 = out.cells_um2 + out.drivers_um2;
  return out;
}

}  // namespace fetcam::arch
