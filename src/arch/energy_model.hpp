// Array-level energy/latency model, calibrated with per-operation costs
// measured by the circuit harnesses.
//
// The circuit simulations (eval::evaluate_fom) characterize ONE word; this
// model scales those per-cell costs across an M x N array and a workload
// (search mix, step-1 miss rate, write traffic), which is how the paper's
// "average search energy per cell assuming 90 % step-1 miss rate" row and
// the application-level examples are computed.
#pragma once

#include "arch/area_model.hpp"
#include "arch/search_scheduler.hpp"

namespace fetcam::arch {

/// Per-operation, per-cell costs for one design (joules / seconds).
struct OpCosts {
  /// Early-terminated (step-1 only) search energy per cell.  For
  /// single-step designs equal to search_e2.
  double search_e1 = 0.0;
  /// Full-operation search energy per cell.
  double search_e2 = 0.0;
  double latency_1step = 0.0;  ///< 0 for single-step designs
  double latency_full = 0.0;
  double write_energy = 0.0;  ///< per written cell (0 = not modeled)
  bool two_step = false;
};

/// Calibrated defaults per design, extracted from the SPICE word harnesses
/// at the Table IV operating point (64-bit words, 64-row array context).
/// Regenerate with tools/calib_fom or eval::evaluate_fom.
OpCosts default_op_costs(TcamDesign design);

/// Accumulates energy/time over a workload on an M x N array.
class ArrayEnergyModel {
 public:
  ArrayEnergyModel(TcamDesign design, int rows, int cols,
                   OpCosts costs);
  /// Convenience: calibrated defaults.
  ArrayEnergyModel(TcamDesign design, int rows, int cols);

  /// Account one parallel search: rows that terminated in step 1 pay the
  /// 1-step energy, rows that ran step 2 pay the full energy.  For
  /// single-step designs every row pays the full energy.
  void on_search(const SearchStats& stats);
  /// Account one row write of `cells` digits.
  void on_write(int cells);
  /// Projection of what on_write(cells) WOULD charge, without charging it
  /// (planner costing: price a write plan before committing to it).
  double projected_write_energy_j(int cells) const {
    return cells * costs_.write_energy;
  }

  double total_energy_j() const { return energy_; }
  double total_time_s() const { return time_; }
  long long searches() const { return searches_; }
  long long writes() const { return writes_; }
  /// Mean search energy per cell so far, joules.
  double mean_search_energy_per_cell() const;

  const OpCosts& costs() const { return costs_; }
  TcamDesign design() const { return design_; }

 private:
  TcamDesign design_;
  int rows_;
  int cols_;
  OpCosts costs_;
  double energy_ = 0.0;
  double search_energy_ = 0.0;
  double time_ = 0.0;
  long long searches_ = 0;
  long long writes_ = 0;
  long long cells_searched_ = 0;
};

}  // namespace fetcam::arch
