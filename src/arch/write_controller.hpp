// Write-plan generation: the voltage sequences the array controller issues.
//
// 2FeFET designs write in ONE phase (complementary +/-Vw on the two write
// gates).  The 1.5T1Fe designs need THREE phases (paper Sec. III-B3) because
// a single FeFET must land on one of three V_TH levels:
//   phase 0 "erase":      every BL at -Vw  -> all cells HVT
//   phase 1 "program-1":  BL = +Vw on '1' columns, 0 elsewhere
//   phase 2 "program-X":  BL = V_m on 'X' columns, 0 elsewhere
// Throughout, Wr/SL = VDD (TN grounds SL_bar) and SL = 0 ground the channel.
#pragma once

#include <string>
#include <vector>

#include "arch/ternary.hpp"

namespace fetcam::arch {

struct WriteVoltages {
  double vw = 2.0;   ///< full write voltage
  double vm = 1.65;  ///< partial (MVT / 'X') write voltage
  double vdd = 0.8;
};

struct WritePhase {
  std::string name;
  /// Per-column write-gate voltage (BL for 1.5T1Fe/2DG, SL for 2SG).
  std::vector<double> bl;
  /// Complementary write-gate voltage (2FeFET designs only; empty for
  /// single-FeFET cells).
  std::vector<double> bl_bar;
  double wrsl = 0.0;  ///< pair-transistor gate level (1.5T1Fe)
  double sl = 0.0;    ///< cell SL level
  /// Cells whose polarization switches in this phase (energy accounting).
  int switching_cells = 0;
};

struct WritePlan {
  std::vector<WritePhase> phases;
  int total_switching_cells() const;
};

/// Three-phase plan for the 1.5T1Fe designs.  `previous` (same width, may be
/// empty = erased) determines which cells actually switch in each phase.
WritePlan three_step_plan(const TernaryWord& data, const TernaryWord& previous,
                          const WriteVoltages& v);

/// Single-phase complementary plan for the 2FeFET designs.  Both FeFETs of
/// every written cell switch (state-independent write energy).
WritePlan complementary_plan(const TernaryWord& data, const WriteVoltages& v);

/// Delta variant of the three-phase plan: drives ONLY columns whose digit
/// changes (`previous` required, same width); unchanged columns stay
/// inhibited.  Phases that drive no column are omitted, so an unchanged
/// word costs zero pulses and a single 1->0 edit costs one erase pulse.
/// This is the rule-update write the compiler's delta planner issues.
WritePlan incremental_three_step_plan(const TernaryWord& data,
                                      const TernaryWord& previous,
                                      const WriteVoltages& v);

/// Delta variant of the complementary plan: writes only changed columns
/// (both FeFETs of each switch); zero phases when nothing changed.
WritePlan incremental_complementary_plan(const TernaryWord& data,
                                         const TernaryWord& previous,
                                         const WriteVoltages& v);

}  // namespace fetcam::arch
