// Ternary digit and word utilities shared by the behavioral and circuit
// TCAM models.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fetcam::arch {

/// One TCAM digit: '0', '1', or don't-care.
enum class Ternary : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

char to_char(Ternary t);
Ternary ternary_from_char(char c);  ///< accepts '0', '1', 'x', 'X', '*'

/// A stored TCAM entry, most-significant digit first.
using TernaryWord = std::vector<Ternary>;
/// A binary search query (0/1 per bit).
using BitWord = std::vector<std::uint8_t>;

TernaryWord word_from_string(std::string_view s);
std::string to_string(const TernaryWord& w);

BitWord bits_from_string(std::string_view s);
std::string to_string(const BitWord& b);

/// One-digit match rule: X matches anything.
inline bool ternary_matches(Ternary stored, bool query_bit) {
  return stored == Ternary::kX ||
         (stored == Ternary::kOne) == query_bit;
}

/// Full-word match (sizes must agree).
bool word_matches(const TernaryWord& stored, const BitWord& query);

/// Number of mismatching digit positions (X never mismatches).
int mismatch_count(const TernaryWord& stored, const BitWord& query);

}  // namespace fetcam::arch
