#include "arch/endurance.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fetcam::arch {

double endurance_cycles(TcamDesign design) {
  switch (design) {
    case TcamDesign::kCmos16T:
      return 1e16;  // SRAM: effectively unlimited
    case TcamDesign::k2SgFefet:
    case TcamDesign::k1p5SgFe:
      // Thick-FE (10 nm) SG devices at +/-4 V: charge-trapping limited.
      return 1e6;
    case TcamDesign::k2DgFefet:
    case TcamDesign::k1p5DgFe:
      // Thin-FE DG devices at +/-2 V: >1e10 demonstrated [18].
      return 1e10;
  }
  throw std::invalid_argument("unknown design");
}

EnduranceModel::EnduranceModel(TcamDesign design, int rows)
    : design_(design), per_row_(static_cast<std::size_t>(rows), 0) {
  if (rows <= 0) throw std::invalid_argument("rows must be positive");
}

void EnduranceModel::on_write(int row) {
  per_row_.at(static_cast<std::size_t>(row)) += 1;
  ++total_;
}

std::uint64_t EnduranceModel::writes(int row) const {
  return per_row_.at(static_cast<std::size_t>(row));
}

int EnduranceModel::hottest_row() const {
  return static_cast<int>(
      std::max_element(per_row_.begin(), per_row_.end()) - per_row_.begin());
}

int EnduranceModel::coldest_row() const {
  return static_cast<int>(
      std::min_element(per_row_.begin(), per_row_.end()) - per_row_.begin());
}

std::uint64_t EnduranceModel::max_row_writes() const {
  return per_row_[static_cast<std::size_t>(hottest_row())];
}

std::uint64_t EnduranceModel::min_row_writes() const {
  return per_row_[static_cast<std::size_t>(coldest_row())];
}

double EnduranceModel::wear_fraction() const {
  const auto hot = per_row_[static_cast<std::size_t>(hottest_row())];
  return static_cast<double>(hot) / endurance_cycles(design_);
}

double EnduranceModel::row_wear_fraction(int row) const {
  return static_cast<double>(per_row_.at(static_cast<std::size_t>(row))) /
         endurance_cycles(design_);
}

std::uint64_t EnduranceModel::writes_remaining() const {
  const double frac = wear_fraction();
  if (frac <= 0.0) {
    return static_cast<std::uint64_t>(endurance_cycles(design_)) *
           per_row_.size();
  }
  if (frac >= 1.0) return 0;
  return static_cast<std::uint64_t>(total_ * (1.0 - frac) / frac);
}

double EnduranceModel::lifetime_seconds(double updates_per_second) const {
  if (updates_per_second <= 0.0 || total_ == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(writes_remaining()) / updates_per_second;
}

double EnduranceModel::imbalance() const {
  if (total_ == 0) return 1.0;
  const double mean = static_cast<double>(total_) / per_row_.size();
  const auto hot = per_row_[static_cast<std::size_t>(hottest_row())];
  return static_cast<double>(hot) / mean;
}

}  // namespace fetcam::arch
