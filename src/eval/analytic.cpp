#include "eval/analytic.hpp"

#include <cmath>
#include <stdexcept>

#include "devices/fefet.hpp"
#include "devices/tech14.hpp"
#include "eval/calibration.hpp"
#include "tcam/cell_1p5t1fe.hpp"
#include "tcam/parasitics.hpp"

namespace fetcam::eval {

using arch::TcamDesign;

namespace {

constexpr double kVdd = 0.8;
constexpr double kVtrip = 0.45;  ///< SA stage-1 trip point

/// Drain current at gate overdrive `vov` and a representative Vds in the
/// upper part of the discharge, amperes.
double device_current(const dev::MosfetParams& mos, double vov) {
  return dev::ekv_current(mos.ekv(), vov, 0.75 * kVdd).id;
}

/// Discharge time from the (boosted) precharge level to the SA trip.  The
/// pulldown operates as a saturated current source over most of the swing,
/// so the constant-current form C * dV / I is the right first-order model
/// (an RC-log form would assume triode operation and underestimate).
double discharge_time(double i_pulldown, double c) {
  return c * (0.87 * kVdd - kVtrip) / i_pulldown;
}

double wire_cap_per_cell(TcamDesign d) {
  return tcam::wire_for_pitch({}, arch::cell_pitch_m(d)).capacitance;
}

}  // namespace

AnalyticEstimate analytic_search_estimate(TcamDesign design, int n_bits) {
  AnalyticEstimate est;
  const double edge_overhead = 60e-12;  // precharge release + signal edges

  switch (design) {
    case TcamDesign::kCmos16T: {
      const auto nf = dev::tech14::nfet();
      est.c_ml = n_bits * (2.0 * nf.cjunction() + wire_cap_per_cell(design)) +
                 0.5e-15;  // precharge drain + SA gate
      // Two-NMOS stack, both at full VDD gate drive.
      const double i_stack =
          device_current(nf, kVdd - nf.vth0) / 2.0;  // series stack
      est.r_discharge = (kVdd / 2.0) / i_stack;
      est.latency = discharge_time(i_stack, est.c_ml) + edge_overhead;
      est.e_precharge = est.c_ml * kVdd * kVdd;
      // SL/SLbar: one line swings per cell (gate load + wire share).
      est.e_signals =
          n_bits * (nf.cgs() + wire_cap_per_cell(design)) * kVdd * kVdd;
      break;
    }
    case TcamDesign::k2SgFefet:
    case TcamDesign::k2DgFefet: {
      const auto fe = design == TcamDesign::k2SgFefet
                          ? dev::sg_fefet_params()
                          : dev::dg_fefet_params();
      est.c_ml = n_bits * (2.0 * fe.mos.cjunction() +
                           wire_cap_per_cell(design)) +
                 0.5e-15;
      // Worst case: one LVT cell pulls down at the search drive.
      const double vth_lvt = fe.vth_for(1.0);
      const double v_search = design == TcamDesign::k2SgFefet ? 0.45 : 2.0;
      const double vov = design == TcamDesign::k2SgFefet
                             ? v_search - vth_lvt
                             : fe.back_coupling * v_search - vth_lvt;
      const double i_on = device_current(fe.mos, vov);
      est.r_discharge = (kVdd / 2.0) / i_on;
      // Search-line edges couple into the ML through every cell: for the DG
      // flavour the drain junction sits in the SL-driven well (a 2 V kick
      // through ~cj per device boosts the ML well above the precharge level
      // before the discharge starts); for SG only the FG-drain overlap
      // couples.  The pulldown must remove that extra charge too.
      const double c_couple =
          design == TcamDesign::k2SgFefet
              ? 0.5 * fe.mos.cgate() + fe.mos.cov_per_w * fe.mos.w
              : fe.mos.cjunction();
      const double boost = n_bits * c_couple * v_search / est.c_ml;
      est.latency = discharge_time(i_on, est.c_ml) +
                    est.c_ml * boost / i_on + edge_overhead;
      est.e_precharge = est.c_ml * kVdd * kVdd;
      const double c_gate = design == TcamDesign::k2SgFefet
                                ? fe.mos.cgate()
                                : fe.c_bg_factor * fe.mos.cgate() +
                                      2.0 * fe.mos.cjunction();
      est.e_signals = n_bits * (c_gate + wire_cap_per_cell(design)) *
                      v_search * v_search;
      break;
    }
    case TcamDesign::k1p5SgFe:
    case TcamDesign::k1p5DgFe: {
      const bool sg = design == TcamDesign::k1p5SgFe;
      const auto flavor = sg ? tcam::Flavor::kSg : tcam::Flavor::kDg;
      const tcam::OnePointFiveParams p{};
      const auto fe = sg ? dev::sg_fefet_params() : dev::dg_fefet_params();
      const int pairs = n_bits / 2;
      const auto tml = dev::tech14::nfet(p.tml_w, p.tml_l);
      est.c_ml = pairs * (tml.cjunction() +
                          2.0 * wire_cap_per_cell(design)) +
                 0.5e-15;
      // TML gate drive = the divider level of the worst mismatch
      // (stored '1' searched '0'), from the in-situ characterization.
      const auto r = extract_eq1_resistances(flavor);
      const double v_slb = kVdd * r.r_n / (r.r_on + r.r_n);
      const double tml_vth = sg ? p.tml_vth_sg : p.tml_vth_dg;
      dev::MosfetParams tml_card = tml;
      tml_card.vth0 = tml_vth;
      const double i_tml = device_current(tml_card, v_slb - tml_vth);
      est.r_discharge = (kVdd / 2.0) / i_tml;
      // Two-step worst case: full first window (sized to the step latency)
      // plus the step-2 resolution.
      const double step = discharge_time(i_tml, est.c_ml) + edge_overhead;
      est.latency = 2.0 * step;
      est.e_precharge = est.c_ml * kVdd * kVdd;
      // Select lines (both steps) + divider static current over the window.
      const double v_sel = sg ? p.v_sel_sg : p.v_sel_dg;
      const double c_sel =
          n_bits * (fe.c_bg_factor * fe.mos.cgate() +
                    wire_cap_per_cell(design));
      const double i_div = kVdd / (r.r_on + r.r_n);  // per mismatching pair
      est.e_signals = 2.0 * c_sel * v_sel * v_sel +
                      0.5 * pairs * i_div * kVdd * est.latency;
      break;
    }
  }
  est.e_per_cell = (est.e_precharge + est.e_signals) / n_bits;
  return est;
}

double analytic_write_energy(TcamDesign design) {
  if (design == TcamDesign::kCmos16T) return 0.0;
  const bool two_fefet = design == TcamDesign::k2SgFefet ||
                         design == TcamDesign::k2DgFefet;
  const auto fe = (design == TcamDesign::k2SgFefet ||
                   design == TcamDesign::k1p5SgFe)
                      ? dev::sg_fefet_params()
                      : dev::dg_fefet_params();
  const double vw = fe.vw();
  // Per device and write transition: the switched polarization charge plus
  // the FE/gate stack dielectric charge, delivered at Vw on the way in and
  // dissipated on the way out (hence ~2x the CV part in net energy; the
  // polarization charge is dissipated once).
  const double q_pol = 2.0 * fe.fe.ps * fe.fe.area;
  const double c_stack = fe.mos.cgate() + 2.0 * fe.mos.cov_per_w * fe.mos.w;
  const double e_device = q_pol * vw + c_stack * vw * vw;
  // 2FeFET cells drive both devices every write; 1.5T1Fe cells switch one
  // device per written cell (half-'0'/half-'1' average: one transition).
  return two_fefet ? 2.0 * e_device : e_device;
}

}  // namespace fetcam::eval
