#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fetcam::eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_eng(double value, const std::string& unit, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  if (!unit.empty()) os << ' ' << unit;
  return os.str();
}

std::string format_ratio(double baseline, double value, int precision) {
  if (value == 0.0 || !std::isfinite(baseline / value)) return "-";
  std::ostringstream os;
  os.precision(precision);
  os << baseline / value << 'x';
  return os.str();
}

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::string render_variability(const std::string& label,
                               const VariabilityReport& rep) {
  std::ostringstream os;
  os << label << " yield " << fmt("%.1f", 100.0 * rep.cell_yield) << "%\n";
  TextTable t({"stored", "query", "fail%", "worst mV", "mean mV", "solver-fail",
               "gmin", "source"});
  for (const auto& c : rep.corners) {
    t.add_row({std::string(1, arch::to_char(c.stored)),
               std::to_string(c.query),
               fmt("%.1f", 100.0 * c.failure_rate()),
               fmt("%.0f", c.worst_margin * 1e3),
               fmt("%.1f", c.mean_margin * 1e3),
               std::to_string(c.solver_failures),
               std::to_string(c.gmin_rescues),
               std::to_string(c.source_rescues)});
  }
  os << t.str();
  return os.str();
}

std::string variability_json(const std::string& label,
                             const VariabilityReport& rep) {
  std::ostringstream os;
  os << "{\n  \"label\": \"" << label << "\",\n  \"cell_yield\": "
     << fmt("%.17g", rep.cell_yield) << ",\n  \"corners\": [";
  for (std::size_t i = 0; i < rep.corners.size(); ++i) {
    const auto& c = rep.corners[i];
    os << (i > 0 ? ",\n" : "\n")
       << "    {\"stored\": \"" << arch::to_char(c.stored)
       << "\", \"query\": " << c.query << ", \"failures\": " << c.failures
       << ", \"solver_failures\": " << c.solver_failures
       << ", \"gmin_rescues\": " << c.gmin_rescues
       << ", \"source_rescues\": " << c.source_rescues
       << ", \"samples\": " << c.samples
       << ", \"worst_margin\": " << fmt("%.17g", c.worst_margin)
       << ", \"mean_margin\": " << fmt("%.17g", c.mean_margin) << "}";
  }
  os << (rep.corners.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace fetcam::eval
