#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fetcam::eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_eng(double value, const std::string& unit, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  if (!unit.empty()) os << ' ' << unit;
  return os.str();
}

std::string format_ratio(double baseline, double value, int precision) {
  if (value == 0.0 || !std::isfinite(baseline / value)) return "-";
  std::ostringstream os;
  os.precision(precision);
  os << baseline / value << 'x';
  return os.str();
}

}  // namespace fetcam::eval
