#include "eval/fom.hpp"

#include <stdexcept>

#include "devices/fefet.hpp"
#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::eval {

using arch::BitWord;
using arch::TcamDesign;
using arch::Ternary;
using arch::TernaryWord;

namespace {

bool is_two_step(TcamDesign d) {
  return d == TcamDesign::k1p5SgFe || d == TcamDesign::k1p5DgFe;
}

/// Alternating half-'0'/half-'1' stored word with a fully matching query.
void base_pattern(int n, TernaryWord& stored, BitWord& query) {
  stored.clear();
  query.clear();
  for (int i = 0; i < n; ++i) {
    const bool one = (i % 2) != 0;
    stored.push_back(one ? Ternary::kOne : Ternary::kZero);
    query.push_back(one ? 1 : 0);
  }
}

/// Inject the worst-case one-cell mismatch at `pos`: stored '1', query '0'
/// (the slow TML-partially-on corner for 1.5T1Fe; the LVT-pulldown path for
/// the 2FeFET designs).
void inject_mismatch(TernaryWord& stored, BitWord& query, int pos) {
  stored[static_cast<std::size_t>(pos)] = Ternary::kOne;
  query[static_cast<std::size_t>(pos)] = 0;
}

tcam::WordOptions word_options(const FomOptions& opts) {
  tcam::WordOptions w;
  w.n_bits = opts.n_bits;
  w.rows_in_array = opts.rows;
  w.vdd = opts.vdd;
  w.tuning = opts.tuning;
  return w;
}

}  // namespace

LatencyResult measure_worst_latency(TcamDesign design, const FomOptions& opts) {
  LatencyResult out;
  const tcam::WordOptions wopts = word_options(opts);

  tcam::SearchTiming probe = opts.timing;
  probe.t_step = opts.probe_t_step;

  // Pass 1: worst-case mismatch in the first (step-1) position.  Longer
  // words discharge slower; widen the probe window until the SA resolves.
  TernaryWord stored;
  BitWord query;
  base_pattern(opts.n_bits, stored, query);
  inject_mismatch(stored, query, 0);
  double lat1 = 0.0;
  bool found = false;
  for (int attempt = 0; attempt < 4 && !found; ++attempt) {
    tcam::SearchConfig cfg{stored, query, probe, 1};
    const auto m1 = tcam::measure_search(design, wopts, cfg);
    if (!m1.ok) {
      out.error = m1.error;
      return out;
    }
    if (m1.latency.has_value()) {
      lat1 = *m1.latency;
      found = true;
    } else {
      probe.t_step *= 2.0;
    }
  }
  if (!found) {
    out.error = "no SA transition in latency probe";
    return out;
  }

  out.sized_timing = opts.timing;
  out.sized_timing.t_step = lat1 * (1.0 + opts.window_slack);

  if (!is_two_step(design)) {
    out.latency_full = lat1;
    out.ok = true;
    return out;
  }

  out.latency_1step = lat1;
  // Pass 2: mismatch in a cell2 position, full two-step search with the
  // sized step window.
  base_pattern(opts.n_bits, stored, query);
  inject_mismatch(stored, query, 1);
  tcam::SearchConfig cfg2{stored, query, out.sized_timing, 2};
  const auto m2 = tcam::measure_search(design, wopts, cfg2);
  if (!m2.ok || !m2.latency.has_value()) {
    out.error = m2.ok ? "no SA transition in step-2 latency probe" : m2.error;
    return out;
  }
  out.latency_full = *m2.latency;
  out.ok = true;
  return out;
}

SearchEnergyResult measure_search_energy(TcamDesign design,
                                         const FomOptions& opts,
                                         const tcam::SearchTiming& timing) {
  SearchEnergyResult out;
  const tcam::WordOptions wopts = word_options(opts);

  TernaryWord stored;
  BitWord query;
  base_pattern(opts.n_bits, stored, query);
  inject_mismatch(stored, query, 0);

  if (!is_two_step(design)) {
    tcam::SearchConfig cfg{stored, query, timing, 1};
    const auto m = tcam::measure_search(design, wopts, cfg);
    if (!m.ok) {
      out.error = m.error;
      return out;
    }
    out.e1 = out.e2 = out.avg = m.energy_per_cell;
    out.breakdown = m.energy;
    out.ok = true;
    return out;
  }

  // 1-step: early-terminated after a step-1 miss.
  tcam::SearchConfig cfg1{stored, query, timing, 1};
  const auto m1 = tcam::measure_search(design, wopts, cfg1);
  if (!m1.ok) {
    out.error = m1.error;
    return out;
  }
  // 2-step: step-2 miss, both steps run.
  base_pattern(opts.n_bits, stored, query);
  inject_mismatch(stored, query, 1);
  tcam::SearchConfig cfg2{stored, query, timing, 2};
  const auto m2 = tcam::measure_search(design, wopts, cfg2);
  if (!m2.ok) {
    out.error = m2.error;
    return out;
  }
  out.e1 = m1.energy_per_cell;
  out.e2 = m2.energy_per_cell;
  out.avg = opts.miss1_rate * out.e1 + (1.0 - opts.miss1_rate) * out.e2;
  out.breakdown = m1.energy;  // step-1 miss dominates the average
  out.ok = true;
  return out;
}

std::optional<double> measure_write_energy(TcamDesign design,
                                           const FomOptions& opts) {
  if (design == TcamDesign::kCmos16T) return std::nullopt;
  const tcam::WordOptions wopts = word_options(opts);
  // Half '0' / half '1' over the complementary previous data: every cell
  // switches its polarization once.
  TernaryWord data, initial;
  for (int i = 0; i < opts.n_bits; ++i) {
    const bool one = (i % 2) != 0;
    data.push_back(one ? Ternary::kOne : Ternary::kZero);
    initial.push_back(one ? Ternary::kZero : Ternary::kOne);
  }
  tcam::WriteConfig cfg{data, initial, opts.write_timing};
  const auto m = tcam::measure_write(design, wopts, cfg);
  if (!m.ok || !m.data_ok) return std::nullopt;
  return m.energy_per_cell;
}

DesignFom evaluate_fom(TcamDesign design, const FomOptions& opts) {
  DesignFom fom;
  fom.design = design;
  fom.name = arch::design_name(design);
  fom.cell_area_um2 = arch::cell_area(design).total_um2;

  // Device-level constants from the technology cards.
  switch (design) {
    case TcamDesign::kCmos16T:
      fom.write_voltage = 0.9;  // SRAM write at nominal rail [25]
      break;
    case TcamDesign::k2SgFefet:
      fom.write_voltage = dev::sg_fefet_params().vw();
      fom.t_fe_nm = dev::sg_fefet_params().fe.t_fe * 1e9;
      break;
    case TcamDesign::k2DgFefet:
      fom.write_voltage = dev::dg_fefet_params().vw();
      fom.t_fe_nm = dev::dg_fefet_params().fe.t_fe * 1e9;
      break;
    case TcamDesign::k1p5SgFe:
    case TcamDesign::k1p5DgFe: {
      const auto flavor = design == TcamDesign::k1p5SgFe ? tcam::Flavor::kSg
                                                         : tcam::Flavor::kDg;
      tcam::OnePointFiveWord probe(flavor, word_options(opts));
      fom.write_voltage = flavor == tcam::Flavor::kSg
                              ? dev::sg_fefet_params().vw()
                              : dev::dg_fefet_params().vw();
      fom.t_fe_nm = (flavor == tcam::Flavor::kSg
                         ? dev::sg_fefet_params()
                         : dev::dg_fefet_params())
                        .fe.t_fe *
                    1e9;
      fom.v_mvt = probe.vm();
      break;
    }
  }

  const auto lat = measure_worst_latency(design, opts);
  if (!lat.ok) {
    fom.error = "latency: " + lat.error;
    return fom;
  }
  fom.latency_1step_ps = lat.latency_1step * 1e12;
  fom.latency_ps = lat.latency_full * 1e12;

  const auto energy = measure_search_energy(design, opts, lat.sized_timing);
  if (!energy.ok) {
    fom.error = "search energy: " + energy.error;
    return fom;
  }
  fom.energy_1step_fj = energy.e1 * 1e15;
  fom.energy_2step_fj = energy.e2 * 1e15;
  fom.energy_avg_fj = energy.avg * 1e15;
  fom.energy_breakdown = energy.breakdown;

  if (const auto we = measure_write_energy(design, opts)) {
    fom.write_energy_fj = *we * 1e15;
  }
  fom.ok = true;
  return fom;
}

}  // namespace fetcam::eval
