// Internals shared between the Monte-Carlo variability analysis and the
// program-and-verify trimming study.
//
// RNG stream layout (see util/rng.hpp): trial s of a run seeded with
// `vp.seed` draws from util::trial_rng(vp.seed, s, /*stream=*/0), and
// sample_cell consumes exactly the Gaussian sequence
//   vth_fe, ps_rel, vc_rel, tn_vth, tp_vth, tml_vth
// from it.  Consequences the tests rely on:
//   * trial s sees the same device regardless of thread count, chunking,
//     or execution order — reports are bit-identical for any schedule;
//   * the open-loop and trimmed analyses sample IDENTICAL devices for
//     the same (seed, trial), so their yields are directly comparable
//     sample-by-sample, not just in distribution.
#pragma once

#include <array>
#include <cstddef>
#include <random>
#include <vector>

#include "devices/fefet.hpp"
#include "devices/mosfet.hpp"
#include "eval/variability.hpp"
#include "spice/op.hpp"

namespace fetcam::eval::detail {

/// One sampled instance of the divider devices.
struct SampledCell {
  dev::FeFetParams fe;
  dev::MosfetParams tn, tp, tml;
};

SampledCell sample_cell(tcam::Flavor flavor,
                        const tcam::OnePointFiveParams& p,
                        const VariabilityParams& vp, std::mt19937& rng);

/// Same draw sequence around an explicit base FeFET card (DSE-tuned
/// designs).  The flavour-card overload above is exactly this with the
/// nominal sg/dg card, so (seed, trial) pairs stay comparable.
SampledCell sample_cell(tcam::Flavor flavor,
                        const tcam::OnePointFiveParams& p,
                        const dev::FeFetParams& base_fe,
                        const VariabilityParams& vp, std::mt19937& rng);

/// Result of one divider operating-point solve: V(SL_bar) (NaN when the
/// solver diverged) plus which continuation strategy produced it — the
/// per-trial attribution that flows into CornerYield.
struct DividerSolve {
  double v_slb = 0.0;
  spice::OpStrategy strategy = spice::OpStrategy::kFailed;
};

/// Solve the static divider leg for one corner with an explicit
/// polarization (C/m^2) for the FeFET.  `ws` (optional) is the trial's
/// reusable sparse solver workspace: each corner builds a fresh Circuit,
/// but the stamp sequence and hence the Jacobian pattern are identical
/// across corners and trials, so one workspace per worker thread keeps
/// the symbolic factorization hot for the whole Monte-Carlo loop.
DividerSolve divider_slb_at_polarization(tcam::Flavor flavor,
                                         const tcam::OnePointFiveParams& p,
                                         const SampledCell& cell,
                                         double polarization, bool query_one,
                                         double vdd,
                                         num::SparseNewtonWorkspace* ws =
                                             nullptr);

/// The six stored x query corners, in report order.
struct Corner {
  arch::Ternary stored;
  int query;
  bool expect_match;
};
inline constexpr std::size_t kNumCorners = 6;
const std::array<Corner, kNumCorners>& corner_table();

/// Signed sense margin for one corner: positive = decided correctly with
/// margin beyond the TML threshold guard band.
double corner_margin(const Corner& corner, double v_slb, double tml_vth,
                     double decision_margin);

/// Per-trial corner margins (NaN marks a non-converged divider solve) plus
/// the solver strategy that produced each corner's operating point.
struct TrialMargins {
  std::array<double, kNumCorners> margin{};
  std::array<spice::OpStrategy, kNumCorners> strategy{};

  double& operator[](std::size_t c) { return margin[c]; }
  double operator[](std::size_t c) const { return margin[c]; }
};

/// Ordered reduction of per-trial margins into the report: tallies are
/// accumulated strictly in trial order (trial 0, 1, 2, ...), so the
/// floating-point sums are bit-identical however the trials were
/// computed.  `trials.size()` must equal vp.samples.
VariabilityReport reduce_margins(const VariabilityParams& vp,
                                 const std::vector<TrialMargins>& trials);

}  // namespace fetcam::eval::detail
