// Internals shared between the Monte-Carlo variability analysis and the
// program-and-verify trimming study.
#pragma once

#include <random>

#include "devices/fefet.hpp"
#include "devices/mosfet.hpp"
#include "eval/variability.hpp"

namespace fetcam::eval::detail {

/// One sampled instance of the divider devices.
struct SampledCell {
  dev::FeFetParams fe;
  dev::MosfetParams tn, tp, tml;
};

SampledCell sample_cell(tcam::Flavor flavor,
                        const tcam::OnePointFiveParams& p,
                        const VariabilityParams& vp, std::mt19937& rng);

/// Solve the static divider leg for one corner with an explicit
/// polarization (C/m^2) for the FeFET; returns V(SL_bar) or NaN.
double divider_slb_at_polarization(tcam::Flavor flavor,
                                   const tcam::OnePointFiveParams& p,
                                   const SampledCell& cell,
                                   double polarization, bool query_one,
                                   double vdd);

}  // namespace fetcam::eval::detail
