// Monte-Carlo variability analysis of the 1.5T1Fe divider.
//
// The paper's device references (Chatterjee et al., TED 2022) flag V_TH and
// polarization variability as the reliability concern for multi-level
// DG-FeFET storage — and the 1.5T1Fe cell stores THREE levels in one device
// with a divider sensing margin of a few hundred millivolts.  This module
// quantifies how much variation the design tolerates:
//
//  * samples device-level variation (FeFET V_TH sigma, saturation
//    polarization sigma, control-transistor V_TH sigma);
//  * solves the divider operating point for every stored x query corner;
//  * classifies each sample as correct/failing against the TML threshold
//    (with the switching margin required for the ML decision);
//  * reports per-corner failure rates and the sense-margin distribution.
//
// Trials run in parallel on the util/parallel.hpp pool (FETCAM_THREADS /
// util::set_thread_count) with per-trial counter-based RNG streams and an
// ordered reduction, so the report is bit-identical for any thread count.
#pragma once

#include <vector>

#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::eval {

struct VariabilityParams {
  double sigma_fefet_vth = 0.03;  ///< FeFET V_TH sigma, volts
  double sigma_ps_rel = 0.05;     ///< relative saturation-polarization sigma
  double sigma_mos_vth = 0.02;    ///< TN/TP/TML V_TH sigma, volts
  /// Relative coercive-voltage sigma — the write-path variation.  The X
  /// write settles on the Preisach branch at V_m, where dP/dV_c is steep,
  /// so V_c spread converts into large MVT placement error (the mechanism
  /// program-and-verify trimming removes; see eval/trim.*).
  double sigma_vc_rel = 0.03;
  int samples = 200;
  /// Root seed of the counter-based per-trial RNG scheme: trial s draws
  /// from util::trial_rng(seed, s, /*stream=*/0) — NOT from one shared
  /// generator — so the report is bit-identical for any thread count,
  /// chunking, or trial execution order, and adding draws to one trial
  /// never perturbs another.  Stream layout: variability_detail.hpp.
  unsigned seed = 1;
  /// Margin SL_bar must clear beyond the TML threshold to count as a
  /// decisive level (models the needed TML overdrive / leak immunity).
  double decision_margin = 0.03;
};

struct CornerYield {
  arch::Ternary stored = arch::Ternary::kZero;
  int query = 0;
  int failures = 0;
  /// Subset of `failures` where the divider solve itself diverged (margin
  /// undefined) rather than deciding with negative margin.  When zero,
  /// worst_margin/mean_margin summarize every sample.
  int solver_failures = 0;
  /// Converged samples the direct Newton solve could NOT handle: the count
  /// rescued by gmin stepping and by source stepping respectively.  A
  /// rising rescue rate is the early-warning signal before solver_failures
  /// appear (see docs/OBSERVABILITY.md).
  int gmin_rescues = 0;
  int source_rescues = 0;
  int samples = 0;
  /// Worst-case sense margin across samples, volts (signed: negative =
  /// functional failure).
  double worst_margin = 0.0;
  double mean_margin = 0.0;
  double failure_rate() const {
    return samples > 0 ? static_cast<double>(failures) / samples : 0.0;
  }
};

struct VariabilityReport {
  std::vector<CornerYield> corners;  ///< six stored x query corners
  /// Fraction of samples in which every corner decided correctly.
  double cell_yield = 0.0;
  bool ok = false;
};

/// The divider design under analysis: the (possibly tuned) cell parameters,
/// supply, and the base FeFET card the per-sample variation is drawn around.
/// `nominal_divider_design` reproduces the legacy defaults bit-identically;
/// the DSE sweep builds tuned instances via tcam::apply_tuning /
/// dev::scale_fe_thickness so yield sees exactly the same devices as the
/// latency/energy transients.
struct DividerDesign {
  tcam::OnePointFiveParams cell;
  double vdd = 0.8;
  dev::FeFetParams fe;  ///< base card; sampling perturbs this
  /// Deterministic sense-margin derating for multi-level digits: with 2^d
  /// levels per device the level spacing shrinks (dev::multi_level_margin)
  /// while the variation noise does not, so the nominal part of each
  /// corner margin is scaled by this factor before classification.
  /// 1.0 = no derating (legacy behaviour, bit-identical).
  double margin_scale = 1.0;
};

/// Legacy defaults for one flavour: default cell card, VDD = 0.8 V, the
/// nominal SG/DG FeFET card, no derating.
DividerDesign nominal_divider_design(tcam::Flavor flavor);

/// Run the Monte-Carlo divider analysis for one flavour.
VariabilityReport analyze_variability(tcam::Flavor flavor,
                                      const VariabilityParams& params = {});

/// Same analysis for an explicit (tuned) divider design.
VariabilityReport analyze_variability(tcam::Flavor flavor,
                                      const DividerDesign& design,
                                      const VariabilityParams& params);

}  // namespace fetcam::eval
