#include "eval/trim.hpp"

#include <algorithm>
#include <cmath>

#include "eval/variability_detail.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fetcam::eval {

using arch::Ternary;

TrimResult trim_mvt(const dev::FeFetParams& device, double vth_target,
                    const TrimParams& params) {
  TrimResult res;
  // The controller only knows the NOMINAL process card; everything
  // device-specific it must learn through verify reads.
  const dev::FeFetParams base = device.double_gate ? dev::dg_fefet_params()
                                                   : dev::sg_fefet_params();
  if (params.window_relative) {
    // Characterization reads: program/erase fully and measure the device's
    // own window edges (these reads are exact in the model; silicon would
    // use the same full-write + constant-current read).
    const double lvt_meas = device.vth_for(1.0);
    const double hvt_meas = device.vth_for(-1.0);
    const double frac =
        (base.vth_for(-1.0) - vth_target) / (base.vth_for(-1.0) -
                                             base.vth_for(1.0));
    vth_target = hvt_meas - frac * (hvt_meas - lvt_meas);
  }

  double vm = base.write_voltage_for_vth(vth_target);
  double pol = -device.fe.ps;
  for (int pulse = 0; pulse < params.max_pulses; ++pulse) {
    ++res.pulses;
    // Erase, then program at the trial voltage (the ascending branch makes
    // each trial deterministic and history-free).
    pol = -device.fe.ps;
    pol = dev::advance_polarization(device.fe, pol, vm, params.pulse_width)
              .p_end;
    // Verify read: the achieved threshold on the REAL device.
    res.final_vth = device.vth_for(pol / device.fe.ps);
    res.final_vm = vm;
    const double error = res.final_vth - vth_target;
    if (std::abs(error) <= params.vth_tolerance) {
      res.converged = true;
      return res;
    }
    // Positive error = threshold too high = not enough polarization =
    // raise the write voltage.
    vm += params.gain * error;
    // Keep the trial inside the physically sane range.
    vm = std::clamp(vm, 0.5 * device.fe.vc, device.fe.vw());
  }
  return res;
}

VariabilityReport analyze_variability_trimmed(tcam::Flavor flavor,
                                              const VariabilityParams& vp,
                                              const TrimParams& trim) {
  const tcam::OnePointFiveParams p{};
  const double vdd = 0.8;
  const double mvt_target =
      flavor == tcam::Flavor::kSg ? p.mvt_vth_sg : p.mvt_vth_dg;
  const auto& corners = detail::corner_table();

  // Trial s draws from the SAME (seed, s) stream as the open-loop
  // analysis, so both studies see identical sampled devices and their
  // yields are comparable device-by-device (see variability_detail.hpp).
  const auto trials = util::parallel_map<detail::TrialMargins>(
      static_cast<std::size_t>(std::max(vp.samples, 0)),
      [&](std::size_t s) {
        const obs::ScopedSpan span("eval.trim_trial", "eval");
        std::mt19937 rng = util::trial_rng(vp.seed, s);
        const auto cell = detail::sample_cell(flavor, p, vp, rng);
        // Closed-loop X placement for this device.
        const auto trimmed = trim_mvt(cell.fe, mvt_target, trim);
        const double pol_x =
            (cell.fe.mos.vth0 - trimmed.final_vth) / (cell.fe.mw_fg / 2.0) *
            cell.fe.fe.ps;
        detail::TrialMargins margins;
        // One workspace across the trial's corner solves (identical
        // divider topology each time; see variability_detail.hpp).
        num::SparseNewtonWorkspace ws;
        for (std::size_t c = 0; c < corners.size(); ++c) {
          double pol = 0.0;
          switch (corners[c].stored) {
            case Ternary::kZero:
              pol = -cell.fe.fe.ps;
              break;
            case Ternary::kOne:
              pol = cell.fe.fe.ps;
              break;
            case Ternary::kX:
              pol = pol_x;
              break;
          }
          const auto solve = detail::divider_slb_at_polarization(
              flavor, p, cell, pol, corners[c].query != 0, vdd, &ws);
          margins.strategy[c] = solve.strategy;
          margins.margin[c] = std::isnan(solve.v_slb)
                                  ? solve.v_slb
                                  : detail::corner_margin(corners[c],
                                                          solve.v_slb,
                                                          cell.tml.vth0,
                                                          vp.decision_margin);
        }
        return margins;
      });
  return detail::reduce_margins(vp, trials);
}

}  // namespace fetcam::eval
