#include "eval/trim.hpp"

#include <algorithm>
#include <cmath>

#include "eval/variability_detail.hpp"

namespace fetcam::eval {

using arch::Ternary;

TrimResult trim_mvt(const dev::FeFetParams& device, double vth_target,
                    const TrimParams& params) {
  TrimResult res;
  // The controller only knows the NOMINAL process card; everything
  // device-specific it must learn through verify reads.
  const dev::FeFetParams base = device.double_gate ? dev::dg_fefet_params()
                                                   : dev::sg_fefet_params();
  if (params.window_relative) {
    // Characterization reads: program/erase fully and measure the device's
    // own window edges (these reads are exact in the model; silicon would
    // use the same full-write + constant-current read).
    const double lvt_meas = device.vth_for(1.0);
    const double hvt_meas = device.vth_for(-1.0);
    const double frac =
        (base.vth_for(-1.0) - vth_target) / (base.vth_for(-1.0) -
                                             base.vth_for(1.0));
    vth_target = hvt_meas - frac * (hvt_meas - lvt_meas);
  }

  double vm = base.write_voltage_for_vth(vth_target);
  double pol = -device.fe.ps;
  for (int pulse = 0; pulse < params.max_pulses; ++pulse) {
    ++res.pulses;
    // Erase, then program at the trial voltage (the ascending branch makes
    // each trial deterministic and history-free).
    pol = -device.fe.ps;
    pol = dev::advance_polarization(device.fe, pol, vm, params.pulse_width)
              .p_end;
    // Verify read: the achieved threshold on the REAL device.
    res.final_vth = device.vth_for(pol / device.fe.ps);
    res.final_vm = vm;
    const double error = res.final_vth - vth_target;
    if (std::abs(error) <= params.vth_tolerance) {
      res.converged = true;
      return res;
    }
    // Positive error = threshold too high = not enough polarization =
    // raise the write voltage.
    vm += params.gain * error;
    // Keep the trial inside the physically sane range.
    vm = std::clamp(vm, 0.5 * device.fe.vc, device.fe.vw());
  }
  return res;
}

VariabilityReport analyze_variability_trimmed(tcam::Flavor flavor,
                                              const VariabilityParams& vp,
                                              const TrimParams& trim) {
  VariabilityReport rep;
  const tcam::OnePointFiveParams p{};
  const double vdd = 0.8;
  std::mt19937 rng(vp.seed);
  const double mvt_target =
      flavor == tcam::Flavor::kSg ? p.mvt_vth_sg : p.mvt_vth_dg;

  struct Corner {
    Ternary stored;
    int query;
    bool expect_match;
  };
  const std::vector<Corner> corners = {
      {Ternary::kZero, 0, true}, {Ternary::kZero, 1, false},
      {Ternary::kOne, 0, false}, {Ternary::kOne, 1, true},
      {Ternary::kX, 0, true},    {Ternary::kX, 1, true},
  };
  rep.corners.resize(corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    rep.corners[c].stored = corners[c].stored;
    rep.corners[c].query = corners[c].query;
    rep.corners[c].worst_margin = 1e9;
  }

  int good_samples = 0;
  for (int s = 0; s < vp.samples; ++s) {
    const auto cell = detail::sample_cell(flavor, p, vp, rng);
    // Closed-loop X placement for this device.
    const auto trimmed = trim_mvt(cell.fe, mvt_target, trim);
    const double pol_x =
        (cell.fe.mos.vth0 - trimmed.final_vth) / (cell.fe.mw_fg / 2.0) *
        cell.fe.fe.ps;
    bool sample_ok = true;
    for (std::size_t c = 0; c < corners.size(); ++c) {
      double pol = 0.0;
      switch (corners[c].stored) {
        case Ternary::kZero:
          pol = -cell.fe.fe.ps;
          break;
        case Ternary::kOne:
          pol = cell.fe.fe.ps;
          break;
        case Ternary::kX:
          pol = pol_x;
          break;
      }
      const double v_slb = detail::divider_slb_at_polarization(
          flavor, p, cell, pol, corners[c].query != 0, vdd);
      auto& cy = rep.corners[c];
      ++cy.samples;
      if (std::isnan(v_slb)) {
        ++cy.failures;
        sample_ok = false;
        continue;
      }
      const double margin =
          corners[c].expect_match
              ? (cell.tml.vth0 - vp.decision_margin) - v_slb
              : v_slb - (cell.tml.vth0 + vp.decision_margin);
      cy.mean_margin += margin;
      cy.worst_margin = std::min(cy.worst_margin, margin);
      if (margin < 0.0) {
        ++cy.failures;
        sample_ok = false;
      }
    }
    if (sample_ok) ++good_samples;
  }
  for (auto& cy : rep.corners) {
    if (cy.samples > 0) cy.mean_margin /= cy.samples;
  }
  rep.cell_yield = static_cast<double>(good_samples) / vp.samples;
  rep.ok = true;
  return rep;
}

}  // namespace fetcam::eval
