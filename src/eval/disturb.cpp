#include "eval/disturb.hpp"

#include <cmath>

#include "devices/preisach.hpp"
#include "util/parallel.hpp"

namespace fetcam::eval {

namespace {

/// Apply `cycles` read pulses of `v_fe` across the FE stack and return the
/// final polarization, starting from the erased (-Ps) state.
double stress(const dev::FerroParams& fe, double v_fe, int cycles,
              double pulse_width) {
  double p = -fe.ps;
  // Pulse trains with identical amplitude are equivalent to one long pulse
  // for the bounded relaxation model, so batch them to keep this O(1)-ish
  // while preserving the exact exponential approach.
  const double total = static_cast<double>(cycles) * pulse_width;
  // Split into a few steps to respect the piecewise branch logic.
  const int chunks = 32;
  for (int k = 0; k < chunks; ++k) {
    p = advance_polarization(fe, p, v_fe, total / chunks).p_end;
  }
  return p;
}

}  // namespace

DisturbResult read_disturb_comparison(const DisturbParams& params) {
  DisturbResult out;
  const auto sg = dev::sg_fefet_params();
  const auto dg = dev::dg_fefet_params();

  // Each stress ratio is an independent Preisach integration — a natural
  // parallel map with index-ordered (hence deterministic) results.
  out.sg_fg_read = util::parallel_map<DisturbPoint>(
      params.stress_ratios.size(), [&](std::size_t k) {
        DisturbPoint pt;
        pt.v_read = params.stress_ratios[k] * sg.fe.vc;
        const double p_end =
            stress(sg.fe, pt.v_read, params.cycles, params.pulse_width);
        pt.p_drift_norm = std::abs(p_end - (-sg.fe.ps)) / sg.fe.ps;
        pt.vth_drift = pt.p_drift_norm * sg.mw_fg / 2.0;
        return pt;
      });

  // DG BG read: the FG (and thus the FE stack) sits at 0 during the read —
  // the select voltage never reaches the ferroelectric.
  {
    DisturbPoint pt;
    pt.v_read = 2.0;  // V_SeL on the BG
    const double v_fe = 0.0;
    const double p_end =
        stress(dg.fe, v_fe, params.cycles, params.pulse_width);
    pt.p_drift_norm = std::abs(p_end - (-dg.fe.ps)) / dg.fe.ps;
    pt.vth_drift = pt.p_drift_norm * dg.mw_fg / 2.0;
    out.dg_bg_read = pt;
  }
  return out;
}

}  // namespace fetcam::eval
