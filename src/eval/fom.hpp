// Figure-of-merit extraction for the five TCAM designs (paper Table IV).
//
// Methodology (following Sec. V-B):
//  * Search latency: worst-case one-cell mismatch.  For the 1.5T1Fe designs
//    both the 1-step (mismatch in a cell1 position) and 2-step (mismatch in
//    a cell2 position) latencies are reported; the slow corner is the
//    stored-'1'-search-'0' case where TML is only partially turned on.
//  * Step-window sizing: a first pass with a generous window measures the
//    worst latency; energies are then measured with t_step = latency * (1 +
//    slack), mirroring the paper's "leave some time slack" sizing.  The
//    divider current of the 1.5T1Fe designs integrates over exactly this
//    window, which is why their search energy rises with word length
//    (Fig. 7b).
//  * Search energy: average case, half the cells storing '0' and half '1';
//    1-step = early-terminated search, 2-step = full search, average assumes
//    a 90 % step-1 miss rate.
//  * Write energy: cell-level, average case half '0' half '1', written over
//    the complementary previous data so every cell switches polarization
//    once (2FeFET cells switch both devices — twice the charge).
#pragma once

#include <optional>
#include <string>

#include "arch/area_model.hpp"
#include "tcam/sim_harness.hpp"

namespace fetcam::eval {

struct FomOptions {
  int n_bits = 64;
  int rows = 64;
  double vdd = 0.8;             ///< array supply (paper: 0.8 V)
  tcam::DeviceTuning tuning;    ///< DSE knobs; identity by default
  double miss1_rate = 0.90;    ///< fraction of rows missing in step 1
  double window_slack = 0.25;  ///< energy-pass window = latency * (1+slack)
  double probe_t_step = 1.5e-9;  ///< generous latency-pass window
  tcam::SearchTiming timing;     ///< precharge/edge/slack template
  tcam::WriteTiming write_timing;
};

struct DesignFom {
  arch::TcamDesign design = arch::TcamDesign::kCmos16T;
  std::string name;
  bool ok = false;
  std::string error;

  // Device-level reporting.
  double write_voltage = 0.0;  ///< |Vw| (0 = N.A.)
  double v_mvt = 0.0;          ///< X-state write voltage (1.5T1Fe only)
  double t_fe_nm = 0.0;        ///< ferroelectric thickness (0 = N.A.)

  // Cell level.
  double cell_area_um2 = 0.0;
  double write_energy_fj = 0.0;  ///< per cell (0 = N.A.)

  // Search.
  double latency_1step_ps = 0.0;  ///< 1.5T1Fe only (0 otherwise)
  double latency_ps = 0.0;        ///< full-operation worst-case latency
  double energy_1step_fj = 0.0;   ///< per cell (1.5T1Fe only)
  double energy_2step_fj = 0.0;   ///< per cell (1.5T1Fe only)
  double energy_avg_fj = 0.0;     ///< per cell, headline number
  tcam::EnergyBreakdown energy_breakdown;  ///< of the headline scenario
};

/// Evaluate one design.  Runs several transient simulations; a 64-bit word
/// takes on the order of a second.
DesignFom evaluate_fom(arch::TcamDesign design, const FomOptions& opts = {});

/// The worst-case one-cell-mismatch search latency (seconds) at the given
/// word length, plus the sized search timing used to measure it.  Exposed
/// separately for the Fig. 7 word-length sweep.
struct LatencyResult {
  bool ok = false;
  std::string error;
  double latency_1step = 0.0;  ///< 1.5T1Fe only
  double latency_full = 0.0;
  tcam::SearchTiming sized_timing;  ///< window sized to the measured latency
};
LatencyResult measure_worst_latency(arch::TcamDesign design,
                                    const FomOptions& opts);

/// Average-case search energy per cell (joules) using `timing`; for 1.5T1Fe
/// designs returns the (1-step, 2-step, miss-weighted average) triple, for
/// others the same single value three times.
struct SearchEnergyResult {
  bool ok = false;
  std::string error;
  double e1 = 0.0, e2 = 0.0, avg = 0.0;
  tcam::EnergyBreakdown breakdown;  ///< of the average-dominant scenario
};
SearchEnergyResult measure_search_energy(arch::TcamDesign design,
                                         const FomOptions& opts,
                                         const tcam::SearchTiming& timing);

/// Average-case write energy per cell (joules); nullopt for designs whose
/// write path is not modeled (16T CMOS).
std::optional<double> measure_write_energy(arch::TcamDesign design,
                                           const FomOptions& opts);

}  // namespace fetcam::eval
