#include "eval/calibration.hpp"

#include "devices/tech14.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace fetcam::eval {

using arch::Ternary;
using dev::FeFet;
using dev::FeState;
using dev::Mosfet;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Solution;
using spice::VoltageSource;
using spice::Waveform;

std::vector<DividerPoint> characterize_divider(tcam::Flavor flavor) {
  std::vector<DividerPoint> out;
  for (const Ternary s : {Ternary::kZero, Ternary::kOne, Ternary::kX}) {
    for (const int q : {0, 1}) {
      tcam::WordOptions opts;
      opts.n_bits = 2;
      tcam::SearchConfig cfg;
      cfg.stored = {s, Ternary::kX};
      cfg.query = {static_cast<std::uint8_t>(q), 0};
      cfg.steps = 1;
      tcam::OnePointFiveWord w(flavor, opts);
      w.build_search(cfg);
      spice::TransientOptions topts;
      topts.t_stop = cfg.timing.search_start() + 0.9 * cfg.timing.t_step;
      topts.dt = w.suggested_dt();
      const auto res = run_transient(w.circuit(), topts);
      DividerPoint pt;
      pt.stored = s;
      pt.query = q;
      pt.expect_match = arch::ternary_matches(s, q != 0);
      if (res.ok) {
        const auto& ckt = w.circuit();
        pt.v_slb = res.trace.voltage_at_time(ckt.node_name(w.slb_node(0)),
                                             topts.t_stop);
        pt.v_ml = res.trace.voltage_at_time(ckt.node_name(w.ml_sense_node()),
                                            topts.t_stop);
        const double half = 0.5 * opts.vdd;
        pt.correct = pt.expect_match ? pt.v_ml > half : pt.v_ml < half;
      }
      out.push_back(pt);
    }
  }
  return out;
}

namespace {

/// Static replica of one divider leg: FeFET between SL and SL_bar, TN to
/// ground, TP to VDD, biased per the search configuration.
struct StaticDivider {
  Circuit ckt;
  FeFet* fe = nullptr;
  Mosfet* tn = nullptr;
  Mosfet* tp = nullptr;
  NodeId slb;

  StaticDivider(tcam::Flavor flavor, const tcam::OnePointFiveParams& p,
                FeState state, double mvt_target, bool searching_zero,
                double vdd) {
    const dev::FeFetParams fp = flavor == tcam::Flavor::kSg
                                    ? dev::sg_fefet_params()
                                    : dev::dg_fefet_params();
    const double v_sel =
        flavor == tcam::Flavor::kSg ? p.v_sel_sg : p.v_sel_dg;
    const NodeId sl = ckt.node("sl");
    slb = ckt.node("slb");
    const NodeId bl = ckt.node("bl");
    const NodeId sel = ckt.node("sel");
    const NodeId wrsl = ckt.node("wrsl");
    const NodeId vddp = ckt.node("vddp");
    const double level = searching_zero ? vdd : 0.0;
    ckt.emplace<VoltageSource>("VSL", sl, kGround, Waveform::dc(level));
    ckt.emplace<VoltageSource>("VWRSL", wrsl, kGround, Waveform::dc(level));
    ckt.emplace<VoltageSource>("VDDP", vddp, kGround, Waveform::dc(vdd));
    if (flavor == tcam::Flavor::kSg) {
      // Merged BL/SeL on the FG.
      ckt.emplace<VoltageSource>("VBL", bl, kGround, Waveform::dc(v_sel));
      ckt.emplace<VoltageSource>("VSELX", sel, kGround, Waveform::dc(0.0));
    } else {
      ckt.emplace<VoltageSource>(
          "VBL", bl, kGround, Waveform::dc(searching_zero ? p.v_b : 0.0));
      ckt.emplace<VoltageSource>("VSELX", sel, kGround, Waveform::dc(v_sel));
    }
    fe = &ckt.emplace<FeFet>("FE", sl, bl, slb, sel, fp);
    fe->set_state(state, mvt_target);
    tn = &ckt.emplace<Mosfet>("TN", slb, wrsl, kGround, kGround,
                              dev::tech14::nfet(p.tn_w, p.tn_l));
    tp = &ckt.emplace<Mosfet>("TP", slb, wrsl, vddp, vddp,
                              dev::tech14::pfet(p.tp_w, p.tp_l));
  }

  /// Solve the OP; returns the solution vector.
  spice::OpResult solve() { return solve_op(ckt); }
};

}  // namespace

Eq1Resistances extract_eq1_resistances(tcam::Flavor flavor) {
  Eq1Resistances r;
  const tcam::OnePointFiveParams p{};
  tcam::WordOptions wo;
  wo.n_bits = 2;
  tcam::OnePointFiveWord probe(flavor, wo);
  const double mvt = probe.mvt_vth_target();
  r.vdd = wo.vdd;
  r.tml_vth = flavor == tcam::Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg;

  // Search-'0' leg (FeFET in series with TN): in-situ resistances.
  const auto leg0 = [&](FeState s) {
    StaticDivider d(flavor, p, s, mvt, true, r.vdd);
    const auto op = d.solve();
    const Solution sol(d.ckt, op.x);
    return std::pair<double, double>{d.fe->on_resistance(sol),
                                     d.tn->on_resistance(sol)};
  };
  const auto [r_on, r_n_at_on] = leg0(FeState::kLvt);
  r.r_on = r_on;
  r.r_n = r_n_at_on;
  r.r_m0 = leg0(FeState::kMvt).first;
  r.r_off = leg0(FeState::kHvt).first;

  // Search-'1' leg (TP in series with FeFET): in-situ R_M and R_P.
  {
    StaticDivider d(flavor, p, FeState::kMvt, mvt, false, r.vdd);
    const auto op = d.solve();
    const Solution sol(d.ckt, op.x);
    r.r_m1 = d.fe->on_resistance(sol);
    r.r_p = d.tp->on_resistance(sol);
  }
  return r;
}

}  // namespace fetcam::eval
