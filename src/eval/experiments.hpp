// Experiment runners: one entry point per figure/table of the paper's
// evaluation (see DESIGN.md section 4 for the index).
#pragma once

#include <string>
#include <vector>

#include "eval/fom.hpp"
#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::eval {

// --------------------------------------------------------------------------
// Fig. 1(c)/(d): FeFET transfer characteristics after full +/- writes.
// --------------------------------------------------------------------------

struct IvCurve {
  std::string label;
  std::vector<double> vg;      ///< swept gate voltage (FG or BG)
  std::vector<double> id_lvt;  ///< drain current after +Vw write
  std::vector<double> id_hvt;  ///< drain current after -Vw write
  double memory_window = 0.0;  ///< constant-current MW, volts
  double on_off_ratio = 0.0;   ///< at the read voltage
  bool ok = false;
};

/// SG-FeFET FG read (paper Fig. 1c: Vw = +/-4 V, MW ~ 1.8 V).
IvCurve fig1_sg_fg_read();
/// DG-FeFET BG read (paper Fig. 1d: Vw = +/-2 V, MW ~ 2.7 V, on/off ~ 1e4).
IvCurve fig1_dg_bg_read();

// --------------------------------------------------------------------------
// Fig. 4: transient waveforms of the two-step search.
// --------------------------------------------------------------------------

struct Fig4Case {
  std::string label;  ///< "step-1 miss" / "step-2 miss" / "match"
  std::vector<double> t;
  std::vector<double> sel_a, sel_b, ml, sa_out;
  bool matched = false;
  bool ok = false;
};

/// The three scenarios of Fig. 4 on an 8-bit 1.5T1Fe word.
std::vector<Fig4Case> fig4_waveforms(tcam::Flavor flavor);

// --------------------------------------------------------------------------
// Tables I / II / III: cell operation verification.
// --------------------------------------------------------------------------

struct OpCheck {
  std::string operation;  ///< "write 0", "search 1 vs stored X", ...
  std::string detail;     ///< line levels applied
  bool passed = false;
};

/// Simulate every write state and every stored x query search combination
/// for a design; each row is checked against the golden model.
std::vector<OpCheck> verify_operation_table(arch::TcamDesign design);

// --------------------------------------------------------------------------
// Fig. 7: word-length design-space exploration.
// --------------------------------------------------------------------------

struct SweepPoint {
  int n_bits = 0;
  bool ok = false;
  double latency_full_ps = 0.0;
  double latency_1step_ps = 0.0;
  double energy_avg_fj = 0.0;
  double energy_1step_fj = 0.0;
  double energy_2step_fj = 0.0;
};

/// Latency and average search energy versus word length for one design.
std::vector<SweepPoint> fig7_sweep(arch::TcamDesign design,
                                   const std::vector<int>& word_lengths,
                                   const FomOptions& base = {});

// --------------------------------------------------------------------------
// Table IV: the full figure-of-merit comparison.
// --------------------------------------------------------------------------

std::vector<DesignFom> table4(const FomOptions& opts = {});

/// Render Table IV in the paper's layout (with improvement ratios against
/// the 16T CMOS baseline).
std::string render_table4(const std::vector<DesignFom>& foms);

}  // namespace fetcam::eval
