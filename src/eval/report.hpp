// Plain-text table rendering for benches and experiment reports.
#pragma once

#include <string>
#include <vector>

namespace fetcam::eval {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "231 ps", "0.41 fJ", "0.156 um^2" style formatting.
std::string format_eng(double value, const std::string& unit, int precision = 3);

/// "3.79x" relative-improvement formatting (baseline / value).
std::string format_ratio(double baseline, double value, int precision = 2);

}  // namespace fetcam::eval
