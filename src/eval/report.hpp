// Plain-text table rendering for benches and experiment reports.
#pragma once

#include <string>
#include <vector>

#include "eval/variability.hpp"

namespace fetcam::eval {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "231 ps", "0.41 fJ", "0.156 um^2" style formatting.
std::string format_eng(double value, const std::string& unit, int precision = 3);

/// "3.79x" relative-improvement formatting (baseline / value).
std::string format_ratio(double baseline, double value, int precision = 2);

/// Text report of a Monte-Carlo variability run, one row per corner,
/// including the solver-health columns: diverged solves (solver_failures)
/// and the continuation-strategy attribution (gmin/source rescues).
std::string render_variability(const std::string& label,
                               const VariabilityReport& rep);

/// Same content as structured JSON (machine-readable yield dashboards).
std::string variability_json(const std::string& label,
                             const VariabilityReport& rep);

}  // namespace fetcam::eval
