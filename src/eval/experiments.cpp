#include "eval/experiments.hpp"

#include <cmath>
#include <sstream>

#include "eval/report.hpp"
#include "spice/dcsweep.hpp"
#include "spice/measure.hpp"
#include "util/parallel.hpp"

namespace fetcam::eval {

using arch::BitWord;
using arch::TcamDesign;
using arch::Ternary;
using arch::TernaryWord;

// --------------------------------------------------------------------------
// Fig. 1
// --------------------------------------------------------------------------

namespace {

IvCurve device_iv(const dev::FeFetParams& params, bool sweep_bg,
                  double v_lo, double v_hi, double v_read,
                  const std::string& label) {
  IvCurve out;
  out.label = label;

  spice::Circuit ckt;
  const auto d = ckt.node("d");
  const auto fg = ckt.node("fg");
  const auto bg = ckt.node("bg");
  ckt.emplace<spice::VoltageSource>("VD", d, spice::kGround,
                                    spice::Waveform::dc(0.1));
  auto& vfg = ckt.emplace<spice::VoltageSource>("VFG", fg, spice::kGround,
                                                spice::Waveform::dc(0.0));
  auto& vbg = ckt.emplace<spice::VoltageSource>("VBG", bg, spice::kGround,
                                                spice::Waveform::dc(0.0));
  auto& fe = ckt.emplace<dev::FeFet>("F1", d, fg, spice::kGround, bg, params);

  auto& gate = sweep_bg ? vbg : vfg;
  const int steps = 140;
  for (const dev::FeState st : {dev::FeState::kLvt, dev::FeState::kHvt}) {
    fe.set_state(st, 0.0);
    const auto sweep = spice::dc_sweep(ckt, gate, v_lo, v_hi, steps);
    if (!sweep.ok) return out;
    const auto iv = sweep.branch_current(ckt, "VD");
    if (st == dev::FeState::kLvt) {
      out.vg = sweep.sweep_values();
      out.id_lvt.reserve(iv.size());
      for (const double i : iv) out.id_lvt.push_back(-i);
    } else {
      out.id_hvt.reserve(iv.size());
      for (const double i : iv) out.id_hvt.push_back(-i);
    }
  }

  // Constant-current memory window at 100 nA.
  const auto vth_at = [&](const std::vector<double>& id) {
    for (std::size_t k = 1; k < id.size(); ++k) {
      if (id[k - 1] < 1e-7 && id[k] >= 1e-7) {
        const double f = (1e-7 - id[k - 1]) / (id[k] - id[k - 1]);
        return out.vg[k - 1] + f * (out.vg[k] - out.vg[k - 1]);
      }
    }
    return std::nan("");
  };
  const double vth_l = vth_at(out.id_lvt);
  const double vth_h = vth_at(out.id_hvt);
  out.memory_window = vth_h - vth_l;

  // On/off ratio at the nominal read voltage.
  const auto at_v = [&](const std::vector<double>& id, double v) {
    std::size_t best = 0;
    for (std::size_t k = 0; k < out.vg.size(); ++k) {
      if (std::abs(out.vg[k] - v) < std::abs(out.vg[best] - v)) best = k;
    }
    return id[best];
  };
  out.on_off_ratio = at_v(out.id_lvt, v_read) / at_v(out.id_hvt, v_read);
  out.ok = std::isfinite(out.memory_window) && out.on_off_ratio > 0.0;
  return out;
}

}  // namespace

IvCurve fig1_sg_fg_read() {
  return device_iv(dev::sg_fefet_params(), /*sweep_bg=*/false, -1.0, 3.0,
                   0.45, "SG-FeFET FG read (Vw=+/-4V)");
}

IvCurve fig1_dg_bg_read() {
  return device_iv(dev::dg_fefet_params(), /*sweep_bg=*/true, -1.0, 4.5, 2.0,
                   "DG-FeFET BG read (Vw=+/-2V)");
}

// --------------------------------------------------------------------------
// Fig. 4
// --------------------------------------------------------------------------

std::vector<Fig4Case> fig4_waveforms(tcam::Flavor flavor) {
  const int n = 8;
  std::vector<Fig4Case> out;
  struct Scenario {
    std::string label;
    int mismatch_pos;  // -1: none
    int steps;
  };
  for (const Scenario& sc : {Scenario{"step-1 miss", 0, 1},
                            Scenario{"step-2 miss", 1, 2},
                            Scenario{"match", -1, 2}}) {
    TernaryWord stored;
    BitWord query;
    for (int i = 0; i < n; ++i) {
      const bool one = (i % 2) != 0;
      stored.push_back(one ? Ternary::kOne : Ternary::kZero);
      query.push_back(one ? 1 : 0);
    }
    if (sc.mismatch_pos >= 0) {
      stored[static_cast<std::size_t>(sc.mismatch_pos)] = Ternary::kOne;
      query[static_cast<std::size_t>(sc.mismatch_pos)] = 0;
    }
    tcam::WordOptions opts;
    opts.n_bits = n;
    tcam::SearchConfig cfg{stored, query, {}, sc.steps};

    const auto design = flavor == tcam::Flavor::kSg
                            ? TcamDesign::k1p5SgFe
                            : TcamDesign::k1p5DgFe;
    Fig4Case c;
    c.label = sc.label;
    spice::Trace trace;
    const auto m = tcam::measure_search(design, opts, cfg, &trace);
    if (!m.ok) {
      out.push_back(std::move(c));
      continue;
    }
    c.t = trace.times();
    const std::string sela_name =
        flavor == tcam::Flavor::kSg ? "blsel.a" : "sela";
    const std::string selb_name =
        flavor == tcam::Flavor::kSg ? "blsel.b" : "selb";
    c.sel_a = trace.voltage(sela_name);
    c.sel_b = trace.voltage(selb_name);
    // The sensed end of the ML and the SA output.
    c.ml = trace.voltage("ml" + std::to_string(n / 2 - 1));
    c.sa_out = trace.voltage("ml.saout");
    c.matched = m.measured_match;
    c.ok = true;
    out.push_back(std::move(c));
  }
  return out;
}

// --------------------------------------------------------------------------
// Tables I / II / III
// --------------------------------------------------------------------------

std::vector<OpCheck> verify_operation_table(TcamDesign design) {
  std::vector<OpCheck> out;
  tcam::WordOptions opts;
  opts.n_bits = 2;

  // Write checks: write each state (over a non-trivial previous word) and
  // read it back.  Skipped for designs without a modeled write path.
  if (design != TcamDesign::kCmos16T) {
    for (const Ternary d : {Ternary::kZero, Ternary::kOne, Ternary::kX}) {
      if (d == Ternary::kX && (design == TcamDesign::k2SgFefet ||
                               design == TcamDesign::k2DgFefet)) {
        // X is a valid 2FeFET state too (HVT/HVT) — still checked.
      }
      OpCheck chk;
      chk.operation = std::string("write ") + arch::to_char(d);
      tcam::WriteConfig cfg;
      cfg.data = {d, d};
      cfg.initial = {Ternary::kOne, Ternary::kZero};
      const auto m = tcam::measure_write(design, opts, cfg);
      std::ostringstream det;
      det << "energy/cell=" << m.energy_per_cell * 1e15 << " fJ";
      chk.detail = det.str();
      chk.passed = m.ok && m.data_ok;
      out.push_back(chk);
    }
  }

  // Search checks: all stored x query combinations.
  for (const Ternary s : {Ternary::kZero, Ternary::kOne, Ternary::kX}) {
    for (const int q : {0, 1}) {
      OpCheck chk;
      chk.operation = std::string("search ") + std::to_string(q) +
                      " vs stored " + arch::to_char(s);
      tcam::SearchConfig cfg;
      cfg.stored = {s, s};
      cfg.query = {static_cast<std::uint8_t>(q),
                   static_cast<std::uint8_t>(q)};
      const auto m = tcam::measure_search(design, opts, cfg);
      std::ostringstream det;
      det << "expect " << (m.expected_match ? "match" : "miss") << ", got "
          << (m.measured_match ? "match" : "miss");
      chk.detail = det.str();
      chk.passed = m.ok && m.measured_match == m.expected_match;
      out.push_back(chk);
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 7
// --------------------------------------------------------------------------

std::vector<SweepPoint> fig7_sweep(TcamDesign design,
                                   const std::vector<int>& word_lengths,
                                   const FomOptions& base) {
  // Each word length is an independent transient study; run the sweep as
  // a parallel map (slot k = word_lengths[k], so output order is fixed).
  return util::parallel_map<SweepPoint>(
      word_lengths.size(), [&](std::size_t k) {
        FomOptions opts = base;
        opts.n_bits = word_lengths[k];
        SweepPoint pt;
        pt.n_bits = word_lengths[k];
        const auto lat = measure_worst_latency(design, opts);
        if (!lat.ok) return pt;
        const auto e = measure_search_energy(design, opts, lat.sized_timing);
        if (!e.ok) return pt;
        pt.ok = true;
        pt.latency_full_ps = lat.latency_full * 1e12;
        pt.latency_1step_ps = lat.latency_1step * 1e12;
        pt.energy_avg_fj = e.avg * 1e15;
        pt.energy_1step_fj = e.e1 * 1e15;
        pt.energy_2step_fj = e.e2 * 1e15;
        return pt;
      });
}

// --------------------------------------------------------------------------
// Table IV
// --------------------------------------------------------------------------

std::vector<DesignFom> table4(const FomOptions& opts) {
  std::vector<DesignFom> out;
  for (const auto d :
       {TcamDesign::kCmos16T, TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
        TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe}) {
    out.push_back(evaluate_fom(d, opts));
  }
  return out;
}

std::string render_table4(const std::vector<DesignFom>& foms) {
  const DesignFom* base = nullptr;
  for (const auto& f : foms) {
    if (f.design == TcamDesign::kCmos16T) base = &f;
  }
  TextTable t({"FoM", "16T CMOS", "2SG-FeFET", "2DG-FeFET", "1.5T1SG-Fe",
               "1.5T1DG-Fe"});
  const auto col = [&](const TcamDesign d) -> const DesignFom* {
    for (const auto& f : foms) {
      if (f.design == d) return &f;
    }
    return nullptr;
  };
  const std::vector<TcamDesign> order = {
      TcamDesign::kCmos16T, TcamDesign::k2SgFefet, TcamDesign::k2DgFefet,
      TcamDesign::k1p5SgFe, TcamDesign::k1p5DgFe};
  const auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto d : order) {
      const DesignFom* f = col(d);
      cells.push_back(f != nullptr && f->ok ? getter(*f) : std::string("-"));
    }
    t.add_row(cells);
  };

  row("Write voltage", [](const DesignFom& f) {
    std::ostringstream os;
    if (f.t_fe_nm > 0.0) {
      os << "+/-" << f.write_voltage << " V";
      if (f.v_mvt > 0.0) os << ", " << format_eng(f.v_mvt, "V", 3);
    } else {
      os << f.write_voltage << " V";
    }
    return os.str();
  });
  row("FE thickness", [](const DesignFom& f) {
    return f.t_fe_nm > 0.0 ? format_eng(f.t_fe_nm, "nm") : std::string("N.A.");
  });
  row("Cell area (um^2)", [&](const DesignFom& f) {
    return format_eng(f.cell_area_um2, "", 3) + " (" +
           format_ratio(base != nullptr ? base->cell_area_um2 : 0.0,
                        f.cell_area_um2) +
           ")";
  });
  row("Write energy/cell (fJ)", [](const DesignFom& f) {
    return f.write_energy_fj > 0.0 ? format_eng(f.write_energy_fj, "")
                                   : std::string("N.A.");
  });
  row("Search latency (ps)", [&](const DesignFom& f) {
    std::ostringstream os;
    if (f.latency_1step_ps > 0.0) {
      os << "1 step: " << format_eng(f.latency_1step_ps, "") << " / 2 steps: ";
    }
    os << format_eng(f.latency_ps, "") << " ("
       << format_ratio(base != nullptr ? base->latency_ps : 0.0, f.latency_ps)
       << ")";
    return os.str();
  });
  row("Search energy/cell (fJ)", [&](const DesignFom& f) {
    std::ostringstream os;
    if (f.latency_1step_ps > 0.0) {
      os << "1 step: " << format_eng(f.energy_1step_fj, "") << " / 2 steps: "
         << format_eng(f.energy_2step_fj, "") << " / avg: ";
    }
    os << format_eng(f.energy_avg_fj, "") << " ("
       << format_ratio(base != nullptr ? base->energy_avg_fj : 0.0,
                       f.energy_avg_fj)
       << ")";
    return os.str();
  });
  return t.str();
}

}  // namespace fetcam::eval
