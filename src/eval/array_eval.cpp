#include "eval/array_eval.hpp"

#include "eval/report.hpp"

namespace fetcam::eval {

using arch::TcamDesign;

ArrayDatasheet array_datasheet(TcamDesign design,
                               const DatasheetOptions& opts) {
  ArrayDatasheet d;
  d.design = design;
  d.name = arch::design_name(design);
  d.rows = opts.rows;
  d.cols = opts.cols;
  d.capacity_bits = static_cast<double>(opts.rows) * opts.cols;

  // Area: cells plus the HV driver bank.  Only the 1.5T1Fe designs have the
  // perpendicular BL/SeL organization (and the voltage co-optimization)
  // that enables the Fig. 6 sharing.
  const bool sharable = design == TcamDesign::k1p5SgFe ||
                        design == TcamDesign::k1p5DgFe;
  d.drivers_shared = opts.shared_drivers && sharable;
  // The 16T CMOS baseline writes at the logic rail: its line drivers are
  // plain buffers, roughly a quarter of a level-shifting HV driver.  All
  // FeFET designs pay for HV write drivers.
  const double driver_area = design == TcamDesign::kCmos16T
                                 ? 0.25 * opts.driver.area_um2
                                 : opts.driver.area_um2;
  const auto area = arch::array_area(design, opts.rows, opts.cols,
                                     driver_area, d.drivers_shared);
  d.cell_area_um2 = area.cells_um2;
  d.driver_area_um2 = area.drivers_um2;
  d.total_area_um2 = area.total_um2;
  d.area_per_bit_um2 = area.total_um2 / d.capacity_bits;
  d.driver_leakage_nw =
      (area.drivers_um2 / opts.driver.area_um2) * opts.driver.leakage_nw;

  // Performance/energy from the calibrated per-cell costs.
  const auto costs = arch::default_op_costs(design);
  d.search_latency_ps = costs.latency_full * 1e12;
  d.searches_per_second = 1.0 / costs.latency_full;
  const double e_cell =
      costs.two_step
          ? opts.step1_miss_rate * costs.search_e1 +
                (1.0 - opts.step1_miss_rate) * costs.search_e2
          : costs.search_e2;
  d.search_energy_per_bit_fj = e_cell * 1e15;
  // One search activates every cell of the array.
  const double e_search = e_cell * d.capacity_bits;
  d.search_power_uw = e_search * d.searches_per_second * 1e6;
  d.write_energy_per_word_fj = costs.write_energy * opts.cols * 1e15;
  return d;
}

std::string render_datasheets(const std::vector<ArrayDatasheet>& sheets) {
  TextTable t({"metric"});
  std::vector<std::string> headers{"metric"};
  for (const auto& s : sheets) headers.push_back(s.name);
  TextTable table(headers);
  const auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& s : sheets) cells.push_back(getter(s));
    table.add_row(cells);
  };
  row("array", [](const ArrayDatasheet& s) {
    return std::to_string(s.rows) + "x" + std::to_string(s.cols);
  });
  row("total area (um^2)",
      [](const ArrayDatasheet& s) { return format_eng(s.total_area_um2, ""); });
  row("area/bit (um^2)", [](const ArrayDatasheet& s) {
    return format_eng(s.area_per_bit_um2, "");
  });
  row("drivers shared",
      [](const ArrayDatasheet& s) { return s.drivers_shared ? "yes" : "no"; });
  row("driver leakage (nW)", [](const ArrayDatasheet& s) {
    return format_eng(s.driver_leakage_nw, "");
  });
  row("search latency (ps)", [](const ArrayDatasheet& s) {
    return format_eng(s.search_latency_ps, "");
  });
  row("throughput (Msearch/s)", [](const ArrayDatasheet& s) {
    return format_eng(s.searches_per_second / 1e6, "");
  });
  row("search energy (fJ/bit)", [](const ArrayDatasheet& s) {
    return format_eng(s.search_energy_per_bit_fj, "");
  });
  row("search power (uW, max rate)", [](const ArrayDatasheet& s) {
    return format_eng(s.search_power_uw, "");
  });
  row("write energy (fJ/word)", [](const ArrayDatasheet& s) {
    return s.write_energy_per_word_fj > 0.0
               ? format_eng(s.write_energy_per_word_fj, "")
               : std::string("N.A.");
  });
  return table.str();
}

}  // namespace fetcam::eval
