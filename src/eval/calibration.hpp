// Operating-point characterization of the 1.5T1Fe divider: the SL_bar
// voltages for every stored-state/query combination and the Eq. 1
// resistance ladder  R_ON < R_N < R_M < R_P << R_OFF.
//
// Used by tests to lock the calibrated design in place and by the Table IV
// bench to print the design's operating margins.
#pragma once

#include <vector>

#include "tcam/cell_1p5t1fe.hpp"

namespace fetcam::eval {

struct DividerPoint {
  arch::Ternary stored = arch::Ternary::kZero;
  int query = 0;
  double v_slb = 0.0;    ///< divider voltage near the end of step 1
  double v_ml = 0.0;     ///< ML at the same instant
  bool expect_match = false;
  bool correct = false;  ///< ML level agrees with the expectation
};

/// Simulate all six stored x query combinations on a 2-bit word (cell under
/// test plus a matching 'X' partner).
std::vector<DividerPoint> characterize_divider(tcam::Flavor flavor);

/// In-situ effective resistances of the divider, measured per leg at the
/// actual operating points (the FeFET resistance is bias-dependent through
/// source degeneration, so each leg sees its own value).
struct Eq1Resistances {
  // Search-'0' leg: SL(VDD) -> FeFET -> SL_bar -> TN -> gnd (paper Eq. 2).
  double r_on = 0.0;   ///< LVT FeFET
  double r_m0 = 0.0;   ///< MVT FeFET
  double r_off = 0.0;  ///< HVT FeFET
  double r_n = 0.0;    ///< TN (at the stored-'1' operating point)
  // Search-'1' leg: VDD -> TP -> SL_bar -> FeFET -> SL(0) (paper Eq. 3).
  double r_m1 = 0.0;  ///< MVT FeFET
  double r_p = 0.0;   ///< TP (at the stored-'X' operating point)

  double vdd = 0.8;
  double tml_vth = 0.3;

  /// The divider inequalities that guarantee correct decisions, i.e. the
  /// paper's Eq. 1 with the TML switching threshold folded in:
  ///   VDD * R_N / (R_ON + R_N)  > Vth(TML)    (stored-'1' miss detected)
  ///   VDD * R_N / (R_M0 + R_N)  < Vth(TML)    ('X' matches query '0')
  ///   VDD * R_M1 / (R_M1 + R_P) < Vth(TML)    ('X' matches query '1')
  ///   R_OFF >> R_N, R_P                       (stored-'0' corners clean)
  bool functional() const {
    const double v_on = vdd * r_n / (r_on + r_n);
    const double v_m0 = vdd * r_n / (r_m0 + r_n);
    const double v_m1 = vdd * r_m1 / (r_m1 + r_p);
    return v_on > tml_vth && v_m0 < tml_vth && v_m1 < tml_vth &&
           r_off > 100.0 * r_n && r_off > 100.0 * r_p;
  }
};

/// Extract the in-situ resistances at the search operating points.
Eq1Resistances extract_eq1_resistances(tcam::Flavor flavor);

}  // namespace fetcam::eval
