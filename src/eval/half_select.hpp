// Half-select disturb analysis for row-selective 1.5T1Fe writes.
//
// An architecture gap this reproduction surfaced: the paper's array
// (Fig. 5c) shares BLs, SLs and Wr/SLs COLUMN-wise, so the three-phase
// write drives every row identically — there is no row-selective write in
// the scheme as described.  A practical array must gate the write per row;
// the natural candidate is making Wr/SL row-gated (it already exists per
// pair).  But then an UNSELECTED row's TP pulls SL_bar to VDD while the
// BL still carries +/-Vw or Vm, leaving a partial field across its
// ferroelectric: the classic half-select disturb.
//
// This module quantifies the polarization drift of inhibited cells per
// write phase for candidate inhibition schemes, using the Preisach model:
//   kNone          — Wr/SL low at unselected rows, SL grounded:
//                    v_FE ~ Vbl - VDD/2 (worst case)
//   kRaisedSl      — additionally raise the unselected row's SL to VDD:
//                    channel midpoint ~ VDD, v_FE ~ Vbl - VDD
//   kVwThirds      — classic Vw/3 biasing of the unselected channel
// and reports how many back-to-back row writes an inhibited cell survives
// before its stored level drifts out of a V_TH guard band.
#pragma once

#include <string>
#include <vector>

#include "devices/fefet.hpp"

namespace fetcam::eval {

enum class InhibitScheme { kNone, kRaisedSl, kVwThirds };

std::string inhibit_scheme_name(InhibitScheme s);

struct HalfSelectParams {
  double pulse_width = 40e-9;
  /// Stored level under stress (the erased/HVT state is most exposed to
  /// the positive program pulses).
  dev::FeState victim_state = dev::FeState::kHvt;
  /// Abort the cycling count here.
  long long max_writes = 1000000;
  /// Drift guard band: the victim fails when |dVth| exceeds this.
  double vth_guard = 0.1;
};

struct HalfSelectPoint {
  InhibitScheme scheme = InhibitScheme::kNone;
  double v_fe_program = 0.0;   ///< FE stack voltage seen while inhibited
  double vth_drift_1k = 0.0;   ///< |dVth| after 1000 neighbouring writes
  long long writes_to_fail = 0;  ///< writes until the guard band is crossed
  bool survives_budget = false;  ///< lasted max_writes
};

/// Evaluate the candidate schemes for one device flavour.
std::vector<HalfSelectPoint> half_select_study(
    bool double_gate, const HalfSelectParams& params = {});

}  // namespace fetcam::eval
