// Closed-form search latency/energy estimator (the Eva-CAM role [15]).
//
// Builds the match-line RC from device and wire components, takes the
// worst-case discharge resistance from the device model at the search
// operating point, and evaluates
//
//   latency ~ R_dis * C_ML * ln(V_pre / V_trip) + settling terms
//   E_pre   ~ C_ML * VDD^2                  (charged from zero)
//   E_sig   ~ sum(C_line * V_line^2) + divider static power * window
//
// It exists for two reasons: as the fast estimator an architect would use
// to sweep design points without transients, and as an independent
// cross-check of the SPICE harnesses (tests require agreement within a
// factor of ~2 across designs and word lengths — RC analysis cannot do
// better than that against a nonlinear discharge, and agreement to a factor
// of 2 across three orders of magnitude of design space catches sign/unit
// errors on either side).
#pragma once

#include "arch/area_model.hpp"

namespace fetcam::eval {

struct AnalyticEstimate {
  double c_ml = 0.0;          ///< total ML capacitance, F
  double r_discharge = 0.0;   ///< worst-case one-cell pulldown, Ohm
  double latency = 0.0;       ///< full-operation worst-case latency, s
  double e_precharge = 0.0;   ///< C_ML * VDD^2, J
  double e_signals = 0.0;     ///< line charging + divider static, J
  double e_per_cell = 0.0;    ///< (precharge + signals) / N, J
};

/// Estimate one design at word length `n_bits` (64-row array context).
AnalyticEstimate analytic_search_estimate(arch::TcamDesign design,
                                          int n_bits);

/// Closed-form write energy per cell, joules: polarization switching charge
/// (2 Ps A, the paper's Table IV physics) plus the gate-stack dielectric
/// charging, at the design's write voltage; halved device count for the
/// 1.5T1Fe cells, both devices for the 2FeFET cells.  0 for 16T CMOS
/// (not modeled).  Cross-checked against the transient measurement within
/// a factor of 2 by tests.
double analytic_write_energy(arch::TcamDesign design);

}  // namespace fetcam::eval
