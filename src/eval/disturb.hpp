// Accumulated read-disturb experiment (the paper's core DG motivation).
//
// Conventional SG-FeFETs read through the same front gate that writes the
// ferroelectric, so every search stresses the FE stack; the paper cites the
// resulting accumulated disturb as a key SG reliability limit and the DG
// structure's separated write/read paths as the cure ("avoids accumulated
// read disturbance").
//
// This experiment stresses a programmed (HVT) device with N read pulses at
// increasing read-voltage-to-coercive-voltage ratios — the standard
// accelerated-stress sweep — and tracks the polarization drift:
//  * SG FG read: the read bias appears across the FE stack; drift grows
//    steeply as V_read approaches V_c;
//  * DG BG read: the FG stays quiet during reads, so the FE stack sees
//    (nearly) zero field at ANY select voltage — drift stays at zero even
//    for the 2 V select the DG designs use.
#pragma once

#include <vector>

#include "devices/fefet.hpp"

namespace fetcam::eval {

struct DisturbParams {
  int cycles = 100000;
  double pulse_width = 1e-9;
  /// Stress ratios V_read / V_c for the SG FG-read sweep.
  std::vector<double> stress_ratios = {0.3, 0.5, 0.7, 0.8, 0.9, 0.95};
};

struct DisturbPoint {
  double v_read = 0.0;
  double p_drift_norm = 0.0;  ///< |delta P| / Ps after all cycles
  double vth_drift = 0.0;     ///< resulting FG-referred V_TH shift, volts
};

struct DisturbResult {
  std::vector<DisturbPoint> sg_fg_read;  ///< drift vs read voltage
  DisturbPoint dg_bg_read;  ///< at the full V_SeL = 2 V select
};

/// Run the accumulated-disturb comparison (quasi-static polarization
/// stepping on the Preisach model; no transient needed).
DisturbResult read_disturb_comparison(const DisturbParams& params = {});

}  // namespace fetcam::eval
