#include "eval/variability.hpp"

#include "eval/variability_detail.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "devices/tech14.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/op.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fetcam::eval {

using arch::Ternary;
using dev::FeFet;
using dev::FeState;
using dev::Mosfet;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Solution;
using spice::VoltageSource;
using spice::Waveform;

namespace detail {

SampledCell sample_cell(tcam::Flavor flavor,
                        const tcam::OnePointFiveParams& p,
                        const VariabilityParams& vp, std::mt19937& rng) {
  return sample_cell(flavor, p,
                     flavor == tcam::Flavor::kSg ? dev::sg_fefet_params()
                                                 : dev::dg_fefet_params(),
                     vp, rng);
}

SampledCell sample_cell(tcam::Flavor flavor,
                        const tcam::OnePointFiveParams& p,
                        const dev::FeFetParams& base_fe,
                        const VariabilityParams& vp, std::mt19937& rng) {
  std::normal_distribution<double> n01(0.0, 1.0);
  SampledCell s;
  s.fe = base_fe;
  s.fe.mos.vth0 += vp.sigma_fefet_vth * n01(rng);
  // Polarization spread scales the achievable memory window.
  s.fe.mw_fg *= 1.0 + vp.sigma_ps_rel * n01(rng);
  // Write-path variation: coercive-voltage spread.
  s.fe.fe.vc *= 1.0 + vp.sigma_vc_rel * n01(rng);
  s.tn = dev::tech14::nfet(p.tn_w, p.tn_l);
  s.tn.vth0 += vp.sigma_mos_vth * n01(rng);
  s.tp = dev::tech14::pfet(p.tp_w, p.tp_l);
  s.tp.vth0 += vp.sigma_mos_vth * n01(rng);
  s.tml = dev::tech14::nfet(p.tml_w, p.tml_l);
  s.tml.vth0 =
      (flavor == tcam::Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg) +
      vp.sigma_mos_vth * n01(rng);
  return s;
}

DividerSolve divider_slb_at_polarization(tcam::Flavor flavor,
                                         const tcam::OnePointFiveParams& p,
                                         const SampledCell& cell,
                                         double polarization, bool query_one,
                                         double vdd,
                                         num::SparseNewtonWorkspace* ws) {
  Circuit ckt;
  const NodeId sl = ckt.node("sl");
  const NodeId slb = ckt.node("slb");
  const NodeId bl = ckt.node("bl");
  const NodeId sel = ckt.node("sel");
  const NodeId wrsl = ckt.node("wrsl");
  const NodeId vddp = ckt.node("vddp");
  const double level = query_one ? 0.0 : vdd;
  const double vsel = flavor == tcam::Flavor::kSg ? p.v_sel_sg : p.v_sel_dg;
  ckt.emplace<VoltageSource>("VSL", sl, kGround, Waveform::dc(level));
  ckt.emplace<VoltageSource>("VWRSL", wrsl, kGround, Waveform::dc(level));
  ckt.emplace<VoltageSource>("VDDP", vddp, kGround, Waveform::dc(vdd));
  if (flavor == tcam::Flavor::kSg) {
    ckt.emplace<VoltageSource>("VBL", bl, kGround, Waveform::dc(vsel));
    ckt.emplace<VoltageSource>("VSELX", sel, kGround, Waveform::dc(0.0));
  } else {
    ckt.emplace<VoltageSource>("VBL", bl, kGround,
                               Waveform::dc(query_one ? 0.0 : p.v_b));
    ckt.emplace<VoltageSource>("VSELX", sel, kGround, Waveform::dc(vsel));
  }
  auto& fe = ckt.emplace<FeFet>("FE", sl, bl, slb, sel, cell.fe);
  fe.set_polarization(polarization);
  ckt.emplace<Mosfet>("TN", slb, wrsl, kGround, kGround, cell.tn);
  ckt.emplace<Mosfet>("TP", slb, wrsl, vddp, vddp, cell.tp);
  const auto op = solve_op(ckt, {}, nullptr, ws);
  if (!op.converged) return {std::nan(""), spice::OpStrategy::kFailed};
  return {Solution(ckt, op.x).v(slb), op.strategy};
}

const std::array<Corner, kNumCorners>& corner_table() {
  static const std::array<Corner, kNumCorners> corners = {{
      {Ternary::kZero, 0, true},
      {Ternary::kZero, 1, false},
      {Ternary::kOne, 0, false},
      {Ternary::kOne, 1, true},
      {Ternary::kX, 0, true},
      {Ternary::kX, 1, true},
  }};
  return corners;
}

double corner_margin(const Corner& corner, double v_slb, double tml_vth,
                     double decision_margin) {
  return corner.expect_match ? (tml_vth - decision_margin) - v_slb
                             : v_slb - (tml_vth + decision_margin);
}

VariabilityReport reduce_margins(const VariabilityParams& vp,
                                 const std::vector<TrialMargins>& trials) {
  VariabilityReport rep;
  const auto& corners = corner_table();
  rep.corners.resize(corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    rep.corners[c].stored = corners[c].stored;
    rep.corners[c].query = corners[c].query;
    rep.corners[c].worst_margin = 1e9;
  }

  int good_samples = 0;
  for (const TrialMargins& trial : trials) {
    bool sample_ok = true;
    for (std::size_t c = 0; c < corners.size(); ++c) {
      auto& cy = rep.corners[c];
      ++cy.samples;
      const double margin = trial.margin[c];
      if (std::isnan(margin)) {
        ++cy.failures;
        ++cy.solver_failures;
        sample_ok = false;
        continue;
      }
      // Solver attribution: which continuation path rescued this corner.
      if (trial.strategy[c] == spice::OpStrategy::kGmin) ++cy.gmin_rescues;
      if (trial.strategy[c] == spice::OpStrategy::kSource) {
        ++cy.source_rescues;
      }
      cy.mean_margin += margin;
      cy.worst_margin = std::min(cy.worst_margin, margin);
      if (margin < 0.0) {
        ++cy.failures;
        sample_ok = false;
      }
    }
    if (sample_ok) ++good_samples;
  }
  if (obs::metrics_on()) {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& trials_ctr = reg.counter("eval.variability.trials");
    static obs::Counter& fail_ctr =
        reg.counter("eval.variability.solver_failures");
    static obs::Counter& gmin_ctr =
        reg.counter("eval.variability.gmin_rescues");
    static obs::Counter& source_ctr =
        reg.counter("eval.variability.source_rescues");
    trials_ctr.add(trials.size());
    for (const auto& cy : rep.corners) {
      fail_ctr.add(static_cast<std::uint64_t>(cy.solver_failures));
      gmin_ctr.add(static_cast<std::uint64_t>(cy.gmin_rescues));
      source_ctr.add(static_cast<std::uint64_t>(cy.source_rescues));
    }
  }
  for (auto& cy : rep.corners) {
    if (cy.samples > 0) cy.mean_margin /= cy.samples;
  }
  rep.cell_yield = static_cast<double>(good_samples) / vp.samples;
  rep.ok = true;
  return rep;
}

}  // namespace detail

namespace {

using detail::SampledCell;

/// Open-loop polarization for a stored state: what the NOMINAL write
/// waveform actually leaves on the sampled device.  Full writes saturate
/// regardless of variation; the X state settles on the device's ascending
/// Preisach branch at the nominal V_m, so the achieved V_TH inherits the
/// device's threshold shift and window scaling — the placement error that
/// program-and-verify trimming (eval/trim.*) removes.
double open_loop_polarization(const tcam::OnePointFiveParams& p,
                              tcam::Flavor flavor,
                              const dev::FeFetParams& base_fe,
                              const SampledCell& cell, Ternary stored) {
  switch (stored) {
    case Ternary::kZero:
      return -cell.fe.fe.ps;
    case Ternary::kOne:
      return cell.fe.fe.ps;
    case Ternary::kX:
      break;
  }
  const double mvt =
      flavor == tcam::Flavor::kSg ? p.mvt_vth_sg : p.mvt_vth_dg;
  const double vm_nominal = base_fe.write_voltage_for_vth(mvt);
  return dev::settle_polarization(cell.fe.fe, -cell.fe.fe.ps, vm_nominal);
}

/// Per-corner margins of the UNPERTURBED design — the deterministic part
/// that margin_scale derates (the noise part is left untouched: packing
/// multi-level levels closer shrinks the nominal spacing, not sigma).
std::array<double, detail::kNumCorners> nominal_margins(
    tcam::Flavor flavor, const DividerDesign& design,
    const VariabilityParams& vp) {
  SampledCell cell;
  const tcam::OnePointFiveParams& p = design.cell;
  cell.fe = design.fe;
  cell.tn = dev::tech14::nfet(p.tn_w, p.tn_l);
  cell.tp = dev::tech14::pfet(p.tp_w, p.tp_l);
  cell.tml = dev::tech14::nfet(p.tml_w, p.tml_l);
  cell.tml.vth0 = flavor == tcam::Flavor::kSg ? p.tml_vth_sg : p.tml_vth_dg;
  const auto& corners = detail::corner_table();
  std::array<double, detail::kNumCorners> m{};
  num::SparseNewtonWorkspace ws;
  for (std::size_t c = 0; c < corners.size(); ++c) {
    const double pol =
        open_loop_polarization(p, flavor, design.fe, cell, corners[c].stored);
    const auto solve = detail::divider_slb_at_polarization(
        flavor, p, cell, pol, corners[c].query != 0, design.vdd, &ws);
    m[c] = std::isnan(solve.v_slb)
               ? 0.0
               : detail::corner_margin(corners[c], solve.v_slb, cell.tml.vth0,
                                       vp.decision_margin);
  }
  return m;
}

}  // namespace

DividerDesign nominal_divider_design(tcam::Flavor flavor) {
  DividerDesign d;
  d.fe = flavor == tcam::Flavor::kSg ? dev::sg_fefet_params()
                                     : dev::dg_fefet_params();
  return d;
}

VariabilityReport analyze_variability(tcam::Flavor flavor,
                                      const VariabilityParams& vp) {
  return analyze_variability(flavor, nominal_divider_design(flavor), vp);
}

VariabilityReport analyze_variability(tcam::Flavor flavor,
                                      const DividerDesign& design,
                                      const VariabilityParams& vp) {
  const tcam::OnePointFiveParams& p = design.cell;
  const double vdd = design.vdd;
  const auto& corners = detail::corner_table();

  // Multi-level derating: subtract the shrunk fraction of each corner's
  // positive nominal margin.  margin_scale == 1 skips the extra solves and
  // leaves every trial margin untouched (legacy bit-identical path).
  std::array<double, detail::kNumCorners> derate{};
  if (design.margin_scale != 1.0) {
    const auto nominal = nominal_margins(flavor, design, vp);
    for (std::size_t c = 0; c < derate.size(); ++c) {
      derate[c] = (1.0 - design.margin_scale) * std::max(nominal[c], 0.0);
    }
  }

  // Parallel map over trials: trial s derives its own RNG stream from
  // (seed, s), so the sampled devices — and therefore the whole report —
  // are independent of thread count and schedule.  The ordered reduce
  // keeps the floating-point tallies bit-identical too.
  const auto trials = util::parallel_map<detail::TrialMargins>(
      static_cast<std::size_t>(std::max(vp.samples, 0)),
      [&](std::size_t s) {
        const obs::ScopedSpan span("eval.variability_trial", "eval");
        std::mt19937 rng = util::trial_rng(vp.seed, s);
        const SampledCell cell =
            detail::sample_cell(flavor, p, design.fe, vp, rng);
        detail::TrialMargins margins;
        // Corner solves share one workspace: same divider topology, same
        // stamp sequence, so the factorization context replays across all
        // six corners of the trial.
        num::SparseNewtonWorkspace ws;
        for (std::size_t c = 0; c < corners.size(); ++c) {
          const double pol = open_loop_polarization(p, flavor, design.fe,
                                                    cell, corners[c].stored);
          const auto solve = detail::divider_slb_at_polarization(
              flavor, p, cell, pol, corners[c].query != 0, vdd, &ws);
          margins.strategy[c] = solve.strategy;
          margins.margin[c] =
              std::isnan(solve.v_slb)
                  ? solve.v_slb
                  : detail::corner_margin(corners[c], solve.v_slb,
                                          cell.tml.vth0, vp.decision_margin) -
                        derate[c];
        }
        return margins;
      });
  return detail::reduce_margins(vp, trials);
}

}  // namespace fetcam::eval
