#include "eval/half_select.hpp"

#include <array>
#include <cmath>

#include "util/parallel.hpp"

namespace fetcam::eval {

std::string inhibit_scheme_name(InhibitScheme s) {
  switch (s) {
    case InhibitScheme::kNone:
      return "row-gated Wr/SL only";
    case InhibitScheme::kRaisedSl:
      return "+ raised SL (channel at VDD)";
    case InhibitScheme::kVwThirds:
      return "Vw/3 inhibit biasing";
  }
  return "?";
}

namespace {

/// FE stack voltage of an inhibited cell during the program-'1' phase
/// (BL = +Vw), for each scheme.  The channel midpoint follows the
/// inhibition biasing; v_FE = Vbl - v_channel_mid.
double inhibited_v_fe(InhibitScheme s, double vw, double vdd) {
  switch (s) {
    case InhibitScheme::kNone:
      // SL grounded, SL_bar pulled to VDD by the unselected TP.
      return vw - 0.5 * vdd;
    case InhibitScheme::kRaisedSl:
      // SL raised to VDD too: channel fully at VDD.
      return vw - vdd;
    case InhibitScheme::kVwThirds:
      // Classic 1/3 biasing: unselected stacks see Vw/3.
      return vw / 3.0;
  }
  return vw;
}

}  // namespace

std::vector<HalfSelectPoint> half_select_study(
    bool double_gate, const HalfSelectParams& params) {
  const dev::FeFetParams card =
      double_gate ? dev::dg_fefet_params() : dev::sg_fefet_params();
  const double vw = card.vw();
  const double vdd = 0.8;
  const double p0 = params.victim_state == dev::FeState::kHvt
                        ? -card.fe.ps
                        : card.fe.ps;

  // The schemes cycle independently (up to max_writes pulses each), so
  // evaluate them as a parallel map; slot k holds scheme k's result.
  const std::array<InhibitScheme, 3> schemes = {InhibitScheme::kNone,
                                                InhibitScheme::kRaisedSl,
                                                InhibitScheme::kVwThirds};
  return util::parallel_map<HalfSelectPoint>(schemes.size(), [&](
                                                 std::size_t k) {
    const InhibitScheme scheme = schemes[k];
    HalfSelectPoint pt;
    pt.scheme = scheme;
    pt.v_fe_program = inhibited_v_fe(scheme, vw, vdd);

    // Cycle pulses until the guard band is crossed (chunked: identical
    // pulses compose, so larger chunks are exact for the bounded
    // relaxation model).
    double pol = p0;
    long long writes = 0;
    long long chunk = 1;
    double drift_1k = -1.0;
    while (writes < params.max_writes) {
      pol = dev::advance_polarization(card.fe, pol, pt.v_fe_program,
                                      chunk * params.pulse_width)
                .p_end;
      writes += chunk;
      const double drift =
          std::abs(pol - p0) / card.fe.ps * card.mw_fg / 2.0;
      if (drift_1k < 0.0 && writes >= 1000) drift_1k = drift;
      if (drift > params.vth_guard) break;
      if (chunk < (1LL << 16)) chunk *= 2;
    }
    const double final_drift =
        std::abs(pol - p0) / card.fe.ps * card.mw_fg / 2.0;
    if (drift_1k < 0.0) drift_1k = final_drift;
    pt.vth_drift_1k = drift_1k;
    pt.writes_to_fail = writes;
    pt.survives_budget =
        writes >= params.max_writes && final_drift <= params.vth_guard;
    return pt;
  });
}

}  // namespace fetcam::eval
