// Program-and-verify MVT trimming.
//
// The Monte-Carlo analysis (eval/variability.*) shows the open-loop X-state
// write is the yield limiter of the 1.5T1Fe cell under device variation:
// the MVT level must land in a ~100-200 mV window, but the FeFET V_TH
// spread alone is ~30 mV sigma and the Preisach branch maps write-voltage
// error into level error.  The standard NVM remedy is closed-loop
// program-and-verify: pulse, read the level, nudge the write voltage,
// repeat.  This module implements that controller against the Preisach
// model and re-runs the variability analysis with trimming enabled — the
// DG flavour's yield recovers to ~100 % within a few pulses.
#pragma once

#include "devices/fefet.hpp"
#include "eval/variability.hpp"

namespace fetcam::eval {

struct TrimParams {
  double vth_tolerance = 0.02;  ///< accept when |Vth - target| below this
  int max_pulses = 24;
  double pulse_width = 40e-9;
  /// Write-voltage adjustment per volt of V_TH error.  The branch slope
  /// dVth/dVm is ~ -(mw/2)/vslope ~ -3.4 for the DG card, so the loop gain
  /// is ~3.4x this value; keep it below ~0.25 for a stable approach.
  double gain = 0.15;
  /// Place the X level at the nominal FRACTIONAL position inside the
  /// device's measured LVT..HVT window instead of at the absolute nominal
  /// voltage.  This is the yield-optimal policy: the divider corners that
  /// involve the X state discriminate it against the SAME device's LVT/HVT
  /// levels, so correlated placement preserves the discrimination window
  /// while absolute placement destroys it (measured by the trim tests).
  bool window_relative = true;
};

struct TrimResult {
  bool converged = false;
  int pulses = 0;
  double final_vth = 0.0;
  double final_vm = 0.0;  ///< last write voltage used
};

/// Trim one device's MVT level to `vth_target` by iterative erase-free
/// partial programming: each pulse re-erases and programs at an adjusted
/// V_m (the deterministic-from-erased property of the ascending branch
/// makes each trial independent).
TrimResult trim_mvt(const dev::FeFetParams& device, double vth_target,
                    const TrimParams& params = {});

/// The variability analysis of eval/variability.hpp, but with every
/// sampled device's X state placed by the trim controller instead of the
/// open-loop V_m write.  Devices whose (shrunken) memory window cannot
/// reach the target at all still fail — trimming fixes placement error,
/// not window collapse.
VariabilityReport analyze_variability_trimmed(
    tcam::Flavor flavor, const VariabilityParams& params = {},
    const TrimParams& trim = {});

}  // namespace fetcam::eval
