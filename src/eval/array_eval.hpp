// Array-level "datasheet" evaluator.
//
// Composes the per-cell circuit costs (energy model), the layout area model,
// and the shared-driver architecture into the numbers a system architect
// compares CAM macros by: capacity, total area, area per bit, search
// throughput, energy per searched bit, and power at maximum search rate —
// for a full M x N array (optionally organized as a shared-driver mat).
#pragma once

#include <string>

#include "arch/area_model.hpp"
#include "arch/energy_model.hpp"
#include "arch/hv_driver.hpp"

namespace fetcam::eval {

struct DatasheetOptions {
  int rows = 64;
  int cols = 64;
  /// Apply the Fig. 6 driver sharing (1.5T1Fe designs only; ignored with a
  /// warning flag for others).
  bool shared_drivers = true;
  double step1_miss_rate = 0.9;
  arch::HvDriverParams driver;
};

struct ArrayDatasheet {
  arch::TcamDesign design = arch::TcamDesign::kCmos16T;
  std::string name;
  int rows = 0, cols = 0;
  double capacity_bits = 0.0;

  double cell_area_um2 = 0.0;      ///< whole cell array
  double driver_area_um2 = 0.0;    ///< HV driver bank
  double total_area_um2 = 0.0;
  double area_per_bit_um2 = 0.0;
  bool drivers_shared = false;

  double search_latency_ps = 0.0;
  double searches_per_second = 0.0;     ///< 1 / latency
  double search_energy_per_bit_fj = 0.0;  ///< workload average
  double search_power_uw = 0.0;  ///< at maximum back-to-back search rate
  double write_energy_per_word_fj = 0.0;  ///< 0 when not modeled
  double driver_leakage_nw = 0.0;
};

/// Evaluate one design using the calibrated per-cell operation costs.
ArrayDatasheet array_datasheet(arch::TcamDesign design,
                               const DatasheetOptions& opts = {});

/// Side-by-side rendering of several datasheets.
std::string render_datasheets(const std::vector<ArrayDatasheet>& sheets);

}  // namespace fetcam::eval
