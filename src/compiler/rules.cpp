#include "compiler/rules.hpp"

#include <fstream>
#include <sstream>

namespace fetcam::compiler {

RuleSet rule_set_from_rules(int cols,
                            const std::vector<engine::TraceRule>& rules) {
  RuleSet out;
  out.cols = cols;
  out.rules.reserve(rules.size());
  for (const auto& r : rules) {
    RuleSpec spec;
    spec.match = r.entry;
    spec.priority = r.priority;
    out.rules.push_back(std::move(spec));
  }
  return out;
}

RuleSet rule_set_from_trace(const engine::Trace& trace) {
  return rule_set_from_rules(trace.cols, trace.rules);
}

bool save_rule_set(const RuleSet& rules, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "# fetcam rule set v1\n";
  f << "cols " << rules.cols << "\n";
  if (rules.range_bits > 0) f << "range-bits " << rules.range_bits << "\n";
  for (const auto& r : rules.rules) {
    if (r.has_range) {
      f << "rrule " << arch::to_string(r.match) << " " << r.lo << " " << r.hi
        << " " << r.priority << "\n";
    } else {
      f << "rule " << arch::to_string(r.match) << " " << r.priority << "\n";
    }
  }
  return f.good();
}

std::optional<RuleSet> load_rule_set(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  RuleSet rules;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "cols") {
      if (!(is >> rules.cols) || rules.cols <= 0) return std::nullopt;
    } else if (tag == "range-bits") {
      if (!(is >> rules.range_bits) || rules.range_bits < 0 ||
          rules.range_bits > 63 || rules.range_bits > rules.cols) {
        return std::nullopt;
      }
    } else if (tag == "rule" || tag == "rrule") {
      const bool ranged = tag == "rrule";
      std::string word;
      RuleSpec spec;
      spec.has_range = ranged;
      if (!(is >> word)) return std::nullopt;
      try {
        spec.match = arch::word_from_string(word);
      } catch (const std::invalid_argument&) {
        return std::nullopt;
      }
      if (ranged && !(is >> spec.lo >> spec.hi)) return std::nullopt;
      if (!(is >> spec.priority)) return std::nullopt;
      const int want = ranged ? rules.cols - rules.range_bits : rules.cols;
      if (static_cast<int>(spec.match.size()) != want) return std::nullopt;
      if (ranged && rules.range_bits == 0) return std::nullopt;
      rules.rules.push_back(std::move(spec));
    } else {
      return std::nullopt;
    }
  }
  if (rules.cols <= 0) return std::nullopt;
  return rules;
}

}  // namespace fetcam::compiler
