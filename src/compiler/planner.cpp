#include "compiler/planner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace fetcam::compiler {
namespace {

int digit_distance(const arch::TernaryWord& a, const arch::TernaryWord& b) {
  int d = 0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    if (a[c] != b[c]) ++d;
  }
  return d;
}

void add_cost(PlanCost& cost, const engine::WriteCost& wc) {
  cost.write_phases += wc.phases;
  cost.switched_cells += wc.cells;
  cost.energy_j += wc.energy_j;
}

}  // namespace

UpdatePlan plan_update(const Installation& current, const CompiledRuleSet& next,
                       const engine::TcamTable& table,
                       const PlannerOptions& options) {
  if (!current.entries.empty() && current.cols != next.cols) {
    throw std::invalid_argument("installation / compiled rule set width mismatch");
  }
  if (next.cols != table.cols()) {
    throw std::invalid_argument("compiled rule set width disagrees with table");
  }

  UpdatePlan plan;
  Placer placer(table, options.placement);

  const std::size_t n_cur = current.entries.size();
  const std::size_t n_next = next.entries.size();
  std::vector<int> cur_match(n_cur, -1);   // compiled index claimed by entry
  std::vector<int> next_match(n_next, -1);  // installed index claimed

  // Pass 1 — exact word reuse.  Prefer a same-priority row (a pure keep)
  // over one that needs a flip; within a bucket, earlier installed entries
  // are claimed first (deterministic).
  std::unordered_map<std::string, std::vector<std::size_t>> by_word;
  for (std::size_t i = 0; i < n_cur; ++i) {
    by_word[arch::to_string(current.entries[i].word)].push_back(i);
  }
  for (std::size_t j = 0; j < n_next; ++j) {
    auto it = by_word.find(arch::to_string(next.entries[j].word));
    if (it == by_word.end()) continue;
    auto& bucket = it->second;
    std::size_t pick = bucket.size();
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (cur_match[bucket[k]] >= 0) continue;
      if (pick == bucket.size()) pick = k;
      if (current.entries[bucket[k]].priority == next.entries[j].priority) {
        pick = k;
        break;
      }
    }
    if (pick == bucket.size()) continue;
    cur_match[bucket[pick]] = static_cast<int>(j);
    next_match[j] = static_cast<int>(bucket[pick]);
  }

  // Pass 2 — pair leftovers greedily by digit distance (ties: lowest
  // installed index) for in-place delta rewrites.  A rewrite of d digits
  // never costs more than a fresh write, and it spares a row.
  for (std::size_t j = 0; j < n_next; ++j) {
    if (next_match[j] >= 0) continue;
    int best = -1;
    int best_d = 0;
    for (std::size_t i = 0; i < n_cur; ++i) {
      if (cur_match[i] >= 0) continue;
      const int d = digit_distance(current.entries[i].word,
                                   next.entries[j].word);
      if (best < 0 || d < best_d) {
        best = static_cast<int>(i);
        best_d = d;
      }
    }
    if (best < 0) break;  // no installed rows left to reuse
    cur_match[static_cast<std::size_t>(best)] = static_cast<int>(j);
    next_match[j] = best;
  }

  // Emit ops for paired entries, with the placer steering wear.
  for (std::size_t j = 0; j < n_next; ++j) {
    if (next_match[j] < 0) continue;
    const InstalledEntry& cur =
        current.entries[static_cast<std::size_t>(next_match[j])];
    const CompiledEntry& want = next.entries[j];
    PlanOp op;
    op.target = cur.id;
    op.compiled_index = static_cast<int>(j);
    const auto loc = table.locate(cur.id);
    if (!loc.has_value()) {
      throw std::invalid_argument("installation references a dead entry id");
    }
    if (cur.word == want.word) {
      op.kind = cur.priority == want.priority ? PlanOpKind::kKeep
                                              : PlanOpKind::kSetPriority;
      if (op.kind == PlanOpKind::kKeep) {
        ++plan.keeps;
      } else {
        ++plan.priority_flips;
      }
      plan.ops.push_back(op);
      if (placer.should_relocate(*loc)) {
        const int mat = placer.place_relocation(*loc);
        if (mat >= 0) {
          PlanOp move;
          move.kind = PlanOpKind::kRelocate;
          move.target = cur.id;
          move.mat = mat;
          plan.ops.push_back(move);
          ++plan.relocations;
          add_cost(plan.cost, table.cost_write(want.word, nullptr));
        }
      }
      continue;
    }
    if (placer.should_spread_rewrite(*loc)) {
      // Hot row: write the new word on a cold mat instead and free the
      // old row (still make-before-break — the insert lands first).
      const int mat = placer.place_insert();
      if (mat >= 0) {
        PlanOp ins;
        ins.kind = PlanOpKind::kInsert;
        ins.compiled_index = static_cast<int>(j);
        ins.mat = mat;
        plan.ops.push_back(ins);
        ++plan.inserts;
        add_cost(plan.cost, table.cost_write(want.word, nullptr));
        PlanOp del;
        del.kind = PlanOpKind::kErase;
        del.target = cur.id;
        plan.ops.push_back(del);
        ++plan.erases;
        continue;
      }
    }
    op.kind = PlanOpKind::kRewrite;
    op.changed_digits = digit_distance(cur.word, want.word);
    plan.ops.push_back(op);
    ++plan.rewrites;
    add_cost(plan.cost, table.cost_rewrite(want.word, cur.word));
  }

  // Leftover compiled entries are fresh writes; leftover installed rows
  // are erased (peripheral-only, so they add no cost).
  for (std::size_t j = 0; j < n_next; ++j) {
    if (next_match[j] >= 0) continue;
    PlanOp op;
    op.kind = PlanOpKind::kInsert;
    op.compiled_index = static_cast<int>(j);
    op.mat = placer.place_insert();
    if (op.mat == -2) {
      throw std::runtime_error(
          "plan needs more free rows than the table has "
          "(make-before-break requires slack)");
    }
    plan.ops.push_back(op);
    ++plan.inserts;
    add_cost(plan.cost, table.cost_write(next.entries[j].word, nullptr));
  }
  for (std::size_t i = 0; i < n_cur; ++i) {
    if (cur_match[i] >= 0) continue;
    PlanOp op;
    op.kind = PlanOpKind::kErase;
    op.target = current.entries[i].id;
    plan.ops.push_back(op);
    ++plan.erases;
  }

  // Naive baseline: erase everything, program every compiled entry fresh.
  for (const CompiledEntry& e : next.entries) {
    const auto wc = table.cost_write(e.word, nullptr);
    plan.cost.naive_write_phases += wc.phases;
    plan.cost.naive_switched_cells += wc.cells;
    plan.cost.naive_energy_j += wc.energy_j;
  }

  // Shadow band: inserted entries carry final priority + offset until the
  // commit flip, so they outrank nothing that is currently live.
  int max_live = -1;
  for (const InstalledEntry& e : current.entries) {
    max_live = std::max(max_live, e.priority);
  }
  plan.shadow_priority_offset = max_live + 1;
  return plan;
}

}  // namespace fetcam::compiler
