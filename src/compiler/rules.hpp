// Source rule-set representation for the TCAM rule compiler.
//
// A rule set is what a control plane hands the table: classifier / LPM
// rules in LIST ORDER (first match wins among equal priorities), where a
// rule is either a plain ternary word or a ternary head plus an inclusive
// integer RANGE over a trailing field (port / priority ranges — the part
// of real classifiers that does not map 1:1 onto ternary cells and drives
// the expansion factor the compiler reports).
//
// The file format extends the engine trace grammar (engine/workload.*):
//
//   # fetcam rule set v1
//   cols 32
//   range-bits 8                      # trailing range field width (0 = none)
//   rule <ternary[cols]> <priority>   # plain rule
//   rrule <ternary[cols-range_bits]> <lo> <hi> <priority>   # ranged rule
//
// Priorities: lower wins, same as the engine; list order breaks ties.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/ternary.hpp"
#include "engine/workload.hpp"

namespace fetcam::compiler {

struct RuleSpec {
  /// Ternary match digits: all `cols` digits for a plain rule, the leading
  /// `cols - range_bits` digits for a ranged rule.
  arch::TernaryWord match;
  bool has_range = false;
  std::uint64_t lo = 0;  ///< inclusive; lo > hi = empty rule (matches nothing)
  std::uint64_t hi = 0;
  int priority = 0;
};

struct RuleSet {
  int cols = 0;
  int range_bits = 0;  ///< width of the trailing range field (0 = none)
  std::vector<RuleSpec> rules;
};

/// Bridge from the engine workload formats: every TraceRule becomes a
/// plain (rangeless) RuleSpec in list order.
RuleSet rule_set_from_rules(int cols,
                            const std::vector<engine::TraceRule>& rules);
RuleSet rule_set_from_trace(const engine::Trace& trace);

bool save_rule_set(const RuleSet& rules, const std::string& path);
std::optional<RuleSet> load_rule_set(const std::string& path);

}  // namespace fetcam::compiler
