#include "compiler/placer.hpp"

#include <algorithm>
#include <limits>

namespace fetcam::compiler {

Placer::Placer(const engine::TcamTable& table, const PlacerOptions& options)
    : table_(table), options_(options) {
  const int mats = table.mats();
  planned_free_.resize(static_cast<std::size_t>(mats));
  planned_writes_.resize(static_cast<std::size_t>(mats));
  min_row_writes_ = std::numeric_limits<std::uint64_t>::max();
  for (int m = 0; m < mats; ++m) {
    planned_free_[static_cast<std::size_t>(m)] = table.free_rows(m);
    planned_writes_[static_cast<std::size_t>(m)] =
        table.endurance(m).total_writes();
    min_row_writes_ =
        std::min(min_row_writes_, table.endurance(m).min_row_writes());
  }
  if (mats == 0) min_row_writes_ = 0;
}

int Placer::place_insert() {
  int best = -1;
  if (options_.endurance_aware) {
    // Coldest mat (fewest accumulated + planned writes) with a free row.
    for (std::size_t m = 0; m < planned_free_.size(); ++m) {
      if (planned_free_[m] == 0) continue;
      if (best < 0 ||
          planned_writes_[m] < planned_writes_[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(m);
      }
    }
    if (best < 0) return -2;
    planned_free_[static_cast<std::size_t>(best)] -= 1;
    planned_writes_[static_cast<std::size_t>(best)] += 1;
    return best;
  }
  // Not endurance-aware: the table's own emptiest-mat policy decides, but
  // capacity must still be tracked against the mat that policy will pick
  // (most free rows, lowest index on ties — mirrors TcamTable::insert).
  for (std::size_t m = 0; m < planned_free_.size(); ++m) {
    if (planned_free_[m] == 0) continue;
    if (best < 0 ||
        planned_free_[m] > planned_free_[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(m);
    }
  }
  if (best < 0) return -2;
  planned_free_[static_cast<std::size_t>(best)] -= 1;
  return -1;
}

bool Placer::should_spread_rewrite(const engine::EntryLocation& loc) const {
  if (!options_.endurance_aware) return false;
  if (free_rows_remaining() == 0) return false;
  const std::uint64_t row_writes = table_.endurance(loc.mat).writes(loc.row);
  return row_writes >= min_row_writes_ + options_.rewrite_spread_headroom;
}

bool Placer::should_relocate(const engine::EntryLocation& loc) const {
  if (!options_.endurance_aware) return false;
  return table_.endurance(loc.mat).row_wear_fraction(loc.row) >
         options_.relocate_wear_fraction;
}

int Placer::place_relocation(const engine::EntryLocation& loc) {
  int best = -1;
  for (std::size_t m = 0; m < planned_free_.size(); ++m) {
    if (static_cast<int>(m) == loc.mat) continue;
    if (planned_free_[m] == 0) continue;
    if (best < 0 ||
        planned_writes_[m] < planned_writes_[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(m);
    }
  }
  if (best < 0) return -2;
  planned_free_[static_cast<std::size_t>(best)] -= 1;
  planned_writes_[static_cast<std::size_t>(best)] += 1;
  return best;
}

std::size_t Placer::free_rows_remaining() const {
  std::size_t total = 0;
  for (const std::size_t f : planned_free_) total += f;
  return total;
}

}  // namespace fetcam::compiler
