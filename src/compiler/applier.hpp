// Consistent plan applier: runs an UpdatePlan through the SearchEngine as
// MAKE-BEFORE-BREAK batches, so every concurrently running search sees the
// old rule set's winner or the new one — never a half-applied hybrid.
//
// Three phases, each built from engine batches (a batch is atomic with
// respect to searches — the dispatcher freezes the table for a batch's
// matches and applies its writes before the next batch's):
//
//   1. MAKE — inserted entries are written at SHADOW priorities
//      (final + plan.shadow_priority_offset, above every live priority) in
//      ascending final order, chunked into small batches so searches keep
//      interleaving.  A shadow never outranks a live old entry; on keys no
//      old entry matches, a shadow may win early — that is the new answer
//      arriving, just at its shadow priority.
//   2. COMMIT — ONE atomic batch: every priority flip (shadow -> final,
//      and kept rows whose priority changed), every in-place delta
//      rewrite, and every orphan erase.  This is the linearization point
//      of the whole update.  Erases ride in the commit batch rather than
//      trailing it because they are peripheral-only (free) and a deferred
//      orphan could otherwise outrank the new winner on a key whose old
//      winner was rewritten away — a neither-old-nor-new result.
//   3. BREAK — wear-driven relocations, chunked.  A relocation preserves
//      id, word, and priority, so searches during this phase already see
//      exactly the new rule set.
//
// The applier returns the new Installation (compiled order, with the ids
// now serving each entry) — the input to the next plan_update.
#pragma once

#include "compiler/planner.hpp"
#include "engine/engine.hpp"

namespace fetcam::compiler {

struct ApplyOptions {
  /// Requests per MAKE / BREAK batch (commit is always one batch).
  /// Smaller batches let concurrent searches interleave sooner.
  int chunk = 8;
};

struct ApplyStats {
  int batches = 0;
  int inserted = 0;
  int rewritten = 0;
  int priority_flips = 0;
  int erased = 0;
  int relocated = 0;
};

struct ApplyResult {
  Installation installed;
  ApplyStats stats;
};

/// Apply `plan` (built by plan_update against `next`) through `engine`.
/// Throws std::runtime_error if an insert fails (the table drifted from
/// what the planner priced — e.g. someone else wrote to it).
ApplyResult apply_plan(engine::SearchEngine& engine, const UpdatePlan& plan,
                       const CompiledRuleSet& next,
                       const ApplyOptions& options = {});

}  // namespace fetcam::compiler
