// Rule compiler: lowers a RuleSet into the ternary entries a TcamTable
// actually stores.
//
// Three lowering passes, in order:
//
//   1. Range-to-ternary prefix expansion.  An inclusive range [lo, hi]
//      over a w-bit field becomes the minimal set of aligned power-of-two
//      blocks, each a ternary prefix (fixed MSBs, 'X' suffix).  Worst case
//      2(w-1) entries (the classic [1, 2^w - 2] range); a full-width range
//      is one all-'X' entry, a single value one exact entry, an empty
//      range (lo > hi) zero.
//   2. Redundancy / shadow elimination.  An expanded entry is dropped when
//      an entry that WINS against it (better priority, or equal priority
//      and earlier in the rule list) covers it — matches every key it
//      matches.  Dropping such an entry never changes any search result,
//      it only saves rows and writes.
//   3. Priority flattening.  Surviving source rules are renumbered onto a
//      dense 0..k-1 scale, one level per rule in winning order.  This
//      preserves the rule set's resolution semantics exactly (entries of
//      one rule are pairwise disjoint, so intra-rule ties cannot arise)
//      while making cross-rule ties impossible in the table — the
//      (priority, id) tie-break can then never disagree with list order,
//      no matter what order the applier installs entries in.
//
// The per-set expansion factor (final entries / source rules) is the
// figure of merit FeCAM-style compact arrays live or die by: every extra
// entry is a row of FeFET writes and a row of search energy.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/rules.hpp"

namespace fetcam::compiler {

/// One lowered TCAM entry.  `source_rule` indexes RuleSet::rules.
struct CompiledEntry {
  arch::TernaryWord word;
  int priority = 0;  ///< flattened: dense, unique per surviving rule
  int source_rule = -1;
};

struct CompileStats {
  int source_rules = 0;
  int empty_rules = 0;           ///< lo > hi ranges (match nothing)
  long long expanded_entries = 0;  ///< after pass 1, before elimination
  long long shadowed_removed = 0;  ///< covered by a better-priority entry
  long long redundant_removed = 0; ///< covered by an equal-priority earlier entry
  int priority_levels = 0;
  /// Final entries / source rules (the cost of lowering ranges to cells).
  double expansion_factor = 0.0;
};

struct CompiledRuleSet {
  int cols = 0;
  /// Entries in winning order: ascending (priority, source_rule).
  std::vector<CompiledEntry> entries;
  CompileStats stats;
};

/// Minimal ternary prefix cover of the inclusive range [lo, hi] over a
/// `bits`-wide field (MSB-first words).  bits in [1, 63].  Empty when
/// lo > hi; values above 2^bits - 1 are clamped.
std::vector<arch::TernaryWord> expand_range(std::uint64_t lo, std::uint64_t hi,
                                            int bits);

/// True when `outer` matches every key `inner` matches (digit-wise: outer
/// is 'X' or agrees with a non-'X' inner digit).
bool covers(const arch::TernaryWord& outer, const arch::TernaryWord& inner);

CompiledRuleSet compile_rules(const RuleSet& rules);

/// Reference resolver for verification: the winning compiled entry for a
/// key (lowest priority, then entry order), or -1 on miss.  Brute force —
/// test oracle, not a serving path.
int reference_winner(const CompiledRuleSet& compiled, const arch::BitWord& key);

}  // namespace fetcam::compiler
