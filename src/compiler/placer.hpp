// Endurance-aware placement for the update planner.
//
// The DG-FeFET budget (>1e10 cycles) is generous, but churny rule sets
// concentrate writes: a flapping route rewrites the same row every step,
// and the table's emptiest-mat insert policy balances OCCUPANCY, not WEAR.
// The placer closes both gaps using the per-mat EnduranceTracker state the
// table already keeps:
//
//   * inserts go to the mat with the fewest accumulated writes that still
//     has a free row (coldest-mat-first instead of emptiest-mat-first);
//   * an in-place rewrite whose row has pulled `rewrite_spread_headroom`
//     writes ahead of the table's coldest row is moved instead — the new
//     word is written on a cold mat and the hot row erased (the planner's
//     insert+erase pair, still make-before-break safe);
//   * a KEPT row past `relocate_wear_fraction` of its device budget is
//     relocated via TcamTable::relocate (one write at the destination).
//
// Placement is capacity-tracked: the make phase inserts before the break
// phase erases, so a plan may allocate at most the rows that are free NOW.
#pragma once

#include <cstdint>

#include "engine/table.hpp"

namespace fetcam::compiler {

struct PlacerOptions {
  bool endurance_aware = true;
  /// A planned in-place rewrite moves to a cold mat once its row has this
  /// many more writes than the table's coldest row.
  std::uint64_t rewrite_spread_headroom = 64;
  /// A kept row relocates once row_wear_fraction exceeds this.
  double relocate_wear_fraction = 0.5;
};

/// Tracks planned allocations against table free-row capacity while the
/// planner assigns mats.  All reads of endurance state happen through the
/// table's per-mat EnduranceModel trackers.
class Placer {
 public:
  Placer(const engine::TcamTable& table, const PlacerOptions& options);

  /// Mat for the next insert: coldest-by-total-writes with a free row
  /// (lowest index on ties), or -1 (table default policy) when not
  /// endurance-aware.  Returns -2 when NO mat has a free row left.
  int place_insert();
  /// Whether an in-place rewrite of this row should move to a cold mat
  /// instead (wear spread control).  Never true when a move could not be
  /// placed anyway.
  bool should_spread_rewrite(const engine::EntryLocation& loc) const;
  /// Whether a kept row is near enough to its write budget to relocate.
  bool should_relocate(const engine::EntryLocation& loc) const;
  /// Mat a relocation should target (same contract as place_insert; never
  /// the source mat).  Returns -2 when nothing fits.
  int place_relocation(const engine::EntryLocation& loc);

  std::size_t free_rows_remaining() const;

 private:
  const engine::TcamTable& table_;
  PlacerOptions options_;
  std::vector<std::size_t> planned_free_;   ///< free rows minus planned allocs
  std::vector<std::uint64_t> planned_writes_;  ///< mat writes + planned writes
  std::uint64_t min_row_writes_ = 0;  ///< coldest row across the table
};

}  // namespace fetcam::compiler
