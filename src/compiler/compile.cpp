#include "compiler/compile.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace fetcam::compiler {

std::vector<arch::TernaryWord> expand_range(std::uint64_t lo, std::uint64_t hi,
                                            int bits) {
  if (bits < 1 || bits > 63) {
    throw std::invalid_argument("range field width must be in [1, 63]");
  }
  const std::uint64_t max = (std::uint64_t{1} << bits) - 1;
  std::vector<arch::TernaryWord> out;
  if (lo > hi || lo > max) return out;
  hi = std::min(hi, max);
  while (lo <= hi) {
    // Largest aligned block starting at lo that stays inside the range:
    // alignment limits it to lowbit(lo) (everything for lo == 0), the
    // remaining span to hi - lo + 1.
    std::uint64_t size =
        lo == 0 ? (std::uint64_t{1} << bits) : (lo & (~lo + 1));
    while (size > hi - lo + 1) size >>= 1;
    const int free_bits = std::countr_zero(size);
    arch::TernaryWord word;
    word.reserve(static_cast<std::size_t>(bits));
    for (int d = 0; d < bits; ++d) {
      const int bit = bits - 1 - d;  // MSB-first
      if (bit < free_bits) {
        word.push_back(arch::Ternary::kX);
      } else {
        word.push_back(((lo >> bit) & 1) != 0 ? arch::Ternary::kOne
                                              : arch::Ternary::kZero);
      }
    }
    out.push_back(std::move(word));
    lo += size;
    if (lo == 0) break;  // wrapped past 2^64 (unreachable for bits <= 63)
  }
  return out;
}

bool covers(const arch::TernaryWord& outer, const arch::TernaryWord& inner) {
  if (outer.size() != inner.size()) return false;
  for (std::size_t c = 0; c < outer.size(); ++c) {
    if (outer[c] == arch::Ternary::kX) continue;
    if (inner[c] != outer[c]) return false;
  }
  return true;
}

CompiledRuleSet compile_rules(const RuleSet& rules) {
  if (rules.cols <= 0) {
    throw std::invalid_argument("rule set needs cols > 0");
  }
  if (rules.range_bits < 0 || rules.range_bits > rules.cols ||
      rules.range_bits > 63) {
    throw std::invalid_argument("range-bits must be in [0, min(cols, 63)]");
  }
  CompiledRuleSet out;
  out.cols = rules.cols;
  out.stats.source_rules = static_cast<int>(rules.rules.size());

  // Pass 1 — expansion into (word, source priority, rule index).
  struct Expanded {
    arch::TernaryWord word;
    int priority = 0;
    int rule = -1;
  };
  std::vector<Expanded> expanded;
  for (std::size_t ri = 0; ri < rules.rules.size(); ++ri) {
    const RuleSpec& spec = rules.rules[ri];
    const int head = rules.cols - (spec.has_range ? rules.range_bits : 0);
    if (static_cast<int>(spec.match.size()) != head) {
      throw std::invalid_argument("rule match width disagrees with cols");
    }
    if (spec.has_range && rules.range_bits == 0) {
      throw std::invalid_argument("ranged rule in a set with range-bits 0");
    }
    if (!spec.has_range) {
      expanded.push_back({spec.match, spec.priority, static_cast<int>(ri)});
      continue;
    }
    const auto suffixes = expand_range(spec.lo, spec.hi, rules.range_bits);
    if (suffixes.empty()) ++out.stats.empty_rules;
    for (const auto& suffix : suffixes) {
      arch::TernaryWord word = spec.match;
      word.insert(word.end(), suffix.begin(), suffix.end());
      expanded.push_back(
          {std::move(word), spec.priority, static_cast<int>(ri)});
    }
  }
  out.stats.expanded_entries = static_cast<long long>(expanded.size());

  // Winning order: ascending (priority, rule index); expansion order within
  // a rule is kept (its entries are disjoint, so it never matters).
  std::stable_sort(expanded.begin(), expanded.end(),
                   [](const Expanded& a, const Expanded& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.rule < b.rule;
                   });

  // Pass 2 — drop entries covered by an earlier (winning) survivor.
  std::vector<Expanded> kept;
  kept.reserve(expanded.size());
  for (const auto& e : expanded) {
    const Expanded* coverer = nullptr;
    for (const auto& k : kept) {
      if (covers(k.word, e.word)) {
        coverer = &k;
        break;
      }
    }
    if (coverer != nullptr) {
      if (coverer->priority < e.priority) {
        ++out.stats.shadowed_removed;
      } else {
        ++out.stats.redundant_removed;
      }
      continue;
    }
    kept.push_back(e);
  }

  // Pass 3 — dense priority per surviving rule, in winning order.
  int next_priority = 0;
  int last_rule = -1;
  out.entries.reserve(kept.size());
  for (const auto& e : kept) {
    if (e.rule != last_rule) {
      last_rule = e.rule;
      ++next_priority;
    }
    CompiledEntry ce;
    ce.word = e.word;
    ce.priority = next_priority - 1;
    ce.source_rule = e.rule;
    out.entries.push_back(std::move(ce));
  }
  out.stats.priority_levels = next_priority;
  out.stats.expansion_factor =
      out.stats.source_rules > 0
          ? static_cast<double>(out.entries.size()) /
                static_cast<double>(out.stats.source_rules)
          : 0.0;
  return out;
}

int reference_winner(const CompiledRuleSet& compiled,
                     const arch::BitWord& key) {
  // Entries are in winning order, so the first match wins.
  for (std::size_t i = 0; i < compiled.entries.size(); ++i) {
    if (arch::word_matches(compiled.entries[i].word, key)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace fetcam::compiler
