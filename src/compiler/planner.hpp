// Delta planner: diff a compiled rule set against what a TcamTable holds
// and emit the cheapest write plan that makes the table serve the new set.
//
// The naive controller rewrites everything: erase the table, program every
// compiled entry (3 HV phases per row for the 1.5T1Fe design).  Rule churn
// is mostly no-ops, though — a BGP flap or an ACL edit touches a handful
// of rules — so the planner reuses what is already in the cells:
//
//   * an installed row whose word equals a compiled entry is KEPT (zero
//     pulses; at most a peripheral priority flip);
//   * leftovers pair up greedily by digit distance and become in-place
//     DELTA rewrites (TcamTable::rewrite_digits — pulses only for the
//     changed columns);
//   * only genuinely new entries are fresh writes, placed by the
//     endurance-aware Placer; orphaned rows are erased (peripheral-only).
//
// Every op is priced with the table's own write-cost model
// (cost_write / cost_rewrite → arch::EnergyModel figures), and the plan
// carries the naive-rewrite baseline so callers can report writes saved.
//
// Plans are MAKE-BEFORE-BREAK shaped: inserts are placed against the rows
// free NOW (they execute before any erase frees more), so a plan can
// require more slack than the table has — plan_update throws rather than
// emit a plan the applier cannot run atomically.
#pragma once

#include <vector>

#include "compiler/compile.hpp"
#include "compiler/placer.hpp"
#include "engine/table.hpp"

namespace fetcam::compiler {

/// One table entry the control plane believes is installed (id + the word
/// and priority it was written with).  The applier returns the updated
/// Installation after running a plan.
struct InstalledEntry {
  engine::EntryId id = engine::kInvalidEntry;
  arch::TernaryWord word;
  int priority = 0;
  int source_rule = -1;
};

struct Installation {
  int cols = 0;
  std::vector<InstalledEntry> entries;
};

enum class PlanOpKind : std::uint8_t {
  kKeep,         ///< word + priority already right: zero pulses
  kSetPriority,  ///< word right, priority flips (peripheral-only)
  kRewrite,      ///< in-place delta rewrite of changed digits
  kInsert,       ///< fresh write of a new entry (placed on `mat`)
  kErase,        ///< orphaned row freed (peripheral-only)
  kRelocate,     ///< kept entry moved to a colder mat (wear leveling)
};

struct PlanOp {
  PlanOpKind kind = PlanOpKind::kKeep;
  /// Installed entry acted on (everything except kInsert).
  engine::EntryId target = engine::kInvalidEntry;
  /// Index into CompiledRuleSet::entries (everything except kErase and
  /// kRelocate).
  int compiled_index = -1;
  /// kInsert: target mat (-1 = table default policy); kRelocate: target mat.
  int mat = -1;
  /// kRewrite: digits that differ (what the delta plan drives).
  int changed_digits = 0;
};

/// Projected plan cost next to the erase-everything / write-everything
/// baseline.  Phases are HV driver pulses (the engine's write_cycles
/// currency); energy uses the table's per-mat EnergyModel write figures.
struct PlanCost {
  long long write_phases = 0;
  long long switched_cells = 0;
  double energy_j = 0.0;
  long long naive_write_phases = 0;
  long long naive_switched_cells = 0;
  double naive_energy_j = 0.0;
};

struct PlannerOptions {
  PlacerOptions placement;
};

struct UpdatePlan {
  std::vector<PlanOp> ops;  ///< grouped by kind, NOT execution order
  PlanCost cost;
  /// Added to final priorities while inserted entries are shadows (phase 1
  /// of the make-before-break applier); above every live priority.
  int shadow_priority_offset = 0;
  int keeps = 0;
  int priority_flips = 0;
  int rewrites = 0;
  int inserts = 0;
  int erases = 0;
  int relocations = 0;
};

/// Diff `current` (what the control plane installed) against `next` and
/// plan the update.  Throws std::invalid_argument on width mismatch and
/// std::runtime_error when the table lacks the free rows make-before-break
/// needs.
UpdatePlan plan_update(const Installation& current, const CompiledRuleSet& next,
                       const engine::TcamTable& table,
                       const PlannerOptions& options = {});

}  // namespace fetcam::compiler
